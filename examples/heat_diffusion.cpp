/// \file
/// Heat diffusion on a simulated SMP cluster: a 1-D explicit stencil
/// with halo exchange written against the CRL distributed-shared-
/// memory layer, executed under each of the paper's protected-
/// communication architectures. Prints per-architecture execution
/// times — the "which interconnect design do I need for my stencil?"
/// question the simulator answers.
///
///   ./heat_diffusion [cells-per-rank] [iterations]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "am/am.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "crl/crl.h"
#include "machine/design_point.h"
#include "rma/system.h"

namespace {

double
run_heat(const machine::DesignPoint& dp, int nodes, int cells, int iters,
         double* checksum)
{
    rma::SystemConfig cfg;
    cfg.design = dp;
    cfg.nodes = nodes;
    cfg.procs_per_node = 1;

    double elapsed = 0.0;
    double sum = 0.0;
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        crl::Crl crl(ctx, ep);
        coll::Collective coll(ctx, &ep);
        const int me = ctx.rank();
        const int p = ctx.nranks();

        // Each rank homes one region: [halo_left | cells | halo_right]
        // is private; the published region holds the boundary pair so
        // neighbours can read it coherently.
        const size_t region_bytes = 2 * sizeof(double);
        crl.create(region_bytes);
        std::vector<double*> edge(static_cast<size_t>(p));
        for (int r = 0; r < p; ++r) {
            edge[static_cast<size_t>(r)] = static_cast<double*>(crl.map(
                crl::Crl::region_id(r, 0), region_bytes));
        }

        std::vector<double> u(static_cast<size_t>(cells) + 2, 0.0);
        std::vector<double> next(static_cast<size_t>(cells) + 2, 0.0);
        // Initial condition: a hot spike on rank 0's first cell.
        if (me == 0)
            u[1] = 1000.0;

        auto publish_edges = [&] {
            crl.start_write(crl::Crl::region_id(me, 0));
            edge[static_cast<size_t>(me)][0] = u[1];
            edge[static_cast<size_t>(me)][1] =
                u[static_cast<size_t>(cells)];
            crl.end_write(crl::Crl::region_id(me, 0));
        };
        publish_edges();
        coll.barrier();
        double t0 = ctx.now();

        for (int it = 0; it < iters; ++it) {
            // Fetch neighbour boundary values through CRL.
            if (me > 0) {
                crl.start_read(crl::Crl::region_id(me - 1, 0));
                u[0] = edge[static_cast<size_t>(me - 1)][1];
                crl.end_read(crl::Crl::region_id(me - 1, 0));
            }
            if (me + 1 < p) {
                crl.start_read(crl::Crl::region_id(me + 1, 0));
                u[static_cast<size_t>(cells) + 1] =
                    edge[static_cast<size_t>(me + 1)][0];
                crl.end_read(crl::Crl::region_id(me + 1, 0));
            }
            coll.barrier();
            for (int i = 1; i <= cells; ++i) {
                next[static_cast<size_t>(i)] =
                    u[static_cast<size_t>(i)] +
                    0.25 * (u[static_cast<size_t>(i) - 1] -
                            2.0 * u[static_cast<size_t>(i)] +
                            u[static_cast<size_t>(i) + 1]);
            }
            std::swap(u, next);
            ep.compute(static_cast<double>(cells) * 0.08);
            publish_edges();
            coll.barrier();
        }

        coll.barrier();
        if (me == 0)
            elapsed = ctx.now() - t0;
        double local = 0.0;
        for (int i = 1; i <= cells; ++i)
            local += u[static_cast<size_t>(i)];
        sum = coll.allreduce_sum(local);
        coll.barrier();
    });
    *checksum = sum;
    return elapsed;
}

} // namespace

int
main(int argc, char** argv)
{
    int cells = argc > 1 ? std::atoi(argv[1]) : 512;
    int iters = argc > 2 ? std::atoi(argv[2]) : 40;
    const int nodes = 8;

    std::printf("1-D heat diffusion, %d ranks x %d cells, %d steps\n\n",
                nodes, cells, iters);
    std::printf("%-6s %12s %14s %16s\n", "arch", "time (ms)",
                "vs HW1", "heat checksum");
    double hw1_ck = 0.0;
    double hw1_time =
        run_heat(machine::hw1(), nodes, cells, iters, &hw1_ck);
    for (const auto& dp : machine::all_design_points()) {
        double ck = 0.0;
        double t = run_heat(dp, nodes, cells, iters, &ck);
        std::printf("%-6s %12.2f %13.2fx %16.6f\n", dp.name.c_str(),
                    t / 1000.0, t / hw1_time, ck);
    }
    std::printf("\nTotal heat is conserved (same checksum everywhere);\n"
                "only the communication architecture changes the time.\n");
    return 0;
}
