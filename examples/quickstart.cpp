/// \file
/// Quickstart: protected communication through a real message proxy.
///
/// Builds two "SMP nodes" in this process, each with a dedicated
/// proxy thread polling lock-free command queues, and exercises the
/// three primitives: PUT (remote write), GET (remote read), and ENQ
/// (remote message queue) — plus the protection model (a segment not
/// registered for remote access cannot be touched).
///
///   ./quickstart

#include <cstdio>
#include <cstring>
#include <numeric>
#include <vector>

#include "proxy/runtime.h"

int
main()
{
    // --- topology: two nodes, one user endpoint each --------------
    proxy::Node node0(proxy::NodeConfig{.id = 0});
    proxy::Node node1(proxy::NodeConfig{.id = 1});
    proxy::Endpoint& user0 = node0.create_endpoint();
    proxy::Endpoint& user1 = node1.create_endpoint();
    // Wire the nodes: node 0 listens on an address, node 1 dials it.
    // "inproc://..." selects the in-process transport (the default);
    // with NodeConfig::transport = kSocket the same two calls take
    // "unix:///path.sock" or "tcp://host:port" instead.
    node0.listen("inproc://quickstart");
    node1.connect("inproc://quickstart");

    // --- memory: node 1 exposes a segment, plus a private one -----
    std::vector<uint8_t> shared_mem(4096, 0);
    std::vector<uint8_t> private_mem(4096, 0xAA);
    uint16_t shared_seg =
        user1.register_segment(shared_mem.data(), shared_mem.size());
    uint16_t private_seg = user1.register_segment(
        private_mem.data(), private_mem.size(), /*remote_access=*/false);

    node0.start();
    node1.start();

    // --- PUT: write 1 KB into node 1's shared segment -------------
    std::vector<uint8_t> message(1024);
    std::iota(message.begin(), message.end(), 0);
    proxy::Flag delivered{0};
    user0.put(message.data(), /*dst_node=*/1, shared_seg, /*offset=*/0,
              static_cast<uint32_t>(message.size()), nullptr,
              &delivered);
    proxy::flag_wait_ge(delivered, 1);
    std::printf("PUT:  1 KB delivered, first/last bytes: %u/%u\n",
                shared_mem[0], shared_mem[1023]);

    // --- GET: read it back ----------------------------------------
    std::vector<uint8_t> readback(1024, 0);
    proxy::Flag got{0};
    user0.get(readback.data(), 1, shared_seg, 0, 1024, &got);
    proxy::flag_wait_ge(got, 1);
    std::printf("GET:  readback %s\n",
                readback == message ? "matches" : "MISMATCH");

    // --- ENQ: send a message into user1's receive queue -----------
    const char text[] = "hello through the proxy";
    user0.enq(text, sizeof(text), 1, user1.id());
    std::vector<uint8_t> inbox;
    while (!user1.try_recv(inbox)) {
    }
    std::printf("ENQ:  user1 received \"%s\"\n",
                reinterpret_cast<const char*>(inbox.data()));

    // --- protection: the private segment rejects remote access ----
    uint8_t evil[16] = {0};
    user0.put(evil, 1, private_seg, 0, sizeof(evil));
    while (node1.stats().faults == 0) {
    }
    std::printf("PROT: write to the private segment was suppressed "
                "(%llu fault(s) recorded, memory intact: %s)\n",
                static_cast<unsigned long long>(node1.stats().faults),
                private_mem[0] == 0xAA ? "yes" : "no");

    std::printf("\nproxy stats: node0 sent %llu packets, node1 "
                "consumed %llu commands+packets over %llu polls\n",
                static_cast<unsigned long long>(
                    node0.stats().packets_out),
                static_cast<unsigned long long>(
                    node1.stats().packets_in),
                static_cast<unsigned long long>(node1.stats().polls));
    return 0;
}
