/// \file
/// A small remote key-value store built on the message-proxy runtime
/// — the kind of service the paper's remote-queue primitive was
/// designed for.
///
/// The server node exposes a fixed-slot table as a remotely
/// accessible segment. Clients on another node:
///   - write values with one-sided PUTs directly into their slots,
///   - read any slot with a GET,
///   - and submit "update" commands through the server endpoint's
///     message queue (ENQ); the server applies them when it polls.
///
///   ./remote_kv_store

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "proxy/runtime.h"

namespace {

constexpr int kSlots = 64;
constexpr int kValueBytes = 48;

struct Slot
{
    uint64_t version;
    char value[kValueBytes];
};

struct UpdateCmd
{
    int32_t slot;
    char value[kValueBytes];
};

} // namespace

int
main()
{
    proxy::Node server_node(proxy::NodeConfig{.id = 0});
    proxy::Node client_node(proxy::NodeConfig{.id = 1});
    proxy::Endpoint& server = server_node.create_endpoint();
    proxy::Endpoint& client_a = client_node.create_endpoint();
    proxy::Endpoint& client_b = client_node.create_endpoint();
    server_node.listen("inproc://kv-store");
    client_node.connect("inproc://kv-store");

    std::vector<Slot> table(kSlots, Slot{0, {0}});
    uint16_t table_seg = server.register_segment(
        table.data(), table.size() * sizeof(Slot));

    server_node.start();
    client_node.start();

    // --- client A: one-sided PUTs into its own slots 0..7 ---------
    proxy::Flag put_done{0};
    for (int s = 0; s < 8; ++s) {
        Slot v;
        v.version = 1;
        std::snprintf(v.value, sizeof(v.value), "alpha-%d", s);
        client_a.put(&v, 0, table_seg,
                     static_cast<uint64_t>(s) * sizeof(Slot),
                     sizeof(Slot), &put_done);
        // Source is a stack temporary: wait for hand-off before reuse.
        proxy::flag_wait_ge(put_done, static_cast<uint64_t>(s) + 1);
    }

    // --- client B: queued updates the server applies --------------
    for (int s = 8; s < 12; ++s) {
        UpdateCmd cmd;
        cmd.slot = s;
        std::snprintf(cmd.value, sizeof(cmd.value), "queued-%d", s);
        while (!client_b.enq(&cmd, sizeof(cmd), 0, server.id())) {
            std::this_thread::yield();
        }
    }

    // --- server: poll the queue and apply updates ------------------
    std::vector<uint8_t> msg;
    int applied = 0;
    while (applied < 4) {
        if (!server.try_recv(msg)) {
            std::this_thread::yield();
            continue;
        }
        UpdateCmd cmd;
        std::memcpy(&cmd, msg.data(), sizeof(cmd));
        Slot& slot = table[static_cast<size_t>(cmd.slot)];
        std::memcpy(slot.value, cmd.value, sizeof(slot.value));
        ++slot.version;
        ++applied;
    }

    // --- client A: read everything back with GETs ------------------
    std::vector<Slot> snapshot(kSlots);
    proxy::Flag got{0};
    client_a.get(snapshot.data(), 0, table_seg, 0,
                 static_cast<uint32_t>(snapshot.size() * sizeof(Slot)),
                 &got);
    proxy::flag_wait_ge(got, 1);

    std::printf("slot table after one-sided PUTs and queued updates:\n");
    for (int s = 0; s < 12; ++s) {
        std::printf("  [%2d] v%llu \"%s\"\n", s,
                    static_cast<unsigned long long>(
                        snapshot[static_cast<size_t>(s)].version),
                    snapshot[static_cast<size_t>(s)].value);
    }
    std::printf("server stats: %llu packets in, %llu faults\n",
                static_cast<unsigned long long>(
                    server_node.stats().packets_in),
                static_cast<unsigned long long>(
                    server_node.stats().faults));
    return 0;
}
