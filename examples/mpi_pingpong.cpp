/// \file
/// Two-sided message passing on the simulated cluster: the MPI-style
/// layer's ping-pong, sweeping message sizes across the paper's
/// architectures. Shows the eager/rendezvous protocol switchover and
/// where each protected-communication design pays its costs — the
/// paper's claim that RMA/RQ "form an efficient and convenient layer
/// for implementing higher-level communication protocols such as
/// Active Messages and MPI", demonstrated.
///
///   ./mpi_pingpong

#include <cstdio>
#include <vector>

#include "am/am.h"
#include "backend/factory.h"
#include "machine/design_point.h"
#include "mpi/mpi.h"
#include "rma/system.h"

namespace {

double
pingpong_us(const machine::DesignPoint& dp, size_t nbytes, int rounds)
{
    rma::SystemConfig cfg;
    cfg.design = dp;
    cfg.nodes = 2;
    cfg.procs_per_node = 1;
    double half_rtt = 0.0;
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        mpi::Comm comm(ctx, ep);
        // Rendezvous-path messages land with a one-sided store, so
        // buffers come from the registered address space.
        auto* buf = ctx.alloc_n<uint8_t>(nbytes + 8);
        if (comm.rank() == 0) {
            ctx.compute(1.0);
            // warm-up round
            comm.send(buf, nbytes, 1, 0);
            comm.recv(buf, nbytes, 1, 0);
            double t0 = ctx.now();
            for (int r = 0; r < rounds; ++r) {
                comm.send(buf, nbytes, 1, 0);
                comm.recv(buf, nbytes, 1, 0);
            }
            half_rtt = (ctx.now() - t0) / (2.0 * rounds);
        } else {
            for (int r = 0; r < rounds + 1; ++r) {
                comm.recv(buf, nbytes, 0, 0);
                comm.send(buf, nbytes, 0, 0);
            }
        }
    });
    return half_rtt;
}

} // namespace

int
main()
{
    auto dps = machine::all_design_points();
    std::printf("MPI-style ping-pong one-way latency (us); the eager\n"
                "-> rendezvous switch sits at %zu bytes.\n\n",
                mpi::Comm::kEagerBytes);
    std::printf("%8s", "bytes");
    for (const auto& d : dps)
        std::printf(" %8s", d.name.c_str());
    std::printf("\n");
    for (size_t n : {8u, 128u, 1024u, 4096u, 16384u, 131072u}) {
        std::printf("%8zu", n);
        for (const auto& d : dps)
            std::printf(" %8.1f", pingpong_us(d, n, 4));
        std::printf("\n");
    }
    std::printf("\nSmall messages: the architectures separate by\n"
                "per-message overhead (HW < MP2 < MP1 < SW). Large\n"
                "messages: everyone converges toward the DMA/pinning\n"
                "bandwidth limits, and the protocol costs wash out.\n");
    return 0;
}
