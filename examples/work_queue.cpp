/// \file
/// Distributed work queue on the real message-proxy runtime, using
/// the paper's Remote Queue primitive: a coordinator node owns a
/// proxy-managed task queue; worker endpoints on other nodes pull
/// tasks with remote DEQs and push results back with remote ENQs.
/// The proxy is the only agent that ever touches the queue pointers,
/// so no locks are needed anywhere — the paper's atomicity argument,
/// live.
///
///   ./work_queue

#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "proxy/runtime.h"

namespace {

struct Task
{
    int32_t id;
    int32_t iterations;
};

struct Result
{
    int32_t id;
    int32_t worker;
    double value;
};

/// Toy workload: a few iterations of a logistic map.
double
crunch(const Task& t)
{
    double x = 0.4 + 1e-4 * t.id;
    for (int i = 0; i < t.iterations; ++i)
        x = 3.71 * x * (1.0 - x);
    return x;
}

} // namespace

int
main()
{
    constexpr int kWorkers = 3;
    constexpr int kTasks = 24;

    proxy::Node coordinator(proxy::NodeConfig{.id = 0});
    proxy::Endpoint& boss = coordinator.create_endpoint();
    int task_q = coordinator.create_queue();
    coordinator.listen("inproc://work-queue");

    std::vector<std::unique_ptr<proxy::Node>> worker_nodes;
    std::vector<proxy::Endpoint*> workers;
    for (int w = 0; w < kWorkers; ++w) {
        worker_nodes.push_back(std::make_unique<proxy::Node>(
            proxy::NodeConfig{.id = 1 + w}));
        workers.push_back(&worker_nodes.back()->create_endpoint());
        worker_nodes.back()->connect("inproc://work-queue");
    }

    coordinator.start();
    for (auto& n : worker_nodes)
        n->start();

    // Fill the queue with tasks plus one poison pill per worker.
    for (int t = 0; t < kTasks; ++t) {
        Task task{t, 1000 + 100 * t};
        while (!boss.rq_enq(&task, sizeof(task), 0, task_q))
            std::this_thread::yield();
    }
    for (int w = 0; w < kWorkers; ++w) {
        Task pill{-1, 0};
        while (!boss.rq_enq(&pill, sizeof(pill), 0, task_q))
            std::this_thread::yield();
    }

    // Workers pull until poisoned and send results to the boss.
    std::vector<std::thread> crew;
    for (int w = 0; w < kWorkers; ++w) {
        crew.emplace_back([&, w] {
            proxy::Endpoint* me = workers[static_cast<size_t>(w)];
            for (;;) {
                Task task{};
                proxy::Flag f{0};
                while (!me->rq_deq(&task, sizeof(task), 0, task_q, &f))
                    std::this_thread::yield();
                proxy::flag_wait_ge(f, 1);
                if (f.load() == 1) { // queue empty: retry
                    std::this_thread::yield();
                    continue;
                }
                if (task.id < 0)
                    break;
                Result r{task.id, w, crunch(task)};
                while (!me->enq(&r, sizeof(r), 0, boss.id()))
                    std::this_thread::yield();
            }
        });
    }

    // The boss collects the results.
    int per_worker[kWorkers] = {0};
    std::vector<uint8_t> msg;
    for (int got = 0; got < kTasks;) {
        if (!boss.try_recv(msg)) {
            std::this_thread::yield();
            continue;
        }
        Result r{};
        std::memcpy(&r, msg.data(), sizeof(r));
        ++per_worker[r.worker];
        ++got;
        if (got <= 4 || got == kTasks) {
            std::printf("result %2d/%d: task %2d by worker %d -> %.6f\n",
                        got, kTasks, r.id, r.worker, r.value);
        } else if (got == 5) {
            std::printf("...\n");
        }
    }
    for (auto& t : crew)
        t.join();

    std::printf("\nwork distribution:");
    for (int w = 0; w < kWorkers; ++w)
        std::printf(" worker%d=%d", w, per_worker[w]);
    std::printf("\ncoordinator proxy: %llu packets in, %llu out, "
                "0 locks taken\n",
                static_cast<unsigned long long>(
                    coordinator.stats().packets_in),
                static_cast<unsigned long long>(
                    coordinator.stats().packets_out));
    return 0;
}
