/// \file
/// Design-space exploration with the latency model and simulator —
/// the forward-looking use the paper intends for its performance
/// model ("the model can be used to predict message proxy performance
/// on other SMP cluster architectures").
///
/// Sweeps hypothetical machines (faster proxies, cache-update
/// hardware, slower networks) and reports one-word latencies from the
/// closed-form model next to a full application run (Water), showing
/// where the message-proxy design stops being competitive with custom
/// hardware.
///
///   ./design_space

#include <cstdio>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "machine/design_point.h"

namespace {

double
model_get(const machine::DesignPoint& d)
{
    double c = d.cache_update ? d.c_update_us : d.c_miss_us;
    // 8 of the 10 GET misses are proxy<->compute transfers that the
    // cache-update primitive accelerates.
    double miss_term = d.cache_update ? 8 * c + 2 * d.c_miss_us
                                      : 10 * d.c_miss_us;
    return miss_term + 6 * d.u_access_us + 3 * d.v_att_us +
           3.6 / d.speed + 3 * d.poll_us + 2 * d.net_lat_us;
}

} // namespace

int
main()
{
    struct Variant
    {
        std::string name;
        machine::DesignPoint dp;
    };
    std::vector<Variant> variants;

    variants.push_back({"MP1 (baseline proxy)", machine::mp1()});

    auto v = machine::mp1();
    v.speed = 8.0;
    v.poll_us = 1.0;
    variants.push_back({"proxy on 600 MHz core", v});

    v = machine::mp2();
    variants.push_back({"MP2 (cache update)", v});

    v = machine::mp2();
    v.c_update_us = 0.1;
    v.poll_us = 0.5;
    variants.push_back({"aggressive cache update", v});

    v = machine::mp1();
    v.net_lat_us = 5.0;
    variants.push_back({"slow network (L=5us)", v});

    v = machine::mp1();
    v.dma_bw_mbs = 600.0;
    v.net_bw_mbs = 1000.0;
    variants.push_back({"gigabit-class links", v});

    variants.push_back({"HW1 (custom hardware)", machine::hw1()});

    std::printf("Design-space sweep: one-word GET model and the Water\n"
                "application (16 ranks) under each variant.\n\n");
    std::printf("%-26s %12s %14s %10s\n", "variant", "GET model",
                "Water (ms)", "vs HW1");

    double hw1_water = 0.0;
    // Run HW1 first to establish the reference.
    {
        rma::SystemConfig cfg;
        cfg.design = machine::hw1();
        cfg.nodes = 16;
        cfg.procs_per_node = 1;
        hw1_water = apps::run_water(cfg, /*scale=*/2).elapsed_us;
    }

    for (const auto& var : variants) {
        rma::SystemConfig cfg;
        cfg.design = var.dp;
        cfg.nodes = 16;
        cfg.procs_per_node = 1;
        auto res = apps::run_water(cfg, /*scale=*/2);
        if (var.dp.arch == machine::Arch::kProxy) {
            std::printf("%-26s %10.1fus %12.2fms %9.2fx\n",
                        var.name.c_str(), model_get(var.dp),
                        res.elapsed_us / 1000.0,
                        res.elapsed_us / hw1_water);
        } else {
            std::printf("%-26s %12s %12.2fms %9.2fx\n",
                        var.name.c_str(), "-",
                        res.elapsed_us / 1000.0,
                        res.elapsed_us / hw1_water);
        }
    }
    std::printf("\nReading: a proxy with an aggressive cache-update\n"
                "path approaches (or beats) the custom adapter, while\n"
                "network latency hurts both designs equally — the\n"
                "paper's conclusion that the proxy's bottleneck is SMP\n"
                "cache-miss latency, not the network.\n");
    return 0;
}
