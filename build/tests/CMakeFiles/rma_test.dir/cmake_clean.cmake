file(REMOVE_RECURSE
  "CMakeFiles/rma_test.dir/rma_test.cc.o"
  "CMakeFiles/rma_test.dir/rma_test.cc.o.d"
  "rma_test"
  "rma_test.pdb"
  "rma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
