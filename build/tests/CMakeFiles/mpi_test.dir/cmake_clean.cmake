file(REMOVE_RECURSE
  "CMakeFiles/mpi_test.dir/mpi_test.cc.o"
  "CMakeFiles/mpi_test.dir/mpi_test.cc.o.d"
  "mpi_test"
  "mpi_test.pdb"
  "mpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
