file(REMOVE_RECURSE
  "CMakeFiles/crl_test.dir/crl_test.cc.o"
  "CMakeFiles/crl_test.dir/crl_test.cc.o.d"
  "crl_test"
  "crl_test.pdb"
  "crl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
