# Empty compiler generated dependencies file for crl_test.
# This may be replaced when dependencies are built.
