file(REMOVE_RECURSE
  "CMakeFiles/splitc_test.dir/splitc_test.cc.o"
  "CMakeFiles/splitc_test.dir/splitc_test.cc.o.d"
  "splitc_test"
  "splitc_test.pdb"
  "splitc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
