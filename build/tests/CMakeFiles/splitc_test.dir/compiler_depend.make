# Empty compiler generated dependencies file for splitc_test.
# This may be replaced when dependencies are built.
