# Empty dependencies file for rma_property_test.
# This may be replaced when dependencies are built.
