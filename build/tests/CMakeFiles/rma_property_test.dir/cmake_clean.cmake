file(REMOVE_RECURSE
  "CMakeFiles/rma_property_test.dir/rma_property_test.cc.o"
  "CMakeFiles/rma_property_test.dir/rma_property_test.cc.o.d"
  "rma_property_test"
  "rma_property_test.pdb"
  "rma_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rma_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
