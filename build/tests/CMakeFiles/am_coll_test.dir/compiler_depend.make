# Empty compiler generated dependencies file for am_coll_test.
# This may be replaced when dependencies are built.
