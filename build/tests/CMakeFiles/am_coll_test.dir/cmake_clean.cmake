file(REMOVE_RECURSE
  "CMakeFiles/am_coll_test.dir/am_coll_test.cc.o"
  "CMakeFiles/am_coll_test.dir/am_coll_test.cc.o.d"
  "am_coll_test"
  "am_coll_test.pdb"
  "am_coll_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/am_coll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
