# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/rma_test[1]_include.cmake")
include("/root/repo/build/tests/am_coll_test[1]_include.cmake")
include("/root/repo/build/tests/crl_test[1]_include.cmake")
include("/root/repo/build/tests/splitc_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/backend_test[1]_include.cmake")
include("/root/repo/build/tests/rma_property_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
