# Empty dependencies file for bench_table2_get_trace.
# This may be replaced when dependencies are built.
