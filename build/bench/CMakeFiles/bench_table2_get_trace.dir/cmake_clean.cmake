file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_get_trace.dir/bench_table2_get_trace.cc.o"
  "CMakeFiles/bench_table2_get_trace.dir/bench_table2_get_trace.cc.o.d"
  "bench_table2_get_trace"
  "bench_table2_get_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_get_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
