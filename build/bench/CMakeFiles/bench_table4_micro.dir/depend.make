# Empty dependencies file for bench_table4_micro.
# This may be replaced when dependencies are built.
