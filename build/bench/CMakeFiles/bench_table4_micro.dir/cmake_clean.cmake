file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_micro.dir/bench_table4_micro.cc.o"
  "CMakeFiles/bench_table4_micro.dir/bench_table4_micro.cc.o.d"
  "bench_table4_micro"
  "bench_table4_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
