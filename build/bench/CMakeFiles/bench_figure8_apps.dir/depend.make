# Empty dependencies file for bench_figure8_apps.
# This may be replaced when dependencies are built.
