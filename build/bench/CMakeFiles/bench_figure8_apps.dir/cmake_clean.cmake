file(REMOVE_RECURSE
  "CMakeFiles/bench_figure8_apps.dir/bench_figure8_apps.cc.o"
  "CMakeFiles/bench_figure8_apps.dir/bench_figure8_apps.cc.o.d"
  "bench_figure8_apps"
  "bench_figure8_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure8_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
