# Empty dependencies file for bench_runtime_micro.
# This may be replaced when dependencies are built.
