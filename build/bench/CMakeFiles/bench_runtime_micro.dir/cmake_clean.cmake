file(REMOVE_RECURSE
  "CMakeFiles/bench_runtime_micro.dir/bench_runtime_micro.cc.o"
  "CMakeFiles/bench_runtime_micro.dir/bench_runtime_micro.cc.o.d"
  "bench_runtime_micro"
  "bench_runtime_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
