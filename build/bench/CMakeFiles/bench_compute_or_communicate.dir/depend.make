# Empty dependencies file for bench_compute_or_communicate.
# This may be replaced when dependencies are built.
