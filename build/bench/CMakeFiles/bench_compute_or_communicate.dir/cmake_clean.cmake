file(REMOVE_RECURSE
  "CMakeFiles/bench_compute_or_communicate.dir/bench_compute_or_communicate.cc.o"
  "CMakeFiles/bench_compute_or_communicate.dir/bench_compute_or_communicate.cc.o.d"
  "bench_compute_or_communicate"
  "bench_compute_or_communicate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compute_or_communicate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
