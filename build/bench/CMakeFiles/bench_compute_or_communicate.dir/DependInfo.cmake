
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_compute_or_communicate.cc" "bench/CMakeFiles/bench_compute_or_communicate.dir/bench_compute_or_communicate.cc.o" "gcc" "bench/CMakeFiles/bench_compute_or_communicate.dir/bench_compute_or_communicate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/mp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/crl/CMakeFiles/mp_crl.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/mp_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/am/CMakeFiles/mp_am.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/mp_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/rma/CMakeFiles/mp_rma.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/mp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
