file(REMOVE_RECURSE
  "CMakeFiles/bench_figure9_smp4x4.dir/bench_figure9_smp4x4.cc.o"
  "CMakeFiles/bench_figure9_smp4x4.dir/bench_figure9_smp4x4.cc.o.d"
  "bench_figure9_smp4x4"
  "bench_figure9_smp4x4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure9_smp4x4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
