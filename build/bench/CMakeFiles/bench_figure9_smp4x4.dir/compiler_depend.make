# Empty compiler generated dependencies file for bench_figure9_smp4x4.
# This may be replaced when dependencies are built.
