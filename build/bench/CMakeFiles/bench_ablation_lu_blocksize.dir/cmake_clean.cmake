file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lu_blocksize.dir/bench_ablation_lu_blocksize.cc.o"
  "CMakeFiles/bench_ablation_lu_blocksize.dir/bench_ablation_lu_blocksize.cc.o.d"
  "bench_ablation_lu_blocksize"
  "bench_ablation_lu_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lu_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
