# Empty dependencies file for bench_ablation_lu_blocksize.
# This may be replaced when dependencies are built.
