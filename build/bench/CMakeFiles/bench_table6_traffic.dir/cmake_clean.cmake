file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_traffic.dir/bench_table6_traffic.cc.o"
  "CMakeFiles/bench_table6_traffic.dir/bench_table6_traffic.cc.o.d"
  "bench_table6_traffic"
  "bench_table6_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
