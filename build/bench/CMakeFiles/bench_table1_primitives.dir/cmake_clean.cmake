file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_primitives.dir/bench_table1_primitives.cc.o"
  "CMakeFiles/bench_table1_primitives.dir/bench_table1_primitives.cc.o.d"
  "bench_table1_primitives"
  "bench_table1_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
