# Empty dependencies file for bench_table1_primitives.
# This may be replaced when dependencies are built.
