# Empty compiler generated dependencies file for bench_table3_design_points.
# This may be replaced when dependencies are built.
