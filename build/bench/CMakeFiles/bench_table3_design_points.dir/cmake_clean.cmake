file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_design_points.dir/bench_table3_design_points.cc.o"
  "CMakeFiles/bench_table3_design_points.dir/bench_table3_design_points.cc.o.d"
  "bench_table3_design_points"
  "bench_table3_design_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_design_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
