file(REMOVE_RECURSE
  "CMakeFiles/bench_figure7_pingpong.dir/bench_figure7_pingpong.cc.o"
  "CMakeFiles/bench_figure7_pingpong.dir/bench_figure7_pingpong.cc.o.d"
  "bench_figure7_pingpong"
  "bench_figure7_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figure7_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
