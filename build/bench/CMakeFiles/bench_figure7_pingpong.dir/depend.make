# Empty dependencies file for bench_figure7_pingpong.
# This may be replaced when dependencies are built.
