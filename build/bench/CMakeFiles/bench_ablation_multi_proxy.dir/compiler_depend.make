# Empty compiler generated dependencies file for bench_ablation_multi_proxy.
# This may be replaced when dependencies are built.
