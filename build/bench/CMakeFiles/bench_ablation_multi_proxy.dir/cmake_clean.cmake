file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multi_proxy.dir/bench_ablation_multi_proxy.cc.o"
  "CMakeFiles/bench_ablation_multi_proxy.dir/bench_ablation_multi_proxy.cc.o.d"
  "bench_ablation_multi_proxy"
  "bench_ablation_multi_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multi_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
