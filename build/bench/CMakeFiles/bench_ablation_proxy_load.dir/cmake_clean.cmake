file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_proxy_load.dir/bench_ablation_proxy_load.cc.o"
  "CMakeFiles/bench_ablation_proxy_load.dir/bench_ablation_proxy_load.cc.o.d"
  "bench_ablation_proxy_load"
  "bench_ablation_proxy_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_proxy_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
