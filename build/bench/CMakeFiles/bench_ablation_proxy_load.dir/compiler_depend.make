# Empty compiler generated dependencies file for bench_ablation_proxy_load.
# This may be replaced when dependencies are built.
