# Empty compiler generated dependencies file for bench_ablation_cache_update.
# This may be replaced when dependencies are built.
