file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cache_update.dir/bench_ablation_cache_update.cc.o"
  "CMakeFiles/bench_ablation_cache_update.dir/bench_ablation_cache_update.cc.o.d"
  "bench_ablation_cache_update"
  "bench_ablation_cache_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cache_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
