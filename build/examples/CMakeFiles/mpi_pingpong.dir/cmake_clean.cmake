file(REMOVE_RECURSE
  "CMakeFiles/mpi_pingpong.dir/mpi_pingpong.cpp.o"
  "CMakeFiles/mpi_pingpong.dir/mpi_pingpong.cpp.o.d"
  "mpi_pingpong"
  "mpi_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
