# Empty compiler generated dependencies file for mpi_pingpong.
# This may be replaced when dependencies are built.
