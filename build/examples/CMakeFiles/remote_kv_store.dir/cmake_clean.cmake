file(REMOVE_RECURSE
  "CMakeFiles/remote_kv_store.dir/remote_kv_store.cpp.o"
  "CMakeFiles/remote_kv_store.dir/remote_kv_store.cpp.o.d"
  "remote_kv_store"
  "remote_kv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remote_kv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
