# Empty dependencies file for remote_kv_store.
# This may be replaced when dependencies are built.
