# Empty dependencies file for heat_diffusion.
# This may be replaced when dependencies are built.
