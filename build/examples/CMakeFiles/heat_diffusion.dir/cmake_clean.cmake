file(REMOVE_RECURSE
  "CMakeFiles/heat_diffusion.dir/heat_diffusion.cpp.o"
  "CMakeFiles/heat_diffusion.dir/heat_diffusion.cpp.o.d"
  "heat_diffusion"
  "heat_diffusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_diffusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
