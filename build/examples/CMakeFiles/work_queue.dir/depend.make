# Empty dependencies file for work_queue.
# This may be replaced when dependencies are built.
