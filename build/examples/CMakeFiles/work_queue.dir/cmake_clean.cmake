file(REMOVE_RECURSE
  "CMakeFiles/work_queue.dir/work_queue.cpp.o"
  "CMakeFiles/work_queue.dir/work_queue.cpp.o.d"
  "work_queue"
  "work_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/work_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
