# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_remote_kv_store "/root/repo/build/examples/remote_kv_store")
set_tests_properties(example_remote_kv_store PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_heat_diffusion "/root/repo/build/examples/heat_diffusion" "128" "10")
set_tests_properties(example_heat_diffusion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_design_space "/root/repo/build/examples/design_space")
set_tests_properties(example_design_space PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mpi_pingpong "/root/repo/build/examples/mpi_pingpong")
set_tests_properties(example_mpi_pingpong PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_work_queue "/root/repo/build/examples/work_queue")
set_tests_properties(example_work_queue PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;33;add_test;/root/repo/examples/CMakeLists.txt;0;")
