file(REMOVE_RECURSE
  "CMakeFiles/mp_util.dir/log.cc.o"
  "CMakeFiles/mp_util.dir/log.cc.o.d"
  "CMakeFiles/mp_util.dir/table.cc.o"
  "CMakeFiles/mp_util.dir/table.cc.o.d"
  "libmp_util.a"
  "libmp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
