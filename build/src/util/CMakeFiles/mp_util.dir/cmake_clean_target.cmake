file(REMOVE_RECURSE
  "libmp_util.a"
)
