# Empty dependencies file for mp_util.
# This may be replaced when dependencies are built.
