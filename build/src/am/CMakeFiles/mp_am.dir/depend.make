# Empty dependencies file for mp_am.
# This may be replaced when dependencies are built.
