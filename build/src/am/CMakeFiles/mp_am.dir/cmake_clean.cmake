file(REMOVE_RECURSE
  "CMakeFiles/mp_am.dir/am.cc.o"
  "CMakeFiles/mp_am.dir/am.cc.o.d"
  "libmp_am.a"
  "libmp_am.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_am.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
