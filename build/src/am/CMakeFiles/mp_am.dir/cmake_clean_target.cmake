file(REMOVE_RECURSE
  "libmp_am.a"
)
