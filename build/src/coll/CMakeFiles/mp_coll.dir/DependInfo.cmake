
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll/coll.cc" "src/coll/CMakeFiles/mp_coll.dir/coll.cc.o" "gcc" "src/coll/CMakeFiles/mp_coll.dir/coll.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/am/CMakeFiles/mp_am.dir/DependInfo.cmake"
  "/root/repo/build/src/rma/CMakeFiles/mp_rma.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/mp_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
