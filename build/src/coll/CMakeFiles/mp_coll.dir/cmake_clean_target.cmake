file(REMOVE_RECURSE
  "libmp_coll.a"
)
