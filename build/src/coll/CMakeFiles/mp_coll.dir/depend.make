# Empty dependencies file for mp_coll.
# This may be replaced when dependencies are built.
