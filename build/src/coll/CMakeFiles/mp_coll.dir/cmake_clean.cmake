file(REMOVE_RECURSE
  "CMakeFiles/mp_coll.dir/coll.cc.o"
  "CMakeFiles/mp_coll.dir/coll.cc.o.d"
  "libmp_coll.a"
  "libmp_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
