file(REMOVE_RECURSE
  "CMakeFiles/mp_backend.dir/factory.cc.o"
  "CMakeFiles/mp_backend.dir/factory.cc.o.d"
  "CMakeFiles/mp_backend.dir/hw_backend.cc.o"
  "CMakeFiles/mp_backend.dir/hw_backend.cc.o.d"
  "CMakeFiles/mp_backend.dir/proxy_backend.cc.o"
  "CMakeFiles/mp_backend.dir/proxy_backend.cc.o.d"
  "CMakeFiles/mp_backend.dir/sw_backend.cc.o"
  "CMakeFiles/mp_backend.dir/sw_backend.cc.o.d"
  "libmp_backend.a"
  "libmp_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
