file(REMOVE_RECURSE
  "libmp_backend.a"
)
