# Empty dependencies file for mp_backend.
# This may be replaced when dependencies are built.
