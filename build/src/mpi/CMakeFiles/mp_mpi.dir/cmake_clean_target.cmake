file(REMOVE_RECURSE
  "libmp_mpi.a"
)
