# Empty dependencies file for mp_mpi.
# This may be replaced when dependencies are built.
