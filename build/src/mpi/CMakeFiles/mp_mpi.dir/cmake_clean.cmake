file(REMOVE_RECURSE
  "CMakeFiles/mp_mpi.dir/mpi.cc.o"
  "CMakeFiles/mp_mpi.dir/mpi.cc.o.d"
  "libmp_mpi.a"
  "libmp_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
