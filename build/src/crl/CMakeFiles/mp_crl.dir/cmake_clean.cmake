file(REMOVE_RECURSE
  "CMakeFiles/mp_crl.dir/crl.cc.o"
  "CMakeFiles/mp_crl.dir/crl.cc.o.d"
  "libmp_crl.a"
  "libmp_crl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_crl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
