file(REMOVE_RECURSE
  "libmp_crl.a"
)
