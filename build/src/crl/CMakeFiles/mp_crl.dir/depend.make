# Empty dependencies file for mp_crl.
# This may be replaced when dependencies are built.
