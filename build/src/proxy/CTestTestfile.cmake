# CMake generated Testfile for 
# Source directory: /root/repo/src/proxy
# Build directory: /root/repo/build/src/proxy
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
