file(REMOVE_RECURSE
  "libmp_proxy.a"
)
