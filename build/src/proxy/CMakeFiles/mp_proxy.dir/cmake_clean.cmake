file(REMOVE_RECURSE
  "CMakeFiles/mp_proxy.dir/runtime.cc.o"
  "CMakeFiles/mp_proxy.dir/runtime.cc.o.d"
  "libmp_proxy.a"
  "libmp_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
