# Empty dependencies file for mp_proxy.
# This may be replaced when dependencies are built.
