# Empty compiler generated dependencies file for mp_rma.
# This may be replaced when dependencies are built.
