file(REMOVE_RECURSE
  "libmp_rma.a"
)
