file(REMOVE_RECURSE
  "CMakeFiles/mp_rma.dir/address_space.cc.o"
  "CMakeFiles/mp_rma.dir/address_space.cc.o.d"
  "CMakeFiles/mp_rma.dir/system.cc.o"
  "CMakeFiles/mp_rma.dir/system.cc.o.d"
  "libmp_rma.a"
  "libmp_rma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_rma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
