
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rma/address_space.cc" "src/rma/CMakeFiles/mp_rma.dir/address_space.cc.o" "gcc" "src/rma/CMakeFiles/mp_rma.dir/address_space.cc.o.d"
  "/root/repo/src/rma/system.cc" "src/rma/CMakeFiles/mp_rma.dir/system.cc.o" "gcc" "src/rma/CMakeFiles/mp_rma.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/mp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
