file(REMOVE_RECURSE
  "libmp_sim.a"
)
