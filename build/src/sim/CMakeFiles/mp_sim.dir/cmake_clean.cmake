file(REMOVE_RECURSE
  "CMakeFiles/mp_sim.dir/scheduler.cc.o"
  "CMakeFiles/mp_sim.dir/scheduler.cc.o.d"
  "libmp_sim.a"
  "libmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
