# Empty compiler generated dependencies file for mp_sim.
# This may be replaced when dependencies are built.
