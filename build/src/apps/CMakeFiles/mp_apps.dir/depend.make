# Empty dependencies file for mp_apps.
# This may be replaced when dependencies are built.
