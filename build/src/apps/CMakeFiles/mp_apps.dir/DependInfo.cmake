
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/barnes.cc" "src/apps/CMakeFiles/mp_apps.dir/barnes.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/barnes.cc.o.d"
  "/root/repo/src/apps/fft.cc" "src/apps/CMakeFiles/mp_apps.dir/fft.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/fft.cc.o.d"
  "/root/repo/src/apps/lu.cc" "src/apps/CMakeFiles/mp_apps.dir/lu.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/lu.cc.o.d"
  "/root/repo/src/apps/mm.cc" "src/apps/CMakeFiles/mp_apps.dir/mm.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/mm.cc.o.d"
  "/root/repo/src/apps/moldy.cc" "src/apps/CMakeFiles/mp_apps.dir/moldy.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/moldy.cc.o.d"
  "/root/repo/src/apps/pray.cc" "src/apps/CMakeFiles/mp_apps.dir/pray.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/pray.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/apps/CMakeFiles/mp_apps.dir/registry.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/registry.cc.o.d"
  "/root/repo/src/apps/sample.cc" "src/apps/CMakeFiles/mp_apps.dir/sample.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/sample.cc.o.d"
  "/root/repo/src/apps/sampleb.cc" "src/apps/CMakeFiles/mp_apps.dir/sampleb.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/sampleb.cc.o.d"
  "/root/repo/src/apps/water.cc" "src/apps/CMakeFiles/mp_apps.dir/water.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/water.cc.o.d"
  "/root/repo/src/apps/wator.cc" "src/apps/CMakeFiles/mp_apps.dir/wator.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/wator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crl/CMakeFiles/mp_crl.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/mp_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/am/CMakeFiles/mp_am.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/mp_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/rma/CMakeFiles/mp_rma.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/mp_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
