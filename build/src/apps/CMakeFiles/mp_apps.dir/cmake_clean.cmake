file(REMOVE_RECURSE
  "CMakeFiles/mp_apps.dir/barnes.cc.o"
  "CMakeFiles/mp_apps.dir/barnes.cc.o.d"
  "CMakeFiles/mp_apps.dir/fft.cc.o"
  "CMakeFiles/mp_apps.dir/fft.cc.o.d"
  "CMakeFiles/mp_apps.dir/lu.cc.o"
  "CMakeFiles/mp_apps.dir/lu.cc.o.d"
  "CMakeFiles/mp_apps.dir/mm.cc.o"
  "CMakeFiles/mp_apps.dir/mm.cc.o.d"
  "CMakeFiles/mp_apps.dir/moldy.cc.o"
  "CMakeFiles/mp_apps.dir/moldy.cc.o.d"
  "CMakeFiles/mp_apps.dir/pray.cc.o"
  "CMakeFiles/mp_apps.dir/pray.cc.o.d"
  "CMakeFiles/mp_apps.dir/registry.cc.o"
  "CMakeFiles/mp_apps.dir/registry.cc.o.d"
  "CMakeFiles/mp_apps.dir/sample.cc.o"
  "CMakeFiles/mp_apps.dir/sample.cc.o.d"
  "CMakeFiles/mp_apps.dir/sampleb.cc.o"
  "CMakeFiles/mp_apps.dir/sampleb.cc.o.d"
  "CMakeFiles/mp_apps.dir/water.cc.o"
  "CMakeFiles/mp_apps.dir/water.cc.o.d"
  "CMakeFiles/mp_apps.dir/wator.cc.o"
  "CMakeFiles/mp_apps.dir/wator.cc.o.d"
  "libmp_apps.a"
  "libmp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
