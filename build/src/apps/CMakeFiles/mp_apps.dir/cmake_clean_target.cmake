file(REMOVE_RECURSE
  "libmp_apps.a"
)
