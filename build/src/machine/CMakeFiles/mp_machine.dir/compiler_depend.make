# Empty compiler generated dependencies file for mp_machine.
# This may be replaced when dependencies are built.
