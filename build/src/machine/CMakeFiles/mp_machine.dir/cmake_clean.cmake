file(REMOVE_RECURSE
  "CMakeFiles/mp_machine.dir/design_point.cc.o"
  "CMakeFiles/mp_machine.dir/design_point.cc.o.d"
  "libmp_machine.a"
  "libmp_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
