file(REMOVE_RECURSE
  "libmp_machine.a"
)
