/// \file
/// Real-runtime counterpart of the paper's Table 2: the per-stage
/// latency breakdown of an 8-byte GET, measured on the host-thread
/// proxy runtime from the obs:: stage trace instead of the
/// simulator's analytic terms. Each traced GET contributes one
/// timestamp per lifecycle stage (submit, doorbell, proxy pickup,
/// wire out, remote handler, reply in, complete); the consecutive
/// deltas telescope to the trace's end-to-end latency, which is
/// cross-checked against the caller-observed wall latency of the
/// same ops.
///
/// Also measures the tracing-DISABLED 8-byte PUT pingpong so
/// tools/check.sh can assert the observability layer costs nothing
/// when off (vs the committed BENCH_runtime.json snapshot).
///
/// `--quick` shrinks iteration counts to a smoke size (used by
/// tools/check.sh obs / bench-smoke). Machine-readable lines:
///   STAGES_MONOTONE=0|1      every traced GET saw all 7 stages in
///                            causal order with non-decreasing time
///   STAGE_SUM_WITHIN_10PCT=0|1  mean telescoped stage sum within
///                            10% of the mean wall-clock GET latency
///   TRACE_DROPS_TOTAL=N      trace-ring drops across both nodes
///   PINGPONG_PUT8_NS=X       tracing-disabled PUT pingpong latency

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "obs/trace.h"
#include "bench/bench_wiring.h"
#include "proxy/runtime.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

/// Two single-proxy nodes; node 1 exports a segment. Tracing per
/// `traced`, ring sized so a full run fits without drops.
struct Pair
{
    explicit Pair(bool traced)
        : n0(benchwire::with_transport(
              {.id = 0, .obs = {traced, 1 << 14}})),
          n1(benchwire::with_transport(
              {.id = 1, .obs = {traced, 1 << 14}}))
    {
        ep0 = &n0.create_endpoint();
        ep1 = &n1.create_endpoint();
        benchwire::wire(n0, n1);
        remote.resize(1 << 16);
        seg = ep1->register_segment(remote.data(), remote.size());
        n0.start();
        n1.start();
    }

    proxy::Node n0, n1;
    proxy::Endpoint* ep0;
    proxy::Endpoint* ep1;
    std::vector<uint8_t> remote;
    uint16_t seg = 0;
};

/// ns per call of `op` over a warmed, fixed-iteration window.
template <typename F>
double
measure_ns(int warmup, int iters, F&& op)
{
    using clock = std::chrono::steady_clock;
    for (int i = 0; i < warmup; ++i)
        op();
    const auto t0 = clock::now();
    for (int i = 0; i < iters; ++i)
        op();
    return std::chrono::duration<double, std::nano>(clock::now() - t0)
               .count() /
           iters;
}

/// 0 for the empty-Summary inf sentinels: keeps "inf"/"nan" out of
/// every emitted table and csv even on a degenerate run.
double
safe(double v)
{
    return std::isfinite(v) ? v : 0.0;
}

/// The six consecutive stage transitions of a request/reply op.
const char* const kTransition[obs::kNumStages - 1] = {
    "submit -> doorbell (validate + enqueue)",
    "doorbell -> proxy pickup",
    "pickup -> wire out (request processing)",
    "wire out -> remote handler",
    "remote handler -> reply in",
    "reply in -> complete (store + lsync)",
};

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            quick = true;
    }
    const int kWarmup = quick ? 50 : 500;
    const int kOps = quick ? 200 : 1000;

    // ---- traced 8-byte GETs ------------------------------------
    // One GET in flight at a time (quiescent system, as in the
    // paper's Table 2). Wall latency is sampled per op around the
    // submit + completion wait.
    Pair traced(true);
    std::vector<uint8_t> dst(8);
    proxy::Flag lsync{0};
    uint64_t expect = 0;
    for (int i = 0; i < kWarmup; ++i) {
        while (!traced.ep0->get(dst.data(), 1, traced.seg, 0, 8, &lsync))
            std::this_thread::yield();
        proxy::flag_wait_ge(lsync, ++expect);
    }
    // Only the measured window should sit in the rings.
    const uint64_t warm_recorded =
        traced.n0.trace_recorded() + traced.n1.trace_recorded();
    mp::Summary wall;
    std::vector<uint64_t> issue_ns; // caller clock just before submit
    issue_ns.reserve(static_cast<size_t>(kOps));
    using clock = std::chrono::steady_clock;
    for (int i = 0; i < kOps; ++i) {
        const auto t0 = clock::now();
        issue_ns.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                t0.time_since_epoch())
                .count()));
        while (!traced.ep0->get(dst.data(), 1, traced.seg, 0, 8, &lsync))
            std::this_thread::yield();
        proxy::flag_wait_ge(lsync, ++expect);
        wall.add(std::chrono::duration<double, std::nano>(clock::now() -
                                                          t0)
                     .count());
    }
    traced.n0.stop();
    traced.n1.stop();

    const uint64_t drops =
        traced.n0.trace_drops() + traced.n1.trace_drops();

    // Stitch stages per operation id across both nodes.
    std::vector<obs::TraceEvent> events = traced.n0.trace_snapshot();
    for (const obs::TraceEvent& e : traced.n1.trace_snapshot())
        events.push_back(e);
    // tid -> per-stage timestamp (0 = missing).
    struct OpTrace
    {
        uint64_t ts[obs::kNumStages] = {};
        int seen = 0;
    };
    std::vector<std::pair<uint64_t, OpTrace>> ops;
    auto find_op = [&ops](uint64_t tid) -> OpTrace& {
        for (auto& p : ops) {
            if (p.first == tid)
                return p.second;
        }
        ops.emplace_back(tid, OpTrace{});
        return ops.back().second;
    };
    for (const obs::TraceEvent& e : events) {
        OpTrace& t = find_op(e.tid);
        t.ts[static_cast<int>(e.stage)] = e.ts_ns;
        ++t.seen;
    }

    // Monotonicity over every traced op, warmup included.
    bool monotone = true;
    for (const auto& p : ops) {
        const OpTrace& t = p.second;
        if (t.seen != obs::kNumStages)
            continue;
        for (int s = 0; s + 1 < obs::kNumStages; ++s) {
            if (t.ts[s + 1] < t.ts[s])
                monotone = false;
        }
    }

    // Per-stage statistics over the measured window only, so the
    // telescoped stage sum and the caller-anchored end-to-end below
    // describe the same population of ops (warmup outliers hitting
    // only one of the two would skew the cross-check). tids are
    // issued serially from one endpoint, so sorted-by-tid order is
    // issue order and the last kOps entries are the measured window.
    std::sort(ops.begin(), ops.end(),
              [](const std::pair<uint64_t, OpTrace>& a,
                 const std::pair<uint64_t, OpTrace>& b) {
                  return a.first < b.first;
              });
    const bool matched =
        ops.size() == static_cast<size_t>(kWarmup + kOps);
    const size_t first = matched ? static_cast<size_t>(kWarmup) : 0;
    mp::Summary delta[obs::kNumStages - 1];
    mp::Summary total;
    mp::Summary e2e;
    size_t complete_ops = 0;
    for (size_t i = first; i < ops.size(); ++i) {
        const OpTrace& t = ops[i].second;
        if (t.seen != obs::kNumStages)
            continue; // op whose early stages were overwritten
        ++complete_ops;
        for (int s = 0; s + 1 < obs::kNumStages; ++s)
            delta[s].add(static_cast<double>(t.ts[s + 1] - t.ts[s]));
        const uint64_t done = t.ts[obs::kNumStages - 1];
        total.add(static_cast<double>(done - t.ts[0]));
        // Caller-anchored end-to-end: issue timestamp (caller clock
        // just before submit — same steady_clock as the stage
        // stamps) to the completion action. This is the op's true
        // extent; the wall number additionally pays the
        // post-completion scheduler hop that wakes the waiting user
        // thread, which on a single-hardware-thread host dwarfs the
        // op itself.
        const uint64_t issued =
            matched ? issue_ns[i - first] : t.ts[0];
        if (done > issued)
            e2e.add(static_cast<double>(done - issued));
    }
    if (complete_ops == 0)
        monotone = false;

    mp::TablePrinter table(
        "Table 2 (real runtime): stage breakdown of an 8-byte GET, "
        "2 nodes x 1 proxy thread, quiescent, " +
        std::to_string(complete_ops) +
        " traced ops. Host-thread runtime: stages are software + "
        "scheduler costs, not the paper's hardware terms.");
    table.set_header(
        {"Stage transition", "mean us", "min us", "max us", "%"});
    for (int s = 0; s + 1 < obs::kNumStages; ++s) {
        table.add_row(
            {kTransition[s],
             mp::TablePrinter::num(delta[s].mean() / 1e3, 2),
             mp::TablePrinter::num(safe(delta[s].min()) / 1e3, 2),
             mp::TablePrinter::num(safe(delta[s].max()) / 1e3, 2),
             mp::TablePrinter::num(
                 total.mean() > 0.0
                     ? 100.0 * delta[s].mean() / total.mean()
                     : 0.0,
                 1)});
    }
    table.add_row({"total (telescoped)",
                   mp::TablePrinter::num(total.mean() / 1e3, 2),
                   mp::TablePrinter::num(safe(total.min()) / 1e3, 2),
                   mp::TablePrinter::num(safe(total.max()) / 1e3, 2),
                   "100"});
    table.print();
    table.write_csv("bench_table2_runtime.csv");

    const double sum_ratio =
        e2e.mean() > 0.0 ? total.mean() / e2e.mean() : 0.0;
    std::printf("\nMean end-to-end (issue -> complete): %.2f us\n",
                e2e.mean() / 1e3);
    std::printf("Mean stage sum (telescoped):         %.2f us "
                "(%.1f%% of end-to-end)\n",
                total.mean() / 1e3, 100.0 * sum_ratio);
    std::printf("Mean wall (incl. waiter wakeup):     %.2f us\n",
                wall.mean() / 1e3);
    std::printf("Paper Table 2 total:    27.5 + L us (MP0 model)\n");

    // Exported artifacts: the merged Chrome trace (load in Perfetto /
    // chrome://tracing) and the issuing node's stats snapshot.
    {
        std::ofstream tf("bench_table2_runtime.trace.json");
        proxy::Node::export_chrome_trace(tf, {&traced.n0, &traced.n1});
        std::ofstream sf("bench_table2_runtime.stats.json");
        traced.n0.dump_json(sf);
    }
    std::printf("trace -> bench_table2_runtime.trace.json, snapshot -> "
                "bench_table2_runtime.stats.json\n");

    // ---- tracing-disabled 8-byte PUT pingpong -------------------
    // The overhead gate: with obs off this must match the committed
    // BENCH_runtime.json pingpong_put8 within noise.
    double put8_ns = 0.0;
    {
        Pair off(false);
        uint8_t v = 0x77;
        proxy::Flag rsync{0};
        uint64_t rexpect = 0;
        put8_ns = measure_ns(kWarmup, quick ? 2000 : 20000, [&] {
            while (!off.ep0->put(&v, 1, off.seg, 0, 1, nullptr, &rsync))
                std::this_thread::yield();
            proxy::flag_wait_ge(rsync, ++rexpect);
        });
        off.n0.stop();
        off.n1.stop();
        if (off.n0.trace_recorded() + off.n1.trace_recorded() != 0) {
            std::printf("ERROR: disabled run recorded trace events\n");
            return 1;
        }
    }

    const bool sum_ok =
        sum_ratio >= 0.9 && sum_ratio <= 1.1 && complete_ops > 0;
    std::printf("\nSTAGES_MONOTONE=%d\n", monotone ? 1 : 0);
    std::printf("STAGE_SUM_WITHIN_10PCT=%d\n", sum_ok ? 1 : 0);
    std::printf("TRACE_DROPS_TOTAL=%llu\n",
                static_cast<unsigned long long>(drops));
    std::printf("COMPLETE_OPS=%zu\n", complete_ops);
    std::printf("WARM_RECORDED=%llu\n",
                static_cast<unsigned long long>(warm_recorded));
    std::printf("PINGPONG_PUT8_NS=%.1f\n", put8_ns);

    if (!quick) {
        // Quick (smoke) runs are too noisy to commit as trajectory.
        std::vector<benchjson::Record> recs;
        recs.push_back(benchjson::Record{"get8_wall", 1, wall.mean(),
                                         1e9 / wall.mean()});
        recs.push_back(benchjson::Record{"get8_stage_sum", 1,
                                         total.mean(),
                                         1e9 / total.mean()});
        benchjson::write("table2_runtime", recs);
        std::printf("trajectory: %zu records -> %s\n", recs.size(),
                    benchjson::path().c_str());
    }
    return monotone && sum_ok ? 0 : 1;
}
