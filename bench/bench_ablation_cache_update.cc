/// \file
/// Extension ablation (Section 7): the cache-update primitive applied
/// to BOTH architectures. The paper strongly suggests SMP and
/// processor designs support a direct cache-update primitive and
/// notes "custom hardware performance may also be enhanced by this
/// primitive" — HW2 quantifies that claim next to MP2.

#include <cstdio>

#include "apps/apps.h"
#include "bench/micro.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    int scale = 1;
    if (argc > 1)
        scale = std::atoi(argv[1]);

    std::vector<machine::DesignPoint> dps = {
        machine::hw1(), machine::hw2(), machine::mp1(), machine::mp2()};

    mp::TablePrinter t(
        "Ablation: the cache-update primitive applied to both "
        "architectures (HW2 = HW1 + cache update; MP2 = MP1 + cache "
        "update)");
    t.set_header({"Metric", "HW1", "HW2", "MP1", "MP2"});

    std::vector<std::string> put = {"PUT latency (us)"};
    std::vector<std::string> ovh = {"PUT+sync ovh (us)"};
    for (const auto& d : dps) {
        put.push_back(mp::TablePrinter::num(bench::put_latency(d, 8), 1));
        ovh.push_back(
            mp::TablePrinter::num(bench::put_sync_overhead(d), 2));
    }
    t.add_row(put);
    t.add_row(ovh);

    // Application-level effect on two overhead-sensitive programs.
    for (int ai : {3, 6}) { // Water, Sample
        const auto& app = apps::all_apps()[static_cast<size_t>(ai)];
        std::vector<std::string> row = {std::string(app.name) +
                                        " 16p (ms)"};
        for (const auto& d : dps) {
            rma::SystemConfig cfg;
            cfg.design = d;
            cfg.nodes = 16;
            cfg.procs_per_node = 1;
            auto res = app.fn(cfg, scale);
            row.push_back(
                mp::TablePrinter::num(res.elapsed_us / 1000.0, 2));
        }
        t.add_row(row);
    }
    t.print();
    t.write_csv("bench_ablation_cache_update.csv");
    std::printf("\nExpected: cache update helps both designs; it closes\n"
                "most of the proxy's gap (the paper's 7-25%% application\n"
                "improvement) and gives custom hardware a smaller but\n"
                "real boost, keeping the relative ordering.\n");
    return 0;
}
