/// \file
/// Reproduces Figure 9: speedups of the five applications with
/// significant communication workloads (LU, Barnes-Hut, Water,
/// Sample, Wator) on a configuration of 4 SMP nodes with 4 compute
/// processors per node. With four compute processors sharing one
/// message proxy, the MP1 proxy saturates and the HW1-MP1 gap widens;
/// the MP2 cache-update primitive lowers proxy occupancy enough to
/// support four compute processors reasonably well (Section 5.4).

#include <cstdio>
#include <numeric>

#include "apps/apps.h"
#include "machine/design_point.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    int scale = 1;
    if (argc > 1)
        scale = std::atoi(argv[1]);

    const int kApps[] = {1, 2, 3, 6, 9}; // LU, Barnes, Water, Sample, Wator
    const char* kDps[] = {"HW1", "MP1", "MP2", "SW1"};

    mp::TablePrinter t(
        "Figure 9: Speedups on 4 SMP nodes x 4 compute processors per "
        "node (vs T(1) on HW1); [16x1] column repeats the 16-node "
        "1-proc result for comparison");
    t.set_header({"Program", "HW1", "MP1", "MP2", "SW1",
                  "HW1 16x1", "MP1 16x1", "max proxy util (MP1)"});

    for (int ai : kApps) {
        const auto& app = apps::all_apps()[static_cast<size_t>(ai)];

        rma::SystemConfig base;
        base.design = machine::hw1();
        base.nodes = 1;
        base.procs_per_node = 1;
        double t1 = app.fn(base, scale).elapsed_us;

        std::vector<std::string> row = {app.name};
        double mp1_util = 0.0;
        for (const char* dpn : kDps) {
            rma::SystemConfig cfg;
            cfg.design = *machine::design_point_by_name(dpn);
            cfg.nodes = 4;
            cfg.procs_per_node = 4;
            auto res = app.fn(cfg, scale);
            if (!res.valid)
                std::printf("WARNING: %s/%s 4x4 self-check failed\n",
                            app.name, dpn);
            row.push_back(mp::TablePrinter::num(t1 / res.elapsed_us, 2));
            if (std::string(dpn) == "MP1") {
                for (double u : res.run.agent_utilization)
                    mp1_util = std::max(mp1_util, u);
            }
        }
        for (const char* dpn : {"HW1", "MP1"}) {
            rma::SystemConfig cfg;
            cfg.design = *machine::design_point_by_name(dpn);
            cfg.nodes = 16;
            cfg.procs_per_node = 1;
            auto res = app.fn(cfg, scale);
            row.push_back(mp::TablePrinter::num(t1 / res.elapsed_us, 2));
        }
        row.push_back(mp::TablePrinter::num(mp1_util * 100.0, 1) + "%");
        t.add_row(row);
    }
    t.print();
    t.write_csv("bench_figure9.csv");
    std::printf(
        "\nExpected shape (paper): compared with one processor per\n"
        "node, the HW1-MP1 gap increases substantially at 4x4 (the\n"
        "proxy is over-utilized), though intra-node communication\n"
        "reduces the load; MP2 supports four compute processors\n"
        "reasonably well.\n");
    return 0;
}
