/// \file
/// Reliability-overhead sweep: goodput of the reliable PUT path as a
/// function of injected drop rate (ISSUE 4). Two nodes x two proxy
/// threads move 4 KB blocks under a seeded net::FaultyChannel plan;
/// the go-back-N layer retransmits until every block lands, so the
/// measured quantity is *goodput* — delivered bytes over wall time,
/// retransmissions excluded. The r=0 row doubles as the reliability
/// tax on a clean fabric (compare put_sat4k in BENCH_runtime.json).
///
/// Emits results/bench_fault_sweep.csv (repo root baked in via
/// MSGPROXY_REPO_ROOT) and merges a "fault" section into
/// BENCH_runtime.json keyed by the drop percentage. `--quick` shrinks
/// the per-point block count for tools/check.sh bench-smoke.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_wiring.h"
#include "proxy/runtime.h"
#include "util/table.h"

namespace {

struct Point
{
    double elapsed_s = 0.0;
    uint64_t bytes = 0;
    uint64_t rexmit = 0;
    uint64_t dropped = 0;
    uint64_t pkt_leaks = 0;
};

proxy::NodeConfig
sweep_config(int id, double drop_rate)
{
    proxy::NodeConfig c;
    c.id = id;
    c.num_proxies = 2;
    // Recovery tuned for a deliberately lossy wire: short base RTO,
    // tight cap, effectively unlimited retries (the sweep measures
    // throughput degradation, not failover).
    c.reliability.window = 64;
    c.reliability.ack_every = 8;
    c.reliability.rto_ns = 100 * 1000;
    c.reliability.rto_max_ns = 2 * 1000 * 1000;
    c.reliability.max_retries = 1000000;
    c.fault_plan.seed = 42 + static_cast<uint64_t>(id);
    c.fault_plan.drop = drop_rate;
    benchwire::apply_transport(c);
    return c;
}

Point
run_put_sweep(double drop_rate, int puts_per_ep)
{
    constexpr int kEps = 4;
    constexpr uint32_t kBlock = 4096;
    constexpr uint64_t kWindow = 8;

    proxy::Node n0(sweep_config(0, drop_rate));
    proxy::Node n1(sweep_config(1, drop_rate));
    std::vector<proxy::Endpoint*> src, dst;
    std::vector<std::vector<uint8_t>> remote(
        kEps, std::vector<uint8_t>(kBlock));
    std::vector<uint16_t> segs(kEps);
    for (int i = 0; i < kEps; ++i) {
        src.push_back(&n0.create_endpoint());
        dst.push_back(&n1.create_endpoint());
        segs[static_cast<size_t>(i)] = dst.back()->register_segment(
            remote[static_cast<size_t>(i)].data(), kBlock);
    }
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<proxy::Flag> rsync(kEps);
    for (int m = 0; m < puts_per_ep; ++m) {
        for (int i = 0; i < kEps; ++i) {
            auto& f = rsync[static_cast<size_t>(i)];
            while (!src[static_cast<size_t>(i)]->put(
                remote[static_cast<size_t>(i)].data(), 1,
                segs[static_cast<size_t>(i)], 0, kBlock, nullptr,
                &f)) {
                std::this_thread::yield();
            }
            if (static_cast<uint64_t>(m) >= kWindow)
                proxy::flag_wait_ge(
                    f, static_cast<uint64_t>(m) + 1 - kWindow);
        }
    }
    for (int i = 0; i < kEps; ++i)
        proxy::flag_wait_ge(rsync[static_cast<size_t>(i)],
                            static_cast<uint64_t>(puts_per_ep));
    const auto t1 = std::chrono::steady_clock::now();

    // Quiesce before teardown: flag completion only means the PUTs
    // landed — retained window copies waiting on the final cumulative
    // ACK and standalone ACKs still in rings are legitimate transient
    // custody. The leak gate holds only once both pools balance.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
        const proxy::NodeStats a = n0.stats();
        const proxy::NodeStats b = n1.stats();
        if (a.pool_hits + b.pool_hits ==
                a.pool_returns + b.pool_returns &&
            a.pool_misses + b.pool_misses ==
                a.heap_frees + b.heap_frees)
            break;
        if (std::chrono::steady_clock::now() > deadline)
            break; // report the imbalance below instead of hanging
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    n0.stop();
    n1.stop();
    Point p;
    p.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
    p.bytes = static_cast<uint64_t>(kEps) *
              static_cast<uint64_t>(puts_per_ep) * kBlock;
    const proxy::NodeStats s0 = n0.stats();
    const proxy::NodeStats s1 = n1.stats();
    p.rexmit = s0.pkts_retransmitted + s1.pkts_retransmitted;
    p.dropped = s0.pkts_dropped + s1.pkts_dropped;
    p.pkt_leaks =
        (s0.pool_hits + s1.pool_hits -
         (s0.pool_returns + s1.pool_returns)) +
        (s0.pool_misses + s1.pool_misses -
         (s0.heap_frees + s1.heap_frees));
    return p;
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            quick = true;
    }
    const int puts_per_ep = quick ? 100 : 2000;

    mp::TablePrinter t(
        "Reliable-PUT goodput vs injected drop rate: 2 nodes x 2 "
        "proxies, 4 endpoints, 4 KB blocks, window 8, go-back-N "
        "(window 64, ack every 8, RTO 100 us..2 ms). Goodput counts "
        "delivered payload only; retransmissions show up as time.");
    t.set_header({"drop %", "goodput MB/s", "rexmit", "pkts dropped",
                  "pkt leaks"});
    std::vector<benchjson::Record> recs;
    uint64_t leaks_total = 0;
    for (double rate : {0.0, 0.01, 0.05, 0.10, 0.20, 0.50}) {
        Point p = run_put_sweep(rate, puts_per_ep);
        const double mbps = p.bytes / p.elapsed_s / 1e6;
        const double blocks_s = p.bytes / 4096.0 / p.elapsed_s;
        leaks_total += p.pkt_leaks;
        t.add_row({mp::TablePrinter::num(rate * 100, 1),
                   mp::TablePrinter::num(mbps, 1),
                   std::to_string(p.rexmit),
                   std::to_string(p.dropped),
                   std::to_string(p.pkt_leaks)});
        // Keyed by drop_pct; P stays the proxy count (this bench
        // always runs 2 proxies per node).
        recs.push_back(benchjson::Record{
            "put4k_goodput", 2, 1e9 / blocks_s, blocks_s,
            static_cast<int>(rate * 100 + 0.5)});
    }
    t.print();
#ifdef MSGPROXY_REPO_ROOT
    t.write_csv(std::string(MSGPROXY_REPO_ROOT) +
                "/results/bench_fault_sweep.csv");
#else
    t.write_csv("bench_fault_sweep.csv");
#endif
    // Same custody gate as the scaling bench, summed over the sweep.
    std::printf("PKT_LEAKS_TOTAL=%llu\n",
                static_cast<unsigned long long>(leaks_total));
    if (!quick)
        benchjson::write("fault", recs);
    return 0;
}
