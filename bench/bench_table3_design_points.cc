/// \file
/// Reproduces Table 3: the simulation parameters of the six design
/// points (HW0, HW1, MP0, MP1, MP2, SW1).

#include <functional>

#include "machine/design_point.h"
#include "util/table.h"

int
main()
{
    auto dps = machine::all_design_points();
    mp::TablePrinter t(
        "Table 3: Simulation parameters for the design points");
    std::vector<std::string> hdr = {"Parameter"};
    for (const auto& d : dps)
        hdr.push_back(d.name);
    t.set_header(hdr);

    auto row = [&](const std::string& name,
                   const std::function<std::string(
                       const machine::DesignPoint&)>& f) {
        std::vector<std::string> r = {name};
        for (const auto& d : dps)
            r.push_back(f(d));
        t.add_row(r);
    };

    row("Architecture", [](const machine::DesignPoint& d) {
        return std::string(machine::arch_name(d.arch));
    });
    row("Cache miss latency (us)", [](const machine::DesignPoint& d) {
        return mp::TablePrinter::num(d.c_miss_us, 2);
    });
    row("Proxy<->CPU miss w/ cache-update (us)",
        [](const machine::DesignPoint& d) {
            return d.cache_update ? mp::TablePrinter::num(d.c_update_us, 2)
                                  : std::string("-");
        });
    row("Processor speed (x75 MHz)", [](const machine::DesignPoint& d) {
        return mp::TablePrinter::num(d.speed, 1);
    });
    row("Compute-processor overhead (us)",
        [](const machine::DesignPoint& d) {
            return d.arch == machine::Arch::kProxy
                       ? mp::TablePrinter::num(
                             2.0 * d.proxy_miss() + d.insn(0.3), 2)
                       : mp::TablePrinter::num(d.cpu_ovh_us, 2);
        });
    row("Adapter overhead (us)", [](const machine::DesignPoint& d) {
        return d.arch == machine::Arch::kHardware
                   ? mp::TablePrinter::num(d.adapter_ovh_us, 2)
                   : std::string("-");
    });
    row("Syscall / interrupt (us)", [](const machine::DesignPoint& d) {
        return d.arch == machine::Arch::kSyscall
                   ? mp::TablePrinter::num(d.syscall_us, 1) + " / " +
                         mp::TablePrinter::num(d.interrupt_us, 1)
                   : std::string("-");
    });
    row("DMA bandwidth (MB/s)", [](const machine::DesignPoint& d) {
        return mp::TablePrinter::num(d.dma_bw_mbs, 0);
    });
    row("Network latency (us)", [](const machine::DesignPoint& d) {
        return mp::TablePrinter::num(d.net_lat_us, 2);
    });
    row("Network bandwidth (MB/s)", [](const machine::DesignPoint& d) {
        return mp::TablePrinter::num(d.net_bw_mbs, 0);
    });
    row("Page-pin cost (us/page)", [](const machine::DesignPoint& d) {
        return mp::TablePrinter::num(d.pin_page_us, 0);
    });
    row("Polling delay P (us)", [](const machine::DesignPoint& d) {
        return d.arch == machine::Arch::kProxy
                   ? mp::TablePrinter::num(d.poll_us, 1)
                   : std::string("-");
    });
    t.print();
    t.write_csv("bench_table3.csv");
    return 0;
}
