/// \file
/// Real-runtime proxy-scaling bench (Section 5.4 on host threads):
/// saturating multi-endpoint ENQ and PUT throughput against nodes
/// running 1, 2, and 4 proxy threads, with per-proxy counters so the
/// sharding and utilization are observable. `--quick` shrinks the
/// iteration counts to a smoke-test size (used by tools/check.sh
/// bench-smoke).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_wiring.h"
#include "proxy/runtime.h"
#include "util/table.h"

namespace {

struct Result
{
    double elapsed_s = 0.0;
    uint64_t items = 0; // messages or bytes
    uint64_t drops = 0;
    uint64_t pool_hits = 0;   // both nodes
    uint64_t pool_misses = 0; // both nodes (0 in steady state)
    uint64_t pkt_leaks = 0;   // unreturned packets after teardown
};

/// Waits (bounded) until both nodes' pools balance. Completion of the
/// workload does not mean custody has converged: retained go-back-N
/// window copies await the final cumulative ACK and standalone ACK
/// packets may still sit in rings. Collecting before this converges
/// would misreport legitimate transient custody as a leak.
void
quiesce_pools(const proxy::Node& a, const proxy::Node& b)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
        const proxy::NodeStats sa = a.stats();
        const proxy::NodeStats sb = b.stats();
        if (sa.pool_hits + sb.pool_hits ==
                sa.pool_returns + sb.pool_returns &&
            sa.pool_misses + sb.pool_misses ==
                sa.heap_frees + sb.heap_frees)
            return;
        if (std::chrono::steady_clock::now() > deadline)
            return; // let collect_pool report the imbalance
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

/// Sums the packet-pool counters of both nodes into `r`. Call after
/// quiesce_pools() + stop(): every pooled packet must be back in its
/// slab and every heap-fallback packet freed, so any imbalance is a
/// leak.
void
collect_pool(Result& r, const proxy::Node& a, const proxy::Node& b)
{
    const proxy::NodeStats sa = a.stats();
    const proxy::NodeStats sb = b.stats();
    r.pool_hits = sa.pool_hits + sb.pool_hits;
    r.pool_misses = sa.pool_misses + sb.pool_misses;
    r.pkt_leaks = (sa.pool_hits + sb.pool_hits -
                   (sa.pool_returns + sb.pool_returns)) +
                  (sa.pool_misses + sb.pool_misses -
                   (sa.heap_frees + sb.heap_frees));
}

/// Saturating ENQ: `threads` producer threads each drive
/// `eps_per_thread` endpoints on node 0 round-robin, firing
/// `msgs_per_ep` 64-byte messages at the matching sink endpoints on
/// node 1; the main thread drains every sink. Fire-and-forget: ring
/// overflows count as drops, so reported throughput is received
/// messages over wall time.
Result
run_enq(int num_proxies, int msgs_per_ep)
{
    constexpr int kThreads = 2;
    constexpr int kEpsPerThread = 2;
    constexpr int kEps = kThreads * kEpsPerThread;
    constexpr uint32_t kMsgBytes = 64;

    proxy::Node n0(benchwire::with_transport(
        {.id = 0, .num_proxies = num_proxies}));
    proxy::Node n1(benchwire::with_transport(
        {.id = 1, .num_proxies = num_proxies}));
    std::vector<proxy::Endpoint*> src, dst;
    for (int i = 0; i < kEps; ++i) {
        src.push_back(&n0.create_endpoint());
        dst.push_back(&n1.create_endpoint());
    }
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&, t] {
            uint8_t msg[kMsgBytes] = {0};
            for (int m = 0; m < msgs_per_ep; ++m) {
                for (int e = 0; e < kEpsPerThread; ++e) {
                    int i = t * kEpsPerThread + e;
                    std::memcpy(msg, &m, sizeof(m));
                    while (!src[static_cast<size_t>(i)]->enq(
                        msg, kMsgBytes, 1, i)) {
                        std::this_thread::yield();
                    }
                }
            }
        });
    }
    // Drain until every sent message was either received or counted
    // as a drop at the receive ring.
    const uint64_t sent =
        static_cast<uint64_t>(kEps) * static_cast<uint64_t>(msgs_per_ep);
    uint64_t received = 0;
    std::vector<uint8_t> out;
    while (received + n1.stats().enq_drops < sent) {
        bool any = false;
        for (int i = 0; i < kEps; ++i) {
            if (dst[static_cast<size_t>(i)]->try_recv(out)) {
                ++received;
                any = true;
            }
        }
        if (!any)
            std::this_thread::yield();
    }
    for (auto& p : producers)
        p.join();
    auto t1 = std::chrono::steady_clock::now();

    Result r;
    r.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
    r.items = received;
    r.drops = n1.stats().enq_drops;
    quiesce_pools(n0, n1);
    n0.stop();
    n1.stop();
    collect_pool(r, n0, n1);
    return r;
}

/// Saturating PUT: the same topology moving 4 KB blocks into
/// per-endpoint remote segments with a window of 8 outstanding PUTs
/// per endpoint (lsync-gated source reuse).
Result
run_put(int num_proxies, int puts_per_ep)
{
    constexpr int kThreads = 2;
    constexpr int kEpsPerThread = 2;
    constexpr int kEps = kThreads * kEpsPerThread;
    constexpr uint32_t kBlock = 4096;
    constexpr uint64_t kWindow = 8;

    proxy::Node n0(benchwire::with_transport(
        {.id = 0, .num_proxies = num_proxies}));
    proxy::Node n1(benchwire::with_transport(
        {.id = 1, .num_proxies = num_proxies}));
    std::vector<proxy::Endpoint*> src, dst;
    std::vector<std::vector<uint8_t>> remote(
        kEps, std::vector<uint8_t>(kBlock));
    std::vector<uint16_t> segs(kEps);
    for (int i = 0; i < kEps; ++i) {
        src.push_back(&n0.create_endpoint());
        dst.push_back(&n1.create_endpoint());
        segs[static_cast<size_t>(i)] =
            dst.back()->register_segment(
                remote[static_cast<size_t>(i)].data(), kBlock);
    }
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
        producers.emplace_back([&, t] {
            std::vector<uint8_t> block(kBlock, 0x5a);
            std::vector<proxy::Flag> rsync(kEpsPerThread);
            uint64_t issued = 0;
            for (int m = 0; m < puts_per_ep; ++m) {
                for (int e = 0; e < kEpsPerThread; ++e) {
                    int i = t * kEpsPerThread + e;
                    auto& f = rsync[static_cast<size_t>(e)];
                    while (!src[static_cast<size_t>(i)]->put(
                        block.data(), 1, segs[static_cast<size_t>(i)],
                        0, kBlock, nullptr, &f)) {
                        std::this_thread::yield();
                    }
                    ++issued;
                    if (static_cast<uint64_t>(m) >= kWindow) {
                        proxy::flag_wait_ge(
                            f, static_cast<uint64_t>(m) + 1 - kWindow);
                    }
                }
            }
            for (int e = 0; e < kEpsPerThread; ++e) {
                proxy::flag_wait_ge(
                    rsync[static_cast<size_t>(e)],
                    static_cast<uint64_t>(puts_per_ep));
            }
        });
    }
    for (auto& p : producers)
        p.join();
    auto t1 = std::chrono::steady_clock::now();

    Result r;
    r.elapsed_s = std::chrono::duration<double>(t1 - t0).count();
    r.items = static_cast<uint64_t>(kEps) *
              static_cast<uint64_t>(puts_per_ep) * kBlock;
    quiesce_pools(n0, n1);
    n0.stop();
    n1.stop();
    collect_pool(r, n0, n1);
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            quick = true;
    }
    const int msgs_per_ep = quick ? 1000 : 50000;
    const int puts_per_ep = quick ? 250 : 10000;

    mp::TablePrinter t(
        "Real-runtime proxy scaling: 2 nodes, 4 endpoints/node, 2 "
        "producer threads, saturating load (64 B ENQ, 4 KB PUT). "
        "Hardware threads: " +
        std::to_string(std::thread::hardware_concurrency()) +
        " — with fewer cores than proxies+producers the sweep "
        "measures scheduling overhead, not parallel speedup.");
    t.set_header({"Proxies/node", "ENQ Kmsg/s", "ENQ drops",
                  "PUT MB/s", "pool hits", "pool misses"});
    std::vector<benchjson::Record> recs;
    uint64_t pool_misses_total = 0;
    uint64_t pkt_leaks_total = 0;
    for (int p : {1, 2, 4}) {
        Result enq = run_enq(p, msgs_per_ep);
        Result put = run_put(p, puts_per_ep);
        const double enq_rate = enq.items / enq.elapsed_s;
        const double put_blocks =
            put.items / 4096.0 / put.elapsed_s; // 4 KB blocks/s
        pool_misses_total += enq.pool_misses + put.pool_misses;
        pkt_leaks_total += enq.pkt_leaks + put.pkt_leaks;
        t.add_row({std::to_string(p),
                   mp::TablePrinter::num(enq_rate / 1e3, 1),
                   std::to_string(enq.drops),
                   mp::TablePrinter::num(
                       put.items / put.elapsed_s / 1e6, 1),
                   std::to_string(enq.pool_hits + put.pool_hits),
                   std::to_string(enq.pool_misses + put.pool_misses)});
        // latency_ns is the inverse rate: ns per message (ENQ) or
        // per 4 KB block (PUT).
        recs.push_back(benchjson::Record{"enq_sat64", p,
                                         1e9 / enq_rate, enq_rate});
        recs.push_back(benchjson::Record{"put_sat4k", p,
                                         1e9 / put_blocks, put_blocks});
    }
    t.print();
    t.write_csv("bench_runtime_scaling.csv");
    // Steady-state allocation check consumed by tools/check.sh
    // bench-smoke: every wire packet of the sweep must have come
    // from the pools.
    std::printf("POOL_MISSES_TOTAL=%llu\n",
                static_cast<unsigned long long>(pool_misses_total));
    // Custody-leak gate (same consumer): after teardown every packet
    // checked out of a pool must be back (pool_hits == pool_returns)
    // and every heap fallback freed (pool_misses == heap_frees) — a
    // nonzero count means the wire path lost custody of a packet.
    std::printf("PKT_LEAKS_TOTAL=%llu\n",
                static_cast<unsigned long long>(pkt_leaks_total));
    if (!quick) {
        // Quick (smoke) runs are too noisy to commit as trajectory.
        benchjson::write("runtime_scaling", recs);
        std::printf("trajectory: %zu records -> %s\n", recs.size(),
                    benchjson::path().c_str());
    }

    // Per-proxy observability demo: rerun P=2 briefly and show the
    // sharded counters.
    {
        proxy::Node n0(
            benchwire::with_transport({.id = 0, .num_proxies = 2}));
        proxy::Node n1(
            benchwire::with_transport({.id = 1, .num_proxies = 2}));
        std::vector<proxy::Endpoint*> src, dst;
        for (int i = 0; i < 4; ++i) {
            src.push_back(&n0.create_endpoint());
            dst.push_back(&n1.create_endpoint());
        }
        benchwire::wire(n0, n1);
        n0.start();
        n1.start();
        uint8_t msg[32] = {7};
        for (int m = 0; m < 200; ++m) {
            for (int i = 0; i < 4; ++i) {
                while (!src[static_cast<size_t>(i)]->enq(msg, 32, 1, i))
                    std::this_thread::yield();
            }
        }
        std::vector<uint8_t> out;
        uint64_t received = 0;
        while (received + n1.stats().enq_drops < 800) {
            for (int i = 0; i < 4; ++i) {
                if (dst[static_cast<size_t>(i)]->try_recv(out))
                    ++received;
            }
        }
        n0.stop();
        n1.stop();
        std::printf("\nPer-proxy counters (node 0, P=2, 4 endpoints, "
                    "200 x 32 B ENQ each):\n");
        for (int p = 0; p < 2; ++p) {
            const proxy::ProxyStats& s = n0.proxy_stats(p);
            std::printf("  proxy %d: commands=%llu packets_out=%llu "
                        "polls=%llu idle_transitions=%llu "
                        "pool_hits=%llu pool_misses=%llu "
                        "batch_max=%llu\n",
                        p,
                        static_cast<unsigned long long>(
                            s.commands.load()),
                        static_cast<unsigned long long>(
                            s.packets_out.load()),
                        static_cast<unsigned long long>(s.polls.load()),
                        static_cast<unsigned long long>(
                            s.idle_transitions.load()),
                        static_cast<unsigned long long>(
                            s.pool_hits.load()),
                        static_cast<unsigned long long>(
                            s.pool_misses.load()),
                        static_cast<unsigned long long>(
                            s.batch_max.load()));
        }
    }
    return 0;
}
