/// \file
/// Reproduces Table 1: the primitive operations in the critical path
/// of message-proxy communication and their values on the (modelled)
/// IBM Model G30 SMP.

#include "machine/design_point.h"
#include "util/table.h"

int
main()
{
    auto dp = machine::mp0();
    mp::TablePrinter t(
        "Table 1: Primitive operations in the critical path of message "
        "proxy based communication (IBM Model G30 values)");
    t.set_header({"Variable", "Definition", "Value"});
    t.add_row({"C", "time to service a cache miss",
               mp::TablePrinter::num(dp.c_miss_us, 2) + " us"});
    t.add_row({"U", "uncached access to the network adapter",
               mp::TablePrinter::num(dp.u_access_us, 2) + " us"});
    t.add_row({"V", "vm_att/vm_det cross-memory attach",
               mp::TablePrinter::num(dp.v_att_us, 2) + " us"});
    t.add_row({"P", "mean polling delay of the proxy loop",
               mp::TablePrinter::num(dp.poll_us, 2) + " us"});
    t.add_row({"S", "processor speed (multiple of 75 MHz)",
               mp::TablePrinter::num(dp.speed, 1)});
    t.add_row({"L", "network transit latency",
               mp::TablePrinter::num(dp.net_lat_us, 2) + " us"});
    t.print();
    t.write_csv("bench_table1.csv");

    mp::TablePrinter m("Derived one-word latency model (Section 4.1)");
    m.set_header({"Operation", "Model", "Value (MP0, L=1us)"});
    double get_model = 10 * dp.c_miss_us + 6 * dp.u_access_us +
                       3 * dp.v_att_us + 3.6 / dp.speed +
                       3 * dp.poll_us + 2 * dp.net_lat_us;
    double put_model = 7 * dp.c_miss_us + 4 * dp.u_access_us +
                       2 * dp.v_att_us + 2.2 / dp.speed +
                       2 * dp.poll_us + dp.net_lat_us;
    m.add_row({"GET", "10C + 6U + 3V + 3.6/S + 3P + 2L",
               mp::TablePrinter::num(get_model, 2) + " us"});
    m.add_row({"PUT", "7C + 4U + 2V + 2.2/S + 2P + L",
               mp::TablePrinter::num(put_model, 2) + " us"});
    m.add_row({"GET protection cost", "3C + 3V + 3P",
               mp::TablePrinter::num(3 * dp.c_miss_us + 3 * dp.v_att_us +
                                         3 * dp.poll_us,
                                     2) +
                   " us (paper: ~14 us)"});
    m.add_row({"PUT protection cost", "3C + 2V + 2P",
               mp::TablePrinter::num(3 * dp.c_miss_us + 2 * dp.v_att_us +
                                         2 * dp.poll_us,
                                     2) +
                   " us (paper: ~10.3 us)"});
    m.print();
    return 0;
}
