/// \file
/// Reproduces Table 6: average application message sizes, per-
/// processor message rates, and communication-interface utilization
/// on 16 processors, for the HW1 and MP1 design points (plus SW1's
/// traffic for completeness). "Interface utilization" is the busy
/// fraction of the adapter logic for HW1 and of the message proxy for
/// MP1 — the quantity the paper's Section 5.4 queueing argument is
/// built on.

#include <cstdio>
#include <numeric>

#include "apps/apps.h"
#include "machine/design_point.h"
#include "util/table.h"

namespace {

double
avg_util(const rma::RunResult& r)
{
    if (r.agent_utilization.empty())
        return 0.0;
    double s = std::accumulate(r.agent_utilization.begin(),
                               r.agent_utilization.end(), 0.0);
    return s / static_cast<double>(r.agent_utilization.size());
}

} // namespace

int
main(int argc, char** argv)
{
    int scale = 1;
    if (argc > 1)
        scale = std::atoi(argv[1]);

    mp::TablePrinter t(
        "Table 6: Average message sizes, per-processor rates, and "
        "interface utilization on 16 processors");
    t.set_header({"Program", "Arch", "Avg msg (bytes)", "Rate (op/ms)",
                  "Utilization"});

    for (const auto& app : apps::all_apps()) {
        for (const char* dpn : {"HW1", "MP1", "SW1"}) {
            rma::SystemConfig cfg;
            cfg.design = *machine::design_point_by_name(dpn);
            cfg.nodes = 16;
            cfg.procs_per_node = 1;
            auto res = app.fn(cfg, scale);
            if (!res.valid)
                std::printf("WARNING: %s/%s self-check failed\n",
                            app.name, dpn);
            // Rate over the timed region (setup excluded), as the
            // paper reports steady-state application traffic.
            double rate =
                res.elapsed_us > 0.0
                    ? (static_cast<double>(res.run.ops) / 16.0) /
                          (res.elapsed_us / 1000.0)
                    : 0.0;
            t.add_row({app.name, dpn,
                       mp::TablePrinter::num(res.run.avg_msg_bytes, 0),
                       mp::TablePrinter::num(rate, 2),
                       mp::TablePrinter::num(avg_util(res.run) * 100.0,
                                             1) +
                           "%"});
        }
    }
    t.print();
    t.write_csv("bench_table6.csv");
    std::printf("\nPaper reference points (16 procs): Moldy 6456 B at\n"
                "0.43 op/ms (HW1 util 2.0%%, MP1 4.1%%); P-Ray 29 B at\n"
                "~0.9 op/ms (~1.9%%); Wator 40 B at 14-19 op/ms (HW1\n"
                "5.5%%, MP1 25.7%%). Shapes to check: MP1 utilization is\n"
                "several times HW1's for small-message applications.\n");
    return 0;
}
