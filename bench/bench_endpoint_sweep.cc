/// \file
/// Endpoint-count sweep: one node grows from 1k to 1M endpoints (the
/// paper's protection domains, scaled to the 100k–1M-endpoint regime
/// ROADMAP targets) while a fixed *fraction* of them stays active
/// with 8-byte PUT traffic. With the old flat 64-bit doorbell every
/// wakeup walked all ids aliased onto a set bit — O(N) per wakeup —
/// so p99 submit->wire-out grew with the total endpoint count, not
/// the active count. The hierarchical doorbell makes discovery
/// O(active + log N) and the idle probe a single summary-word load,
/// which this bench gates on directly:
///
///   ENDPOINT_P99_FLAT=1    p99(submit->wire-out) varies by at most
///                          MSGPROXY_ENDPOINT_TOL (default 10x, log2
///                          buckets on one hardware thread are
///                          coarse) across the whole sweep
///   IDLE_PROBE_O1=1        doorbell consumes stay frozen while
///                          polls climb on an idle node, at every N
///   DB_CARRY_EMPTY_TOTAL=0 every deferred-work carry found real
///                          backlog: zero aliased re-visits
///   POOL_MISSES_TOTAL=0 / PKT_LEAKS_TOTAL=0: the usual allocation
///                          and custody gates
///
/// `--quick` stops the sweep at 64k endpoints (tools/check.sh
/// endpoints); the full run extends to 1M.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_wiring.h"
#include "proxy/runtime.h"
#include "util/table.h"

namespace {

struct SweepResult
{
    size_t n_eps = 0;
    size_t active = 0;
    double create_s = 0.0; ///< wall time to create all N endpoints
    uint64_t ops = 0;
    double elapsed_s = 0.0;
    double p50_ns = 0.0;
    double p99_ns = 0.0;
    int db_levels = 0;
    uint64_t db_rings = 0;
    uint64_t db_consumes = 0;
    uint64_t db_wakeups = 0;
    uint64_t db_false_wakeups = 0;
    uint64_t db_carries = 0;
    uint64_t db_carry_empty = 0;
    bool idle_o1 = false;
    uint64_t pool_misses = 0;
    uint64_t pkt_leaks = 0;
};

/// See bench_runtime_scaling.cc: custody converges after the last
/// cumulative ACK, not after the last completion.
void
quiesce_pools(const proxy::Node& a, const proxy::Node& b)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
        const proxy::NodeStats sa = a.stats();
        const proxy::NodeStats sb = b.stats();
        if (sa.pool_hits + sb.pool_hits ==
                sa.pool_returns + sb.pool_returns &&
            sa.pool_misses + sb.pool_misses ==
                sa.heap_frees + sb.heap_frees)
            return;
        if (std::chrono::steady_clock::now() > deadline)
            return;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

uint64_t
sum(const std::vector<uint64_t>& v)
{
    uint64_t s = 0;
    for (uint64_t x : v)
        s += x;
    return s;
}

/// One sweep point: node 0 carries `n_eps` endpoints (tiny per-ep
/// queues so 1M fits comfortably), node 1 is a plain one-endpoint
/// sink with a 64 KB segment. active = max(4, N/256) endpoints
/// spread stride-wise across the whole id range fire 8-byte PUTs;
/// everyone else exists only to bloat the id space — the thing the
/// flat doorbell could not ignore.
SweepResult
run_sweep(size_t n_eps)
{
    SweepResult r;
    r.n_eps = n_eps;
    r.active = n_eps / 256 < 4 ? size_t{4} : n_eps / 256;

    proxy::NodeConfig c0;
    c0.id = 0;
    c0.max_endpoints = static_cast<uint32_t>(n_eps);
    c0.cmd_queue_depth = 4;
    c0.recv_ring_bytes = 128;
    c0.obs = {true, 8192};
    benchwire::apply_transport(c0);
    proxy::Node n0(c0);
    proxy::Node n1(benchwire::with_transport({.id = 1}));

    const auto tc0 = std::chrono::steady_clock::now();
    std::vector<proxy::Endpoint*> eps;
    eps.reserve(n_eps);
    for (size_t i = 0; i < n_eps; ++i)
        eps.push_back(&n0.create_endpoint());
    r.create_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - tc0)
                     .count();

    proxy::Endpoint& sink = n1.create_endpoint();
    std::vector<uint8_t> remote(64 * 1024);
    const uint16_t seg =
        sink.register_segment(remote.data(), remote.size());
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    // Fixed offered load, not fixed submit rate: a window of at most
    // 64 PUTs outstanding, round-robined across the active set. With
    // unbounded submission the measured latency is just Little's law
    // on a backlog that grows with the active count; the bounded
    // window keeps the backlog constant across the sweep, so p99
    // isolates what we are after — the cost of *discovering* the few
    // ringing endpoints among N, which the flat doorbell made O(N).
    constexpr uint64_t kWindow = 64;
    const size_t stride = n_eps / r.active;
    size_t rounds = 16384 / r.active;
    if (rounds < 16)
        rounds = 16;
    const uint64_t total =
        static_cast<uint64_t>(rounds) * static_cast<uint64_t>(r.active);
    uint64_t src = 0x0123456789abcdefULL;
    proxy::Flag lsync{0};
    uint64_t issued = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t m = 0; m < rounds; ++m) {
        for (size_t a = 0; a < r.active; ++a) {
            proxy::Endpoint* ep = eps[a * stride];
            const uint64_t off = (a * 8) % (remote.size() - 8);
            while (!ep->put(&src, 1, seg, off, 8, &lsync))
                std::this_thread::yield();
            ++issued;
            if (issued > kWindow)
                proxy::flag_wait_ge(lsync, issued - kWindow);
        }
    }
    proxy::flag_wait_ge(lsync, total);
    r.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    r.ops = total;

    const proxy::NodeSnapshot busy = n0.stats_snapshot();
    for (const proxy::OpLatency& ol : busy.op_latency) {
        if (std::strcmp(ol.op, "put") == 0 && ol.count > 0) {
            r.p50_ns = ol.p50_ns;
            r.p99_ns = ol.p99_ns;
        }
    }
    r.db_levels = busy.doorbell.levels;
    r.db_rings = sum(busy.doorbell.rings);
    r.db_consumes = sum(busy.doorbell.consumes);
    r.db_wakeups = busy.totals.db_wakeups;
    r.db_false_wakeups = busy.totals.db_false_wakeups;
    r.db_carries = busy.totals.db_carries;
    r.db_carry_empty = busy.totals.db_carry_empty;

    // Idle probe: with all traffic drained, the proxies must keep
    // polling without ever descending into the bitmap — consumes
    // frozen while polls climb is exactly "one summary load and move
    // on".
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const proxy::NodeSnapshot idle_a = n0.stats_snapshot();
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    const proxy::NodeSnapshot idle_b = n0.stats_snapshot();
    r.idle_o1 = idle_b.totals.polls > idle_a.totals.polls &&
                sum(idle_b.doorbell.consumes) ==
                    sum(idle_a.doorbell.consumes) &&
                idle_b.totals.db_wakeups == idle_a.totals.db_wakeups;

    quiesce_pools(n0, n1);
    n0.stop();
    n1.stop();
    const proxy::NodeStats sa = n0.stats();
    const proxy::NodeStats sb = n1.stats();
    r.pool_misses = sa.pool_misses + sb.pool_misses;
    r.pkt_leaks = (sa.pool_hits + sb.pool_hits -
                   (sa.pool_returns + sb.pool_returns)) +
                  (sa.pool_misses + sb.pool_misses -
                   (sa.heap_frees + sb.heap_frees));
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            quick = true;
    }
    std::vector<size_t> sweep = {1024, 8192, 65536};
    if (!quick) {
        sweep.push_back(262144);
        sweep.push_back(1048576);
    }
    double tol = 10.0;
    if (const char* env = std::getenv("MSGPROXY_ENDPOINT_TOL"))
        tol = std::atof(env);

    mp::TablePrinter t(
        "Endpoint-count sweep: N endpoints on one node, active = "
        "max(4, N/256) of them firing 8 B PUTs (submit->wire-out "
        "latency from the obs histograms). Flat p99 and frozen idle "
        "consumes are the O(active) discovery / O(1) idle-probe "
        "evidence. Hardware threads: " +
        std::to_string(std::thread::hardware_concurrency()));
    t.set_header({"Endpoints", "Active", "create Meps/s", "PUT Kops/s",
                  "p50 ns", "p99 ns", "lvls", "rings", "consumes",
                  "wakeups", "false", "carries", "idleO1"});

    std::vector<benchjson::Record> recs;
    std::vector<SweepResult> rows;
    uint64_t pool_misses_total = 0;
    uint64_t pkt_leaks_total = 0;
    uint64_t carry_empty_total = 0;
    bool idle_all = true;
    double p99_min = 0.0, p99_max = 0.0;
    for (size_t n : sweep) {
        SweepResult r = run_sweep(n);
        rows.push_back(r);
        pool_misses_total += r.pool_misses;
        pkt_leaks_total += r.pkt_leaks;
        carry_empty_total += r.db_carry_empty;
        idle_all = idle_all && r.idle_o1;
        if (p99_min == 0.0 || r.p99_ns < p99_min)
            p99_min = r.p99_ns;
        if (r.p99_ns > p99_max)
            p99_max = r.p99_ns;
        t.add_row({std::to_string(r.n_eps), std::to_string(r.active),
                   mp::TablePrinter::num(
                       static_cast<double>(r.n_eps) / r.create_s / 1e6,
                       2),
                   mp::TablePrinter::num(
                       static_cast<double>(r.ops) / r.elapsed_s / 1e3,
                       1),
                   mp::TablePrinter::num(r.p50_ns, 0),
                   mp::TablePrinter::num(r.p99_ns, 0),
                   std::to_string(r.db_levels),
                   std::to_string(r.db_rings),
                   std::to_string(r.db_consumes),
                   std::to_string(r.db_wakeups),
                   std::to_string(r.db_false_wakeups),
                   std::to_string(r.db_carries),
                   r.idle_o1 ? "yes" : "NO"});
        recs.push_back(benchjson::Record{
            "put8_n" + std::to_string(r.n_eps), 1, r.p99_ns,
            static_cast<double>(r.ops) / r.elapsed_s});
    }
    t.print();
    t.write_csv("bench_endpoint_sweep.csv");

    // A zero minimum means a sweep point produced no histogram
    // samples at all — that is a broken run, not a flat one.
    const bool flat = p99_min > 0.0 && p99_max <= p99_min * tol;
    // Gates consumed by tools/check.sh endpoints (grep -q "^NAME=v$").
    std::printf("ENDPOINT_P99_FLAT=%d\n", flat ? 1 : 0);
    if (!flat) {
        std::printf("  p99 spread %.0fns .. %.0fns exceeds tol=%.1fx "
                    "(MSGPROXY_ENDPOINT_TOL)\n",
                    p99_min, p99_max, tol);
    }
    std::printf("IDLE_PROBE_O1=%d\n", idle_all ? 1 : 0);
    std::printf("DB_CARRY_EMPTY_TOTAL=%llu\n",
                static_cast<unsigned long long>(carry_empty_total));
    std::printf("POOL_MISSES_TOTAL=%llu\n",
                static_cast<unsigned long long>(pool_misses_total));
    std::printf("PKT_LEAKS_TOTAL=%llu\n",
                static_cast<unsigned long long>(pkt_leaks_total));
    if (!quick) {
        benchjson::write("endpoint_sweep", recs);
        std::printf("trajectory: %zu records -> %s\n", recs.size(),
                    benchjson::path().c_str());
    }
    return (flat && idle_all && carry_empty_total == 0 &&
            pool_misses_total == 0 && pkt_leaks_total == 0)
               ? 0
               : 1;
}
