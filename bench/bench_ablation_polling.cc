/// \file
/// Ablation for the Section 4.1 polling-delay discussion: the mean
/// polling delay P is a significant latency term (3P in a GET), and
/// grows with the number of queues the proxy scans. The paper
/// proposes a cooperative shared bit vector so the proxy can check
/// many queues in a single probe, reducing P.
///
/// This sweep varies P directly (emulating scan acceleration) and the
/// number of user processes per node, reporting one-word PUT/GET
/// latencies — quantifying how much a bit-vector-style optimization
/// buys at each design point.

#include <cstdio>

#include "bench/micro.h"
#include "util/table.h"

int
main()
{
    mp::TablePrinter t(
        "Ablation: polling delay P vs one-word latency (MP1 base)");
    t.set_header({"P (us)", "PUT (us)", "GET (us)",
                  "GET model 10C+6U+3V+3.6/S+3P+2L"});
    for (double p : {0.25, 0.5, 1.0, 2.0, 3.0, 5.0, 8.0}) {
        auto d = machine::mp1();
        d.poll_us = p;
        double put = bench::put_latency(d, 8);
        double get = bench::get_latency(d, 8);
        double model = 10 * d.c_miss_us + 6 * d.u_access_us +
                       3 * d.v_att_us + 3.6 / d.speed + 3 * p +
                       2 * d.net_lat_us;
        t.add_row({mp::TablePrinter::num(p, 2),
                   mp::TablePrinter::num(put, 1),
                   mp::TablePrinter::num(get, 1),
                   mp::TablePrinter::num(model, 1)});
    }
    t.print();
    t.write_csv("bench_ablation_polling.csv");

    std::printf(
        "\nEach unit of polling delay shows up three-fold in a GET\n"
        "(local scan, remote scan, reply scan). A shared bit vector\n"
        "that lets the proxy probe all command queues at once moves a\n"
        "many-process node from the bottom rows toward the top rows.\n");
    return 0;
}
