/// \file
/// Ablation for the Section 5.4 queueing claim: "the utilization of a
/// communication agent should be below 50% for stable behavior"; a
/// message proxy supports about two compute processors under the hot
/// applications' load but is over-utilized at four.
///
/// A synthetic workload sweeps the number of compute processors
/// sharing one proxy and the compute time between messages, reporting
/// proxy utilization and the latency inflation of a PUT round trip.

#include <algorithm>
#include <cstdio>

#include "backend/factory.h"
#include "machine/design_point.h"
#include "rma/system.h"
#include "util/table.h"

namespace {

struct LoadResult
{
    double utilization;
    double avg_put_us;
    double quiescent_put_us;
};

/// Each of `ppn` ranks on node 0 sends paced PUTs to its mirror rank
/// on node 1; one designated rank measures blocking-PUT latency.
LoadResult
run_load(int ppn, double gap_us, int msgs)
{
    rma::SystemConfig cfg;
    cfg.design = machine::mp1();
    cfg.nodes = 2;
    cfg.procs_per_node = ppn;
    auto sys = backend::make_system(cfg);

    double lat_sum = 0.0;
    int lat_count = 0;
    double active_end = 0.0;
    sys->run([&](rma::Ctx& ctx) {
        const int p = ctx.nranks();
        uint8_t* buf = ctx.alloc_n<uint8_t>(256);
        ctx.publish("load.buf", buf);
        if (ctx.rank() >= p / 2)
            ; // node-1 ranks just expose their buffers
        if (ctx.rank() < p / 2) {
            // Open-loop senders: non-blocking PUTs at the pacing gap
            // (so proxy utilization reflects the offered load); rank 0
            // measures a blocking PUT every tenth message.
            int peer = ctx.rank() + p / 2;
            auto* dst = static_cast<uint8_t*>(ctx.lookup("load.buf", peer));
            sim::Flag* lsync = ctx.new_flag();
            uint64_t issued = 0;
            for (int i = 0; i < msgs; ++i) {
                ctx.compute(gap_us);
                if (ctx.rank() == 0 && i % 10 == 9) {
                    double t0 = ctx.now();
                    ctx.put_blocking(buf, peer, dst, 64);
                    lat_sum += ctx.now() - t0;
                    ++lat_count;
                } else {
                    ctx.put(buf, peer, dst, 64, lsync);
                    ++issued;
                }
            }
            ctx.wait_ge(*lsync, issued);
            active_end = std::max(active_end, ctx.now());
        } else {
            // Stay resident until the traffic drains.
            ctx.compute(gap_us * msgs + 50000.0);
        }
    });

    LoadResult r;
    // Utilization over the active send window (the run's tail is an
    // idle timeout on the receiving ranks).
    r.utilization = active_end > 0.0
                        ? sys->backend().agent_busy_us(0) / active_end
                        : 0.0;
    r.avg_put_us = lat_count ? lat_sum / lat_count : 0.0;
    r.quiescent_put_us = 0.0;
    return r;
}

} // namespace

int
main()
{
    // Quiescent reference: one sender, long gaps.
    double quiescent = run_load(1, 500.0, 20).avg_put_us;

    mp::TablePrinter t(
        "Ablation: message-proxy load vs compute processors per node "
        "(MP1, paced 64-byte PUTs)");
    t.set_header({"Procs/node", "Gap (us)", "Proxy util", "PUT (us)",
                  "Slowdown vs quiescent"});
    for (int ppn : {1, 2, 4, 8}) {
        for (double gap : {100.0, 20.0, 5.0}) {
            auto r = run_load(ppn, gap, 60);
            t.add_row({mp::TablePrinter::num(static_cast<int64_t>(ppn)),
                       mp::TablePrinter::num(gap, 0),
                       mp::TablePrinter::num(r.utilization * 100.0, 1) +
                           "%",
                       mp::TablePrinter::num(r.avg_put_us, 1),
                       mp::TablePrinter::num(r.avg_put_us / quiescent,
                                             2) +
                           "x"});
        }
    }
    t.print();
    t.write_csv("bench_ablation_proxy_load.csv");
    std::printf("\nQuiescent PUT latency: %.1f us. Expect graceful\n"
                "behavior below ~50%% proxy utilization and rapidly\n"
                "inflating latency beyond it (the paper's stability\n"
                "criterion for sizing compute processors per proxy).\n",
                quiescent);
    return 0;
}
