/// \file
/// Shared wiring helper for benchmarks and examples: picks the
/// inter-node transport from the MSGPROXY_TRANSPORT environment
/// variable ("inproc" — default — or "socket") and wires node pairs
/// through the address-based listen()/connect() API, so every bench
/// can be re-run against the socket backend without code changes:
///
///   MSGPROXY_TRANSPORT=socket ./bench_runtime_micro
///
/// Socket mode uses Unix-domain sockets under /tmp with a
/// pid-unique name per wire() call; inproc mode uses a process-local
/// registry name. Configure each NodeConfig with apply_transport()
/// BEFORE constructing the Node, then wire(a, b) after both exist.

#ifndef MSGPROXY_BENCH_BENCH_WIRING_H
#define MSGPROXY_BENCH_BENCH_WIRING_H

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "proxy/runtime.h"

namespace benchwire {

/// Transport selected by MSGPROXY_TRANSPORT (unset/"inproc":
/// in-process; "socket": Unix-domain sockets).
inline net::TransportKind
transport_kind()
{
    const char* t = std::getenv("MSGPROXY_TRANSPORT");
    if (t != nullptr && std::strcmp(t, "socket") == 0)
        return net::TransportKind::kSocket;
    return net::TransportKind::kInProc;
}

/// Stamps the placement policy into a config: benches pin proxy
/// threads automatically (kAuto) unless MSGPROXY_PIN=0 opts out.
/// On single-CPU hosts kAuto is a no-op (the runtime skips pinning
/// when only one CPU is visible), so this is always safe to apply.
inline void
apply_placement(proxy::NodeConfig& cfg)
{
    const char* pin = std::getenv("MSGPROXY_PIN");
    if (pin != nullptr && std::strcmp(pin, "0") == 0)
        cfg.placement.pin = proxy::NodeConfig::Placement::Pin::kNone;
    else
        cfg.placement.pin = proxy::NodeConfig::Placement::Pin::kAuto;
}

/// Stamps the selected transport into a config (call before
/// constructing the Node). Also applies the default bench placement
/// policy — every bench that goes through this helper exercises core
/// pinning on multi-core hosts.
inline void
apply_transport(proxy::NodeConfig& cfg)
{
    cfg.transport = transport_kind();
    apply_placement(cfg);
}

/// Value-returning variant of apply_transport for inline Node
/// construction:
///   proxy::Node n(benchwire::with_transport({.id = 0}));
inline proxy::NodeConfig
with_transport(proxy::NodeConfig cfg)
{
    apply_transport(cfg);
    return cfg;
}

/// A fresh, collision-free listen address for `kind`.
inline std::string
unique_addr(net::TransportKind kind)
{
    static std::atomic<uint64_t> ctr{0};
    const uint64_t n = ctr.fetch_add(1);
    const std::string tag = std::to_string(::getpid()) + "-" +
                            std::to_string(n);
    if (kind == net::TransportKind::kSocket)
        return "unix:///tmp/msgproxy-" + tag + ".sock";
    return "inproc://wire-" + tag;
}

/// Wires a <-> b over `a`'s configured transport (kInProc unless
/// the config went through apply_transport() with
/// MSGPROXY_TRANSPORT=socket set). Call before start() on either
/// node.
inline void
wire(proxy::Node& a, proxy::Node& b)
{
    const std::string addr = unique_addr(a.config().transport);
    a.listen(addr);
    b.connect(addr);
}

} // namespace benchwire

#endif // MSGPROXY_BENCH_BENCH_WIRING_H
