/// \file
/// Reproduces Table 2: the latency components of the critical path of
/// a one-word GET operation on a quiescent MP0 system, traced
/// directly from the message-proxy backend.

#include <cstdio>
#include <vector>

#include "backend/factory.h"
#include "machine/design_point.h"
#include "rma/system.h"
#include "util/table.h"

namespace {

class Collector : public rma::TraceSink
{
  public:
    void add(rma::TraceEntry e) override { entries.push_back(std::move(e)); }
    std::vector<rma::TraceEntry> entries;
};

} // namespace

int
main()
{
    auto dp = machine::mp0();
    rma::SystemConfig cfg;
    cfg.design = dp;
    cfg.nodes = 2;
    cfg.procs_per_node = 1;

    Collector sink;
    auto sys = backend::make_system(cfg);
    void* bufs[2] = {nullptr, nullptr};
    double latency = 0.0;
    sys->run([&](rma::Ctx& ctx) {
        bufs[ctx.rank()] = ctx.alloc(64);
        if (ctx.rank() == 0) {
            ctx.compute(1.0);
            ctx.system().backend().set_trace(&sink);
            double t0 = ctx.now();
            ctx.get_blocking(bufs[0], 1, bufs[1], 8);
            latency = ctx.now() - t0;
            ctx.system().backend().set_trace(nullptr);
        } else {
            ctx.compute(5.0);
        }
    });

    mp::TablePrinter t(
        "Table 2: Latency components of the critical path of a one-word "
        "GET (quiescent MP0 system)");
    t.set_header({"Agent", "Operation", "Term", "us"});
    double total = 0.0;
    for (const auto& e : sink.entries) {
        t.add_row({e.agent, e.operation, e.term,
                   mp::TablePrinter::num(e.us, 2)});
        total += e.us;
    }
    t.print();
    t.write_csv("bench_table2.csv");

    double model = 10 * dp.c_miss_us + 6 * dp.u_access_us +
                   3 * dp.v_att_us + 3.6 / dp.speed + 3 * dp.poll_us +
                   2 * dp.net_lat_us;
    std::printf("\nTrace total:       %.2f us\n", total);
    std::printf("Model (10C+6U+3V+3.6/S+3P+2L): %.2f us\n", model);
    std::printf("Measured GET latency (submit to lsync): %.2f us\n",
                latency);
    std::printf("Paper: 27.5 + L us measured; Table 4 lists 28.0 us\n");
    return 0;
}
