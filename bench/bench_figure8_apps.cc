/// \file
/// Reproduces Figure 8 (plus Table 5): self-relative speedups of the
/// ten applications on 1-16 processors (one compute processor per
/// node) for all six design points, relative to the single-processor
/// HW1 execution time T(1).
///
/// Paper shape to reproduce: P-Ray is insensitive to the design
/// point; Moldy/MM/FFT/Sampleb are bandwidth-sensitive (HW0 and MP0
/// suffer); LU/Barnes-Hut/Water/Sample/Wator are overhead-sensitive
/// (MP2 close to HW1; MP1 10-30% slower; SW1 37-100% slower).
///
/// Usage: bench_figure8_apps [--scale=N] [--maxp=P] [--apps=a,b,...]

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "machine/design_point.h"
#include "util/table.h"

namespace {

bool
app_selected(const std::string& filter, const char* name)
{
    if (filter.empty())
        return true;
    std::string f = "," + filter + ",";
    std::string n = "," + std::string(name) + ",";
    return f.find(n) != std::string::npos;
}

} // namespace

int
main(int argc, char** argv)
{
    int scale = 1;
    int maxp = 16;
    std::string filter;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--scale=", 8) == 0)
            scale = std::atoi(argv[i] + 8);
        else if (std::strncmp(argv[i], "--maxp=", 7) == 0)
            maxp = std::atoi(argv[i] + 7);
        else if (std::strncmp(argv[i], "--apps=", 7) == 0)
            filter = argv[i] + 7;
    }

    auto dps = machine::all_design_points();
    std::vector<int> procs;
    for (int p = 1; p <= maxp; p *= 2)
        procs.push_back(p);

    // Table 5 header: applications and the (scaled) inputs.
    mp::TablePrinter t5("Table 5: Applications (scaled inputs; see "
                        "EXPERIMENTS.md for the mapping to the paper's "
                        "sizes)");
    t5.set_header({"Program", "Style"});
    for (const auto& app : apps::all_apps()) {
        if (!app_selected(filter, app.name))
            continue;
        t5.add_row({app.name, app.style});
    }
    t5.print();

    for (const auto& app : apps::all_apps()) {
        if (!app_selected(filter, app.name))
            continue;
        // Baseline: T(1) on HW1.
        rma::SystemConfig base;
        base.design = machine::hw1();
        base.nodes = 1;
        base.procs_per_node = 1;
        auto r1 = app.fn(base, scale);
        if (!r1.valid) {
            std::printf("WARNING: %s baseline self-check FAILED\n",
                        app.name);
        }
        double t1 = r1.elapsed_us;

        mp::TablePrinter t(std::string("Figure 8: ") + app.name + " (" +
                           app.style + ") speedup vs T(1)=" +
                           mp::TablePrinter::num(t1 / 1000.0, 2) +
                           " ms on HW1");
        std::vector<std::string> hdr = {"Procs"};
        for (const auto& d : dps)
            hdr.push_back(d.name);
        t.set_header(hdr);
        bool all_valid = true;
        for (int p : procs) {
            std::vector<std::string> row = {
                mp::TablePrinter::num(static_cast<int64_t>(p))};
            for (const auto& d : dps) {
                rma::SystemConfig cfg;
                cfg.design = d;
                cfg.nodes = p;
                cfg.procs_per_node = 1;
                auto r = app.fn(cfg, scale);
                all_valid = all_valid && r.valid;
                row.push_back(
                    mp::TablePrinter::num(t1 / r.elapsed_us, 2));
            }
            t.add_row(row);
        }
        t.print();
        t.write_csv(std::string("bench_figure8_") + app.name + ".csv");
        if (!all_valid)
            std::printf("WARNING: %s had self-check failures\n",
                        app.name);
    }
    return 0;
}
