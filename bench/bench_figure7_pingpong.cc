/// \file
/// Reproduces Figure 7: ping-pong one-way latency and streaming
/// bandwidth across message sizes, for raw PUTs (top) and
/// active-message bulk stores (bottom), on all six design points.
/// Paper shape: custom hardware wins at small sizes; DMA bandwidth
/// and page pinning limit everyone at large sizes; HW0/MP0 flatten at
/// their lower DMA rates.

#include <cstdio>
#include <vector>

#include "bench/micro.h"
#include "util/table.h"

int
main()
{
    auto dps = machine::all_design_points();
    std::vector<size_t> sizes = {8,    32,    128,   512,   2048,
                                 8192, 32768, 131072};

    auto run_block = [&](const char* title, const char* unit,
                         double (*fn)(const machine::DesignPoint&,
                                      size_t)) {
        mp::TablePrinter t(title);
        std::vector<std::string> hdr = {"Bytes"};
        for (const auto& d : dps)
            hdr.push_back(d.name);
        t.set_header(hdr);
        for (size_t sz : sizes) {
            std::vector<std::string> row = {
                mp::TablePrinter::num(static_cast<int64_t>(sz))};
            for (const auto& d : dps)
                row.push_back(mp::TablePrinter::num(fn(d, sz), 1));
            t.add_row(row);
        }
        t.print();
        std::printf("(%s)\n", unit);
        return t;
    };

    auto put_lat = [](const machine::DesignPoint& d, size_t sz) {
        return bench::pingpong_half_rtt(d, sz, 4);
    };
    auto put_bw = [](const machine::DesignPoint& d, size_t sz) {
        return bench::stream_bw(d, sz, 8);
    };
    auto am_lat = [](const machine::DesignPoint& d, size_t sz) {
        return bench::am_store_half_rtt(d, sz, 4);
    };
    auto am_bw = [](const machine::DesignPoint& d, size_t sz) {
        return bench::am_store_bw(d, sz, 8);
    };

    run_block("Figure 7a: PUT ping-pong one-way latency (us)", "us",
              put_lat)
        .write_csv("bench_figure7_put_latency.csv");
    run_block("Figure 7b: PUT streaming bandwidth (MB/s)", "MB/s",
              put_bw)
        .write_csv("bench_figure7_put_bw.csv");
    run_block("Figure 7c: AM-store ping-pong one-way latency (us)",
              "us", am_lat)
        .write_csv("bench_figure7_am_latency.csv");
    run_block("Figure 7d: AM-store streaming bandwidth (MB/s)", "MB/s",
              am_bw)
        .write_csv("bench_figure7_am_bw.csv");
    return 0;
}
