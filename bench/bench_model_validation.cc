/// \file
/// Validates the Section 4.1 analytic latency model against the
/// simulator: sweeps the cache-miss latency C, processor speed S and
/// network latency L of a message-proxy design point and compares the
/// simulated one-word PUT/GET latencies with the closed forms
///   GET = 10C + 6U + 3V + 3.6/S + 3P + 2L
///   PUT(one-way, to rsync) = 7C + 4U + 2V + 2.2/S + 2P + L.
/// The simulated GET-to-lsync excludes the final user flag read (C),
/// matching how the paper measures Table 4.

#include <cstdio>

#include "bench/micro.h"
#include "util/table.h"

namespace {

double
model_get(const machine::DesignPoint& d)
{
    return 10 * d.c_miss_us + 6 * d.u_access_us + 3 * d.v_att_us +
           3.6 / d.speed + 3 * d.poll_us + 2 * d.net_lat_us;
}

/// One-way PUT latency: submit time to the remote-sync set time,
/// measured on the receiving side (flag-read cost subtracted).
double
put_oneway(const machine::DesignPoint& dp)
{
    double t_submit = 0.0, t_arrive = 0.0;
    void* bufs[2] = {nullptr, nullptr};
    backend::run_app(bench::two_nodes(dp), [&](rma::Ctx& ctx) {
        bufs[ctx.rank()] = ctx.alloc(64);
        if (ctx.rank() == 1) {
            sim::Flag* f = ctx.new_flag();
            ctx.publish("mv.flag", f);
            ctx.wait_ge(*f, 1);
            t_arrive = ctx.now() - dp.proxy_miss(); // minus flag read
        } else {
            sim::Flag* f =
                static_cast<sim::Flag*>(ctx.lookup("mv.flag", 1));
            ctx.compute(5.0);
            t_submit = ctx.now();
            ctx.put(bufs[0], 1, bufs[1], 8, nullptr, f);
        }
    });
    return t_arrive - t_submit;
}

double
model_put(const machine::DesignPoint& d)
{
    return 7 * d.c_miss_us + 4 * d.u_access_us + 2 * d.v_att_us +
           2.2 / d.speed + 2 * d.poll_us + d.net_lat_us;
}

} // namespace

int
main()
{
    mp::TablePrinter t(
        "Model validation: simulated vs analytic one-word latency "
        "across machine-parameter sweeps (message-proxy architecture)");
    t.set_header({"C (us)", "S", "L (us)", "GET sim", "GET model",
                  "err %", "PUT sim (one-way)", "PUT model", "err %"});

    double max_err = 0.0;
    for (double c : {0.5, 1.0, 2.0}) {
        for (double s : {1.0, 2.0, 4.0}) {
            for (double l : {0.5, 1.0, 2.0}) {
                auto d = machine::mp0();
                d.c_miss_us = c;
                d.c_update_us = c;
                d.speed = s;
                d.net_lat_us = l;
                // GET measured to lsync; the model includes the final
                // user read (C), Table 4 excludes it — add it back.
                double get_sim = bench::get_latency(d, 8) + c;
                double get_mod = model_get(d);
                double put_sim = put_oneway(d);
                double put_mod = model_put(d);
                double ge =
                    100.0 * std::abs(get_sim - get_mod) / get_mod;
                double pe =
                    100.0 * std::abs(put_sim - put_mod) / put_mod;
                max_err = std::max({max_err, ge, pe});
                t.add_row({mp::TablePrinter::num(c, 1),
                           mp::TablePrinter::num(s, 0),
                           mp::TablePrinter::num(l, 1),
                           mp::TablePrinter::num(get_sim, 2),
                           mp::TablePrinter::num(get_mod, 2),
                           mp::TablePrinter::num(ge, 1),
                           mp::TablePrinter::num(put_sim, 2),
                           mp::TablePrinter::num(put_mod, 2),
                           mp::TablePrinter::num(pe, 1)});
            }
        }
    }
    t.print();
    t.write_csv("bench_model_validation.csv");
    std::printf("\nMax model error: %.2f%%\n", max_err);
    return max_err < 10.0 ? 0 : 1;
}
