/// \file
/// Reproduces the paper's LU block-size observation: "The CRL version
/// of LU requires less bandwidth than a message-passing version
/// might... Results from running LU on a 1000x1000 matrix with block
/// size 20 yields performance curves similar to those for Sampleb"
/// — i.e., larger blocks move LU from the latency/overhead-bound
/// regime (where the HW-MP gap is big) toward the bandwidth-bound
/// regime (where it closes).

#include <cstdio>

#include "apps/apps.h"
#include "machine/design_point.h"
#include "util/table.h"

int
main()
{
    mp::TablePrinter t(
        "Ablation: LU block size vs architecture sensitivity "
        "(16 processors; time in ms and MP1/HW1 ratio)");
    t.set_header({"Block", "Avg msg (B)", "HW1 (ms)", "MP1 (ms)",
                  "MP1/HW1", "SW1 (ms)"});

    for (int block : {8, 16, 32}) {
        double hw1 = 0.0, mp1 = 0.0, sw1 = 0.0, avg = 0.0;
        for (const char* dpn : {"HW1", "MP1", "SW1"}) {
            rma::SystemConfig cfg;
            cfg.design = *machine::design_point_by_name(dpn);
            cfg.nodes = 16;
            cfg.procs_per_node = 1;
            auto res = apps::run_lu_block(cfg, /*scale=*/1, block);
            if (!res.valid)
                std::printf("WARNING: LU b=%d %s self-check failed\n",
                            block, dpn);
            if (std::string(dpn) == "HW1") {
                hw1 = res.elapsed_us;
                avg = res.run.avg_msg_bytes;
            } else if (std::string(dpn) == "MP1") {
                mp1 = res.elapsed_us;
            } else {
                sw1 = res.elapsed_us;
            }
        }
        t.add_row({mp::TablePrinter::num(static_cast<int64_t>(block)),
                   mp::TablePrinter::num(avg, 0),
                   mp::TablePrinter::num(hw1 / 1000.0, 2),
                   mp::TablePrinter::num(mp1 / 1000.0, 2),
                   mp::TablePrinter::num(mp1 / hw1, 2) + "x",
                   mp::TablePrinter::num(sw1 / 1000.0, 2)});
    }
    t.print();
    t.write_csv("bench_ablation_lu_blocksize.csv");
    std::printf("\nExpected: the MP1/HW1 ratio shrinks as blocks grow\n"
                "(coherence traffic moves from many small fills to few\n"
                "bulk fills), mirroring the paper's 1000x1000/20 note.\n");
    return 0;
}
