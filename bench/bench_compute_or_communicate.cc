/// \file
/// Reproduces the Section 5.4 "To Compute or to Communicate?"
/// analysis: on a P-processor SMP, is it better to dedicate one
/// processor to a message proxy (P-1 compute + MP) or to use all P
/// processors for computation with system-call communication?
///
/// The paper's criterion: with P-processor SMPs, use a message proxy
/// whenever it improves performance by more than P/(P-1) over
/// system-level communication. It concludes that for five-processor
/// nodes, MP2 beats SW1 for LU, Barnes-Hut, Water, Sample and Wator,
/// while MP1 vs SW1 is a closer call.
///
/// We run 4 SMP nodes: the proxy variants get 4 compute processors
/// per node (the proxy is the implicit extra processor); the
/// system-call variant gets 5 compute processors per node, i.e. the
/// same silicon.

#include <cstdio>

#include "apps/apps.h"
#include "machine/design_point.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    int scale = 1;
    if (argc > 1)
        scale = std::atoi(argv[1]);

    const int kApps[] = {1, 2, 3, 6, 9}; // LU, Barnes, Water, Sample, Wator
    const int nodes = 4;
    const int ppn = 4; // compute processors next to each proxy

    mp::TablePrinter t(
        "Section 5.4: dedicate a processor to a proxy (4 compute + "
        "proxy) vs. use it to compute (5 compute + syscalls) on "
        "4 five-processor SMP nodes. Entries are execution times (ms); "
        "'use proxy?' applies the paper's P/(P-1) criterion (1.25x).");
    t.set_header({"Program", "MP1 4c+proxy", "MP2 4c+proxy",
                  "SW1 5c", "SW1/MP1", "SW1/MP2", "use MP2 proxy?"});

    for (int ai : kApps) {
        const auto& app = apps::all_apps()[static_cast<size_t>(ai)];
        double times[3];
        const char* dps[3] = {"MP1", "MP2", "SW1"};
        for (int k = 0; k < 3; ++k) {
            rma::SystemConfig cfg;
            cfg.design = *machine::design_point_by_name(dps[k]);
            cfg.nodes = nodes;
            cfg.procs_per_node = (k == 2) ? ppn + 1 : ppn;
            auto res = app.fn(cfg, scale);
            if (!res.valid)
                std::printf("WARNING: %s/%s self-check failed\n",
                            app.name, dps[k]);
            times[k] = res.elapsed_us;
        }
        double r1 = times[2] / times[0];
        double r2 = times[2] / times[1];
        // The proxy must win by more than P/(P-1) = 5/4 to justify
        // taking the processor away from computation... except that
        // here both sides already have the same total processors, so
        // the direct comparison is the decision; the 1.25x column is
        // the margin the paper derives for the sublinear-speedup
        // argument.
        t.add_row({app.name, mp::TablePrinter::num(times[0] / 1000.0, 2),
                   mp::TablePrinter::num(times[1] / 1000.0, 2),
                   mp::TablePrinter::num(times[2] / 1000.0, 2),
                   mp::TablePrinter::num(r1, 2) + "x",
                   mp::TablePrinter::num(r2, 2) + "x",
                   r2 > 1.0 ? "yes" : "no"});
    }
    t.print();
    t.write_csv("bench_compute_or_communicate.csv");
    std::printf(
        "\nPaper's conclusion (Figure 9 discussion): for five-processor\n"
        "SMP nodes it is better to use MP2 than SW1 for all five hot\n"
        "applications; the choice between MP1 and SW1 is less clear\n"
        "because of SW1's optimistically low assumed overheads.\n");
    return 0;
}
