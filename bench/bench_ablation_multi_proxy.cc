/// \file
/// Extension ablation (Section 5.4): "Although multiple message
/// proxies may help, the memory bus and network interface ultimately
/// place a hard constraint on the number of processors that may be
/// supported." This sweep adds a second (and fourth) proxy to each
/// node under the Figure 9 configuration (4 SMP nodes x 4 compute
/// processors) for the applications that saturated a single proxy.

#include <cstdio>

#include "apps/apps.h"
#include "machine/design_point.h"
#include "util/table.h"

int
main(int argc, char** argv)
{
    int scale = 1;
    if (argc > 1)
        scale = std::atoi(argv[1]);

    const int kApps[] = {2, 3, 6, 9}; // Barnes, Water, Sample, Wator

    mp::TablePrinter t(
        "Ablation: proxies per node on 4 SMP nodes x 4 compute procs "
        "(MP1). Entries: execution time (ms) / max per-proxy "
        "utilization.");
    t.set_header({"Program", "1 proxy", "2 proxies", "4 proxies",
                  "HW1 reference"});

    for (int ai : kApps) {
        const auto& app = apps::all_apps()[static_cast<size_t>(ai)];
        std::vector<std::string> row = {app.name};
        for (int nproxies : {1, 2, 4}) {
            rma::SystemConfig cfg;
            cfg.design = machine::mp1();
            cfg.nodes = 4;
            cfg.procs_per_node = 4;
            cfg.proxies_per_node = nproxies;
            auto res = app.fn(cfg, scale);
            if (!res.valid)
                std::printf("WARNING: %s x%d self-check failed\n",
                            app.name, nproxies);
            double max_util = 0.0;
            for (double u : res.run.agent_utilization)
                max_util = std::max(max_util, u);
            row.push_back(
                mp::TablePrinter::num(res.elapsed_us / 1000.0, 2) +
                " / " + mp::TablePrinter::num(max_util * 100.0, 0) + "%");
        }
        rma::SystemConfig hw;
        hw.design = machine::hw1();
        hw.nodes = 4;
        hw.procs_per_node = 4;
        auto href = app.fn(hw, scale);
        row.push_back(mp::TablePrinter::num(href.elapsed_us / 1000.0, 2) +
                      " ms");
        t.add_row(row);
    }
    t.print();
    t.write_csv("bench_ablation_multi_proxy.csv");
    std::printf("\nExpected: a second proxy recovers a large part of the\n"
                "single-proxy saturation loss for the hottest programs\n"
                "(Sample), with diminishing returns at four proxies —\n"
                "the residual gap to HW1 is per-message overhead, not\n"
                "proxy occupancy.\n");
    return 0;
}
