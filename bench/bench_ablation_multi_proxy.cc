/// \file
/// Extension ablation (Section 5.4): "Although multiple message
/// proxies may help, the memory bus and network interface ultimately
/// place a hard constraint on the number of processors that may be
/// supported." This sweep adds a second (and fourth) proxy to each
/// node under the Figure 9 configuration (4 SMP nodes x 4 compute
/// processors) for the applications that saturated a single proxy.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "machine/design_point.h"
#include "bench/bench_wiring.h"
#include "proxy/runtime.h"
#include "util/table.h"

namespace {

/// Real-runtime counterpart of the sweep: 2 host-thread nodes with
/// `num_proxies` proxies each exchange a fixed ENQ workload from 4
/// endpoints; returns elapsed seconds and fills `max_share` with the
/// busiest proxy's share of node 0's commands (the runtime analogue
/// of the simulator's max per-proxy utilization).
double
run_real(int num_proxies, int msgs_per_ep, double* max_share)
{
    constexpr int kEps = 4;
    constexpr uint32_t kMsgBytes = 64;
    proxy::Node n0(benchwire::with_transport(
        {.id = 0, .num_proxies = num_proxies}));
    proxy::Node n1(benchwire::with_transport(
        {.id = 1, .num_proxies = num_proxies}));
    std::vector<proxy::Endpoint*> src, dst;
    for (int i = 0; i < kEps; ++i) {
        src.push_back(&n0.create_endpoint());
        dst.push_back(&n1.create_endpoint());
    }
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    auto t0 = std::chrono::steady_clock::now();
    std::thread producer([&] {
        uint8_t msg[kMsgBytes] = {0};
        for (int m = 0; m < msgs_per_ep; ++m) {
            for (int i = 0; i < kEps; ++i) {
                std::memcpy(msg, &m, sizeof(m));
                while (!src[static_cast<size_t>(i)]->enq(msg, kMsgBytes,
                                                         1, i)) {
                    std::this_thread::yield();
                }
            }
        }
    });
    const uint64_t sent = static_cast<uint64_t>(kEps) *
                          static_cast<uint64_t>(msgs_per_ep);
    uint64_t received = 0;
    std::vector<uint8_t> out;
    while (received + n1.stats().enq_drops < sent) {
        bool any = false;
        for (int i = 0; i < kEps; ++i) {
            if (dst[static_cast<size_t>(i)]->try_recv(out)) {
                ++received;
                any = true;
            }
        }
        if (!any)
            std::this_thread::yield();
    }
    producer.join();
    auto t1 = std::chrono::steady_clock::now();

    uint64_t total = 0, busiest = 0;
    for (int p = 0; p < num_proxies; ++p) {
        uint64_t c = n0.proxy_stats(p).commands.load();
        total += c;
        busiest = std::max(busiest, c);
    }
    *max_share = total > 0 ? static_cast<double>(busiest) /
                                 static_cast<double>(total)
                           : 0.0;
    n0.stop();
    n1.stop();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace

int
main(int argc, char** argv)
{
    int scale = 1;
    bool quick = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--quick")
            quick = true;
        else
            scale = std::atoi(argv[i]);
    }

    const int kApps[] = {2, 3, 6, 9}; // Barnes, Water, Sample, Wator

    mp::TablePrinter t(
        "Ablation: proxies per node on 4 SMP nodes x 4 compute procs "
        "(MP1). Entries: execution time (ms) / max per-proxy "
        "utilization.");
    t.set_header({"Program", "1 proxy", "2 proxies", "4 proxies",
                  "HW1 reference"});

    for (int ai : kApps) {
        const auto& app = apps::all_apps()[static_cast<size_t>(ai)];
        std::vector<std::string> row = {app.name};
        for (int nproxies : {1, 2, 4}) {
            rma::SystemConfig cfg;
            cfg.design = machine::mp1();
            cfg.nodes = 4;
            cfg.procs_per_node = 4;
            cfg.proxies_per_node = nproxies;
            auto res = app.fn(cfg, scale);
            if (!res.valid)
                std::printf("WARNING: %s x%d self-check failed\n",
                            app.name, nproxies);
            double max_util = 0.0;
            for (double u : res.run.agent_utilization)
                max_util = std::max(max_util, u);
            row.push_back(
                mp::TablePrinter::num(res.elapsed_us / 1000.0, 2) +
                " / " + mp::TablePrinter::num(max_util * 100.0, 0) + "%");
        }
        rma::SystemConfig hw;
        hw.design = machine::hw1();
        hw.nodes = 4;
        hw.procs_per_node = 4;
        auto href = app.fn(hw, scale);
        row.push_back(mp::TablePrinter::num(href.elapsed_us / 1000.0, 2) +
                      " ms");
        t.add_row(row);
    }
    t.print();
    t.write_csv("bench_ablation_multi_proxy.csv");
    std::printf("\nExpected: a second proxy recovers a large part of the\n"
                "single-proxy saturation loss for the hottest programs\n"
                "(Sample), with diminishing returns at four proxies —\n"
                "the residual gap to HW1 is per-message overhead, not\n"
                "proxy occupancy.\n");

    // The same sweep on the real host-thread runtime: a fixed ENQ
    // workload against 1/2/4 proxies per node, with the busiest
    // proxy's command share showing the endpoint sharding at work.
    const int msgs_per_ep = quick ? 500 : 20000;
    mp::TablePrinter rt(
        "Real runtime: 2 nodes, 4 endpoints/node, " +
        std::to_string(msgs_per_ep) +
        " x 64 B ENQ per endpoint. Hardware threads: " +
        std::to_string(std::thread::hardware_concurrency()) +
        " (fewer cores than threads measures scheduling overhead, "
        "not parallel speedup).");
    rt.set_header(
        {"Proxies/node", "elapsed (ms)", "max proxy cmd share"});
    for (int nproxies : {1, 2, 4}) {
        double share = 0.0;
        double secs = run_real(nproxies, msgs_per_ep, &share);
        rt.add_row({std::to_string(nproxies),
                    mp::TablePrinter::num(secs * 1000.0, 2),
                    mp::TablePrinter::num(share * 100.0, 0) + "%"});
    }
    rt.print();
    rt.write_csv("bench_ablation_multi_proxy_real.csv");
    return 0;
}
