/// \file
/// google-benchmark suite for the real (host-thread) message-proxy
/// runtime: raw SPSC queue operations, and end-to-end PUT/GET/ENQ
/// latency and bandwidth through a dedicated proxy thread.
///
/// Note: on a single-hardware-thread machine the user thread and the
/// proxy thread time-share one core, so absolute latencies are
/// dominated by scheduler hops; the numbers are meaningful relative
/// to each other and genuinely fast on multicore hosts.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_wiring.h"
#include "proxy/runtime.h"
#include "spsc/ring_queue.h"

namespace {

void
BM_SpscPushPop(benchmark::State& state)
{
    spsc::RingQueue<uint64_t, 256> q;
    uint64_t v = 0, out;
    for (auto _ : state) {
        benchmark::DoNotOptimize(q.try_push(v++));
        benchmark::DoNotOptimize(q.try_pop(out));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscPushPop);

void
BM_SpscBatchedPushPop(benchmark::State& state)
{
    // Fill/drain in batches: measures the amortized per-slot cost
    // without the single-item ping-pong pattern.
    spsc::RingQueue<uint64_t, 256> q;
    uint64_t out;
    for (auto _ : state) {
        for (uint64_t i = 0; i < 128; ++i)
            benchmark::DoNotOptimize(q.try_push(i));
        for (uint64_t i = 0; i < 128; ++i)
            benchmark::DoNotOptimize(q.try_pop(out));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_SpscBatchedPushPop);

void
BM_MsgRingPushPop(benchmark::State& state)
{
    spsc::MsgRing<1 << 16> r;
    const auto n = static_cast<uint32_t>(state.range(0));
    std::vector<uint8_t> msg(n, 0x5a);
    std::vector<uint8_t> out;
    for (auto _ : state) {
        benchmark::DoNotOptimize(r.try_push(msg.data(), n));
        benchmark::DoNotOptimize(r.try_pop(out));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            n);
}
BENCHMARK(BM_MsgRingPushPop)->Arg(16)->Arg(256)->Arg(2048);

/// Shared two-node fixture for the end-to-end benchmarks.
/// MSGPROXY_RELIABILITY=0 in the environment disables the go-back-N
/// layer for an A/B measurement of the reliability tax on a clean
/// fabric (EXPERIMENTS.md); point MSGPROXY_BENCH_JSON elsewhere for
/// the off-run so it does not clobber the trajectory snapshot.
struct Pair
{
    static proxy::NodeConfig
    cfg(int id, int P)
    {
        proxy::NodeConfig c{.id = id, .num_proxies = P};
        if (const char* e = std::getenv("MSGPROXY_RELIABILITY"))
            if (e[0] == '0')
                c.reliability.enabled = false;
        benchwire::apply_transport(c);
        return c;
    }

    explicit Pair(int P = 1) : n0(cfg(0, P)), n1(cfg(1, P))
    {
        ep0 = &n0.create_endpoint();
        ep1 = &n1.create_endpoint();
        benchwire::wire(n0, n1);
        remote.resize(1 << 20);
        seg = ep1->register_segment(remote.data(), remote.size());
        n0.start();
        n1.start();
    }

    proxy::Node n0, n1;
    proxy::Endpoint* ep0;
    proxy::Endpoint* ep1;
    std::vector<uint8_t> remote;
    uint16_t seg;
};

void
BM_ProxyPutRoundTrip(benchmark::State& state)
{
    Pair p;
    const auto n = static_cast<uint32_t>(state.range(0));
    std::vector<uint8_t> src(n, 0x77);
    proxy::Flag rsync{0};
    uint64_t expect = 0;
    for (auto _ : state) {
        while (!p.ep0->put(src.data(), 1, p.seg, 0, n, nullptr, &rsync))
            std::this_thread::yield();
        ++expect;
        proxy::flag_wait_ge(rsync, expect);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            n);
}
BENCHMARK(BM_ProxyPutRoundTrip)->Arg(8)->Arg(1024)->Arg(65536);

void
BM_ProxyPutRoundTripP2(benchmark::State& state)
{
    // Same pingpong with two proxy threads per node: quantifies the
    // sharding overhead at P=2 on the latency path.
    Pair p(2);
    const auto n = static_cast<uint32_t>(state.range(0));
    std::vector<uint8_t> src(n, 0x77);
    proxy::Flag rsync{0};
    uint64_t expect = 0;
    for (auto _ : state) {
        while (!p.ep0->put(src.data(), 1, p.seg, 0, n, nullptr, &rsync))
            std::this_thread::yield();
        ++expect;
        proxy::flag_wait_ge(rsync, expect);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            n);
}
BENCHMARK(BM_ProxyPutRoundTripP2)->Arg(8);

void
BM_ProxyGetRoundTrip(benchmark::State& state)
{
    Pair p;
    const auto n = static_cast<uint32_t>(state.range(0));
    std::vector<uint8_t> dst(n);
    proxy::Flag lsync{0};
    uint64_t expect = 0;
    for (auto _ : state) {
        while (!p.ep0->get(dst.data(), 1, p.seg, 0, n, &lsync))
            std::this_thread::yield();
        ++expect;
        proxy::flag_wait_ge(lsync, expect);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            n);
}
BENCHMARK(BM_ProxyGetRoundTrip)->Arg(8)->Arg(4096);

void
BM_ProxyEnqRecv(benchmark::State& state)
{
    Pair p;
    uint8_t msg[64] = {1};
    std::vector<uint8_t> out;
    for (auto _ : state) {
        while (!p.ep0->enq(msg, sizeof(msg), 1, p.ep1->id()))
            std::this_thread::yield();
        while (!p.ep1->try_recv(out))
            std::this_thread::yield();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ProxyEnqRecv);

void
BM_ProxyPutPipelined(benchmark::State& state)
{
    // Streaming: keep a window of outstanding PUTs; measures the
    // runtime's throughput rather than its latency.
    Pair p;
    const uint32_t n = 4096;
    std::vector<uint8_t> src(n, 0x42);
    proxy::Flag rsync{0};
    uint64_t sent = 0;
    for (auto _ : state) {
        while (!p.ep0->put(src.data(), 1, p.seg, 0, n, nullptr, &rsync))
            std::this_thread::yield();
        ++sent;
        if (sent > 32)
            proxy::flag_wait_ge(rsync, sent - 32);
    }
    proxy::flag_wait_ge(rsync, sent);
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            n);
}
BENCHMARK(BM_ProxyPutPipelined);

void
BM_ProxyPollModes(benchmark::State& state)
{
    // One active endpoint among many idle ones: quantifies the
    // Section 4.1 bit-vector queue-scan acceleration on the real
    // runtime (arg0: idle endpoints, arg1: 1 = bit vector).
    auto mode = state.range(1) != 0 ? proxy::PollMode::kBitVector
                                    : proxy::PollMode::kScanAll;
    proxy::Node n0(
        benchwire::with_transport({.id = 0, .poll_mode = mode}));
    proxy::Node n1(
        benchwire::with_transport({.id = 1, .poll_mode = mode}));
    proxy::Endpoint* active = &n0.create_endpoint();
    for (int i = 0; i < state.range(0); ++i)
        n0.create_endpoint(); // idle
    proxy::Endpoint* sink = &n1.create_endpoint();
    benchwire::wire(n0, n1);
    std::vector<uint8_t> remote(4096);
    uint16_t seg = sink->register_segment(remote.data(), remote.size());
    n0.start();
    n1.start();

    uint64_t v = 0;
    proxy::Flag rsync{0};
    uint64_t expect = 0;
    for (auto _ : state) {
        while (!active->put(&v, 1, seg, 0, 8, nullptr, &rsync))
            std::this_thread::yield();
        ++expect;
        proxy::flag_wait_ge(rsync, expect);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ProxyPollModes)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({31, 0})
    ->Args({31, 1})
    ->Args({63, 0})
    ->Args({63, 1});

// ------------------------------------------ trajectory (BENCH_runtime.json)

/// Times `op` with a warmup and an adaptive ~0.25 s measurement
/// window; returns ns per call. Self-timed (not via the gbench
/// reporter) so the record format stays stable across benchmark
/// library versions.
template <typename F>
double
measure_ns(F&& op)
{
    using clock = std::chrono::steady_clock;
    for (int i = 0; i < 200; ++i)
        op();
    uint64_t iters = 0;
    auto t0 = clock::now();
    double elapsed = 0.0;
    while (elapsed < 0.25) {
        for (int i = 0; i < 100; ++i)
            op();
        iters += 100;
        elapsed = std::chrono::duration<double>(clock::now() - t0)
                      .count();
    }
    return elapsed * 1e9 / static_cast<double>(iters);
}

benchjson::Record
rec(const char* op, int P, double ns)
{
    return benchjson::Record{op, P, ns, 1e9 / ns};
}

/// Re-measures the headline latencies and merges them into
/// BENCH_runtime.json (op, P, latency_ns, msgs_per_sec).
void
write_trajectory()
{
    std::vector<benchjson::Record> recs;

    for (int P : {1, 2}) {
        Pair p(P);
        uint8_t v = 0x77;
        proxy::Flag rsync{0};
        uint64_t expect = 0;
        double ns = measure_ns([&] {
            while (!p.ep0->put(&v, 1, p.seg, 0, 1, nullptr, &rsync))
                std::this_thread::yield();
            proxy::flag_wait_ge(rsync, ++expect);
        });
        recs.push_back(rec("pingpong_put8", P, ns));
    }
    {
        Pair p;
        std::vector<uint8_t> src(65536, 0x42);
        proxy::Flag rsync{0};
        uint64_t expect = 0;
        double ns = measure_ns([&] {
            while (!p.ep0->put(src.data(), 1, p.seg, 0,
                               static_cast<uint32_t>(src.size()),
                               nullptr, &rsync))
                std::this_thread::yield();
            proxy::flag_wait_ge(rsync, ++expect);
        });
        recs.push_back(rec("pingpong_put64k", 1, ns));
    }
    {
        Pair p;
        std::vector<uint8_t> dst(4096);
        proxy::Flag lsync{0};
        uint64_t expect = 0;
        double ns = measure_ns([&] {
            while (!p.ep0->get(dst.data(), 1, p.seg, 0, 4096, &lsync))
                std::this_thread::yield();
            proxy::flag_wait_ge(lsync, ++expect);
        });
        recs.push_back(rec("pingpong_get4k", 1, ns));
    }
    {
        Pair p;
        uint8_t msg[64] = {1};
        std::vector<uint8_t> out;
        double ns = measure_ns([&] {
            while (!p.ep0->enq(msg, sizeof(msg), 1, p.ep1->id()))
                std::this_thread::yield();
            while (!p.ep1->try_recv(out))
                std::this_thread::yield();
        });
        recs.push_back(rec("enq_rt64", 1, ns));
    }
    {
        // Windowed 4 KB PUT stream: throughput, not latency.
        Pair p;
        std::vector<uint8_t> src(4096, 0x42);
        proxy::Flag rsync{0};
        uint64_t sent = 0;
        double ns = measure_ns([&] {
            while (!p.ep0->put(src.data(), 1, p.seg, 0, 4096, nullptr,
                               &rsync))
                std::this_thread::yield();
            ++sent;
            if (sent > 32)
                proxy::flag_wait_ge(rsync, sent - 32);
        });
        proxy::flag_wait_ge(rsync, sent);
        recs.push_back(rec("put_stream4k", 1, ns));
    }

    benchjson::write("runtime_micro", recs);
    std::printf("trajectory: %zu records -> %s\n", recs.size(),
                benchjson::path().c_str());
}

/// Observability demo: rerun a short mixed PUT/GET workload with
/// stage tracing on and print the per-op latency percentiles from
/// Node::stats_snapshot(); the full JSON document goes to
/// bench_runtime_micro.stats.json.
void
dump_obs_snapshot()
{
    proxy::Node n0(
        benchwire::with_transport({.id = 0, .obs = {true, 8192}}));
    proxy::Node n1(
        benchwire::with_transport({.id = 1, .obs = {true, 8192}}));
    proxy::Endpoint& a = n0.create_endpoint();
    proxy::Endpoint& b = n1.create_endpoint();
    benchwire::wire(n0, n1);
    std::vector<uint8_t> remote(1 << 16);
    const uint16_t seg = b.register_segment(remote.data(),
                                            remote.size());
    n0.start();
    n1.start();
    std::vector<uint8_t> buf(4096, 0x42);
    proxy::Flag lsync{0}, gsync{0};
    for (int i = 0; i < 500; ++i) {
        while (!a.put(buf.data(), 1, seg, 0, 4096, &lsync))
            std::this_thread::yield();
    }
    proxy::flag_wait_ge(lsync, 500);
    uint64_t got = 0;
    for (int i = 0; i < 500; ++i) {
        while (!a.get(buf.data(), 1, seg, 0, 8, &gsync))
            std::this_thread::yield();
        proxy::flag_wait_ge(gsync, ++got);
    }
    n0.stop();
    n1.stop();

    const proxy::NodeSnapshot snap = n0.stats_snapshot();
    std::printf("\nPer-op latency (node 0, tracing on, 500 x 4 KB PUT "
                "submit->wire, 500 x 8 B GET rtt):\n");
    for (const proxy::OpLatency& ol : snap.op_latency) {
        std::printf("  %-6s count=%llu p50=%.1fus p95=%.1fus "
                    "p99=%.1fus max=%.1fus\n",
                    ol.op,
                    static_cast<unsigned long long>(ol.count),
                    ol.p50_ns / 1e3, ol.p95_ns / 1e3, ol.p99_ns / 1e3,
                    static_cast<double>(ol.max_ns) / 1e3);
    }
    std::printf("  trace: recorded=%llu drops=%llu\n",
                static_cast<unsigned long long>(snap.trace_recorded),
                static_cast<unsigned long long>(snap.trace_drops));
    std::ofstream out("bench_runtime_micro.stats.json");
    n0.dump_json(out);
    std::printf("snapshot -> bench_runtime_micro.stats.json\n");
}

} // namespace

int
main(int argc, char** argv)
{
    bool json = true;
    // Strip our flag before google-benchmark sees the args.
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-json") == 0) {
            json = false;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    if (json) {
        write_trajectory();
        dump_obs_snapshot();
    }
    return 0;
}
