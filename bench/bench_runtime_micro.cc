/// \file
/// google-benchmark suite for the real (host-thread) message-proxy
/// runtime: raw SPSC queue operations, and end-to-end PUT/GET/ENQ
/// latency and bandwidth through a dedicated proxy thread.
///
/// Note: on a single-hardware-thread machine the user thread and the
/// proxy thread time-share one core, so absolute latencies are
/// dominated by scheduler hops; the numbers are meaningful relative
/// to each other and genuinely fast on multicore hosts.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "proxy/runtime.h"
#include "spsc/ring_queue.h"

namespace {

void
BM_SpscPushPop(benchmark::State& state)
{
    spsc::RingQueue<uint64_t, 256> q;
    uint64_t v = 0, out;
    for (auto _ : state) {
        benchmark::DoNotOptimize(q.try_push(v++));
        benchmark::DoNotOptimize(q.try_pop(out));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SpscPushPop);

void
BM_SpscBatchedPushPop(benchmark::State& state)
{
    // Fill/drain in batches: measures the amortized per-slot cost
    // without the single-item ping-pong pattern.
    spsc::RingQueue<uint64_t, 256> q;
    uint64_t out;
    for (auto _ : state) {
        for (uint64_t i = 0; i < 128; ++i)
            benchmark::DoNotOptimize(q.try_push(i));
        for (uint64_t i = 0; i < 128; ++i)
            benchmark::DoNotOptimize(q.try_pop(out));
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_SpscBatchedPushPop);

void
BM_MsgRingPushPop(benchmark::State& state)
{
    spsc::MsgRing<1 << 16> r;
    const auto n = static_cast<uint32_t>(state.range(0));
    std::vector<uint8_t> msg(n, 0x5a);
    std::vector<uint8_t> out;
    for (auto _ : state) {
        benchmark::DoNotOptimize(r.try_push(msg.data(), n));
        benchmark::DoNotOptimize(r.try_pop(out));
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            n);
}
BENCHMARK(BM_MsgRingPushPop)->Arg(16)->Arg(256)->Arg(2048);

/// Shared two-node fixture for the end-to-end benchmarks.
struct Pair
{
    Pair()
        : n0(proxy::NodeConfig{.id = 0}),
          n1(proxy::NodeConfig{.id = 1})
    {
        ep0 = &n0.create_endpoint();
        ep1 = &n1.create_endpoint();
        proxy::Node::connect(n0, n1);
        remote.resize(1 << 20);
        seg = ep1->register_segment(remote.data(), remote.size());
        n0.start();
        n1.start();
    }

    proxy::Node n0, n1;
    proxy::Endpoint* ep0;
    proxy::Endpoint* ep1;
    std::vector<uint8_t> remote;
    uint16_t seg;
};

void
BM_ProxyPutRoundTrip(benchmark::State& state)
{
    Pair p;
    const auto n = static_cast<uint32_t>(state.range(0));
    std::vector<uint8_t> src(n, 0x77);
    proxy::Flag rsync{0};
    uint64_t expect = 0;
    for (auto _ : state) {
        while (!p.ep0->put(src.data(), 1, p.seg, 0, n, nullptr, &rsync))
            std::this_thread::yield();
        ++expect;
        proxy::flag_wait_ge(rsync, expect);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            n);
}
BENCHMARK(BM_ProxyPutRoundTrip)->Arg(8)->Arg(1024)->Arg(65536);

void
BM_ProxyGetRoundTrip(benchmark::State& state)
{
    Pair p;
    const auto n = static_cast<uint32_t>(state.range(0));
    std::vector<uint8_t> dst(n);
    proxy::Flag lsync{0};
    uint64_t expect = 0;
    for (auto _ : state) {
        while (!p.ep0->get(dst.data(), 1, p.seg, 0, n, &lsync))
            std::this_thread::yield();
        ++expect;
        proxy::flag_wait_ge(lsync, expect);
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            n);
}
BENCHMARK(BM_ProxyGetRoundTrip)->Arg(8)->Arg(4096);

void
BM_ProxyEnqRecv(benchmark::State& state)
{
    Pair p;
    uint8_t msg[64] = {1};
    std::vector<uint8_t> out;
    for (auto _ : state) {
        while (!p.ep0->enq(msg, sizeof(msg), 1, p.ep1->id()))
            std::this_thread::yield();
        while (!p.ep1->try_recv(out))
            std::this_thread::yield();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ProxyEnqRecv);

void
BM_ProxyPutPipelined(benchmark::State& state)
{
    // Streaming: keep a window of outstanding PUTs; measures the
    // runtime's throughput rather than its latency.
    Pair p;
    const uint32_t n = 4096;
    std::vector<uint8_t> src(n, 0x42);
    proxy::Flag rsync{0};
    uint64_t sent = 0;
    for (auto _ : state) {
        while (!p.ep0->put(src.data(), 1, p.seg, 0, n, nullptr, &rsync))
            std::this_thread::yield();
        ++sent;
        if (sent > 32)
            proxy::flag_wait_ge(rsync, sent - 32);
    }
    proxy::flag_wait_ge(rsync, sent);
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            n);
}
BENCHMARK(BM_ProxyPutPipelined);

void
BM_ProxyPollModes(benchmark::State& state)
{
    // One active endpoint among many idle ones: quantifies the
    // Section 4.1 bit-vector queue-scan acceleration on the real
    // runtime (arg0: idle endpoints, arg1: 1 = bit vector).
    auto mode = state.range(1) != 0 ? proxy::PollMode::kBitVector
                                    : proxy::PollMode::kScanAll;
    proxy::Node n0(proxy::NodeConfig{.id = 0, .poll_mode = mode});
    proxy::Node n1(proxy::NodeConfig{.id = 1, .poll_mode = mode});
    proxy::Endpoint* active = &n0.create_endpoint();
    for (int i = 0; i < state.range(0); ++i)
        n0.create_endpoint(); // idle
    proxy::Endpoint* sink = &n1.create_endpoint();
    proxy::Node::connect(n0, n1);
    std::vector<uint8_t> remote(4096);
    uint16_t seg = sink->register_segment(remote.data(), remote.size());
    n0.start();
    n1.start();

    uint64_t v = 0;
    proxy::Flag rsync{0};
    uint64_t expect = 0;
    for (auto _ : state) {
        while (!active->put(&v, 1, seg, 0, 8, nullptr, &rsync))
            std::this_thread::yield();
        ++expect;
        proxy::flag_wait_ge(rsync, expect);
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ProxyPollModes)
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({31, 0})
    ->Args({31, 1})
    ->Args({63, 0})
    ->Args({63, 1});

} // namespace

BENCHMARK_MAIN();
