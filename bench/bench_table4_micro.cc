/// \file
/// Reproduces Table 4: micro-benchmark measurements of raw machine
/// performance for all six design points — one-word PUT and GET
/// latencies, the compute-processor overhead of a PUT plus completion
/// detection, active-message round-trip latency, and peak streaming
/// bandwidth. The paper's published values are printed alongside.

#include <cstdio>
#include <map>

#include "bench/micro.h"
#include "util/table.h"

int
main()
{
    auto dps = machine::all_design_points();

    // Paper values (Table 4) for side-by-side comparison.
    std::map<std::string, std::array<double, 4>> paper = {
        // {PUT lat, GET lat, PUT+sync ovh, AM rtt}
        {"HW0", {10.0, 9.5, 1.0, 28.2}},
        {"HW1", {10.6, 9.6, 1.5, 30.2}},
        {"MP0", {30.0, 28.0, 3.5, 63.5}},
        {"MP1", {26.6, 24.7, 3.0, 58.0}},
        {"MP2", {16.9, 16.4, 0.75, 41.1}},
        {"SW1", {36.1, 34.1, 15.0, 107.8}},
    };
    std::map<std::string, double> paper_bw = {
        {"HW0", 25.0},  {"HW1", 150.0}, {"MP0", 22.3},
        {"MP1", 86.7},  {"MP2", 86.7},  {"SW1", 86.7},
    };

    mp::TablePrinter t(
        "Table 4: Micro-benchmark measurements of raw machine "
        "performance (measured / paper). Latencies in us, bandwidth "
        "in MB/s.");
    std::vector<std::string> hdr = {"Measurement"};
    for (const auto& d : dps)
        hdr.push_back(d.name);
    t.set_header(hdr);

    std::vector<std::string> put_row = {"PUT latency"};
    std::vector<std::string> get_row = {"GET latency"};
    std::vector<std::string> ovh_row = {"PUT+sync ovh."};
    std::vector<std::string> am_row = {"AM latency (rtt)"};
    std::vector<std::string> bw_row = {"Peak B/W"};
    for (const auto& d : dps) {
        double put = bench::put_latency(d, 8);
        double get = bench::get_latency(d, 8);
        double ovh = bench::put_sync_overhead(d);
        double am = bench::am_latency(d);
        double bw = bench::stream_bw(d, 256 * 1024);
        const auto& pp = paper[d.name];
        put_row.push_back(mp::TablePrinter::num(put, 1) + " / " +
                          mp::TablePrinter::num(pp[0], 1));
        get_row.push_back(mp::TablePrinter::num(get, 1) + " / " +
                          mp::TablePrinter::num(pp[1], 1));
        ovh_row.push_back(mp::TablePrinter::num(ovh, 2) + " / " +
                          mp::TablePrinter::num(pp[2], 2));
        am_row.push_back(mp::TablePrinter::num(am, 1) + " / " +
                         mp::TablePrinter::num(pp[3], 1));
        bw_row.push_back(mp::TablePrinter::num(bw, 1) + " / " +
                         mp::TablePrinter::num(paper_bw[d.name], 1));
    }
    t.add_row(put_row);
    t.add_row(get_row);
    t.add_row(ovh_row);
    t.add_row(am_row);
    t.add_row(bw_row);
    t.print();
    t.write_csv("bench_table4.csv");

    std::printf("\nExpected shape: HW lowest latency; MP ~2.5x HW; the\n"
                "MP2 cache-update primitive recovers ~40%% of MP1 latency\n"
                "and most of the submit overhead; SW1 worst overhead;\n"
                "HW1 peak B/W is DMA-limited, MP/SW peak B/W is limited\n"
                "by dynamic page pinning.\n");
    return 0;
}
