/// \file
/// Machine-readable bench trajectory: the runtime benches append
/// their headline numbers to BENCH_runtime.json at the repo root so
/// future changes can diff performance against the committed
/// snapshot (tools/check.sh perf does exactly that).
///
/// Format: a JSON array with one object per line,
///   {"bench":..., "op":..., "P":..., "latency_ns":...,
///    "msgs_per_sec":...}
/// keyed by (bench, op, P). A writer replaces every record of its
/// own bench and preserves the other benches' lines, so the two
/// emitters can run in any order. For throughput sweeps latency_ns
/// is the inverse rate (ns per message); for latency pingpongs
/// msgs_per_sec is the inverse latency — both fields are always
/// populated.

#ifndef MSGPROXY_BENCH_BENCH_JSON_H
#define MSGPROXY_BENCH_BENCH_JSON_H

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace benchjson {

struct Record
{
    std::string op;
    int P = 1; ///< proxy count — never overloaded with anything else
    double latency_ns = 0.0;
    double msgs_per_sec = 0.0;
    /// Injected drop rate in percent (fault-sweep benches); negative
    /// means "not a fault run" and the field is omitted from the
    /// JSON line.
    int drop_pct = -1;
};

/// Target path: $MSGPROXY_BENCH_JSON override, else
/// <repo root>/BENCH_runtime.json (root baked in by CMake), else
/// the current directory.
inline std::string
path()
{
    if (const char* env = std::getenv("MSGPROXY_BENCH_JSON"))
        return env;
#ifdef MSGPROXY_REPO_ROOT
    return std::string(MSGPROXY_REPO_ROOT) + "/BENCH_runtime.json";
#else
    return "BENCH_runtime.json";
#endif
}

/// Rewrites `bench`'s records in the trajectory file, keeping every
/// other bench's lines untouched.
inline void
write(const std::string& bench, const std::vector<Record>& recs)
{
    const std::string file = path();
    // Keep foreign records (one per line, identified by their
    // "bench" field).
    std::vector<std::string> kept;
    {
        std::ifstream in(file);
        std::string line;
        const std::string mine = "\"bench\":\"" + bench + "\"";
        while (std::getline(in, line)) {
            auto first = line.find('{');
            if (first == std::string::npos)
                continue; // array brackets / blank
            if (line.find(mine) != std::string::npos)
                continue; // superseded by this run
            auto last = line.rfind('}');
            kept.push_back(line.substr(first, last - first + 1));
        }
    }
    std::ofstream out(file, std::ios::trunc);
    if (!out)
        return; // read-only checkout: skip silently
    out << "[\n";
    bool need_comma = false;
    for (const auto& k : kept) {
        out << (need_comma ? ",\n" : "") << k;
        need_comma = true;
    }
    for (const auto& r : recs) {
        // Guard non-finite values: a 0-sample cell (empty
        // mp::Summary: min=+inf, max=-inf; 0/0 rate: nan) must not
        // emit bare inf/nan — that is invalid JSON and silently
        // breaks the check.sh perf diff. Such cells are written as 0
        // with an explicit flag so downstream tooling can tell "fast"
        // from "never ran".
        const bool bad = !std::isfinite(r.latency_ns) ||
                         !std::isfinite(r.msgs_per_sec);
        const double lat = std::isfinite(r.latency_ns) ? r.latency_ns
                                                       : 0.0;
        const double rate =
            std::isfinite(r.msgs_per_sec) ? r.msgs_per_sec : 0.0;
        char drop[32] = "";
        if (r.drop_pct >= 0)
            std::snprintf(drop, sizeof(drop), ",\"drop_pct\":%d",
                          r.drop_pct);
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "{\"bench\":\"%s\",\"op\":\"%s\",\"P\":%d,"
                      "\"latency_ns\":%.1f,\"msgs_per_sec\":%.1f%s%s}",
                      bench.c_str(), r.op.c_str(), r.P, lat, rate,
                      drop, bad ? ",\"nonfinite\":true" : "");
        out << (need_comma ? ",\n" : "") << buf;
        need_comma = true;
    }
    out << "\n]\n";
}

} // namespace benchjson

#endif // MSGPROXY_BENCH_BENCH_JSON_H
