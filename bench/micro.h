/// \file
/// Shared micro-benchmark measurements used by the Table 4, Figure 7
/// and model-validation benches: one-word and sized PUT/GET
/// latencies, compute-processor overhead, AM round-trip latency, and
/// streaming peak bandwidth, on a quiescent two-node system.

#ifndef MSGPROXY_BENCH_MICRO_H
#define MSGPROXY_BENCH_MICRO_H

#include <cstring>

#include "am/am.h"
#include "backend/factory.h"
#include "machine/design_point.h"
#include "rma/system.h"

namespace bench {

/// Two-node quiescent config for a design point.
inline rma::SystemConfig
two_nodes(const machine::DesignPoint& dp)
{
    rma::SystemConfig cfg;
    cfg.design = dp;
    cfg.nodes = 2;
    cfg.procs_per_node = 1;
    return cfg;
}

/// PUT latency: submit to local-sync (delivery-acknowledged), us.
inline double
put_latency(const machine::DesignPoint& dp, size_t nbytes)
{
    double latency = 0.0;
    void* bufs[2] = {nullptr, nullptr};
    backend::run_app(two_nodes(dp), [&](rma::Ctx& ctx) {
        bufs[ctx.rank()] = ctx.alloc(nbytes + 8);
        if (ctx.rank() == 0) {
            ctx.compute(1.0);
            // Warm-up op so steady-state costs are measured.
            ctx.put_blocking(bufs[0], 1, bufs[1], nbytes);
            double t0 = ctx.now();
            ctx.put_blocking(bufs[0], 1, bufs[1], nbytes);
            latency = ctx.now() - t0;
        } else {
            ctx.compute(5.0);
        }
    });
    return latency;
}

/// GET latency: submit to data stored locally, us.
inline double
get_latency(const machine::DesignPoint& dp, size_t nbytes)
{
    double latency = 0.0;
    void* bufs[2] = {nullptr, nullptr};
    backend::run_app(two_nodes(dp), [&](rma::Ctx& ctx) {
        bufs[ctx.rank()] = ctx.alloc(nbytes + 8);
        if (ctx.rank() == 0) {
            ctx.compute(1.0);
            ctx.get_blocking(bufs[0], 1, bufs[1], nbytes);
            double t0 = ctx.now();
            ctx.get_blocking(bufs[0], 1, bufs[1], nbytes);
            latency = ctx.now() - t0;
        } else {
            ctx.compute(5.0);
        }
    });
    return latency;
}

/// Compute-processor overhead of submitting a PUT and detecting its
/// completion ("PUT+sync ovh" in Table 4), us.
inline double
put_sync_overhead(const machine::DesignPoint& dp)
{
    double ovh = 0.0;
    void* bufs[2] = {nullptr, nullptr};
    backend::run_app(two_nodes(dp), [&](rma::Ctx& ctx) {
        bufs[ctx.rank()] = ctx.alloc(64);
        if (ctx.rank() == 0) {
            sim::Flag* f = ctx.new_flag();
            ctx.compute(1.0);
            double t0 = ctx.now();
            ctx.put(bufs[0], 1, bufs[1], 8, f);
            double submit = ctx.now() - t0;
            ctx.wait_ge(*f, 1); // returns at set-time + poll cost
            // Measure the detection cost alone with the flag already
            // satisfied.
            double t2 = ctx.now();
            ctx.wait_ge(*f, 1);
            double detect = ctx.now() - t2;
            ovh = submit + detect;
        } else {
            ctx.compute(5.0);
        }
    });
    return ovh;
}

/// Active-message round-trip latency (request + reply), us.
inline double
am_latency(const machine::DesignPoint& dp, size_t nbytes = 8)
{
    double latency = 0.0;
    backend::run_app(two_nodes(dp), [&](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        sim::Flag* got = ctx.new_flag();
        std::vector<uint8_t> payload(nbytes, 0x42);
        int h_req = ep.register_handler([&](const am::Msg& m) {
            m.reply(1, m.data, m.size);
        });
        ep.register_handler(
            [&](const am::Msg&) { got->add(1); });
        if (ctx.rank() == 0) {
            ctx.compute(1.0);
            ep.request(1, h_req, payload.data(), nbytes);
            ep.poll_until(*got, 1);
            double t0 = ctx.now();
            ep.request(1, h_req, payload.data(), nbytes);
            ep.poll_until(*got, 2);
            latency = ctx.now() - t0;
        } else {
            // Serve two requests.
            while (ep.handled() < 2) {
                if (!ep.poll())
                    ctx.compute(0.5);
            }
        }
    });
    return latency;
}

/// Streaming bandwidth in MB/s: many back-to-back PUTs of
/// `msg_bytes`; measured from first submit to last remote delivery.
inline double
stream_bw(const machine::DesignPoint& dp, size_t msg_bytes,
          int messages = 16)
{
    double mbs = 0.0;
    void* bufs[2] = {nullptr, nullptr};
    backend::run_app(two_nodes(dp), [&](rma::Ctx& ctx) {
        bufs[ctx.rank()] = ctx.alloc(msg_bytes + 8);
        if (ctx.rank() == 0) {
            sim::Flag* rsync = static_cast<sim::Flag*>(
                ctx.lookup("bw.flag", 1));
            ctx.compute(1.0);
            double t0 = ctx.now();
            for (int i = 0; i < messages; ++i)
                ctx.put(bufs[0], 1, bufs[1], msg_bytes, nullptr, rsync);
            ctx.wait_ge(*rsync, static_cast<uint64_t>(messages));
            double dt = ctx.now() - t0;
            mbs = static_cast<double>(msg_bytes) * messages / dt;
        } else {
            sim::Flag* f = ctx.new_flag();
            ctx.publish("bw.flag", f);
            ctx.wait_ge(*f, static_cast<uint64_t>(messages));
        }
    });
    return mbs;
}

/// Ping-pong one-way latency for `nbytes` PUTs (Figure 7): half the
/// round-trip of two alternating PUT+flag exchanges.
inline double
pingpong_half_rtt(const machine::DesignPoint& dp, size_t nbytes,
                  int rounds = 8)
{
    double half = 0.0;
    void* bufs[2] = {nullptr, nullptr};
    backend::run_app(two_nodes(dp), [&](rma::Ctx& ctx) {
        bufs[ctx.rank()] = ctx.alloc(nbytes + 8);
        sim::Flag* mine = ctx.new_flag();
        ctx.publish("pp.flag", mine);
        sim::Flag* theirs = static_cast<sim::Flag*>(
            ctx.lookup("pp.flag", 1 - ctx.rank()));
        if (ctx.rank() == 0) {
            ctx.compute(1.0);
            double t0 = ctx.now();
            for (int r = 0; r < rounds; ++r) {
                ctx.put(bufs[0], 1, bufs[1], nbytes, nullptr, theirs);
                ctx.wait_ge(*mine, static_cast<uint64_t>(r + 1));
            }
            half = (ctx.now() - t0) / (2.0 * rounds);
        } else {
            for (int r = 0; r < rounds; ++r) {
                ctx.wait_ge(*mine, static_cast<uint64_t>(r + 1));
                ctx.put(bufs[1], 0, bufs[0], nbytes, nullptr, theirs);
            }
        }
    });
    return half;
}

/// AM bulk-store ping-pong one-way latency (Figure 7 bottom).
inline double
am_store_half_rtt(const machine::DesignPoint& dp, size_t nbytes,
                  int rounds = 8)
{
    double half = 0.0;
    void* bufs[2] = {nullptr, nullptr};
    backend::run_app(two_nodes(dp), [&](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        bufs[ctx.rank()] = ctx.alloc(nbytes + 8);
        sim::Flag* arrived = ctx.new_flag();
        int h = ep.register_handler(
            [&](const am::Msg&) { arrived->add(1); });
        ctx.compute(1.0);
        if (ctx.rank() == 0) {
            double t0 = ctx.now();
            for (int r = 0; r < rounds; ++r) {
                ep.store(1, bufs[0], bufs[1], nbytes, h);
                ep.poll_until(*arrived, static_cast<uint64_t>(r + 1));
            }
            half = (ctx.now() - t0) / (2.0 * rounds);
        } else {
            for (int r = 0; r < rounds; ++r) {
                ep.poll_until(*arrived, static_cast<uint64_t>(r + 1));
                ep.store(0, bufs[1], bufs[0], nbytes, h);
            }
        }
    });
    return half;
}

/// AM bulk-store streaming bandwidth (Figure 7 bottom right).
inline double
am_store_bw(const machine::DesignPoint& dp, size_t msg_bytes,
            int messages = 8)
{
    double mbs = 0.0;
    void* bufs[2] = {nullptr, nullptr};
    backend::run_app(two_nodes(dp), [&](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        bufs[ctx.rank()] = ctx.alloc(msg_bytes + 8);
        sim::Flag* arrived = ctx.new_flag();
        int h = ep.register_handler(
            [&](const am::Msg&) { arrived->add(1); });
        ctx.compute(1.0);
        if (ctx.rank() == 0) {
            double t0 = ctx.now();
            for (int i = 0; i < messages; ++i)
                ep.store(1, bufs[0], bufs[1], msg_bytes, h);
            // Completion observed via a final round trip: the peer
            // stores back once it has everything.
            ep.poll_until(*arrived, 1);
            double dt = ctx.now() - t0;
            mbs = static_cast<double>(msg_bytes) * messages / dt;
        } else {
            ep.poll_until(*arrived, static_cast<uint64_t>(messages));
            ep.store(0, bufs[1], bufs[0], 8, h);
        }
    });
    return mbs;
}

} // namespace bench

#endif // MSGPROXY_BENCH_MICRO_H
