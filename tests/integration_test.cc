/// \file
/// Cross-layer integration tests: application traffic shapes must
/// match the paper's Table 6 characterization; a DEQ-based
/// work-stealing pattern exercises remote dequeues under contention;
/// a mixed workload runs every layer (MPI + CRL + Split-C + AM +
/// collectives) in one simulation; and the sim kernel's composite
/// wait primitive is pinned down.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "am/am.h"
#include "apps/apps.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "crl/crl.h"
#include "machine/design_point.h"
#include "mpi/mpi.h"
#include "rma/system.h"
#include "sim/flag.h"
#include "splitc/splitc.h"

namespace {

rma::SystemConfig
cfg_for(const std::string& dp_name, int nodes, int ppn = 1)
{
    rma::SystemConfig cfg;
    cfg.design = *machine::design_point_by_name(dp_name);
    cfg.nodes = nodes;
    cfg.procs_per_node = ppn;
    return cfg;
}

// ------------------------------------------------- Table 6 traffic shapes

struct TrafficShape
{
    int app_index;
    double min_avg_bytes;
    double max_avg_bytes;
};

class AppTrafficShape : public ::testing::TestWithParam<TrafficShape>
{
};

TEST_P(AppTrafficShape, AverageMessageSizeInCharacteristicRange)
{
    auto p = GetParam();
    const auto& app = apps::all_apps()[static_cast<size_t>(p.app_index)];
    auto res = app.fn(cfg_for("MP1", 8), /*scale=*/2);
    ASSERT_TRUE(res.valid) << app.name;
    EXPECT_GE(res.run.avg_msg_bytes, p.min_avg_bytes) << app.name;
    EXPECT_LE(res.run.avg_msg_bytes, p.max_avg_bytes) << app.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table6, AppTrafficShape,
    ::testing::Values(
        // Moldy broadcasts coordinate blocks: large messages.
        TrafficShape{0, 400.0, 20000.0},
        // Sample sends key pairs: tiny messages (paper: ~29 B).
        TrafficShape{6, 8.0, 64.0},
        // Wator fetches small fish groups (paper: 40 B).
        TrafficShape{9, 24.0, 256.0},
        // MM moves whole block-rows: very large messages.
        TrafficShape{4, 4096.0, 1e9},
        // P-Ray fetches single sphere records (paper: 29 B).
        TrafficShape{8, 16.0, 128.0}),
    [](const auto& info) {
        std::string n = apps::all_apps()[static_cast<size_t>(
                                             info.param.app_index)]
                            .name;
        for (auto& c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ----------------------------------------------------- DEQ work stealing

TEST(Integration, RemoteDeqWorkStealing)
{
    // Rank 0 owns a task queue; workers DEQ tasks remotely until a
    // poison pill arrives. Every task must be executed exactly once.
    const int p = 4;
    const int kTasks = 60;
    auto cfg = cfg_for("MP1", p);
    std::vector<int> executed(kTasks, 0);
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        coll::Collective coll(ctx);
        int qid = ctx.make_queue();
        coll.barrier();
        if (ctx.rank() == 0) {
            for (int t = 0; t < kTasks; ++t) {
                int64_t task = t;
                ctx.enq_blocking(&task, 0, qid, sizeof(task));
            }
            // One poison pill per worker.
            for (int w = 1; w < p; ++w) {
                int64_t pill = -1;
                ctx.enq_blocking(&pill, 0, qid, sizeof(pill));
            }
            coll.barrier();
        } else {
            for (;;) {
                int64_t task = -2;
                sim::Flag* f = ctx.new_flag();
                ctx.deq(&task, 0, qid, sizeof(task), f);
                ctx.wait_ge(*f, 1);
                if (f->value() == 1) {
                    // Queue momentarily empty: retry after a pause.
                    ctx.compute(20.0);
                    continue;
                }
                if (task < 0)
                    break; // poison pill
                executed[static_cast<size_t>(task)]++;
                ctx.compute(15.0); // "process" the task
            }
            coll.barrier();
        }
    });
    for (int t = 0; t < kTasks; ++t)
        EXPECT_EQ(executed[static_cast<size_t>(t)], 1) << "task " << t;
}

// -------------------------------------------------- all layers together

TEST(Integration, EveryLayerCoexistsInOneRun)
{
    auto cfg = cfg_for("MP2", 4);
    auto res = backend::run_app(cfg, [&](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        crl::Crl crl(ctx, ep);
        mpi::Comm comm(ctx, ep);
        splitc::SplitC sc(ctx);
        coll::Collective coll(ctx, &ep);
        const int me = ctx.rank();
        const int p = ctx.nranks();

        // Split-C: spread array, neighbour writes.
        int64_t* arr = sc.all_spread_alloc<int64_t>("mix.arr", 4);
        for (int i = 0; i < 4; ++i)
            arr[i] = me;
        coll.barrier();
        sc.write(sc.global<int64_t>("mix.arr", (me + 1) % p) + 1,
                 static_cast<int64_t>(100 + me));
        coll.barrier();
        EXPECT_EQ(arr[1], 100 + (me + p - 1) % p);

        // CRL: a shared counter region incremented by everyone.
        crl::RegionId rid = crl::Crl::region_id(0, 0);
        if (me == 0)
            crl.create(sizeof(int64_t));
        auto* counter =
            static_cast<int64_t*>(crl.map(rid, sizeof(int64_t)));
        coll.barrier();
        for (int round = 0; round < p; ++round) {
            if (round == me) {
                crl.start_write(rid);
                *counter += me + 1;
                crl.end_write(rid);
            }
            coll.barrier();
        }
        crl.start_read(rid);
        EXPECT_EQ(*counter, p * (p + 1) / 2);
        crl.end_read(rid);

        // MPI: ring shift of the Split-C values.
        int64_t out = arr[0], in = -1;
        int nxt = (me + 1) % p, prv = (me + p - 1) % p;
        mpi::Request r = comm.irecv(&in, sizeof(in), prv, 42);
        comm.send(&out, sizeof(out), nxt, 42);
        comm.wait(r);
        EXPECT_EQ(in, prv);

        // Reduction over everything.
        int64_t sum = coll.allreduce_sum_i64(in);
        EXPECT_EQ(sum, p * (p - 1) / 2);
        coll.barrier();
    });
    EXPECT_EQ(res.faults, 0u);
}

// ------------------------------------------------------- sim wait_either

TEST(SimKernel, WaitEitherWakesOnFirstOfTwoFlags)
{
    rma::SystemConfig cfg = cfg_for("MP1", 1);
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        sim::Flag* a = ctx.new_flag();
        sim::Flag* b = ctx.new_flag();
        ctx.system().scheduler().schedule_in(
            50.0, [b] { b->add(1); });
        ctx.system().scheduler().schedule_in(
            500.0, [a] { a->add(1); });
        double t0 = ctx.now();
        ctx.wait_either(*a, 1, *b, 1);
        double waited = ctx.now() - t0;
        // Woken by b at t+50, not by a at t+500.
        EXPECT_GE(waited, 50.0);
        EXPECT_LT(waited, 100.0);
        // The later flag still fires; wait for it too.
        ctx.wait_ge(*a, 1);
        EXPECT_GE(ctx.now() - t0, 500.0);
    });
}

TEST(SimKernel, WaitEitherAlreadySatisfiedReturnsImmediately)
{
    rma::SystemConfig cfg = cfg_for("MP1", 1);
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        sim::Flag* a = ctx.new_flag();
        sim::Flag* b = ctx.new_flag();
        a->set(5);
        double t0 = ctx.now();
        ctx.wait_either(*a, 3, *b, 1);
        // Only the flag-read cost is charged.
        EXPECT_LT(ctx.now() - t0, 2.0);
    });
}

// ------------------------------------------------------- determinism

TEST(Determinism, IdenticalRunsProduceIdenticalTimesAndChecksums)
{
    // The simulation must be a pure function of its configuration:
    // any nondeterminism (host pointers leaking into timing, map
    // iteration order, uninitialized reads) shows up here.
    for (int app_idx : {1, 3, 6}) { // LU, Water, Sample
        const auto& app =
            apps::all_apps()[static_cast<size_t>(app_idx)];
        auto cfg = cfg_for("MP1", 4);
        auto r1 = app.fn(cfg, /*scale=*/4);
        auto r2 = app.fn(cfg, /*scale=*/4);
        EXPECT_DOUBLE_EQ(r1.elapsed_us, r2.elapsed_us) << app.name;
        EXPECT_DOUBLE_EQ(r1.checksum, r2.checksum) << app.name;
        EXPECT_EQ(r1.run.ops, r2.run.ops) << app.name;
    }
}

TEST(Determinism, SeedChangesRandomizedAppsOnly)
{
    // The RNG seed feeds per-rank streams: Monte-Carlo apps change,
    // deterministic kernels (LU) do not.
    auto cfg_a = cfg_for("MP1", 4);
    auto cfg_b = cfg_a;
    cfg_b.seed = 777;
    auto lu_a = apps::run_lu(cfg_a, 4);
    auto lu_b = apps::run_lu(cfg_b, 4);
    EXPECT_DOUBLE_EQ(lu_a.checksum, lu_b.checksum);
    auto mo_a = apps::run_moldy(cfg_a, 4);
    auto mo_b = apps::run_moldy(cfg_b, 4);
    EXPECT_NE(mo_a.checksum, mo_b.checksum);
}

} // namespace
