/// \file
/// Backend-focused tests: timing semantics the architectures must
/// honour (FIFO ordering, PIO/DMA crossover, bandwidth laws,
/// interrupt-stolen time, multi-proxy partitioning, notify ordering,
/// trace completeness), plus design-point/machine invariants.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "backend/factory.h"
#include "machine/design_point.h"
#include "rma/system.h"

namespace {

rma::SystemConfig
cfg_for(const std::string& dp_name, int nodes = 2, int ppn = 1)
{
    rma::SystemConfig cfg;
    cfg.design = *machine::design_point_by_name(dp_name);
    cfg.nodes = nodes;
    cfg.procs_per_node = ppn;
    return cfg;
}

// --------------------------------------------------------------- machine

TEST(Machine, DesignPointLookup)
{
    EXPECT_TRUE(machine::design_point_by_name("MP1").has_value());
    EXPECT_FALSE(machine::design_point_by_name("XX9").has_value());
    EXPECT_EQ(machine::all_design_points().size(), 6u);
    for (const auto& d : machine::all_design_points()) {
        EXPECT_GT(d.dma_bw_mbs, 0.0);
        EXPECT_GT(d.net_bw_mbs, 0.0);
        EXPECT_GT(d.speed, 0.0);
        // cache-update latency never exceeds the plain miss.
        EXPECT_LE(d.c_update_us, d.c_miss_us);
    }
}

TEST(Machine, CostHelpers)
{
    auto d = machine::mp0();
    EXPECT_EQ(d.lines(0), 0u);
    EXPECT_EQ(d.lines(1), 1u);
    EXPECT_EQ(d.lines(32), 1u);
    EXPECT_EQ(d.lines(33), 2u);
    EXPECT_EQ(d.pages(4096), 1u);
    EXPECT_EQ(d.pages(4097), 2u);
    EXPECT_DOUBLE_EQ(d.insn(2.0), 2.0); // S = 1
    EXPECT_DOUBLE_EQ(machine::mp1().insn(2.0), 0.5); // S = 4
    EXPECT_DOUBLE_EQ(machine::DesignPoint::xfer_us(150, 150.0), 1.0);
    EXPECT_DOUBLE_EQ(machine::mp2().proxy_miss(), 0.25);
    EXPECT_DOUBLE_EQ(machine::mp1().proxy_miss(), 1.0);
}

TEST(Machine, Hw2ExtensionPoint)
{
    auto d = machine::hw2();
    EXPECT_EQ(d.arch, machine::Arch::kHardware);
    EXPECT_TRUE(d.cache_update);
    EXPECT_DOUBLE_EQ(d.proxy_miss(), 0.25);
}

// ------------------------------------------------------------- semantics

// PUTs from one source to one destination must be delivered in
// submission order (the command queue and the wire are FIFO).
class BackendOrdering : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BackendOrdering, SameFlowPutsDeliverInOrder)
{
    auto cfg = cfg_for(GetParam());
    // Repeatedly overwrite one slot; final value must be the last put.
    void* bufs[2] = {nullptr, nullptr};
    std::vector<int> observed;
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        int32_t* slot = ctx.alloc_n<int32_t>(1);
        bufs[ctx.rank()] = slot;
        if (ctx.rank() == 0) {
            *slot = 0;
            ctx.compute(1.0);
            sim::Flag* f = ctx.new_flag();
            int32_t vals[32];
            for (int i = 0; i < 32; ++i) {
                vals[i] = i;
                ctx.put(&vals[i], 1, bufs[1], 4, f);
            }
            ctx.wait_ge(*f, 32);
        } else {
            *slot = -1;
            sim::Flag* watcher = ctx.new_flag();
            ctx.publish("ord.flag", watcher);
            ctx.compute(1e5);
            EXPECT_EQ(*slot, 31); // last write wins
        }
    });
}

TEST_P(BackendOrdering, MixedSizePutsStayOrderedViaNotify)
{
    // A large (DMA) transfer followed by its notification: the
    // notification must observe the complete data even though small
    // control messages could otherwise overtake the DMA stream.
    auto cfg = cfg_for(GetParam());
    void* bufs[2] = {nullptr, nullptr};
    bool saw_complete = false;
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        const size_t n = 48 * 1024;
        uint8_t* buf = ctx.alloc_n<uint8_t>(n);
        bufs[ctx.rank()] = buf;
        if (ctx.rank() == 0) {
            std::memset(buf, 0xEE, n);
            ctx.compute(1.0);
            uint8_t note[8] = {1};
            int qid_remote = 0; // rank 1 creates its queue first thing
            ctx.put_notify(buf, 1, bufs[1], n, qid_remote, note, 8);
            ctx.compute(1e5);
        } else {
            int qid = ctx.make_queue();
            (void)qid;
            std::memset(buf, 0, n);
            std::vector<uint8_t> msg;
            while (!ctx.try_deq_local(0, msg))
                ctx.wait_ge(ctx.arrival_flag(),
                            ctx.arrival_flag().value() + 1);
            // At notification time every byte must already be there.
            saw_complete = true;
            for (size_t i = 0; i < n; i += 997)
                ASSERT_EQ(buf[i], 0xEE);
        }
    });
    EXPECT_TRUE(saw_complete);
}

INSTANTIATE_TEST_SUITE_P(AllDesignPoints, BackendOrdering,
                         ::testing::Values("HW0", "HW1", "MP0", "MP1",
                                           "MP2", "SW1"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------- timing

double
put_latency_us(const rma::SystemConfig& cfg, size_t nbytes)
{
    double latency = 0.0;
    void* bufs[2] = {nullptr, nullptr};
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        bufs[ctx.rank()] = ctx.alloc(nbytes + 8);
        if (ctx.rank() == 0) {
            ctx.compute(1.0);
            double t0 = ctx.now();
            ctx.put_blocking(bufs[0], 1, bufs[1], nbytes);
            latency = ctx.now() - t0;
        } else {
            ctx.compute(10.0);
        }
    });
    return latency;
}

TEST(BackendTiming, LatencyGrowsWithSizeAndRespectsBandwidth)
{
    auto cfg = cfg_for("MP1");
    double l1 = put_latency_us(cfg, 8);
    double l2 = put_latency_us(cfg, 64 * 1024);
    double l3 = put_latency_us(cfg, 256 * 1024);
    EXPECT_LT(l1, l2);
    EXPECT_LT(l2, l3);
    // Large transfers approach the pin-limited bandwidth: time per
    // byte converges (l3/4 within 35% of l2 scaled).
    EXPECT_NEAR(l3 / 4.0, l2, 0.35 * l3 / 4.0);
}

TEST(BackendTiming, NetworkLatencyEntersOnce)
{
    auto a = cfg_for("MP1");
    auto b = cfg_for("MP1");
    b.design.net_lat_us = a.design.net_lat_us + 10.0;
    // PUT-to-lsync includes L twice (data + ack).
    double la = put_latency_us(a, 8);
    double lb = put_latency_us(b, 8);
    EXPECT_NEAR(lb - la, 20.0, 0.5);
}

TEST(BackendTiming, IntraNodeIsFasterThanInterNode)
{
    for (const char* dpn : {"HW1", "MP1", "SW1"}) {
        // Inter-node: 2 nodes x 1 proc. Intra-node: 1 node x 2 procs.
        double inter = put_latency_us(cfg_for(dpn, 2, 1), 64);
        double intra = 0.0;
        {
            auto cfg = cfg_for(dpn, 1, 2);
            void* bufs[2] = {nullptr, nullptr};
            backend::run_app(cfg, [&](rma::Ctx& ctx) {
                bufs[ctx.rank()] = ctx.alloc(72);
                if (ctx.rank() == 0) {
                    ctx.compute(1.0);
                    double t0 = ctx.now();
                    ctx.put_blocking(bufs[0], 1, bufs[1], 64);
                    intra = ctx.now() - t0;
                } else {
                    ctx.compute(10.0);
                }
            });
        }
        EXPECT_LT(intra, inter) << dpn;
    }
}

TEST(BackendTiming, SyscallInterruptsStealComputeTime)
{
    // Rank 1 computes a fixed amount while rank 0 bombards it with
    // PUTs; under SW1 the interrupts inflate rank 1's compute time,
    // under HW1 they do not.
    auto measure = [](const char* dpn) {
        auto cfg = cfg_for(dpn);
        double compute_span = 0.0;
        void* bufs[2] = {nullptr, nullptr};
        backend::run_app(cfg, [&](rma::Ctx& ctx) {
            uint8_t* buf = ctx.alloc_n<uint8_t>(64);
            bufs[ctx.rank()] = buf;
            if (ctx.rank() == 0) {
                ctx.compute(1.0);
                sim::Flag* f = ctx.new_flag();
                for (int i = 0; i < 50; ++i)
                    ctx.put(buf, 1, bufs[1], 32, f);
                ctx.wait_ge(*f, 50);
            } else {
                ctx.compute(200.0); // let some puts land
                double t0 = ctx.now();
                for (int i = 0; i < 10; ++i)
                    ctx.compute(50.0); // 500 us of "work"
                compute_span = ctx.now() - t0;
            }
        });
        return compute_span;
    };
    double hw = measure("HW1");
    double sw = measure("SW1");
    EXPECT_NEAR(hw, 500.0, 1.0);
    EXPECT_GT(sw, 520.0); // interrupts stole noticeable time
}

TEST(BackendTiming, MultiProxyReducesQueueing)
{
    // Four ranks on one node all blast a remote node; more proxies,
    // less time.
    auto run = [](int nproxies) {
        auto cfg = cfg_for("MP1", 2, 4);
        cfg.proxies_per_node = nproxies;
        double span = 0.0;
        backend::run_app(cfg, [&](rma::Ctx& ctx) {
            uint8_t* buf = ctx.alloc_n<uint8_t>(128);
            ctx.publish("mpq.buf", buf);
            int p = ctx.nranks();
            if (ctx.rank() < p / 2) {
                auto* dst = static_cast<uint8_t*>(
                    ctx.lookup("mpq.buf", ctx.rank() + p / 2));
                ctx.compute(1.0);
                double t0 = ctx.now();
                for (int i = 0; i < 25; ++i)
                    ctx.put_blocking(buf, ctx.rank() + p / 2, dst, 64);
                span = std::max(span, ctx.now() - t0);
            } else {
                ctx.compute(20000.0);
            }
        });
        return span;
    };
    double one = run(1);
    double four = run(4);
    EXPECT_LT(four, one);
}

TEST(BackendTiming, TraceCoversTheFullCriticalPath)
{
    struct Sink : rma::TraceSink
    {
        std::vector<rma::TraceEntry> entries;
        void add(rma::TraceEntry e) override
        {
            entries.push_back(std::move(e));
        }
    } sink;

    auto cfg = cfg_for("MP0");
    auto sys = backend::make_system(cfg);
    void* bufs[2] = {nullptr, nullptr};
    double latency = 0.0;
    sys->run([&](rma::Ctx& ctx) {
        bufs[ctx.rank()] = ctx.alloc(64);
        if (ctx.rank() == 0) {
            ctx.compute(1.0);
            ctx.system().backend().set_trace(&sink);
            double t0 = ctx.now();
            ctx.get_blocking(bufs[0], 1, bufs[1], 8);
            latency = ctx.now() - t0;
            ctx.system().backend().set_trace(nullptr);
        } else {
            ctx.compute(5.0);
        }
    });
    double sum = 0.0;
    int polls = 0, transits = 0;
    for (const auto& e : sink.entries) {
        sum += e.us;
        if (e.operation == "polling delay")
            ++polls;
        if (e.operation == "transit time")
            ++transits;
    }
    EXPECT_EQ(polls, 3);    // local, remote, local (the model's 3P)
    EXPECT_EQ(transits, 2); // the model's 2L
    // The trace accounts for nearly the whole measured latency (the
    // user-side flag read is outside the traced agents).
    EXPECT_NEAR(sum, latency, 3.0);
}

TEST(BackendTiming, Mp2FasterThanMp1EverywhereSmall)
{
    for (size_t n : {8u, 64u, 256u}) {
        double mp1 = put_latency_us(cfg_for("MP1"), n);
        double mp2 = put_latency_us(cfg_for("MP2"), n);
        EXPECT_LT(mp2, mp1) << n;
    }
}

TEST(BackendTiming, FaultedPutDoesNotHangAndLeavesMemoryIntact)
{
    for (const char* dpn : {"HW1", "MP1", "SW1"}) {
        auto cfg = cfg_for(dpn);
        uint64_t faults = 0;
        backend::run_app(cfg, [&](rma::Ctx& ctx) {
            if (ctx.rank() == 1) {
                auto* priv =
                    static_cast<uint8_t*>(ctx.alloc(64, false));
                std::memset(priv, 0x42, 64);
                ctx.publish("fault.buf", priv);
                ctx.compute(2000.0);
                for (int i = 0; i < 64; ++i)
                    ASSERT_EQ(priv[i], 0x42);
                faults = ctx.system().faults().size();
            } else {
                auto* target = static_cast<uint8_t*>(
                    ctx.lookup("fault.buf", 1));
                uint8_t* src = ctx.alloc_n<uint8_t>(64);
                std::memset(src, 0, 64);
                ctx.put_blocking(src, 1, target, 64); // must not hang
            }
        });
        EXPECT_EQ(faults, 1u) << dpn;
    }
}

} // namespace
