/// \file
/// Tests for the Split-C layer: spread arrays, split-phase get/put
/// with sync, one-way stores with all_store_sync, and blocking sugar.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "backend/factory.h"
#include "coll/coll.h"
#include "machine/design_point.h"
#include "rma/system.h"
#include "splitc/splitc.h"

namespace {

rma::SystemConfig
cfg_for(const std::string& dp_name, int nodes = 4, int ppn = 1)
{
    rma::SystemConfig cfg;
    auto dp = machine::design_point_by_name(dp_name);
    EXPECT_TRUE(dp.has_value());
    cfg.design = *dp;
    cfg.nodes = nodes;
    cfg.procs_per_node = ppn;
    return cfg;
}

class SplitcAllBackends : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SplitcAllBackends, SpreadArrayAndBlockingReadWrite)
{
    auto cfg = cfg_for(GetParam());
    backend::run_app(cfg, [](rma::Ctx& ctx) {
        splitc::SplitC sc(ctx);
        coll::Collective coll(ctx);
        int64_t* mine = sc.all_spread_alloc<int64_t>("arr", 8);
        for (int i = 0; i < 8; ++i)
            mine[i] = ctx.rank() * 1000 + i;
        coll.barrier();
        // Read the neighbour's slice element-by-element.
        int nbr = (ctx.rank() + 1) % ctx.nranks();
        auto g = sc.global<int64_t>("arr", nbr);
        for (int i = 0; i < 8; ++i)
            EXPECT_EQ(sc.read(g + i), nbr * 1000 + i);
        // Write into the neighbour's last element; verify after a
        // barrier.
        sc.write(g + 7, static_cast<int64_t>(-ctx.rank() - 1));
        coll.barrier();
        int prev = (ctx.rank() + ctx.nranks() - 1) % ctx.nranks();
        EXPECT_EQ(mine[7], -prev - 1);
    });
}

TEST_P(SplitcAllBackends, SplitPhaseGetsOverlapAndSync)
{
    auto cfg = cfg_for(GetParam());
    backend::run_app(cfg, [](rma::Ctx& ctx) {
        splitc::SplitC sc(ctx);
        coll::Collective coll(ctx);
        const size_t n = 32;
        double* mine = sc.all_spread_alloc<double>("v", n);
        for (size_t i = 0; i < n; ++i)
            mine[i] = ctx.rank() + i * 0.5;
        coll.barrier();

        // Issue gets from every other rank, overlap compute, sync.
        std::vector<double> landing(n * static_cast<size_t>(ctx.nranks()));
        for (int r = 0; r < ctx.nranks(); ++r) {
            auto g = sc.global<double>("v", r);
            sc.get_sp(&landing[static_cast<size_t>(r) * n], g, n);
        }
        EXPECT_GT(sc.pending(), 0u);
        ctx.compute(50.0);
        sc.sync();
        EXPECT_EQ(sc.pending(), 0u);
        for (int r = 0; r < ctx.nranks(); ++r)
            for (size_t i = 0; i < n; ++i)
                ASSERT_DOUBLE_EQ(landing[static_cast<size_t>(r) * n + i],
                                 r + i * 0.5);
        coll.barrier();
    });
}

TEST_P(SplitcAllBackends, StoresAndAllStoreSync)
{
    auto cfg = cfg_for(GetParam());
    backend::run_app(cfg, [](rma::Ctx& ctx) {
        splitc::SplitC sc(ctx);
        coll::Collective coll(ctx);
        int p = ctx.nranks();
        // Everyone owns one slot per rank; each rank stores its id+1
        // into its slot on every other rank.
        int64_t* slots =
            sc.all_spread_alloc<int64_t>("slots", static_cast<size_t>(p));
        for (int i = 0; i < p; ++i)
            slots[i] = 0;
        coll.barrier();
        int64_t v = ctx.rank() + 1;
        for (int r = 0; r < p; ++r) {
            auto g = sc.global<int64_t>("slots", r) + ctx.rank();
            sc.store(g, &v);
        }
        sc.all_store_sync(coll);
        for (int i = 0; i < p; ++i)
            EXPECT_EQ(slots[i], i + 1);
        // A second round with different traffic re-uses the fence.
        for (int r = 0; r < p; r += 2) {
            auto g = sc.global<int64_t>("slots", r) + ctx.rank();
            int64_t w = 100 + ctx.rank();
            sc.store(g, &w);
        }
        sc.all_store_sync(coll);
        if (ctx.rank() % 2 == 0) {
            for (int i = 0; i < p; ++i)
                EXPECT_EQ(slots[i], 100 + i);
        }
    });
}

TEST_P(SplitcAllBackends, BulkTransfersMoveLargeBlocks)
{
    auto cfg = cfg_for(GetParam(), /*nodes=*/2);
    backend::run_app(cfg, [](rma::Ctx& ctx) {
        splitc::SplitC sc(ctx);
        coll::Collective coll(ctx);
        const size_t n = 8192; // 64 KB of doubles: DMA path
        double* mine = sc.all_spread_alloc<double>("bulk", n);
        for (size_t i = 0; i < n; ++i)
            mine[i] = ctx.rank() * 1e6 + static_cast<double>(i);
        coll.barrier();
        if (ctx.rank() == 0) {
            std::vector<double> got(n);
            sc.bulk_get(got.data(), sc.global<double>("bulk", 1), n);
            for (size_t i = 0; i < n; i += 61)
                ASSERT_DOUBLE_EQ(got[i], 1e6 + static_cast<double>(i));
        }
        coll.barrier();
    });
}

INSTANTIATE_TEST_SUITE_P(AllDesignPoints, SplitcAllBackends,
                         ::testing::Values("HW0", "HW1", "MP0", "MP1",
                                           "MP2", "SW1"),
                         [](const auto& info) { return info.param; });

} // namespace
