/// \file
/// Tests for the Active Message layer and the collectives library,
/// parameterized across all six design points.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "am/am.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "machine/design_point.h"
#include "rma/system.h"

namespace {

rma::SystemConfig
cfg_for(const std::string& dp_name, int nodes = 2, int ppn = 1)
{
    rma::SystemConfig cfg;
    auto dp = machine::design_point_by_name(dp_name);
    EXPECT_TRUE(dp.has_value());
    cfg.design = *dp;
    cfg.nodes = nodes;
    cfg.procs_per_node = ppn;
    return cfg;
}

class AmAllBackends : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AmAllBackends, RequestInvokesHandlerWithPayload)
{
    auto cfg = cfg_for(GetParam());
    int handled_src = -1;
    std::vector<uint8_t> handled_payload;
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        int hid = ep.register_handler([&](const am::Msg& m) {
            handled_src = m.src;
            handled_payload.assign(m.data, m.data + m.size);
        });
        if (ctx.rank() == 0) {
            double vals[2] = {3.25, -7.5};
            sim::Flag* f = ctx.new_flag();
            ep.request(1, hid, vals, sizeof(vals), f);
            ep.poll_until(*f, 1);
        } else {
            while (ep.handled() == 0) {
                if (!ep.poll())
                    ctx.compute(1.0);
            }
        }
    });
    EXPECT_EQ(handled_src, 0);
    ASSERT_EQ(handled_payload.size(), 2 * sizeof(double));
    double vals[2];
    std::memcpy(vals, handled_payload.data(), sizeof(vals));
    EXPECT_DOUBLE_EQ(vals[0], 3.25);
    EXPECT_DOUBLE_EQ(vals[1], -7.5);
}

TEST_P(AmAllBackends, RequestReplyRoundTrip)
{
    auto cfg = cfg_for(GetParam());
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        sim::Flag* got_reply = ctx.new_flag();
        double reply_val = 0.0;
        // Handler 0: compute and reply. Handler 1: receive the reply.
        int h_req = ep.register_handler([](const am::Msg& m) {
            double x;
            std::memcpy(&x, m.data, sizeof(x));
            double y = x * 2.0;
            m.reply(1, &y, sizeof(y));
        });
        ep.register_handler([&](const am::Msg& m) {
            std::memcpy(&reply_val, m.data, sizeof(reply_val));
            got_reply->add(1);
        });
        if (ctx.rank() == 0) {
            double x = 21.0;
            ep.request(1, h_req, &x, sizeof(x));
            ep.poll_until(*got_reply, 1);
            EXPECT_DOUBLE_EQ(reply_val, 42.0);
        } else {
            // Serve until the requester got its answer; one request
            // suffices, then drain.
            while (ep.handled() == 0) {
                if (!ep.poll())
                    ctx.compute(1.0);
            }
            ctx.compute(200.0);
            ep.poll_all();
        }
    });
}

TEST_P(AmAllBackends, BulkStoreDeliversDataBeforeHandler)
{
    auto cfg = cfg_for(GetParam());
    // Use a large transfer so it takes the DMA path: the handler must
    // still observe the complete data (ordering guarantee).
    const size_t n = 32 * 1024;
    void* target_ptrs[2] = {nullptr, nullptr};
    bool data_ok = false;
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        uint8_t* buf = ctx.alloc_n<uint8_t>(n);
        target_ptrs[ctx.rank()] = buf;
        sim::Flag* done = ctx.new_flag();
        ep.register_handler([&](const am::Msg& m) {
            uint64_t arg;
            std::memcpy(&arg, m.data, sizeof(arg));
            EXPECT_EQ(arg, 0xfeedu);
            data_ok = true;
            auto* p = static_cast<uint8_t*>(target_ptrs[1]);
            for (size_t i = 0; i < n; i += 4097)
                data_ok &= (p[i] == static_cast<uint8_t>(i * 13 & 0xff));
            done->add(1);
        });
        if (ctx.rank() == 0) {
            for (size_t i = 0; i < n; ++i)
                buf[i] = static_cast<uint8_t>(i * 13 & 0xff);
            ctx.compute(1.0);
            ep.store(1, buf, target_ptrs[1], n, /*hid=*/0, 0xfeed);
            ctx.compute(100.0);
        } else {
            std::memset(buf, 0, n);
            ep.poll_until(*done, 1);
        }
    });
    EXPECT_TRUE(data_ok);
}

TEST_P(AmAllBackends, GetFetchesBulkData)
{
    auto cfg = cfg_for(GetParam());
    void* srcs[2] = {nullptr, nullptr};
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        const size_t n = 2048;
        uint32_t* buf = ctx.alloc_n<uint32_t>(n);
        srcs[ctx.rank()] = buf;
        if (ctx.rank() == 1) {
            for (size_t i = 0; i < n; ++i)
                buf[i] = static_cast<uint32_t>(i ^ 0xa5a5);
            ctx.compute(50000.0);
        } else {
            ctx.compute(2.0);
            sim::Flag* f = ctx.new_flag();
            ep.get(1, srcs[1], buf, n * sizeof(uint32_t), f);
            ep.poll_until(*f, 1);
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(buf[i], static_cast<uint32_t>(i ^ 0xa5a5));
        }
    });
}

INSTANTIATE_TEST_SUITE_P(AllDesignPoints, AmAllBackends,
                         ::testing::Values("HW0", "HW1", "MP0", "MP1",
                                           "MP2", "SW1"),
                         [](const auto& info) { return info.param; });

// ------------------------------------------------------------- collectives

class CollAllBackends : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CollAllBackends, BarrierSynchronizesRanks)
{
    auto cfg = cfg_for(GetParam(), /*nodes=*/4);
    double release_times[4] = {0, 0, 0, 0};
    double arrive_times[4] = {0, 0, 0, 0};
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        coll::Collective coll(ctx);
        // Stagger arrivals: rank r computes r*100 us first.
        ctx.compute(100.0 * ctx.rank());
        arrive_times[ctx.rank()] = ctx.now();
        coll.barrier();
        release_times[ctx.rank()] = ctx.now();
    });
    // Nobody may leave the barrier before the last arrival.
    double last_arrival = arrive_times[3];
    for (int r = 0; r < 4; ++r)
        EXPECT_GE(release_times[r], last_arrival);
}

TEST_P(CollAllBackends, RepeatedBarriers)
{
    auto cfg = cfg_for(GetParam(), /*nodes=*/3);
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        coll::Collective coll(ctx);
        for (int i = 0; i < 10; ++i) {
            ctx.compute(static_cast<double>(
                ctx.rng().next_below(50)));
            coll.barrier();
        }
        EXPECT_EQ(coll.barriers(), 10u);
    });
}

TEST_P(CollAllBackends, BroadcastDeliversToAll)
{
    auto cfg = cfg_for(GetParam(), /*nodes=*/4);
    int sums[4] = {0, 0, 0, 0};
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        coll::Collective coll(ctx);
        int32_t* data = ctx.alloc_n<int32_t>(256);
        if (ctx.rank() == 2) {
            for (int i = 0; i < 256; ++i)
                data[i] = i * 3;
        }
        coll.broadcast(data, 256 * sizeof(int32_t), /*root=*/2);
        int s = 0;
        for (int i = 0; i < 256; ++i)
            s += data[i];
        sums[ctx.rank()] = s;
        coll.barrier();
    });
    for (int r = 0; r < 4; ++r)
        EXPECT_EQ(sums[r], 255 * 256 / 2 * 3);
}

TEST_P(CollAllBackends, AllreduceSumAndMax)
{
    auto cfg = cfg_for(GetParam(), /*nodes=*/4);
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        coll::Collective coll(ctx);
        double r = static_cast<double>(ctx.rank());
        double s = coll.allreduce_sum(r + 1.0);
        EXPECT_DOUBLE_EQ(s, 1.0 + 2.0 + 3.0 + 4.0);
        double m = coll.allreduce_max(r * 10.0);
        EXPECT_DOUBLE_EQ(m, 30.0);
        int64_t i = coll.allreduce_sum_i64(ctx.rank() * 100);
        EXPECT_EQ(i, 600);
    });
}

TEST_P(CollAllBackends, ScanComputesInclusivePrefix)
{
    auto cfg = cfg_for(GetParam(), /*nodes=*/4);
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        coll::Collective coll(ctx);
        // Two back-to-back scans exercise the carry-slot handshake.
        int64_t p1 = coll.scan_sum_i64(ctx.rank() + 1);
        int64_t expect1 = 0;
        for (int r = 0; r <= ctx.rank(); ++r)
            expect1 += r + 1;
        EXPECT_EQ(p1, expect1);
        int64_t p2 = coll.scan_sum_i64(10);
        EXPECT_EQ(p2, 10 * (ctx.rank() + 1));
    });
}

TEST_P(CollAllBackends, AllgatherCollectsInRankOrder)
{
    auto cfg = cfg_for(GetParam(), /*nodes=*/4);
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        coll::Collective coll(ctx);
        int64_t mine[2] = {ctx.rank() * 10, ctx.rank() * 10 + 1};
        int64_t all[8] = {0};
        coll.allgather(mine, all, sizeof(mine));
        for (int r = 0; r < 4; ++r) {
            EXPECT_EQ(all[r * 2], r * 10);
            EXPECT_EQ(all[r * 2 + 1], r * 10 + 1);
        }
        // Second round with new values reuses the landing area.
        int64_t mine2[2] = {100 + ctx.rank(), 200 + ctx.rank()};
        coll.allgather(mine2, all, sizeof(mine2));
        for (int r = 0; r < 4; ++r)
            EXPECT_EQ(all[r * 2], 100 + r);
    });
}

TEST_P(CollAllBackends, AlltoallTransposesBlocks)
{
    auto cfg = cfg_for(GetParam(), /*nodes=*/4);
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        coll::Collective coll(ctx);
        // src block for rank r carries (me, r).
        int32_t src[8], dst[8];
        for (int r = 0; r < 4; ++r) {
            src[r * 2] = ctx.rank();
            src[r * 2 + 1] = r;
        }
        coll.alltoall(src, dst, 2 * sizeof(int32_t));
        for (int r = 0; r < 4; ++r) {
            EXPECT_EQ(dst[r * 2], r);          // sender id
            EXPECT_EQ(dst[r * 2 + 1], ctx.rank()); // my block
        }
    });
}

TEST_P(CollAllBackends, CollectivesOnMultiProcNodes)
{
    auto cfg = cfg_for(GetParam(), /*nodes=*/2, /*ppn=*/2);
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        coll::Collective coll(ctx);
        double s = coll.allreduce_sum(1.0);
        EXPECT_DOUBLE_EQ(s, 4.0);
        coll.barrier();
    });
}

INSTANTIATE_TEST_SUITE_P(AllDesignPoints, CollAllBackends,
                         ::testing::Values("HW0", "HW1", "MP0", "MP1",
                                           "MP2", "SW1"),
                         [](const auto& info) { return info.param; });

} // namespace
