/// \file
/// Unit tests for the util library: RNG determinism and
/// distributional sanity, statistics accumulators, table printing.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/topology.h"

namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    mp::Rng a(42);
    mp::Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ReseedReproduces)
{
    mp::Rng a(7);
    std::vector<uint64_t> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(a.next_u64());
    a.reseed(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), first[static_cast<size_t>(i)]);
}

TEST(Rng, DifferentSeedsDiffer)
{
    mp::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next_u64() == b.next_u64());
    EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRangeAndCoversValues)
{
    mp::Rng r(3);
    std::set<uint64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        uint64_t v = r.next_below(7);
        ASSERT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleUnitInterval)
{
    mp::Rng r(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double v = r.next_double();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextIntInclusiveBounds)
{
    mp::Rng r(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        int64_t v = r.next_int(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Summary, BasicMoments)
{
    mp::Summary s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Summary, EmptyIsSane)
{
    mp::Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    // Documented sentinels of the empty extrema: writers serializing
    // them must guard (the bench_json regression in obs_test.cc).
    EXPECT_TRUE(std::isinf(s.min()));
    EXPECT_GT(s.min(), 0.0);
    EXPECT_TRUE(std::isinf(s.max()));
    EXPECT_LT(s.max(), 0.0);
}

TEST(Summary, SingleSample)
{
    mp::Summary s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, ResetClears)
{
    mp::Summary s;
    s.add(1.0);
    s.add(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    s.add(10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 10.0);
}

TEST(BusyTime, Utilization)
{
    mp::BusyTime b;
    b.add_busy(25.0);
    b.add_busy(25.0);
    EXPECT_DOUBLE_EQ(b.utilization(200.0), 0.25);
    EXPECT_DOUBLE_EQ(b.utilization(0.0), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    mp::Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.0);
    h.add(5.5);
    h.add(9.999);
    h.add(10.0);
    h.add(100.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.total(), 6u);
    EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
}

TEST(Histogram, QuantileInterpolatesWithinBuckets)
{
    mp::Histogram h(0.0, 100.0, 10);
    for (int v = 0; v < 100; ++v)
        h.add(static_cast<double>(v));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 10.0);
    EXPECT_NEAR(h.quantile(0.95), 95.0, 10.0);
    EXPECT_LE(h.quantile(0.5), h.quantile(0.95));
    EXPECT_LE(h.quantile(0.95), h.quantile(0.99));
    // Clamps out-of-range q.
    EXPECT_DOUBLE_EQ(h.quantile(-0.5), h.quantile(0.0));
    EXPECT_DOUBLE_EQ(h.quantile(1.5), h.quantile(1.0));
}

TEST(Histogram, QuantileEdgeCases)
{
    mp::Histogram empty(0.0, 10.0, 10);
    EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);

    mp::Histogram one(0.0, 10.0, 10);
    one.add(5.5);
    const double q = one.quantile(0.5);
    EXPECT_GE(q, 5.0);
    EXPECT_LE(q, 6.0);

    // All mass in the saturating overflow bucket: the histogram can
    // only answer "at or beyond hi".
    mp::Histogram over(0.0, 10.0, 10);
    over.add(100.0);
    over.add(200.0);
    EXPECT_DOUBLE_EQ(over.quantile(0.99), 10.0);

    // Underflow mass reports as lo.
    mp::Histogram under(10.0, 20.0, 10);
    under.add(1.0);
    EXPECT_DOUBLE_EQ(under.quantile(0.5), 10.0);
}

TEST(Histogram, ResetClearsCountsKeepsLayout)
{
    mp::Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(5.0);
    h.add(50.0);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    for (size_t i = 0; i < h.buckets(); ++i)
        EXPECT_EQ(h.bucket(i), 0u);
    EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0); // layout survives
    h.add(5.0);
    EXPECT_EQ(h.bucket(5), 1u);
}

TEST(TablePrinter, FormatsAndCsv)
{
    mp::TablePrinter t("Caption");
    t.set_header({"a", "b"});
    t.add_row({"1", "x"});
    t.add_row({mp::TablePrinter::num(3.14159, 2),
               mp::TablePrinter::num(static_cast<int64_t>(42))});

    std::string path = "/tmp/mp_table_test.csv";
    ASSERT_TRUE(t.write_csv(path));
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[256];
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "a,b\n");
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "1,x\n");
    ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
    EXPECT_STREQ(buf, "3.14,42\n");
    std::fclose(f);
}

TEST(TablePrinter, NumFormatting)
{
    EXPECT_EQ(mp::TablePrinter::num(1.005, 1), "1.0");
    EXPECT_EQ(mp::TablePrinter::num(static_cast<int64_t>(-7)), "-7");
    EXPECT_EQ(mp::TablePrinter::num(2.0, 0), "2");
}

TEST(Topology, ParseCpulistFormats)
{
    using topo::parse_cpulist;
    EXPECT_EQ(parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(parse_cpulist("0-2,8,10-11"),
              (std::vector<int>{0, 1, 2, 8, 10, 11}));
    EXPECT_EQ(parse_cpulist("5"), (std::vector<int>{5}));
    EXPECT_EQ(parse_cpulist("0-1,4-5\n"),
              (std::vector<int>{0, 1, 4, 5}));
    EXPECT_TRUE(parse_cpulist("").empty());
    EXPECT_TRUE(parse_cpulist("abc").empty());
    EXPECT_TRUE(parse_cpulist("3-1").empty()); // inverted range
}

TEST(Topology, DiscoveredSnapshotIsConsistent)
{
    const topo::Topology& t = topo::Topology::get();
    ASSERT_GE(t.ncpu, 1);
    ASSERT_GE(t.num_numa_nodes(), 1);
    ASSERT_EQ(t.numa_of_cpu.size(), static_cast<size_t>(t.ncpu));
    // cpu_order holds each discovered CPU exactly once (it may be
    // shorter than ncpu on hosts with offline CPUs, never longer).
    ASSERT_GE(t.cpu_order.size(), 1u);
    ASSERT_LE(t.cpu_order.size(), static_cast<size_t>(t.ncpu));
    std::set<int> order(t.cpu_order.begin(), t.cpu_order.end());
    EXPECT_EQ(order.size(), t.cpu_order.size());
    size_t total = 0;
    for (int node = 0; node < t.num_numa_nodes(); ++node) {
        for (int cpu : t.node_cpus[static_cast<size_t>(node)]) {
            ASSERT_GE(cpu, 0);
            ASSERT_LT(cpu, t.ncpu);
            EXPECT_EQ(t.numa_of_cpu[static_cast<size_t>(cpu)], node);
        }
        total += t.node_cpus[static_cast<size_t>(node)].size();
    }
    EXPECT_EQ(total, t.cpu_order.size());
}

TEST(Topology, ReserveCpusWrapsAndStaysInRange)
{
    const topo::Topology& t = topo::Topology::get();
    // More slots than the host has CPUs: the cursor must wrap
    // instead of running dry, and every id must be a real CPU.
    std::vector<int> got = topo::reserve_cpus(t.ncpu + 3);
    ASSERT_EQ(got.size(), static_cast<size_t>(t.ncpu + 3));
    for (int cpu : got) {
        EXPECT_GE(cpu, 0);
        EXPECT_LT(cpu, t.ncpu);
    }
    EXPECT_TRUE(topo::reserve_cpus(0).empty());
}

TEST(Topology, PinSelfToBadCpuFailsGracefully)
{
    // Pinning to a nonexistent CPU must report failure, not crash;
    // pinning to CPU 0 should succeed wherever pinning is supported.
    EXPECT_FALSE(topo::pin_self_to_cpu(1 << 20));
    EXPECT_FALSE(topo::pin_self_to_cpu(-1));
}

} // namespace
