/// \file
/// Unit tests for the discrete-event kernel: event ordering, the
/// SimThread process model (advance/block/wake semantics), Flag
/// waiters, and Resource FIFO/utilization behaviour.

#include <gtest/gtest.h>

#include <vector>

#include "sim/flag.h"
#include "sim/resource.h"
#include "sim/scheduler.h"

namespace {

TEST(Scheduler, EventsRunInTimeOrder)
{
    sim::Scheduler s;
    std::vector<int> order;
    s.schedule_at(5.0, [&] { order.push_back(2); });
    s.schedule_at(1.0, [&] { order.push_back(1); });
    s.schedule_at(9.0, [&] { order.push_back(3); });
    s.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(s.now(), 9.0);
}

TEST(Scheduler, TiesBreakByInsertionOrder)
{
    sim::Scheduler s;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        s.schedule_at(3.0, [&order, i] { order.push_back(i); });
    s.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, NestedScheduling)
{
    sim::Scheduler s;
    double inner_time = -1.0;
    s.schedule_at(2.0, [&] {
        s.schedule_in(3.0, [&] { inner_time = s.now(); });
    });
    s.run();
    EXPECT_DOUBLE_EQ(inner_time, 5.0);
}

TEST(SimThread, AdvanceMovesTime)
{
    sim::Scheduler s;
    std::vector<double> stamps;
    s.spawn("t", [&](sim::SimThread& t) {
        stamps.push_back(s.now());
        t.advance(10.0);
        stamps.push_back(s.now());
        t.advance(2.5);
        stamps.push_back(s.now());
    });
    s.run();
    ASSERT_EQ(stamps.size(), 3u);
    EXPECT_DOUBLE_EQ(stamps[0], 0.0);
    EXPECT_DOUBLE_EQ(stamps[1], 10.0);
    EXPECT_DOUBLE_EQ(stamps[2], 12.5);
}

TEST(SimThread, TwoThreadsInterleaveDeterministically)
{
    sim::Scheduler s;
    std::vector<std::pair<char, double>> log;
    s.spawn("a", [&](sim::SimThread& t) {
        for (int i = 0; i < 3; ++i) {
            log.push_back({'a', s.now()});
            t.advance(2.0);
        }
    });
    s.spawn("b", [&](sim::SimThread& t) {
        for (int i = 0; i < 2; ++i) {
            log.push_back({'b', s.now()});
            t.advance(3.0);
        }
    });
    s.run();
    // a@0, b@0, a@2, b@3, a@4
    ASSERT_EQ(log.size(), 5u);
    EXPECT_EQ(log[0].first, 'a');
    EXPECT_EQ(log[1].first, 'b');
    EXPECT_EQ(log[2].first, 'a');
    EXPECT_DOUBLE_EQ(log[2].second, 2.0);
    EXPECT_EQ(log[3].first, 'b');
    EXPECT_DOUBLE_EQ(log[3].second, 3.0);
    EXPECT_EQ(log[4].first, 'a');
    EXPECT_DOUBLE_EQ(log[4].second, 4.0);
}

TEST(SimThread, BlockAndWakeFromEvent)
{
    sim::Scheduler s;
    double woke_at = -1.0;
    sim::SimThread& t = s.spawn("sleeper", [&](sim::SimThread& self) {
        self.block();
        woke_at = s.now();
    });
    s.schedule_at(7.0, [&] { t.wake(); });
    s.run();
    EXPECT_DOUBLE_EQ(woke_at, 7.0);
}

TEST(SimThread, WakeBeforeBlockIsNotLost)
{
    sim::Scheduler s;
    bool finished = false;
    s.spawn("t", [&](sim::SimThread& self) {
        self.wake(); // self-wake latches
        self.block(); // consumes the latched wake, no deadlock
        finished = true;
    });
    s.run();
    EXPECT_TRUE(finished);
}

TEST(Flag, WaitGeBlocksUntilSet)
{
    sim::Scheduler s;
    sim::Flag f;
    double resumed = -1.0;
    s.spawn("w", [&](sim::SimThread& t) {
        f.wait_ge(t, 3);
        resumed = s.now();
    });
    s.schedule_at(1.0, [&] { f.add(1); });
    s.schedule_at(2.0, [&] { f.add(1); });
    s.schedule_at(8.0, [&] { f.add(1); });
    s.run();
    EXPECT_DOUBLE_EQ(resumed, 8.0);
    EXPECT_EQ(f.value(), 3u);
}

TEST(Flag, AlreadySatisfiedDoesNotBlock)
{
    sim::Scheduler s;
    sim::Flag f;
    f.set(10);
    bool done = false;
    s.spawn("w", [&](sim::SimThread& t) {
        f.wait_ge(t, 5);
        done = true;
    });
    s.run();
    EXPECT_TRUE(done);
}

TEST(Flag, MultipleWaitersWithDifferentThresholds)
{
    sim::Scheduler s;
    sim::Flag f;
    double t1 = -1.0, t2 = -1.0;
    s.spawn("w1", [&](sim::SimThread& t) {
        f.wait_ge(t, 1);
        t1 = s.now();
    });
    s.spawn("w2", [&](sim::SimThread& t) {
        f.wait_ge(t, 2);
        t2 = s.now();
    });
    s.schedule_at(4.0, [&] { f.add(1); });
    s.schedule_at(9.0, [&] { f.add(1); });
    s.run();
    EXPECT_DOUBLE_EQ(t1, 4.0);
    EXPECT_DOUBLE_EQ(t2, 9.0);
}

TEST(Resource, IdleServerServesImmediately)
{
    sim::Scheduler s;
    sim::Resource r(s, "srv");
    double done_at = -1.0;
    s.schedule_at(1.0, [&] {
        r.submit(5.0, [&] { done_at = s.now(); });
    });
    s.run();
    EXPECT_DOUBLE_EQ(done_at, 6.0);
    EXPECT_DOUBLE_EQ(r.busy_us(), 5.0);
}

TEST(Resource, FifoQueueing)
{
    sim::Scheduler s;
    sim::Resource r(s, "srv");
    std::vector<double> done;
    s.schedule_at(0.0, [&] {
        r.submit(10.0, [&] { done.push_back(s.now()); });
        r.submit(5.0, [&] { done.push_back(s.now()); });
        r.submit(1.0, [&] { done.push_back(s.now()); });
    });
    s.run();
    ASSERT_EQ(done.size(), 3u);
    EXPECT_DOUBLE_EQ(done[0], 10.0);
    EXPECT_DOUBLE_EQ(done[1], 15.0);
    EXPECT_DOUBLE_EQ(done[2], 16.0);
    EXPECT_EQ(r.jobs(), 3u);
    // Second job waited 10, third waited 15.
    EXPECT_DOUBLE_EQ(r.wait_stats().max(), 15.0);
}

TEST(Resource, SubmitAfterHonoursReadyTime)
{
    sim::Scheduler s;
    sim::Resource r(s, "srv");
    double done_at = -1.0;
    s.schedule_at(0.0, [&] {
        r.submit_after(20.0, 3.0, [&] { done_at = s.now(); });
    });
    s.run();
    EXPECT_DOUBLE_EQ(done_at, 23.0);
}

TEST(Resource, UtilizationAccounting)
{
    sim::Scheduler s;
    sim::Resource r(s, "srv");
    s.schedule_at(0.0, [&] { r.submit(25.0); });
    s.schedule_at(100.0, [&] {});
    s.run();
    EXPECT_DOUBLE_EQ(s.now(), 100.0);
    EXPECT_DOUBLE_EQ(r.utilization(), 0.25);
}

TEST(Scheduler, ManyThreadsManyEvents)
{
    sim::Scheduler s;
    int sum = 0;
    for (int i = 0; i < 16; ++i) {
        s.spawn("t" + std::to_string(i), [&sum, i](sim::SimThread& t) {
            for (int k = 0; k < 50; ++k)
                t.advance(static_cast<double>(i % 3) + 0.5);
            sum += 1;
        });
    }
    s.run();
    EXPECT_EQ(sum, 16);
    EXPECT_GT(s.events_executed(), 16u * 50u);
}

} // namespace
