// Mutation corpus twin: the same publisher expressed through the
// mp::ord named-order vocabulary. Must produce zero findings.

#include <atomic>
#include <cstdint>

namespace mp::ord {
inline constexpr std::memory_order publish = std::memory_order(3);
inline constexpr std::memory_order observe = std::memory_order(2);
} // namespace mp::ord

namespace corpus {

class SeqPublisher
{
  public:
    void
    publish(uint64_t v)
    {
        seq_.store(v, mp::ord::publish);
    }

    uint64_t
    read() const
    {
        return seq_.load(mp::ord::observe);
    }

  private:
    std::atomic<uint64_t> seq_{0};
};

} // namespace corpus
