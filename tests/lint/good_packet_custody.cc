// Mutation corpus twin: the same operations done under the custody
// discipline — every delete sits behind a heap-provenance check, the
// pointer is dead after the return-ring push, and raw pointers only
// enter the custody containers (free_, deferred, stash). Must
// produce zero findings.

#include <cstdint>
#include <deque>
#include <vector>

namespace corpus {

constexpr uint32_t kTxHeap = 1u << 0;

struct Packet
{
    uint64_t seq = 0;
    uint32_t tx_state = 0;
};

struct PacketRef
{
    Packet* p = nullptr;
    bool heap = false;
};

struct ReturnRing
{
    bool try_push(Packet* p);
};

class Proxy
{
  public:
    void retire(PacketRef ref, ReturnRing& ret);
    void stash_packet(Packet* p);

  private:
    std::vector<Packet*> free_;
    std::deque<Packet*> stash;
    uint64_t heap_frees_ = 0;
};

void
Proxy::retire(PacketRef ref, ReturnRing& ret)
{
    if (ref.heap && (ref.p->tx_state & kTxHeap) != 0) {
        delete ref.p;
        ++heap_frees_;
        return;
    }
    ret.try_push(ref.p);
}

void
Proxy::stash_packet(Packet* p)
{
    if (p->tx_state == 0)
        free_.push_back(p);
    else
        stash.push_back(p);
}

} // namespace corpus
