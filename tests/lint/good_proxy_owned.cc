// Mutation corpus twin: proxy-owned state touched only from
// MSGPROXY_PROXY_CTX methods plus a MSGPROXY_QUIESCENT teardown
// (legal: no proxy thread is live during quiescence). Must produce
// zero findings.

#include <cstdint>

#define MSGPROXY_PROXY_OWNED
#define MSGPROXY_PROXY_CTX
#define MSGPROXY_QUIESCENT

namespace corpus {

class Proxy
{
  public:
    MSGPROXY_PROXY_CTX void poll();
    MSGPROXY_QUIESCENT void reset_counters();

  private:
    MSGPROXY_PROXY_OWNED uint64_t idle_polls = 0;
};

void
Proxy::poll()
{
    ++idle_polls;
}

void
Proxy::reset_counters()
{
    idle_polls = 0;
}

} // namespace corpus
