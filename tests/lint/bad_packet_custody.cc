// Mutation corpus: msgproxy-packet-custody must flag this TU.
//
// Three custody violations on pooled Packet pointers: a delete with
// no heap-provenance check, a use of the pointer after it was pushed
// to the return ring (ownership already transferred), and a raw
// escape into a container that is not one of the custody structures.

#include <cstdint>
#include <vector>

namespace corpus {

struct Packet
{
    uint64_t seq = 0;
    uint32_t tx_state = 0;
};

struct ReturnRing
{
    bool try_push(Packet* p);
};

class Proxy
{
  public:
    void retire(Packet* p, ReturnRing& ret);
    void remember(Packet* p);

  private:
    std::vector<Packet*> inflight_log_;
};

void
Proxy::retire(Packet* p, ReturnRing& ret)
{
    if (p->seq % 2 == 0) {
        // Unconditional delete of a possibly pool-owned packet: no
        // heap/tx_state provenance consulted anywhere in this body.
        delete p;
        return;
    }
    ret.try_push(p);
    // Use after custody transfer: the consumer may already have
    // recycled this slot.
    p->seq = 0;
}

void
Proxy::remember(Packet* p)
{
    // Raw pooled pointer escaping into a non-custody container.
    inflight_log_.push_back(p);
}

} // namespace corpus
