// Mutation corpus twin: the sanctioned migration shape. The
// rebalancer reads only the endpoint's atomic backlog counter (a
// single-writer load published for exactly this purpose), and the
// quiesce-and-handoff drain of owned state runs inside a
// MSGPROXY_PROXY_CTX method on the owning proxy. Must produce zero
// findings.

#include <atomic>
#include <cstdint>

#define MSGPROXY_PROXY_OWNED
#define MSGPROXY_PROXY_CTX

namespace corpus {

class Proxy
{
  public:
    MSGPROXY_PROXY_CTX void poll();
    MSGPROXY_PROXY_CTX void handoff_drain();

    uint64_t
    backlog_hint() const
    {
        return backlog.load();
    }

  private:
    MSGPROXY_PROXY_OWNED uint64_t rebal_window = 0;
    std::atomic<uint64_t> backlog{0};
};

class Rebalancer
{
  public:
    bool should_steal(const Proxy& victim) const;
};

void
Proxy::poll()
{
    ++rebal_window;
    backlog.store(rebal_window);
}

void
Proxy::handoff_drain()
{
    // The owning proxy quiesces its own endpoint state before
    // publishing the new owner: a legal proxy-context touch.
    rebal_window = 0;
}

bool
Rebalancer::should_steal(const Proxy& victim) const
{
    // Only the published atomic hint crosses the proxy boundary.
    return victim.backlog_hint() > 256;
}

} // namespace corpus
