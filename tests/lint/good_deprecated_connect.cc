// Mutation corpus twin: the same wiring done through the addressed
// transport API — one-argument Node::connect calls are the
// replacement, not the shim. Must produce zero findings.

namespace proxy {

struct Node
{
    static void connect(Node& a, Node& b); // the deprecated shim
    void listen(const char* addr);
    void connect(const char* addr);
};

void
wire_nodes(Node& a, Node& b)
{
    a.listen("inproc://good-wiring");
    b.connect("inproc://good-wiring");
}

} // namespace proxy
