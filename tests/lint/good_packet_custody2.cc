// Mutation corpus twin: a transport link holding borrowed tx
// packets only in the sanctioned custody containers — the write
// queue (txq_), the surrendered-pointer queue the proxy's
// drain_returns collects (recycled_), and the staged rx queue
// (rx_ready_). Must produce zero findings.

#include <cstdint>
#include <deque>

namespace corpus {

struct Packet
{
    uint64_t seq = 0;
    uint32_t tx_state = 0;
};

class WireLink
{
  public:
    void queue_frame();
    void surrender_sent();

  private:
    Packet* next_packet();
    bool wire_done(Packet** out);

    std::deque<Packet*> txq_;
    std::deque<Packet*> recycled_;
    std::deque<Packet*> rx_ready_;
};

void
WireLink::queue_frame()
{
    Packet* p = next_packet();
    txq_.push_back(p);
    rx_ready_.push_back(next_packet());
}

void
WireLink::surrender_sent()
{
    Packet* p = nullptr;
    while (wire_done(&p))
        recycled_.push_back(p);
}

} // namespace corpus
