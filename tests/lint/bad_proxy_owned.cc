// Mutation corpus: msgproxy-proxy-owned must flag this TU.
//
// A field marked MSGPROXY_PROXY_OWNED (single-owner data of the
// proxy thread) is read by a method with neither MSGPROXY_PROXY_CTX
// (runs on the proxy thread) nor MSGPROXY_QUIESCENT (runs while no
// proxy thread is live) — a cross-thread access the runtime's
// ThreadOwner lint would only catch at runtime, if the schedule
// cooperated.

#include <cstdint>
#include <vector>

#define MSGPROXY_PROXY_OWNED
#define MSGPROXY_PROXY_CTX

namespace corpus {

class Proxy
{
  public:
    MSGPROXY_PROXY_CTX void poll();
    uint64_t idle_polls_now() const;

  private:
    MSGPROXY_PROXY_OWNED uint64_t idle_polls = 0;
};

void
Proxy::poll()
{
    ++idle_polls;
}

uint64_t
Proxy::idle_polls_now() const
{
    // Cross-thread read of proxy-owned state, outside any annotated
    // proxy-context or quiescent method.
    return idle_polls;
}

} // namespace corpus
