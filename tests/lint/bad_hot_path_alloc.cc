// Mutation corpus: msgproxy-hot-path-alloc must flag this TU.
//
// A MSGPROXY_HOT_PATH root reaches, through one call-graph hop, a
// helper that heap-allocates and takes a lock — the two classic ways
// a "small refactor" silently re-introduces per-packet cost that the
// pooled wire path exists to avoid.

#include <cstdint>
#include <mutex>
#include <vector>

#define MSGPROXY_HOT_PATH

namespace corpus {

std::mutex g_table_mutex;
std::vector<uint64_t> g_table;

// Innocent-looking bookkeeping helper: not annotated, but reachable
// from the hot root below.
void
note_sequence(uint64_t seq)
{
    std::lock_guard<std::mutex> hold(g_table_mutex);
    g_table.push_back(seq);
}

struct Packet
{
    uint64_t seq = 0;
};

class Wire
{
  public:
    MSGPROXY_HOT_PATH bool send(Packet& p);

  private:
    uint64_t next_ = 0;
};

bool
Wire::send(Packet& p)
{
    p.seq = next_++;
    // Heap allocation directly on the hot path.
    auto* shadow = new Packet(p);
    note_sequence(shadow->seq);
    return true;
}

} // namespace corpus
