// Mutation corpus: msgproxy-proxy-owned must flag this TU.
//
// Migration-shaped violation: a rebalancer decides what to steal by
// peeking directly at another proxy's owned load-accounting state
// (`rebal_window`) instead of going through the atomic per-endpoint
// backlog counters. The victim proxy mutates that state every poll,
// so the cross-proxy read is exactly the unsanctioned endpoint touch
// the shard-map/migration protocol exists to prevent.

#include <cstdint>

#define MSGPROXY_PROXY_OWNED
#define MSGPROXY_PROXY_CTX

namespace corpus {

class Proxy
{
  public:
    MSGPROXY_PROXY_CTX void poll();

    friend class Rebalancer;

  private:
    MSGPROXY_PROXY_OWNED uint64_t rebal_window = 0;
};

class Rebalancer
{
  public:
    bool should_steal(const Proxy& victim) const;
};

void
Proxy::poll()
{
    ++rebal_window;
}

bool
Rebalancer::should_steal(const Proxy& victim) const
{
    // Cross-proxy read of proxy-owned state from a method with
    // neither MSGPROXY_PROXY_CTX nor MSGPROXY_QUIESCENT.
    return victim.rebal_window > 256;
}

} // namespace corpus
