// Mutation corpus: msgproxy-deprecated-connect must flag this TU.
//
// A new use of the deprecated two-node wiring shim
// Node::connect(Node&, Node&) outside src/proxy/ — callers must wire
// through the addressed listen()/connect() API instead.

namespace proxy {

struct Node
{
    static void connect(Node& a, Node& b); // the deprecated shim
    void listen(const char* addr);
    void connect(const char* addr);
};

void
wire_nodes(Node& a, Node& b)
{
    // Two arguments: the deprecated shim.
    Node::connect(a, b);
}

} // namespace proxy
