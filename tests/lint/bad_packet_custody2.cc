// Mutation corpus: msgproxy-packet-custody must flag this TU.
//
// Transport-side variant of the container-escape rule: a link
// borrows tx packets from the proxy, but may only hold them in the
// sanctioned custody containers (txq_, recycled_, rx_ready_ — plus
// the proxy's free_/deferred/stash). Parking a borrowed Packet* in
// any other container hides it from the recycle/teardown sweeps.

#include <cstdint>
#include <deque>

namespace corpus {

struct Packet
{
    uint64_t seq = 0;
    uint32_t tx_state = 0;
};

class WireLink
{
  public:
    void queue_frame();

  private:
    Packet* next_packet();

    std::deque<Packet*> outbox_;
};

void
WireLink::queue_frame()
{
    Packet* p = next_packet();
    // Borrowed pointer escaping into a container that is not one of
    // the custody structures.
    outbox_.push_back(p);
}

} // namespace corpus
