// Mutation corpus twin: the same shape as bad_hot_path_alloc.cc with
// the discipline applied — pool reuse instead of `new`, a hot-exempt
// boundary for the sanctioned slow path, and a NOLINT carrying its
// rationale for the measured fallback. Must produce zero findings.

#include <cstdint>

#define MSGPROXY_HOT_PATH
#define MSGPROXY_HOT_EXEMPT

namespace corpus {

struct Packet
{
    uint64_t seq = 0;
    Packet* next = nullptr;
};

// The sanctioned blocking point of a long-idle poller: the walk must
// stop here instead of descending into the sleep below it.
MSGPROXY_HOT_EXEMPT void
idle_backoff(int polls);

class Wire
{
  public:
    MSGPROXY_HOT_PATH bool send(Packet& p);
    MSGPROXY_HOT_PATH Packet* acquire();

  private:
    Packet* free_ = nullptr;
    uint64_t next_ = 0;
    uint64_t misses_ = 0;
};

bool
Wire::send(Packet& p)
{
    p.seq = next_++;
    if (p.seq == 0)
        idle_backoff(1);
    return true;
}

Packet*
Wire::acquire()
{
    if (free_ != nullptr) {
        Packet* p = free_;
        free_ = p->next;
        return p;
    }
    // Measured overload fallback, counted in misses_.
    ++misses_;
    // NOLINTNEXTLINE(msgproxy-hot-path-alloc)
    return new Packet;
}

} // namespace corpus
