// Mutation corpus: msgproxy-atomics-order must flag this TU.
//
// Raw std::memory_order_* literals outside src/spsc/ and the
// allowlist. Orderings elsewhere must go through the mp::ord
// vocabulary (src/util/orders.h) so every non-SPSC ordering decision
// is named, greppable, and reviewed in one place.

#include <atomic>
#include <cstdint>

namespace corpus {

class SeqPublisher
{
  public:
    void
    publish(uint64_t v)
    {
        // Raw literal: should be mp::ord::publish.
        seq_.store(v, std::memory_order_release);
    }

    uint64_t
    read() const
    {
        // Raw literal: should be mp::ord::observe.
        return seq_.load(std::memory_order_acquire);
    }

  private:
    std::atomic<uint64_t> seq_{0};
};

} // namespace corpus
