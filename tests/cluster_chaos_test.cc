/// \file
/// Cluster crash-fault storms over the check::Cluster orchestrator:
/// seeded kill/restart and partition/heal schedules against a 3-node
/// full mesh on both wire backends, gated on exact completion
/// accounting (every accepted op completes exactly once) and zero
/// pooled-packet custody leaks (printed as PKT_LEAKS_TOTAL for
/// tools/check.sh cluster). Plus the endpoint re-homing test
/// (NodeConfig::fts.survivor) and the detection-latency probe whose
/// rows feed the EXPERIMENTS.md heartbeat-interval table.

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "check/cluster.h"

namespace {

using namespace std::chrono_literals;

/// Per-source-node accounting: accepted-op counters owned by the
/// schedule thread, completion flags bumped by the proxies. Flags
/// outlive node incarnations, so a restarted node keeps accumulating
/// into the same ledger.
struct SrcState
{
    proxy::Flag put_ls{0};
    proxy::Flag get_ls{0};
    proxy::Flag enq_ls{0};
    uint64_t put_ok = 0;
    uint64_t get_ok = 0;
    uint64_t enq_ok = 0;
    bool ever_killed = false;
    std::vector<uint8_t> src;
    std::vector<uint8_t> scratch;
};

/// Chaos-storm node config: RTO exhaustion is the fast death verdict
/// (6 retries at 100..400 us, ~2.4 ms) and the heartbeat detector the
/// slow backstop (25 ms) for links with nothing in the window — e.g.
/// a GET whose request was acked before the peer died. The backstop
/// is deliberately far above the single-core worst case where a
/// window-stalled sender suppresses its own heartbeats to third
/// parties, so only genuinely dead peers get the verdict.
proxy::NodeConfig
storm_config()
{
    proxy::NodeConfig cfg;
    cfg.num_proxies = 1;
    cfg.channel_depth = 128;
    cfg.packet_pool_size = 512;
    cfg.reliability.window = 32;
    cfg.reliability.ack_every = 4;
    cfg.reliability.rto_ns = 100 * 1000;
    cfg.reliability.rto_max_ns = 400 * 1000;
    cfg.reliability.max_retries = 6;
    cfg.fts.enabled = true;
    cfg.fts.interval_ns = 1 * 1000 * 1000;
    cfg.fts.suspect_after = 5;
    cfg.fts.dead_after = 25;
    return cfg;
}

/// Submits one op from node `s` toward node `dst`, retrying
/// kQueueFull briefly. Refusals (kPeerUnreachable toward a detected
/// death, kBadTarget) are skipped, accepted ops counted: the storm's
/// invariant is about accepted ops only.
void
submit_one(check::Cluster& c, int s, int dst, check::SplitMix& rng,
           SrcState& st)
{
    proxy::Endpoint& ep = c.endpoint(s);
    const uint64_t pick = rng.below(10);
    const auto len = static_cast<uint32_t>(8u << rng.below(6));
    const uint64_t off = rng.below(c.seg_size() - 4096);
    proxy::SubmitStatus rc = proxy::SubmitStatus::kQueueFull;
    for (int tries = 0; tries < 2000; ++tries) {
        if (pick < 5)
            rc = ep.put(st.src.data(), dst, 0, off, len, &st.put_ls,
                        nullptr);
        else if (pick < 9)
            rc = ep.get(st.scratch.data(), dst, 0, off, len,
                        &st.get_ls);
        else
            rc = ep.enq(st.src.data(), 48, dst, 0, &st.enq_ls);
        if (rc.code() != proxy::SubmitStatus::kQueueFull)
            break;
        std::this_thread::yield();
    }
    if (!rc)
        return;
    if (pick < 5)
        ++st.put_ok;
    else if (pick < 9)
        ++st.get_ok;
    else
        ++st.enq_ok;
}

/// One seeded storm: 3 nodes, 36 rounds of mixed PUT/GET/ENQ traffic
/// interleaved with faults. kills=true runs crash/reincarnate events
/// (node 0 is never killed, so at least one source carries the exact
/// accounting obligation); kills=false runs partition/heal events
/// (nobody dies by hand, so every source must account exactly —
/// partitions may still escalate into sticky mutual death verdicts,
/// which fail the victims' in-flight ops through the normal paths).
void
run_storm(net::TransportKind kind, uint64_t seed, bool kills)
{
    SCOPED_TRACE(::testing::Message()
                 << (kind == net::TransportKind::kSocket ? "socket"
                                                         : "inproc")
                 << " seed=" << seed
                 << (kills ? " kills" : " partitions"));
    check::ClusterParams p;
    p.nodes = 3;
    p.transport = kind;
    p.seed = seed;
    p.seg_bytes = 64 * 1024;
    p.base = storm_config();
    check::Cluster c(p);
    check::SplitMix& rng = c.rng();

    std::array<SrcState, 3> led;
    for (size_t s = 0; s < led.size(); ++s) {
        led[s].src.resize(4096);
        led[s].scratch.resize(4096);
        for (size_t i = 0; i < led[s].src.size(); ++i)
            led[s].src[i] =
                static_cast<uint8_t>((s * 131) + i * 7 + 1);
    }

    c.start();
    bool part[3][3] = {};
    for (int round = 0; round < 36; ++round) {
        if (kills) {
            if (c.alive_count() == 3 && rng.unit() < 0.15) {
                const int victim = 1 + static_cast<int>(rng.below(2));
                led[static_cast<size_t>(victim)].ever_killed = true;
                c.kill(victim);
            } else {
                for (int d = 1; d < 3; ++d) {
                    if (!c.alive(d) && rng.unit() < 0.30)
                        c.restart(d);
                }
            }
        } else {
            if (rng.unit() < 0.20) {
                const auto a = static_cast<int>(rng.below(3));
                const auto b = static_cast<int>(rng.below(3));
                if (a != b && !part[a][b]) {
                    part[a][b] = part[b][a] = true;
                    c.partition(a, b);
                }
            }
            for (int a = 0; a < 3; ++a) {
                for (int b = a + 1; b < 3; ++b) {
                    if (part[a][b] && rng.unit() < 0.35) {
                        part[a][b] = part[b][a] = false;
                        c.heal(a, b);
                    }
                }
            }
        }
        for (int s = 0; s < 3; ++s) {
            if (!c.alive(s))
                continue;
            for (int k = 0; k < 6; ++k) {
                const auto dst = static_cast<int>(rng.below(3));
                if (dst == s)
                    continue;
                submit_one(c, s, dst, rng,
                           led[static_cast<size_t>(s)]);
            }
        }
        std::this_thread::sleep_for(300us);
    }
    // Lift every partition so stragglers on still-alive links can
    // drain; deaths already declared stay sticky by design.
    for (int a = 0; a < 3; ++a) {
        for (int b = a + 1; b < 3; ++b)
            c.heal(a, b);
    }

    // Exact accounting: every op a never-killed source accepted must
    // complete exactly once — normally, or through the failure paths
    // (handoff completion on a dead link, fail_ccbs, RTO/heartbeat
    // verdicts). Killed sources may have lost queued commands with
    // their incarnation: their flags stay <= accepted.
    const auto deadline =
        std::chrono::steady_clock::now() + 30s;
    auto converged = [&] {
        for (size_t s = 0; s < led.size(); ++s) {
            if (led[s].ever_killed ||
                !c.alive(static_cast<int>(s)))
                continue;
            if (led[s].put_ls.load() != led[s].put_ok ||
                led[s].get_ls.load() != led[s].get_ok ||
                led[s].enq_ls.load() != led[s].enq_ok)
                return false;
        }
        return true;
    };
    while (!converged() &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(1ms);
    for (size_t s = 0; s < led.size(); ++s) {
        const SrcState& n = led[s];
        if (!n.ever_killed && c.alive(static_cast<int>(s))) {
            EXPECT_EQ(n.put_ls.load(), n.put_ok) << "node " << s;
            EXPECT_EQ(n.get_ls.load(), n.get_ok) << "node " << s;
            EXPECT_EQ(n.enq_ls.load(), n.enq_ok) << "node " << s;
        }
        // Never more than once, killed or not.
        EXPECT_LE(n.put_ls.load(), n.put_ok) << "node " << s;
        EXPECT_LE(n.get_ls.load(), n.get_ok) << "node " << s;
        EXPECT_LE(n.enq_ls.load(), n.enq_ok) << "node " << s;
    }

    const check::Cluster::Custody cu = c.settle();
    std::printf("PKT_LEAKS_TOTAL=%llu\n",
                static_cast<unsigned long long>(cu.leaks()));
    EXPECT_EQ(cu.leaks(), 0u)
        << "pool_hits=" << cu.pool_hits
        << " pool_returns=" << cu.pool_returns;
}

TEST(ClusterChaos, KillStormInProc)
{
    for (uint64_t seed : {11u, 22u, 33u})
        run_storm(net::TransportKind::kInProc, seed, true);
}

TEST(ClusterChaos, KillStormSocket)
{
    for (uint64_t seed : {11u, 22u, 33u})
        run_storm(net::TransportKind::kSocket, seed, true);
}

TEST(ClusterChaos, PartitionStormInProc)
{
    for (uint64_t seed : {44u, 55u, 66u})
        run_storm(net::TransportKind::kInProc, seed, false);
}

TEST(ClusterChaos, PartitionStormSocket)
{
    for (uint64_t seed : {44u, 55u, 66u})
        run_storm(net::TransportKind::kSocket, seed, false);
}

/// Wide-endpoint storm: every node grows to >64 endpoints *after*
/// start() (lazy registration under live traffic), ENQ datagrams fan
/// out across the whole id range while partitions come and go, and
/// random endpoints get retired + epoch-reclaimed mid-storm. The
/// hierarchical doorbell has to discover work beyond the old 64-bit
/// horizon; retired/reclaimed destinations must degrade to counted
/// drops, never faults or custody leaks. num_proxies=2 keeps the
/// cross-proxy doorbell forward path in the mix.
void
run_wide_storm(net::TransportKind kind, uint64_t seed)
{
    SCOPED_TRACE(::testing::Message()
                 << (kind == net::TransportKind::kSocket ? "socket"
                                                         : "inproc")
                 << " wide seed=" << seed);
    check::ClusterParams p;
    p.nodes = 3;
    p.transport = kind;
    p.seed = seed;
    p.seg_bytes = 64 * 1024;
    p.base = storm_config();
    p.base.num_proxies = 2;
    p.base.max_endpoints = 128;
    p.base.cmd_queue_depth = 64;
    p.base.recv_ring_bytes = 4096;
    check::Cluster c(p);
    check::SplitMix& rng = c.rng();

    std::array<SrcState, 3> led;
    for (size_t s = 0; s < led.size(); ++s) {
        led[s].src.resize(4096);
        for (size_t i = 0; i < led[s].src.size(); ++i)
            led[s].src[i] =
                static_cast<uint8_t>((s * 131) + i * 7 + 1);
    }

    c.start();
    // Lazy registration: the cluster harness made endpoint 0; the
    // other 71 per node are created on live nodes, most up front,
    // a trickle during the storm.
    std::vector<std::vector<proxy::Endpoint*>> extra(3);
    std::vector<std::vector<bool>> retired(3);
    auto grow = [&](int n) {
        extra[static_cast<size_t>(n)].push_back(
            &c.node(n).create_endpoint());
        retired[static_cast<size_t>(n)].push_back(false);
    };
    for (int n = 0; n < 3; ++n) {
        for (int i = 0; i < 64; ++i)
            grow(n);
    }

    bool part[3][3] = {};
    for (int round = 0; round < 28; ++round) {
        if (rng.unit() < 0.20) {
            const auto a = static_cast<int>(rng.below(3));
            const auto b = static_cast<int>(rng.below(3));
            if (a != b && !part[a][b]) {
                part[a][b] = part[b][a] = true;
                c.partition(a, b);
            }
        }
        for (int a = 0; a < 3; ++a) {
            for (int b = a + 1; b < 3; ++b) {
                if (part[a][b] && rng.unit() < 0.35) {
                    part[a][b] = part[b][a] = false;
                    c.heal(a, b);
                }
            }
        }
        for (int n = 0; n < 3; ++n) {
            auto& ex = extra[static_cast<size_t>(n)];
            auto& re = retired[static_cast<size_t>(n)];
            if (ex.size() < 71 && rng.unit() < 0.25)
                grow(n);
            // Retire a random live extra endpoint; its pointer is
            // dead to us from here on (reclaim may free it).
            if (rng.unit() < 0.10) {
                const auto i = rng.below(ex.size());
                if (!re[i]) {
                    re[i] = true;
                    c.node(n).retire_endpoint(*ex[i]);
                }
            }
            if (rng.unit() < 0.25)
                c.node(n).reclaim_endpoints();
        }
        for (int s = 0; s < 3; ++s) {
            SrcState& st = led[static_cast<size_t>(s)];
            for (int k = 0; k < 8; ++k) {
                const auto dst = static_cast<int>(rng.below(3));
                if (dst == s)
                    continue;
                // Aim across the whole wide id range — including
                // retired ids (must land as drops, not faults).
                const auto did = static_cast<int>(
                    1 + rng.below(
                            extra[static_cast<size_t>(dst)].size()));
                proxy::SubmitStatus rc =
                    proxy::SubmitStatus::kQueueFull;
                for (int tries = 0; tries < 2000; ++tries) {
                    rc = c.endpoint(s).enq(st.src.data(), 48, dst,
                                           did, &st.enq_ls);
                    if (rc.code() !=
                        proxy::SubmitStatus::kQueueFull)
                        break;
                    std::this_thread::yield();
                }
                if (rc)
                    ++st.enq_ok;
            }
        }
        std::this_thread::sleep_for(300us);
    }
    for (int a = 0; a < 3; ++a) {
        for (int b = a + 1; b < 3; ++b)
            c.heal(a, b);
    }

    // ENQ completes at wire-out, so every accepted op must complete
    // exactly once even when the destination endpoint was retired or
    // the payload dropped on a severed link.
    const auto deadline = std::chrono::steady_clock::now() + 30s;
    auto converged = [&] {
        for (auto& st : led) {
            if (st.enq_ls.load() != st.enq_ok)
                return false;
        }
        return true;
    };
    while (!converged() &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(1ms);
    uint64_t wakeups = 0;
    for (int n = 0; n < 3; ++n) {
        const proxy::NodeStats st = c.node(n).stats();
        EXPECT_EQ(st.db_carry_empty, 0u) << "node " << n;
        wakeups += st.db_wakeups;
    }
    EXPECT_GT(wakeups, 0u);
    for (size_t s = 0; s < led.size(); ++s) {
        EXPECT_EQ(led[s].enq_ls.load(), led[s].enq_ok)
            << "node " << s;
    }

    const check::Cluster::Custody cu = c.settle();
    std::printf("PKT_LEAKS_TOTAL=%llu\n",
                static_cast<unsigned long long>(cu.leaks()));
    EXPECT_EQ(cu.leaks(), 0u)
        << "pool_hits=" << cu.pool_hits
        << " pool_returns=" << cu.pool_returns;
}

TEST(ClusterChaos, WideEndpointPartitionStormInProc)
{
    for (uint64_t seed : {77u, 88u})
        run_wide_storm(net::TransportKind::kInProc, seed);
}

TEST(ClusterChaos, WideEndpointPartitionStormSocket)
{
    for (uint64_t seed : {77u, 88u})
        run_wide_storm(net::TransportKind::kSocket, seed);
}

bool
wait_flag_at_least(const proxy::Flag& f, uint64_t want,
                   std::chrono::milliseconds budget)
{
    const auto deadline = std::chrono::steady_clock::now() + budget;
    while (f.load() < want) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::yield();
    }
    return true;
}

/// Endpoint re-homing: with fts.survivor configured, commands toward
/// a detected-dead peer are accepted and rewritten onto the survivor
/// — the PUT's rsync fires there and the data lands in the
/// survivor's segment; a GET against the dead node's id returns the
/// survivor's bytes.
TEST(ClusterChaos, FailoverRehomesTraffic)
{
    check::ClusterParams p;
    p.nodes = 3;
    p.transport = net::TransportKind::kInProc;
    p.seed = 7;
    p.seg_bytes = 64 * 1024;
    p.base = storm_config();
    p.base.fts.suspect_after = 3;
    p.base.fts.dead_after = 8;
    p.base.fts.survivor = 2;
    check::Cluster c(p);
    c.start();

    std::vector<uint8_t> pat_a(256), got(256, 0);
    for (size_t i = 0; i < pat_a.size(); ++i)
        pat_a[i] = static_cast<uint8_t>(3 * i + 5);

    // Sanity: the mesh moves data before the fault.
    proxy::Flag ls0{0}, rs0{0};
    ASSERT_TRUE(static_cast<bool>(c.endpoint(0).put(
        pat_a.data(), 1, 0, 0, 256, &ls0, &rs0)));
    ASSERT_TRUE(wait_flag_at_least(rs0, 1, 10000ms));

    c.kill(1);
    ASSERT_GT(c.wait_peer_unreachable(0, 1), 0);

    // PUT aimed at the dead node 1 re-homes onto node 2.
    proxy::Flag ls1{0}, rs1{0};
    const auto rc = c.endpoint(0).put(pat_a.data(), 1, 0, 1024, 256,
                                      &ls1, &rs1);
    ASSERT_EQ(rc.code(), proxy::SubmitStatus::kOk) << rc.name();
    ASSERT_TRUE(wait_flag_at_least(rs1, 1, 10000ms));
    EXPECT_EQ(std::memcmp(c.seg(2) + 1024, pat_a.data(), 256), 0);

    // GET against node 1's id reads node 2's (distinct) bytes.
    for (size_t i = 0; i < 256; ++i)
        c.seg(2)[4096 + i] = static_cast<uint8_t>(251 - i);
    proxy::Flag gl{0};
    ASSERT_TRUE(static_cast<bool>(
        c.endpoint(0).get(got.data(), 1, 0, 4096, 256, &gl)));
    ASSERT_TRUE(wait_flag_at_least(gl, 1, 10000ms));
    EXPECT_EQ(std::memcmp(got.data(), c.seg(2) + 4096, 256), 0);

    EXPECT_GE(c.node(0).stats().failovers, 2u);

    const check::Cluster::Custody cu = c.settle();
    std::printf("PKT_LEAKS_TOTAL=%llu\n",
                static_cast<unsigned long long>(cu.leaks()));
    EXPECT_EQ(cu.leaks(), 0u);
}

/// Detection latency vs heartbeat interval: a 2-node idle cluster is
/// crash-killed and the survivor's time-to-verdict measured. Prints
/// one DETECTLAT row per interval — the raw data behind the
/// EXPERIMENTS.md table. Idle links mean the heartbeat detector is
/// the only witness (no window traffic, so no RTO escalation).
TEST(ClusterChaos, DetectionLatencyVsInterval)
{
    for (const double interval_ms : {0.5, 1.0, 2.0, 4.0}) {
        check::ClusterParams p;
        p.nodes = 2;
        p.transport = net::TransportKind::kInProc;
        p.seed = 1;
        p.seg_bytes = 16 * 1024;
        p.base = storm_config();
        p.base.fts.interval_ns =
            static_cast<uint64_t>(interval_ms * 1e6);
        p.base.fts.suspect_after = 3;
        p.base.fts.dead_after = 10;
        check::Cluster c(p);
        c.start();
        // Let both detectors baseline their idle cadence first.
        std::this_thread::sleep_for(20ms);
        c.kill(1);
        const int64_t ns = c.wait_peer_unreachable(0, 1, 20000);
        ASSERT_GT(ns, 0) << "interval_ms=" << interval_ms;
        std::printf(
            "DETECTLAT interval_ms=%.1f dead_after=10 "
            "detect_ms=%.3f\n",
            interval_ms, static_cast<double>(ns) / 1e6);
        // Generous single-core slop; the point is it fires at all
        // and in the right order of magnitude.
        EXPECT_LT(ns, static_cast<int64_t>(3e9));

        const check::Cluster::Custody cu = c.settle();
        std::printf("PKT_LEAKS_TOTAL=%llu\n",
                    static_cast<unsigned long long>(cu.leaks()));
        EXPECT_EQ(cu.leaks(), 0u);
    }
}

} // namespace
