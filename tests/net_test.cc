// Unit tests of the src/net primitives: the header checksum, the
// deterministic fault injector, the FaultyChannel wrapper, and the
// sender/receiver halves of the reliability state machine. The
// end-to-end protocol is model-checked in reliable_property_test.cc
// and exercised against the real runtime in chaos_test.cc.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "net/fault.h"
#include "net/reliable.h"
#include "spsc/ring_queue.h"

namespace {

TEST(CrcFields, DeterministicAndBitSensitive)
{
    const uint32_t base = net::crc_fields({1, 2, 3});
    EXPECT_EQ(base, net::crc_fields({1, 2, 3}));
    // Any single flipped bit in any folded word changes the sum.
    for (int w = 0; w < 3; ++w) {
        for (int b = 0; b < 64; b += 7) {
            uint64_t f[3] = {1, 2, 3};
            f[w] ^= uint64_t{1} << b;
            EXPECT_NE(base, net::crc_fields({f[0], f[1], f[2]}))
                << "word " << w << " bit " << b;
        }
    }
    // Word order matters (a swap is corruption too).
    EXPECT_NE(net::crc_fields({1, 2}), net::crc_fields({2, 1}));
    // Zero words are not absorbed.
    EXPECT_NE(net::crc_fields({1, 2}), net::crc_fields({1, 2, 0}));
}

TEST(FaultInjector, DisabledAlwaysDelivers)
{
    net::FaultInjector inj; // default: all-zero plan
    EXPECT_FALSE(inj.enabled());
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(inj.next(), net::FaultAction::kDeliver);
}

TEST(FaultInjector, SameSeedSameSchedule)
{
    net::FaultPlan plan;
    plan.seed = 42;
    plan.drop = 0.2;
    plan.duplicate = 0.2;
    plan.reorder = 0.2;
    plan.corrupt = 0.2;
    net::FaultInjector a(plan, /*salt=*/7);
    net::FaultInjector b(plan, /*salt=*/7);
    net::FaultInjector other_salt(plan, /*salt=*/8);
    int diverged = 0;
    for (int i = 0; i < 2000; ++i) {
        net::FaultAction ai = a.next();
        EXPECT_EQ(ai, b.next()) << "draw " << i;
        if (ai != other_salt.next())
            ++diverged;
    }
    // Different salts must give a decorrelated stream.
    EXPECT_GT(diverged, 100);
}

TEST(FaultInjector, RatesApproximatelyHonored)
{
    net::FaultPlan plan;
    plan.seed = 3;
    plan.drop = 0.3;
    plan.duplicate = 0.1;
    net::FaultInjector inj(plan, 0);
    int drops = 0;
    int dups = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        switch (inj.next()) {
          case net::FaultAction::kDrop: ++drops; break;
          case net::FaultAction::kDuplicate: ++dups; break;
          default: break;
        }
    }
    EXPECT_NEAR(static_cast<double>(drops) / n, 0.3, 0.02);
    EXPECT_NEAR(static_cast<double>(dups) / n, 0.1, 0.02);
}

TEST(FaultyChannel, LosslessPlanDeliversEverything)
{
    spsc::DynRingQueue<int> ring(256);
    net::FaultPlan plan; // all-zero
    net::FaultyChannel<int, spsc::DynRingQueue<int>> ch(ring, plan);
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(ch.send(i));
    int v = 0;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(ring.try_pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(ring.try_pop(v));
    EXPECT_EQ(ch.stats().offered, 100u);
    EXPECT_EQ(ch.stats().dropped, 0u);
}

TEST(FaultyChannel, StatsAccountForEveryFate)
{
    spsc::DynRingQueue<int> ring(4096);
    net::FaultPlan plan;
    plan.seed = 11;
    plan.drop = 0.25;
    plan.duplicate = 0.25;
    plan.reorder = 0.25;
    const int n = 1000;
    net::FaultyChannel<int, spsc::DynRingQueue<int>> ch(ring, plan);
    for (int i = 0; i < n; ++i)
        ch.send(i);
    ch.flush();
    const auto& st = ch.stats();
    EXPECT_EQ(st.offered, static_cast<uint64_t>(n));
    EXPECT_GT(st.dropped, 0u);
    EXPECT_GT(st.duplicated, 0u);
    EXPECT_GT(st.reordered, 0u);
    EXPECT_EQ(ch.stashed(), 0u) << "flush() must empty the stash";
    // Conservation: every offer either delivered, dropped, or was
    // duplicated (one extra copy each).
    int received = 0;
    int v = 0;
    while (ring.try_pop(v))
        ++received;
    EXPECT_EQ(static_cast<uint64_t>(received),
              st.offered - st.dropped + st.duplicated);
}

TEST(FaultyChannel, CorruptFnMutatesDeliveredCopy)
{
    spsc::DynRingQueue<int> ring(64);
    net::FaultPlan plan;
    plan.seed = 5;
    plan.corrupt = 1.0; // every packet corrupted
    net::FaultyChannel<int, spsc::DynRingQueue<int>> ch(ring, plan);
    ch.send(7, [](int& v) { v = -v; });
    int v = 0;
    ASSERT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, -7);
    EXPECT_EQ(ch.stats().corrupted, 1u);
    // Without a corruption model the fault degrades to a drop.
    ch.send(9);
    EXPECT_FALSE(ring.try_pop(v));
}

// ---------------------------------------------------------- SenderWindow

net::ReliabilityParams
small_params()
{
    net::ReliabilityParams p;
    p.window = 4;
    p.rto_ns = 100;
    p.rto_max_ns = 400;
    p.max_retries = 3;
    return p;
}

TEST(SenderWindow, AssignsSequentialSeqAndFills)
{
    net::SenderWindow<int> w(small_params());
    EXPECT_TRUE(w.empty());
    for (uint64_t i = 1; i <= 4; ++i) {
        EXPECT_FALSE(w.full());
        EXPECT_EQ(w.send(static_cast<int>(i), /*now=*/0), i);
    }
    EXPECT_TRUE(w.full());
    EXPECT_EQ(w.size(), 4u);
    EXPECT_EQ(w.highest_sent(), 4u);
}

TEST(SenderWindow, CumulativeAckReleasesPrefix)
{
    net::SenderWindow<int> w(small_params());
    for (int i = 1; i <= 4; ++i)
        w.send(i * 10, 0);
    std::vector<int> released;
    w.on_ack(3, /*now=*/50, [&](int h) { released.push_back(h); });
    EXPECT_EQ(released, (std::vector<int>{10, 20, 30}));
    EXPECT_EQ(w.size(), 1u);
    EXPECT_FALSE(w.full());
    // Stale / repeated ack releases nothing further.
    w.on_ack(3, 60, [&](int h) { released.push_back(h); });
    EXPECT_EQ(released.size(), 3u);
}

TEST(SenderWindow, TimeoutBacksOffExponentiallyAndResends)
{
    net::SenderWindow<int> w(small_params());
    w.send(1, /*now=*/0); // deadline 100, rto 100
    EXPECT_FALSE(w.timeout_due(99));
    EXPECT_TRUE(w.timeout_due(100));
    std::vector<uint64_t> resent;
    w.on_timeout(100, [&](uint64_t seq, int&) { resent.push_back(seq); });
    EXPECT_EQ(resent, (std::vector<uint64_t>{1}));
    EXPECT_EQ(w.rto(), 200u); // doubled
    EXPECT_FALSE(w.timeout_due(299));
    w.on_timeout(300, [&](uint64_t, int&) {});
    w.on_timeout(700, [&](uint64_t, int&) {});
    EXPECT_EQ(w.rto(), 400u) << "rto capped at rto_max_ns";
    // Ack progress resets both the retry count and the backoff.
    EXPECT_EQ(w.retries(), 3u);
    w.send(2, 700);
    w.on_ack(1, /*now=*/800, [](int) {});
    EXPECT_EQ(w.retries(), 0u);
    EXPECT_EQ(w.rto(), 100u);
    EXPECT_FALSE(w.timeout_due(899));
    EXPECT_TRUE(w.timeout_due(900));
}

TEST(SenderWindow, ExhaustsAfterMaxRetriesWithoutProgress)
{
    net::SenderWindow<int> w(small_params()); // max_retries = 3
    w.send(1, 0);
    uint64_t now = 0;
    int fired = 0;
    while (!w.exhausted()) {
        now += 1000; // far past any backoff
        ASSERT_TRUE(w.timeout_due(now));
        w.on_timeout(now, [&](uint64_t, int&) { ++fired; });
        ASSERT_LE(fired, 10) << "must exhaust, not spin";
    }
    EXPECT_EQ(fired, 4); // max_retries + 1 timeouts before giving up
    std::vector<int> released;
    w.abandon([&](int h) { released.push_back(h); });
    EXPECT_EQ(released, (std::vector<int>{1}));
    EXPECT_TRUE(w.empty());
}

// ----------------------------------------------------------- ReceiverSeq

TEST(ReceiverSeq, InOrderDeliversAndTracksAck)
{
    net::ReceiverSeq r;
    EXPECT_EQ(r.cum_ack(), 0u);
    using V = net::ReceiverSeq::Verdict;
    EXPECT_EQ(r.accept(1), V::kDeliver);
    EXPECT_EQ(r.accept(2), V::kDeliver);
    EXPECT_EQ(r.cum_ack(), 2u);
    EXPECT_TRUE(r.ack_pending());
    EXPECT_FALSE(r.ack_due(/*ack_every=*/4));
    EXPECT_EQ(r.accept(3), V::kDeliver);
    EXPECT_EQ(r.accept(4), V::kDeliver);
    EXPECT_TRUE(r.ack_due(4)) << "threshold reached";
    r.ack_sent();
    EXPECT_FALSE(r.ack_pending());
    EXPECT_EQ(r.cum_ack(), 4u);
}

TEST(ReceiverSeq, DuplicateAndGapDropButDemandAck)
{
    net::ReceiverSeq r;
    using V = net::ReceiverSeq::Verdict;
    EXPECT_EQ(r.accept(1), V::kDeliver);
    r.ack_sent();
    EXPECT_EQ(r.accept(1), V::kDuplicate) << "replayed seq";
    EXPECT_TRUE(r.ack_due(64)) << "duplicate triggers an instant ack";
    r.ack_sent();
    EXPECT_EQ(r.accept(5), V::kGap) << "go-back-N drops beyond next";
    EXPECT_TRUE(r.ack_due(64));
    EXPECT_EQ(r.cum_ack(), 1u) << "gap does not advance the ack";
    EXPECT_EQ(r.accept(2), V::kDeliver) << "retransmit fills the gap";
}

} // namespace
