/// \file
/// Tests for the RMA/RQ layer across all three backends: data
/// delivery, sync-flag semantics, protection enforcement, remote
/// queues, intra-node fast paths, and latency ordering between the
/// architectures (HW < MP, MP2 < MP1 for small messages).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "backend/factory.h"
#include "machine/design_point.h"
#include "rma/system.h"

namespace {

rma::SystemConfig
cfg_for(const std::string& dp_name, int nodes = 2, int ppn = 1)
{
    rma::SystemConfig cfg;
    auto dp = machine::design_point_by_name(dp_name);
    EXPECT_TRUE(dp.has_value());
    cfg.design = *dp;
    cfg.nodes = nodes;
    cfg.procs_per_node = ppn;
    return cfg;
}

// Exchange-pattern helper: both ranks allocate a buffer and publish
// the pointer through a shared rendezvous array owned by the system
// test (plain C++ memory, set up before communication starts).
struct Rendezvous
{
    void* bufs[64] = {nullptr};
    sim::Flag* flags[64] = {nullptr};
    int qids[64] = {-1};
};

class RmaAllBackends : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RmaAllBackends, PutDeliversDataAndFlags)
{
    auto cfg = cfg_for(GetParam());
    Rendezvous rv;
    auto res = backend::run_app(cfg, [&rv](rma::Ctx& ctx) {
        const size_t n = 64;
        char* buf = ctx.alloc_n<char>(n);
        rv.bufs[ctx.rank()] = buf;
        if (ctx.rank() == 0) {
            sim::Flag* lsync = ctx.new_flag();
            sim::Flag* rsync = ctx.new_flag();
            rv.flags[1] = rsync;
            std::memset(buf, 0x5a, n);
            ctx.compute(1.0); // let rank 1 allocate
            ctx.put(buf, 1, rv.bufs[1], n, lsync, rsync);
            ctx.wait_ge(*lsync, 1);
            EXPECT_EQ(lsync->value(), 1u);
        } else {
            std::memset(buf, 0, n);
            // Wait until rank 0 publishes the rsync flag and it fires.
            while (rv.flags[1] == nullptr)
                ctx.compute(0.5);
            ctx.wait_ge(*rv.flags[1], 1);
            for (size_t i = 0; i < n; ++i)
                EXPECT_EQ(buf[i], 0x5a);
        }
    });
    EXPECT_EQ(res.faults, 0u);
    EXPECT_GT(res.elapsed_us, 0.0);
}

TEST_P(RmaAllBackends, GetFetchesRemoteData)
{
    auto cfg = cfg_for(GetParam());
    Rendezvous rv;
    backend::run_app(cfg, [&rv](rma::Ctx& ctx) {
        const size_t n = 128;
        uint8_t* buf = ctx.alloc_n<uint8_t>(n);
        rv.bufs[ctx.rank()] = buf;
        if (ctx.rank() == 1) {
            for (size_t i = 0; i < n; ++i)
                buf[i] = static_cast<uint8_t>(i * 3 + 1);
            // Stay alive until rank 0 reads (GET needs no action here,
            // but keep memory warm past the read).
            ctx.compute(500.0);
        } else {
            std::memset(buf, 0, n);
            ctx.compute(2.0); // rank 1 fills its buffer
            ctx.get_blocking(buf, 1, rv.bufs[1], n);
            for (size_t i = 0; i < n; ++i)
                EXPECT_EQ(buf[i], static_cast<uint8_t>(i * 3 + 1));
        }
    });
}

TEST_P(RmaAllBackends, LargePutUsesDmaAndDelivers)
{
    auto cfg = cfg_for(GetParam());
    Rendezvous rv;
    backend::run_app(cfg, [&rv](rma::Ctx& ctx) {
        const size_t n = 64 * 1024; // far above the PIO threshold
        uint8_t* buf = ctx.alloc_n<uint8_t>(n);
        rv.bufs[ctx.rank()] = buf;
        if (ctx.rank() == 0) {
            for (size_t i = 0; i < n; ++i)
                buf[i] = static_cast<uint8_t>(i & 0xff);
            ctx.compute(1.0);
            ctx.put_blocking(buf, 1, rv.bufs[1], n);
        } else {
            std::memset(buf, 0, n);
            ctx.compute(1.0);
            // Delivery is asynchronous: wait for rank 0's blocking put
            // to complete by simply finishing after a long compute.
            ctx.compute(1e6);
            for (size_t i = 0; i < n; i += 997)
                EXPECT_EQ(buf[i], static_cast<uint8_t>(i & 0xff));
        }
    });
}

TEST_P(RmaAllBackends, EnqDeqRoundTrip)
{
    auto cfg = cfg_for(GetParam());
    Rendezvous rv;
    backend::run_app(cfg, [&rv](rma::Ctx& ctx) {
        if (ctx.rank() == 1) {
            rv.qids[1] = ctx.make_queue();
            std::vector<uint8_t> msg;
            while (!ctx.try_deq_local(rv.qids[1], msg))
                ctx.compute(1.0);
            ASSERT_EQ(msg.size(), 5u);
            EXPECT_EQ(std::memcmp(msg.data(), "hello", 5), 0);
        } else {
            while (rv.qids[1] < 0)
                ctx.compute(0.5);
            ctx.enq_blocking("hello", 1, rv.qids[1], 5);
        }
    });
}

TEST_P(RmaAllBackends, RemoteDeqPullsMessage)
{
    auto cfg = cfg_for(GetParam());
    Rendezvous rv;
    backend::run_app(cfg, [&rv](rma::Ctx& ctx) {
        if (ctx.rank() == 0) {
            rv.qids[0] = ctx.make_queue();
            ctx.enq_blocking("abcdefgh", 0, rv.qids[0], 8); // self-enq
            ctx.compute(1000.0);
        } else {
            while (rv.qids[0] < 0)
                ctx.compute(0.5);
            ctx.compute(200.0); // let rank 0 enqueue
            char buf[16] = {0};
            sim::Flag* f = ctx.new_flag();
            ctx.deq(buf, 0, rv.qids[0], sizeof(buf), f);
            ctx.wait_ge(*f, 1);
            EXPECT_EQ(f->value(), 9u); // 1 + 8 bytes
            EXPECT_EQ(std::memcmp(buf, "abcdefgh", 8), 0);
        }
    });
}

TEST_P(RmaAllBackends, RemoteDeqOnEmptyQueueSignalsEmpty)
{
    auto cfg = cfg_for(GetParam());
    Rendezvous rv;
    backend::run_app(cfg, [&rv](rma::Ctx& ctx) {
        if (ctx.rank() == 0) {
            rv.qids[0] = ctx.make_queue();
            ctx.compute(1000.0);
        } else {
            while (rv.qids[0] < 0)
                ctx.compute(0.5);
            char buf[8];
            sim::Flag* f = ctx.new_flag();
            ctx.deq(buf, 0, rv.qids[0], sizeof(buf), f);
            ctx.wait_ge(*f, 1);
            EXPECT_EQ(f->value(), 1u); // empty: no payload bytes
        }
    });
}

TEST_P(RmaAllBackends, ProtectionFaultOnPrivateSegment)
{
    auto cfg = cfg_for(GetParam());
    Rendezvous rv;
    auto res = backend::run_app(cfg, [&rv](rma::Ctx& ctx) {
        const size_t n = 32;
        if (ctx.rank() == 1) {
            // Private allocation: no other rank granted.
            uint8_t* buf =
                static_cast<uint8_t*>(ctx.alloc(n, /*shared=*/false));
            std::memset(buf, 0x77, n);
            rv.bufs[1] = buf;
            ctx.compute(2000.0);
            // Data must be untouched by rank 0's attempted PUT.
            for (size_t i = 0; i < n; ++i)
                EXPECT_EQ(buf[i], 0x77);
        } else {
            while (rv.bufs[1] == nullptr)
                ctx.compute(0.5);
            uint8_t src[32];
            std::memset(src, 0x11, sizeof(src));
            ctx.system().space(0).register_segment(src, sizeof(src), true);
            ctx.put_blocking(src, 1, rv.bufs[1], n);
        }
    });
    EXPECT_EQ(res.faults, 1u);
}

TEST_P(RmaAllBackends, GrantAllowsAccessToPrivateSegment)
{
    auto cfg = cfg_for(GetParam());
    Rendezvous rv;
    auto res = backend::run_app(cfg, [&rv](rma::Ctx& ctx) {
        const size_t n = 32;
        if (ctx.rank() == 1) {
            uint8_t* buf =
                static_cast<uint8_t*>(ctx.alloc(n, /*shared=*/false));
            std::memset(buf, 0, n);
            ctx.grant(buf, 0);
            rv.bufs[1] = buf;
            ctx.compute(2000.0);
            for (size_t i = 0; i < n; ++i)
                EXPECT_EQ(buf[i], 0x11);
        } else {
            while (rv.bufs[1] == nullptr)
                ctx.compute(0.5);
            uint8_t* src = ctx.alloc_n<uint8_t>(n);
            std::memset(src, 0x11, n);
            ctx.put_blocking(src, 1, rv.bufs[1], n);
        }
    });
    EXPECT_EQ(res.faults, 0u);
}

TEST_P(RmaAllBackends, IntraNodeTransferWorks)
{
    auto cfg = cfg_for(GetParam(), /*nodes=*/1, /*ppn=*/2);
    Rendezvous rv;
    backend::run_app(cfg, [&rv](rma::Ctx& ctx) {
        const size_t n = 256;
        uint8_t* buf = ctx.alloc_n<uint8_t>(n);
        rv.bufs[ctx.rank()] = buf;
        if (ctx.rank() == 0) {
            std::memset(buf, 0xab, n);
            ctx.compute(1.0);
            ctx.put_blocking(buf, 1, rv.bufs[1], n);
        } else {
            std::memset(buf, 0, n);
            ctx.compute(5000.0);
            for (size_t i = 0; i < n; ++i)
                EXPECT_EQ(buf[i], 0xab);
        }
    });
}

TEST_P(RmaAllBackends, ManyOutstandingPutsAllComplete)
{
    auto cfg = cfg_for(GetParam());
    Rendezvous rv;
    backend::run_app(cfg, [&rv](rma::Ctx& ctx) {
        const int k = 50;
        int32_t* buf = ctx.alloc_n<int32_t>(k);
        rv.bufs[ctx.rank()] = buf;
        if (ctx.rank() == 0) {
            for (int i = 0; i < k; ++i)
                buf[i] = i * 7;
            ctx.compute(1.0);
            sim::Flag* lsync = ctx.new_flag();
            auto* dst = static_cast<int32_t*>(rv.bufs[1]);
            for (int i = 0; i < k; ++i)
                ctx.put(&buf[i], 1, &dst[i], sizeof(int32_t), lsync);
            ctx.wait_ge(*lsync, k);
        } else {
            std::memset(buf, 0xff, sizeof(int32_t) * k);
            ctx.compute(1e5);
            for (int i = 0; i < k; ++i)
                EXPECT_EQ(buf[i], i * 7);
        }
    });
}

INSTANTIATE_TEST_SUITE_P(AllDesignPoints, RmaAllBackends,
                         ::testing::Values("HW0", "HW1", "MP0", "MP1",
                                           "MP2", "SW1"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------- latency

double
one_word_put_latency(const std::string& dp)
{
    auto cfg = cfg_for(dp);
    Rendezvous rv;
    double latency = 0.0;
    backend::run_app(cfg, [&rv, &latency](rma::Ctx& ctx) {
        double* buf = ctx.alloc_n<double>(1);
        rv.bufs[ctx.rank()] = buf;
        if (ctx.rank() == 0) {
            ctx.compute(1.0);
            double t0 = ctx.now();
            ctx.put_blocking(buf, 1, rv.bufs[1], sizeof(double));
            latency = ctx.now() - t0;
        } else {
            ctx.compute(100.0);
        }
    });
    return latency;
}

TEST(RmaLatency, ArchitectureOrderingMatchesPaper)
{
    double hw1 = one_word_put_latency("HW1");
    double mp1 = one_word_put_latency("MP1");
    double mp2 = one_word_put_latency("MP2");
    double sw1 = one_word_put_latency("SW1");
    // Table 4 ordering: HW < MP2 < MP1 < SW for small messages.
    EXPECT_LT(hw1, mp2);
    EXPECT_LT(mp2, mp1);
    EXPECT_LT(mp1, sw1);
    // And the magnitudes are in the paper's ballpark (us).
    EXPECT_NEAR(hw1, 10.6, 4.0);
    EXPECT_NEAR(mp1, 26.6, 6.0);
    EXPECT_NEAR(mp2, 16.9, 5.0);
    EXPECT_NEAR(sw1, 36.1, 9.0);
}

TEST(RmaTraffic, CountsOpsAndSizes)
{
    auto cfg = cfg_for("MP1");
    Rendezvous rv;
    auto res = backend::run_app(cfg, [&rv](rma::Ctx& ctx) {
        uint8_t* buf = ctx.alloc_n<uint8_t>(256);
        rv.bufs[ctx.rank()] = buf;
        if (ctx.rank() == 0) {
            ctx.compute(1.0);
            for (int i = 0; i < 10; ++i)
                ctx.put_blocking(buf, 1, rv.bufs[1], 100);
        } else {
            ctx.compute(2000.0);
        }
    });
    EXPECT_EQ(res.ops, 10u);
    EXPECT_DOUBLE_EQ(res.avg_msg_bytes, 100.0);
    EXPECT_GT(res.rate_per_proc_ms, 0.0);
}

TEST(RmaUtilization, ProxyBusyTimeIsTracked)
{
    auto cfg = cfg_for("MP1");
    Rendezvous rv;
    auto res = backend::run_app(cfg, [&rv](rma::Ctx& ctx) {
        uint8_t* buf = ctx.alloc_n<uint8_t>(64);
        rv.bufs[ctx.rank()] = buf;
        if (ctx.rank() == 0) {
            ctx.compute(1.0);
            for (int i = 0; i < 20; ++i)
                ctx.put_blocking(buf, 1, rv.bufs[1], 64);
        } else {
            ctx.compute(3000.0);
        }
    });
    ASSERT_EQ(res.agent_utilization.size(), 2u);
    EXPECT_GT(res.agent_utilization[0], 0.0);
    EXPECT_GT(res.agent_utilization[1], 0.0);
    EXPECT_LT(res.agent_utilization[0], 1.0);
}

} // namespace
