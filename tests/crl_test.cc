/// \file
/// Tests for the CRL distributed-shared-memory layer: coherence state
/// transitions, read/write visibility, invalidation, deferred
/// protocol actions while regions are held, and a randomized
/// sequential-consistency property test.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "am/am.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "crl/crl.h"
#include "machine/design_point.h"
#include "rma/system.h"

namespace {

rma::SystemConfig
cfg_for(const std::string& dp_name, int nodes = 2, int ppn = 1)
{
    rma::SystemConfig cfg;
    auto dp = machine::design_point_by_name(dp_name);
    EXPECT_TRUE(dp.has_value());
    cfg.design = *dp;
    cfg.nodes = nodes;
    cfg.procs_per_node = ppn;
    return cfg;
}

class CrlAllBackends : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CrlAllBackends, WriteThenRemoteReadSeesData)
{
    auto cfg = cfg_for(GetParam());
    backend::run_app(cfg, [](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        crl::Crl crl(ctx, ep);
        coll::Collective coll(ctx, &ep);
        // Rank 0 homes one region of 100 doubles.
        crl::RegionId rid = crl::Crl::region_id(0, 0);
        if (ctx.rank() == 0)
            crl.create(100 * sizeof(double));
        auto* buf =
            static_cast<double*>(crl.map(rid, 100 * sizeof(double)));
        coll.barrier();

        if (ctx.rank() == 0) {
            crl.start_write(rid);
            for (int i = 0; i < 100; ++i)
                buf[i] = i * 1.5;
            crl.end_write(rid);
        }
        coll.barrier();
        if (ctx.rank() == 1) {
            crl.start_read(rid);
            for (int i = 0; i < 100; ++i)
                EXPECT_DOUBLE_EQ(buf[i], i * 1.5);
            crl.end_read(rid);
        }
        coll.barrier();
        EXPECT_EQ(ctx.system().faults().size(), 0u);
    });
}

TEST_P(CrlAllBackends, WriteInvalidatesRemoteSharedCopy)
{
    auto cfg = cfg_for(GetParam());
    backend::run_app(cfg, [](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        crl::Crl crl(ctx, ep);
        coll::Collective coll(ctx, &ep);
        crl::RegionId rid = crl::Crl::region_id(0, 0);
        if (ctx.rank() == 0)
            crl.create(sizeof(int64_t));
        auto* v = static_cast<int64_t*>(crl.map(rid, sizeof(int64_t)));
        coll.barrier();

        // Round 1: rank 0 writes 11; both read it.
        if (ctx.rank() == 0) {
            crl.start_write(rid);
            *v = 11;
            crl.end_write(rid);
        }
        coll.barrier();
        crl.start_read(rid);
        EXPECT_EQ(*v, 11);
        crl.end_read(rid);
        coll.barrier();

        // Round 2: rank 1 writes 22 (must invalidate rank 0's copy);
        // rank 0 then reads and must see 22.
        if (ctx.rank() == 1) {
            crl.start_write(rid);
            *v = 22;
            crl.end_write(rid);
        }
        coll.barrier();
        if (ctx.rank() == 0) {
            crl.start_read(rid);
            EXPECT_EQ(*v, 22);
            crl.end_read(rid);
        }
        coll.barrier();
    });
}

TEST_P(CrlAllBackends, HitsAndMissesAreCounted)
{
    auto cfg = cfg_for(GetParam());
    uint64_t rh[2], rm[2], wh[2], wm[2];
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        crl::Crl crl(ctx, ep);
        coll::Collective coll(ctx, &ep);
        crl::RegionId rid = crl::Crl::region_id(1, 0);
        if (ctx.rank() == 1)
            crl.create(64);
        crl.map(rid, 64);
        coll.barrier();
        if (ctx.rank() == 0) {
            crl.start_write(rid); // miss
            crl.end_write(rid);
            crl.start_write(rid); // hit (still Modified)
            crl.end_write(rid);
            crl.start_read(rid); // hit (Modified readable)
            crl.end_read(rid);
        }
        coll.barrier();
        rh[ctx.rank()] = crl.read_hits();
        rm[ctx.rank()] = crl.read_misses();
        wh[ctx.rank()] = crl.write_hits();
        wm[ctx.rank()] = crl.write_misses();
    });
    EXPECT_EQ(wm[0], 1u);
    EXPECT_EQ(wh[0], 1u);
    EXPECT_EQ(rh[0], 1u);
    EXPECT_EQ(rm[0], 0u);
}

TEST_P(CrlAllBackends, ConcurrentReadersThenWriter)
{
    auto cfg = cfg_for(GetParam(), /*nodes=*/4);
    backend::run_app(cfg, [](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        crl::Crl crl(ctx, ep);
        coll::Collective coll(ctx, &ep);
        crl::RegionId rid = crl::Crl::region_id(0, 0);
        if (ctx.rank() == 0)
            crl.create(sizeof(int64_t));
        auto* v = static_cast<int64_t*>(crl.map(rid, sizeof(int64_t)));
        coll.barrier();

        if (ctx.rank() == 0) {
            crl.start_write(rid);
            *v = 7;
            crl.end_write(rid);
        }
        coll.barrier();
        // All four ranks read concurrently (sharers grow to 4).
        crl.start_read(rid);
        EXPECT_EQ(*v, 7);
        crl.end_read(rid);
        coll.barrier();
        // Rank 3 writes; every other rank must then see the update.
        if (ctx.rank() == 3) {
            crl.start_write(rid);
            *v = 8;
            crl.end_write(rid);
        }
        coll.barrier();
        crl.start_read(rid);
        EXPECT_EQ(*v, 8);
        crl.end_read(rid);
        coll.barrier();
    });
}

TEST_P(CrlAllBackends, FlushWritesBackToHome)
{
    auto cfg = cfg_for(GetParam());
    backend::run_app(cfg, [](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        crl::Crl crl(ctx, ep);
        coll::Collective coll(ctx, &ep);
        crl::RegionId rid = crl::Crl::region_id(0, 0);
        if (ctx.rank() == 0)
            crl.create(sizeof(int64_t));
        auto* v = static_cast<int64_t*>(crl.map(rid, sizeof(int64_t)));
        coll.barrier();
        if (ctx.rank() == 1) {
            crl.start_write(rid);
            *v = 99;
            crl.end_write(rid);
            crl.flush(rid);
        }
        coll.barrier();
        if (ctx.rank() == 0) {
            crl.start_read(rid);
            EXPECT_EQ(*v, 99);
            crl.end_read(rid);
        }
        coll.barrier();
    });
}

TEST_P(CrlAllBackends, ManyRegionsRoundRobinHomes)
{
    auto cfg = cfg_for(GetParam(), /*nodes=*/4);
    backend::run_app(cfg, [](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        crl::Crl crl(ctx, ep);
        coll::Collective coll(ctx, &ep);
        const int regions_per_rank = 4;
        const size_t bytes = 16 * sizeof(int64_t);
        for (int i = 0; i < regions_per_rank; ++i)
            crl.create(bytes);
        std::vector<crl::RegionId> rids;
        for (int h = 0; h < ctx.nranks(); ++h) {
            for (int i = 0; i < regions_per_rank; ++i) {
                rids.push_back(
                    crl::Crl::region_id(h, static_cast<uint32_t>(i)));
                crl.map(rids.back(), bytes);
            }
        }
        coll.barrier();
        // Each rank writes a signature into "its" column of regions.
        for (size_t k = 0; k < rids.size(); ++k) {
            if (static_cast<int>(k) % ctx.nranks() != ctx.rank())
                continue;
            auto* p = static_cast<int64_t*>(crl.data(rids[k]));
            crl.start_write(rids[k]);
            for (int j = 0; j < 16; ++j)
                p[j] = static_cast<int64_t>(k * 100 + j);
            crl.end_write(rids[k]);
        }
        coll.barrier();
        // Everyone verifies every region.
        for (size_t k = 0; k < rids.size(); ++k) {
            auto* p = static_cast<int64_t*>(crl.data(rids[k]));
            crl.start_read(rids[k]);
            for (int j = 0; j < 16; ++j)
                ASSERT_EQ(p[j], static_cast<int64_t>(k * 100 + j));
            crl.end_read(rids[k]);
        }
        coll.barrier();
    });
}

TEST_P(CrlAllBackends, SharedToModifiedUpgradeSendsNoData)
{
    auto cfg = cfg_for(GetParam());
    uint64_t bytes_with_upgrade = 0, bytes_cold = 0;
    // Run A: read-then-write (upgrade path: the grant carries no
    // payload). Run B: write from Invalid (full data fill).
    for (int variant = 0; variant < 2; ++variant) {
        auto sys = backend::make_system(cfg);
        sys->run([&](rma::Ctx& ctx) {
            am::Endpoint ep(ctx);
            crl::Crl crl(ctx, ep);
            coll::Collective coll(ctx, &ep);
            crl::RegionId rid = crl::Crl::region_id(0, 0);
            const size_t bytes = 2048;
            if (ctx.rank() == 0)
                crl.create(bytes);
            crl.map(rid, bytes);
            coll.barrier();
            if (ctx.rank() == 1) {
                if (variant == 0) {
                    crl.start_read(rid); // acquire a Shared copy
                    crl.end_read(rid);
                }
                crl.start_write(rid);
                crl.end_write(rid);
            }
            coll.barrier();
        });
        uint64_t total = sys->traffic().bytes();
        if (variant == 0)
            bytes_with_upgrade = total;
        else
            bytes_cold = total;
    }
    // The upgrade run paid for one fill during the read; the write
    // itself moved no data, so it transfers no more than the cold
    // write (which fills 2 KB) plus control chatter.
    EXPECT_LT(bytes_with_upgrade, bytes_cold + 2048);
}

// Randomized sequential-consistency property: ranks take turns (via
// barriers) doing random writes/reads to random regions; a shadow
// array tracks the last committed value, and every read must observe
// it.
TEST_P(CrlAllBackends, RandomizedCoherenceProperty)
{
    auto cfg = cfg_for(GetParam(), /*nodes=*/4);
    backend::run_app(cfg, [](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        crl::Crl crl(ctx, ep);
        coll::Collective coll(ctx, &ep);
        const int nregions = 6;
        if (ctx.rank() == 0) {
            for (int i = 0; i < nregions; ++i)
                crl.create(sizeof(int64_t));
        }
        std::vector<crl::RegionId> rids;
        std::vector<int64_t*> ptr;
        for (int i = 0; i < nregions; ++i) {
            rids.push_back(crl::Crl::region_id(0, static_cast<uint32_t>(i)));
            ptr.push_back(static_cast<int64_t*>(
                crl.map(rids.back(), sizeof(int64_t))));
        }
        coll.barrier();
        // Shared shadow of committed values (host memory, test-only).
        static int64_t shadow[6];
        if (ctx.rank() == 0) {
            for (int i = 0; i < nregions; ++i)
                shadow[i] = 0;
        }
        coll.barrier();

        mp::Rng rng(1234); // same stream on all ranks
        for (int step = 0; step < 30; ++step) {
            int writer = static_cast<int>(rng.next_below(
                static_cast<uint64_t>(ctx.nranks())));
            int region = static_cast<int>(
                rng.next_below(static_cast<uint64_t>(nregions)));
            int64_t value = static_cast<int64_t>(rng.next_u64() >> 1);
            if (ctx.rank() == writer) {
                crl.start_write(rids[static_cast<size_t>(region)]);
                *ptr[static_cast<size_t>(region)] = value;
                crl.end_write(rids[static_cast<size_t>(region)]);
                shadow[region] = value;
            }
            coll.barrier();
            // A random subset of ranks read a random region.
            int reader_region = static_cast<int>(
                rng.next_below(static_cast<uint64_t>(nregions)));
            if ((rng.next_u64() & 1) == 0 ||
                ctx.rank() == (writer + 1) % ctx.nranks()) {
                crl.start_read(rids[static_cast<size_t>(reader_region)]);
                ASSERT_EQ(*ptr[static_cast<size_t>(reader_region)],
                          shadow[reader_region])
                    << "step " << step << " region " << reader_region;
                crl.end_read(rids[static_cast<size_t>(reader_region)]);
            }
            coll.barrier();
        }
    });
}

INSTANTIATE_TEST_SUITE_P(AllDesignPoints, CrlAllBackends,
                         ::testing::Values("HW0", "HW1", "MP0", "MP1",
                                           "MP2", "SW1"),
                         [](const auto& info) { return info.param; });

} // namespace
