/// \file
/// Randomized property tests of the RMA/RQ layer against a reference
/// model: arbitrary interleavings of PUT/GET/ENQ/DEQ across ranks
/// (with barrier-separated rounds so the reference is well-defined)
/// must produce exactly the reference memory image and queue
/// contents, on every architecture. Also: traffic accounting must
/// add up, and completion flags must fire exactly once per op.

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "am/am.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "machine/design_point.h"
#include "rma/system.h"
#include "util/rng.h"

namespace {

rma::SystemConfig
cfg_for(const std::string& dp_name, int nodes, int ppn = 1)
{
    rma::SystemConfig cfg;
    cfg.design = *machine::design_point_by_name(dp_name);
    cfg.nodes = nodes;
    cfg.procs_per_node = ppn;
    return cfg;
}

class RmaProperty : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RmaProperty, RandomOpsMatchReferenceModel)
{
    const int p = 4;
    const int kSlots = 16;
    const int kRounds = 12;
    auto cfg = cfg_for(GetParam(), p);

    // Reference model: per-rank slot arrays and per-rank FIFO queues,
    // updated by the globally-agreed random schedule.
    std::vector<std::vector<int64_t>> ref_mem(
        p, std::vector<int64_t>(kSlots, 0));
    std::vector<std::deque<int64_t>> ref_q(p);

    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        coll::Collective coll(ctx);
        const int me = ctx.rank();
        int64_t* mem = ctx.alloc_n<int64_t>(kSlots);
        std::memset(mem, 0, sizeof(int64_t) * kSlots);
        int qid = ctx.make_queue();
        ctx.publish("prop.mem", mem);
        coll.barrier();

        // Same schedule on every rank (same seed).
        mp::Rng sched(99);
        for (int round = 0; round < kRounds; ++round) {
            // Each round: every rank performs one op decided by the
            // shared schedule; rounds are barrier-separated so the
            // reference semantics are sequential.
            struct Planned
            {
                int kind; // 0 put, 1 get, 2 enq
                int target;
                int slot;
                int64_t value;
            };
            std::vector<Planned> plan(p);
            for (int r = 0; r < p; ++r) {
                plan[r].kind = static_cast<int>(sched.next_below(3));
                plan[r].target = static_cast<int>(
                    sched.next_below(static_cast<uint64_t>(p)));
                // Each writer owns a disjoint slot band so no two
                // ranks write the same slot within one round (the
                // within-round write order is timing-dependent).
                int band = kSlots / p;
                plan[r].slot =
                    r * band +
                    static_cast<int>(sched.next_below(
                        static_cast<uint64_t>(band)));
                plan[r].value = static_cast<int64_t>(
                    sched.next_below(1000000));
            }

            const Planned& my = plan[me];
            auto* tgt_mem =
                static_cast<int64_t*>(ctx.lookup("prop.mem", my.target));
            sim::Flag* f = ctx.new_flag();
            int64_t got = -1;
            switch (my.kind) {
              case 0:
                ctx.put(&my.value, my.target, &tgt_mem[my.slot], 8, f);
                ctx.wait_ge(*f, 1);
                break;
              case 1:
                ctx.get(&got, my.target, &tgt_mem[my.slot], 8, f);
                ctx.wait_ge(*f, 1);
                break;
              case 2:
                ctx.enq(&my.value, my.target, /*qid=*/0, 8, f);
                ctx.wait_ge(*f, 1);
                break;
              default:
                break;
            }
            // Mirror into the reference (every rank computes the same
            // update; only rank 0 mutates the shared reference).
            if (me == 0) {
                for (int r = 0; r < p; ++r) {
                    const Planned& q = plan[r];
                    if (q.kind == 0) {
                        ref_mem[static_cast<size_t>(q.target)]
                               [static_cast<size_t>(q.slot)] = q.value;
                    } else if (q.kind == 2) {
                        ref_q[static_cast<size_t>(q.target)].push_back(
                            q.value);
                    }
                }
            }
            coll.barrier();
            // GETs read the pre-round state; cross-checking them would
            // need per-op ordering, so we verify only that a GET
            // observed SOME value ever written to that slot or zero —
            // the memory image check below is the strong condition.
            (void)got;
        }
        coll.barrier();

        // Final memory image must equal the reference exactly.
        for (int s = 0; s < kSlots; ++s) {
            ASSERT_EQ(mem[s],
                      ref_mem[static_cast<size_t>(me)]
                             [static_cast<size_t>(s)])
                << "rank " << me << " slot " << s;
        }
        // Queue contents: drain and compare as a multiset (enqueue
        // order across ranks within a round is timing-dependent).
        std::vector<int64_t> drained;
        std::vector<uint8_t> msg;
        while (ctx.try_deq_local(qid, msg)) {
            int64_t v;
            std::memcpy(&v, msg.data(), 8);
            drained.push_back(v);
        }
        std::vector<int64_t> expect(
            ref_q[static_cast<size_t>(me)].begin(),
            ref_q[static_cast<size_t>(me)].end());
        std::sort(drained.begin(), drained.end());
        std::sort(expect.begin(), expect.end());
        ASSERT_EQ(drained, expect) << "rank " << me;
        coll.barrier();
    });
}

TEST_P(RmaProperty, TrafficAccountingAddsUp)
{
    auto cfg = cfg_for(GetParam(), 2);
    void* bufs[2] = {nullptr, nullptr};
    auto res = backend::run_app(cfg, [&](rma::Ctx& ctx) {
        uint8_t* buf = ctx.alloc_n<uint8_t>(1024);
        bufs[ctx.rank()] = buf;
        if (ctx.rank() == 0) {
            ctx.compute(1.0);
            for (int i = 0; i < 7; ++i)
                ctx.put_blocking(buf, 1, bufs[1], 100);
            for (int i = 0; i < 3; ++i)
                ctx.get_blocking(buf, 1, bufs[1], 50);
        } else {
            ctx.compute(5000.0);
        }
    });
    EXPECT_EQ(res.ops, 10u);
    EXPECT_DOUBLE_EQ(res.avg_msg_bytes, (7 * 100 + 3 * 50) / 10.0);
}

TEST_P(RmaProperty, FlagsFireExactlyOncePerOp)
{
    auto cfg = cfg_for(GetParam(), 2);
    void* bufs[2] = {nullptr, nullptr};
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        uint8_t* buf = ctx.alloc_n<uint8_t>(64);
        bufs[ctx.rank()] = buf;
        if (ctx.rank() == 0) {
            ctx.compute(1.0);
            sim::Flag* lsync = ctx.new_flag();
            sim::Flag* rsync_probe = ctx.new_flag();
            for (int i = 0; i < 20; ++i)
                ctx.put(buf, 1, bufs[1], 16, lsync, rsync_probe);
            ctx.wait_ge(*lsync, 20);
            // Drain: no extra increments may ever arrive.
            ctx.compute(5000.0);
            EXPECT_EQ(lsync->value(), 20u);
            EXPECT_EQ(rsync_probe->value(), 20u);
        } else {
            ctx.compute(10000.0);
        }
    });
}

INSTANTIATE_TEST_SUITE_P(AllDesignPoints, RmaProperty,
                         ::testing::Values("HW0", "HW1", "MP0", "MP1",
                                           "MP2", "SW1"),
                         [](const auto& info) { return info.param; });

} // namespace
