// Deterministic chaos suite for the reliable wire protocol: real
// 2-node x 2-proxy runtimes under seeded fault injection
// (NodeConfig::fault_plan), at the fault rates the ISSUE pins
// (1% / 10% / 50%) and seeds {1, 2, 3}. Every workload asserts
// EXACT completion counts — retransmission must deliver exactly
// once, duplicates must not double-fire rsync/lsync — and that the
// packet-pool leak invariant (pool_hits == pool_returns,
// pool_misses == heap_frees, summed across both nodes) converges
// after quiescence: a retained-unacked packet that never comes back
// fails the test. The `chaos` ctest label runs these under plain and
// TSan builds via tools/check.sh chaos.
//
// The file also carries the regression tests for the pre-reliability
// latent hang: with retransmission disabled a single injected drop
// stalls a CCB forever, and Node teardown must still be bounded.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_wiring.h"
#include "proxy/runtime.h"

namespace {

using proxy::Endpoint;
using proxy::Flag;
using proxy::Node;
using proxy::NodeConfig;
using proxy::NodeStats;
using proxy::SubmitStatus;

struct ChaosParam
{
    uint64_t seed;
    double rate;
};

NodeConfig
chaos_config(int id, const ChaosParam& p)
{
    NodeConfig c;
    c.id = id;
    c.num_proxies = 2;
    c.channel_depth = 256;
    c.packet_pool_size = 1024;
    // Aggressive timers so recovery happens at test speed; a retry
    // budget that can never exhaust (peer death is its own test).
    c.reliability.window = 64;
    c.reliability.ack_every = 8;
    c.reliability.rto_ns = 100 * 1000;
    c.reliability.rto_max_ns = 2 * 1000 * 1000;
    c.reliability.max_retries = 1000000;
    // The rate splits across the four fault classes so every class
    // is exercised at every level.
    c.fault_plan.seed = p.seed;
    c.fault_plan.drop = p.rate * 0.4;
    c.fault_plan.duplicate = p.rate * 0.2;
    c.fault_plan.reorder = p.rate * 0.2;
    c.fault_plan.corrupt = p.rate * 0.2;
    c.fault_plan.reorder_depth = 4;
    return c;
}

/// Waits (bounded) for the cross-node packet-custody invariant:
/// every pooled packet recycled, every heap fallback freed. Only
/// quiescence makes exact-count assertions sound — convergence means
/// no packet (original, retransmit, or injected clone) is still in
/// flight anywhere.
testing::AssertionResult
wait_no_leaks(Node& a, Node& b)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
        const NodeStats sa = a.stats();
        const NodeStats sb = b.stats();
        const uint64_t hits = sa.pool_hits + sb.pool_hits;
        const uint64_t rets = sa.pool_returns + sb.pool_returns;
        const uint64_t miss = sa.pool_misses + sb.pool_misses;
        const uint64_t frees = sa.heap_frees + sb.heap_frees;
        if (hits == rets && miss == frees)
            return testing::AssertionSuccess();
        if (std::chrono::steady_clock::now() > deadline) {
            return testing::AssertionFailure()
                   << "packet leak after quiescence: pool_hits="
                   << hits << " pool_returns=" << rets
                   << " pool_misses=" << miss << " heap_frees="
                   << frees;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

/// Retries a submit while the command queue is full (the only
/// retryable status in these tests).
template <typename F>
void
must_submit(F&& submit)
{
    for (;;) {
        SubmitStatus s = submit();
        if (s)
            return;
        ASSERT_EQ(s, SubmitStatus::kQueueFull);
        std::this_thread::yield();
    }
}

class ChaosTest : public testing::TestWithParam<ChaosParam>
{
};

TEST_P(ChaosTest, PutDeliversExactlyOnce)
{
    const ChaosParam p = GetParam();
    Node n0(chaos_config(0, p));
    Node n1(chaos_config(1, p));
    Endpoint& e0 = n0.create_endpoint(); // proxy 0
    Endpoint& e1 = n0.create_endpoint(); // proxy 1
    Endpoint& t0 = n1.create_endpoint();
    std::vector<uint8_t> mem0(256 * 1024, 0);
    std::vector<uint8_t> mem1(256 * 1024, 0);
    uint16_t seg0 = t0.register_segment(mem0.data(), mem0.size());
    uint16_t seg1 = t0.register_segment(mem1.data(), mem1.size());
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    // Multi-fragment PUTs (up to 3 fragments at kMtu 1024) from both
    // source proxies to both target proxies (seg % 2 routes). Each
    // put owns a disjoint destination window: puts i%4 in {0,1} land
    // in seg0, {2,3} in seg1, at per-segment slot 2*(i/4) + i%2.
    constexpr int kPuts = 120;
    constexpr uint32_t kLen = 2100;
    std::vector<std::vector<uint8_t>> src(kPuts);
    Flag lsync{0};
    Flag rsync{0};
    for (int i = 0; i < kPuts; ++i) {
        src[static_cast<size_t>(i)].resize(kLen);
        for (uint32_t j = 0; j < kLen; ++j)
            src[static_cast<size_t>(i)][j] =
                static_cast<uint8_t>(i * 13 + j * 7);
        Endpoint& ep = (i % 2 == 0) ? e0 : e1;
        const uint16_t seg = (i % 4 < 2) ? seg0 : seg1;
        const uint64_t off =
            static_cast<uint64_t>(2 * (i / 4) + i % 2) * kLen;
        must_submit([&] {
            return ep.put(src[static_cast<size_t>(i)].data(), 1, seg,
                          off, kLen, &lsync, &rsync);
        });
    }
    proxy::flag_wait_ge(lsync, kPuts);
    proxy::flag_wait_ge(rsync, kPuts);
    ASSERT_TRUE(wait_no_leaks(n0, n1));

    // Exactly once: no duplicate-delivery double increments.
    EXPECT_EQ(rsync.load(), static_cast<uint64_t>(kPuts));
    EXPECT_EQ(lsync.load(), static_cast<uint64_t>(kPuts));
    for (int i = 0; i < kPuts; ++i) {
        const uint8_t* dst =
            ((i % 4 < 2) ? mem0.data() : mem1.data()) +
            static_cast<uint64_t>(2 * (i / 4) + i % 2) * kLen;
        ASSERT_EQ(std::memcmp(dst, src[static_cast<size_t>(i)].data(),
                              kLen),
                  0)
            << "payload corrupted for put " << i;
    }
    const NodeStats s0 = n0.stats();
    const NodeStats s1 = n1.stats();
    EXPECT_EQ(s0.faults + s1.faults, 0u);
    if (p.rate >= 0.1) {
        // At 10%+ the machinery must demonstrably engage.
        EXPECT_GT(s0.pkts_retransmitted + s1.pkts_retransmitted, 0u);
        EXPECT_GT(s0.pkts_dropped + s1.pkts_dropped, 0u);
    }
}

TEST_P(ChaosTest, GetStreamsBackExactlyOnce)
{
    const ChaosParam p = GetParam();
    Node n0(chaos_config(0, p));
    Node n1(chaos_config(1, p));
    Endpoint& e0 = n0.create_endpoint();
    Endpoint& e1 = n0.create_endpoint();
    Endpoint& t0 = n1.create_endpoint();
    std::vector<uint8_t> mem(64 * 1024);
    for (size_t j = 0; j < mem.size(); ++j)
        mem[j] = static_cast<uint8_t>(j * 11 + 3);
    uint16_t seg0 = t0.register_segment(mem.data(), mem.size());
    uint16_t seg1 = t0.register_segment(mem.data(), mem.size());
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    constexpr int kGets = 80;
    constexpr uint32_t kLen = 1800; // 2 fragments
    std::vector<std::vector<uint8_t>> dst(
        kGets, std::vector<uint8_t>(kLen, 0));
    Flag lsync{0};
    for (int i = 0; i < kGets; ++i) {
        Endpoint& ep = (i % 2 == 0) ? e0 : e1;
        const uint16_t seg = (i % 4 < 2) ? seg0 : seg1;
        const uint64_t off = static_cast<uint64_t>(i) * 512;
        must_submit([&] {
            return ep.get(dst[static_cast<size_t>(i)].data(), 1, seg,
                          off, kLen, &lsync);
        });
    }
    proxy::flag_wait_ge(lsync, kGets);
    ASSERT_TRUE(wait_no_leaks(n0, n1));

    EXPECT_EQ(lsync.load(), static_cast<uint64_t>(kGets));
    for (int i = 0; i < kGets; ++i) {
        ASSERT_EQ(std::memcmp(dst[static_cast<size_t>(i)].data(),
                              mem.data() +
                                  static_cast<uint64_t>(i) * 512,
                              kLen),
                  0)
            << "payload corrupted for get " << i;
    }
    const NodeStats s0 = n0.stats();
    const NodeStats s1 = n1.stats();
    EXPECT_EQ(s0.faults + s1.faults, 0u);
    if (p.rate >= 0.1) {
        EXPECT_GT(s0.pkts_retransmitted + s1.pkts_retransmitted, 0u);
    }
}

TEST_P(ChaosTest, EnqDeliversExactlyOnceInOrderPerSender)
{
    const ChaosParam p = GetParam();
    Node n0(chaos_config(0, p));
    Node n1(chaos_config(1, p));
    Endpoint& e0 = n0.create_endpoint();
    Endpoint& e1 = n0.create_endpoint();
    Endpoint& r0 = n1.create_endpoint(); // proxy 0 receive ring
    Endpoint& r1 = n1.create_endpoint(); // proxy 1 receive ring
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    // Sender k tags each message with (k, i); per-sender order must
    // survive (one FIFO channel per sender/receiver proxy pair).
    constexpr int kMsgs = 120; // per sender
    Flag lsync{0};
    for (int i = 0; i < kMsgs; ++i) {
        for (int k = 0; k < 2; ++k) {
            uint32_t tag[2] = {static_cast<uint32_t>(k),
                               static_cast<uint32_t>(i)};
            Endpoint& ep = (k == 0) ? e0 : e1;
            int dst_user = (k == 0) ? r0.id() : r1.id();
            must_submit([&] {
                return ep.enq(tag, sizeof tag, 1, dst_user, &lsync);
            });
        }
    }
    proxy::flag_wait_ge(lsync, 2 * kMsgs);

    // Drain both receive rings until every message arrived (the
    // proxies may still be retransmitting the tail).
    int got[2] = {0, 0};
    std::vector<uint8_t> msg;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (got[0] + got[1] < 2 * kMsgs) {
        bool any = false;
        for (Endpoint* r : {&r0, &r1}) {
            while (r->try_recv(msg)) {
                any = true;
                ASSERT_EQ(msg.size(), 2 * sizeof(uint32_t));
                uint32_t tag[2];
                std::memcpy(tag, msg.data(), sizeof tag);
                ASSERT_LT(tag[0], 2u);
                // Exactly once, in per-sender order.
                ASSERT_EQ(tag[1],
                          static_cast<uint32_t>(got[tag[0]]))
                    << "sender " << tag[0];
                ++got[tag[0]];
            }
        }
        if (!any) {
            ASSERT_LT(std::chrono::steady_clock::now(), deadline)
                << "lost ENQ: got " << got[0] << "+" << got[1];
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    }
    ASSERT_TRUE(wait_no_leaks(n0, n1));
    EXPECT_EQ(got[0], kMsgs);
    EXPECT_EQ(got[1], kMsgs);
    // No extra duplicates can arrive after quiescence.
    EXPECT_FALSE(r0.try_recv(msg));
    EXPECT_FALSE(r1.try_recv(msg));
    const NodeStats s0 = n0.stats();
    const NodeStats s1 = n1.stats();
    EXPECT_EQ(s0.enq_drops + s1.enq_drops, 0u);
    EXPECT_EQ(s0.faults + s1.faults, 0u);
    if (p.rate >= 0.5) {
        EXPECT_GT(s0.pkts_duplicate + s1.pkts_duplicate, 0u);
    }
}

TEST_P(ChaosTest, MigrationUnderFaultsDeliversExactlyOnce)
{
    // Endpoint migrations race the fault-injected wire: receiving
    // endpoints flip owners every few PUT bursts while drops, dupes,
    // reorders and corruption hammer the links. Exactly-once
    // completion and custody convergence must survive the handoffs
    // (a stale shard-map read only costs a forwarded packet).
    const ChaosParam p = GetParam();
    Node n0(chaos_config(0, p));
    Node n1(chaos_config(1, p));
    Endpoint& e0 = n0.create_endpoint(); // proxy 0
    Endpoint& e1 = n0.create_endpoint(); // proxy 1
    Endpoint& t0 = n1.create_endpoint(); // proxy 0
    Endpoint& t1 = n1.create_endpoint(); // proxy 1
    std::vector<uint8_t> mem(256 * 1024, 0);
    uint16_t seg = t0.register_segment(mem.data(), mem.size());
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    constexpr int kPuts = 96;
    constexpr uint32_t kLen = 2100; // 3 fragments
    std::vector<std::vector<uint8_t>> src(kPuts);
    Flag lsync{0};
    Flag rsync{0};
    Flag enq_done{0};
    for (int i = 0; i < kPuts; ++i) {
        src[static_cast<size_t>(i)].resize(kLen);
        for (uint32_t j = 0; j < kLen; ++j)
            src[static_cast<size_t>(i)][j] =
                static_cast<uint8_t>(i * 17 + j * 5);
        Endpoint& ep = (i % 2 == 0) ? e0 : e1;
        must_submit([&] {
            return ep.put(src[static_cast<size_t>(i)].data(), 1,
                          seg, static_cast<uint64_t>(i) * kLen,
                          kLen, &lsync, &rsync);
        });
        // ENQ traffic rides along so the forward rule sees stale
        // doorbells too.
        uint32_t tag = static_cast<uint32_t>(i);
        must_submit(
            [&] { return e0.enq(&tag, 4, 1, t1.id(), &enq_done); });
        if (i % 8 == 7) {
            // Flip both receiving endpoints and one sender.
            const int flip = (i / 8) % 2;
            n1.migrate_endpoint(t0.id(), flip);
            n1.migrate_endpoint(t1.id(), 1 - flip);
            n0.migrate_endpoint(e0.id(), flip);
        }
    }
    proxy::flag_wait_ge(lsync, kPuts);
    proxy::flag_wait_ge(rsync, kPuts);
    proxy::flag_wait_ge(enq_done, kPuts);
    ASSERT_TRUE(wait_no_leaks(n0, n1));

    EXPECT_EQ(rsync.load(), static_cast<uint64_t>(kPuts));
    EXPECT_EQ(lsync.load(), static_cast<uint64_t>(kPuts));
    for (int i = 0; i < kPuts; ++i) {
        ASSERT_EQ(std::memcmp(mem.data() +
                                  static_cast<uint64_t>(i) * kLen,
                              src[static_cast<size_t>(i)].data(),
                              kLen),
                  0)
            << "payload corrupted for put " << i;
    }
    // Every ENQ message exactly once (order across receiver
    // migrations is unordered; the set must be complete).
    std::vector<int> seen(kPuts, 0);
    std::vector<uint8_t> msg;
    int got = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (got < kPuts) {
        if (!t1.try_recv(msg)) {
            ASSERT_LT(std::chrono::steady_clock::now(), deadline)
                << "lost ENQ under migration: got " << got;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            continue;
        }
        ASSERT_EQ(msg.size(), 4u);
        uint32_t tag;
        std::memcpy(&tag, msg.data(), 4);
        ASSERT_LT(tag, static_cast<uint32_t>(kPuts));
        ASSERT_EQ(seen[tag]++, 0) << "duplicate enq " << tag;
        ++got;
    }
    const NodeStats s0 = n0.stats();
    const NodeStats s1 = n1.stats();
    EXPECT_EQ(s0.faults + s1.faults, 0u);
    EXPECT_GE(s0.migrations + s1.migrations, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByRates, ChaosTest,
    testing::Values(ChaosParam{1, 0.01}, ChaosParam{2, 0.01},
                    ChaosParam{3, 0.01}, ChaosParam{1, 0.10},
                    ChaosParam{2, 0.10}, ChaosParam{3, 0.10},
                    ChaosParam{1, 0.50}, ChaosParam{2, 0.50},
                    ChaosParam{3, 0.50}),
    [](const testing::TestParamInfo<ChaosParam>& info) {
        return "Seed" + std::to_string(info.param.seed) + "Rate" +
               std::to_string(
                   static_cast<int>(info.param.rate * 100));
    });

// ------------------------------------------------- regression tests

// The latent hang the reliability layer exists to fix, pinned as the
// baseline behaviour: with retransmission disabled, one dropped
// packet wedges its CCB forever (the GET lsync never fires, the PUT
// rsync never fires) — and Node teardown must still complete,
// because every proxy stall loop is bounded by running_.
TEST(ChaosRegression, UnreliableDropStallsCcbButTeardownIsBounded)
{
    NodeConfig c0;
    c0.id = 0;
    c0.num_proxies = 2;
    c0.reliability.enabled = false;
    c0.fault_plan.seed = 1;
    c0.fault_plan.drop = 1.0; // every packet vanishes
    NodeConfig c1;
    c1.id = 1;
    c1.num_proxies = 2;
    c1.reliability.enabled = false;

    Node n0(c0);
    Node n1(c1);
    Endpoint& ep = n0.create_endpoint();
    Endpoint& t = n1.create_endpoint();
    std::vector<uint8_t> mem(4096, 0xab);
    uint16_t seg = t.register_segment(mem.data(), mem.size());
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    std::vector<uint8_t> buf(512, 0x5a);
    Flag put_lsync{0};
    Flag put_rsync{0};
    Flag get_lsync{0};
    ASSERT_TRUE(
        ep.put(buf.data(), 1, seg, 0, 512, &put_lsync, &put_rsync));
    ASSERT_TRUE(ep.get(buf.data(), 1, seg, 0, 512, &get_lsync));
    // lsync of a PUT fires at hand-to-wire, before the drop.
    proxy::flag_wait_ge(put_lsync, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    // The wedge: neither remote completion ever arrives.
    EXPECT_EQ(put_rsync.load(), 0u);
    EXPECT_EQ(get_lsync.load(), 0u);
    EXPECT_EQ(n1.stats().packets_in, 0u);
    EXPECT_EQ(n0.stats().pkts_retransmitted, 0u)
        << "retransmission must stay off when disabled";
    // Teardown with a stalled CCB and a full fault schedule must be
    // bounded (the destructors hanging fails the test by timeout).
}

// Graceful degradation: with retransmission ON but the peer
// unreachable (100% drop), the sender exhausts max_retries, declares
// the peer dead, refuses new submits with kPeerUnreachable, and
// releases the retained window (no leak, no eternal spin).
TEST(ChaosRegression, RetryExhaustionDeclaresPeerUnreachable)
{
    NodeConfig c0;
    c0.id = 0;
    c0.num_proxies = 2;
    c0.reliability.rto_ns = 200 * 1000;
    c0.reliability.rto_max_ns = 1000 * 1000;
    c0.reliability.max_retries = 3;
    c0.fault_plan.seed = 7;
    c0.fault_plan.drop = 1.0;
    NodeConfig c1;
    c1.id = 1;
    c1.num_proxies = 2;

    Node n0(c0);
    Node n1(c1);
    Endpoint& ep = n0.create_endpoint();
    Endpoint& t = n1.create_endpoint();
    std::vector<uint8_t> mem(4096, 0);
    uint16_t seg = t.register_segment(mem.data(), mem.size());
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    Flag lsync{0};
    Flag rsync{0};
    std::vector<uint8_t> buf(256, 0x11);
    ASSERT_TRUE(
        ep.put(buf.data(), 1, seg, 0, 256, &lsync, &rsync));
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!n0.peer_unreachable(1)) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "peer never declared unreachable";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // New submits are refused immediately, without queueing.
    EXPECT_EQ(ep.put(buf.data(), 1, seg, 0, 256, &lsync, &rsync),
              SubmitStatus::kPeerUnreachable);
    EXPECT_EQ(ep.get(buf.data(), 1, seg, 0, 256, &lsync),
              SubmitStatus::kPeerUnreachable);
    EXPECT_EQ(ep.enq(buf.data(), 8, 1, t.id(), &lsync),
              SubmitStatus::kPeerUnreachable);
    // Local targets stay reachable.
    EXPECT_EQ(rsync.load(), 0u);
    // The abandoned window must not leak its retained packets.
    ASSERT_TRUE(wait_no_leaks(n0, n1));
    EXPECT_GT(n0.stats().pkts_retransmitted, 0u);
}

} // namespace
