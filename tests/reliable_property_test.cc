// Property-based model check of the retransmit state machine
// (net::SenderWindow + net::ReceiverSeq) against randomized but fully
// seeded drop/duplicate/reorder schedules injected by a
// net::FaultyChannel, in the style of rma_property_test.cc: a
// reference model (the submitted value sequence) drives a
// single-threaded sender/receiver pair through a lossy channel, and
// the invariant is exactly-once, in-order delivery of every value
// once the schedule ends and recovery runs. Every run is reproducible
// from (seed, plan) — both are in the test name and the failure
// trace — and the tail of the event schedule is dumped on failure.

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/fault.h"
#include "net/reliable.h"
#include "util/rng.h"

namespace {

/// One modeled wire message: a sequenced data value or (seq == 0) a
/// standalone cumulative ack. `epoch` models the sender-incarnation
/// tag a restarted node rejoins with (NodeConfig::epoch): the base
/// retransmit property keeps it constant at 1.
struct Msg
{
    uint64_t seq = 0;
    uint64_t ack = 0;
    uint64_t epoch = 1;
    int val = 0;
};

/// Unbounded FIFO with the try_push/try_pop shape FaultyChannel and
/// the drains expect (the model's "wire" never backpressures, so
/// every loss is the injector's doing).
struct VecRing
{
    std::deque<Msg> q;

    bool
    try_push(Msg m)
    {
        q.push_back(m);
        return true;
    }

    bool
    try_pop(Msg& m)
    {
        if (q.empty())
            return false;
        m = q.front();
        q.pop_front();
        return true;
    }
};

struct PlanSpec
{
    const char* name;
    double drop, dup, reorder, corrupt;
};

// corrupt in the value-model degrades to drop (no checksum on ints),
// which is exactly what a checksum-verifying receiver turns it into.
constexpr PlanSpec kPlans[] = {
    {"DropHeavy", 0.40, 0.05, 0.05, 0.0},
    {"DupHeavy", 0.05, 0.40, 0.05, 0.0},
    {"ReorderHeavy", 0.05, 0.05, 0.40, 0.0},
    {"Mixed", 0.15, 0.15, 0.15, 0.15},
};

class RetransmitProperty
    : public testing::TestWithParam<std::tuple<uint64_t, int>>
{
};

TEST_P(RetransmitProperty, ExactlyOnceInOrderDelivery)
{
    const uint64_t seed = std::get<0>(GetParam());
    const PlanSpec& spec = kPlans[std::get<1>(GetParam())];
    SCOPED_TRACE(std::string("plan=") + spec.name + " seed=" +
                 std::to_string(seed));

    net::FaultPlan plan;
    plan.seed = seed;
    plan.drop = spec.drop;
    plan.duplicate = spec.dup;
    plan.reorder = spec.reorder;
    plan.corrupt = spec.corrupt;
    plan.reorder_depth = 6;

    net::ReliabilityParams params;
    params.window = 8;
    params.ack_every = 4;
    params.rto_ns = 500;
    params.rto_max_ns = 4000;
    params.max_retries = 1000000; // recovery must converge, not die

    VecRing data_ring;
    VecRing ack_ring;
    net::FaultyChannel<Msg, VecRing> data(data_ring, plan, /*salt=*/1);
    net::FaultyChannel<Msg, VecRing> acks(ack_ring, plan, /*salt=*/2);

    net::SenderWindow<int> win(params);
    net::ReceiverSeq rseq;
    std::vector<int> delivered;
    std::vector<std::string> log;
    auto note = [&](const char* what, uint64_t a, uint64_t b) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "%s %llu %llu", what,
                      static_cast<unsigned long long>(a),
                      static_cast<unsigned long long>(b));
        log.emplace_back(buf);
    };

    const int kValues = 300;
    int next_val = 0;
    uint64_t now = 0;
    mp::Rng rng(seed ^ 0xabcdef);

    auto receiver_drain = [&](bool flush_ack) {
        Msg m;
        while (data_ring.try_pop(m)) {
            const auto v = rseq.accept(m.seq);
            if (v == net::ReceiverSeq::Verdict::kDeliver) {
                delivered.push_back(m.val);
                note("deliver", m.seq, 0);
            } else {
                note(v == net::ReceiverSeq::Verdict::kDuplicate
                         ? "dup"
                         : "gap",
                     m.seq, rseq.cum_ack());
            }
            if (rseq.ack_due(params.ack_every)) {
                acks.send(Msg{0, rseq.cum_ack(), 1, 0});
                rseq.ack_sent();
            }
        }
        if (flush_ack && rseq.ack_pending()) {
            acks.send(Msg{0, rseq.cum_ack(), 1, 0});
            rseq.ack_sent();
        }
    };
    auto sender_drain_acks = [&] {
        Msg m;
        while (ack_ring.try_pop(m)) {
            note("ack", m.ack, win.size());
            win.on_ack(m.ack, now, [](int) {});
        }
    };
    auto fire_timeout = [&] {
        if (!win.timeout_due(now))
            return;
        win.on_timeout(now, [&](uint64_t seq, int& h) {
            note("rto", seq, win.rto());
            data.send(Msg{seq, 0, 1, h});
        });
    };

    // Phase 1: the chaotic schedule. Interleave submissions, partial
    // drains, ack emission, and timer fires in a seed-derived order.
    while (next_val < kValues) {
        now += 1 + rng.next_below(200);
        const uint64_t dice = rng.next_below(10);
        if (dice < 5 && !win.full()) {
            const uint64_t seq = win.send(next_val, now);
            note("send", seq, static_cast<uint64_t>(next_val));
            data.send(Msg{seq, 0, 1, next_val});
            ++next_val;
        } else if (dice < 8) {
            receiver_drain(/*flush_ack=*/rng.next_below(4) == 0);
            sender_drain_acks();
        } else {
            data.tick();
            acks.tick();
            fire_timeout();
        }
    }

    // Phase 2: recovery. Faults keep firing (rates < 1), so the
    // retransmit protocol must still converge: tick time past the
    // RTO, drain both directions, flush reorder stashes.
    int guard = 0;
    while (!win.empty()) {
        ASSERT_LT(++guard, 200000) << "retransmit failed to converge";
        now += params.rto_max_ns;
        data.tick();
        acks.tick();
        receiver_drain(/*flush_ack=*/true);
        sender_drain_acks();
        fire_timeout();
        if (guard % 64 == 0) {
            data.flush();
            acks.flush();
        }
    }

    // The invariant: every submitted value arrived exactly once, in
    // submission order, no matter what the schedule did.
    ASSERT_EQ(delivered.size(), static_cast<size_t>(kValues));
    for (int i = 0; i < kValues; ++i) {
        if (delivered[static_cast<size_t>(i)] != i) {
            for (size_t k = log.size() > 60 ? log.size() - 60 : 0;
                 k < log.size(); ++k)
                ADD_FAILURE() << "schedule[" << k << "] " << log[k];
            FAIL() << "delivered[" << i
                   << "] = " << delivered[static_cast<size_t>(i)];
        }
    }
    EXPECT_EQ(rseq.cum_ack(), static_cast<uint64_t>(kValues));
    EXPECT_EQ(win.highest_sent(), static_cast<uint64_t>(kValues));
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, RetransmitProperty,
    testing::Combine(testing::Values<uint64_t>(1, 2, 3, 4, 5, 6, 7, 8),
                     testing::Range(0, 4)),
    [](const testing::TestParamInfo<RetransmitProperty::ParamType>&
           info) {
        return std::string(kPlans[std::get<1>(info.param)].name) +
               "Seed" + std::to_string(std::get<0>(info.param));
    });

// ------------------------------------------------ epoch properties

class EpochProperty
    : public testing::TestWithParam<std::tuple<uint64_t, int>>
{
};

/// The crash-restart extension of the model: the sender may restart
/// mid-schedule (fresh SenderWindow, epoch + 1 — the runtime's
/// forget_peer + higher-epoch rejoin), which REUSES the sequence
/// space from 1. Without the epoch tag a stale duplicate of old
/// (epoch, seq) would be delivered as the new incarnation's value;
/// the receiver rule under test is the runtime's: lower epoch is
/// dropped as stale, higher epoch resets ReceiverSeq, equal epoch
/// goes through normal sequencing. Invariants: no value is ever
/// delivered twice, delivery epochs are monotone (no stale delivery
/// after a switch), per-epoch deliveries stay in submission order,
/// and every value submitted by the final incarnation is delivered
/// exactly once, in order, after recovery.
TEST_P(EpochProperty, RestartsDeliverExactlyOncePerEpoch)
{
    const uint64_t seed = std::get<0>(GetParam());
    const PlanSpec& spec = kPlans[std::get<1>(GetParam())];
    SCOPED_TRACE(std::string("plan=") + spec.name + " seed=" +
                 std::to_string(seed));

    net::FaultPlan plan;
    plan.seed = seed;
    plan.drop = spec.drop;
    plan.duplicate = spec.dup;
    plan.reorder = spec.reorder;
    plan.corrupt = spec.corrupt;
    plan.reorder_depth = 6;

    net::ReliabilityParams params;
    params.window = 8;
    params.ack_every = 4;
    params.rto_ns = 500;
    params.rto_max_ns = 4000;
    params.max_retries = 1000000;

    VecRing data_ring;
    VecRing ack_ring;
    net::FaultyChannel<Msg, VecRing> data(data_ring, plan, /*salt=*/3);
    net::FaultyChannel<Msg, VecRing> acks(ack_ring, plan, /*salt=*/4);

    net::SenderWindow<int> win(params);
    net::ReceiverSeq rseq;
    uint64_t tx_epoch = 1; // sender incarnation
    uint64_t rx_epoch = 1; // highest epoch the receiver has seen
    std::vector<int> delivered;
    std::vector<uint64_t> submit_epoch; // val -> sending incarnation
    uint64_t stale_drops = 0;
    std::vector<std::string> log;
    auto note = [&](const char* what, uint64_t a, uint64_t b) {
        char buf[96];
        std::snprintf(buf, sizeof buf, "%s %llu %llu", what,
                      static_cast<unsigned long long>(a),
                      static_cast<unsigned long long>(b));
        log.emplace_back(buf);
    };

    const int kValues = 300;
    int next_val = 0;
    int restarts = 0;
    uint64_t now = 0;
    mp::Rng rng(seed ^ 0x5eed);

    auto receiver_drain = [&](bool flush_ack) {
        Msg m;
        while (data_ring.try_pop(m)) {
            if (m.epoch < rx_epoch) {
                ++stale_drops;
                note("stale", m.epoch, m.seq);
                continue;
            }
            if (m.epoch > rx_epoch) {
                // A strictly newer incarnation: its sequence space
                // starts over, so the receiver's does too.
                rx_epoch = m.epoch;
                rseq = net::ReceiverSeq{};
                note("epoch", m.epoch, m.seq);
            }
            if (rseq.accept(m.seq) ==
                net::ReceiverSeq::Verdict::kDeliver) {
                delivered.push_back(m.val);
                note("deliver", m.seq, m.epoch);
            }
            if (rseq.ack_due(params.ack_every)) {
                acks.send(Msg{0, rseq.cum_ack(), rx_epoch, 0});
                rseq.ack_sent();
            }
        }
        if (flush_ack && rseq.ack_pending()) {
            acks.send(Msg{0, rseq.cum_ack(), rx_epoch, 0});
            rseq.ack_sent();
        }
    };
    auto sender_drain_acks = [&] {
        Msg m;
        while (ack_ring.try_pop(m)) {
            // An ack minted against an older incarnation's sequence
            // space must not move the fresh window.
            if (m.epoch != tx_epoch) {
                note("staleack", m.epoch, m.ack);
                continue;
            }
            win.on_ack(m.ack, now, [](int) {});
        }
    };
    auto fire_timeout = [&] {
        if (!win.timeout_due(now))
            return;
        win.on_timeout(now, [&](uint64_t seq, int& h) {
            note("rto", seq, tx_epoch);
            data.send(Msg{seq, 0, tx_epoch, h});
        });
    };

    while (next_val < kValues) {
        now += 1 + rng.next_below(200);
        const uint64_t dice = rng.next_below(10);
        if (dice < 5 && !win.full()) {
            const uint64_t seq = win.send(next_val, now);
            submit_epoch.push_back(tx_epoch);
            note("send", seq, static_cast<uint64_t>(next_val));
            data.send(Msg{seq, 0, tx_epoch, next_val});
            ++next_val;
        } else if (dice < 8) {
            receiver_drain(/*flush_ack=*/rng.next_below(4) == 0);
            sender_drain_acks();
        } else if (restarts < 3 && next_val > 0 &&
                   rng.next_below(12) == 0) {
            // Sender crash + rejoin: in-flight retention is lost
            // with the incarnation, the window starts over, and the
            // epoch steps — exactly forget_peer + rewire at
            // epoch + 1 in the runtime.
            win = net::SenderWindow<int>(params);
            ++tx_epoch;
            ++restarts;
            note("restart", tx_epoch,
                 static_cast<uint64_t>(next_val));
        } else {
            data.tick();
            acks.tick();
            fire_timeout();
        }
    }

    // Recovery: the final incarnation's window must drain even with
    // faults still firing and stale-epoch traffic still surfacing
    // from the reorder stashes.
    int guard = 0;
    while (!win.empty()) {
        ASSERT_LT(++guard, 200000) << "recovery failed to converge";
        now += params.rto_max_ns;
        data.tick();
        acks.tick();
        receiver_drain(/*flush_ack=*/true);
        sender_drain_acks();
        fire_timeout();
        if (guard % 64 == 0) {
            data.flush();
            acks.flush();
        }
    }
    receiver_drain(/*flush_ack=*/true);

    auto dump_tail = [&] {
        for (size_t k = log.size() > 60 ? log.size() - 60 : 0;
             k < log.size(); ++k)
            ADD_FAILURE() << "schedule[" << k << "] " << log[k];
    };

    // No value delivered twice, delivery epochs monotone (stale
    // incarnations never resurface post-switch), per-epoch order
    // preserved.
    std::vector<bool> seen(static_cast<size_t>(kValues), false);
    uint64_t prev_epoch = 0;
    int prev_val_same_epoch = -1;
    for (const int v : delivered) {
        const auto vi = static_cast<size_t>(v);
        ASSERT_LT(vi, seen.size());
        if (seen[vi]) {
            dump_tail();
            FAIL() << "value " << v << " delivered twice";
        }
        seen[vi] = true;
        const uint64_t e = submit_epoch[vi];
        if (e < prev_epoch) {
            dump_tail();
            FAIL() << "stale epoch " << e << " delivered after "
                   << prev_epoch;
        }
        if (e > prev_epoch) {
            prev_epoch = e;
            prev_val_same_epoch = -1;
        }
        EXPECT_GT(v, prev_val_same_epoch) << "epoch " << e
                                          << " out of order";
        prev_val_same_epoch = v;
    }

    // Everything the final incarnation submitted arrived.
    for (int v = 0; v < kValues; ++v) {
        if (submit_epoch[static_cast<size_t>(v)] == tx_epoch &&
            !seen[static_cast<size_t>(v)]) {
            dump_tail();
            FAIL() << "final-epoch value " << v << " lost";
        }
    }
    if (restarts > 0) {
        // The schedules that actually restart must also exercise the
        // stale-drop rule, or the property is vacuous.
        EXPECT_GT(stale_drops + delivered.size(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, EpochProperty,
    testing::Combine(testing::Values<uint64_t>(1, 2, 3, 4, 5, 6, 7, 8),
                     testing::Range(0, 4)),
    [](const testing::TestParamInfo<EpochProperty::ParamType>& info) {
        return std::string(kPlans[std::get<1>(info.param)].name) +
               "Seed" + std::to_string(std::get<0>(info.param));
    });

} // namespace
