/// \file
/// Edge-case and stress coverage for the SPSC queues: MsgRing
/// wraparound/full/oversize boundaries and long-running two-thread
/// streams for both queues (the TSan workload — this binary carries
/// the `sanitize-ok` ctest label and runs under every sanitizer
/// configuration of tools/check.sh).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

#include "spsc/ring_queue.h"

namespace {

// For MsgRing<kBytes>, a record costs 8 (header) + payload rounded up
// to 8; a push is rejected when the record would exceed kBytes/2.
constexpr uint32_t
record_bytes(uint32_t n)
{
    return 8 + ((n + 7) / 8) * 8;
}

std::vector<uint8_t>
pattern(uint32_t n, uint32_t salt)
{
    std::vector<uint8_t> v(n);
    for (uint32_t i = 0; i < n; ++i)
        v[i] = static_cast<uint8_t>(salt * 31 + i * 7 + 3);
    return v;
}

// --------------------------------------------------- MsgRing edges

TEST(MsgRingEdge, OversizeRejectedEvenWhenEmpty)
{
    spsc::MsgRing<64> r;
    // record_bytes(25) = 40 > 64/2: too big for this ring, ever.
    auto big = pattern(25, 1);
    EXPECT_FALSE(r.try_push(big.data(), 25));
    EXPECT_TRUE(r.empty());
    // record_bytes(24) = 32 == 64/2: the largest admissible message.
    auto ok = pattern(24, 2);
    EXPECT_TRUE(r.try_push(ok.data(), 24));
    std::vector<uint8_t> out;
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_EQ(out, ok);
}

TEST(MsgRingEdge, ExactFullRejectsAndRecovers)
{
    spsc::MsgRing<64> r;
    // Four records of 16 bytes fill the ring to exactly 64 bytes.
    ASSERT_EQ(record_bytes(8), 16u);
    for (uint32_t i = 0; i < 4; ++i) {
        auto msg = pattern(8, i);
        ASSERT_TRUE(r.try_push(msg.data(), 8)) << i;
    }
    auto extra = pattern(8, 99);
    EXPECT_FALSE(r.try_push(extra.data(), 8)); // exactly full
    EXPECT_FALSE(r.try_push(extra.data(), 0)); // even a 0-byte record

    // Draining one record frees exactly one record's credit.
    std::vector<uint8_t> out;
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_EQ(out, pattern(8, 0));
    EXPECT_TRUE(r.try_push(extra.data(), 8));
    EXPECT_FALSE(r.try_push(extra.data(), 8)); // full again

    // FIFO continues across the full/drain cycle.
    for (uint32_t i = 1; i < 4; ++i) {
        ASSERT_TRUE(r.try_pop(out));
        EXPECT_EQ(out, pattern(8, i));
    }
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_EQ(out, pattern(8, 99));
    EXPECT_TRUE(r.empty());
}

TEST(MsgRingEdge, ZeroLengthMessages)
{
    spsc::MsgRing<32> r;
    EXPECT_TRUE(r.try_push(nullptr, 0));
    EXPECT_FALSE(r.empty());
    std::vector<uint8_t> out(3, 7);
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_TRUE(out.empty());
    EXPECT_TRUE(r.empty());
}

TEST(MsgRingEdge, PayloadWrapsAcrossRingBoundary)
{
    spsc::MsgRing<64> r;
    std::vector<uint8_t> out;
    // Advance the cursors so the next record's payload straddles the
    // end of the byte ring: two 32-byte records leave tail_ = 64; the
    // third record's payload occupies positions 72..95, i.e. ring
    // offsets 8..31 after wrapping.
    for (uint32_t i = 0; i < 2; ++i) {
        auto msg = pattern(24, i);
        ASSERT_TRUE(r.try_push(msg.data(), 24));
        ASSERT_TRUE(r.try_pop(out));
        ASSERT_EQ(out, msg);
    }
    auto wrapped = pattern(24, 42);
    ASSERT_TRUE(r.try_push(wrapped.data(), 24));
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_EQ(out, wrapped);
    EXPECT_TRUE(r.empty());
}

TEST(MsgRingEdge, ManyLapsPreserveFifoAndContent)
{
    spsc::MsgRing<128> r;
    std::vector<uint8_t> out;
    uint32_t popped = 0;
    uint32_t pushed = 0;
    // Mixed sizes force every alignment/wrap combination over many
    // laps of the 128-byte ring.
    while (popped < 500) {
        uint32_t n = pushed % 41;
        auto msg = pattern(n, pushed);
        if (record_bytes(n) <= 64 && r.try_push(msg.data(), n))
            ++pushed;
        while (r.try_pop(out)) {
            uint32_t exp = popped % 41;
            ASSERT_EQ(out.size(), exp);
            ASSERT_EQ(out, pattern(exp, popped));
            ++popped;
        }
    }
}

// ------------------------------------------------ two-thread stress

// ------------------------------------------------------- DynPtrRing

TEST(DynPtrRing, SingleThreadFifoAndCapacity)
{
    spsc::DynPtrRing<uint64_t*> r(5); // rounds up to 8
    EXPECT_EQ(r.capacity(), 8u);
    EXPECT_TRUE(r.empty());
    uint64_t slots[8];
    for (auto& s : slots)
        EXPECT_TRUE(r.try_push(&s));
    EXPECT_FALSE(r.try_push(slots)); // full at capacity
    uint64_t* out = nullptr;
    for (auto& s : slots) {
        ASSERT_TRUE(r.try_pop(out));
        EXPECT_EQ(out, &s);
    }
    EXPECT_FALSE(r.try_pop(out));
    EXPECT_TRUE(r.empty());
}

TEST(DynPtrRing, WrapsAroundManyLaps)
{
    spsc::DynPtrRing<uintptr_t> r(4);
    uintptr_t out;
    for (uintptr_t i = 0; i < 1000; ++i) {
        ASSERT_TRUE(r.try_push(i));
        ASSERT_TRUE(r.try_push(i + 1000000));
        ASSERT_TRUE(r.try_pop(out));
        EXPECT_EQ(out, i);
        ASSERT_TRUE(r.try_pop(out));
        EXPECT_EQ(out, i + 1000000);
    }
    EXPECT_TRUE(r.empty());
}

TEST(DynPtrRing, MinimumCapacityIsTwo)
{
    spsc::DynPtrRing<int*> r(0);
    EXPECT_EQ(r.capacity(), 2u);
    int a = 0, b = 0;
    EXPECT_TRUE(r.try_push(&a));
    EXPECT_TRUE(r.try_push(&b));
    EXPECT_FALSE(r.try_push(&a));
    int* out;
    EXPECT_TRUE(r.try_pop(out));
    EXPECT_EQ(out, &a);
}

TEST(SpscStress, DynPtrRingMillionOps)
{
    // Two threads stream 1M distinct pointer values through a small
    // ring: the TSan workload for the cached-index Lamport protocol.
    constexpr uintptr_t kOps = 1'000'000;
    spsc::DynPtrRing<uintptr_t> r(64);
    std::thread producer([&] {
        for (uintptr_t i = 1; i <= kOps; ++i) {
            while (!r.try_push(i * 8))
                std::this_thread::yield();
        }
    });
    uintptr_t out = 0;
    for (uintptr_t i = 1; i <= kOps; ++i) {
        while (!r.try_pop(out))
            std::this_thread::yield();
        ASSERT_EQ(out, i * 8);
    }
    producer.join();
    EXPECT_TRUE(r.empty());
}

TEST(SpscStress, RingQueueMillionOps)
{
    // >= 1M push + 1M pop ops through a small ring, checking strict
    // FIFO. The TSan run of this test is the sampled-interleaving
    // complement to the exhaustive checker in check_test.cc.
    constexpr uint64_t kOps = 1'000'000;
    auto q = std::make_unique<spsc::RingQueue<uint64_t, 64>>();
    std::thread producer([&] {
        for (uint64_t i = 0; i < kOps; ++i)
            while (!q->try_push(i))
                std::this_thread::yield();
    });
    uint64_t expect = 0;
    while (expect < kOps) {
        uint64_t v;
        if (q->try_pop(v)) {
            ASSERT_EQ(v, expect);
            ++expect;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();
    EXPECT_TRUE(q->empty());
}

TEST(SpscStress, MsgRingMillionOps)
{
    // 500k messages = 1M push/pop ops, sizes cycling through every
    // alignment class, content verified byte-for-byte.
    constexpr uint32_t kMsgs = 500'000;
    auto r = std::make_unique<spsc::MsgRing<8192>>();
    std::thread producer([&] {
        std::vector<uint8_t> msg;
        for (uint32_t i = 0; i < kMsgs; ++i) {
            uint32_t n = i % 61;
            msg = pattern(n, i);
            while (!r->try_push(msg.data(), n))
                std::this_thread::yield();
        }
    });
    std::vector<uint8_t> out;
    for (uint32_t i = 0; i < kMsgs; ++i) {
        while (!r->try_pop(out))
            std::this_thread::yield();
        uint32_t n = i % 61;
        ASSERT_EQ(out.size(), n);
        ASSERT_EQ(out, pattern(n, i));
    }
    producer.join();
    EXPECT_TRUE(r->empty());
}

} // namespace
