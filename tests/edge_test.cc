/// \file
/// Edge-case and failure-injection tests: bounded remote queues
/// overflowing, real-runtime receive-ring drops, simulation deadlock
/// detection, zero-byte signal PUTs, per-kind traffic accounting, and
/// the log/check utilities' fatal paths.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "backend/factory.h"
#include "machine/design_point.h"
#include "bench/bench_wiring.h"
#include "proxy/runtime.h"
#include "rma/system.h"
#include "sim/scheduler.h"
#include "util/log.h"

namespace {

rma::SystemConfig
cfg_for(const std::string& dp_name, int nodes = 2, int ppn = 1)
{
    rma::SystemConfig cfg;
    cfg.design = *machine::design_point_by_name(dp_name);
    cfg.nodes = nodes;
    cfg.procs_per_node = ppn;
    return cfg;
}

TEST(EdgeCases, BoundedRemoteQueueDropsWhenFull)
{
    auto cfg = cfg_for("MP1");
    uint64_t drops = 0;
    size_t depth = 0;
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        if (ctx.rank() == 1) {
            // Room for roughly three 32-byte messages.
            int qid = ctx.make_queue(/*capacity_bytes=*/100);
            ctx.publish("edge.q", reinterpret_cast<void*>(1));
            ctx.compute(5000.0);
            drops = ctx.system().queue(1, qid).drops();
            depth = ctx.system().queue(1, qid).size();
        } else {
            ctx.lookup("edge.q", 1);
            uint8_t msg[32] = {7};
            sim::Flag* f = ctx.new_flag();
            for (int i = 0; i < 10; ++i)
                ctx.enq(msg, 1, 0, sizeof(msg), f);
            ctx.wait_ge(*f, 10); // acks still arrive for drops
        }
    });
    EXPECT_EQ(depth, 3u);
    EXPECT_EQ(drops, 7u);
}

TEST(EdgeCases, ZeroByteSignalPut)
{
    // Barrier-style pure signals: no address, no data, flags only.
    auto cfg = cfg_for("HW1");
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        if (ctx.rank() == 1) {
            sim::Flag* f = ctx.new_flag();
            ctx.publish("edge.sig", f);
            ctx.wait_ge(*f, 3);
        } else {
            auto* f = static_cast<sim::Flag*>(ctx.lookup("edge.sig", 1));
            for (int i = 0; i < 3; ++i)
                ctx.put(nullptr, 1, nullptr, 0, nullptr, f);
            ctx.compute(500.0);
        }
    });
}

TEST(EdgeCases, TrafficCountsPerKind)
{
    auto cfg = cfg_for("MP1");
    void* bufs[2] = {nullptr, nullptr};
    uint64_t puts = 0, gets = 0, enqs = 0;
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        uint8_t* buf = ctx.alloc_n<uint8_t>(64);
        bufs[ctx.rank()] = buf;
        if (ctx.rank() == 1) {
            ctx.make_queue();
            ctx.compute(5000.0);
        } else {
            ctx.compute(1.0);
            for (int i = 0; i < 4; ++i)
                ctx.put_blocking(buf, 1, bufs[1], 8);
            for (int i = 0; i < 3; ++i)
                ctx.get_blocking(buf, 1, bufs[1], 8);
            for (int i = 0; i < 2; ++i)
                ctx.enq_blocking(buf, 1, 0, 8);
            puts = ctx.system().traffic().ops_of(rma::OpKind::kPut);
            gets = ctx.system().traffic().ops_of(rma::OpKind::kGet);
            enqs = ctx.system().traffic().ops_of(rma::OpKind::kEnq);
        }
    });
    EXPECT_EQ(puts, 4u);
    EXPECT_EQ(gets, 3u);
    EXPECT_EQ(enqs, 2u);
}

using EdgeDeathTest = ::testing::Test;

TEST(EdgeDeathTest, SimulationDeadlockIsDetected)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            sim::Scheduler s;
            s.spawn("stuck", [](sim::SimThread& t) { t.block(); });
            s.run();
        },
        "deadlock");
}

TEST(EdgeDeathTest, ChecksAbortOnInternalErrors)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(MP_PANIC("boom " << 42), "boom 42");
    EXPECT_DEATH(MP_CHECK(1 == 2, "impossible"), "check failed");
}

TEST(EdgeCases, RuntimeEnqDropsAreCounted)
{
    proxy::Node n0(proxy::NodeConfig{.id = 0});
    proxy::Node n1(proxy::NodeConfig{.id = 1});
    proxy::Endpoint& a = n0.create_endpoint();
    proxy::Endpoint& b = n1.create_endpoint();
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    // Never drain b's receive ring (64 KB): pushing enough 256-byte
    // messages must overflow it and count drops instead of blocking.
    uint8_t msg[256] = {1};
    for (int i = 0; i < 600; ++i) {
        while (!a.enq(msg, sizeof(msg), 1, b.id()))
            std::this_thread::yield();
    }
    while (n1.stats().packets_in < 600)
        std::this_thread::yield();
    EXPECT_GT(n1.stats().enq_drops, 0u);

    // The ring still works once drained.
    std::vector<uint8_t> out;
    int received = 0;
    while (b.try_recv(out))
        ++received;
    EXPECT_GT(received, 100);
    EXPECT_EQ(static_cast<uint64_t>(received) + n1.stats().enq_drops,
              600u);
}

TEST(EdgeCases, GetOfZeroBytesCompletes)
{
    auto cfg = cfg_for("SW1");
    void* bufs[2] = {nullptr, nullptr};
    backend::run_app(cfg, [&](rma::Ctx& ctx) {
        bufs[ctx.rank()] = ctx.alloc(16);
        if (ctx.rank() == 0) {
            ctx.compute(1.0);
            uint8_t dummy = 0;
            sim::Flag* f = ctx.new_flag();
            ctx.get(&dummy, 1, bufs[1], 0, f);
            ctx.wait_ge(*f, 1);
        } else {
            ctx.compute(200.0);
        }
    });
}

} // namespace
