/// \file
/// Tests for the real (host-thread) message-proxy runtime: the
/// lock-free SPSC queues under concurrency, and the end-to-end
/// PUT/GET/ENQ semantics, protection checks, fragmentation, and
/// multi-endpoint / multi-node behaviour of the proxy.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_wiring.h"
#include "proxy/runtime.h"
#include "spsc/ring_queue.h"

namespace {

// ------------------------------------------------------------ RingQueue

TEST(RingQueue, SingleThreadFifo)
{
    spsc::RingQueue<int, 8> q;
    EXPECT_TRUE(q.empty());
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(q.try_push(i));
    EXPECT_FALSE(q.try_push(99)); // full
    int v;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(q.try_pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(q.try_pop(v));
    EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapsAroundManyTimes)
{
    spsc::RingQueue<uint64_t, 4> q;
    uint64_t out;
    for (uint64_t i = 0; i < 1000; ++i) {
        ASSERT_TRUE(q.try_push(i));
        ASSERT_TRUE(q.try_pop(out));
        ASSERT_EQ(out, i);
    }
}

TEST(RingQueue, ConcurrentProducerConsumerNoLossNoReorder)
{
    spsc::RingQueue<uint64_t, 64> q;
    constexpr uint64_t kCount = 200000;
    std::thread producer([&] {
        for (uint64_t i = 0; i < kCount; ++i) {
            while (!q.try_push(i))
                std::this_thread::yield();
        }
    });
    uint64_t expect = 0;
    while (expect < kCount) {
        uint64_t v;
        if (q.try_pop(v)) {
            ASSERT_EQ(v, expect);
            ++expect;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();
}

TEST(MsgRing, VariableSizeMessagesFifo)
{
    spsc::MsgRing<4096> r;
    EXPECT_TRUE(r.empty());
    std::vector<uint8_t> out;
    for (uint32_t n : {1u, 7u, 8u, 9u, 100u, 333u}) {
        std::vector<uint8_t> msg(n);
        for (uint32_t i = 0; i < n; ++i)
            msg[i] = static_cast<uint8_t>(n + i);
        ASSERT_TRUE(r.try_push(msg.data(), n));
    }
    for (uint32_t n : {1u, 7u, 8u, 9u, 100u, 333u}) {
        ASSERT_TRUE(r.try_pop(out));
        ASSERT_EQ(out.size(), n);
        for (uint32_t i = 0; i < n; ++i)
            ASSERT_EQ(out[i], static_cast<uint8_t>(n + i));
    }
    EXPECT_TRUE(r.empty());
}

TEST(MsgRing, RejectsOversizeAndRecoversWhenDrained)
{
    spsc::MsgRing<256> r;
    std::vector<uint8_t> big(200, 1);
    EXPECT_FALSE(r.try_push(big.data(), 200)); // > capacity/2
    std::vector<uint8_t> small(40, 2);
    int pushed = 0;
    while (r.try_push(small.data(), 40))
        ++pushed;
    EXPECT_GT(pushed, 2);
    std::vector<uint8_t> out;
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_TRUE(r.try_push(small.data(), 40)); // space reclaimed
}

TEST(MsgRing, ConcurrentStream)
{
    spsc::MsgRing<8192> r;
    constexpr int kMsgs = 20000;
    std::thread producer([&] {
        for (int i = 0; i < kMsgs; ++i) {
            uint32_t len = 4 + static_cast<uint32_t>(i % 60);
            std::vector<uint8_t> msg(len);
            std::memcpy(msg.data(), &i, 4);
            while (!r.try_push(msg.data(), len))
                std::this_thread::yield();
        }
    });
    std::vector<uint8_t> out;
    for (int i = 0; i < kMsgs; ++i) {
        while (!r.try_pop(out))
            std::this_thread::yield();
        ASSERT_EQ(out.size(), 4u + static_cast<uint32_t>(i % 60));
        int got;
        std::memcpy(&got, out.data(), 4);
        ASSERT_EQ(got, i);
    }
    producer.join();
}

// -------------------------------------------------------- proxy runtime

struct TwoNodes
{
    explicit TwoNodes(int num_proxies = 1)
        : n0(proxy::NodeConfig{.id = 0, .num_proxies = num_proxies}),
          n1(proxy::NodeConfig{.id = 1, .num_proxies = num_proxies})
    {
        ep0 = &n0.create_endpoint();
        ep1 = &n1.create_endpoint();
        benchwire::wire(n0, n1);
    }

    void
    start()
    {
        n0.start();
        n1.start();
    }

    proxy::Node n0, n1;
    proxy::Endpoint* ep0;
    proxy::Endpoint* ep1;
};

TEST(ProxyRuntime, PutDeliversDataAndFlags)
{
    TwoNodes t;
    std::vector<uint8_t> src(300), dst(300, 0);
    std::iota(src.begin(), src.end(), 1);
    uint16_t seg = t.ep1->register_segment(dst.data(), dst.size());
    proxy::Flag lsync{0}, rsync{0};
    t.start();

    ASSERT_TRUE(t.ep0->put(src.data(), 1, seg, 0,
                           static_cast<uint32_t>(src.size()), &lsync,
                           &rsync));
    proxy::flag_wait_ge(rsync, 1);
    proxy::flag_wait_ge(lsync, 1);
    EXPECT_EQ(dst, src);
    EXPECT_EQ(t.n1.stats().faults, 0u);
}

TEST(ProxyRuntime, PutWithOffset)
{
    TwoNodes t;
    std::vector<uint8_t> dst(128, 0);
    uint16_t seg = t.ep1->register_segment(dst.data(), dst.size());
    t.start();
    uint8_t v[4] = {9, 8, 7, 6};
    proxy::Flag rsync{0};
    ASSERT_TRUE(t.ep0->put(v, 1, seg, 100, 4, nullptr, &rsync));
    proxy::flag_wait_ge(rsync, 1);
    EXPECT_EQ(dst[100], 9);
    EXPECT_EQ(dst[103], 6);
    EXPECT_EQ(dst[99], 0);
}

TEST(ProxyRuntime, LargePutFragmentsAcrossMtu)
{
    TwoNodes t;
    const size_t n = 64 * 1024 + 123; // many fragments + tail
    std::vector<uint8_t> src(n), dst(n, 0);
    for (size_t i = 0; i < n; ++i)
        src[i] = static_cast<uint8_t>(i * 31 + 7);
    uint16_t seg = t.ep1->register_segment(dst.data(), dst.size());
    proxy::Flag rsync{0};
    t.start();
    ASSERT_TRUE(t.ep0->put(src.data(), 1, seg, 0,
                           static_cast<uint32_t>(n), nullptr, &rsync));
    proxy::flag_wait_ge(rsync, 1);
    EXPECT_EQ(dst, src);
    EXPECT_GT(t.n0.stats().packets_out, 64u);
}

TEST(ProxyRuntime, GetFetchesRemoteData)
{
    TwoNodes t;
    std::vector<uint32_t> remote(2048);
    for (size_t i = 0; i < remote.size(); ++i)
        remote[i] = static_cast<uint32_t>(i ^ 0xdead);
    uint16_t seg = t.ep1->register_segment(
        remote.data(), remote.size() * sizeof(uint32_t));
    std::vector<uint32_t> local(2048, 0);
    proxy::Flag lsync{0};
    t.start();
    ASSERT_TRUE(t.ep0->get(local.data(), 1, seg, 0,
                           static_cast<uint32_t>(local.size() *
                                                 sizeof(uint32_t)),
                           &lsync));
    proxy::flag_wait_ge(lsync, 1);
    EXPECT_EQ(local, remote);
}

TEST(ProxyRuntime, EnqDeliversMessagesInOrder)
{
    TwoNodes t;
    t.start();
    for (int i = 0; i < 50; ++i) {
        char msg[32];
        std::snprintf(msg, sizeof(msg), "message-%03d", i);
        while (!t.ep0->enq(msg, 12, 1, t.ep1->id()))
            std::this_thread::yield();
    }
    std::vector<uint8_t> out;
    for (int i = 0; i < 50; ++i) {
        while (!t.ep1->try_recv(out))
            std::this_thread::yield();
        char expect[32];
        std::snprintf(expect, sizeof(expect), "message-%03d", i);
        ASSERT_EQ(out.size(), 12u);
        ASSERT_EQ(std::memcmp(out.data(), expect, 12), 0);
    }
}

TEST(ProxyRuntime, ProtectionFaultSuppressesWrite)
{
    TwoNodes t;
    std::vector<uint8_t> priv(64, 0x33);
    // Not remote-accessible.
    uint16_t seg =
        t.ep1->register_segment(priv.data(), priv.size(), false);
    proxy::Flag rsync{0};
    t.start();
    uint8_t evil[8] = {0};
    ASSERT_TRUE(t.ep0->put(evil, 1, seg, 0, 8, nullptr, &rsync));
    // The write is suppressed; wait for the fault counter instead.
    while (t.n1.stats().faults == 0)
        std::this_thread::yield();
    for (auto b : priv)
        EXPECT_EQ(b, 0x33);
}

TEST(ProxyRuntime, OutOfBoundsOffsetFaults)
{
    TwoNodes t;
    std::vector<uint8_t> dst(64, 0);
    uint16_t seg = t.ep1->register_segment(dst.data(), dst.size());
    t.start();
    uint8_t v[16] = {1};
    ASSERT_TRUE(t.ep0->put(v, 1, seg, 56, 16)); // 56+16 > 64
    while (t.n1.stats().faults == 0)
        std::this_thread::yield();
    for (auto b : dst)
        EXPECT_EQ(b, 0);
}

TEST(ProxyRuntime, GetFaultStillCompletesLocally)
{
    TwoNodes t;
    t.start();
    uint8_t buf[8];
    proxy::Flag lsync{0};
    ASSERT_TRUE(t.ep0->get(buf, 1, /*seg=*/77, 0, 8, &lsync));
    proxy::flag_wait_ge(lsync, 1); // fault reply fires the flag
    EXPECT_GE(t.n1.stats().faults, 1u);
}

TEST(ProxyRuntime, LoopbackPutOnSameNode)
{
    proxy::Node n(proxy::NodeConfig{.id = 0});
    proxy::Endpoint& a = n.create_endpoint();
    proxy::Endpoint& b = n.create_endpoint();
    std::vector<uint8_t> dst(64, 0);
    uint16_t seg = b.register_segment(dst.data(), dst.size());
    proxy::Flag rsync{0};
    n.start();
    uint8_t v[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    ASSERT_TRUE(a.put(v, 0, seg, 8, 8, nullptr, &rsync));
    proxy::flag_wait_ge(rsync, 1);
    EXPECT_EQ(dst[8], 1);
    EXPECT_EQ(dst[15], 8);
}

TEST(ProxyRuntime, ConcurrentEndpointsDoNotInterfere)
{
    TwoNodes t;
    proxy::Endpoint& ep0b = t.n0.create_endpoint();
    std::vector<uint32_t> dst_a(1024, 0), dst_b(1024, 0);
    uint16_t seg_a = t.ep1->register_segment(
        dst_a.data(), dst_a.size() * sizeof(uint32_t));
    uint16_t seg_b = t.ep1->register_segment(
        dst_b.data(), dst_b.size() * sizeof(uint32_t));
    t.start();

    // Delivery is observed through rsync flags (acquire), never by
    // polling payload bytes — the documented synchronization
    // discipline (and the only way to stay data-race-free).
    proxy::Flag delivered_a{0}, delivered_b{0};
    auto writer = [](proxy::Endpoint* ep, uint16_t seg, uint32_t tag,
                     proxy::Flag* rsync) {
        std::vector<uint32_t> buf(64);
        proxy::Flag lsync{0};
        for (uint32_t i = 0; i < 16; ++i) {
            for (auto& v : buf)
                v = tag + i;
            while (!ep->put(buf.data(), 1, seg,
                            i * 64 * sizeof(uint32_t),
                            64 * sizeof(uint32_t), &lsync, rsync)) {
                std::this_thread::yield();
            }
            proxy::flag_wait_ge(lsync, i + 1); // source reuse gate
        }
    };
    std::thread t1([&] { writer(t.ep0, seg_a, 1000, &delivered_a); });
    std::thread t2([&] { writer(&ep0b, seg_b, 2000, &delivered_b); });
    t1.join();
    t2.join();
    proxy::flag_wait_ge(delivered_a, 16);
    proxy::flag_wait_ge(delivered_b, 16);
    for (uint32_t i = 0; i < 16; ++i) {
        for (int k = 0; k < 64; ++k) {
            ASSERT_EQ(dst_a[i * 64 + static_cast<uint32_t>(k)], 1000 + i);
            ASSERT_EQ(dst_b[i * 64 + static_cast<uint32_t>(k)], 2000 + i);
        }
    }
}

TEST(ProxyRuntime, PingPongLatencySmokeTest)
{
    TwoNodes t;
    proxy::Flag f0{0}, f1{0};
    uint64_t buf0 = 0, buf1 = 0;
    uint16_t s0 = t.ep0->register_segment(&buf0, sizeof(buf0));
    uint16_t s1 = t.ep1->register_segment(&buf1, sizeof(buf1));
    t.start();
    constexpr int kRounds = 200;
    std::thread peer([&] {
        for (int i = 1; i <= kRounds; ++i) {
            proxy::flag_wait_ge(f1, static_cast<uint64_t>(i));
            uint64_t v = buf1 + 1;
            while (!t.ep1->put(&v, 0, s0, 0, 8, nullptr, &f0))
                std::this_thread::yield();
            proxy::flag_wait_ge(f0, static_cast<uint64_t>(i));
        }
    });
    for (int i = 1; i <= kRounds; ++i) {
        uint64_t v = static_cast<uint64_t>(i);
        while (!t.ep0->put(&v, 1, s1, 0, 8, nullptr, &f1))
            std::this_thread::yield();
        proxy::flag_wait_ge(f0, static_cast<uint64_t>(i));
    }
    peer.join();
    EXPECT_GE(t.n0.stats().packets_out,
              static_cast<uint64_t>(kRounds));
}

TEST(ProxyRuntime, RemoteQueueEnqDeqRoundTrip)
{
    TwoNodes t;
    int qid = t.n1.create_queue();
    t.start();
    // Producer on node 0 pushes three tasks into node 1's queue.
    for (int i = 0; i < 3; ++i) {
        int64_t task = 50 + i;
        while (!t.ep0->rq_enq(&task, sizeof(task), 1, qid))
            std::this_thread::yield();
    }
    // Consumer (also on node 0, stealing remotely) dequeues them.
    for (int i = 0; i < 3; ++i) {
        int64_t task = -1;
        proxy::Flag f{0};
        for (;;) {
            while (!t.ep0->rq_deq(&task, sizeof(task), 1, qid, &f))
                std::this_thread::yield();
            proxy::flag_wait_ge(f, 1);
            if (f.load() > 1)
                break; // got payload (1 + bytes)
            f.store(0);
            std::this_thread::yield(); // empty; retry
        }
        EXPECT_EQ(task, 50 + i); // FIFO order
    }
    // A further dequeue reports empty (flag == exactly 1).
    int64_t none = 0;
    proxy::Flag f{0};
    while (!t.ep0->rq_deq(&none, sizeof(none), 1, qid, &f))
        std::this_thread::yield();
    proxy::flag_wait_ge(f, 1);
    EXPECT_EQ(f.load(), 1u);
}

TEST(ProxyRuntime, RemoteQueueWorkSharingAcrossNodes)
{
    // Node 0 owns a task queue; endpoints on both nodes pull from it.
    TwoNodes t;
    int qid = t.n0.create_queue();
    t.start();
    const int kTasks = 40;
    for (int i = 0; i < kTasks; ++i) {
        int64_t task = i;
        while (!t.ep1->rq_enq(&task, sizeof(task), 0, qid))
            std::this_thread::yield();
    }
    std::vector<int> seen(kTasks, 0);
    int got = 0;
    // Alternate pulls between an endpoint on each node.
    proxy::Endpoint* pullers[2] = {t.ep0, t.ep1};
    int empties = 0;
    while (got < kTasks && empties < 100000) {
        proxy::Endpoint* ep = pullers[got % 2];
        int64_t task = -1;
        proxy::Flag f{0};
        while (!ep->rq_deq(&task, sizeof(task), 0, qid, &f))
            std::this_thread::yield();
        proxy::flag_wait_ge(f, 1);
        if (f.load() > 1) {
            ASSERT_GE(task, 0);
            ASSERT_LT(task, kTasks);
            seen[static_cast<size_t>(task)]++;
            ++got;
        } else {
            ++empties;
            std::this_thread::yield();
        }
    }
    ASSERT_EQ(got, kTasks);
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(seen[static_cast<size_t>(i)], 1) << i;
}

TEST(ProxyRuntime, FourNodeMeshRoutesCorrectly)
{
    // Fully connected 4-node mesh; every node PUTs its id into every
    // other node's slot array.
    std::vector<std::unique_ptr<proxy::Node>> nodes;
    std::vector<proxy::Endpoint*> eps;
    std::vector<std::vector<uint64_t>> slots(4,
                                             std::vector<uint64_t>(4, 0));
    std::vector<uint16_t> segs(4);
    for (int i = 0; i < 4; ++i) {
        nodes.push_back(std::make_unique<proxy::Node>(
            proxy::NodeConfig{.id = i}));
        eps.push_back(&nodes.back()->create_endpoint());
        segs[static_cast<size_t>(i)] = eps.back()->register_segment(
            slots[static_cast<size_t>(i)].data(), 4 * 8);
    }
    // Each node listens once on its own address; every later node
    // dials every earlier one (a transport has one listen address).
    std::vector<std::string> addrs;
    for (int i = 0; i < 4; ++i) {
        addrs.push_back(benchwire::unique_addr(
            nodes[static_cast<size_t>(i)]->config().transport));
        nodes[static_cast<size_t>(i)]->listen(addrs.back());
        for (int j = 0; j < i; ++j)
            nodes[static_cast<size_t>(i)]->connect(
                addrs[static_cast<size_t>(j)]);
    }
    for (auto& n : nodes)
        n->start();

    proxy::Flag done{0};
    uint64_t expect = 0;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            if (i == j)
                continue;
            uint64_t v = 100 + static_cast<uint64_t>(i);
            while (!eps[static_cast<size_t>(i)]->put(
                &v, j, segs[static_cast<size_t>(j)],
                static_cast<uint64_t>(i) * 8, 8, nullptr, &done)) {
                std::this_thread::yield();
            }
            proxy::flag_wait_ge(done, ++expect);
        }
    }
    for (int j = 0; j < 4; ++j) {
        for (int i = 0; i < 4; ++i) {
            if (i == j)
                continue;
            EXPECT_EQ(slots[static_cast<size_t>(j)]
                           [static_cast<size_t>(i)],
                      100 + static_cast<uint64_t>(i));
        }
    }
}

TEST(ProxyRuntime, BitVectorPollingWithManyEndpoints)
{
    // 70 endpoints exceed the 64-bit mask (ids alias mod 64); every
    // endpoint's traffic must still flow.
    proxy::Node n0(proxy::NodeConfig{
        .id = 0, .poll_mode = proxy::PollMode::kBitVector});
    proxy::Node n1(proxy::NodeConfig{
        .id = 1, .poll_mode = proxy::PollMode::kBitVector});
    std::vector<proxy::Endpoint*> eps;
    for (int i = 0; i < 70; ++i)
        eps.push_back(&n0.create_endpoint());
    proxy::Endpoint& sink = n1.create_endpoint();
    std::vector<uint64_t> slots(70, 0);
    uint16_t seg =
        sink.register_segment(slots.data(), slots.size() * 8);
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    proxy::Flag rsync{0};
    for (int i = 0; i < 70; ++i) {
        uint64_t v = 1000 + static_cast<uint64_t>(i);
        while (!eps[static_cast<size_t>(i)]->put(
            &v, 1, seg, static_cast<uint64_t>(i) * 8, 8, nullptr,
            &rsync)) {
            std::this_thread::yield();
        }
        proxy::flag_wait_ge(rsync, static_cast<uint64_t>(i) + 1);
    }
    for (int i = 0; i < 70; ++i)
        EXPECT_EQ(slots[static_cast<size_t>(i)],
                  1000 + static_cast<uint64_t>(i));
}

// ------------------- hierarchical doorbells & endpoint lifecycle

namespace {

// Delivery parity harness for both poll modes at endpoint counts the
// flat 64-bit mask could never index exactly: a scattered active
// subset self-ENQs over loopback and every message must arrive. The
// active set always includes the last id, so counts past 64k also
// prove the ENQ wire format carries endpoint ids undamaged (they
// ride the 64-bit off field; a uint16 seg would truncate id 65536+).
void
drive_endpoint_scale(proxy::PollMode mode, size_t n_eps)
{
    proxy::NodeConfig cfg{.id = 0,
                          .poll_mode = mode,
                          .num_proxies = 2,
                          .max_endpoints = n_eps,
                          .cmd_queue_depth = 2,
                          .recv_ring_bytes = 128};
    proxy::Node n(cfg);
    std::vector<proxy::Endpoint*> eps;
    eps.reserve(n_eps);
    for (size_t i = 0; i < n_eps; ++i)
        eps.push_back(&n.create_endpoint());
    ASSERT_EQ(n.endpoint_count(), n_eps);
    n.start();

    std::vector<size_t> active;
    const size_t stride = std::max<size_t>(1, n_eps / 16);
    for (size_t e = 0; e < n_eps; e += stride)
        active.push_back(e);
    if (active.back() != n_eps - 1)
        active.push_back(n_eps - 1);

    constexpr uint64_t kMsgs = 3;
    for (uint64_t m = 0; m < kMsgs; ++m) {
        for (size_t e : active) {
            const uint64_t tag = (static_cast<uint64_t>(e) << 8) | m;
            while (!eps[e]->enq(&tag, 8, 0, static_cast<int>(e)))
                std::this_thread::yield();
        }
    }
    std::vector<uint8_t> out;
    for (size_t e : active) {
        for (uint64_t m = 0; m < kMsgs; ++m) {
            while (!eps[e]->try_recv(out))
                std::this_thread::yield();
            ASSERT_EQ(out.size(), 8u);
            uint64_t tag = 0;
            std::memcpy(&tag, out.data(), 8);
            ASSERT_EQ(tag, (static_cast<uint64_t>(e) << 8) | m)
                << "endpoint " << e;
        }
    }
    EXPECT_EQ(n.stats().enq_drops, 0u);
    EXPECT_EQ(n.stats().faults, 0u);
}

} // namespace

TEST(ProxyRuntime, EndpointScaleParity65)
{
    drive_endpoint_scale(proxy::PollMode::kBitVector, 65);
    drive_endpoint_scale(proxy::PollMode::kScanAll, 65);
}

TEST(ProxyRuntime, EndpointScaleParity1024)
{
    drive_endpoint_scale(proxy::PollMode::kBitVector, 1024);
    drive_endpoint_scale(proxy::PollMode::kScanAll, 1024);
}

TEST(ProxyRuntime, EndpointScaleParity100k)
{
    // Three doorbell levels, ids past every uint16 boundary.
    drive_endpoint_scale(proxy::PollMode::kBitVector, 100000);
    drive_endpoint_scale(proxy::PollMode::kScanAll, 100000);
}

TEST(ProxyRuntime, CreateEndpointAfterStartDelivers)
{
    // Lazy registration: the proxies are live when the endpoint is
    // created, and traffic flows both ways between a pre-start and a
    // post-start endpoint.
    proxy::Node n(proxy::NodeConfig{.id = 0, .num_proxies = 2});
    proxy::Endpoint& a = n.create_endpoint();
    n.start();
    proxy::Endpoint& b = n.create_endpoint();
    EXPECT_EQ(n.endpoint_count(), 2u);

    std::vector<uint8_t> out;
    uint32_t v = 11;
    while (!a.enq(&v, 4, 0, b.id()))
        std::this_thread::yield();
    while (!b.try_recv(out))
        std::this_thread::yield();
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(std::memcmp(out.data(), &v, 4), 0);
    v = 22;
    while (!b.enq(&v, 4, 0, a.id()))
        std::this_thread::yield();
    while (!a.try_recv(out))
        std::this_thread::yield();
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(std::memcmp(out.data(), &v, 4), 0);
}

TEST(ProxyRuntimeDeathTest, CreateQueueAfterStartAborts)
{
    // Remote queues still have no lazy-registration story: creating
    // one while proxies scan rqueues_ must fail loudly, not corrupt.
    proxy::Node n(proxy::NodeConfig{.id = 0});
    n.create_endpoint();
    n.start();
    EXPECT_DEATH(n.create_queue(),
                 "queues must be created before Node::start");
}

TEST(ProxyRuntime, RetiredEndpointRefusesAndSlotIsReclaimed)
{
    proxy::Node n(proxy::NodeConfig{.id = 0, .num_proxies = 2});
    proxy::Endpoint& a = n.create_endpoint();
    proxy::Endpoint& b = n.create_endpoint();
    n.start();
    const int bid = b.id();

    // Live round trip first, so the retirement below is the only
    // variable.
    std::vector<uint8_t> out;
    uint32_t v = 1;
    while (!a.enq(&v, 4, 0, bid))
        std::this_thread::yield();
    while (!b.try_recv(out))
        std::this_thread::yield();

    n.retire_endpoint(b);
    uint8_t msg[8] = {0};
    EXPECT_EQ(b.enq(msg, 8, 0, a.id()),
              proxy::SubmitStatus::kRetired);

    // Epoch reclamation: the drained slot frees once every proxy
    // acknowledges the burial generation. `b` dangles after this.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (n.endpoint_count() != 1) {
        n.reclaim_endpoints();
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "retired endpoint never reclaimed";
        std::this_thread::yield();
    }

    // The freed id is reused, and the reincarnation delivers.
    proxy::Endpoint& c = n.create_endpoint();
    EXPECT_EQ(c.id(), bid);
    v = 33;
    while (!a.enq(&v, 4, 0, c.id()))
        std::this_thread::yield();
    while (!c.try_recv(out))
        std::this_thread::yield();
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(std::memcmp(out.data(), &v, 4), 0);
}

TEST(ProxyRuntime, MigrationMidWakeupManyEndpoints)
{
    // 80 endpoints across two proxies (no aliasing possible now, but
    // well past the old 64-bit mask) with ownership of the receiver
    // flipping mid-traffic: exactly-once in-order delivery, and the
    // non-owner forward rule re-aims through the deduplicating
    // doorbell instead of storming it.
    proxy::Node n(proxy::NodeConfig{.id = 0, .num_proxies = 2});
    std::vector<proxy::Endpoint*> eps;
    for (int i = 0; i < 80; ++i)
        eps.push_back(&n.create_endpoint());
    proxy::Endpoint& src = *eps[0];
    proxy::Endpoint& dst = *eps[79];
    n.start();

    std::vector<uint8_t> out;
    uint32_t seq = 0;
    for (int round = 0; round < 8; ++round) {
        for (int i = 0; i < 24; ++i) {
            const uint32_t tag = seq++;
            while (!src.enq(&tag, 4, 0, dst.id()))
                std::this_thread::yield();
        }
        n.migrate_endpoint(dst.id(), round % 2);
        uint32_t expect = seq - 24;
        for (int i = 0; i < 24; ++i) {
            while (!dst.try_recv(out))
                std::this_thread::yield();
            ASSERT_EQ(out.size(), 4u);
            uint32_t tag = 0;
            std::memcpy(&tag, out.data(), 4);
            ASSERT_EQ(tag, expect++) << "round " << round;
        }
    }
    EXPECT_GE(n.stats().migrations, 1u);
    EXPECT_EQ(n.stats().enq_drops, 0u);
}

TEST(ProxyRuntime, LoopBudgetCarriesExactIds)
{
    // Deep pre-start backlog on three endpoints against a small
    // per-loop fairness budget: every message still arrives, the
    // carry machinery engages (db_carries), and no carry revisit
    // ever finds an empty queue (db_carry_empty == 0 — the proof
    // that carries are exact ids, not aliased rewalks).
    proxy::NodeConfig cfg{.id = 0,
                          .loop_cmd_budget = 8,
                          .cmd_queue_depth = 128};
    cfg.cmd_burst = 4;
    proxy::Node n(cfg);
    proxy::Endpoint* eps[3] = {&n.create_endpoint(),
                               &n.create_endpoint(),
                               &n.create_endpoint()};
    constexpr uint32_t kPer = 100;
    for (uint32_t i = 0; i < kPer; ++i) {
        for (proxy::Endpoint* ep : eps) {
            const uint32_t tag = i;
            ASSERT_TRUE(ep->enq(&tag, 4, 0, ep->id()));
        }
    }
    n.start();
    std::vector<uint8_t> out;
    for (proxy::Endpoint* ep : eps) {
        for (uint32_t i = 0; i < kPer; ++i) {
            while (!ep->try_recv(out))
                std::this_thread::yield();
            ASSERT_EQ(out.size(), 4u);
            uint32_t tag = 0;
            std::memcpy(&tag, out.data(), 4);
            ASSERT_EQ(tag, i);
        }
    }
    const proxy::NodeStats s = n.stats();
    EXPECT_GT(s.db_carries, 0u);
    EXPECT_EQ(s.db_carry_empty, 0u);
    EXPECT_GT(s.db_wakeups, 0u);
}

TEST(ProxyRuntime, IdleProbeIsOneLoadByCounters)
{
    // With 200 endpoints registered and the node quiescent, the
    // proxies keep polling but never touch the doorbell hierarchy:
    // polls climb, consume counters stay frozen — the O(1) idle
    // probe, observable straight from the snapshot.
    proxy::NodeConfig cfg{.id = 0, .max_endpoints = 256};
    proxy::Node n(cfg);
    std::vector<proxy::Endpoint*> eps;
    for (int i = 0; i < 200; ++i)
        eps.push_back(&n.create_endpoint());
    n.start();
    std::vector<uint8_t> out;
    uint32_t v = 5;
    for (int i = 0; i < 8; ++i) {
        while (!eps[i]->enq(&v, 4, 0, eps[i]->id()))
            std::this_thread::yield();
        while (!eps[i]->try_recv(out))
            std::this_thread::yield();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));

    const proxy::NodeSnapshot s1 = n.stats_snapshot();
    ASSERT_GE(s1.doorbell.levels, 2);
    EXPECT_GT(s1.doorbell.rings.at(0), 0u);
    EXPECT_GT(s1.doorbell.consumes.at(0), 0u);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const proxy::NodeSnapshot s2 = n.stats_snapshot();
    EXPECT_GT(s2.totals.polls, s1.totals.polls)
        << "proxies stopped polling?";
    EXPECT_EQ(s2.doorbell.consumes, s1.doorbell.consumes)
        << "idle wakeups consumed doorbell words";
    EXPECT_EQ(s2.totals.db_wakeups, s1.totals.db_wakeups);
}

// --------------------------------------------- dynamic-capacity queues

TEST(DynRingQueue, FifoAndFullProbe)
{
    spsc::DynRingQueue<int> q(5); // rounds up to 8
    EXPECT_EQ(q.capacity(), 8u);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(q.try_push(i));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.try_push(99));
    int v;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(q.try_pop(v));
        ASSERT_EQ(v, i);
    }
    EXPECT_FALSE(q.try_pop(v));
}

TEST(DynRingQueue, ConcurrentStream)
{
    spsc::DynRingQueue<uint64_t> q(16);
    constexpr uint64_t kCount = 100000;
    std::thread producer([&] {
        for (uint64_t i = 0; i < kCount; ++i) {
            while (!q.try_push(i))
                std::this_thread::yield();
        }
    });
    for (uint64_t expect = 0; expect < kCount;) {
        uint64_t v;
        if (q.try_pop(v)) {
            ASSERT_EQ(v, expect);
            ++expect;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();
}

TEST(RingQueue, FullProbeTracksOccupancy)
{
    spsc::RingQueue<int, 2> q;
    EXPECT_FALSE(q.full());
    ASSERT_TRUE(q.try_push(1));
    ASSERT_TRUE(q.try_push(2));
    EXPECT_TRUE(q.full());
    int v;
    ASSERT_TRUE(q.try_pop(v));
    EXPECT_FALSE(q.full());
}

TEST(DynMsgRing, VariableSizeMessagesFifo)
{
    spsc::DynMsgRing r(1000); // rounds up to 1024
    EXPECT_EQ(r.capacity_bytes(), 1024u);
    std::vector<uint8_t> out;
    for (uint32_t n : {1u, 7u, 8u, 9u, 100u, 333u}) {
        std::vector<uint8_t> msg(n);
        for (uint32_t i = 0; i < n; ++i)
            msg[i] = static_cast<uint8_t>(n + i);
        ASSERT_TRUE(r.try_push(msg.data(), n));
    }
    for (uint32_t n : {1u, 7u, 8u, 9u, 100u, 333u}) {
        ASSERT_TRUE(r.try_pop(out));
        ASSERT_EQ(out.size(), n);
        for (uint32_t i = 0; i < n; ++i)
            ASSERT_EQ(out[i], static_cast<uint8_t>(n + i));
    }
    EXPECT_TRUE(r.empty());
}

TEST(DynMsgRing, RejectsOversizeAndRecoversWhenDrained)
{
    spsc::DynMsgRing r(256);
    std::vector<uint8_t> big(200, 1);
    EXPECT_FALSE(r.try_push(big.data(), 200)); // > capacity/2
    std::vector<uint8_t> small(40, 2);
    int pushed = 0;
    while (r.try_push(small.data(), 40))
        ++pushed;
    EXPECT_GT(pushed, 2);
    std::vector<uint8_t> out;
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_TRUE(r.try_push(small.data(), 40));
}

// ------------------------------------------------- NodeConfig / status

TEST(ProxyRuntime, SubmitStatusDistinguishesErrors)
{
    proxy::Node n(proxy::NodeConfig{.id = 0});
    proxy::Endpoint& ep = n.create_endpoint();
    uint8_t buf[512] = {0};

    // Unconnected destination node.
    EXPECT_EQ(ep.put(buf, 7, 0, 0, 8),
              proxy::SubmitStatus::kBadTarget);
    EXPECT_EQ(ep.enq(buf, 8, -3, 0), proxy::SubmitStatus::kBadTarget);
    // Inline payload beyond Command::kMaxEnqBytes.
    EXPECT_EQ(ep.enq(buf, 257, 0, 0), proxy::SubmitStatus::kTooLarge);
    EXPECT_EQ(ep.rq_enq(buf, 300, 0, 0),
              proxy::SubmitStatus::kTooLarge);
    // Negative queue / endpoint ids.
    EXPECT_EQ(ep.rq_enq(buf, 8, 0, -1),
              proxy::SubmitStatus::kBadTarget);
    proxy::Flag f{0};
    EXPECT_EQ(ep.rq_deq(buf, 8, 0, -1, &f),
              proxy::SubmitStatus::kBadTarget);
    EXPECT_EQ(ep.enq(buf, 8, 0, -1), proxy::SubmitStatus::kBadTarget);

    // Accepted submissions convert to true, errors to false.
    proxy::SubmitStatus ok = ep.enq(buf, 8, 0, 0);
    EXPECT_EQ(ok, proxy::SubmitStatus::kOk);
    EXPECT_TRUE(ok);
    EXPECT_FALSE(ep.enq(buf, 257, 0, 0));
    EXPECT_STREQ(proxy::SubmitStatus(proxy::SubmitStatus::kQueueFull)
                     .name(),
                 "kQueueFull");
}

TEST(ProxyRuntime, NodeConfigDepthsAreEnforced)
{
    // Tiny command queue: with no proxy draining it, the third
    // loopback submit must report kQueueFull (depth 2 after
    // power-of-two rounding).
    proxy::Node n(proxy::NodeConfig{.id = 0, .cmd_queue_depth = 2});
    proxy::Endpoint& ep = n.create_endpoint();
    uint8_t msg[8] = {1};
    EXPECT_TRUE(ep.enq(msg, 8, 0, 0));
    EXPECT_TRUE(ep.enq(msg, 8, 0, 0));
    EXPECT_EQ(ep.enq(msg, 8, 0, 0), proxy::SubmitStatus::kQueueFull);

    // Once the proxy drains, submission works again and both
    // messages arrive.
    n.start();
    std::vector<uint8_t> out;
    for (int i = 0; i < 2; ++i) {
        while (!ep.try_recv(out))
            std::this_thread::yield();
        ASSERT_EQ(out.size(), 8u);
    }
}

// ------------------------------------------------- multi-proxy sharding

TEST(ProxyRuntime, EndpointShardingFollowsSimulatorRule)
{
    proxy::Node n(proxy::NodeConfig{.id = 0, .num_proxies = 4});
    EXPECT_EQ(n.num_proxies(), 4);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(n.create_endpoint().proxy(), i % 4);
}

TEST(ProxyRuntime, ShardedRoutingDeliversAcrossAllProxyPairs)
{
    // 6 endpoints over 3 proxies on each node: every (sending proxy,
    // receiving proxy) pair carries PUT and ENQ traffic, and the
    // MP_CHECK routing invariants in handle_packet watch that each
    // packet lands on the owner proxy.
    TwoNodes t(3);
    std::vector<proxy::Endpoint*> send{t.ep0}, recv{t.ep1};
    for (int i = 1; i < 6; ++i) {
        send.push_back(&t.n0.create_endpoint());
        recv.push_back(&t.n1.create_endpoint());
    }
    std::vector<std::vector<uint64_t>> dst(
        6, std::vector<uint64_t>(6, 0));
    std::vector<uint16_t> segs(6);
    for (int j = 0; j < 6; ++j) {
        segs[static_cast<size_t>(j)] =
            recv[static_cast<size_t>(j)]->register_segment(
                dst[static_cast<size_t>(j)].data(), 6 * 8);
    }
    t.start();

    // Every sender PUTs a unique value into every receiver's row.
    proxy::Flag done{0};
    uint64_t expect = 0;
    for (int i = 0; i < 6; ++i) {
        for (int j = 0; j < 6; ++j) {
            uint64_t v = static_cast<uint64_t>(100 + i * 10 + j);
            while (!send[static_cast<size_t>(i)]->put(
                &v, 1, segs[static_cast<size_t>(j)],
                static_cast<uint64_t>(i) * 8, 8, nullptr, &done)) {
                std::this_thread::yield();
            }
            proxy::flag_wait_ge(done, ++expect);
        }
    }
    for (int i = 0; i < 6; ++i)
        for (int j = 0; j < 6; ++j)
            ASSERT_EQ(dst[static_cast<size_t>(j)]
                         [static_cast<size_t>(i)],
                      static_cast<uint64_t>(100 + i * 10 + j))
                << "sender " << i << " -> receiver " << j;

    // Every sender ENQs to every receiver; every message arrives on
    // the right ring.
    for (int i = 0; i < 6; ++i) {
        for (int j = 0; j < 6; ++j) {
            uint32_t tag = static_cast<uint32_t>(i * 16 + j);
            while (!send[static_cast<size_t>(i)]->enq(&tag, 4, 1, j))
                std::this_thread::yield();
        }
    }
    for (int j = 0; j < 6; ++j) {
        std::vector<bool> seen(6, false);
        std::vector<uint8_t> out;
        for (int k = 0; k < 6; ++k) {
            while (!recv[static_cast<size_t>(j)]->try_recv(out))
                std::this_thread::yield();
            ASSERT_EQ(out.size(), 4u);
            uint32_t tag;
            std::memcpy(&tag, out.data(), 4);
            ASSERT_EQ(tag % 16, static_cast<uint32_t>(j));
            seen[tag / 16] = true;
        }
        for (int i = 0; i < 6; ++i)
            EXPECT_TRUE(seen[static_cast<size_t>(i)])
                << "receiver " << j << " missed sender " << i;
    }
}

TEST(ProxyRuntime, MultiProxyGetAndRemoteQueues)
{
    // GET replies must route back to the issuing proxy's CCB table;
    // remote queues must land on their owner proxy (qid mod P).
    TwoNodes t(2);
    proxy::Endpoint& ep0b = t.n0.create_endpoint(); // proxy 1
    std::vector<uint64_t> remote(512);
    for (size_t i = 0; i < remote.size(); ++i)
        remote[i] = i * 3 + 1;
    uint16_t seg =
        t.ep1->register_segment(remote.data(), remote.size() * 8);
    int q0 = t.n1.create_queue(); // owner proxy 0
    int q1 = t.n1.create_queue(); // owner proxy 1
    t.start();

    // GETs from endpoints on both proxies of node 0.
    std::vector<uint64_t> local_a(512, 0), local_b(512, 0);
    proxy::Flag fa{0}, fb{0};
    ASSERT_TRUE(t.ep0->get(local_a.data(), 1, seg, 0, 512 * 8, &fa));
    ASSERT_TRUE(ep0b.get(local_b.data(), 1, seg, 0, 512 * 8, &fb));
    proxy::flag_wait_ge(fa, 1);
    proxy::flag_wait_ge(fb, 1);
    EXPECT_EQ(local_a, remote);
    EXPECT_EQ(local_b, remote);

    // Both queues work from both sending proxies. Each queue gets a
    // single sender (FIFO is only guaranteed per sending proxy:
    // cross-proxy arrival order is unordered by design).
    for (int i = 0; i < 8; ++i) {
        int64_t v = 100 + i;
        int qid = (i < 4) ? q0 : q1;
        proxy::Endpoint* ep = (qid == q0) ? t.ep0 : &ep0b;
        while (!ep->rq_enq(&v, sizeof(v), 1, qid))
            std::this_thread::yield();
    }
    for (int qid : {q0, q1}) {
        for (int i = 0; i < 4; ++i) {
            int64_t task = -1;
            proxy::Flag f{0};
            for (;;) {
                while (!t.ep0->rq_deq(&task, sizeof(task), 1, qid,
                                      &f)) {
                    std::this_thread::yield();
                }
                proxy::flag_wait_ge(f, 1);
                if (f.load() > 1)
                    break;
                f.store(0);
                std::this_thread::yield();
            }
            EXPECT_EQ(task, 100 + (qid == q0 ? 0 : 4) + i);
        }
    }
}

TEST(ProxyRuntime, CrossProxyRemoteQueueAtomicity)
{
    // Two user threads on different proxies of node 0 hammer one
    // remote queue on node 1 concurrently; the owner proxy must
    // serialize the appends so every message survives exactly once.
    TwoNodes t(2);
    proxy::Endpoint& ep0b = t.n0.create_endpoint(); // proxy 1
    int qid = t.n1.create_queue();
    t.start();
    constexpr int kPerThread = 50;
    auto producer = [&](proxy::Endpoint* ep, int64_t base) {
        for (int i = 0; i < kPerThread; ++i) {
            int64_t v = base + i;
            while (!ep->rq_enq(&v, sizeof(v), 1, qid))
                std::this_thread::yield();
        }
    };
    std::thread t1([&] { producer(t.ep0, 1000); });
    std::thread t2([&] { producer(&ep0b, 2000); });
    t1.join();
    t2.join();
    // t1 bound ep0's command queue as producer; hand it back to the
    // main thread before draining (the documented handoff pattern).
    t.ep0->release_ownership();

    std::vector<int> seen(2 * kPerThread, 0);
    int got = 0, empties = 0;
    while (got < 2 * kPerThread && empties < 200000) {
        int64_t task = -1;
        proxy::Flag f{0};
        while (!t.ep0->rq_deq(&task, sizeof(task), 1, qid, &f))
            std::this_thread::yield();
        proxy::flag_wait_ge(f, 1);
        if (f.load() > 1) {
            int idx = static_cast<int>(task >= 2000
                                           ? kPerThread + task - 2000
                                           : task - 1000);
            ASSERT_GE(idx, 0);
            ASSERT_LT(idx, 2 * kPerThread);
            seen[static_cast<size_t>(idx)]++;
            ++got;
        } else {
            ++empties;
            std::this_thread::yield();
        }
    }
    ASSERT_EQ(got, 2 * kPerThread);
    for (int i = 0; i < 2 * kPerThread; ++i)
        EXPECT_EQ(seen[static_cast<size_t>(i)], 1) << i;
}

TEST(ProxyRuntime, IntraNodeCrossProxyTraffic)
{
    // One node, four proxies: loopback PUT/ENQ between endpoints on
    // different proxies exercises the intra-node channel matrix.
    proxy::Node n(proxy::NodeConfig{.id = 0, .num_proxies = 4});
    std::vector<proxy::Endpoint*> eps;
    for (int i = 0; i < 4; ++i)
        eps.push_back(&n.create_endpoint());
    std::vector<std::vector<uint64_t>> dst(
        4, std::vector<uint64_t>(4, 0));
    std::vector<uint16_t> segs(4);
    for (int j = 0; j < 4; ++j) {
        segs[static_cast<size_t>(j)] =
            eps[static_cast<size_t>(j)]->register_segment(
                dst[static_cast<size_t>(j)].data(), 4 * 8);
    }
    n.start();
    proxy::Flag done{0};
    uint64_t expect = 0;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            uint64_t v = static_cast<uint64_t>(10 * i + j);
            while (!eps[static_cast<size_t>(i)]->put(
                &v, 0, segs[static_cast<size_t>(j)],
                static_cast<uint64_t>(i) * 8, 8, nullptr, &done)) {
                std::this_thread::yield();
            }
            proxy::flag_wait_ge(done, ++expect);
        }
    }
    for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j)
            EXPECT_EQ(dst[static_cast<size_t>(j)]
                         [static_cast<size_t>(i)],
                      static_cast<uint64_t>(10 * i + j));

    // ENQ across proxies on the same node.
    for (int j = 1; j < 4; ++j) {
        uint32_t tag = static_cast<uint32_t>(j);
        while (!eps[0]->enq(&tag, 4, 0, j))
            std::this_thread::yield();
        std::vector<uint8_t> out;
        while (!eps[static_cast<size_t>(j)]->try_recv(out))
            std::this_thread::yield();
        ASSERT_EQ(out.size(), 4u);
        uint32_t got;
        std::memcpy(&got, out.data(), 4);
        EXPECT_EQ(got, static_cast<uint32_t>(j));
    }
}

TEST(ProxyRuntime, PerProxyStatsAccumulate)
{
    TwoNodes t(2);
    proxy::Endpoint& ep0b = t.n0.create_endpoint(); // proxy 1
    std::vector<uint8_t> dst(64, 0);
    uint16_t seg = t.ep1->register_segment(dst.data(), dst.size());
    t.start();
    proxy::Flag done{0};
    uint8_t v[8] = {1};
    // One PUT from each of node 0's proxies.
    ASSERT_TRUE(t.ep0->put(v, 1, seg, 0, 8, nullptr, &done));
    ASSERT_TRUE(ep0b.put(v, 1, seg, 8, 8, nullptr, &done));
    proxy::flag_wait_ge(done, 2);
    EXPECT_GE(t.n0.proxy_stats(0).commands.load(), 1u);
    EXPECT_GE(t.n0.proxy_stats(1).commands.load(), 1u);
    auto s = t.n0.stats();
    EXPECT_EQ(s.commands,
              t.n0.proxy_stats(0).commands.load() +
                  t.n0.proxy_stats(1).commands.load());
    EXPECT_GT(s.polls, 0u);
    t.n0.stop();
    t.n1.stop();
    // Idle transitions were recorded once traffic stopped.
    EXPECT_GE(t.n0.stats().idle_transitions, 1u);
}

TEST(ProxyRuntime, TwoNodeTwoProxyStress)
{
    // 2 nodes x 2 proxies, 4 user threads per node mixing PUT and
    // ENQ traffic concurrently. Counts stay modest so the test is
    // TSan-friendly (runtime_test carries the sanitize-ok label).
    TwoNodes t(2);
    std::vector<proxy::Endpoint*> e0{t.ep0}, e1{t.ep1};
    for (int i = 1; i < 4; ++i) {
        e0.push_back(&t.n0.create_endpoint());
        e1.push_back(&t.n1.create_endpoint());
    }
    constexpr int kRounds = 100;
    constexpr uint32_t kWords = 32;
    std::vector<std::vector<uint64_t>> dst(
        8, std::vector<uint64_t>(kWords, 0));
    std::vector<uint16_t> segs(8);
    for (int i = 0; i < 4; ++i) {
        segs[static_cast<size_t>(i)] =
            e1[static_cast<size_t>(i)]->register_segment(
                dst[static_cast<size_t>(i)].data(), kWords * 8);
        segs[static_cast<size_t>(4 + i)] =
            e0[static_cast<size_t>(i)]->register_segment(
                dst[static_cast<size_t>(4 + i)].data(), kWords * 8);
    }
    t.start();

    auto worker = [&](proxy::Endpoint* ep, int peer, uint16_t seg,
                      int peer_user, uint64_t tag) {
        std::vector<uint64_t> buf(kWords);
        proxy::Flag lsync{0}, rsync{0};
        uint64_t puts = 0;
        for (int r = 0; r < kRounds; ++r) {
            if (r % 4 == 0) {
                uint32_t m = static_cast<uint32_t>(tag + r);
                while (!ep->enq(&m, 4, peer, peer_user))
                    std::this_thread::yield();
            } else {
                for (auto& w : buf)
                    w = tag + static_cast<uint64_t>(r);
                while (!ep->put(buf.data(), peer, seg, 0, kWords * 8,
                                &lsync, &rsync)) {
                    std::this_thread::yield();
                }
                proxy::flag_wait_ge(lsync, ++puts);
            }
        }
        // Wait for remote completion of every PUT: the destination
        // arrays go out of scope when the test ends, so no packet
        // may still be in flight.
        proxy::flag_wait_ge(rsync, puts);
    };
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
        threads.emplace_back(worker, e0[static_cast<size_t>(i)], 1,
                             segs[static_cast<size_t>(i)], i,
                             1000 * (i + 1));
        threads.emplace_back(worker, e1[static_cast<size_t>(i)], 0,
                             segs[static_cast<size_t>(4 + i)], i,
                             5000 * (i + 1));
    }
    for (auto& th : threads)
        th.join();

    // Drain the ENQ messages: each endpoint received kRounds/4 from
    // its peer.
    for (int i = 0; i < 4; ++i) {
        std::vector<uint8_t> out;
        for (int k = 0; k < kRounds / 4; ++k) {
            while (!e0[static_cast<size_t>(i)]->try_recv(out))
                std::this_thread::yield();
            ASSERT_EQ(out.size(), 4u);
        }
        for (int k = 0; k < kRounds / 4; ++k) {
            while (!e1[static_cast<size_t>(i)]->try_recv(out))
                std::this_thread::yield();
            ASSERT_EQ(out.size(), 4u);
        }
    }
    EXPECT_EQ(t.n0.stats().faults, 0u);
    EXPECT_EQ(t.n1.stats().faults, 0u);
    EXPECT_EQ(t.n0.stats().enq_drops, 0u);
    EXPECT_EQ(t.n1.stats().enq_drops, 0u);
}

TEST(ProxyRuntime, MultiProxyWorksWithScanAllAndBitVector)
{
    for (auto mode :
         {proxy::PollMode::kScanAll, proxy::PollMode::kBitVector}) {
        for (int p : {1, 2, 4}) {
            proxy::Node n0(proxy::NodeConfig{
                .id = 0, .poll_mode = mode, .num_proxies = p});
            proxy::Node n1(proxy::NodeConfig{
                .id = 1, .poll_mode = mode, .num_proxies = p});
            std::vector<proxy::Endpoint*> eps;
            for (int i = 0; i < 2 * p; ++i)
                eps.push_back(&n0.create_endpoint());
            proxy::Endpoint& sink = n1.create_endpoint();
            std::vector<uint64_t> slots(eps.size(), 0);
            uint16_t seg =
                sink.register_segment(slots.data(), slots.size() * 8);
            benchwire::wire(n0, n1);
            n0.start();
            n1.start();
            proxy::Flag rsync{0};
            for (size_t i = 0; i < eps.size(); ++i) {
                uint64_t v = 1 + i;
                while (!eps[i]->put(&v, 1, seg, i * 8, 8, nullptr,
                                    &rsync)) {
                    std::this_thread::yield();
                }
                proxy::flag_wait_ge(rsync, i + 1);
            }
            for (size_t i = 0; i < eps.size(); ++i)
                ASSERT_EQ(slots[i], 1 + i)
                    << "mode " << static_cast<int>(mode) << " P=" << p;
        }
    }
}

TEST(ProxyRuntime, BackoffStateMachineWalksStages)
{
    proxy::PollParams pp(/*spin=*/3, /*pause=*/2);
    proxy::Backoff bo(pp);
    for (int i = 0; i < 5; ++i) {
        bo.idle();
        EXPECT_FALSE(bo.yielding()) << i;
    }
    bo.idle();
    EXPECT_TRUE(bo.yielding());
    bo.reset();
    bo.idle();
    EXPECT_FALSE(bo.yielding());
}

TEST(ProxyRuntime, FlagWaitGeHonorsBackoffParams)
{
    proxy::Flag f{0};
    std::thread setter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        f.fetch_add(3, std::memory_order_release);
    });
    // Sleep-stage configuration: must still observe the flag.
    proxy::flag_wait_ge(f, 3, proxy::PollParams(2, 2, 4, 100));
    EXPECT_GE(f.load(), 3u);
    setter.join();
}

TEST(ProxyRuntime, ScanAllModeStillWorks)
{
    proxy::Node n0(proxy::NodeConfig{
        .id = 0, .poll_mode = proxy::PollMode::kScanAll});
    proxy::Node n1(proxy::NodeConfig{
        .id = 1, .poll_mode = proxy::PollMode::kScanAll});
    proxy::Endpoint& a = n0.create_endpoint();
    proxy::Endpoint& b = n1.create_endpoint();
    std::vector<uint8_t> dst(64, 0);
    uint16_t seg = b.register_segment(dst.data(), dst.size());
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();
    uint8_t v[8] = {5, 4, 3, 2, 1, 0, 9, 8};
    proxy::Flag rsync{0};
    ASSERT_TRUE(a.put(v, 1, seg, 0, 8, nullptr, &rsync));
    proxy::flag_wait_ge(rsync, 1);
    EXPECT_EQ(dst[0], 5);
    EXPECT_EQ(dst[7], 8);
}

// --------------------- placement, migration & work stealing

TEST(ProxyRuntime, MigrationRebindsOwnerAndDelivers)
{
    // Loopback ENQ traffic to an endpoint before, during, and after
    // an explicit migration: every message arrives exactly once, in
    // order, and the shard map settles on the new owner.
    proxy::Node n(proxy::NodeConfig{.id = 0, .num_proxies = 2});
    proxy::Endpoint& src = n.create_endpoint(); // ep 0 -> proxy 0
    proxy::Endpoint& dst = n.create_endpoint(); // ep 1 -> proxy 1
    n.start();
    EXPECT_EQ(dst.proxy(), 1);

    auto send_burst = [&](uint32_t base, int count) {
        for (int i = 0; i < count; ++i) {
            uint32_t tag = base + static_cast<uint32_t>(i);
            while (!src.enq(&tag, 4, 0, dst.id()))
                std::this_thread::yield();
        }
    };
    auto recv_burst = [&](uint32_t base, int count) {
        std::vector<uint8_t> out;
        for (int i = 0; i < count; ++i) {
            while (!dst.try_recv(out))
                std::this_thread::yield();
            ASSERT_EQ(out.size(), 4u);
            uint32_t tag;
            std::memcpy(&tag, out.data(), 4);
            ASSERT_EQ(tag, base + static_cast<uint32_t>(i));
        }
    };
    send_burst(100, 32);
    n.migrate_endpoint(dst.id(), 0);
    send_burst(200, 32); // posted while the handoff is in flight
    recv_burst(100, 32);
    recv_burst(200, 32);

    // The handoff settles: shard map points at proxy 0 and the
    // migration counter ticks ...
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (dst.proxy() != 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "migration never completed";
        std::this_thread::yield();
    }
    EXPECT_GE(n.stats().migrations, 1u);

    // ... and traffic keeps flowing under the new owner.
    send_burst(300, 32);
    recv_burst(300, 32);
}

TEST(ProxyRuntime, MigrateEndpointIgnoresBadArguments)
{
    proxy::Node n(proxy::NodeConfig{.id = 0, .num_proxies = 2});
    proxy::Endpoint& ep = n.create_endpoint();
    n.start();
    n.migrate_endpoint(-1, 1);       // bad endpoint
    n.migrate_endpoint(ep.id(), -1); // bad proxy
    n.migrate_endpoint(ep.id(), 7);  // proxy out of range
    n.migrate_endpoint(ep.id(), 0);  // already the owner: no-op
    uint32_t v = 42;
    while (!ep.enq(&v, 4, 0, ep.id()))
        std::this_thread::yield();
    std::vector<uint8_t> out;
    while (!ep.try_recv(out))
        std::this_thread::yield();
    EXPECT_EQ(n.stats().migrations, 0u);
}

TEST(ProxyRuntime, RebalancerMovesHotEndpoint)
{
    // Four endpoints over two proxies, all traffic through proxy 0's
    // two endpoints: the work-stealing pass must migrate one of them
    // to the idle proxy.
    proxy::NodeConfig cfg{.id = 0, .num_proxies = 2};
    cfg.rebalance.enabled = true;
    cfg.rebalance.window_polls = 256;
    cfg.rebalance.min_cmds = 32;
    cfg.rebalance.min_ratio = 2.0;
    proxy::Node n(cfg);
    std::vector<proxy::Endpoint*> eps;
    for (int i = 0; i < 4; ++i)
        eps.push_back(&n.create_endpoint());
    n.start();

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    std::vector<uint8_t> out;
    uint32_t v = 7;
    while (n.stats().migrations == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "rebalancer never moved an endpoint";
        for (int rep = 0; rep < 64; ++rep) {
            while (!eps[0]->enq(&v, 4, 0, eps[0]->id()))
                std::this_thread::yield();
            while (!eps[2]->enq(&v, 4, 0, eps[2]->id()))
                std::this_thread::yield();
        }
        while (eps[0]->try_recv(out)) {
        }
        while (eps[2]->try_recv(out)) {
        }
    }
    // The steal came off the hot proxy: one of its endpoints now
    // lives on proxy 1 ...
    const auto settle =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (eps[0]->proxy() == 0 && eps[2]->proxy() == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), settle)
            << "migration counted but ownership never changed";
        std::this_thread::yield();
    }
    // ... and both endpoints still deliver afterwards.
    for (proxy::Endpoint* ep : {eps[0], eps[2]}) {
        while (!ep->enq(&v, 4, 0, ep->id()))
            std::this_thread::yield();
        while (!ep->try_recv(out))
            std::this_thread::yield();
        EXPECT_EQ(out.size(), 4u);
    }
}

TEST(ProxyRuntime, CompletionBatchingDeliversExactlyOnce)
{
    // Default flush budget on: a PUT stream with both flags set must
    // complete each flag exactly once per operation, and the counter
    // shows the deferral machinery actually engaged.
    TwoNodes t;
    std::vector<uint8_t> dst(64 * 1024, 0);
    uint16_t seg = t.ep1->register_segment(dst.data(), dst.size());
    t.start();
    constexpr int kPuts = 64;
    std::vector<uint8_t> src(1024, 0x2d);
    proxy::Flag lsync{0}, rsync{0};
    for (int i = 0; i < kPuts; ++i) {
        while (!t.ep0->put(src.data(), 1, seg,
                           static_cast<uint64_t>(i) * src.size(),
                           static_cast<uint32_t>(src.size()),
                           &lsync, &rsync)) {
            std::this_thread::yield();
        }
    }
    proxy::flag_wait_ge(lsync, kPuts);
    proxy::flag_wait_ge(rsync, kPuts);
    EXPECT_EQ(lsync.load(), static_cast<uint64_t>(kPuts));
    EXPECT_EQ(rsync.load(), static_cast<uint64_t>(kPuts));
    EXPECT_GT(t.n0.stats().completions_batched +
                  t.n1.stats().completions_batched,
              0u);
}

TEST(ProxyRuntime, CompletionFlushZeroDisablesBatching)
{
    proxy::NodeConfig c0{.id = 0};
    proxy::NodeConfig c1{.id = 1};
    c0.completion_flush = 0;
    c1.completion_flush = 0;
    proxy::Node n0(c0), n1(c1);
    proxy::Endpoint& a = n0.create_endpoint();
    proxy::Endpoint& b = n1.create_endpoint();
    std::vector<uint8_t> dst(4096, 0);
    uint16_t seg = b.register_segment(dst.data(), dst.size());
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();
    std::vector<uint8_t> src(512, 0x3c);
    proxy::Flag rsync{0};
    for (int i = 0; i < 8; ++i) {
        while (!a.put(src.data(), 1, seg, 0,
                      static_cast<uint32_t>(src.size()), nullptr,
                      &rsync)) {
            std::this_thread::yield();
        }
    }
    proxy::flag_wait_ge(rsync, 8);
    EXPECT_EQ(n0.stats().completions_batched +
                  n1.stats().completions_batched,
              0u);
}

TEST(ProxyRuntime, ExplicitPinningSmoke)
{
    // Pinning both proxies to CPU 0 is valid on every host; traffic
    // must flow exactly as unpinned (placement is an optimization,
    // never a correctness requirement).
    proxy::NodeConfig cfg{.id = 0, .num_proxies = 2};
    cfg.placement.pin = proxy::NodeConfig::Placement::Pin::kExplicit;
    cfg.placement.proxy_cpus = {0};
    proxy::Node n(cfg);
    proxy::Endpoint& a = n.create_endpoint();
    proxy::Endpoint& b = n.create_endpoint();
    n.start();
    uint32_t tag = 11;
    while (!a.enq(&tag, 4, 0, b.id()))
        std::this_thread::yield();
    std::vector<uint8_t> out;
    while (!b.try_recv(out))
        std::this_thread::yield();
    EXPECT_EQ(out.size(), 4u);
}

TEST(ProxyRuntime, AutoPinningSmoke)
{
    // kAuto resolves CPUs through topo::reserve_cpus (a no-op on
    // single-CPU hosts); either way the node runs normally.
    proxy::NodeConfig cfg{.id = 0, .num_proxies = 2};
    cfg.placement.pin = proxy::NodeConfig::Placement::Pin::kAuto;
    proxy::Node n(cfg);
    proxy::Endpoint& a = n.create_endpoint();
    proxy::Endpoint& b = n.create_endpoint();
    n.start();
    uint32_t tag = 13;
    while (!a.enq(&tag, 4, 0, b.id()))
        std::this_thread::yield();
    std::vector<uint8_t> out;
    while (!b.try_recv(out))
        std::this_thread::yield();
    EXPECT_EQ(out.size(), 4u);
}

TEST(Observability, SnapshotExposesUtilizationAndOwnership)
{
    proxy::Node n(proxy::NodeConfig{.id = 0, .num_proxies = 3});
    std::vector<proxy::Endpoint*> eps;
    for (int i = 0; i < 5; ++i)
        eps.push_back(&n.create_endpoint());
    n.start();
    uint32_t v = 3;
    std::vector<uint8_t> out;
    for (proxy::Endpoint* ep : eps) {
        while (!ep->enq(&v, 4, 0, ep->id()))
            std::this_thread::yield();
        while (!ep->try_recv(out))
            std::this_thread::yield();
    }

    const proxy::NodeSnapshot snap = n.stats_snapshot();
    ASSERT_EQ(snap.utilization.size(), 3u);
    ASSERT_EQ(snap.endpoints_owned.size(), 3u);
    for (double u : snap.utilization) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
    uint32_t owned_total = 0;
    for (uint32_t c : snap.endpoints_owned)
        owned_total += c;
    EXPECT_EQ(owned_total, 5u);
    // Default sharding: 5 endpoints over 3 proxies = 2/2/1.
    EXPECT_EQ(snap.endpoints_owned[0], 2u);
    EXPECT_EQ(snap.endpoints_owned[1], 2u);
    EXPECT_EQ(snap.endpoints_owned[2], 1u);

    std::ostringstream os;
    n.dump_json(os);
    const std::string j = os.str();
    EXPECT_NE(j.find("\"utilization\":["), std::string::npos) << j;
    EXPECT_NE(j.find("\"endpoints_owned\":[2,2,1]"),
              std::string::npos)
        << j;
}

// --------------------------------------- pooled wire path / backpressure

TEST(ProxyWirePath, SteadyStateUsesPoolOnly)
{
    // Default-sized pools: a realistic PUT/ENQ/GET mix must never
    // touch the heap (the PR's zero-allocation criterion) and the
    // ack-coalescing counter must reflect the multi-fragment PUTs.
    proxy::Node n0(proxy::NodeConfig{.id = 0});
    proxy::Node n1(proxy::NodeConfig{.id = 1});
    proxy::Endpoint& a = n0.create_endpoint();
    proxy::Endpoint& b = n1.create_endpoint();
    std::vector<uint8_t> remote(64 * 1024, 0);
    uint16_t seg = b.register_segment(remote.data(), remote.size());
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    std::vector<uint8_t> src(4096);
    std::iota(src.begin(), src.end(), 0);
    proxy::Flag rsync{0};
    proxy::Flag lsync{0};
    for (int i = 0; i < 100; ++i) {
        while (!a.put(src.data(), 1, seg, 0, 4096, nullptr, &rsync))
            std::this_thread::yield();
        while (!a.enq(src.data(), 64, 1, b.id()))
            std::this_thread::yield();
    }
    proxy::flag_wait_ge(rsync, 100);
    std::vector<uint8_t> dst(4096);
    while (!a.get(dst.data(), 1, seg, 0, 4096, &lsync))
        std::this_thread::yield();
    proxy::flag_wait_ge(lsync, 1);
    EXPECT_EQ(dst, src);
    std::vector<uint8_t> out;
    for (int i = 0; i < 100; ++i) {
        while (!b.try_recv(out))
            std::this_thread::yield();
    }
    n0.stop();
    n1.stop();

    EXPECT_EQ(n0.stats().pool_misses, 0u);
    EXPECT_EQ(n1.stats().pool_misses, 0u);
    EXPECT_GT(n0.stats().pool_hits, 0u);
    EXPECT_GT(n1.stats().pool_hits, 0u); // GET reply fragments
    // 100 PUTs x 4 fragments: 3 coalesced acks each; the GET reply
    // contributes 3 more on node 1.
    EXPECT_EQ(n0.stats().acks_coalesced, 300u);
    EXPECT_EQ(n1.stats().acks_coalesced, 3u);
}

TEST(ProxyWirePath, PoolDisabledFallsBackToHeap)
{
    // packet_pool_size = 0: every wire packet is a heap fallback;
    // data and completion semantics must be unchanged.
    proxy::Node n0(
        proxy::NodeConfig{.id = 0, .packet_pool_size = 0});
    proxy::Node n1(
        proxy::NodeConfig{.id = 1, .packet_pool_size = 0});
    proxy::Endpoint& a = n0.create_endpoint();
    proxy::Endpoint& b = n1.create_endpoint();
    std::vector<uint8_t> remote(64 * 1024, 0);
    uint16_t seg = b.register_segment(remote.data(), remote.size());
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    std::vector<uint8_t> src(65536);
    std::iota(src.begin(), src.end(), 1);
    proxy::Flag rsync{0};
    while (!a.put(src.data(), 1, seg, 0,
                  static_cast<uint32_t>(src.size()), nullptr, &rsync))
        std::this_thread::yield();
    proxy::flag_wait_ge(rsync, 1);
    n0.stop();
    n1.stop();

    EXPECT_EQ(remote, src);
    EXPECT_EQ(rsync.load(), 1u); // one completion for 64 fragments
    EXPECT_EQ(n0.stats().pool_hits, 0u);
    EXPECT_EQ(n0.stats().pool_misses, 64u);
    EXPECT_EQ(n0.stats().acks_coalesced, 63u);
    EXPECT_EQ(n0.stats().faults, 0u);
    EXPECT_EQ(n1.stats().faults, 0u);
}

TEST(ProxyWirePath, UndersizedPoolSpillsToHeapWithoutLoss)
{
    // A 4-packet pool against 64-fragment PUTs: constant pool
    // exhaustion must degrade to heap allocation, never to drops,
    // deadlock, or duplicated completions.
    proxy::Node n0(
        proxy::NodeConfig{.id = 0, .packet_pool_size = 4});
    proxy::Node n1(
        proxy::NodeConfig{.id = 1, .packet_pool_size = 4});
    proxy::Endpoint& a = n0.create_endpoint();
    proxy::Endpoint& b = n1.create_endpoint();
    std::vector<uint8_t> remote(64 * 1024, 0);
    uint16_t seg = b.register_segment(remote.data(), remote.size());
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    std::vector<uint8_t> src(65536);
    std::iota(src.begin(), src.end(), 7);
    proxy::Flag rsync{0};
    constexpr int kPuts = 8;
    for (int i = 0; i < kPuts; ++i) {
        while (!a.put(src.data(), 1, seg, 0,
                      static_cast<uint32_t>(src.size()), nullptr,
                      &rsync))
            std::this_thread::yield();
    }
    proxy::flag_wait_ge(rsync, kPuts);
    n0.stop();
    n1.stop();

    EXPECT_EQ(remote, src);
    EXPECT_EQ(rsync.load(), static_cast<uint64_t>(kPuts));
    EXPECT_GT(n0.stats().pool_misses, 0u);
    EXPECT_EQ(n0.stats().faults, 0u);
    EXPECT_EQ(n1.stats().faults, 0u);
}

TEST(ProxyWirePath, TinyChannelDepthBackpressureNoDeadlock)
{
    // channel_depth = 2 forces the full-output-ring deferral path
    // constantly, in both directions at once, with GETs mixed in so
    // request packets get deferred while the sender stalls. Nothing
    // may drop, deadlock, or complete more than exactly once.
    auto mk = [](int id) {
        return proxy::NodeConfig{.id = id,
                                 .channel_depth = 2,
                                 .packet_pool_size = 8};
    };
    proxy::Node n0(mk(0));
    proxy::Node n1(mk(1));
    proxy::Endpoint& a = n0.create_endpoint();
    proxy::Endpoint& b = n1.create_endpoint();
    constexpr uint32_t kLen = 64 * 1024;
    std::vector<uint8_t> mem0(kLen, 0), mem1(kLen, 0);
    uint16_t seg0 = a.register_segment(mem0.data(), kLen);
    uint16_t seg1 = b.register_segment(mem1.data(), kLen);
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    constexpr int kPuts = 4;
    auto side = [](proxy::Endpoint& ep, int dst_node,
                   uint16_t dst_seg, uint8_t fill) {
        std::vector<uint8_t> src(kLen, fill);
        std::vector<uint8_t> got(kLen, 0);
        proxy::Flag rsync{0}, lsync{0};
        for (int i = 0; i < kPuts; ++i) {
            while (!ep.put(src.data(), dst_node, dst_seg, 0, kLen,
                           nullptr, &rsync))
                std::this_thread::yield();
        }
        while (!ep.get(got.data(), dst_node, dst_seg, 0, kLen, &lsync))
            std::this_thread::yield();
        proxy::flag_wait_ge(rsync, kPuts);
        proxy::flag_wait_ge(lsync, 1);
        EXPECT_EQ(rsync.load(), static_cast<uint64_t>(kPuts));
        EXPECT_EQ(lsync.load(), 1u);
        EXPECT_EQ(got, src); // GET is FIFO-ordered after the PUTs
    };
    std::thread t1([&] { side(b, 0, seg0, 0xb1); });
    side(a, 1, seg1, 0xa0);
    t1.join();
    n0.stop();
    n1.stop();

    EXPECT_EQ(std::vector<uint8_t>(kLen, 0xa0), mem1);
    EXPECT_EQ(std::vector<uint8_t>(kLen, 0xb1), mem0);
    EXPECT_EQ(n0.stats().faults, 0u);
    EXPECT_EQ(n1.stats().faults, 0u);
    EXPECT_EQ(n0.stats().enq_drops, 0u);
    EXPECT_EQ(n1.stats().enq_drops, 0u);
}

TEST(ProxyWirePath, TinyCmdQueueRetryDeliversAllInOrder)
{
    // cmd_queue_depth = 2 under a 500-message burst: submissions hit
    // kQueueFull, the retry loop absorbs them, and the ENQ stream
    // still arrives complete and in FIFO order.
    proxy::Node n0(
        proxy::NodeConfig{.id = 0, .cmd_queue_depth = 2});
    proxy::Node n1(
        proxy::NodeConfig{.id = 1, .cmd_queue_depth = 2});
    proxy::Endpoint& a = n0.create_endpoint();
    proxy::Endpoint& b = n1.create_endpoint();
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    constexpr uint32_t kMsgs = 500;
    std::thread consumer([&] {
        std::vector<uint8_t> out;
        for (uint32_t i = 0; i < kMsgs; ++i) {
            while (!b.try_recv(out))
                std::this_thread::yield();
            ASSERT_EQ(out.size(), sizeof(uint32_t));
            uint32_t v;
            std::memcpy(&v, out.data(), sizeof(v));
            ASSERT_EQ(v, i);
        }
    });
    for (uint32_t i = 0; i < kMsgs; ++i) {
        while (!a.enq(&i, sizeof(i), 1, b.id()))
            std::this_thread::yield();
    }
    consumer.join();
    n0.stop();
    n1.stop();
    EXPECT_EQ(n1.stats().enq_drops, 0u);
}

TEST(ProxyWirePath, NewCountersSumAcrossProxies)
{
    // P=2 with traffic through both proxies: NodeStats must sum
    // pool_hits/pool_misses/acks_coalesced over the proxies and take
    // the max of batch_max.
    proxy::Node n0(
        proxy::NodeConfig{.id = 0, .num_proxies = 2});
    proxy::Node n1(
        proxy::NodeConfig{.id = 1, .num_proxies = 2});
    proxy::Endpoint& a0 = n0.create_endpoint(); // proxy 0
    proxy::Endpoint& a1 = n0.create_endpoint(); // proxy 1
    proxy::Endpoint& b0 = n1.create_endpoint();
    proxy::Endpoint& b1 = n1.create_endpoint();
    constexpr uint32_t kLen = 8192;
    std::vector<uint8_t> m0(kLen), m1(kLen);
    uint16_t sega = b0.register_segment(m0.data(), kLen); // seg 0
    uint16_t segb = b1.register_segment(m1.data(), kLen); // seg 1
    benchwire::wire(n0, n1);
    // Queue commands on both endpoints before start() so the first
    // drain runs a deep burst (batch_max > 1 on both proxies).
    std::vector<uint8_t> src(kLen, 0x3c);
    proxy::Flag rsync{0};
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(a0.put(src.data(), 1, sega, 0, kLen, nullptr,
                           &rsync));
        ASSERT_TRUE(a1.put(src.data(), 1, segb, 0, kLen, nullptr,
                           &rsync));
    }
    n0.start();
    n1.start();
    proxy::flag_wait_ge(rsync, 8);
    n0.stop();
    n1.stop();

    const proxy::ProxyStats& p0 = n0.proxy_stats(0);
    const proxy::ProxyStats& p1 = n0.proxy_stats(1);
    proxy::NodeStats total = n0.stats();
    EXPECT_EQ(total.pool_hits,
              p0.pool_hits.load() + p1.pool_hits.load());
    EXPECT_EQ(total.pool_misses,
              p0.pool_misses.load() + p1.pool_misses.load());
    EXPECT_EQ(total.acks_coalesced,
              p0.acks_coalesced.load() + p1.acks_coalesced.load());
    EXPECT_EQ(total.batch_max,
              std::max(p0.batch_max.load(), p1.batch_max.load()));
    // 8 KB = 8 fragments: 7 coalesced acks per PUT, 4 PUTs per proxy.
    EXPECT_EQ(p0.acks_coalesced.load(), 28u);
    EXPECT_EQ(p1.acks_coalesced.load(), 28u);
    EXPECT_EQ(total.pool_misses, 0u);
    // 4 commands were queued per endpoint before the proxies woke.
    EXPECT_GE(total.batch_max, 4u);
    EXPECT_EQ(std::vector<uint8_t>(kLen, 0x3c), m0);
    EXPECT_EQ(std::vector<uint8_t>(kLen, 0x3c), m1);
}

TEST(ProxyWirePath, MultiFragmentPutCompletesExactlyOnce)
{
    // The coalescing rule: only the final fragment carries the rsync
    // cookie, so a 10-fragment PUT fires rsync exactly once and
    // counts exactly 9 saved acks.
    proxy::Node n0(proxy::NodeConfig{.id = 0});
    proxy::Node n1(proxy::NodeConfig{.id = 1});
    proxy::Endpoint& a = n0.create_endpoint();
    proxy::Endpoint& b = n1.create_endpoint();
    std::vector<uint8_t> remote(10240, 0);
    uint16_t seg = b.register_segment(remote.data(), remote.size());
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();

    std::vector<uint8_t> src(10240);
    std::iota(src.begin(), src.end(), 3);
    proxy::Flag rsync{0};
    ASSERT_TRUE(a.put(src.data(), 1, seg, 0,
                      static_cast<uint32_t>(src.size()), nullptr,
                      &rsync));
    proxy::flag_wait_ge(rsync, 1);
    n0.stop();
    n1.stop();
    EXPECT_EQ(rsync.load(), 1u);
    EXPECT_EQ(remote, src);
    EXPECT_EQ(n0.stats().acks_coalesced, 9u);
}

// --------------------------------------------------- observability layer

/// TwoNodes with stage tracing + histograms on from construction.
struct TracedPair
{
    TracedPair()
        : n0(proxy::NodeConfig{.id = 0, .obs = {true, 4096}}),
          n1(proxy::NodeConfig{.id = 1, .obs = {true, 4096}})
    {
        ep0 = &n0.create_endpoint();
        ep1 = &n1.create_endpoint();
        benchwire::wire(n0, n1);
    }

    void
    start()
    {
        n0.start();
        n1.start();
    }

    proxy::Node n0, n1;
    proxy::Endpoint* ep0;
    proxy::Endpoint* ep1;
};

/// Events of one operation id across both nodes, sorted by time.
std::vector<obs::TraceEvent>
events_of(const std::vector<obs::TraceEvent>& all, uint64_t tid)
{
    std::vector<obs::TraceEvent> out;
    for (const obs::TraceEvent& e : all) {
        if (e.tid == tid)
            out.push_back(e);
    }
    // Tiebreak equal timestamps by stage: the causal chain guarantees
    // non-decreasing time in stage order, so this keys on causality.
    std::sort(out.begin(), out.end(),
              [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                  return a.ts_ns != b.ts_ns
                             ? a.ts_ns < b.ts_ns
                             : a.stage < b.stage;
              });
    return out;
}

TEST(Observability, TracedGetProducesAllStagesMonotone)
{
    TracedPair t;
    std::vector<uint32_t> remote(16, 0xfeedu);
    uint16_t seg = t.ep1->register_segment(
        remote.data(), remote.size() * sizeof(uint32_t));
    uint32_t local = 0;
    proxy::Flag lsync{0};
    t.start();
    ASSERT_TRUE(t.ep0->get(&local, 1, seg, 0, sizeof(local), &lsync));
    proxy::flag_wait_ge(lsync, 1);
    t.n0.stop();
    t.n1.stop();
    EXPECT_EQ(local, 0xfeedu);

    // Merge both nodes' rings: the GET's seven stages span them.
    std::vector<obs::TraceEvent> all = t.n0.trace_snapshot();
    for (const obs::TraceEvent& e : t.n1.trace_snapshot())
        all.push_back(e);
    ASSERT_FALSE(all.empty());
    const uint64_t tid = all.front().tid;
    EXPECT_NE(tid, 0u);
    std::vector<obs::TraceEvent> evs = events_of(all, tid);
    ASSERT_EQ(evs.size(), static_cast<size_t>(obs::kNumStages));
    // Causal order == time order (both nodes share one steady
    // clock), and every stage appears exactly once.
    for (int i = 0; i < obs::kNumStages; ++i) {
        EXPECT_EQ(evs[static_cast<size_t>(i)].stage,
                  static_cast<obs::Stage>(i))
            << "stage index " << i;
        EXPECT_EQ(evs[static_cast<size_t>(i)].op, obs::OpKind::kGet);
        if (i > 0)
            EXPECT_GE(evs[static_cast<size_t>(i)].ts_ns,
                      evs[static_cast<size_t>(i - 1)].ts_ns);
    }
    EXPECT_EQ(t.n0.trace_drops() + t.n1.trace_drops(), 0u);

    // The round trip also landed in the issuing node's GET histogram.
    proxy::NodeSnapshot snap = t.n0.stats_snapshot();
    bool found = false;
    for (const proxy::OpLatency& ol : snap.op_latency) {
        if (std::string(ol.op) == "get") {
            found = true;
            EXPECT_EQ(ol.count, 1u);
            EXPECT_GT(ol.max_ns, 0u);
            EXPECT_GT(ol.p50_ns, 0.0);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Observability, DisabledTracingRecordsNothing)
{
    proxy::Node n0(proxy::NodeConfig{.id = 0});
    proxy::Node n1(proxy::NodeConfig{.id = 1});
    proxy::Endpoint& a = n0.create_endpoint();
    proxy::Endpoint& b = n1.create_endpoint();
    std::vector<uint8_t> remote(64, 0);
    uint16_t seg = b.register_segment(remote.data(), remote.size());
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();
    uint8_t src[64] = {1};
    proxy::Flag rsync{0};
    ASSERT_TRUE(a.put(src, 1, seg, 0, sizeof(src), nullptr, &rsync));
    proxy::flag_wait_ge(rsync, 1);
    n0.stop();
    n1.stop();
    EXPECT_EQ(n0.trace_recorded(), 0u);
    EXPECT_EQ(n1.trace_recorded(), 0u);
    proxy::NodeSnapshot snap = n0.stats_snapshot();
    EXPECT_FALSE(snap.obs_enabled);
    EXPECT_TRUE(snap.op_latency.empty());
    EXPECT_EQ(snap.totals.commands, 1u);
}

TEST(Observability, RuntimeToggleStartsAndStopsTracing)
{
    TracedPair t;
    t.n0.set_obs_enabled(false);
    std::vector<uint8_t> remote(8, 0);
    uint16_t seg = t.ep1->register_segment(remote.data(), remote.size());
    t.start();
    uint8_t src[8] = {42};
    proxy::Flag rsync{0};
    ASSERT_TRUE(
        t.ep0->put(src, 1, seg, 0, sizeof(src), nullptr, &rsync));
    proxy::flag_wait_ge(rsync, 1);
    EXPECT_EQ(t.n0.trace_recorded(), 0u);
    t.n0.set_obs_enabled(true);
    rsync.store(0);
    ASSERT_TRUE(
        t.ep0->put(src, 1, seg, 0, sizeof(src), nullptr, &rsync));
    proxy::flag_wait_ge(rsync, 1);
    t.n0.stop();
    t.n1.stop();
    EXPECT_GT(t.n0.trace_recorded(), 0u);
}

TEST(Observability, HistogramCountsMatchOpCounts)
{
    TracedPair t;
    std::vector<uint8_t> remote(4096, 0);
    uint16_t seg = t.ep1->register_segment(remote.data(), remote.size());
    t.start();
    constexpr int kPuts = 20;
    constexpr int kGets = 10;
    uint8_t buf[256] = {9};
    proxy::Flag lsync{0};
    for (int i = 0; i < kPuts; ++i) {
        while (!t.ep0->put(buf, 1, seg, 0, sizeof(buf), &lsync))
            std::this_thread::yield();
    }
    proxy::flag_wait_ge(lsync, kPuts);
    proxy::Flag gsync{0};
    for (int i = 0; i < kGets; ++i) {
        while (!t.ep0->get(buf, 1, seg, 0, sizeof(buf), &gsync))
            std::this_thread::yield();
        proxy::flag_wait_ge(gsync, static_cast<uint64_t>(i) + 1);
    }
    t.n0.stop();
    t.n1.stop();
    proxy::NodeSnapshot snap = t.n0.stats_snapshot();
    uint64_t puts = 0, gets = 0;
    for (const proxy::OpLatency& ol : snap.op_latency) {
        if (std::string(ol.op) == "put")
            puts = ol.count;
        if (std::string(ol.op) == "get")
            gets = ol.count;
    }
    EXPECT_EQ(puts, static_cast<uint64_t>(kPuts));
    EXPECT_EQ(gets, static_cast<uint64_t>(kGets));
    // Batch occupancy sampled at least once per productive wakeup.
    EXPECT_GT(snap.batch.count, 0u);
}

TEST(Observability, DumpJsonIsCleanAndBalanced)
{
    TracedPair t;
    std::vector<uint8_t> remote(64, 0);
    uint16_t seg = t.ep1->register_segment(remote.data(), remote.size());
    t.start();
    uint8_t src[64] = {5};
    proxy::Flag lsync{0};
    ASSERT_TRUE(t.ep0->get(src, 1, seg, 0, sizeof(src), &lsync));
    proxy::flag_wait_ge(lsync, 1);
    t.n0.stop();
    t.n1.stop();
    std::ostringstream os;
    t.n0.dump_json(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"counters\""), std::string::npos);
    EXPECT_NE(s.find("\"op_latency_ns\""), std::string::npos);
    EXPECT_NE(s.find("\"trace\""), std::string::npos);
    EXPECT_NE(s.find("\"commands\":1"), std::string::npos);
    EXPECT_EQ(s.find("inf"), std::string::npos) << s;
    EXPECT_EQ(s.find("nan"), std::string::npos) << s;
    long depth = 0;
    for (char c : s) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);

    // The merged Chrome trace is likewise clean.
    std::ostringstream ct;
    proxy::Node::export_chrome_trace(ct, {&t.n0, &t.n1});
    const std::string cs = ct.str();
    EXPECT_NE(cs.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(cs.find("inf"), std::string::npos);
    EXPECT_EQ(cs.find("nan"), std::string::npos);
}

TEST(Observability, TraceRingWrapsWithoutLosingNewest)
{
    // Ring capacity 2 (the minimum): a burst of traced PUTs laps it
    // many times; drops are counted and the survivors are the newest.
    proxy::Node n0(proxy::NodeConfig{.id = 0, .obs = {true, 2}});
    proxy::Node n1(proxy::NodeConfig{.id = 1, .obs = {true, 4096}});
    proxy::Endpoint& a = n0.create_endpoint();
    proxy::Endpoint& b = n1.create_endpoint();
    std::vector<uint8_t> remote(8, 0);
    uint16_t seg = b.register_segment(remote.data(), remote.size());
    benchwire::wire(n0, n1);
    n0.start();
    n1.start();
    uint8_t src[8] = {1};
    proxy::Flag lsync{0};
    constexpr int kOps = 50;
    for (int i = 0; i < kOps; ++i) {
        while (!a.put(src, 1, seg, 0, sizeof(src), &lsync))
            std::this_thread::yield();
    }
    proxy::flag_wait_ge(lsync, kOps);
    n0.stop();
    n1.stop();
    // 4 local stages per PUT, ring holds 2 events.
    EXPECT_EQ(n0.trace_recorded(), static_cast<uint64_t>(kOps) * 4);
    EXPECT_EQ(n0.trace_drops(), n0.trace_recorded() - 2);
    EXPECT_EQ(n0.trace_snapshot().size(), 2u);
}

// ------------------------------------------------ deprecated shim

// The two-node Node::connect(Node&, Node&) shim must keep wiring
// (back-compat coverage; everything else migrated to the addressed
// listen()/connect() API — new uses are flagged by msgproxy_lint's
// deprecated-connect check).
TEST(ProxyRuntime, DeprecatedConnectShimStillWires)
{
    proxy::Node n0(proxy::NodeConfig{.id = 0});
    proxy::Node n1(proxy::NodeConfig{.id = 1});
    proxy::Endpoint& a = n0.create_endpoint();
    proxy::Endpoint& b = n1.create_endpoint();
    std::vector<uint8_t> remote(64, 0);
    uint16_t seg = b.register_segment(remote.data(), remote.size());
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    proxy::Node::connect(n0, n1);
#pragma GCC diagnostic pop
    n0.start();
    n1.start();
    uint8_t src[64] = {9};
    proxy::Flag rsync{0};
    ASSERT_TRUE(a.put(src, 1, seg, 0, sizeof(src), nullptr, &rsync));
    proxy::flag_wait_ge(rsync, 1);
    EXPECT_EQ(remote[0], 9);
}

} // namespace
