/// \file
/// Tests for the real (host-thread) message-proxy runtime: the
/// lock-free SPSC queues under concurrency, and the end-to-end
/// PUT/GET/ENQ semantics, protection checks, fragmentation, and
/// multi-endpoint / multi-node behaviour of the proxy.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include "proxy/runtime.h"
#include "spsc/ring_queue.h"

namespace {

// ------------------------------------------------------------ RingQueue

TEST(RingQueue, SingleThreadFifo)
{
    spsc::RingQueue<int, 8> q;
    EXPECT_TRUE(q.empty());
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(q.try_push(i));
    EXPECT_FALSE(q.try_push(99)); // full
    int v;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(q.try_pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(q.try_pop(v));
    EXPECT_TRUE(q.empty());
}

TEST(RingQueue, WrapsAroundManyTimes)
{
    spsc::RingQueue<uint64_t, 4> q;
    uint64_t out;
    for (uint64_t i = 0; i < 1000; ++i) {
        ASSERT_TRUE(q.try_push(i));
        ASSERT_TRUE(q.try_pop(out));
        ASSERT_EQ(out, i);
    }
}

TEST(RingQueue, ConcurrentProducerConsumerNoLossNoReorder)
{
    spsc::RingQueue<uint64_t, 64> q;
    constexpr uint64_t kCount = 200000;
    std::thread producer([&] {
        for (uint64_t i = 0; i < kCount; ++i) {
            while (!q.try_push(i))
                std::this_thread::yield();
        }
    });
    uint64_t expect = 0;
    while (expect < kCount) {
        uint64_t v;
        if (q.try_pop(v)) {
            ASSERT_EQ(v, expect);
            ++expect;
        } else {
            std::this_thread::yield();
        }
    }
    producer.join();
}

TEST(MsgRing, VariableSizeMessagesFifo)
{
    spsc::MsgRing<4096> r;
    EXPECT_TRUE(r.empty());
    std::vector<uint8_t> out;
    for (uint32_t n : {1u, 7u, 8u, 9u, 100u, 333u}) {
        std::vector<uint8_t> msg(n);
        for (uint32_t i = 0; i < n; ++i)
            msg[i] = static_cast<uint8_t>(n + i);
        ASSERT_TRUE(r.try_push(msg.data(), n));
    }
    for (uint32_t n : {1u, 7u, 8u, 9u, 100u, 333u}) {
        ASSERT_TRUE(r.try_pop(out));
        ASSERT_EQ(out.size(), n);
        for (uint32_t i = 0; i < n; ++i)
            ASSERT_EQ(out[i], static_cast<uint8_t>(n + i));
    }
    EXPECT_TRUE(r.empty());
}

TEST(MsgRing, RejectsOversizeAndRecoversWhenDrained)
{
    spsc::MsgRing<256> r;
    std::vector<uint8_t> big(200, 1);
    EXPECT_FALSE(r.try_push(big.data(), 200)); // > capacity/2
    std::vector<uint8_t> small(40, 2);
    int pushed = 0;
    while (r.try_push(small.data(), 40))
        ++pushed;
    EXPECT_GT(pushed, 2);
    std::vector<uint8_t> out;
    ASSERT_TRUE(r.try_pop(out));
    EXPECT_TRUE(r.try_push(small.data(), 40)); // space reclaimed
}

TEST(MsgRing, ConcurrentStream)
{
    spsc::MsgRing<8192> r;
    constexpr int kMsgs = 20000;
    std::thread producer([&] {
        for (int i = 0; i < kMsgs; ++i) {
            uint32_t len = 4 + static_cast<uint32_t>(i % 60);
            std::vector<uint8_t> msg(len);
            std::memcpy(msg.data(), &i, 4);
            while (!r.try_push(msg.data(), len))
                std::this_thread::yield();
        }
    });
    std::vector<uint8_t> out;
    for (int i = 0; i < kMsgs; ++i) {
        while (!r.try_pop(out))
            std::this_thread::yield();
        ASSERT_EQ(out.size(), 4u + static_cast<uint32_t>(i % 60));
        int got;
        std::memcpy(&got, out.data(), 4);
        ASSERT_EQ(got, i);
    }
    producer.join();
}

// -------------------------------------------------------- proxy runtime

struct TwoNodes
{
    TwoNodes() : n0(0), n1(1)
    {
        ep0 = &n0.create_endpoint();
        ep1 = &n1.create_endpoint();
        proxy::Node::connect(n0, n1);
    }

    void
    start()
    {
        n0.start();
        n1.start();
    }

    proxy::Node n0, n1;
    proxy::Endpoint* ep0;
    proxy::Endpoint* ep1;
};

TEST(ProxyRuntime, PutDeliversDataAndFlags)
{
    TwoNodes t;
    std::vector<uint8_t> src(300), dst(300, 0);
    std::iota(src.begin(), src.end(), 1);
    uint16_t seg = t.ep1->register_segment(dst.data(), dst.size());
    proxy::Flag lsync{0}, rsync{0};
    t.start();

    ASSERT_TRUE(t.ep0->put(src.data(), 1, seg, 0,
                           static_cast<uint32_t>(src.size()), &lsync,
                           &rsync));
    proxy::flag_wait_ge(rsync, 1);
    proxy::flag_wait_ge(lsync, 1);
    EXPECT_EQ(dst, src);
    EXPECT_EQ(t.n1.stats().faults, 0u);
}

TEST(ProxyRuntime, PutWithOffset)
{
    TwoNodes t;
    std::vector<uint8_t> dst(128, 0);
    uint16_t seg = t.ep1->register_segment(dst.data(), dst.size());
    t.start();
    uint8_t v[4] = {9, 8, 7, 6};
    proxy::Flag rsync{0};
    ASSERT_TRUE(t.ep0->put(v, 1, seg, 100, 4, nullptr, &rsync));
    proxy::flag_wait_ge(rsync, 1);
    EXPECT_EQ(dst[100], 9);
    EXPECT_EQ(dst[103], 6);
    EXPECT_EQ(dst[99], 0);
}

TEST(ProxyRuntime, LargePutFragmentsAcrossMtu)
{
    TwoNodes t;
    const size_t n = 64 * 1024 + 123; // many fragments + tail
    std::vector<uint8_t> src(n), dst(n, 0);
    for (size_t i = 0; i < n; ++i)
        src[i] = static_cast<uint8_t>(i * 31 + 7);
    uint16_t seg = t.ep1->register_segment(dst.data(), dst.size());
    proxy::Flag rsync{0};
    t.start();
    ASSERT_TRUE(t.ep0->put(src.data(), 1, seg, 0,
                           static_cast<uint32_t>(n), nullptr, &rsync));
    proxy::flag_wait_ge(rsync, 1);
    EXPECT_EQ(dst, src);
    EXPECT_GT(t.n0.stats().packets_out, 64u);
}

TEST(ProxyRuntime, GetFetchesRemoteData)
{
    TwoNodes t;
    std::vector<uint32_t> remote(2048);
    for (size_t i = 0; i < remote.size(); ++i)
        remote[i] = static_cast<uint32_t>(i ^ 0xdead);
    uint16_t seg = t.ep1->register_segment(
        remote.data(), remote.size() * sizeof(uint32_t));
    std::vector<uint32_t> local(2048, 0);
    proxy::Flag lsync{0};
    t.start();
    ASSERT_TRUE(t.ep0->get(local.data(), 1, seg, 0,
                           static_cast<uint32_t>(local.size() *
                                                 sizeof(uint32_t)),
                           &lsync));
    proxy::flag_wait_ge(lsync, 1);
    EXPECT_EQ(local, remote);
}

TEST(ProxyRuntime, EnqDeliversMessagesInOrder)
{
    TwoNodes t;
    t.start();
    for (int i = 0; i < 50; ++i) {
        char msg[32];
        std::snprintf(msg, sizeof(msg), "message-%03d", i);
        while (!t.ep0->enq(msg, 12, 1, t.ep1->id()))
            std::this_thread::yield();
    }
    std::vector<uint8_t> out;
    for (int i = 0; i < 50; ++i) {
        while (!t.ep1->try_recv(out))
            std::this_thread::yield();
        char expect[32];
        std::snprintf(expect, sizeof(expect), "message-%03d", i);
        ASSERT_EQ(out.size(), 12u);
        ASSERT_EQ(std::memcmp(out.data(), expect, 12), 0);
    }
}

TEST(ProxyRuntime, ProtectionFaultSuppressesWrite)
{
    TwoNodes t;
    std::vector<uint8_t> priv(64, 0x33);
    // Not remote-accessible.
    uint16_t seg =
        t.ep1->register_segment(priv.data(), priv.size(), false);
    proxy::Flag rsync{0};
    t.start();
    uint8_t evil[8] = {0};
    ASSERT_TRUE(t.ep0->put(evil, 1, seg, 0, 8, nullptr, &rsync));
    // The write is suppressed; wait for the fault counter instead.
    while (t.n1.stats().faults == 0)
        std::this_thread::yield();
    for (auto b : priv)
        EXPECT_EQ(b, 0x33);
}

TEST(ProxyRuntime, OutOfBoundsOffsetFaults)
{
    TwoNodes t;
    std::vector<uint8_t> dst(64, 0);
    uint16_t seg = t.ep1->register_segment(dst.data(), dst.size());
    t.start();
    uint8_t v[16] = {1};
    ASSERT_TRUE(t.ep0->put(v, 1, seg, 56, 16)); // 56+16 > 64
    while (t.n1.stats().faults == 0)
        std::this_thread::yield();
    for (auto b : dst)
        EXPECT_EQ(b, 0);
}

TEST(ProxyRuntime, GetFaultStillCompletesLocally)
{
    TwoNodes t;
    t.start();
    uint8_t buf[8];
    proxy::Flag lsync{0};
    ASSERT_TRUE(t.ep0->get(buf, 1, /*seg=*/77, 0, 8, &lsync));
    proxy::flag_wait_ge(lsync, 1); // fault reply fires the flag
    EXPECT_GE(t.n1.stats().faults, 1u);
}

TEST(ProxyRuntime, LoopbackPutOnSameNode)
{
    proxy::Node n(0);
    proxy::Endpoint& a = n.create_endpoint();
    proxy::Endpoint& b = n.create_endpoint();
    std::vector<uint8_t> dst(64, 0);
    uint16_t seg = b.register_segment(dst.data(), dst.size());
    proxy::Flag rsync{0};
    n.start();
    uint8_t v[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    ASSERT_TRUE(a.put(v, 0, seg, 8, 8, nullptr, &rsync));
    proxy::flag_wait_ge(rsync, 1);
    EXPECT_EQ(dst[8], 1);
    EXPECT_EQ(dst[15], 8);
}

TEST(ProxyRuntime, ConcurrentEndpointsDoNotInterfere)
{
    TwoNodes t;
    proxy::Endpoint& ep0b = t.n0.create_endpoint();
    std::vector<uint32_t> dst_a(1024, 0), dst_b(1024, 0);
    uint16_t seg_a = t.ep1->register_segment(
        dst_a.data(), dst_a.size() * sizeof(uint32_t));
    uint16_t seg_b = t.ep1->register_segment(
        dst_b.data(), dst_b.size() * sizeof(uint32_t));
    t.start();

    // Delivery is observed through rsync flags (acquire), never by
    // polling payload bytes — the documented synchronization
    // discipline (and the only way to stay data-race-free).
    proxy::Flag delivered_a{0}, delivered_b{0};
    auto writer = [](proxy::Endpoint* ep, uint16_t seg, uint32_t tag,
                     proxy::Flag* rsync) {
        std::vector<uint32_t> buf(64);
        proxy::Flag lsync{0};
        for (uint32_t i = 0; i < 16; ++i) {
            for (auto& v : buf)
                v = tag + i;
            while (!ep->put(buf.data(), 1, seg,
                            i * 64 * sizeof(uint32_t),
                            64 * sizeof(uint32_t), &lsync, rsync)) {
                std::this_thread::yield();
            }
            proxy::flag_wait_ge(lsync, i + 1); // source reuse gate
        }
    };
    std::thread t1([&] { writer(t.ep0, seg_a, 1000, &delivered_a); });
    std::thread t2([&] { writer(&ep0b, seg_b, 2000, &delivered_b); });
    t1.join();
    t2.join();
    proxy::flag_wait_ge(delivered_a, 16);
    proxy::flag_wait_ge(delivered_b, 16);
    for (uint32_t i = 0; i < 16; ++i) {
        for (int k = 0; k < 64; ++k) {
            ASSERT_EQ(dst_a[i * 64 + static_cast<uint32_t>(k)], 1000 + i);
            ASSERT_EQ(dst_b[i * 64 + static_cast<uint32_t>(k)], 2000 + i);
        }
    }
}

TEST(ProxyRuntime, PingPongLatencySmokeTest)
{
    TwoNodes t;
    proxy::Flag f0{0}, f1{0};
    uint64_t buf0 = 0, buf1 = 0;
    uint16_t s0 = t.ep0->register_segment(&buf0, sizeof(buf0));
    uint16_t s1 = t.ep1->register_segment(&buf1, sizeof(buf1));
    t.start();
    constexpr int kRounds = 200;
    std::thread peer([&] {
        for (int i = 1; i <= kRounds; ++i) {
            proxy::flag_wait_ge(f1, static_cast<uint64_t>(i));
            uint64_t v = buf1 + 1;
            while (!t.ep1->put(&v, 0, s0, 0, 8, nullptr, &f0))
                std::this_thread::yield();
            proxy::flag_wait_ge(f0, static_cast<uint64_t>(i));
        }
    });
    for (int i = 1; i <= kRounds; ++i) {
        uint64_t v = static_cast<uint64_t>(i);
        while (!t.ep0->put(&v, 1, s1, 0, 8, nullptr, &f1))
            std::this_thread::yield();
        proxy::flag_wait_ge(f0, static_cast<uint64_t>(i));
    }
    peer.join();
    EXPECT_GE(t.n0.stats().packets_out,
              static_cast<uint64_t>(kRounds));
}

TEST(ProxyRuntime, RemoteQueueEnqDeqRoundTrip)
{
    TwoNodes t;
    int qid = t.n1.create_queue();
    t.start();
    // Producer on node 0 pushes three tasks into node 1's queue.
    for (int i = 0; i < 3; ++i) {
        int64_t task = 50 + i;
        while (!t.ep0->rq_enq(&task, sizeof(task), 1, qid))
            std::this_thread::yield();
    }
    // Consumer (also on node 0, stealing remotely) dequeues them.
    for (int i = 0; i < 3; ++i) {
        int64_t task = -1;
        proxy::Flag f{0};
        for (;;) {
            while (!t.ep0->rq_deq(&task, sizeof(task), 1, qid, &f))
                std::this_thread::yield();
            proxy::flag_wait_ge(f, 1);
            if (f.load() > 1)
                break; // got payload (1 + bytes)
            f.store(0);
            std::this_thread::yield(); // empty; retry
        }
        EXPECT_EQ(task, 50 + i); // FIFO order
    }
    // A further dequeue reports empty (flag == exactly 1).
    int64_t none = 0;
    proxy::Flag f{0};
    while (!t.ep0->rq_deq(&none, sizeof(none), 1, qid, &f))
        std::this_thread::yield();
    proxy::flag_wait_ge(f, 1);
    EXPECT_EQ(f.load(), 1u);
}

TEST(ProxyRuntime, RemoteQueueWorkSharingAcrossNodes)
{
    // Node 0 owns a task queue; endpoints on both nodes pull from it.
    TwoNodes t;
    int qid = t.n0.create_queue();
    t.start();
    const int kTasks = 40;
    for (int i = 0; i < kTasks; ++i) {
        int64_t task = i;
        while (!t.ep1->rq_enq(&task, sizeof(task), 0, qid))
            std::this_thread::yield();
    }
    std::vector<int> seen(kTasks, 0);
    int got = 0;
    // Alternate pulls between an endpoint on each node.
    proxy::Endpoint* pullers[2] = {t.ep0, t.ep1};
    int empties = 0;
    while (got < kTasks && empties < 100000) {
        proxy::Endpoint* ep = pullers[got % 2];
        int64_t task = -1;
        proxy::Flag f{0};
        while (!ep->rq_deq(&task, sizeof(task), 0, qid, &f))
            std::this_thread::yield();
        proxy::flag_wait_ge(f, 1);
        if (f.load() > 1) {
            ASSERT_GE(task, 0);
            ASSERT_LT(task, kTasks);
            seen[static_cast<size_t>(task)]++;
            ++got;
        } else {
            ++empties;
            std::this_thread::yield();
        }
    }
    ASSERT_EQ(got, kTasks);
    for (int i = 0; i < kTasks; ++i)
        EXPECT_EQ(seen[static_cast<size_t>(i)], 1) << i;
}

TEST(ProxyRuntime, FourNodeMeshRoutesCorrectly)
{
    // Fully connected 4-node mesh; every node PUTs its id into every
    // other node's slot array.
    std::vector<std::unique_ptr<proxy::Node>> nodes;
    std::vector<proxy::Endpoint*> eps;
    std::vector<std::vector<uint64_t>> slots(4,
                                             std::vector<uint64_t>(4, 0));
    std::vector<uint16_t> segs(4);
    for (int i = 0; i < 4; ++i) {
        nodes.push_back(std::make_unique<proxy::Node>(i));
        eps.push_back(&nodes.back()->create_endpoint());
        segs[static_cast<size_t>(i)] = eps.back()->register_segment(
            slots[static_cast<size_t>(i)].data(), 4 * 8);
    }
    for (int i = 0; i < 4; ++i)
        for (int j = i + 1; j < 4; ++j)
            proxy::Node::connect(*nodes[static_cast<size_t>(i)],
                                 *nodes[static_cast<size_t>(j)]);
    for (auto& n : nodes)
        n->start();

    proxy::Flag done{0};
    uint64_t expect = 0;
    for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) {
            if (i == j)
                continue;
            uint64_t v = 100 + static_cast<uint64_t>(i);
            while (!eps[static_cast<size_t>(i)]->put(
                &v, j, segs[static_cast<size_t>(j)],
                static_cast<uint64_t>(i) * 8, 8, nullptr, &done)) {
                std::this_thread::yield();
            }
            proxy::flag_wait_ge(done, ++expect);
        }
    }
    for (int j = 0; j < 4; ++j) {
        for (int i = 0; i < 4; ++i) {
            if (i == j)
                continue;
            EXPECT_EQ(slots[static_cast<size_t>(j)]
                           [static_cast<size_t>(i)],
                      100 + static_cast<uint64_t>(i));
        }
    }
}

TEST(ProxyRuntime, BitVectorPollingWithManyEndpoints)
{
    // 70 endpoints exceed the 64-bit mask (ids alias mod 64); every
    // endpoint's traffic must still flow.
    proxy::Node n0(0, proxy::Node::PollMode::kBitVector);
    proxy::Node n1(1, proxy::Node::PollMode::kBitVector);
    std::vector<proxy::Endpoint*> eps;
    for (int i = 0; i < 70; ++i)
        eps.push_back(&n0.create_endpoint());
    proxy::Endpoint& sink = n1.create_endpoint();
    std::vector<uint64_t> slots(70, 0);
    uint16_t seg =
        sink.register_segment(slots.data(), slots.size() * 8);
    proxy::Node::connect(n0, n1);
    n0.start();
    n1.start();

    proxy::Flag rsync{0};
    for (int i = 0; i < 70; ++i) {
        uint64_t v = 1000 + static_cast<uint64_t>(i);
        while (!eps[static_cast<size_t>(i)]->put(
            &v, 1, seg, static_cast<uint64_t>(i) * 8, 8, nullptr,
            &rsync)) {
            std::this_thread::yield();
        }
        proxy::flag_wait_ge(rsync, static_cast<uint64_t>(i) + 1);
    }
    for (int i = 0; i < 70; ++i)
        EXPECT_EQ(slots[static_cast<size_t>(i)],
                  1000 + static_cast<uint64_t>(i));
}

TEST(ProxyRuntime, ScanAllModeStillWorks)
{
    proxy::Node n0(0, proxy::Node::PollMode::kScanAll);
    proxy::Node n1(1, proxy::Node::PollMode::kScanAll);
    proxy::Endpoint& a = n0.create_endpoint();
    proxy::Endpoint& b = n1.create_endpoint();
    std::vector<uint8_t> dst(64, 0);
    uint16_t seg = b.register_segment(dst.data(), dst.size());
    proxy::Node::connect(n0, n1);
    n0.start();
    n1.start();
    uint8_t v[8] = {5, 4, 3, 2, 1, 0, 9, 8};
    proxy::Flag rsync{0};
    ASSERT_TRUE(a.put(v, 1, seg, 0, 8, nullptr, &rsync));
    proxy::flag_wait_ge(rsync, 1);
    EXPECT_EQ(dst[0], 5);
    EXPECT_EQ(dst[7], 8);
}

} // namespace
