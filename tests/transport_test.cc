/// \file
/// Transport-parameterized runtime suite: every end-to-end primitive
/// (PUT/GET/ENQ/RQ) exercised over both wire backends — the SPSC
/// in-process transport and the socket transport — through one typed
/// fixture, plus the teardown-ordering tests (peer death must
/// complete pending CCBs with kPeerUnreachable, on both backends)
/// and a seeded chaos run over real sockets. Registered under the
/// `transport` ctest label (tools/check.sh sockets).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_wiring.h"
#include "proxy/runtime.h"

namespace {

using proxy::Endpoint;
using proxy::Flag;
using proxy::Node;
using proxy::NodeConfig;
using proxy::NodeStats;
using proxy::SubmitStatus;

// --------------------------------------------------- wiring policies

struct InProcWiring
{
    static constexpr net::TransportKind kKind =
        net::TransportKind::kInProc;
    static constexpr const char* kName = "InProc";
};

struct SocketWiring
{
    static constexpr net::TransportKind kKind =
        net::TransportKind::kSocket;
    static constexpr const char* kName = "Socket";
};

/// Two nodes wired over the policy's transport through the public
/// listen()/connect() API. Extra endpoints/queues may be created
/// between construction and start().
template <typename W>
struct Pair
{
    explicit Pair(NodeConfig c0 = NodeConfig{.id = 0},
                  NodeConfig c1 = NodeConfig{.id = 1})
    {
        c0.transport = W::kKind;
        c1.transport = W::kKind;
        a = std::make_unique<Node>(c0);
        b = std::make_unique<Node>(c1);
        epa = &a->create_endpoint();
        epb = &b->create_endpoint();
        const std::string addr = benchwire::unique_addr(W::kKind);
        a->listen(addr);
        b->connect(addr);
    }

    void
    start()
    {
        a->start();
        b->start();
    }

    std::unique_ptr<Node> a, b;
    Endpoint* epa;
    Endpoint* epb;
};

/// Cross-node packet-custody invariant after quiescence (same
/// assertion as the chaos suite): every pooled packet recycled,
/// every heap fallback freed.
testing::AssertionResult
wait_no_leaks(Node& a, Node& b)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
        const NodeStats sa = a.stats();
        const NodeStats sb = b.stats();
        const uint64_t hits = sa.pool_hits + sb.pool_hits;
        const uint64_t rets = sa.pool_returns + sb.pool_returns;
        const uint64_t miss = sa.pool_misses + sb.pool_misses;
        const uint64_t frees = sa.heap_frees + sb.heap_frees;
        if (hits == rets && miss == frees)
            return testing::AssertionSuccess();
        if (std::chrono::steady_clock::now() > deadline) {
            return testing::AssertionFailure()
                   << "packet leak after quiescence: pool_hits="
                   << hits << " pool_returns=" << rets
                   << " pool_misses=" << miss << " heap_frees="
                   << frees;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

/// Retries a submit while the command queue is full.
template <typename F>
void
must_submit(F&& submit)
{
    for (;;) {
        SubmitStatus s = submit();
        if (s)
            return;
        ASSERT_EQ(s, SubmitStatus::kQueueFull);
        std::this_thread::yield();
    }
}

template <typename W>
class TransportSuite : public testing::Test
{
};

class WiringNames
{
  public:
    template <typename T>
    static std::string
    GetName(int)
    {
        return T::kName;
    }
};

using Wirings = testing::Types<InProcWiring, SocketWiring>;
TYPED_TEST_SUITE(TransportSuite, Wirings, WiringNames);

// ------------------------------------------------------- primitives

TYPED_TEST(TransportSuite, PutDeliversBothDirections)
{
    Pair<TypeParam> t;
    std::vector<uint8_t> dst_b(512, 0), dst_a(512, 0);
    std::vector<uint8_t> src(512);
    std::iota(src.begin(), src.end(), uint8_t{1});
    uint16_t seg_b = t.epb->register_segment(dst_b.data(),
                                             dst_b.size());
    uint16_t seg_a = t.epa->register_segment(dst_a.data(),
                                             dst_a.size());
    Flag rs_ab{0}, rs_ba{0};
    t.start();

    ASSERT_TRUE(t.epa->put(src.data(), 1, seg_b, 0,
                           static_cast<uint32_t>(src.size()),
                           nullptr, &rs_ab));
    ASSERT_TRUE(t.epb->put(src.data(), 0, seg_a, 0,
                           static_cast<uint32_t>(src.size()),
                           nullptr, &rs_ba));
    proxy::flag_wait_ge(rs_ab, 1);
    proxy::flag_wait_ge(rs_ba, 1);
    EXPECT_EQ(dst_b, src);
    EXPECT_EQ(dst_a, src);
    EXPECT_EQ(t.a->stats().faults + t.b->stats().faults, 0u);
}

TYPED_TEST(TransportSuite, LargePutFragmentsAcrossMtu)
{
    Pair<TypeParam> t;
    const size_t n = 64 * 1024 + 123; // many fragments + tail
    std::vector<uint8_t> src(n), dst(n, 0);
    for (size_t i = 0; i < n; ++i)
        src[i] = static_cast<uint8_t>(i * 31 + 7);
    uint16_t seg = t.epb->register_segment(dst.data(), dst.size());
    Flag rsync{0};
    t.start();
    ASSERT_TRUE(t.epa->put(src.data(), 1, seg, 0,
                           static_cast<uint32_t>(n), nullptr,
                           &rsync));
    proxy::flag_wait_ge(rsync, 1);
    EXPECT_EQ(dst, src);
    EXPECT_GT(t.a->stats().packets_out, 64u);
}

TYPED_TEST(TransportSuite, GetRoundTrip)
{
    Pair<TypeParam> t;
    std::vector<uint32_t> remote(2048);
    for (size_t i = 0; i < remote.size(); ++i)
        remote[i] = static_cast<uint32_t>(i * 2654435761u);
    uint16_t seg = t.epb->register_segment(
        remote.data(), remote.size() * sizeof(uint32_t));
    std::vector<uint32_t> local(2048, 0);
    Flag lsync{0};
    t.start();
    ASSERT_TRUE(t.epa->get(local.data(), 1, seg, 0,
                           static_cast<uint32_t>(local.size() *
                                                 sizeof(uint32_t)),
                           &lsync));
    proxy::flag_wait_ge(lsync, 1);
    EXPECT_EQ(local, remote);
}

TYPED_TEST(TransportSuite, EnqDeliversMessagesInOrder)
{
    Pair<TypeParam> t;
    t.start();
    for (int i = 0; i < 64; ++i) {
        char msg[32];
        std::snprintf(msg, sizeof(msg), "message-%03d", i);
        while (!t.epa->enq(msg, 12, 1, t.epb->id()))
            std::this_thread::yield();
    }
    std::vector<uint8_t> out;
    for (int i = 0; i < 64; ++i) {
        while (!t.epb->try_recv(out))
            std::this_thread::yield();
        char expect[32];
        std::snprintf(expect, sizeof(expect), "message-%03d", i);
        ASSERT_EQ(out.size(), 12u);
        ASSERT_EQ(std::memcmp(out.data(), expect, 12), 0);
    }
}

TYPED_TEST(TransportSuite, RemoteQueueEnqDeq)
{
    Pair<TypeParam> t;
    const int qid = t.b->create_queue();
    t.start();

    const char payload[] = "rq-payload";
    Flag enq_sync{0};
    ASSERT_TRUE(t.epa->rq_enq(payload, sizeof payload, 1, qid,
                              &enq_sync));
    proxy::flag_wait_ge(enq_sync, 1); // handed to the wire

    // DEQ until the message lands (the ENQ races the first DEQ; an
    // empty-queue reply increments lsync by exactly 1).
    uint8_t buf[64] = {};
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
        Flag deq_sync{0};
        ASSERT_TRUE(t.epa->rq_deq(buf, sizeof buf, 1, qid,
                                  &deq_sync));
        proxy::flag_wait_ge(deq_sync, 1);
        const uint64_t v = deq_sync.load();
        if (v > 1) {
            ASSERT_EQ(v, 1u + sizeof payload);
            EXPECT_EQ(std::memcmp(buf, payload, sizeof payload), 0);
            break;
        }
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "rq_enq never arrived";
        std::this_thread::yield();
    }
}

TYPED_TEST(TransportSuite, MultiProxyMatrix)
{
    // 2x2 proxies: every (sending proxy, receiving proxy) link of
    // the matrix carries traffic.
    Pair<TypeParam> t(NodeConfig{.id = 0, .num_proxies = 2},
                      NodeConfig{.id = 1, .num_proxies = 2});
    Endpoint& e1 = t.a->create_endpoint(); // proxy 1
    Endpoint& t1 = t.b->create_endpoint(); // proxy 1
    std::vector<uint8_t> mem0(64 * 1024, 0);
    std::vector<uint8_t> mem1(64 * 1024, 0);
    uint16_t seg0 = t.epb->register_segment(mem0.data(),
                                            mem0.size());
    uint16_t seg1 = t1.register_segment(mem1.data(), mem1.size());
    t.start();

    constexpr int kPuts = 64;
    constexpr uint32_t kLen = 1500; // 2 fragments
    std::vector<std::vector<uint8_t>> src(kPuts);
    Flag rsync{0};
    for (int i = 0; i < kPuts; ++i) {
        src[static_cast<size_t>(i)].resize(kLen);
        for (uint32_t j = 0; j < kLen; ++j)
            src[static_cast<size_t>(i)][j] =
                static_cast<uint8_t>(i * 13 + j * 7);
        Endpoint& ep = (i % 2 == 0) ? *t.epa : e1;
        const uint16_t seg = (i % 4 < 2) ? seg0 : seg1;
        const uint64_t off =
            static_cast<uint64_t>(2 * (i / 4) + i % 2) * kLen;
        must_submit([&] {
            return ep.put(src[static_cast<size_t>(i)].data(), 1,
                          seg, off, kLen, nullptr, &rsync);
        });
    }
    proxy::flag_wait_ge(rsync, kPuts);
    EXPECT_EQ(rsync.load(), static_cast<uint64_t>(kPuts));
    for (int i = 0; i < kPuts; ++i) {
        const uint8_t* dst =
            ((i % 4 < 2) ? mem0.data() : mem1.data()) +
            static_cast<uint64_t>(2 * (i / 4) + i % 2) * kLen;
        ASSERT_EQ(std::memcmp(dst,
                              src[static_cast<size_t>(i)].data(),
                              kLen),
                  0)
            << "payload corrupted for put " << i;
    }
    EXPECT_EQ(t.a->stats().faults + t.b->stats().faults, 0u);
    ASSERT_TRUE(wait_no_leaks(*t.a, *t.b));
}

TYPED_TEST(TransportSuite, NoLeaksAfterQuiescence)
{
    Pair<TypeParam> t;
    std::vector<uint8_t> dst(128 * 1024, 0);
    uint16_t seg = t.epb->register_segment(dst.data(), dst.size());
    Flag rsync{0};
    t.start();
    std::vector<uint8_t> src(4096);
    std::iota(src.begin(), src.end(), uint8_t{0});
    constexpr int kPuts = 32;
    for (int i = 0; i < kPuts; ++i) {
        must_submit([&] {
            return t.epa->put(
                src.data(), 1, seg,
                static_cast<uint64_t>(i) * src.size(),
                static_cast<uint32_t>(src.size()), nullptr,
                &rsync);
        });
    }
    proxy::flag_wait_ge(rsync, kPuts);
    ASSERT_TRUE(wait_no_leaks(*t.a, *t.b));
}

TYPED_TEST(TransportSuite, StopStartResume)
{
    // Links and their sequence state survive stop()/start().
    Pair<TypeParam> t;
    std::vector<uint8_t> dst(256, 0);
    uint16_t seg = t.epb->register_segment(dst.data(), dst.size());
    std::vector<uint8_t> src(256, 0x5a);
    Flag rsync{0};
    t.start();
    ASSERT_TRUE(t.epa->put(src.data(), 1, seg, 0, 256, nullptr,
                           &rsync));
    proxy::flag_wait_ge(rsync, 1);
    ASSERT_TRUE(wait_no_leaks(*t.a, *t.b));

    t.a->stop();
    t.b->stop();
    t.start();

    std::vector<uint8_t> src2(256, 0xa5);
    ASSERT_TRUE(t.epa->put(src2.data(), 1, seg, 0, 256, nullptr,
                           &rsync));
    proxy::flag_wait_ge(rsync, 2);
    EXPECT_EQ(dst, src2);
    EXPECT_EQ(t.a->stats().faults + t.b->stats().faults, 0u);
}

TYPED_TEST(TransportSuite, MigrationUnderTraffic)
{
    // Endpoints migrate between proxies on both nodes while PUT, GET
    // and ENQ traffic is in flight on both wire backends: every
    // completion flag fires exactly once, every ENQ message arrives
    // exactly once (order across a sender migration is not
    // guaranteed — the set is), and packet custody balances after
    // quiescence.
    Pair<TypeParam> t(NodeConfig{.id = 0, .num_proxies = 2},
                      NodeConfig{.id = 1, .num_proxies = 2});
    Endpoint& eb2 = t.b->create_endpoint(); // node 1, proxy 1
    constexpr int kRounds = 10;
    constexpr int kPerRound = 6;
    constexpr uint32_t kLen = 512;
    std::vector<uint8_t> put_dst(
        static_cast<size_t>(kRounds * kPerRound) * kLen, 0);
    uint16_t put_seg = t.epb->register_segment(put_dst.data(),
                                               put_dst.size());
    std::vector<uint8_t> get_src(kLen);
    for (size_t i = 0; i < get_src.size(); ++i)
        get_src[i] = static_cast<uint8_t>(i * 11 + 5);
    uint16_t get_seg = eb2.register_segment(get_src.data(),
                                            get_src.size());
    t.start();

    std::vector<uint8_t> put_src(kLen);
    for (size_t i = 0; i < put_src.size(); ++i)
        put_src[i] = static_cast<uint8_t>(i * 7 + 1);
    std::vector<std::vector<uint8_t>> get_dst(
        static_cast<size_t>(kRounds * kPerRound),
        std::vector<uint8_t>(kLen, 0));
    Flag put_rsync{0};
    Flag get_lsync{0};
    int op = 0;
    for (int r = 0; r < kRounds; ++r) {
        for (int i = 0; i < kPerRound; ++i, ++op) {
            must_submit([&] {
                return t.epa->put(put_src.data(), 1, put_seg,
                                  static_cast<uint64_t>(op) * kLen,
                                  kLen, nullptr, &put_rsync);
            });
            must_submit([&] {
                return t.epa->get(
                    get_dst[static_cast<size_t>(op)].data(), 1,
                    get_seg, 0, kLen, &get_lsync);
            });
            uint32_t tag = static_cast<uint32_t>(op);
            must_submit([&] {
                return t.epa->enq(&tag, 4, 1, t.epb->id());
            });
        }
        // Flip ownership of the source endpoint and both targets
        // while the round's traffic is still in flight.
        t.a->migrate_endpoint(t.epa->id(), (r % 2 == 0) ? 1 : 0);
        t.b->migrate_endpoint(t.epb->id(), (r % 2 == 0) ? 1 : 0);
        t.b->migrate_endpoint(eb2.id(), (r % 2 == 0) ? 0 : 1);
    }
    constexpr uint64_t kOps =
        static_cast<uint64_t>(kRounds) * kPerRound;
    proxy::flag_wait_ge(put_rsync, kOps);
    proxy::flag_wait_ge(get_lsync, kOps);
    EXPECT_EQ(put_rsync.load(), kOps);
    EXPECT_EQ(get_lsync.load(), kOps);

    // Every ENQ tag exactly once.
    std::vector<int> seen(kOps, 0);
    std::vector<uint8_t> out;
    for (uint64_t got = 0; got < kOps;) {
        if (!t.epb->try_recv(out)) {
            std::this_thread::yield();
            continue;
        }
        ASSERT_EQ(out.size(), 4u);
        uint32_t tag;
        std::memcpy(&tag, out.data(), 4);
        ASSERT_LT(tag, kOps);
        ASSERT_EQ(seen[tag]++, 0) << "duplicate enq " << tag;
        ++got;
    }

    for (int i = 0; i < static_cast<int>(kOps); ++i) {
        ASSERT_EQ(std::memcmp(put_dst.data() +
                                  static_cast<uint64_t>(i) * kLen,
                              put_src.data(), kLen),
                  0)
            << "put payload corrupted at op " << i;
        ASSERT_EQ(get_dst[static_cast<size_t>(i)],
                  get_src)
            << "get payload corrupted at op " << i;
    }
    EXPECT_EQ(t.a->stats().faults + t.b->stats().faults, 0u);
    EXPECT_GE(t.a->stats().migrations + t.b->stats().migrations,
              1u);
    ASSERT_TRUE(wait_no_leaks(*t.a, *t.b));
}

TYPED_TEST(TransportSuite, RetireEndpointUnderInFlightTraffic)
{
    // Retire the receiving endpoint while the sender still streams
    // ENQs at it over the wire: submits keep succeeding (the sender
    // side is alive), late arrivals land as enq_drops rather than
    // faults, epoch reclamation frees the slot while both nodes keep
    // running, and a reincarnation under the same id receives again.
    // Packet custody balances through all of it.
    Pair<TypeParam> p;
    p.start();
    const int dst = p.epb->id();

    uint32_t seq = 0;
    for (int i = 0; i < 64; ++i) {
        const uint32_t tag = seq++;
        must_submit([&] { return p.epa->enq(&tag, 4, 1, dst); });
    }
    std::vector<uint8_t> out;
    for (int i = 0; i < 16; ++i) {
        while (!p.epb->try_recv(out))
            std::this_thread::yield();
    }

    // Retire mid-stream; `p.epb` must not be touched once the
    // reclaim loop below starts.
    p.b->retire_endpoint(*p.epb);
    uint8_t refuse[4] = {0};
    EXPECT_EQ(p.epb->enq(refuse, 4, 0, dst),
              SubmitStatus::kRetired);
    for (int i = 0; i < 64; ++i) {
        const uint32_t tag = seq++;
        must_submit([&] { return p.epa->enq(&tag, 4, 1, dst); });
    }

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (p.b->endpoint_count() != 0) {
        p.b->reclaim_endpoints();
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "retired endpoint never reclaimed under traffic";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // The id is reused; stragglers from the old stream may still
    // land in the fresh ring, so drain until the probe shows up.
    Endpoint& fresh = p.b->create_endpoint();
    ASSERT_EQ(fresh.id(), dst);
    const uint32_t probe = 0xabcd1234u;
    must_submit([&] { return p.epa->enq(&probe, 4, 1, dst); });
    bool seen = false;
    while (!seen) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "reincarnated endpoint never received";
        if (!fresh.try_recv(out)) {
            std::this_thread::yield();
            continue;
        }
        uint32_t tag = 0;
        if (out.size() == 4)
            std::memcpy(&tag, out.data(), 4);
        seen = tag == probe;
    }
    EXPECT_EQ(p.a->stats().faults + p.b->stats().faults, 0u);
    ASSERT_TRUE(wait_no_leaks(*p.a, *p.b));
}

// --------------------------------------- teardown ordering (CCBs)

TYPED_TEST(TransportSuite, PeerDeathCompletesPendingCcbs)
{
    // Destroying the peer node must complete (fail) every CCB still
    // waiting on it — the lsync fires exactly once and later submits
    // are refused with kPeerUnreachable, instead of wedging a user
    // thread in flag_wait_ge forever. Sockets observe death directly
    // (peer_closed); the in-process path detects it through RTO
    // exhaustion, so keep the retry budget small.
    NodeConfig c0{.id = 0};
    c0.reliability.rto_ns = 200 * 1000;
    c0.reliability.rto_max_ns = 1000 * 1000;
    c0.reliability.max_retries = 3;
    Pair<TypeParam> t(c0, NodeConfig{.id = 1});
    std::vector<uint8_t> mem(4096, 0x7e);
    uint16_t seg = t.epb->register_segment(mem.data(), mem.size());
    Flag rsync{0};
    t.start();

    // Healthy first: the link works before we kill it.
    std::vector<uint8_t> buf(512, 0x11);
    ASSERT_TRUE(t.epa->put(buf.data(), 1, seg, 0, 512, nullptr,
                           &rsync));
    proxy::flag_wait_ge(rsync, 1);

    t.b.reset(); // peer dies with no pending traffic

    // A GET submitted after death either is refused up front (the
    // socket backend can observe the close before we submit) or is
    // accepted and must then be failed by link death: lsync fires,
    // the node marks the peer unreachable.
    Flag lsync{0};
    SubmitStatus s =
        t.epa->get(buf.data(), 1, seg, 0, 512, &lsync);
    if (s) {
        proxy::flag_wait_ge(lsync, 1);
        EXPECT_EQ(lsync.load(), 1u);
    } else {
        EXPECT_EQ(s, SubmitStatus::kPeerUnreachable);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!t.a->peer_unreachable(1)) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "peer never declared unreachable";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(t.epa->get(buf.data(), 1, seg, 0, 512, &lsync),
              SubmitStatus::kPeerUnreachable);
    EXPECT_EQ(t.epa->put(buf.data(), 1, seg, 0, 512, nullptr,
                         &rsync),
              SubmitStatus::kPeerUnreachable);
}

TYPED_TEST(TransportSuite, PeerDeathWithInFlightWindow)
{
    // Same, but the peer dies while CCBs are genuinely pending: the
    // peer never starts, so submitted GETs sit unacked in the
    // reliability window until retry exhaustion fails them all.
    NodeConfig c0{.id = 0};
    c0.reliability.rto_ns = 200 * 1000;
    c0.reliability.rto_max_ns = 1000 * 1000;
    c0.reliability.max_retries = 3;
    Pair<TypeParam> t(c0, NodeConfig{.id = 1});
    std::vector<uint8_t> mem(4096, 0);
    uint16_t seg = t.epb->register_segment(mem.data(), mem.size());
    t.a->start(); // b wired but never started: a black hole

    constexpr int kGets = 4;
    std::vector<uint8_t> buf(kGets * 64);
    Flag lsync{0};
    for (int i = 0; i < kGets; ++i) {
        ASSERT_TRUE(t.epa->get(buf.data() + i * 64, 1, seg,
                               static_cast<uint64_t>(i) * 64, 64,
                               &lsync));
    }
    // Every pending CCB must complete (with failure), exactly once.
    proxy::flag_wait_ge(lsync, kGets);
    EXPECT_EQ(lsync.load(), static_cast<uint64_t>(kGets));
    EXPECT_TRUE(t.a->peer_unreachable(1));
    EXPECT_EQ(t.epa->get(buf.data(), 1, seg, 0, 64, &lsync),
              SubmitStatus::kPeerUnreachable);
}

// ------------------------------------ crash faults (NodeConfig::fts)

/// Bounded completion-flag wait (the death tests cannot lean on
/// flag_wait_ge: a missed completion would wedge the suite until the
/// ctest timeout instead of failing with a count).
bool
wait_flag_ge(const Flag& f, uint64_t want, int seconds = 20)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(seconds);
    while (f.load() < want) {
        if (std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::yield();
    }
    return true;
}

/// Three nodes over one transport: node 0 listens, nodes 1 and 2
/// dial it. There is deliberately no 1<->2 link — the kill-mid-op
/// tests only need a victim (1) and a bystander (2) as seen from 0.
template <typename W>
struct Trio
{
    explicit Trio(const NodeConfig& base)
    {
        NodeConfig c0 = base, c1 = base, c2 = base;
        c0.id = 0;
        c1.id = 1;
        c2.id = 2;
        for (NodeConfig* cc : {&c0, &c1, &c2})
            cc->transport = W::kKind;
        a = std::make_unique<Node>(c0);
        b = std::make_unique<Node>(c1);
        c = std::make_unique<Node>(c2);
        epa = &a->create_endpoint();
        epb = &b->create_endpoint();
        epc = &c->create_endpoint();
        const std::string addr = benchwire::unique_addr(W::kKind);
        a->listen(addr);
        b->connect(addr);
        c->connect(addr);
    }

    void
    start()
    {
        a->start();
        b->start();
        c->start();
    }

    std::unique_ptr<Node> a, b, c;
    Endpoint* epa;
    Endpoint* epb;
    Endpoint* epc;
};

/// Crash-fault config: RTO exhaustion verdicts in ~2.4 ms and the
/// heartbeat detector backstops links with an empty window. Shared
/// by the kill-mid-op trio tests and the death-path race test.
NodeConfig
crash_config()
{
    NodeConfig c;
    c.reliability.window = 32;
    c.reliability.ack_every = 4;
    c.reliability.rto_ns = 100 * 1000;
    c.reliability.rto_max_ns = 400 * 1000;
    c.reliability.max_retries = 6;
    c.fts.enabled = true;
    c.fts.interval_ns = 1 * 1000 * 1000;
    c.fts.suspect_after = 3;
    c.fts.dead_after = 8;
    return c;
}

enum class MidOp { kPut, kGet, kEnq };

/// Kill the victim mid-stream: 64 ops toward node 1 with the crash
/// landing after 16. Every op accepted before or after the crash
/// must complete (succeed or fail) exactly once, the verdict must
/// land, and traffic toward the bystander node 2 must be untouched.
template <typename W>
void
run_kill_mid_op(MidOp op)
{
    Trio<W> t(crash_config());
    std::vector<uint8_t> memb(8192, 0), memc(8192, 0);
    const uint16_t segb =
        t.epb->register_segment(memb.data(), memb.size());
    const uint16_t segc =
        t.epc->register_segment(memc.data(), memc.size());
    t.start();

    std::vector<uint8_t> buf(256, 0x5a), got(256, 0);
    Flag pb{0}, pc{0};
    must_submit([&] {
        return t.epa->put(buf.data(), 1, segb, 0, 256, nullptr, &pb);
    });
    must_submit([&] {
        return t.epa->put(buf.data(), 2, segc, 0, 256, nullptr, &pc);
    });
    ASSERT_TRUE(wait_flag_ge(pb, 1) && wait_flag_ge(pc, 1));

    Flag ls{0};
    uint64_t accepted = 0;
    for (int i = 0; i < 64; ++i) {
        if (i == 16)
            t.b.reset(); // crash, not shutdown: survivors keep going
        const uint64_t off =
            static_cast<uint64_t>(i % 16) * 256;
        SubmitStatus s = SubmitStatus::kQueueFull;
        for (int tries = 0; tries < 2000; ++tries) {
            switch (op) {
              case MidOp::kPut:
                s = t.epa->put(buf.data(), 1, segb, off, 256, &ls,
                               nullptr);
                break;
              case MidOp::kGet:
                s = t.epa->get(got.data(), 1, segb, off, 256, &ls);
                break;
              case MidOp::kEnq:
                s = t.epa->enq(buf.data(), 64, 1, 0, &ls);
                break;
            }
            if (s.code() != SubmitStatus::kQueueFull)
                break;
            std::this_thread::yield();
        }
        if (s)
            ++accepted;
        else
            EXPECT_EQ(s, SubmitStatus::kPeerUnreachable)
                << s.name();
    }

    // Exactly once: every accepted op completes through the normal
    // or the failure path, and never twice (the settle-and-recheck
    // catches a double fire).
    EXPECT_TRUE(wait_flag_ge(ls, accepted))
        << "completions=" << ls.load() << " accepted=" << accepted;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(ls.load(), accepted);

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!t.a->peer_unreachable(1)) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "victim never declared unreachable";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // The bystander link is untouched by the victim's death.
    Flag pc2{0};
    must_submit([&] {
        return t.epa->put(buf.data(), 2, segc, 512, 256, nullptr,
                          &pc2);
    });
    EXPECT_TRUE(wait_flag_ge(pc2, 1));
}

TYPED_TEST(TransportSuite, KillMidPutStream)
{
    run_kill_mid_op<TypeParam>(MidOp::kPut);
}

TYPED_TEST(TransportSuite, KillMidGetStream)
{
    run_kill_mid_op<TypeParam>(MidOp::kGet);
}

TYPED_TEST(TransportSuite, KillMidEnqStream)
{
    run_kill_mid_op<TypeParam>(MidOp::kEnq);
}

// All three death paths race on the socket backend — stream EOF
// (the destructor closes the fd), RTO exhaustion (unacked GETs in
// the window), and the heartbeat timeout — and every one funnels
// into the same declare_peer_dead() verdict. Whichever wins, each
// pending CCB completes exactly once; run under TSan via the
// sanitize-ok label to catch racing double-completions.
TEST(DeathRace, ThreeDetectorsCompleteCcbsOnce)
{
    NodeConfig base = crash_config();
    NodeConfig c0 = base, c1 = base;
    c0.id = 0;
    c1.id = 1;
    Pair<SocketWiring> t(c0, c1);
    std::vector<uint8_t> mem(8192, 0x3c);
    const uint16_t seg =
        t.epb->register_segment(mem.data(), mem.size());
    t.start();

    std::vector<uint8_t> buf(256, 0);
    Flag prime{0};
    must_submit([&] {
        return t.epa->put(buf.data(), 1, seg, 0, 128, nullptr,
                          &prime);
    });
    ASSERT_TRUE(wait_flag_ge(prime, 1));

    Flag ls{0};
    uint64_t accepted = 0;
    for (int i = 0; i < 8; ++i) {
        SubmitStatus s = SubmitStatus::kQueueFull;
        for (int tries = 0; tries < 2000; ++tries) {
            s = t.epa->get(buf.data(), 1, seg,
                           static_cast<uint64_t>(i) * 256, 256,
                           &ls);
            if (s.code() != SubmitStatus::kQueueFull)
                break;
            std::this_thread::yield();
        }
        if (s)
            ++accepted;
    }
    ASSERT_GT(accepted, 0u);
    t.b.reset(); // EOF, RTO and heartbeat timeout now race

    EXPECT_TRUE(wait_flag_ge(ls, accepted))
        << "completions=" << ls.load() << " accepted=" << accepted;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(ls.load(), accepted) << "a CCB completed twice";

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!t.a->peer_unreachable(1)) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Post-verdict submits keep the historical refusal.
    EXPECT_EQ(t.epa->get(buf.data(), 1, seg, 0, 64, &ls),
              SubmitStatus::kPeerUnreachable);
    EXPECT_EQ(ls.load(), accepted);
}

// ------------------------------------------------- socket chaos run

// Seeded fault injection over real sockets: the injector sits in
// the proxy's link layer (above the transport), so drops/dupes/
// reorders/corruption exercise the reliability machinery while the
// socket backend carries the surviving frames. Exactly-once delivery
// and the custody invariant must hold end to end.
TEST(SocketChaos, SeededFaultsDeliverExactlyOnce)
{
    NodeConfig c0{.id = 0, .num_proxies = 2};
    NodeConfig c1{.id = 1, .num_proxies = 2};
    for (NodeConfig* c : {&c0, &c1}) {
        c->transport = net::TransportKind::kSocket;
        c->channel_depth = 256;
        c->packet_pool_size = 1024;
        c->reliability.window = 64;
        c->reliability.ack_every = 8;
        c->reliability.rto_ns = 100 * 1000;
        c->reliability.rto_max_ns = 2 * 1000 * 1000;
        c->reliability.max_retries = 1000000;
        c->fault_plan.seed = 1;
        c->fault_plan.drop = 0.04;
        c->fault_plan.duplicate = 0.02;
        c->fault_plan.reorder = 0.02;
        c->fault_plan.corrupt = 0.02;
        c->fault_plan.reorder_depth = 4;
    }
    Node n0(c0);
    Node n1(c1);
    Endpoint& e0 = n0.create_endpoint(); // proxy 0
    Endpoint& e1 = n0.create_endpoint(); // proxy 1
    Endpoint& t0 = n1.create_endpoint();
    std::vector<uint8_t> mem(256 * 1024, 0);
    uint16_t seg = t0.register_segment(mem.data(), mem.size());
    const std::string addr =
        benchwire::unique_addr(net::TransportKind::kSocket);
    n0.listen(addr);
    n1.connect(addr);
    n0.start();
    n1.start();

    constexpr int kPuts = 60;
    constexpr uint32_t kLen = 2100; // 3 fragments
    std::vector<std::vector<uint8_t>> src(kPuts);
    Flag lsync{0};
    Flag rsync{0};
    for (int i = 0; i < kPuts; ++i) {
        src[static_cast<size_t>(i)].resize(kLen);
        for (uint32_t j = 0; j < kLen; ++j)
            src[static_cast<size_t>(i)][j] =
                static_cast<uint8_t>(i * 29 + j * 3);
        Endpoint& ep = (i % 2 == 0) ? e0 : e1;
        must_submit([&] {
            return ep.put(src[static_cast<size_t>(i)].data(), 1,
                          seg, static_cast<uint64_t>(i) * kLen,
                          kLen, &lsync, &rsync);
        });
    }
    proxy::flag_wait_ge(lsync, kPuts);
    proxy::flag_wait_ge(rsync, kPuts);
    ASSERT_TRUE(wait_no_leaks(n0, n1));

    EXPECT_EQ(rsync.load(), static_cast<uint64_t>(kPuts));
    EXPECT_EQ(lsync.load(), static_cast<uint64_t>(kPuts));
    for (int i = 0; i < kPuts; ++i) {
        ASSERT_EQ(std::memcmp(mem.data() +
                                  static_cast<uint64_t>(i) * kLen,
                              src[static_cast<size_t>(i)].data(),
                              kLen),
                  0)
            << "payload corrupted for put " << i;
    }
    const NodeStats s0 = n0.stats();
    const NodeStats s1 = n1.stats();
    EXPECT_EQ(s0.faults + s1.faults, 0u);
    EXPECT_GT(s0.pkts_retransmitted + s1.pkts_retransmitted, 0u);
}

// TCP loopback sanity: the tcp:// scheme wires and carries a PUT
// (everything else runs over unix:// for speed and hermeticity).
TEST(SocketTcp, PutOverTcpLoopback)
{
    NodeConfig c0{.id = 0};
    NodeConfig c1{.id = 1};
    c0.transport = net::TransportKind::kSocket;
    c1.transport = net::TransportKind::kSocket;
    Node n0(c0);
    Node n1(c1);
    Endpoint& ea = n0.create_endpoint();
    Endpoint& eb = n1.create_endpoint();
    std::vector<uint8_t> dst(2048, 0);
    uint16_t seg = eb.register_segment(dst.data(), dst.size());
    // A pid-salted port in the dynamic range keeps parallel ctest
    // processes from colliding.
    const uint16_t port =
        static_cast<uint16_t>(20000 + ::getpid() % 40000);
    n0.listen("tcp://127.0.0.1:" + std::to_string(port));
    n1.connect("tcp://127.0.0.1:" + std::to_string(port));
    n0.start();
    n1.start();
    std::vector<uint8_t> src(2048);
    std::iota(src.begin(), src.end(), uint8_t{3});
    Flag rsync{0};
    ASSERT_TRUE(ea.put(src.data(), 1, seg, 0,
                       static_cast<uint32_t>(src.size()), nullptr,
                       &rsync));
    proxy::flag_wait_ge(rsync, 1);
    EXPECT_EQ(dst, src);
}

} // namespace
