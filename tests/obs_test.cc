/// \file
/// Unit tests for the observability layer: trace-ring wraparound and
/// drop accounting, torn-read safety under a concurrent writer (the
/// TSan tree runs this too), log2-histogram bucket and quantile
/// edges, guarded JSON emission — plus the bench_json regression:
/// an empty mp::Summary (min = +inf, max = -inf) must never put bare
/// inf/nan into the trajectory file.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include "bench/bench_json.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace {

obs::TraceEvent
ev(uint64_t ts, uint64_t tid, obs::Stage st, uint32_t aux = 0)
{
    obs::TraceEvent e;
    e.ts_ns = ts;
    e.tid = tid;
    e.stage = st;
    e.op = obs::OpKind::kGet;
    e.proxy = 1;
    e.aux = aux;
    return e;
}

// ------------------------------------------------------------ TraceRing

TEST(TraceRing, RecordsAndSnapshotsInOrder)
{
    obs::TraceRing ring(8);
    EXPECT_EQ(ring.capacity(), 8u);
    for (uint64_t i = 0; i < 5; ++i)
        ring.record(ev(100 + i, i + 1, obs::Stage::kSubmit, 7));
    EXPECT_EQ(ring.recorded(), 5u);
    EXPECT_EQ(ring.drops(), 0u);
    std::vector<obs::TraceEvent> out;
    ring.snapshot(out);
    ASSERT_EQ(out.size(), 5u);
    for (uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(out[i].ts_ns, 100 + i);
        EXPECT_EQ(out[i].tid, i + 1);
        EXPECT_EQ(out[i].stage, obs::Stage::kSubmit);
        EXPECT_EQ(out[i].op, obs::OpKind::kGet);
        EXPECT_EQ(out[i].proxy, 1);
        EXPECT_EQ(out[i].aux, 7u);
    }
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo)
{
    obs::TraceRing ring(5);
    EXPECT_EQ(ring.capacity(), 8u);
}

TEST(TraceRing, WraparoundDropsOldestAndCounts)
{
    obs::TraceRing ring(4);
    for (uint64_t i = 0; i < 11; ++i)
        ring.record(ev(i, i + 1, obs::Stage::kWireOut));
    EXPECT_EQ(ring.recorded(), 11u);
    EXPECT_EQ(ring.drops(), 7u); // 11 recorded, 4 survive
    std::vector<obs::TraceEvent> out;
    ring.snapshot(out);
    ASSERT_EQ(out.size(), 4u);
    // The newest 4 survive, oldest first.
    for (uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(out[i].ts_ns, 7 + i);
}

TEST(TraceRing, SnapshotIsCoherentUnderConcurrentWriter)
{
    // A reader racing the single writer must only ever observe fully
    // written events: every event is self-consistent (tid derives
    // from ts, aux from tid), so any torn read trips the checks.
    // TSan (tools/check.sh tsan runs this binary) verifies the
    // fence-based slot protocol is also formally race-free.
    obs::TraceRing ring(64);
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        uint64_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            obs::TraceEvent e;
            e.ts_ns = i;
            e.tid = i * 3 + 1;
            e.stage = obs::Stage::kComplete;
            e.op = obs::OpKind::kPut;
            e.proxy = 2;
            e.aux = static_cast<uint32_t>(e.tid & 0xffffffffu);
            ring.record(e);
            ++i;
        }
    });
    std::vector<obs::TraceEvent> out;
    for (int round = 0; round < 200; ++round) {
        out.clear();
        ring.snapshot(out);
        uint64_t prev_ts = 0;
        bool first = true;
        for (const obs::TraceEvent& e : out) {
            EXPECT_EQ(e.tid, e.ts_ns * 3 + 1);
            EXPECT_EQ(e.aux,
                      static_cast<uint32_t>(e.tid & 0xffffffffu));
            EXPECT_EQ(e.stage, obs::Stage::kComplete);
            EXPECT_EQ(e.op, obs::OpKind::kPut);
            EXPECT_EQ(e.proxy, 2);
            if (!first)
                EXPECT_GT(e.ts_ns, prev_ts); // still oldest-first
            prev_ts = e.ts_ns;
            first = false;
        }
    }
    stop.store(true, std::memory_order_relaxed);
    writer.join();
    EXPECT_EQ(ring.drops(),
              ring.recorded() > ring.capacity()
                  ? ring.recorded() - ring.capacity()
                  : 0);
}

// ------------------------------------------------------------- Log2Hist

TEST(Log2Hist, BucketEdges)
{
    EXPECT_EQ(obs::Log2Hist::bucket_of(0), 0);
    EXPECT_EQ(obs::Log2Hist::bucket_of(1), 1);
    EXPECT_EQ(obs::Log2Hist::bucket_of(2), 2);
    EXPECT_EQ(obs::Log2Hist::bucket_of(3), 2);
    EXPECT_EQ(obs::Log2Hist::bucket_of(4), 3);
    EXPECT_EQ(obs::Log2Hist::bucket_of(1023), 10);
    EXPECT_EQ(obs::Log2Hist::bucket_of(1024), 11);
    EXPECT_EQ(obs::Log2Hist::bucket_of(UINT64_MAX),
              obs::Log2Hist::kBuckets - 1);
    EXPECT_EQ(obs::Log2Hist::bucket_floor(0), 0u);
    EXPECT_EQ(obs::Log2Hist::bucket_floor(1), 1u);
    EXPECT_EQ(obs::Log2Hist::bucket_floor(11), 1024u);
}

TEST(Log2Hist, EmptyIsSane)
{
    obs::Log2Hist h;
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.max(), 0u);
    uint64_t buckets[obs::Log2Hist::kBuckets] = {};
    h.merge_into(buckets);
    EXPECT_EQ(obs::quantile_from_buckets(buckets, 0.5), 0.0);
}

TEST(Log2Hist, SingleSampleQuantiles)
{
    obs::Log2Hist h;
    h.add(1000);
    EXPECT_EQ(h.total(), 1u);
    EXPECT_EQ(h.max(), 1000u);
    uint64_t buckets[obs::Log2Hist::kBuckets] = {};
    h.merge_into(buckets);
    // The single sample lands in [512, 1024): any quantile
    // interpolates inside that bucket.
    for (double q : {0.0, 0.5, 0.99, 1.0}) {
        const double v = obs::quantile_from_buckets(buckets, q);
        EXPECT_GE(v, 512.0) << "q=" << q;
        EXPECT_LE(v, 1024.0) << "q=" << q;
    }
}

TEST(Log2Hist, QuantileOrderingAndClamping)
{
    obs::Log2Hist h;
    for (uint64_t v = 1; v <= 1000; ++v)
        h.add(v);
    uint64_t buckets[obs::Log2Hist::kBuckets] = {};
    h.merge_into(buckets);
    const double p50 = obs::quantile_from_buckets(buckets, 0.50);
    const double p95 = obs::quantile_from_buckets(buckets, 0.95);
    const double p99 = obs::quantile_from_buckets(buckets, 0.99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    // Log2 buckets bound any quantile's relative error by 2x.
    EXPECT_GE(p50, 250.0);
    EXPECT_LE(p50, 1000.0);
    // Out-of-range q clamps instead of reading out of bounds.
    EXPECT_EQ(obs::quantile_from_buckets(buckets, -1.0),
              obs::quantile_from_buckets(buckets, 0.0));
    EXPECT_EQ(obs::quantile_from_buckets(buckets, 2.0),
              obs::quantile_from_buckets(buckets, 1.0));
}

TEST(Log2Hist, ResetClears)
{
    obs::Log2Hist h;
    h.add(5);
    h.add(500);
    EXPECT_EQ(h.total(), 2u);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.max(), 0u);
    for (int i = 0; i < obs::Log2Hist::kBuckets; ++i)
        EXPECT_EQ(h.bucket(i), 0u);
}

// ------------------------------------------------------------- exporters

TEST(JsonNum, GuardsNonFinite)
{
    auto render = [](double v) {
        std::ostringstream os;
        obs::json_num(os, v);
        return os.str();
    };
    EXPECT_EQ(render(std::numeric_limits<double>::infinity()), "0");
    EXPECT_EQ(render(-std::numeric_limits<double>::infinity()), "0");
    EXPECT_EQ(render(std::nan("")), "0");
    EXPECT_EQ(render(42.0), "42");
    EXPECT_EQ(render(-3.0), "-3");
    EXPECT_EQ(render(1.5), "1.500");
}

TEST(ChromeTrace, EmitsValidLookingJson)
{
    std::vector<obs::NodeTrace> nodes(2);
    nodes[0].node = 0;
    nodes[0].events.push_back(ev(1000, 42, obs::Stage::kSubmit, 8));
    nodes[0].events.push_back(ev(1300, 42, obs::Stage::kWireOut, 1));
    nodes[1].node = 1;
    nodes[1].events.push_back(
        ev(1500, 42, obs::Stage::kRemoteHandler, 8));
    std::ostringstream os;
    obs::write_chrome_trace(os, nodes);
    const std::string s = os.str();
    EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(s.find("\"process_name\""), std::string::npos);
    EXPECT_NE(s.find("\"submit\""), std::string::npos);
    EXPECT_NE(s.find("\"submit->wire_out\""), std::string::npos);
    EXPECT_NE(s.find("\"wire_out->remote_handler\""),
              std::string::npos);
    EXPECT_EQ(s.find("inf"), std::string::npos);
    EXPECT_EQ(s.find("nan"), std::string::npos);
    // Balanced braces (cheap structural sanity without a parser; the
    // check.sh obs mode runs a real json.load on bench output).
    long depth = 0;
    for (char c : s) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(ChromeTrace, EmptyInputIsStillADocument)
{
    std::ostringstream os;
    obs::write_chrome_trace(os, {});
    const std::string s = os.str();
    EXPECT_NE(s.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(s.find("inf"), std::string::npos);
}

// ---------------------------------------------- bench_json regression

TEST(BenchJson, EmptySummaryNeverEmitsInfNan)
{
    // The bug: an empty mp::Summary has min()=+inf / max()=-inf, and
    // a 0-sample cell divides 0/0 into nan. Written unguarded these
    // produced invalid JSON that silently broke check.sh perf.
    mp::Summary empty;
    benchjson::Record r;
    r.op = "empty_cell";
    r.P = 1;
    r.latency_ns = empty.min();           // +inf
    r.msgs_per_sec = empty.sum() / 0.0;   // nan (0/0)
    ASSERT_FALSE(std::isfinite(r.latency_ns));

    char tmpl[] = "/tmp/bench_json_test_XXXXXX";
    int fd = mkstemp(tmpl);
    ASSERT_GE(fd, 0);
    close(fd);
    setenv("MSGPROXY_BENCH_JSON", tmpl, 1);
    benchjson::write("obs_test", {r});
    unsetenv("MSGPROXY_BENCH_JSON");

    std::ifstream in(tmpl);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string s = ss.str();
    std::remove(tmpl);

    EXPECT_EQ(s.find("inf"), std::string::npos) << s;
    EXPECT_EQ(s.find("nan"), std::string::npos) << s;
    EXPECT_NE(s.find("\"nonfinite\":true"), std::string::npos) << s;
    EXPECT_NE(s.find("\"latency_ns\":0.0"), std::string::npos) << s;
}

TEST(BenchJson, FiniteRecordsCarryNoFlag)
{
    benchjson::Record r;
    r.op = "ok_cell";
    r.P = 2;
    r.latency_ns = 123.4;
    r.msgs_per_sec = 8103727.7;

    char tmpl[] = "/tmp/bench_json_test_XXXXXX";
    int fd = mkstemp(tmpl);
    ASSERT_GE(fd, 0);
    close(fd);
    setenv("MSGPROXY_BENCH_JSON", tmpl, 1);
    benchjson::write("obs_test", {r});
    unsetenv("MSGPROXY_BENCH_JSON");

    std::ifstream in(tmpl);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string s = ss.str();
    std::remove(tmpl);

    EXPECT_EQ(s.find("nonfinite"), std::string::npos) << s;
    EXPECT_NE(s.find("\"latency_ns\":123.4"), std::string::npos) << s;
}

} // namespace
