/// \file
/// Tests for the deterministic interleaving checker (src/check/):
/// scheduler exhaustiveness, happens-before race detection, the SPSC
/// protocol verified over every two-thread schedule, and — the
/// mutation-testing teeth — seeded protocol weakenings
/// (release→relaxed publish, acquire→relaxed observe) that the
/// checker must flag, plus the thread-ownership lint.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "check/atomic.h"
#include "check/ownership.h"
#include "check/sched.h"
#include "proxy/runtime.h"
#include "spsc/ring_queue.h"

namespace {

// History sizes: attempts per simulated thread. The exhaustive
// schedule count grows combinatorially with these; keep them small
// enough that every test explores its full tree in well under a
// second (and a TSan-built binary stays fast too).
constexpr int kQueueAttempts = 3;

// --------------------------------------------------- scheduler core

TEST(CheckScheduler, ExhaustivelyEnumeratesInterleavings)
{
    // Two threads: store own cell, then load the other's. Under
    // per-location sequential consistency exactly three outcomes
    // exist — (0,1), (1,0), (1,1) — and exhaustive exploration must
    // see all of them and nothing else.
    struct State
    {
        check::Atomic<int> a, b;
        int ra = -1, rb = -1;
        int done = 0;
    };
    std::set<std::pair<int, int>> outcomes;
    check::Options opts;
    check::Result res = check::explore(opts, [&](check::Sim& sim) {
        auto st = std::make_shared<State>();
        auto finish = [&outcomes, st] {
            if (++st->done == 2)
                outcomes.emplace(st->ra, st->rb);
        };
        sim.spawn([st, finish] {
            st->a.store(1, std::memory_order_relaxed);
            st->ra = st->b.load(std::memory_order_relaxed);
            finish();
        });
        sim.spawn([st, finish] {
            st->b.store(1, std::memory_order_relaxed);
            st->rb = st->a.load(std::memory_order_relaxed);
            finish();
        });
    });
    EXPECT_TRUE(res.exhausted) << res.summary();
    EXPECT_TRUE(res.ok()) << res.summary();
    std::set<std::pair<int, int>> expect{{0, 1}, {1, 0}, {1, 1}};
    EXPECT_EQ(outcomes, expect);
    EXPECT_GE(res.executions, 3u);
}

TEST(CheckRace, UnsynchronizedPlainAccessIsARace)
{
    struct State
    {
        check::CheckedPlainCell<int> cell;
        check::Atomic<int> pad; // gives the scheduler a branch point
    };
    check::Options opts;
    check::Result res = check::explore(opts, [&](check::Sim& sim) {
        auto st = std::make_shared<State>();
        sim.spawn([st] {
            st->pad.load(std::memory_order_relaxed);
            st->cell.put(1);
        });
        sim.spawn([st] {
            st->pad.load(std::memory_order_relaxed);
            (void)st->cell.get();
        });
    });
    EXPECT_FALSE(res.races.empty()) << res.summary();
}

TEST(CheckRace, ReleaseAcquireMessagePassingIsClean)
{
    struct State
    {
        check::CheckedPlainCell<int> data;
        check::Atomic<int> flag;
    };
    check::Options opts;
    check::Result res = check::explore(opts, [&](check::Sim& sim) {
        auto st = std::make_shared<State>();
        sim.spawn([st] {
            st->data.put(42);
            st->flag.store(1, std::memory_order_release);
        });
        sim.spawn([st] {
            if (st->flag.load(std::memory_order_acquire) == 1) {
                EXPECT_EQ(st->data.get(), 42);
            }
        });
    });
    EXPECT_TRUE(res.exhausted) << res.summary();
    EXPECT_TRUE(res.ok()) << res.summary();
}

TEST(CheckRace, RelaxedPublicationIsCaught)
{
    // The same message-passing pattern with a relaxed publish store:
    // the consumer's acquire load synchronizes with nothing, so the
    // data read races in the schedule where the flag is observed set.
    struct State
    {
        check::CheckedPlainCell<int> data;
        check::Atomic<int> flag;
    };
    check::Options opts;
    check::Result res = check::explore(opts, [&](check::Sim& sim) {
        auto st = std::make_shared<State>();
        sim.spawn([st] {
            st->data.put(42);
            st->flag.store(1, std::memory_order_relaxed); // BUG
        });
        sim.spawn([st] {
            if (st->flag.load(std::memory_order_acquire) == 1)
                (void)st->data.get();
        });
    });
    EXPECT_TRUE(res.exhausted) << res.summary();
    EXPECT_FALSE(res.races.empty()) << res.summary();
}

// ------------------------------------- RingQueue under the checker

/// Bounded two-thread SPSC history over any RingQueue instantiation:
/// the producer makes kQueueAttempts push attempts, the consumer
/// kQueueAttempts pop attempts, and the consumer asserts strict FIFO
/// on whatever it observes. Returns the exploration result.
template <typename Queue>
check::Result
explore_ring_queue(const check::Options& opts, size_t* total_popped)
{
    if (total_popped != nullptr)
        *total_popped = 0;
    return check::explore(opts, [&](check::Sim& sim) {
        auto q = std::make_shared<Queue>();
        sim.spawn([q] {
            int next = 1;
            for (int i = 0; i < kQueueAttempts; ++i)
                if (q->try_push(next))
                    ++next;
        });
        sim.spawn([q, total_popped] {
            int expect = 1;
            for (int i = 0; i < kQueueAttempts; ++i) {
                int v = -1;
                if (q->try_pop(v)) {
                    EXPECT_EQ(v, expect); // FIFO, no loss, no dupes
                    ++expect;
                    if (total_popped != nullptr)
                        ++*total_popped;
                }
            }
        });
    });
}

TEST(RingQueueCheck, ShippedProtocolPassesAllInterleavings)
{
    using Queue = spsc::RingQueue<int, 2, check::CheckedAtomics>;
    check::Options opts;
    size_t popped = 0;
    check::Result res = explore_ring_queue<Queue>(opts, &popped);
    EXPECT_TRUE(res.exhausted) << res.summary();
    EXPECT_TRUE(res.ok()) << res.summary();
    // The histories were not vacuous: across the explored schedules
    // the consumer really did receive messages.
    EXPECT_GT(popped, 0u);
    EXPECT_GT(res.executions, 10u);
}

TEST(RingQueueCheck, MutationRelaxedPublishStoreIsFlagged)
{
    // Seeded weakening #1: try_push publishes the full flag with a
    // relaxed store instead of release. The consumer can then observe
    // the flag without happening-after the payload write.
    using Queue = spsc::RingQueue<int, 2, check::CheckedAtomics,
                                  spsc::RelaxedPublishOrders>;
    check::Options opts;
    check::Result res = explore_ring_queue<Queue>(opts, nullptr);
    EXPECT_TRUE(res.exhausted) << res.summary();
    EXPECT_FALSE(res.races.empty())
        << "checker missed the relaxed-publish mutation: "
        << res.summary();
}

TEST(RingQueueCheck, MutationRelaxedObserveLoadIsFlagged)
{
    // Seeded weakening #2: try_pop reads the full flag with a relaxed
    // load instead of acquire — it never synchronizes with the
    // producer's release store.
    using Queue = spsc::RingQueue<int, 2, check::CheckedAtomics,
                                  spsc::RelaxedObserveOrders>;
    check::Options opts;
    check::Result res = explore_ring_queue<Queue>(opts, nullptr);
    EXPECT_TRUE(res.exhausted) << res.summary();
    EXPECT_FALSE(res.races.empty())
        << "checker missed the relaxed-observe mutation: "
        << res.summary();
}

TEST(RingQueueCheck, RandomScheduleSamplingAgrees)
{
    // Seeded-random mode: same shipped protocol, sampled schedules.
    // Must stay race-free (no false positives) and be reproducible.
    using Queue = spsc::RingQueue<int, 2, check::CheckedAtomics>;
    check::Options opts;
    opts.mode = check::Options::Mode::kRandom;
    opts.seed = 0xfeedface;
    opts.random_executions = 300;
    check::Result res = explore_ring_queue<Queue>(opts, nullptr);
    EXPECT_EQ(res.executions, 300u);
    EXPECT_TRUE(res.ok()) << res.summary();

    // And the same seed weakened must still find the bug.
    using Broken = spsc::RingQueue<int, 2, check::CheckedAtomics,
                                   spsc::RelaxedPublishOrders>;
    check::Result broken = explore_ring_queue<Broken>(opts, nullptr);
    EXPECT_FALSE(broken.races.empty()) << broken.summary();
}

// --------------------------------------- MsgRing under the checker

template <typename Ring>
check::Result
explore_msg_ring(const check::Options& opts, size_t* total_popped)
{
    if (total_popped != nullptr)
        *total_popped = 0;
    return check::explore(opts, [&](check::Sim& sim) {
        auto r = std::make_shared<Ring>();
        sim.spawn([r] {
            for (uint32_t i = 0; i < 2; ++i) {
                uint8_t msg[4] = {static_cast<uint8_t>(0x10 + i), 2, 3,
                                  static_cast<uint8_t>(i)};
                (void)r->try_push(msg, sizeof(msg));
            }
        });
        sim.spawn([r, total_popped] {
            std::vector<uint8_t> out;
            uint32_t expect = 0;
            for (int i = 0; i < 3; ++i) {
                if (r->try_pop(out)) {
                    ASSERT_EQ(out.size(), 4u);
                    EXPECT_EQ(out[0], 0x10 + expect);
                    EXPECT_EQ(out[3], expect);
                    ++expect;
                    if (total_popped != nullptr)
                        ++*total_popped;
                }
            }
        });
    });
}

TEST(MsgRingCheck, ShippedProtocolPassesAllInterleavings)
{
    using Ring = spsc::MsgRing<64, check::CheckedAtomics>;
    check::Options opts;
    size_t popped = 0;
    check::Result res = explore_msg_ring<Ring>(opts, &popped);
    EXPECT_TRUE(res.exhausted) << res.summary();
    EXPECT_TRUE(res.ok()) << res.summary();
    EXPECT_GT(popped, 0u);
}

TEST(MsgRingCheck, MutationRelaxedHeaderPublishIsFlagged)
{
    using Ring = spsc::MsgRing<64, check::CheckedAtomics,
                               spsc::RelaxedPublishOrders>;
    check::Options opts;
    check::Result res = explore_msg_ring<Ring>(opts, nullptr);
    EXPECT_TRUE(res.exhausted) << res.summary();
    EXPECT_FALSE(res.races.empty())
        << "checker missed the relaxed header publish: "
        << res.summary();
}

TEST(MsgRingCheck, MutationRelaxedHeaderObserveIsFlagged)
{
    using Ring = spsc::MsgRing<64, check::CheckedAtomics,
                               spsc::RelaxedObserveOrders>;
    check::Options opts;
    check::Result res = explore_msg_ring<Ring>(opts, nullptr);
    EXPECT_TRUE(res.exhausted) << res.summary();
    EXPECT_FALSE(res.races.empty())
        << "checker missed the relaxed header observe: "
        << res.summary();
}

// ----------------------------- endpoint quiesce-and-handoff edge

// Model of process_migrations' handoff (proxy/runtime.cc): the old
// owner drains the endpoint's backlog (consumer-private plain
// state), publishes the new owner in the shard map, then
// unconditionally sets the new owner's doorbell bit with a release
// RMW. The new owner that consumes the bit must (a) observe itself
// as the owner and (b) happen-after the old owner's drain — the
// release edges on the shard-map publish and on the doorbell carry
// that, redundantly by design.

struct HandoffState
{
    check::CheckedPlainCell<int> backlog; // cmdq consumer state
    check::Atomic<int> shard_map;         // owner id, starts 0
    check::Atomic<unsigned> mask;         // new owner's doorbell word
};

template <std::memory_order kShardMapOrder,
          std::memory_order kDoorbellOrder>
check::Result
explore_handoff()
{
    check::Options opts;
    return check::explore(opts, [&](check::Sim& sim) {
        auto st = std::make_shared<HandoffState>();
        sim.spawn([st] { // old owner: quiesce, publish, ring
            st->backlog.put(2); // courtesy drain bumps consumer state
            st->shard_map.store(1, kShardMapOrder);
            st->mask.store(1u, kDoorbellOrder);
        });
        sim.spawn([st] { // new owner: one poll iteration
            if ((st->mask.load(std::memory_order_acquire) & 1u) ==
                0u) {
                return; // bit not visible yet: next poll gets it
            }
            // Consuming the bit must come with the ownership edge:
            // per-location coherence makes the shard map read 1 (it
            // was stored before the bit), and the acquire on the
            // doorbell makes the drained backlog state safe to touch.
            EXPECT_EQ(st->shard_map.load(std::memory_order_acquire),
                      1);
            EXPECT_EQ(st->backlog.get(), 2);
        });
    });
}

TEST(CheckHandoff, ShippedProtocolCleanOverAllInterleavings)
{
    check::Result res =
        explore_handoff<std::memory_order_release,
                        std::memory_order_release>();
    EXPECT_TRUE(res.exhausted) << res.summary();
    EXPECT_TRUE(res.ok()) << res.summary();
    EXPECT_GE(res.executions, 2u);
}

TEST(CheckHandoff, EitherReleaseEdgeAloneStillProtectsTheDrain)
{
    // The protocol is deliberately belt-and-braces: the shard-map
    // publish and the doorbell RMW each carry a release edge, and
    // either one alone orders the drain before the new owner's
    // first touch. Weakening just one must stay clean ...
    check::Result a =
        explore_handoff<std::memory_order_relaxed,
                        std::memory_order_release>();
    EXPECT_TRUE(a.exhausted) << a.summary();
    EXPECT_TRUE(a.ok()) << a.summary();
    check::Result b =
        explore_handoff<std::memory_order_release,
                        std::memory_order_relaxed>();
    EXPECT_TRUE(b.exhausted) << b.summary();
    EXPECT_TRUE(b.ok()) << b.summary();
}

TEST(CheckHandoff, MutationFullyRelaxedHandoffIsFlagged)
{
    // ... but stripping both release edges leaves the new owner
    // consuming the bit without happening-after the quiesce drain:
    // its touch of the endpoint's consumer state is a race the
    // checker must see in at least one schedule.
    check::Result res =
        explore_handoff<std::memory_order_relaxed,
                        std::memory_order_relaxed>();
    EXPECT_TRUE(res.exhausted) << res.summary();
    EXPECT_FALSE(res.races.empty())
        << "checker missed the fully relaxed handoff: "
        << res.summary();
}

// ------------------------- hierarchical doorbell leaf→summary edges

// Model of proxy/doorbell.h's two-level propagate/consume pair. The
// producer publishes backlog (the command-queue payload), sets the
// leaf bit, then the summary bit above it — each an unconditional
// fetch_or. The consumer harvests top-down with acquire exchanges
// and may only touch the backlog after consuming both bits. The
// shipped protocol releases at every level; the leaf release alone
// must also protect the drain (the consumer's last hop into the
// payload crosses the leaf edge), while a fully relaxed propagation
// is the lost-ordering bug the checker must flag.

struct DoorbellState
{
    check::CheckedPlainCell<int> backlog; // cmdq payload
    check::Atomic<uint64_t> leaf;         // level-0 word
    check::Atomic<uint64_t> summary;      // level-1 word
};

template <std::memory_order kLeafOrder, std::memory_order kSummaryOrder>
check::Result
explore_doorbell()
{
    check::Options opts;
    return check::explore(opts, [&](check::Sim& sim) {
        auto st = std::make_shared<DoorbellState>();
        sim.spawn([st] { // producer: post, then propagate up
            st->backlog.put(7);
            st->leaf.fetch_or(1, kLeafOrder);
            st->summary.fetch_or(1, kSummaryOrder);
        });
        sim.spawn([st] { // consumer: one top-down harvest
            if (st->summary.exchange(0, std::memory_order_acquire) ==
                0)
                return; // idle probe: nothing posted yet
            if (st->leaf.exchange(0, std::memory_order_acquire) == 0)
                return; // summary won the race to the leaf's bit
            EXPECT_EQ(st->backlog.get(), 7);
        });
    });
}

TEST(CheckDoorbell, ShippedPropagationCleanOverAllInterleavings)
{
    check::Result res =
        explore_doorbell<std::memory_order_release,
                         std::memory_order_release>();
    EXPECT_TRUE(res.exhausted) << res.summary();
    EXPECT_TRUE(res.ok()) << res.summary();
    EXPECT_GE(res.executions, 2u);
}

TEST(CheckDoorbell, LeafReleaseAloneProtectsTheDrain)
{
    // The consumer's path to the payload always crosses the leaf
    // exchange: the leaf's release edge alone is sufficient, the
    // summary levels only need to deliver the wakeup.
    check::Result res =
        explore_doorbell<std::memory_order_release,
                         std::memory_order_relaxed>();
    EXPECT_TRUE(res.exhausted) << res.summary();
    EXPECT_TRUE(res.ok()) << res.summary();
}

TEST(CheckDoorbell, MutationFullyRelaxedPropagationIsFlagged)
{
    check::Result res =
        explore_doorbell<std::memory_order_relaxed,
                         std::memory_order_relaxed>();
    EXPECT_TRUE(res.exhausted) << res.summary();
    EXPECT_FALSE(res.races.empty())
        << "checker missed the relaxed doorbell propagation: "
        << res.summary();
}

TEST(CheckDoorbell, RmwContinuesTheReleaseSequence)
{
    // Two producers stack fetch_ors on one leaf word — the shape the
    // doorbell's early-stop proof leans on. Producer B's relaxed RMW
    // must not sever producer A's release edge: an RMW continues the
    // release sequence headed by A's fetch_or, so the consumer's
    // acquire exchange still happens-after A's payload write even
    // when it reads B's update. B's own payload, published with no
    // release edge of its own, must still be flagged.
    struct State
    {
        check::CheckedPlainCell<int> data_a;
        check::CheckedPlainCell<int> data_b;
        check::Atomic<uint64_t> leaf;
    };
    auto run = [](bool touch_b) {
        check::Options opts;
        return check::explore(opts, [&, touch_b](check::Sim& sim) {
            auto st = std::make_shared<State>();
            sim.spawn([st] {
                st->data_a.put(1);
                st->leaf.fetch_or(1, std::memory_order_release);
            });
            sim.spawn([st] {
                st->data_b.put(2);
                st->leaf.fetch_or(2, std::memory_order_relaxed);
            });
            sim.spawn([st, touch_b] {
                const uint64_t bits =
                    st->leaf.exchange(0, std::memory_order_acquire);
                if ((bits & 1) != 0) {
                    EXPECT_EQ(st->data_a.get(), 1);
                }
                if (touch_b && (bits & 2) != 0)
                    (void)st->data_b.get();
            });
        });
    };
    // data_a's edge survives B's relaxed RMW in every schedule.
    check::Result clean = run(/*touch_b=*/false);
    EXPECT_TRUE(clean.exhausted) << clean.summary();
    EXPECT_TRUE(clean.ok()) << clean.summary();
    // data_b itself rode a relaxed RMW: no edge, flagged.
    check::Result flagged = run(/*touch_b=*/true);
    EXPECT_TRUE(flagged.exhausted) << flagged.summary();
    EXPECT_FALSE(flagged.races.empty()) << flagged.summary();
}

// ------------------------------------------------- ownership lint

TEST(OwnershipLint, ReleaseAllowsSequentialHandoff)
{
    // Legal pattern in every build: one thread uses the endpoint,
    // releases ownership, another takes over. Must not abort.
    proxy::Node n(proxy::NodeConfig{.id = 0});
    proxy::Endpoint& ep = n.create_endpoint();
    uint8_t b = 1;
    EXPECT_TRUE(ep.enq(&b, 1, 0, ep.id()));
    ep.release_ownership();
    std::thread other([&] { EXPECT_TRUE(ep.enq(&b, 1, 0, ep.id())); });
    other.join();
}

TEST(OwnershipLint, ProxyThreadsBindTheirOwnShards)
{
    // Every proxy thread binds its private ThreadOwner at proxy_main
    // entry, so cross-proxy loopback traffic exercises the
    // handle_command/handle_packet asserts on all four shards
    // without aborting — and stop() releases the bindings so a
    // restart's fresh threads may rebind.
    proxy::Node n(proxy::NodeConfig{.id = 0, .num_proxies = 4});
    std::vector<proxy::Endpoint*> eps;
    for (int i = 0; i < 4; ++i)
        eps.push_back(&n.create_endpoint());
    std::vector<uint64_t> dst(4, 0);
    uint16_t seg = eps[0]->register_segment(dst.data(), dst.size() * 8);
    for (int round = 0; round < 2; ++round) {
        n.start();
        proxy::Flag rsync{0};
        for (int i = 0; i < 4; ++i) {
            uint64_t v = static_cast<uint64_t>(round * 10 + i);
            while (!eps[static_cast<size_t>(i)]->put(
                &v, 0, seg, static_cast<uint64_t>(i) * 8, 8, nullptr,
                &rsync)) {
                std::this_thread::yield();
            }
            proxy::flag_wait_ge(rsync, static_cast<uint64_t>(i) + 1);
        }
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(dst[static_cast<size_t>(i)],
                      static_cast<uint64_t>(round * 10 + i));
        n.stop();
    }
}

#ifdef MSGPROXY_CHECK_OWNERSHIP

TEST(OwnershipLintDeathTest, SecondProducerThreadAborts)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            proxy::Node n(proxy::NodeConfig{.id = 0});
            proxy::Endpoint& ep = n.create_endpoint();
            uint8_t b = 0;
            ep.enq(&b, 1, 0, ep.id()); // binds this thread as producer
            std::thread violator(
                [&] { ep.enq(&b, 1, 0, ep.id()); });
            violator.join();
        },
        "thread-ownership violation");
}

TEST(OwnershipLintDeathTest, SecondConsumerThreadAborts)
{
    testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            proxy::Node n(proxy::NodeConfig{.id = 0});
            proxy::Endpoint& ep = n.create_endpoint();
            n.start();
            // Running proxy exercises the proxy-thread asserts
            // (handle_command/handle_packet) on the legal path.
            uint8_t b = 0;
            proxy::Flag lsync{0};
            while (!ep.enq(&b, 1, 0, ep.id(), &lsync))
                std::this_thread::yield();
            proxy::flag_wait_ge(lsync, 1);
            std::vector<uint8_t> out;
            ep.try_recv(out); // binds this thread as ring consumer
            std::thread violator([&] {
                std::vector<uint8_t> out2;
                ep.try_recv(out2); // second consumer: must abort
            });
            violator.join();
        },
        "thread-ownership violation");
}

#endif // MSGPROXY_CHECK_OWNERSHIP

} // namespace
