/// \file
/// Application self-check tests: every Table 5 application must
/// produce numerically valid results (LU residual, FFT vs direct DFT,
/// sorted output, force-approximation error, momentum conservation,
/// replica consistency) on single- and multi-node runs across
/// architectures, and must show parallel speedup on a compute-heavy
/// workload.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "apps/apps.h"
#include "machine/design_point.h"

namespace {

rma::SystemConfig
cfg_for(const std::string& dp_name, int nodes, int ppn = 1)
{
    rma::SystemConfig cfg;
    auto dp = machine::design_point_by_name(dp_name);
    EXPECT_TRUE(dp.has_value());
    cfg.design = *dp;
    cfg.nodes = nodes;
    cfg.procs_per_node = ppn;
    return cfg;
}

// (app index, design point, nodes)
using Param = std::tuple<int, std::string, int>;

class AppValidity : public ::testing::TestWithParam<Param>
{
};

TEST_P(AppValidity, SelfCheckPasses)
{
    auto [app_idx, dp, nodes] = GetParam();
    const auto& entry = apps::all_apps()[static_cast<size_t>(app_idx)];
    auto cfg = cfg_for(dp, nodes);
    auto res = entry.fn(cfg, /*scale=*/4);
    EXPECT_TRUE(res.valid) << entry.name << " on " << dp << " with "
                           << nodes << " nodes: checksum "
                           << res.checksum;
    EXPECT_GT(res.elapsed_us, 0.0);
    EXPECT_EQ(res.run.faults, 0u);
}

std::string
param_name(const ::testing::TestParamInfo<Param>& info)
{
    const auto& entry =
        apps::all_apps()[static_cast<size_t>(std::get<0>(info.param))];
    std::string n = entry.name;
    for (auto& c : n)
        if (c == '-')
            c = '_';
    return n + "_" + std::get<1>(info.param) + "_n" +
           std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AppValidity,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(std::string("HW1"),
                                         std::string("MP1")),
                       ::testing::Values(1, 4)),
    param_name);

// A second architecture sweep on a single representative app per
// style keeps the matrix tractable while covering MP0/MP2/SW1/HW0.
class AppArchSweep
    : public ::testing::TestWithParam<std::tuple<int, std::string>>
{
};

TEST_P(AppArchSweep, SelfCheckPasses)
{
    auto [app_idx, dp] = GetParam();
    const auto& entry = apps::all_apps()[static_cast<size_t>(app_idx)];
    auto cfg = cfg_for(dp, 4);
    auto res = entry.fn(cfg, /*scale=*/4);
    EXPECT_TRUE(res.valid) << entry.name << " on " << dp;
}

INSTANTIATE_TEST_SUITE_P(
    Styles, AppArchSweep,
    ::testing::Combine(::testing::Values(0, 1, 6), // Moldy, LU, Sample
                       ::testing::Values(std::string("HW0"),
                                         std::string("MP0"),
                                         std::string("MP2"),
                                         std::string("SW1"))),
    [](const auto& info) {
        const auto& entry =
            apps::all_apps()[static_cast<size_t>(std::get<0>(info.param))];
        std::string n = entry.name;
        for (auto& c : n)
            if (c == '-')
                c = '_';
        return n + "_" + std::get<1>(info.param);
    });

class AppSmpNodes : public ::testing::TestWithParam<int>
{
};

TEST_P(AppSmpNodes, RunsOnMultiProcessorNodes)
{
    const auto& entry =
        apps::all_apps()[static_cast<size_t>(GetParam())];
    auto cfg = cfg_for("MP1", /*nodes=*/2, /*ppn=*/2);
    auto res = entry.fn(cfg, /*scale=*/4);
    EXPECT_TRUE(res.valid) << entry.name << " on 2x2";
    EXPECT_EQ(res.run.faults, 0u);
}

INSTANTIATE_TEST_SUITE_P(TwoByTwo, AppSmpNodes, ::testing::Range(0, 10),
                         [](const auto& info) {
                             std::string n =
                                 apps::all_apps()[static_cast<size_t>(
                                                      info.param)]
                                     .name;
                             for (auto& c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(AppBehaviour, LuSpeedsUpWithMoreProcessors)
{
    auto r1 = apps::run_lu(cfg_for("HW1", 1), /*scale=*/1);
    auto r4 = apps::run_lu(cfg_for("HW1", 4), /*scale=*/1);
    ASSERT_TRUE(r1.valid);
    ASSERT_TRUE(r4.valid);
    EXPECT_GT(r1.elapsed_us / r4.elapsed_us, 1.5)
        << "1p: " << r1.elapsed_us << " us, 4p: " << r4.elapsed_us;
}

TEST(AppBehaviour, WaterSpeedsUpWithMoreProcessors)
{
    auto r1 = apps::run_water(cfg_for("HW1", 1), /*scale=*/2);
    auto r4 = apps::run_water(cfg_for("HW1", 4), /*scale=*/2);
    ASSERT_TRUE(r1.valid);
    ASSERT_TRUE(r4.valid);
    EXPECT_GT(r1.elapsed_us / r4.elapsed_us, 1.5);
}

TEST(AppBehaviour, SampleIsCommunicationBound)
{
    // Sample's fine-grained messages make MP1 visibly slower than
    // HW1 (the paper's headline comparison).
    auto hw = apps::run_sample(cfg_for("HW1", 4), /*scale=*/4);
    auto mp = apps::run_sample(cfg_for("MP1", 4), /*scale=*/4);
    ASSERT_TRUE(hw.valid);
    ASSERT_TRUE(mp.valid);
    EXPECT_GT(mp.elapsed_us, hw.elapsed_us);
}

TEST(AppBehaviour, TrafficStatisticsAreReasonable)
{
    auto res = apps::run_wator(cfg_for("MP1", 4), /*scale=*/2);
    ASSERT_TRUE(res.valid);
    EXPECT_GT(res.run.ops, 100u);
    // Wator's messages are small (a handful of fish records).
    EXPECT_LT(res.run.avg_msg_bytes, 512.0);
}

} // namespace
