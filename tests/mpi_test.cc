/// \file
/// Tests for the MPI-style layer: blocking and non-blocking tagged
/// send/receive, eager vs rendezvous protocol selection, matching
/// order, wildcards, truncation, and a ring exchange — across all
/// design points.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "am/am.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "machine/design_point.h"
#include "mpi/mpi.h"
#include "rma/system.h"

namespace {

rma::SystemConfig
cfg_for(const std::string& dp_name, int nodes = 2, int ppn = 1)
{
    rma::SystemConfig cfg;
    auto dp = machine::design_point_by_name(dp_name);
    EXPECT_TRUE(dp.has_value());
    cfg.design = *dp;
    cfg.nodes = nodes;
    cfg.procs_per_node = ppn;
    return cfg;
}

class MpiAllBackends : public ::testing::TestWithParam<std::string>
{
};

TEST_P(MpiAllBackends, BlockingSendRecvSmall)
{
    backend::run_app(cfg_for(GetParam()), [](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        mpi::Comm comm(ctx, ep);
        if (comm.rank() == 0) {
            double v[4] = {1.5, 2.5, 3.5, 4.5};
            comm.send(v, sizeof(v), 1, /*tag=*/7);
        } else {
            double v[4] = {0, 0, 0, 0};
            mpi::Status st;
            comm.recv(v, sizeof(v), 0, 7, &st);
            EXPECT_EQ(st.source, 0);
            EXPECT_EQ(st.tag, 7);
            EXPECT_EQ(st.bytes, sizeof(v));
            EXPECT_DOUBLE_EQ(v[3], 4.5);
        }
    });
}

TEST_P(MpiAllBackends, RendezvousLargeMessage)
{
    backend::run_app(cfg_for(GetParam()), [](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        mpi::Comm comm(ctx, ep);
        const size_t n = 64 * 1024; // well above kEagerBytes
        if (comm.rank() == 0) {
            // Rendezvous buffers must be in the registered address
            // space (the data lands with a one-sided bulk store).
            auto* buf = ctx.alloc_n<uint8_t>(n);
            for (size_t i = 0; i < n; ++i)
                buf[i] = static_cast<uint8_t>(i * 7);
            comm.send(buf, n, 1, 3);
        } else {
            auto* buf = ctx.alloc_n<uint8_t>(n);
            std::memset(buf, 0, n);
            mpi::Status st;
            comm.recv(buf, n, 0, 3, &st);
            EXPECT_EQ(st.bytes, n);
            for (size_t i = 0; i < n; i += 4097)
                ASSERT_EQ(buf[i], static_cast<uint8_t>(i * 7));
        }
    });
}

TEST_P(MpiAllBackends, UnexpectedMessagesBufferUntilPosted)
{
    backend::run_app(cfg_for(GetParam()), [](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        mpi::Comm comm(ctx, ep);
        if (comm.rank() == 0) {
            for (int i = 0; i < 5; ++i) {
                int v = 100 + i;
                comm.send(&v, sizeof(v), 1, i);
            }
        } else {
            ctx.compute(500.0); // let everything arrive unexpected
            // Receive in reverse tag order: matching is by tag, not
            // arrival order.
            for (int i = 4; i >= 0; --i) {
                int v = 0;
                comm.recv(&v, sizeof(v), 0, i);
                EXPECT_EQ(v, 100 + i);
            }
        }
    });
}

TEST_P(MpiAllBackends, SameTagMatchesInSendOrder)
{
    backend::run_app(cfg_for(GetParam()), [](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        mpi::Comm comm(ctx, ep);
        if (comm.rank() == 0) {
            for (int i = 0; i < 8; ++i) {
                int v = i;
                comm.send(&v, sizeof(v), 1, 5);
            }
        } else {
            for (int i = 0; i < 8; ++i) {
                int v = -1;
                comm.recv(&v, sizeof(v), 0, 5);
                EXPECT_EQ(v, i) << "message order violated";
            }
        }
    });
}

TEST_P(MpiAllBackends, AnySourceAnyTagWildcards)
{
    backend::run_app(cfg_for(GetParam(), /*nodes=*/4), [](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        mpi::Comm comm(ctx, ep);
        coll::Collective coll(ctx, &ep);
        if (comm.rank() != 0) {
            int v = 1000 + comm.rank();
            comm.send(&v, sizeof(v), 0, comm.rank() * 10);
        } else {
            int seen_mask = 0;
            for (int i = 0; i < 3; ++i) {
                int v = 0;
                mpi::Status st;
                comm.recv(&v, sizeof(v), mpi::kAnySource, mpi::kAnyTag,
                          &st);
                EXPECT_EQ(v, 1000 + st.source);
                EXPECT_EQ(st.tag, st.source * 10);
                seen_mask |= 1 << st.source;
            }
            EXPECT_EQ(seen_mask, 0b1110);
        }
        coll.barrier();
    });
}

TEST_P(MpiAllBackends, NonBlockingOverlap)
{
    backend::run_app(cfg_for(GetParam()), [](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        mpi::Comm comm(ctx, ep);
        const size_t n = 2048;
        if (comm.rank() == 0) {
            std::vector<int> a(n / 4), b(n / 4);
            std::iota(a.begin(), a.end(), 0);
            std::iota(b.begin(), b.end(), 5000);
            mpi::Request r1 = comm.isend(a.data(), n, 1, 1);
            mpi::Request r2 = comm.isend(b.data(), n, 1, 2);
            comm.wait(r1);
            comm.wait(r2);
        } else {
            std::vector<int> a(n / 4, -1), b(n / 4, -1);
            // Post both receives up front (tags distinguish them).
            mpi::Request r2 = comm.irecv(b.data(), n, 0, 2);
            mpi::Request r1 = comm.irecv(a.data(), n, 0, 1);
            ctx.compute(25.0); // overlapped "work"
            comm.wait(r1);
            comm.wait(r2);
            EXPECT_EQ(a[10], 10);
            EXPECT_EQ(b[10], 5010);
        }
    });
}

TEST_P(MpiAllBackends, TruncationKeepsPrefix)
{
    backend::run_app(cfg_for(GetParam()), [](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        mpi::Comm comm(ctx, ep);
        if (comm.rank() == 0) {
            uint8_t big[256];
            for (int i = 0; i < 256; ++i)
                big[i] = static_cast<uint8_t>(i);
            comm.send(big, sizeof(big), 1, 0);
        } else {
            uint8_t small[64];
            mpi::Status st;
            comm.recv(small, sizeof(small), 0, 0, &st);
            EXPECT_EQ(st.bytes, 64u);
            EXPECT_EQ(small[63], 63);
        }
    });
}

TEST_P(MpiAllBackends, RingExchange)
{
    backend::run_app(cfg_for(GetParam(), /*nodes=*/4), [](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        mpi::Comm comm(ctx, ep);
        coll::Collective coll(ctx, &ep);
        int me = comm.rank();
        int p = comm.size();
        // Pass a token around the ring, accumulating rank ids.
        int64_t token = 0;
        if (me == 0) {
            token = 1;
            comm.send(&token, sizeof(token), 1 % p, 9);
            comm.recv(&token, sizeof(token), (p - 1) % p, 9);
            // token visited every rank once.
            EXPECT_EQ(token, 1 + (p - 1) * p / 2);
        } else {
            comm.recv(&token, sizeof(token), me - 1, 9);
            token += me;
            comm.send(&token, sizeof(token), (me + 1) % p, 9);
        }
        coll.barrier();
    });
}

INSTANTIATE_TEST_SUITE_P(AllDesignPoints, MpiAllBackends,
                         ::testing::Values("HW0", "HW1", "MP0", "MP1",
                                           "MP2", "SW1"),
                         [](const auto& info) { return info.param; });

} // namespace
