#!/usr/bin/env bash
# Correctness-tooling driver: one command per analysis mode, or all
# of them in sequence.
#
#   tools/check.sh [mode...]
#
# Modes (default: all):
#   plain      RelWithDebInfo build, full ctest suite (tier-1 gate)
#   tsan       ThreadSanitizer build; runs the sanitize-ok tests
#              (ucontext simulator tests are not registered in
#              shadow-memory-sanitized trees, so plain ctest is
#              already the right subset)
#   asan       AddressSanitizer+UBSan build; same test subset
#   ownership  plain build with MSGPROXY_CHECK_OWNERSHIP=ON thread-
#              ownership assertions; full ctest suite
#   chaos      deterministic fault-injection suite (ctest -L chaos:
#              seeded drop/dup/reorder/corrupt over real 2-node
#              runtimes, plus the cluster crash-fault storms, which
#              carry the chaos label too) in the plain AND
#              ThreadSanitizer trees
#   cluster    cluster crash-fault gate: runs the seeded 3-node
#              kill/restart and partition/heal storms over both wire
#              backends (tests/cluster_chaos_test.cc) and asserts
#              exact completion accounting plus zero pooled-packet
#              custody leaks (every PKT_LEAKS_TOTAL line must be 0)
#   lint       project lint (tools/lint/): builds the portable
#              msgproxy_lint analyzer, runs the mutation corpus
#              (tests/lint/) and the zero-findings gate over src/,
#              then the clang-tidy plugin checks when the LLVM/Clang
#              dev stack is present (explicit SKIP line otherwise —
#              never a silent pass)
#   tidy       clang-tidy (.clang-tidy profile) over src/, using the
#              compile_commands.json from the plain build
#   bench-smoke  builds the bench binaries and runs the multi-proxy
#              ablation + real-runtime scaling sweeps with tiny
#              iteration counts, so bench bit-rot shows up in the
#              matrix without paying for full benchmark runs; also
#              asserts the steady-state zero-allocation invariant
#              (POOL_MISSES_TOTAL=0 from the scaling sweep), that the
#              traced Table 2 run drops no events (TRACE_DROPS_TOTAL=0)
#              and that the tracing-disabled pingpong matches the
#              committed BENCH_runtime.json within smoke noise
#   obs        observability smoke: runs the traced 8-byte GET
#              breakdown (bench_table2_runtime --quick), asserts the
#              stage ordering is monotone, the stage sum telescopes to
#              the end-to-end latency, no trace events were dropped,
#              and the exported Chrome-trace + stats-snapshot JSON
#              parse cleanly with no inf/nan
#   sockets    socket-transport gate: runs the transport-labeled
#              tests (ctest -L transport: the typed InProc/Socket
#              runtime suite, teardown-ordering and TCP-loopback
#              tests, seeded socket chaos), then re-runs the
#              real-runtime scaling sweep with
#              MSGPROXY_TRANSPORT=socket and asserts the same
#              custody invariants as bench-smoke hold over the wire
#              (POOL_MISSES_TOTAL=0, PKT_LEAKS_TOTAL=0)
#   endpoints  endpoint-scale gate: runs bench_endpoint_sweep --quick
#              (1k -> 64k endpoints, fixed active fraction) and
#              asserts flat p99 submit->wire-out across the sweep
#              (ENDPOINT_P99_FLAT=1, tolerance via
#              MSGPROXY_ENDPOINT_TOL), an O(1) idle probe
#              (IDLE_PROBE_O1=1), zero aliased doorbell re-visits
#              (DB_CARRY_EMPTY_TOTAL=0), and the usual allocation +
#              custody invariants (POOL_MISSES_TOTAL=0,
#              PKT_LEAKS_TOTAL=0)
#   perf       full runs of bench_runtime_micro + bench_runtime_scaling
#              and a delta report of the freshly written
#              BENCH_runtime.json against the committed snapshot
#              (positive latency delta = slower than committed); on
#              hosts with >= 4 cores also asserts the saturation
#              sweeps (enq_sat64, put_sat4k) keep their throughput
#              non-decreasing across P=1->2->4 within
#              MSGPROXY_PERF_TOL (default 5%) — explicit SKIP line
#              on smaller hosts
#
# Each mode configures its own build tree (build-<mode>/, except
# plain which uses build/), so modes never contaminate each other.
# Equivalent one-command entry points also exist as CMake presets
# (CMakePresets.json): default, tsan, asan-ubsan, ownership.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MODES=("$@")
[ ${#MODES[@]} -eq 0 ] && MODES=(plain lint tsan asan ownership tidy bench-smoke sockets cluster endpoints obs)

banner() { printf '\n=== %s ===\n' "$*"; }

build_and_test() { # <tree> <ctest-args...> -- <cmake-args...>
    local tree=$1; shift
    local ctest_args=()
    while [ $# -gt 0 ] && [ "$1" != "--" ]; do ctest_args+=("$1"); shift; done
    [ $# -gt 0 ] && shift # drop --
    cmake -B "$tree" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@"
    cmake --build "$tree" -j "$JOBS"
    ctest --test-dir "$tree" --output-on-failure -j "$JOBS" "${ctest_args[@]}"
}

for mode in "${MODES[@]}"; do
    case "$mode" in
      plain)
        banner "plain build + full test suite"
        build_and_test build
        ;;
      tsan)
        banner "ThreadSanitizer build + sanitize-ok tests"
        build_and_test build-tsan -L sanitize-ok -- \
            -DMSGPROXY_SANITIZE=thread
        ;;
      asan)
        banner "ASan+UBSan build + sanitize-ok tests"
        build_and_test build-asan -L sanitize-ok -- \
            -DMSGPROXY_SANITIZE=address,undefined
        ;;
      ownership)
        banner "ownership-lint build + full test suite"
        build_and_test build-ownership -- \
            -DMSGPROXY_CHECK_OWNERSHIP=ON
        ;;
      chaos)
        banner "chaos suite, plain tree"
        build_and_test build -L chaos
        banner "chaos suite, ThreadSanitizer tree"
        build_and_test build-tsan -L chaos -- \
            -DMSGPROXY_SANITIZE=thread
        ;;
      lint)
        banner "msgproxy lint: wire-path invariants over src/"
        cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
        cmake --build build -j "$JOBS" --target msgproxy_lint
        # Zero false negatives: every bad_X.cc in the corpus must be
        # flagged by check msgproxy-X, every good_X.cc must be clean.
        ./build/tools/lint/msgproxy_lint --corpus tests/lint
        # Zero findings over the tree itself.
        ./build/tools/lint/msgproxy_lint --root . src
        # Full-fidelity clang-tidy plugin (AST-based variants of the
        # same checks). Needs the LLVM/Clang dev stack plus the
        # clang-tidy binary; skip is EXPLICIT so a green run never
        # silently means "plugin not exercised".
        if cmake --build build -j "$JOBS" --target MsgProxyTidyModule \
                >/dev/null 2>&1 && command -v clang-tidy >/dev/null 2>&1; then
            find src -name '*.cc' -print0 |
                xargs -0 -n 4 -P "$JOBS" clang-tidy -p build --quiet \
                    -load "$(find build/tools/lint -name 'libMsgProxyTidyModule*' | head -n1)" \
                    --checks='-*,msgproxy-*'
        else
            echo "lint: clang-tidy plugin SKIPPED (needs LLVM/Clang dev headers + clang-tidy); portable analyzer gates passed above"
        fi
        ;;
      tidy)
        banner "clang-tidy over src/"
        if ! command -v clang-tidy >/dev/null 2>&1; then
            echo "clang-tidy not installed; skipping (install LLVM to enable)"
            continue
        fi
        # Reuse (or create) the plain tree's compilation database.
        if [ ! -f build/compile_commands.json ]; then
            cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
        fi
        # Headers are covered via HeaderFilterRegex when their
        # including .cc files are analyzed.
        find src -name '*.cc' -print0 |
            xargs -0 -n 4 -P "$JOBS" clang-tidy -p build --quiet
        ;;
      bench-smoke)
        banner "bench build + quick multi-proxy sweeps"
        cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
        cmake --build build -j "$JOBS" --target \
            bench_ablation_multi_proxy bench_runtime_scaling \
            bench_fault_sweep bench_table2_runtime
        (cd build/bench && ./bench_ablation_multi_proxy --quick)
        # Fault sweep smoke: the reliable path must complete under
        # injected loss without leaking packet custody.
        fault_out=$( (cd build/bench && ./bench_fault_sweep --quick) | tee /dev/stderr )
        if ! grep -q '^PKT_LEAKS_TOTAL=0$' <<<"$fault_out"; then
            echo "bench-smoke: packet custody leak in fault sweep (expected PKT_LEAKS_TOTAL=0):" >&2
            grep '^PKT_LEAKS_TOTAL=' <<<"$fault_out" >&2 || true
            exit 1
        fi
        scaling_out=$( (cd build/bench && ./bench_runtime_scaling --quick) | tee /dev/stderr )
        # Steady-state zero-allocation gate: the pooled wire path
        # must serve every packet of the sweep without heap fallback.
        if ! grep -q '^POOL_MISSES_TOTAL=0$' <<<"$scaling_out"; then
            echo "bench-smoke: pool misses detected (expected POOL_MISSES_TOTAL=0):" >&2
            grep '^POOL_MISSES_TOTAL=' <<<"$scaling_out" >&2 || true
            exit 1
        fi
        # Custody-leak gate: after teardown every pooled packet must
        # be back in its slab and every heap fallback freed.
        if ! grep -q '^PKT_LEAKS_TOTAL=0$' <<<"$scaling_out"; then
            echo "bench-smoke: packet custody leak (expected PKT_LEAKS_TOTAL=0):" >&2
            grep '^PKT_LEAKS_TOTAL=' <<<"$scaling_out" >&2 || true
            exit 1
        fi
        # Observability gates: the traced run must not drop events
        # (ring sized for the workload), and the tracing-DISABLED
        # pingpong must match the committed trajectory within smoke
        # noise (factor 3 either way: quick runs on a shared host are
        # too noisy for a tight bar — tools/check.sh perf is the
        # precise comparison).
        t2_out=$( (cd build/bench && ./bench_table2_runtime --quick) | tee /dev/stderr )
        if ! grep -q '^TRACE_DROPS_TOTAL=0$' <<<"$t2_out"; then
            echo "bench-smoke: trace ring dropped events (expected TRACE_DROPS_TOTAL=0):" >&2
            grep '^TRACE_DROPS_TOTAL=' <<<"$t2_out" >&2 || true
            exit 1
        fi
        put8_new=$(sed -n 's/^PINGPONG_PUT8_NS=//p' <<<"$t2_out")
        put8_old=$(git show HEAD:BENCH_runtime.json 2>/dev/null |
            sed -n 's/.*"op":"pingpong_put8","P":1,"latency_ns":\([0-9.]*\).*/\1/p')
        if [ -n "$put8_new" ] && [ -n "$put8_old" ]; then
            if ! awk -v n="$put8_new" -v o="$put8_old" \
                'BEGIN { exit !(o > 0 && n > o / 3 && n < o * 3) }'; then
                echo "bench-smoke: tracing-disabled pingpong off the committed baseline:" >&2
                echo "  committed=$put8_old ns  measured=$put8_new ns (allowed 3x)" >&2
                exit 1
            fi
            echo "pingpong_put8 (tracing disabled): $put8_new ns vs committed $put8_old ns"
        fi
        ;;
      sockets)
        banner "socket transport: transport-labeled tests"
        build_and_test build -L transport
        banner "socket transport: wire custody gates"
        cmake --build build -j "$JOBS" --target bench_runtime_scaling
        sock_out=$( (cd build/bench &&
            MSGPROXY_TRANSPORT=socket ./bench_runtime_scaling --quick) |
            tee /dev/stderr )
        # Same invariants as bench-smoke, now with every inter-node
        # packet crossing a real socket: the pooled wire path must
        # stay allocation-free and surrender every borrowed packet
        # back to its slab after teardown.
        for gate in POOL_MISSES_TOTAL=0 PKT_LEAKS_TOTAL=0; do
            if ! grep -q "^$gate$" <<<"$sock_out"; then
                echo "sockets: expected $gate over the socket transport:" >&2
                grep "^${gate%%=*}=" <<<"$sock_out" >&2 || true
                exit 1
            fi
        done
        ;;
      cluster)
        banner "cluster crash-fault storms: exact accounting + custody"
        cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
        cmake --build build -j "$JOBS" --target cluster_chaos_test
        cluster_out=$(./build/tests/cluster_chaos_test | tee /dev/stderr)
        # Every storm, the failover test and each detection-latency
        # probe print their pooled-packet balance; all must be zero
        # and at least one must appear (a silent run is not a pass).
        if ! grep -q '^PKT_LEAKS_TOTAL=' <<<"$cluster_out"; then
            echo "cluster: no PKT_LEAKS_TOTAL lines in the storm output" >&2
            exit 1
        fi
        if grep '^PKT_LEAKS_TOTAL=' <<<"$cluster_out" | grep -vq '=0$'; then
            echo "cluster: pooled packets leaked after settle:" >&2
            grep '^PKT_LEAKS_TOTAL=' <<<"$cluster_out" | grep -v '=0$' >&2
            exit 1
        fi
        ;;
      endpoints)
        banner "endpoint scale: hierarchical-doorbell sweep gates"
        cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
        cmake --build build -j "$JOBS" --target bench_endpoint_sweep
        ep_out=$( (cd build/bench && ./bench_endpoint_sweep --quick) |
            tee /dev/stderr )
        # Flat p99 at fixed active fraction is the whole point of the
        # hierarchical doorbell: discovery cost follows the ringing
        # set, not the id space. The idle probe must stay one summary
        # load (consumes frozen while polls climb) and no carry may
        # ever re-visit an endpoint without backlog.
        for gate in ENDPOINT_P99_FLAT=1 IDLE_PROBE_O1=1 \
                    DB_CARRY_EMPTY_TOTAL=0 POOL_MISSES_TOTAL=0 \
                    PKT_LEAKS_TOTAL=0; do
            if ! grep -q "^$gate$" <<<"$ep_out"; then
                echo "endpoints: expected $gate over the sweep:" >&2
                grep "^${gate%%=*}=" <<<"$ep_out" >&2 || true
                exit 1
            fi
        done
        ;;
      obs)
        banner "observability smoke: traced GET breakdown + JSON export"
        cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
        cmake --build build -j "$JOBS" --target bench_table2_runtime
        obs_out=$( (cd build/bench && ./bench_table2_runtime --quick) | tee /dev/stderr )
        for gate in STAGES_MONOTONE=1 STAGE_SUM_WITHIN_10PCT=1 \
                    TRACE_DROPS_TOTAL=0; do
            if ! grep -q "^$gate$" <<<"$obs_out"; then
                echo "obs: expected $gate:" >&2
                grep "^${gate%%=*}=" <<<"$obs_out" >&2 || true
                exit 1
            fi
        done
        # The exported artifacts must be valid JSON with finite
        # numbers only (json.loads rejects bare inf/nan by default
        # via parse_constant).
        if command -v python3 >/dev/null 2>&1; then
            python3 - build/bench/bench_table2_runtime.trace.json \
                       build/bench/bench_table2_runtime.stats.json <<'PY'
import json, sys
def no_const(x):
    raise ValueError(f"non-finite constant {x} in JSON")
for f in sys.argv[1:]:
    with open(f) as fh:
        doc = json.load(fh, parse_constant=no_const)
    print(f"{f}: valid JSON")
trace = json.load(open(sys.argv[1]))
assert trace["traceEvents"], "empty trace"
stats = json.load(open(sys.argv[2]))
for key in ("counters", "per_proxy", "op_latency_ns", "trace",
            "utilization", "endpoints_owned"):
    assert key in stats, f"missing {key} in stats snapshot"
assert len(stats["utilization"]) == len(stats["endpoints_owned"]), \
    "utilization / endpoints_owned proxy-count mismatch"
for u in stats["utilization"]:
    assert 0.0 <= u <= 1.0, f"utilization {u} outside [0,1]"
assert any(o["op"] == "get" for o in stats["op_latency_ns"]), \
    "no GET latency histogram in snapshot"
print("stats snapshot: schema ok")
PY
        else
            echo "python3 not found; skipping JSON validation"
        fi
        ;;
      perf)
        banner "runtime benches + delta vs committed BENCH_runtime.json"
        cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
        cmake --build build -j "$JOBS" --target \
            bench_runtime_micro bench_runtime_scaling \
            bench_table2_runtime
        committed=$(mktemp)
        if ! git show HEAD:BENCH_runtime.json >"$committed" 2>/dev/null; then
            echo "no committed BENCH_runtime.json; writing first snapshot only"
            committed=""
        fi
        (cd build/bench && ./bench_runtime_micro --benchmark_min_time=0.3)
        (cd build/bench && ./bench_runtime_scaling)
        (cd build/bench && ./bench_table2_runtime)
        if [ -n "$committed" ]; then
            banner "perf delta (new vs committed; latency: + = slower)"
            awk -F'"' '
                /"bench"/ {
                    p = $0;   sub(/.*"P":/, "", p);          sub(/,.*/, "", p)
                    lat = $0; sub(/.*"latency_ns":/, "", lat); sub(/,.*/, "", lat)
                    key = $4 "/" $8 "/P" p
                    # Fault-sweep rows carry a drop_pct field; fold it
                    # into the key so loss rates do not collide now
                    # that P is always the proxy count.
                    if ($0 ~ /"drop_pct":/) {
                        dp = $0; sub(/.*"drop_pct":/, "", dp); sub(/[,}].*/, "", dp)
                        key = key "/drop" dp
                    }
                    if (FILENAME == ARGV[1]) base_lat[key] = lat
                    else new_lat[key] = lat
                }
                END {
                    printf "%-40s %12s %12s %8s\n", "bench/op/P", "old ns", "new ns", "delta"
                    for (k in new_lat) {
                        if (k in base_lat && base_lat[k] > 0) {
                            d = (new_lat[k] - base_lat[k]) / base_lat[k] * 100
                            printf "%-40s %12.1f %12.1f %+7.1f%%\n", k, base_lat[k], new_lat[k], d
                        } else {
                            printf "%-40s %12s %12.1f %8s\n", k, "-", new_lat[k], "new"
                        }
                    }
                }' "$committed" BENCH_runtime.json | sort
            rm -f "$committed"
        fi
        # Monotone-scaling gate (ISSUE 8): adding proxies must not
        # lose saturation throughput. Only meaningful when every
        # proxy of the P=4 sweep can have its own core; smaller
        # hosts oversubscribe and the numbers say nothing about the
        # runtime, so the skip is explicit, never silent.
        if [ "$(nproc)" -lt 4 ]; then
            echo "perf: monotone-scaling gate SKIPPED (nproc=$(nproc) < 4; P=4 sweep would oversubscribe cores)"
        else
            tol="${MSGPROXY_PERF_TOL:-0.05}"
            banner "monotone-scaling gate (tolerance ${tol}, override with MSGPROXY_PERF_TOL)"
            if ! awk -v tol="$tol" -F'"' '
                /"bench":"runtime_scaling"/ {
                    p = $0; sub(/.*"P":/, "", p); sub(/,.*/, "", p)
                    r = $0; sub(/.*"msgs_per_sec":/, "", r); sub(/[,}].*/, "", r)
                    rate[$8 "/" p] = r
                }
                END {
                    ok = 1
                    nops = split("enq_sat64 put_sat4k", ops, " ")
                    nps = split("1 2 4", ps, " ")
                    for (i = 1; i <= nops; ++i) {
                        op = ops[i]
                        miss = 0
                        for (j = 1; j <= nps; ++j)
                            if (!((op "/" ps[j]) in rate)) miss = 1
                        if (miss) {
                            printf "perf: missing %s P-sweep rows in BENCH_runtime.json\n", op
                            ok = 0
                            continue
                        }
                        for (j = 2; j <= nps; ++j) {
                            lo = rate[op "/" ps[j - 1]]
                            hi = rate[op "/" ps[j]]
                            if (hi + 0 < lo * (1 - tol)) {
                                printf "perf: %s throughput drops P=%s->%s: %.0f -> %.0f msgs/s (tolerance %.0f%%)\n", \
                                    op, ps[j - 1], ps[j], lo, hi, tol * 100
                                ok = 0
                            }
                        }
                        printf "perf: %s P-sweep %.0f / %.0f / %.0f msgs/s (P=1/2/4)%s\n", \
                            op, rate[op "/1"], rate[op "/2"], rate[op "/4"], \
                            ok ? " — monotone within tolerance" : ""
                    }
                    exit ok ? 0 : 1
                }' BENCH_runtime.json; then
                echo "perf: monotone-scaling gate FAILED (widen with MSGPROXY_PERF_TOL=<fraction> only with a written justification)" >&2
                exit 1
            fi
        fi
        ;;
      *)
        echo "unknown mode: $mode (expected plain|lint|tsan|asan|ownership|chaos|cluster|tidy|bench-smoke|sockets|endpoints|obs|perf)" >&2
        exit 2
        ;;
    esac
done

banner "all requested checks passed"
