#!/usr/bin/env bash
# Correctness-tooling driver: one command per analysis mode, or all
# of them in sequence.
#
#   tools/check.sh [mode...]
#
# Modes (default: all):
#   plain      RelWithDebInfo build, full ctest suite (tier-1 gate)
#   tsan       ThreadSanitizer build; runs the sanitize-ok tests
#              (ucontext simulator tests are not registered in
#              shadow-memory-sanitized trees, so plain ctest is
#              already the right subset)
#   asan       AddressSanitizer+UBSan build; same test subset
#   ownership  plain build with MSGPROXY_CHECK_OWNERSHIP=ON thread-
#              ownership assertions; full ctest suite
#   tidy       clang-tidy (.clang-tidy profile) over src/, using the
#              compile_commands.json from the plain build
#   bench-smoke  builds the bench binaries and runs the multi-proxy
#              ablation + real-runtime scaling sweeps with tiny
#              iteration counts, so bench bit-rot shows up in the
#              matrix without paying for full benchmark runs
#
# Each mode configures its own build tree (build-<mode>/, except
# plain which uses build/), so modes never contaminate each other.
# Equivalent one-command entry points also exist as CMake presets
# (CMakePresets.json): default, tsan, asan-ubsan, ownership.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MODES=("$@")
[ ${#MODES[@]} -eq 0 ] && MODES=(plain tsan asan ownership tidy bench-smoke)

banner() { printf '\n=== %s ===\n' "$*"; }

build_and_test() { # <tree> <ctest-args...> -- <cmake-args...>
    local tree=$1; shift
    local ctest_args=()
    while [ $# -gt 0 ] && [ "$1" != "--" ]; do ctest_args+=("$1"); shift; done
    [ $# -gt 0 ] && shift # drop --
    cmake -B "$tree" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@"
    cmake --build "$tree" -j "$JOBS"
    ctest --test-dir "$tree" --output-on-failure -j "$JOBS" "${ctest_args[@]}"
}

for mode in "${MODES[@]}"; do
    case "$mode" in
      plain)
        banner "plain build + full test suite"
        build_and_test build
        ;;
      tsan)
        banner "ThreadSanitizer build + sanitize-ok tests"
        build_and_test build-tsan -L sanitize-ok -- \
            -DMSGPROXY_SANITIZE=thread
        ;;
      asan)
        banner "ASan+UBSan build + sanitize-ok tests"
        build_and_test build-asan -L sanitize-ok -- \
            -DMSGPROXY_SANITIZE=address,undefined
        ;;
      ownership)
        banner "ownership-lint build + full test suite"
        build_and_test build-ownership -- \
            -DMSGPROXY_CHECK_OWNERSHIP=ON
        ;;
      tidy)
        banner "clang-tidy over src/"
        if ! command -v clang-tidy >/dev/null 2>&1; then
            echo "clang-tidy not installed; skipping (install LLVM to enable)"
            continue
        fi
        # Reuse (or create) the plain tree's compilation database.
        if [ ! -f build/compile_commands.json ]; then
            cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
        fi
        # Headers are covered via HeaderFilterRegex when their
        # including .cc files are analyzed.
        find src -name '*.cc' -print0 |
            xargs -0 -n 4 -P "$JOBS" clang-tidy -p build --quiet
        ;;
      bench-smoke)
        banner "bench build + quick multi-proxy sweeps"
        cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
        cmake --build build -j "$JOBS" --target \
            bench_ablation_multi_proxy bench_runtime_scaling
        (cd build/bench && ./bench_ablation_multi_proxy --quick)
        (cd build/bench && ./bench_runtime_scaling --quick)
        ;;
      *)
        echo "unknown mode: $mode (expected plain|tsan|asan|ownership|tidy|bench-smoke)" >&2
        exit 2
        ;;
    esac
done

banner "all requested checks passed"
