//===--- MsgProxyTidyModule.cpp - msgproxy clang-tidy plugin ----------===//
//
// Out-of-tree clang-tidy module with the runtime's wire-path
// invariant checks. Built against the system LLVM/Clang dev packages
// (see ../CMakeLists.txt; skipped with an explicit notice when they
// are absent) and loaded with:
//
//   clang-tidy -load=libMsgProxyTidyModule.so \
//              -checks='-*,msgproxy-*' -p build src/...
//
// The four checks mirror tools/lint/msgproxy_lint.cc (the portable
// engine that always runs in `tools/check.sh lint`); this module is
// the full-fidelity AST implementation.
//
//===------------------------------------------------------------------===//

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "AtomicsOrderCheck.h"
#include "HotPathAllocCheck.h"
#include "PacketCustodyCheck.h"
#include "ProxyOwnedCheck.h"

namespace clang {
namespace tidy {
namespace msgproxy {

class MsgProxyModule : public ClangTidyModule
{
  public:
    void
    addCheckFactories(ClangTidyCheckFactories& CheckFactories) override
    {
        CheckFactories.registerCheck<HotPathAllocCheck>(
            "msgproxy-hot-path-alloc");
        CheckFactories.registerCheck<PacketCustodyCheck>(
            "msgproxy-packet-custody");
        CheckFactories.registerCheck<AtomicsOrderCheck>(
            "msgproxy-atomics-order");
        CheckFactories.registerCheck<ProxyOwnedCheck>(
            "msgproxy-proxy-owned");
    }
};

} // namespace msgproxy

// Register the module using this statically initialized variable.
static ClangTidyModuleRegistry::Add<msgproxy::MsgProxyModule>
    X("msgproxy-module",
      "msgproxy wire-path invariant checks (hot-path allocation, "
      "packet custody, memory-order policy, proxy ownership).");

// This anchor is used to force the linker to link in the generated
// object file and thus register the module.
volatile int MsgProxyModuleAnchorSource = 0;

} // namespace tidy
} // namespace clang
