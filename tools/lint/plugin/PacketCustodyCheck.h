//===--- PacketCustodyCheck.h - msgproxy-packet-custody -----*- C++ -*-===//
//
// Enforces pooled-Packet custody (the tx_state discipline from
// PR 3/PR 4):
//
//  - `delete` of a Packet* in a function that never consults heap
//    provenance (PacketRef::heap / the kTxHeap tx_state bit):
//    deleting a slab entry is UB and corrupts the pool;
//  - use of a Packet* after pushing it into a channel return ring
//    (custody transferred to the producer: double-push / UAF);
//  - a raw Packet* escaping into a heap-owning container other than
//    the audited custody containers (the pool free list, the
//    deferred-request queue, the reorder stash).
//
//===------------------------------------------------------------------===//

#ifndef MSGPROXY_LINT_PACKET_CUSTODY_CHECK_H
#define MSGPROXY_LINT_PACKET_CUSTODY_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace msgproxy {

class PacketCustodyCheck : public ClangTidyCheck
{
  public:
    PacketCustodyCheck(StringRef Name, ClangTidyContext* Context)
        : ClangTidyCheck(Name, Context)
    {
    }

    bool
    isLanguageVersionSupported(const LangOptions& LangOpts) const override
    {
        return LangOpts.CPlusPlus;
    }

    void registerMatchers(ast_matchers::MatchFinder* Finder) override;
    void
    check(const ast_matchers::MatchFinder::MatchResult& Result) override;
};

} // namespace msgproxy
} // namespace tidy
} // namespace clang

#endif // MSGPROXY_LINT_PACKET_CUSTODY_CHECK_H
