//===--- HotPathAllocCheck.cpp - msgproxy-hot-path-alloc --------------===//

#include "HotPathAllocCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

#include <deque>

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace msgproxy {

namespace {

bool
hasAnnotation(const Decl* D, StringRef Text)
{
    if (D == nullptr)
        return false;
    for (const auto* A : D->specific_attrs<AnnotateAttr>())
        if (A->getAnnotation() == Text)
            return true;
    return false;
}

// Annotations may sit on any redeclaration (typically the in-class
// declaration, while the matcher hands us the out-of-line
// definition).
bool
anyRedeclAnnotated(const FunctionDecl* FD, StringRef Text)
{
    for (const FunctionDecl* R : FD->redecls())
        if (hasAnnotation(R, Text))
            return true;
    return false;
}

AST_MATCHER(FunctionDecl, isHotPathAnnotated)
{
    return anyRedeclAnnotated(&Node, "msgproxy::hot_path");
}

const char* const kAllocFns =
    "::malloc;::calloc;::realloc;::free;::posix_memalign;"
    "::aligned_alloc;::strdup";

bool
isAllocatorFn(const FunctionDecl* Callee)
{
    if (Callee == nullptr || !Callee->getIdentifier())
        return false;
    StringRef N = Callee->getName();
    return llvm::StringRef(kAllocFns).contains(
        (llvm::Twine("::") + N).str());
}

bool
isBlockingFn(const FunctionDecl* Callee)
{
    if (Callee == nullptr || !Callee->getIdentifier())
        return false;
    static const char* kNames[] = {
        "sleep_for", "sleep_until", "usleep",     "nanosleep",
        "sleep",     "poll",        "epoll_wait", "select",
        "pselect",   "ppoll"};
    StringRef N = Callee->getName();
    for (const char* K : kNames)
        if (N == K)
            return true;
    return false;
}

bool
isLockFn(const CXXMethodDecl* MD)
{
    if (MD == nullptr || MD->getParent() == nullptr)
        return false;
    StringRef Cls = MD->getParent()->getName();
    const bool LockCls = Cls.contains("mutex") ||
                         Cls == "condition_variable" ||
                         Cls.contains("lock");
    if (!LockCls)
        return false;
    StringRef N = MD->getName();
    return N == "lock" || N == "try_lock" || N == "unlock" ||
           N == "wait" || N == "lock_shared";
}

} // namespace

void
HotPathAllocCheck::noteFunction(const FunctionDecl* FD)
{
    FD = FD->getCanonicalDecl();
    if (anyRedeclAnnotated(FD, "msgproxy::hot_path"))
        Roots.insert(FD);
    if (anyRedeclAnnotated(FD, "msgproxy::hot_exempt"))
        Exempt.insert(FD);
}

void
HotPathAllocCheck::registerMatchers(MatchFinder* Finder)
{
    // Every interesting expression, bound with its enclosing
    // function; reachability is resolved at end of TU.
    auto InFn = hasAncestor(functionDecl().bind("fn"));
    Finder->addMatcher(cxxNewExpr(InFn).bind("new"), this);
    Finder->addMatcher(cxxDeleteExpr(InFn).bind("del"), this);
    Finder->addMatcher(callExpr(InFn).bind("call"), this);
    Finder->addMatcher(
        varDecl(hasType(cxxRecordDecl(hasAnyName(
                    "::std::basic_string", "::std::vector",
                    "::std::deque", "::std::map",
                    "::std::unordered_map"))),
                InFn)
            .bind("container"),
        this);
    Finder->addMatcher(functionDecl(isHotPathAnnotated()).bind("root"),
                       this);
}

void
HotPathAllocCheck::check(const MatchFinder::MatchResult& Result)
{
    if (const auto* Root =
            Result.Nodes.getNodeAs<FunctionDecl>("root")) {
        noteFunction(Root);
        return;
    }
    const auto* Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn");
    if (Fn == nullptr)
        return;
    const FunctionDecl* Key = Fn->getCanonicalDecl();
    noteFunction(Fn);

    if (const auto* NE = Result.Nodes.getNodeAs<CXXNewExpr>("new")) {
        if (!NE->getBeginLoc().isMacroID())
            Violations[Key].push_back(
                {NE->getBeginLoc(), "operator new"});
        return;
    }
    if (const auto* DE =
            Result.Nodes.getNodeAs<CXXDeleteExpr>("del")) {
        if (!DE->getBeginLoc().isMacroID())
            Violations[Key].push_back(
                {DE->getBeginLoc(), "operator delete"});
        return;
    }
    if (const auto* VD = Result.Nodes.getNodeAs<VarDecl>("container")) {
        if (!VD->getBeginLoc().isMacroID())
            Violations[Key].push_back(
                {VD->getBeginLoc(),
                 "allocating container constructed"});
        return;
    }
    const auto* CE = Result.Nodes.getNodeAs<CallExpr>("call");
    if (CE == nullptr)
        return;
    const FunctionDecl* Callee = CE->getDirectCallee();
    if (Callee == nullptr)
        return;
    if (isAllocatorFn(Callee)) {
        Violations[Key].push_back(
            {CE->getBeginLoc(),
             ("allocator call `" + Callee->getName() + "`").str()});
        return;
    }
    if (isBlockingFn(Callee)) {
        Violations[Key].push_back(
            {CE->getBeginLoc(),
             ("blocking call `" + Callee->getName() + "`").str()});
        return;
    }
    if (isLockFn(dyn_cast<CXXMethodDecl>(Callee))) {
        Violations[Key].push_back(
            {CE->getBeginLoc(),
             ("lock acquisition `" + Callee->getName() + "`").str()});
        return;
    }
    // Call edge into project code (has a body somewhere in this TU).
    if (Callee->hasBody())
        Edges[Key].insert(Callee->getCanonicalDecl());
}

void
HotPathAllocCheck::onEndOfTranslationUnit()
{
    std::map<const FunctionDecl*, const FunctionDecl*> Via;
    std::deque<const FunctionDecl*> Work;
    for (const FunctionDecl* R : Roots) {
        Work.push_back(R);
        Via[R] = R;
    }
    std::set<const FunctionDecl*> Visited;
    while (!Work.empty()) {
        const FunctionDecl* F = Work.front();
        Work.pop_front();
        if (!Visited.insert(F).second)
            continue;
        if (Exempt.count(F))
            continue;
        auto VIt = Violations.find(F);
        if (VIt != Violations.end()) {
            for (const Violation& V : VIt->second)
                diag(V.Loc,
                     "%0 on the allocation-free wire path "
                     "(reachable from hot-path root %1)")
                    << V.What << Via[F];
        }
        auto EIt = Edges.find(F);
        if (EIt != Edges.end()) {
            for (const FunctionDecl* N : EIt->second) {
                if (!Via.count(N))
                    Via[N] = Via[F];
                Work.push_back(N);
            }
        }
    }
    Violations.clear();
    Edges.clear();
    Roots.clear();
    Exempt.clear();
}

} // namespace msgproxy
} // namespace tidy
} // namespace clang
