//===--- ProxyOwnedCheck.h - msgproxy-proxy-owned -----------*- C++ -*-===//
//
// Statically mirrors the runtime ownership lint (check/ownership.h,
// MSGPROXY_CHECK_OWNERSHIP builds): a field annotated
// MSGPROXY_PROXY_OWNED (annotate("msgproxy::proxy_owned")) belongs
// to exactly one proxy thread once the node is running, so it may
// only be touched from functions annotated MSGPROXY_PROXY_CTX (run
// on the proxy thread) or MSGPROXY_QUIESCENT (run only while the
// proxy threads are stopped: setup/teardown).
//
//===------------------------------------------------------------------===//

#ifndef MSGPROXY_LINT_PROXY_OWNED_CHECK_H
#define MSGPROXY_LINT_PROXY_OWNED_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

namespace clang {
namespace tidy {
namespace msgproxy {

class ProxyOwnedCheck : public ClangTidyCheck
{
  public:
    ProxyOwnedCheck(StringRef Name, ClangTidyContext* Context)
        : ClangTidyCheck(Name, Context)
    {
    }

    bool
    isLanguageVersionSupported(const LangOptions& LangOpts) const override
    {
        return LangOpts.CPlusPlus;
    }

    void registerMatchers(ast_matchers::MatchFinder* Finder) override;
    void
    check(const ast_matchers::MatchFinder::MatchResult& Result) override;
};

} // namespace msgproxy
} // namespace tidy
} // namespace clang

#endif // MSGPROXY_LINT_PROXY_OWNED_CHECK_H
