//===--- ProxyOwnedCheck.cpp - msgproxy-proxy-owned -------------------===//

#include "ProxyOwnedCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace msgproxy {

namespace {

bool
hasAnnotation(const Decl* D, StringRef Text)
{
    if (D == nullptr)
        return false;
    for (const auto* A : D->specific_attrs<AnnotateAttr>())
        if (A->getAnnotation() == Text)
            return true;
    return false;
}

bool
functionAllowed(const FunctionDecl* FD)
{
    if (FD == nullptr)
        return false;
    for (const FunctionDecl* R : FD->redecls())
        if (hasAnnotation(R, "msgproxy::proxy_ctx") ||
            hasAnnotation(R, "msgproxy::quiescent"))
            return true;
    return false;
}

AST_MATCHER(FieldDecl, isProxyOwned)
{
    return hasAnnotation(&Node, "msgproxy::proxy_owned");
}

} // namespace

void
ProxyOwnedCheck::registerMatchers(MatchFinder* Finder)
{
    Finder->addMatcher(
        memberExpr(member(fieldDecl(isProxyOwned()).bind("field")),
                   hasAncestor(functionDecl().bind("fn")))
            .bind("access"),
        this);
}

void
ProxyOwnedCheck::check(const MatchFinder::MatchResult& Result)
{
    const auto* Access = Result.Nodes.getNodeAs<MemberExpr>("access");
    const auto* Field = Result.Nodes.getNodeAs<FieldDecl>("field");
    const auto* Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn");
    if (Access == nullptr || Field == nullptr)
        return;
    if (functionAllowed(Fn))
        return;
    diag(Access->getMemberLoc(),
         "proxy-owned field %0 accessed outside a MSGPROXY_PROXY_CTX "
         "or MSGPROXY_QUIESCENT function; after start() this field "
         "belongs to exactly one proxy thread")
        << Field;
}

} // namespace msgproxy
} // namespace tidy
} // namespace clang
