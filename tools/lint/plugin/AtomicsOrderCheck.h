//===--- AtomicsOrderCheck.h - msgproxy-atomics-order -------*- C++ -*-===//
//
// Forbids raw std::memory_order_* enumerator references outside
// src/spsc/ (the Orders-policy definitions) and an explicit
// allowlist (src/check/atomic.h — the instrumented atomic that
// interprets orders — and src/util/orders.h, the named-order
// vocabulary). Everything else must name the intent through mp::ord
// so the PR 1 order-weakening mutation tests keep covering every
// shipped ordering.
//
// Options:
//   msgproxy-atomics-order.AllowedFiles: semicolon list of path
//   substrings where raw literals are permitted (default:
//   "src/spsc/;src/check/atomic.h;src/util/orders.h").
//
//===------------------------------------------------------------------===//

#ifndef MSGPROXY_LINT_ATOMICS_ORDER_CHECK_H
#define MSGPROXY_LINT_ATOMICS_ORDER_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

#include <string>
#include <vector>

namespace clang {
namespace tidy {
namespace msgproxy {

class AtomicsOrderCheck : public ClangTidyCheck
{
  public:
    AtomicsOrderCheck(StringRef Name, ClangTidyContext* Context);

    bool
    isLanguageVersionSupported(const LangOptions& LangOpts) const override
    {
        return LangOpts.CPlusPlus;
    }

    void registerMatchers(ast_matchers::MatchFinder* Finder) override;
    void
    check(const ast_matchers::MatchFinder::MatchResult& Result) override;
    void storeOptions(ClangTidyOptions::OptionMap& Opts) override;

  private:
    const std::string RawAllowedFiles;
    std::vector<std::string> AllowedFiles;
};

} // namespace msgproxy
} // namespace tidy
} // namespace clang

#endif // MSGPROXY_LINT_ATOMICS_ORDER_CHECK_H
