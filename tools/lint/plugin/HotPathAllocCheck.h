//===--- HotPathAllocCheck.h - msgproxy-hot-path-alloc ------*- C++ -*-===//
//
// Flags heap allocation (new/delete, malloc family, allocating
// std::string/std::vector construction), mutex acquisition, and
// blocking sleeps/syscalls reachable through the call graph from any
// function annotated MSGPROXY_HOT_PATH (clang attribute
// annotate("msgproxy::hot_path")). Functions annotated
// MSGPROXY_HOT_EXEMPT stop the walk: they are audited boundaries
// whose slow behaviour is intentional (e.g. the idle-backoff sleep
// stage).
//
// The runtime's allocation-free wire path (pooled packet slabs,
// PR 3) is otherwise enforced only dynamically via the
// pool_misses==0 bench gate; this check rules the regression out on
// every path at compile time.
//
//===------------------------------------------------------------------===//

#ifndef MSGPROXY_LINT_HOT_PATH_ALLOC_CHECK_H
#define MSGPROXY_LINT_HOT_PATH_ALLOC_CHECK_H

#include "clang-tidy/ClangTidyCheck.h"

#include <map>
#include <set>
#include <vector>

namespace clang {
namespace tidy {
namespace msgproxy {

class HotPathAllocCheck : public ClangTidyCheck
{
  public:
    HotPathAllocCheck(StringRef Name, ClangTidyContext* Context)
        : ClangTidyCheck(Name, Context)
    {
    }

    bool
    isLanguageVersionSupported(const LangOptions& LangOpts) const override
    {
        return LangOpts.CPlusPlus;
    }

    void registerMatchers(ast_matchers::MatchFinder* Finder) override;
    void
    check(const ast_matchers::MatchFinder::MatchResult& Result) override;
    void onEndOfTranslationUnit() override;

  private:
    struct Violation
    {
        SourceLocation Loc;
        std::string What;
    };

    // Per-function direct violations and call edges, accumulated by
    // check() and resolved into a reachability walk from the
    // annotated roots at end of TU.
    std::map<const FunctionDecl*, std::vector<Violation>> Violations;
    std::map<const FunctionDecl*, std::set<const FunctionDecl*>> Edges;
    std::set<const FunctionDecl*> Roots;
    std::set<const FunctionDecl*> Exempt;

    void noteFunction(const FunctionDecl* FD);
};

} // namespace msgproxy
} // namespace tidy
} // namespace clang

#endif // MSGPROXY_LINT_HOT_PATH_ALLOC_CHECK_H
