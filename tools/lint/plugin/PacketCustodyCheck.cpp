//===--- PacketCustodyCheck.cpp - msgproxy-packet-custody -------------===//

#include "PacketCustodyCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace msgproxy {

namespace {

bool
isPacketPtr(QualType T)
{
    if (!T->isPointerType())
        return false;
    const CXXRecordDecl* RD = T->getPointeeCXXRecordDecl();
    return RD != nullptr && RD->getName() == "Packet";
}

// Does the enclosing function read PacketRef::heap, Deferred::heap,
// or the tx_state custody byte anywhere? (The portable engine uses
// the same function-scope approximation; a dominator-based version
// is tighter but this already rules out the unconditional-delete
// bug class.)
class ProvenanceVisitor
    : public RecursiveASTVisitor<ProvenanceVisitor>
{
  public:
    bool Found = false;

    bool
    VisitMemberExpr(MemberExpr* ME)
    {
        const ValueDecl* VD = ME->getMemberDecl();
        if (VD != nullptr &&
            (VD->getName() == "heap" || VD->getName() == "tx_state"))
            Found = true;
        return !Found;
    }

    bool
    VisitDeclRefExpr(DeclRefExpr* DRE)
    {
        if (DRE->getDecl() != nullptr &&
            DRE->getDecl()->getName() == "kTxHeap")
            Found = true;
        return !Found;
    }
};

bool
consultsProvenance(const FunctionDecl* FD)
{
    if (FD == nullptr || !FD->hasBody())
        return false;
    ProvenanceVisitor V;
    V.TraverseStmt(FD->getBody());
    return V.Found;
}

bool
isCustodyContainer(StringRef FieldName)
{
    return FieldName == "free_" || FieldName == "deferred" ||
           FieldName == "stash";
}

} // namespace

void
PacketCustodyCheck::registerMatchers(MatchFinder* Finder)
{
    // Rule 1: delete of Packet* without provenance consultation.
    Finder->addMatcher(
        cxxDeleteExpr(hasAncestor(functionDecl().bind("fn")))
            .bind("del"),
        this);
    // Rule 3: Packet* argument to push_back/emplace_back on a member
    // container that is not one of the custody containers.
    Finder->addMatcher(
        cxxMemberCallExpr(
            callee(cxxMethodDecl(
                hasAnyName("push_back", "emplace_back"))),
            on(memberExpr().bind("recv")),
            hasAnyArgument(expr().bind("arg")))
            .bind("push"),
        this);
}

void
PacketCustodyCheck::check(const MatchFinder::MatchResult& Result)
{
    if (const auto* DE =
            Result.Nodes.getNodeAs<CXXDeleteExpr>("del")) {
        const Expr* Arg = DE->getArgument();
        if (Arg == nullptr ||
            !isPacketPtr(Arg->IgnoreImpCasts()->getType()))
            return;
        const auto* Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn");
        if (consultsProvenance(Fn))
            return;
        diag(DE->getBeginLoc(),
             "'delete' of a Packet* without consulting heap "
             "provenance (PacketRef::heap / kTxHeap); pooled "
             "packets must be recycled to their slab, never freed");
        return;
    }
    const auto* Push =
        Result.Nodes.getNodeAs<CXXMemberCallExpr>("push");
    if (Push == nullptr)
        return;
    const auto* Recv = Result.Nodes.getNodeAs<MemberExpr>("recv");
    const auto* Arg = Result.Nodes.getNodeAs<Expr>("arg");
    if (Recv == nullptr || Arg == nullptr)
        return;
    if (isCustodyContainer(Recv->getMemberDecl()->getName()))
        return;
    if (!isPacketPtr(Arg->IgnoreImpCasts()->getType()))
        return;
    diag(Push->getBeginLoc(),
         "raw Packet* escapes into container %0; slab packets may "
         "only enter the pool free list, the deferred queue, or the "
         "reorder stash")
        << Recv->getMemberDecl();
}

} // namespace msgproxy
} // namespace tidy
} // namespace clang
