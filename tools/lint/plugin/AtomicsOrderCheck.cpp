//===--- AtomicsOrderCheck.cpp - msgproxy-atomics-order ---------------===//

#include "AtomicsOrderCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace msgproxy {

AtomicsOrderCheck::AtomicsOrderCheck(StringRef Name,
                                     ClangTidyContext* Context)
    : ClangTidyCheck(Name, Context),
      RawAllowedFiles(Options.get(
          "AllowedFiles",
          "src/spsc/;src/check/atomic.h;src/util/orders.h"))
{
    llvm::SmallVector<llvm::StringRef, 8> Parts;
    llvm::StringRef(RawAllowedFiles).split(Parts, ';', -1, false);
    for (llvm::StringRef P : Parts)
        AllowedFiles.push_back(P.str());
}

void
AtomicsOrderCheck::storeOptions(ClangTidyOptions::OptionMap& Opts)
{
    Options.store(Opts, "AllowedFiles", RawAllowedFiles);
}

void
AtomicsOrderCheck::registerMatchers(MatchFinder* Finder)
{
    // Any reference to an enumerator of std::memory_order. The
    // named constants in mp::ord are DeclRefExprs to *variables*
    // (inline constexpr std::memory_order), not to the enumerators,
    // so they never match.
    Finder->addMatcher(
        declRefExpr(to(enumConstantDecl(hasDeclContext(enumDecl(
                        hasName("::std::memory_order"))))))
            .bind("ref"),
        this);
}

void
AtomicsOrderCheck::check(const MatchFinder::MatchResult& Result)
{
    const auto* Ref = Result.Nodes.getNodeAs<DeclRefExpr>("ref");
    if (Ref == nullptr)
        return;
    const SourceManager& SM = *Result.SourceManager;
    SourceLocation Loc = SM.getSpellingLoc(Ref->getBeginLoc());
    StringRef File = SM.getFilename(Loc);
    for (const std::string& A : AllowedFiles)
        if (File.contains(A))
            return;
    diag(Loc,
         "raw std::memory_order literal outside the SPSC Orders "
         "policy; name the intent via mp::ord (src/util/orders.h) "
         "so order-weakening mutation tests cover it");
}

} // namespace msgproxy
} // namespace tidy
} // namespace clang
