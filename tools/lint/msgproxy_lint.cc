// msgproxy_lint: portable static enforcement of the runtime's
// wire-path invariants.
//
// This is the always-available engine behind `tools/check.sh lint`.
// It implements the four core checks of the clang-tidy plugin in
// tools/lint/plugin/ (which needs LLVM/Clang dev packages and is
// skipped, loudly, when they are absent), plus one engine-only
// check:
//
//   msgproxy-hot-path-alloc   no heap allocation, mutex locking, or
//                             blocking sleep reachable from a
//                             MSGPROXY_HOT_PATH root
//   msgproxy-packet-custody   pooled Packet custody discipline:
//                             delete only under heap-provenance
//                             checks, no use-after-return-ring-push,
//                             no raw escape into foreign containers
//   msgproxy-atomics-order    no raw std::memory_order_* literals
//                             outside src/spsc/ and the allowlist
//                             (src/check/atomic.h, src/util/orders.h)
//   msgproxy-proxy-owned      fields marked MSGPROXY_PROXY_OWNED are
//                             touched only by MSGPROXY_PROXY_CTX or
//                             MSGPROXY_QUIESCENT functions
//   msgproxy-deprecated-connect
//                             no new uses of the deprecated
//                             two-node Node::connect(Node&, Node&)
//                             shim outside src/proxy/ (engine-only;
//                             the compiler's [[deprecated]] warning
//                             covers plugin builds)
//
// The engine is a tokenizer plus a heuristic function extractor —
// deliberately no compiler dependency, so the gate runs on every
// build host. It understands NOLINT / NOLINT(check-name) /
// NOLINTNEXTLINE(check-name) comments exactly like clang-tidy, and
// MSGPROXY_* annotation macros straight from the source text (they
// expand to clang `annotate` attributes for the plugin and to
// nothing under gcc).
//
// Usage:
//   msgproxy_lint [--root DIR] PATH...     lint files/dirs; exit 1
//                                          on any finding
//   msgproxy_lint --corpus DIR             run the mutation corpus:
//                                          every tests/lint/bad_X.cc
//                                          must be flagged by check
//                                          msgproxy-X (dashes for
//                                          underscores) and every
//                                          good_X.cc must be clean
//   msgproxy_lint --dump PATH...           debug: dump the function
//                                          table and annotations

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- //
// Checks                                                           //
// ---------------------------------------------------------------- //

const char* const kHotPathAlloc = "msgproxy-hot-path-alloc";
const char* const kPacketCustody = "msgproxy-packet-custody";
const char* const kAtomicsOrder = "msgproxy-atomics-order";
const char* const kProxyOwned = "msgproxy-proxy-owned";
const char* const kDeprecatedConnect = "msgproxy-deprecated-connect";

// Files (matched by path suffix) where raw memory-order literals are
// the point: the Orders policy definitions, the instrumented atomic
// that interprets orders, and the named-order vocabulary itself.
const char* const kOrderAllowlist[] = {
    "src/spsc/", "src/check/atomic.h", "src/util/orders.h",
    "tools/lint/"};

// Custody containers a raw Packet* may legitimately enter: the pool
// free list, the deferred-request queue, the reorder stash.
const std::set<std::string> kCustodyContainers = {
    "free_", "deferred", "stash",
    // Transport-side custody: a link may hold borrowed tx packets in
    // its write queue until the frame is on the wire (txq_), park
    // surrendered pointers for the proxy's drain_returns (recycled_),
    // and stage slab-owned rx slots for poll_recv (rx_ready_). All
    // three feed back into the audited release paths.
    "txq_", "recycled_", "rx_ready_"};

struct Finding
{
    std::string file;
    int line = 0;
    std::string check;
    std::string msg;
};

// ---------------------------------------------------------------- //
// Lexing                                                           //
// ---------------------------------------------------------------- //

struct Tok
{
    std::string s;
    int line = 0;
};

struct FileText
{
    std::string path;    // as given (display)
    std::string relpath; // root-relative (allowlist matching)
    std::vector<Tok> toks;
    // line -> checks suppressed there ("*" = all)
    std::map<int, std::set<std::string>> nolint;
};

bool
ident_start(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
ident_char(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Records "NOLINT", "NOLINT(a, b)", "NOLINTNEXTLINE(...)" from one
// comment's text.
void
scan_nolint(const std::string& comment, int line, FileText& ft)
{
    size_t pos = 0;
    while ((pos = comment.find("NOLINT", pos)) != std::string::npos) {
        size_t p = pos + 6;
        int target = line;
        if (comment.compare(p, 8, "NEXTLINE") == 0) {
            p += 8;
            target = line + 1;
        }
        auto& set = ft.nolint[target];
        if (p < comment.size() && comment[p] == '(') {
            size_t close = comment.find(')', p);
            std::string list =
                comment.substr(p + 1, close == std::string::npos
                                          ? std::string::npos
                                          : close - p - 1);
            std::stringstream ss(list);
            std::string item;
            while (std::getline(ss, item, ',')) {
                item.erase(0, item.find_first_not_of(" \t"));
                item.erase(item.find_last_not_of(" \t") + 1);
                if (!item.empty())
                    set.insert(item);
            }
        } else {
            set.insert("*");
        }
        pos = p;
    }
}

// Tokenizes one file: strips comments (collecting NOLINT markers),
// strings, chars, and preprocessor lines; keeps identifiers,
// numbers, and punctuation (with "::" "->" as single tokens).
FileText
lex_file(const std::string& path, const std::string& relpath)
{
    FileText ft;
    ft.path = path;
    ft.relpath = relpath;
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string src = buf.str();

    int line = 1;
    size_t i = 0;
    const size_t n = src.size();
    bool at_line_start = true;
    while (i < n) {
        char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            at_line_start = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (at_line_start && c == '#') {
            // Preprocessor line (with continuations): skip, but keep
            // scanning NOLINT in any trailing comment.
            while (i < n) {
                if (src[i] == '\n') {
                    if (i > 0 && src[i - 1] == '\\') {
                        ++line;
                        ++i;
                        continue;
                    }
                    break;
                }
                ++i;
            }
            continue;
        }
        at_line_start = false;
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            size_t end = src.find('\n', i);
            if (end == std::string::npos)
                end = n;
            scan_nolint(src.substr(i, end - i), line, ft);
            i = end;
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            size_t end = src.find("*/", i + 2);
            if (end == std::string::npos)
                end = n;
            else
                end += 2;
            std::string body = src.substr(i, end - i);
            scan_nolint(body, line, ft);
            line += static_cast<int>(
                std::count(body.begin(), body.end(), '\n'));
            i = end;
            continue;
        }
        if (c == '"') {
            ++i;
            while (i < n && src[i] != '"') {
                if (src[i] == '\\')
                    ++i;
                if (i < n && src[i] == '\n')
                    ++line;
                ++i;
            }
            ++i;
            ft.toks.push_back({"\"\"", line});
            continue;
        }
        if (c == '\'') {
            ++i;
            while (i < n && src[i] != '\'') {
                if (src[i] == '\\')
                    ++i;
                ++i;
            }
            ++i;
            ft.toks.push_back({"''", line});
            continue;
        }
        if (ident_start(c)) {
            size_t j = i + 1;
            while (j < n && ident_char(src[j]))
                ++j;
            ft.toks.push_back({src.substr(i, j - i), line});
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t j = i + 1;
            while (j < n &&
                   (ident_char(src[j]) || src[j] == '.' ||
                    ((src[j] == '+' || src[j] == '-') &&
                     (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                      src[j - 1] == 'p' || src[j - 1] == 'P'))))
                ++j;
            ft.toks.push_back({"0", line});
            i = j;
            continue;
        }
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            ft.toks.push_back({"::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '>') {
            ft.toks.push_back({"->", line});
            i += 2;
            continue;
        }
        ft.toks.push_back({std::string(1, c), line});
        ++i;
    }
    return ft;
}

// ---------------------------------------------------------------- //
// Function extraction                                              //
// ---------------------------------------------------------------- //

struct Func
{
    std::string name;   // bare name
    std::string qual;   // qualified, for display
    const FileText* ft = nullptr;
    int line = 0;
    size_t body_begin = 0, body_end = 0; // token range, 0,0 = decl
    std::set<std::string> annos;         // msgproxy::* annotations
};

struct OwnedField
{
    std::string name;
    std::string file;
    int line = 0;
};

struct Project
{
    std::vector<FileText> files;
    std::vector<Func> funcs; // definitions (have bodies)
    // bare name -> merged annotations (decls + defs)
    std::map<std::string, std::set<std::string>> annos_by_name;
    /// Same annotations keyed by scope-qualified name; hot-path ROOT
    /// selection uses these so `Endpoint::put` does not also crown
    /// every other `put` in the tree a root.
    std::map<std::string, std::set<std::string>> annos_by_qual;
    std::vector<OwnedField> owned;
};

const std::set<std::string> kNotFuncName = {
    "if",       "for",      "while",    "switch",   "catch",
    "return",   "sizeof",   "alignas",  "alignof",  "decltype",
    "noexcept", "new",      "delete",   "throw",    "static_cast",
    "assert",   "defined",  "co_await", "co_yield", "co_return"};

const std::map<std::string, std::string> kAnnoMacro = {
    {"MSGPROXY_HOT_PATH", "hot_path"},
    {"MSGPROXY_HOT_EXEMPT", "hot_exempt"},
    {"MSGPROXY_PROXY_CTX", "proxy_ctx"},
    {"MSGPROXY_QUIESCENT", "quiescent"},
    {"MSGPROXY_PROXY_OWNED", "proxy_owned"}};

size_t
match_forward(const std::vector<Tok>& t, size_t open)
{
    const std::string& o = t[open].s;
    const std::string c = o == "(" ? ")" : o == "{" ? "}" : "]";
    int depth = 0;
    for (size_t i = open; i < t.size(); ++i) {
        if (t[i].s == o)
            ++depth;
        else if (t[i].s == c && --depth == 0)
            return i;
    }
    return t.size() - 1;
}

// Looks for a function-definition pattern in the declaration window
// [begin, brace): a parameter list `name ( ... )` whose close is
// followed only by qualifier-ish tokens (const, noexcept, ctor-init
// lists, trailing return types) up to the brace. Returns the index
// of the name token, or npos.
size_t
find_func_name(const std::vector<Tok>& t, size_t begin, size_t brace)
{
    // Walk parenthesis groups left to right; remember the last group
    // preceded by an identifier. Ctor-init lists after the parameter
    // list also contain groups, so prefer the first group after
    // which a top-level ':' (not '::') appears, else the last group.
    size_t candidate = std::string::npos;
    size_t i = begin;
    while (i < brace) {
        if (t[i].s == "(" && i > begin) {
            const Tok& prev = t[i - 1];
            size_t close = match_forward(t, i);
            if (close >= brace)
                return candidate;
            if (ident_start(prev.s[0]) && !kNotFuncName.count(prev.s))
                candidate = i - 1;
            i = close + 1;
            // A top-level ':' right after a close is a ctor-init
            // list: the group we just closed was the param list.
            if (i < brace && t[i].s == ":")
                return candidate;
            continue;
        }
        if (t[i].s == "=" && candidate == std::string::npos)
            return std::string::npos; // initializer, not a function
        ++i;
    }
    return candidate;
}

bool
window_is_scope(const std::vector<Tok>& t, size_t begin, size_t brace)
{
    for (size_t i = begin; i < brace; ++i) {
        const std::string& s = t[i].s;
        if (s == "namespace" || s == "struct" || s == "class" ||
            s == "union" || s == "enum")
            return true;
        if (s == "(")
            return false; // params before any scope keyword
    }
    return false;
}

// The declarator name of a field declaration window (for
// MSGPROXY_PROXY_OWNED): the identifier before '=', '[', or the end
// — ignoring tokens inside template angle brackets, so
// `std::unique_ptr<uint32_t[]> wake` names `wake`, not `uint32_t`.
std::string
field_name(const std::vector<Tok>& t, size_t begin, size_t end)
{
    size_t stop = end;
    int angle = 0;
    for (size_t i = begin; i < end; ++i) {
        if (t[i].s == "<") {
            ++angle;
            continue;
        }
        if (t[i].s == ">" || t[i].s == ">>") {
            angle -= t[i].s == ">>" ? 2 : 1;
            if (angle < 0)
                angle = 0;
            continue;
        }
        if (angle != 0)
            continue;
        if (t[i].s == "=" || t[i].s == "[" || t[i].s == "{") {
            stop = i;
            break;
        }
    }
    for (size_t i = stop; i-- > begin;) {
        if (ident_start(t[i].s[0]) && !kAnnoMacro.count(t[i].s))
            return t[i].s;
    }
    return "";
}

void
collect_window_annotations(const std::vector<Tok>& t, size_t begin,
                           size_t end, std::set<std::string>& out)
{
    for (size_t i = begin; i < end; ++i) {
        auto it = kAnnoMacro.find(t[i].s);
        if (it != kAnnoMacro.end())
            out.insert(it->second);
    }
}

// Extracts function definitions, declaration annotations, and owned
// fields from one lexed file into the project.
void
extract(const FileText& ft, Project& prj)
{
    const std::vector<Tok>& t = ft.toks;
    std::vector<std::string> scope; // namespace/class nesting (names)
    std::vector<bool> scope_real;   // true: named scope we pushed
    size_t decl_start = 0;

    for (size_t i = 0; i < t.size(); ++i) {
        const std::string& s = t[i].s;
        if (s == ";") {
            // Declaration: harvest annotations / owned fields.
            std::set<std::string> annos;
            collect_window_annotations(t, decl_start, i, annos);
            if (!annos.empty()) {
                if (annos.count("proxy_owned")) {
                    std::string fname = field_name(t, decl_start, i);
                    if (!fname.empty())
                        prj.owned.push_back(
                            {fname, ft.path, t[decl_start].line});
                    annos.erase("proxy_owned");
                }
                if (!annos.empty()) {
                    size_t nm = find_func_name(t, decl_start, i);
                    if (nm != std::string::npos) {
                        std::string q;
                        for (const auto& sc : scope)
                            if (!sc.empty())
                                q += sc + "::";
                        for (size_t j = nm;
                             j >= 2 && t[j - 1].s == "::"; j -= 2)
                            q += t[j - 2].s + "::";
                        q += t[nm].s;
                        for (const auto& a : annos) {
                            prj.annos_by_name[t[nm].s].insert(a);
                            prj.annos_by_qual[q].insert(a);
                        }
                    }
                }
            }
            decl_start = i + 1;
            continue;
        }
        if (s == "}") {
            if (!scope_real.empty()) {
                if (scope_real.back())
                    scope.pop_back();
                scope_real.pop_back();
            }
            decl_start = i + 1;
            continue;
        }
        if (s != "{")
            continue;

        // Classify this brace via its declaration window.
        if (window_is_scope(t, decl_start, i)) {
            std::string name;
            for (size_t j = decl_start; j < i; ++j)
                if (ident_start(t[j].s[0]) &&
                    !kAnnoMacro.count(t[j].s))
                    name = t[j].s; // last identifier: the scope name
            // enum bodies carry no declarations we care about: skip.
            bool is_enum = false;
            for (size_t j = decl_start; j < i; ++j)
                if (t[j].s == "enum")
                    is_enum = true;
            if (is_enum) {
                i = match_forward(t, i);
            } else {
                scope.push_back(name);
                scope_real.push_back(true);
            }
            decl_start = i + 1;
            continue;
        }
        size_t nm = find_func_name(t, decl_start, i);
        if (nm == std::string::npos) {
            // Initializer or unrecognized brace: skip it wholesale.
            i = match_forward(t, i);
            decl_start = i + 1;
            continue;
        }
        // Function definition.
        Func f;
        f.name = t[nm].s;
        std::string qual;
        for (const auto& sc : scope)
            if (!sc.empty())
                qual += sc + "::";
        // Qualified definitions (Node::foo) carry their own prefix.
        for (size_t j = nm; j >= 2 && t[j - 1].s == "::"; j -= 2)
            qual += t[j - 2].s + "::";
        f.qual = qual + f.name;
        f.ft = &ft;
        f.line = t[nm].line;
        collect_window_annotations(t, decl_start, i, f.annos);
        size_t close = match_forward(t, i);
        f.body_begin = i + 1;
        f.body_end = close;
        for (const auto& a : f.annos) {
            prj.annos_by_name[f.name].insert(a);
            prj.annos_by_qual[f.qual].insert(a);
        }
        prj.funcs.push_back(f);
        i = close;
        decl_start = i + 1;
    }
}

// ---------------------------------------------------------------- //
// Reporting                                                        //
// ---------------------------------------------------------------- //

bool
suppressed(const FileText& ft, int line, const std::string& check)
{
    auto it = ft.nolint.find(line);
    if (it == ft.nolint.end())
        return false;
    return it->second.count("*") || it->second.count(check);
}

void
report(std::vector<Finding>& out, const FileText& ft, int line,
       const std::string& check, const std::string& msg)
{
    if (suppressed(ft, line, check))
        return;
    out.push_back({ft.path, line, check, msg});
}

// ---------------------------------------------------------------- //
// Check 1: msgproxy-hot-path-alloc                                 //
// ---------------------------------------------------------------- //

const std::set<std::string> kAllocCalls = {
    "malloc",        "calloc", "realloc",       "free",
    "posix_memalign", "strdup", "aligned_alloc"};
const std::set<std::string> kLockTokens = {
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
    "condition_variable"};
const std::set<std::string> kPrimitiveAtomic = {
    "load",          "store",
    "exchange",      "fetch_add",
    "fetch_sub",     "fetch_or",
    "fetch_and",     "compare_exchange_strong",
    "compare_exchange_weak"};
const std::set<std::string> kBlockingCalls = {
    "sleep_for", "sleep_until", "usleep",     "nanosleep",
    "sleep",     "epoll_wait",  "ppoll",      "select",
    "pselect",   "accept",      "connect_fd", "recvmsg",
    "sendmsg"};

void
check_hot_path(const Project& prj, std::vector<Finding>& out)
{
    // Call edges resolve by bare name (overloads/same-name methods
    // merge: a conservative over-approximation), but ROOTS resolve by
    // scope-qualified name, so annotating `Endpoint::put` does not
    // also crown every other `put` in the tree a root.
    //
    // The walk is scoped to the host-thread runtime: src/ code
    // outside kHotPathDomain is opaque (not scanned, not expanded).
    // The discrete-event simulator domain (sim, machine, backend, am,
    // mpi, ...) MODELS allocation as a cost rather than paying it on
    // a real wire path, and the src/check/ instrumentation only runs
    // under the deterministic scheduler — both would otherwise bleed
    // into the hot set through bare-name edges like `submit`, `load`,
    // or `pack`. Files outside src/ (the mutation corpus) always
    // participate.
    static const char* const kHotPathDomain[] = {
        "src/proxy/", "src/net/", "src/spsc/",
        "src/obs/",   "src/rma/", "src/util/"};
    auto in_domain = [&](const std::string& rel) {
        if (rel.rfind("src/", 0) != 0)
            return true;
        for (const char* d : kHotPathDomain)
            if (rel.rfind(d, 0) == 0)
                return true;
        return false;
    };
    std::map<std::string, std::vector<const Func*>> by_name;
    for (const Func& f : prj.funcs) {
        if (!in_domain(f.ft->relpath))
            continue;
        by_name[f.name].push_back(&f);
    }

    auto merged_annos = [&](const std::string& name) {
        auto it = prj.annos_by_name.find(name);
        return it == prj.annos_by_name.end() ? std::set<std::string>{}
                                             : it->second;
    };

    // a == b, or one is a "::"-suffix of the other (a declaration
    // annotated inside `class Endpoint` yields `Endpoint::put`; its
    // definition may carry the fuller `proxy::Endpoint::put`).
    auto qual_matches = [](const std::string& a, const std::string& b) {
        if (a == b)
            return true;
        const std::string &lo = a.size() < b.size() ? a : b,
                          &hi = a.size() < b.size() ? b : a;
        return hi.size() > lo.size() + 2 &&
               hi.compare(hi.size() - lo.size(), lo.size(), lo) == 0 &&
               hi.compare(hi.size() - lo.size() - 2, 2, "::") == 0;
    };

    std::vector<const Func*> work;
    std::set<const Func*> visited;
    std::map<const Func*, std::string> via; // root that reached f
    for (const auto& [q, annos] : prj.annos_by_qual) {
        if (!annos.count("hot_path"))
            continue;
        for (const auto& [name, fns] : by_name)
            for (const Func* f : fns)
                if (qual_matches(f->qual, q) && !via.count(f)) {
                    via[f] = f->qual;
                    work.push_back(f);
                }
    }

    while (!work.empty()) {
        const Func* f = work.back();
        work.pop_back();
        if (visited.count(f))
            continue;
        visited.insert(f);
        if (f->annos.count("hot_exempt") ||
            merged_annos(f->name).count("hot_exempt"))
            continue;
        const std::vector<Tok>& t = f->ft->toks;
        for (size_t i = f->body_begin; i < f->body_end; ++i) {
            const std::string& s = t[i].s;
            const bool is_call =
                i + 1 < f->body_end && t[i + 1].s == "(";
            // x.free(...) / x->accept(...) are method calls, not the
            // libc/posix functions these lists name.
            const bool is_member =
                i >= 1 && (t[i - 1].s == "." || t[i - 1].s == "->");
            if (s == "new" || s == "delete") {
                report(out, *f->ft, t[i].line, kHotPathAlloc,
                       "heap " + s + " in `" + f->qual +
                           "`, reachable from hot-path root `" +
                           via[f] + "`");
                continue;
            }
            if (is_call && !is_member && kAllocCalls.count(s)) {
                report(out, *f->ft, t[i].line, kHotPathAlloc,
                       "allocator call `" + s + "` in `" + f->qual +
                           "` (hot path via `" + via[f] + "`)");
                continue;
            }
            if (kLockTokens.count(s) || s == "mutex") {
                report(out, *f->ft, t[i].line, kHotPathAlloc,
                       "mutex/lock `" + s + "` in `" + f->qual +
                           "` (hot path via `" + via[f] + "`)");
                continue;
            }
            if (is_call && !is_member && kBlockingCalls.count(s)) {
                report(out, *f->ft, t[i].line, kHotPathAlloc,
                       "blocking call `" + s + "` in `" + f->qual +
                           "` (hot path via `" + via[f] + "`)");
                continue;
            }
            if (s == "string" && i >= 1 && t[i - 1].s == "::" &&
                i >= 2 && t[i - 2].s == "std") {
                report(out, *f->ft, t[i].line, kHotPathAlloc,
                       "std::string constructed in `" + f->qual +
                           "` (hot path via `" + via[f] + "`)");
                continue;
            }
            if (s == "vector" && i >= 1 && t[i - 1].s == "::" &&
                i >= 2 && t[i - 2].s == "std") {
                report(out, *f->ft, t[i].line, kHotPathAlloc,
                       "std::vector constructed in `" + f->qual +
                           "` (hot path via `" + via[f] + "`)");
                continue;
            }
            // Call-graph edge. Primitive atomic names are opaque:
            // `x.store(...)` is std::atomic traffic, not a call into
            // some class that happens to have a `store` method.
            if (is_call && ident_start(s[0]) &&
                !kNotFuncName.count(s) && !kPrimitiveAtomic.count(s) &&
                by_name.count(s)) {
                for (const Func* g : by_name[s])
                    if (!visited.count(g)) {
                        if (!via.count(g))
                            via[g] = via[f];
                        work.push_back(g);
                    }
            }
        }
    }
}

// ---------------------------------------------------------------- //
// Check 2: msgproxy-packet-custody                                 //
// ---------------------------------------------------------------- //

bool
file_mentions_packet(const FileText& ft)
{
    for (const Tok& tk : ft.toks)
        if (tk.s == "Packet" || tk.s == "PacketRef")
            return true;
    return false;
}

void
check_packet_custody(const Project& prj, std::vector<Finding>& out)
{
    for (const Func& f : prj.funcs) {
        if (!file_mentions_packet(*f.ft))
            continue;
        const std::vector<Tok>& t = f.ft->toks;

        // Does this function consult heap provenance before freeing?
        bool consults_provenance = false;
        for (size_t i = f.body_begin; i < f.body_end; ++i)
            if (t[i].s == "heap" || t[i].s == "kTxHeap" ||
                t[i].s == "tx_state")
                consults_provenance = true;

        // Locals declared `Packet*`.
        std::set<std::string> pkt_vars;
        for (size_t i = f.body_begin; i + 2 < f.body_end; ++i)
            if (t[i].s == "Packet" && t[i + 1].s == "*" &&
                ident_start(t[i + 2].s[0]))
                pkt_vars.insert(t[i + 2].s);

        for (size_t i = f.body_begin; i < f.body_end; ++i) {
            const std::string& s = t[i].s;
            // Rule 1: delete of a packet without provenance check.
            // Freeing a pooled slab entry is UB and corrupts the
            // pool; only the kTxHeap/ref.heap fallback may be
            // deleted, so a deleting function must consult those
            // bits (the AST check in the plugin verifies the
            // dominating branch; here the function is the scope).
            if (s == "delete" && !consults_provenance) {
                report(out, *f.ft, t[i].line, kPacketCustody,
                       "`delete` in `" + f.qual +
                           "` without consulting heap provenance "
                           "(ref.heap / kTxHeap): pooled packets "
                           "must return to their slab");
            }
            // Rule 2: use-after-push — once a Packet* went into a
            // return ring, the pusher no longer owns it.
            if (s == "ret" && i + 3 < f.body_end &&
                t[i + 1].s == "." &&
                (t[i + 2].s == "try_push" || t[i + 2].s == "push") &&
                t[i + 3].s == "(") {
                size_t close = match_forward(t, i + 3);
                std::string root;
                for (size_t j = i + 4; j < close; ++j)
                    if (ident_start(t[j].s[0])) {
                        root = t[j].s;
                        break;
                    }
                if (!root.empty()) {
                    for (size_t j = close; j < f.body_end; ++j) {
                        if (t[j].s == root &&
                            ((j + 1 < f.body_end &&
                              (t[j + 1].s == "." ||
                               t[j + 1].s == "->")) ||
                             pkt_vars.count(root))) {
                            report(
                                out, *f.ft, t[j].line,
                                kPacketCustody,
                                "`" + root +
                                    "` used after return-ring push "
                                    "in `" + f.qual +
                                    "`: custody transferred to the "
                                    "producer (double-push/UAF "
                                    "hazard)");
                            break;
                        }
                    }
                }
            }
            // Rule 3: raw Packet* escaping into a non-custody
            // container.
            if ((s == "push_back" || s == "emplace_back") &&
                i + 1 < f.body_end && t[i + 1].s == "(" && i >= 2 &&
                t[i - 1].s == ".") {
                const std::string recv = t[i - 2].s;
                if (kCustodyContainers.count(recv))
                    continue;
                size_t close = match_forward(t, i + 1);
                bool packet_arg = false;
                for (size_t j = i + 2; j < close; ++j) {
                    if (pkt_vars.count(t[j].s) &&
                        (j + 1 >= close || t[j + 1].s != "."))
                        packet_arg = true;
                }
                if (packet_arg) {
                    report(out, *f.ft, t[i].line, kPacketCustody,
                           "raw Packet* stored into container `" +
                               recv + "` in `" + f.qual +
                               "`: slab packets may only enter the "
                               "pool free list, the deferred queue, "
                               "or the reorder stash");
                }
            }
        }
    }
}

// ---------------------------------------------------------------- //
// Check 3: msgproxy-atomics-order                                  //
// ---------------------------------------------------------------- //

void
check_atomics_order(const Project& prj, std::vector<Finding>& out)
{
    for (const FileText& ft : prj.files) {
        bool allowed = false;
        for (const char* a : kOrderAllowlist)
            if (ft.relpath.find(a) != std::string::npos)
                allowed = true;
        if (allowed)
            continue;
        const std::vector<Tok>& t = ft.toks;
        for (size_t i = 0; i < t.size(); ++i) {
            const std::string& s = t[i].s;
            const bool enum_literal =
                s.rfind("memory_order_", 0) == 0;
            const bool scoped_literal =
                s == "memory_order" && i + 1 < t.size() &&
                t[i + 1].s == "::";
            if (enum_literal || scoped_literal) {
                report(out, ft, t[i].line, kAtomicsOrder,
                       "raw std::" +
                           (enum_literal
                                ? s
                                : s + "::" + t[i + 2].s) +
                           " outside src/spsc/: name the intent via "
                           "mp::ord (src/util/orders.h) so the "
                           "Orders-policy mutation tests cover it");
            }
        }
    }
}

// ---------------------------------------------------------------- //
// Check 4: msgproxy-proxy-owned                                    //
// ---------------------------------------------------------------- //

void
check_proxy_owned(const Project& prj, std::vector<Finding>& out)
{
    auto dir_of = [](const std::string& path) {
        size_t cut = path.find_last_of('/');
        return cut == std::string::npos ? std::string()
                                        : path.substr(0, cut);
    };
    std::set<std::string> owned;
    std::set<std::string> owned_dirs;
    for (const OwnedField& of : prj.owned) {
        owned.insert(of.name);
        owned_dirs.insert(dir_of(of.file));
    }
    if (owned.empty())
        return;
    for (const Func& f : prj.funcs) {
        auto it = prj.annos_by_name.find(f.name);
        const std::set<std::string> annos =
            it == prj.annos_by_name.end() ? f.annos : it->second;
        if (annos.count("proxy_ctx") || annos.count("quiescent"))
            continue;
        // Implicit-this (bare identifier) matching is confined to the
        // directory that declares the owned fields; elsewhere an
        // identifier like `pool` is almost always an unrelated local.
        const bool near_decl = owned_dirs.count(dir_of(f.ft->path));
        const std::vector<Tok>& t = f.ft->toks;
        for (size_t i = f.body_begin; i < f.body_end; ++i) {
            if ((t[i].s == "." || t[i].s == "->") &&
                i + 1 < f.body_end && owned.count(t[i + 1].s)) {
                // Writing the member-access spelling (x.field) is
                // what distinguishes a field touch from an
                // unrelated identifier.
                report(out, *f.ft, t[i + 1].line, kProxyOwned,
                       "proxy-owned field `" + t[i + 1].s +
                           "` accessed in `" + f.qual +
                           "`, which is neither MSGPROXY_PROXY_CTX "
                           "nor MSGPROXY_QUIESCENT");
                continue;
            }
            if (near_decl && owned.count(t[i].s) &&
                (i == 0 || (t[i - 1].s != "." && t[i - 1].s != "->" &&
                            t[i - 1].s != "::")) &&
                (i + 1 >= f.body_end || t[i + 1].s != "(")) {
                report(out, *f.ft, t[i].line, kProxyOwned,
                       "proxy-owned field `" + t[i].s +
                           "` accessed (implicit this) in `" + f.qual +
                           "`, which is neither MSGPROXY_PROXY_CTX "
                           "nor MSGPROXY_QUIESCENT");
            }
        }
    }
}

// ---------------------------------------------------------------- //
// Check 5: msgproxy-deprecated-connect                             //
// ---------------------------------------------------------------- //

// The two-node wiring shim's declaration, definition, and forwarding
// body all live in src/proxy/; a two-argument Node::connect anywhere
// else is a new use of the deprecated API.
const char* const kConnectAllowlist[] = {"src/proxy/"};

void
check_deprecated_connect(const Project& prj,
                         std::vector<Finding>& out)
{
    for (const FileText& ft : prj.files) {
        bool allowed = false;
        for (const char* a : kConnectAllowlist)
            if (ft.relpath.find(a) != std::string::npos)
                allowed = true;
        if (allowed)
            continue;
        const std::vector<Tok>& t = ft.toks;
        for (size_t i = 2; i + 1 < t.size(); ++i) {
            if (t[i].s != "connect" || t[i + 1].s != "(" ||
                t[i - 1].s != "::" || t[i - 2].s != "Node")
                continue;
            // Two arguments at the call's top level mark the shim;
            // the addressed overload takes one.
            const size_t close = match_forward(t, i + 1);
            int depth = 0;
            bool two_args = false;
            for (size_t j = i + 2; j < close; ++j) {
                if (t[j].s == "(" || t[j].s == "[")
                    ++depth;
                else if (t[j].s == ")" || t[j].s == "]")
                    --depth;
                else if (t[j].s == "," && depth == 0)
                    two_args = true;
            }
            if (two_args) {
                report(out, ft, t[i].line, kDeprecatedConnect,
                       "deprecated two-node Node::connect(Node&, "
                       "Node&) shim: wire with a.listen(addr) + "
                       "b.connect(addr) (see net/transport.h)");
            }
        }
    }
}

// ---------------------------------------------------------------- //
// Driver                                                           //
// ---------------------------------------------------------------- //

void
gather_files(const fs::path& p, std::vector<fs::path>& out)
{
    if (fs::is_directory(p)) {
        for (const auto& e : fs::recursive_directory_iterator(p)) {
            if (!e.is_regular_file())
                continue;
            const std::string ext = e.path().extension().string();
            if (ext == ".h" || ext == ".hpp" || ext == ".cc" ||
                ext == ".cpp")
                out.push_back(e.path());
        }
    } else if (fs::is_regular_file(p)) {
        out.push_back(p);
    }
    std::sort(out.begin(), out.end());
}

Project
load_project(const std::vector<fs::path>& paths,
             const fs::path& root)
{
    Project prj;
    prj.files.reserve(paths.size());
    for (const fs::path& p : paths) {
        std::error_code ec;
        fs::path rel = fs::relative(p, root, ec);
        prj.files.push_back(lex_file(
            p.string(),
            ec ? p.generic_string() : rel.generic_string()));
    }
    for (const FileText& ft : prj.files)
        extract(ft, prj);
    return prj;
}

std::vector<Finding>
run_checks(const Project& prj)
{
    std::vector<Finding> out;
    check_hot_path(prj, out);
    check_packet_custody(prj, out);
    check_atomics_order(prj, out);
    check_proxy_owned(prj, out);
    check_deprecated_connect(prj, out);
    std::sort(out.begin(), out.end(),
              [](const Finding& a, const Finding& b) {
                  return std::tie(a.file, a.line, a.check) <
                         std::tie(b.file, b.line, b.check);
              });
    return out;
}

void
print_findings(const std::vector<Finding>& fs)
{
    for (const Finding& f : fs)
        std::printf("%s:%d: warning: %s [%s]\n", f.file.c_str(),
                    f.line, f.msg.c_str(), f.check.c_str());
}

int
run_corpus(const fs::path& dir)
{
    int failures = 0, cases = 0;
    std::vector<fs::path> files;
    gather_files(dir, files);
    for (const fs::path& p : files) {
        const std::string stem = p.stem().string();
        const bool bad = stem.rfind("bad_", 0) == 0;
        const bool good = stem.rfind("good_", 0) == 0;
        if (!bad && !good)
            continue;
        ++cases;
        std::string expect =
            "msgproxy-" + stem.substr(bad ? 4 : 5);
        std::replace(expect.begin(), expect.end(), '_', '-');
        // Numbered variants (bad_packet_custody2.cc) map to their
        // base check.
        while (!expect.empty() &&
               std::isdigit(
                   static_cast<unsigned char>(expect.back())))
            expect.pop_back();
        Project prj = load_project({p}, dir);
        std::vector<Finding> fs = run_checks(prj);
        if (bad) {
            const bool hit = std::any_of(
                fs.begin(), fs.end(), [&](const Finding& f) {
                    return f.check == expect;
                });
            if (!hit) {
                std::printf("FAIL %s: expected a %s finding, got "
                            "%zu other finding(s)\n",
                            p.filename().c_str(), expect.c_str(),
                            fs.size());
                print_findings(fs);
                ++failures;
            } else {
                std::printf("ok   %s: flagged by %s\n",
                            p.filename().c_str(), expect.c_str());
            }
        } else {
            if (!fs.empty()) {
                std::printf("FAIL %s: expected clean, got %zu "
                            "finding(s)\n",
                            p.filename().c_str(), fs.size());
                print_findings(fs);
                ++failures;
            } else {
                std::printf("ok   %s: clean\n", p.filename().c_str());
            }
        }
    }
    if (cases == 0) {
        std::printf("no corpus files (bad_*.cc / good_*.cc) under "
                    "%s\n",
                    dir.c_str());
        return 2;
    }
    std::printf("corpus: %d case(s), %d failure(s)\n", cases,
                failures);
    return failures == 0 ? 0 : 1;
}

void
dump(const Project& prj)
{
    for (const Func& f : prj.funcs) {
        std::printf("func %-40s %s:%d", f.qual.c_str(),
                    f.ft->path.c_str(), f.line);
        auto it = prj.annos_by_name.find(f.name);
        if (it != prj.annos_by_name.end())
            for (const auto& a : it->second)
                std::printf(" [%s]", a.c_str());
        std::printf("\n");
    }
    for (const OwnedField& of : prj.owned)
        std::printf("owned %-39s %s:%d\n", of.name.c_str(),
                    of.file.c_str(), of.line);
}

} // namespace

int
main(int argc, char** argv)
{
    fs::path root = fs::current_path();
    bool do_dump = false;
    std::vector<fs::path> inputs;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (a == "--corpus" && i + 1 < argc) {
            return run_corpus(argv[++i]);
        } else if (a == "--dump") {
            do_dump = true;
        } else if (a == "--help" || a == "-h") {
            std::printf(
                "usage: msgproxy_lint [--root DIR] [--dump] PATH...\n"
                "       msgproxy_lint --corpus DIR\n");
            return 0;
        } else {
            inputs.push_back(fs::path(a).is_absolute() ? fs::path(a)
                                                       : root / a);
        }
    }
    if (inputs.empty()) {
        std::fprintf(stderr, "msgproxy_lint: no inputs (try "
                             "--help)\n");
        return 2;
    }
    std::vector<fs::path> files;
    for (const fs::path& p : inputs)
        gather_files(p, files);
    Project prj = load_project(files, root);
    if (do_dump) {
        dump(prj);
        return 0;
    }
    std::vector<Finding> fs = run_checks(prj);
    print_findings(fs);
    if (fs.empty()) {
        std::printf("msgproxy_lint: %zu file(s) clean\n",
                    prj.files.size());
        return 0;
    }
    std::printf("msgproxy_lint: %zu finding(s) across %zu file(s)\n",
                fs.size(), prj.files.size());
    return 1;
}
