/// \file
/// A small MPI-style message-passing layer on Active Messages —
/// the paper positions RMA and RQ as "an efficient and convenient
/// layer for implementing higher-level communication protocols such
/// as Active Messages and MPI"; this module closes that loop.
///
/// Two-sided tagged send/receive with the classic dual protocol:
///   eager:       payloads up to kEagerBytes travel inside the send
///                message and land in the receiver's unexpected queue
///                until a matching receive is posted;
///   rendezvous:  larger sends announce themselves (RTS); the receiver
///                replies with its posted buffer address (CTS); the
///                data then moves with a single zero-copy bulk store.
///
/// Matching is (source, tag) with kAnySource / kAnyTag wildcards,
/// FIFO-ordered per (source, tag) pair as MPI requires.

#ifndef MSGPROXY_MPI_MPI_H
#define MSGPROXY_MPI_MPI_H

#include <cstdint>
#include <deque>
#include <vector>

#include "am/am.h"
#include "rma/system.h"

namespace mpi {

/// Wildcard source for recv.
inline constexpr int kAnySource = -1;
/// Wildcard tag for recv.
inline constexpr int kAnyTag = -1;

/// Completed-receive metadata.
struct Status
{
    int source = -1;
    int tag = -1;
    size_t bytes = 0;
};

/// Handle for a non-blocking operation.
struct Request
{
    int idx = -1; ///< internal slot; -1 = inactive/complete

    bool active() const { return idx >= 0; }
};

/// Per-rank communicator. Construct symmetrically on every rank (one
/// per am::Endpoint); use only from the owning rank's thread.
class Comm
{
  public:
    /// Payload bound for the eager protocol.
    static constexpr size_t kEagerBytes = 4096;

    /// Attaches to `ep`; registers the protocol handlers.
    Comm(rma::Ctx& ctx, am::Endpoint& ep);

    Comm(const Comm&) = delete;
    Comm& operator=(const Comm&) = delete;

    /// This rank.
    int rank() const { return ctx_.rank(); }
    /// Number of ranks.
    int size() const { return ctx_.nranks(); }

    /// Blocking tagged send (returns when the payload has been handed
    /// off: eagerly buffered at the receiver, or transferred to the
    /// matched rendezvous buffer).
    void send(const void* buf, size_t n, int dst, int tag);

    /// Blocking tagged receive; returns the matched message's
    /// metadata through `st` (optional). `max` bytes fit in `buf`;
    /// longer messages are truncated to `max`.
    void recv(void* buf, size_t max, int src, int tag,
              Status* st = nullptr);

    /// Non-blocking send; complete with wait().
    Request isend(const void* buf, size_t n, int dst, int tag);

    /// Non-blocking receive; complete with wait().
    Request irecv(void* buf, size_t max, int src, int tag);

    /// Blocks until `req` completes (polling the endpoint).
    void wait(Request& req, Status* st = nullptr);

    /// True when `req` has completed (non-blocking test; polls once).
    bool test(Request& req, Status* st = nullptr);

    /// Messages received so far (diagnostics).
    uint64_t received() const { return received_; }

  private:
    struct WireHeader
    {
        int32_t tag;
        uint32_t bytes;
        uint64_t cookie; ///< sender request slot (rendezvous)
    };

    /// An arrived-but-unmatched eager message or rendezvous announce.
    struct Unexpected
    {
        int src;
        int tag;
        uint64_t cookie;          ///< rendezvous: sender slot
        bool rendezvous;
        std::vector<uint8_t> data; ///< eager payload
        size_t bytes;              ///< full message size
    };

    /// A posted receive.
    struct PostedRecv
    {
        void* buf;
        size_t max;
        int src;
        int tag;
        bool done = false;
        /// Matched to a message (rendezvous data may still be in
        /// flight when done is false).
        bool matched = false;
        Status status;
        bool in_use = false;
        uint64_t seq = 0; ///< post order (for MPI matching order)
    };

    /// An outstanding send (rendezvous waits for the CTS+transfer).
    struct PendingSend
    {
        const void* buf;
        size_t bytes;
        int dst;
        bool done = false;
        bool in_use = false;
    };

    static bool
    match(int want_src, int want_tag, int src, int tag)
    {
        return (want_src == kAnySource || want_src == src) &&
               (want_tag == kAnyTag || want_tag == tag);
    }

    int alloc_recv_slot();
    int alloc_send_slot();

    void on_eager(const am::Msg& m);
    void on_rts(const am::Msg& m);
    void on_cts(const am::Msg& m);
    void on_rendezvous_done(const am::Msg& m);

    /// Delivers an unexpected entry into a posted receive slot.
    void deliver(PostedRecv& pr, Unexpected& u);

    rma::Ctx& ctx_;
    am::Endpoint& ep_;
    int h_eager_;
    int h_rts_;
    int h_cts_;
    int h_rdone_;

    std::deque<Unexpected> unexpected_;
    std::vector<PostedRecv> recvs_;
    std::vector<PendingSend> sends_;
    sim::Flag* progress_; ///< bumped whenever any request completes
    uint64_t received_ = 0;
    uint64_t post_seq_ = 0;

    /// Earliest-posted live receive matching (src, tag), or nullptr.
    PostedRecv* find_match(int src, int tag);
};

} // namespace mpi

#endif // MSGPROXY_MPI_MPI_H
