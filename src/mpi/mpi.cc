#include "mpi/mpi.h"

#include <algorithm>
#include <cstring>

#include "util/log.h"

namespace mpi {

namespace {

/// CTS wire format: tells the sender where to store the data.
struct CtsMsg
{
    uint64_t sender_cookie;
    uint64_t raddr;
    uint64_t allowed; ///< receiver buffer capacity
    uint32_t recv_slot;
};

uint64_t
pack_done_arg(uint32_t recv_slot, uint32_t bytes)
{
    return (static_cast<uint64_t>(recv_slot) << 32) | bytes;
}

} // namespace

Comm::Comm(rma::Ctx& ctx, am::Endpoint& ep) : ctx_(ctx), ep_(ep)
{
    h_eager_ =
        ep_.register_handler([this](const am::Msg& m) { on_eager(m); });
    h_rts_ = ep_.register_handler([this](const am::Msg& m) { on_rts(m); });
    h_cts_ = ep_.register_handler([this](const am::Msg& m) { on_cts(m); });
    h_rdone_ = ep_.register_handler(
        [this](const am::Msg& m) { on_rendezvous_done(m); });
    progress_ = ctx_.new_flag();
}

int
Comm::alloc_recv_slot()
{
    for (size_t i = 0; i < recvs_.size(); ++i) {
        if (!recvs_[i].in_use)
            return static_cast<int>(i);
    }
    recvs_.push_back(PostedRecv{});
    return static_cast<int>(recvs_.size()) - 1;
}

int
Comm::alloc_send_slot()
{
    for (size_t i = 0; i < sends_.size(); ++i) {
        if (!sends_[i].in_use)
            return static_cast<int>(i);
    }
    sends_.push_back(PendingSend{});
    return static_cast<int>(sends_.size()) - 1;
}

Comm::PostedRecv*
Comm::find_match(int src, int tag)
{
    PostedRecv* best = nullptr;
    for (auto& pr : recvs_) {
        if (pr.in_use && !pr.done && !pr.matched &&
            match(pr.src, pr.tag, src, tag) &&
            (best == nullptr || pr.seq < best->seq)) {
            best = &pr;
        }
    }
    return best;
}

// ------------------------------------------------------------------- sends

Request
Comm::isend(const void* buf, size_t n, int dst, int tag)
{
    if (n <= kEagerBytes) {
        // Eager: the payload travels with the message; the buffer is
        // reusable immediately (the AM layer snapshots at submit).
        std::vector<uint8_t> msg(sizeof(WireHeader) + n);
        WireHeader hdr{tag, static_cast<uint32_t>(n), 0};
        std::memcpy(msg.data(), &hdr, sizeof(hdr));
        if (n > 0)
            std::memcpy(msg.data() + sizeof(hdr), buf, n);
        ep_.request(dst, h_eager_, msg.data(), msg.size());
        return Request{}; // already complete
    }
    int slot = alloc_send_slot();
    PendingSend& ps = sends_[static_cast<size_t>(slot)];
    ps.buf = buf;
    ps.bytes = n;
    ps.dst = dst;
    ps.done = false;
    ps.in_use = true;
    WireHeader hdr{tag, static_cast<uint32_t>(n),
                   static_cast<uint64_t>(slot)};
    ep_.request(dst, h_rts_, &hdr, sizeof(hdr));
    Request r;
    r.idx = slot + 1'000'000; // send-space handle
    return r;
}

void
Comm::send(const void* buf, size_t n, int dst, int tag)
{
    Request r = isend(buf, n, dst, tag);
    wait(r);
}

void
Comm::on_rts(const am::Msg& m)
{
    WireHeader hdr;
    std::memcpy(&hdr, m.data, sizeof(hdr));
    Unexpected u;
    u.src = m.src;
    u.tag = hdr.tag;
    u.cookie = hdr.cookie;
    u.rendezvous = true;
    u.bytes = hdr.bytes;
    if (PostedRecv* pr = find_match(u.src, u.tag)) {
        deliver(*pr, u);
        return;
    }
    unexpected_.push_back(std::move(u));
}

void
Comm::on_cts(const am::Msg& m)
{
    CtsMsg cts;
    std::memcpy(&cts, m.data, sizeof(cts));
    PendingSend& ps = sends_[static_cast<size_t>(cts.sender_cookie)];
    size_t n = std::min(ps.bytes, static_cast<size_t>(cts.allowed));
    // Zero-copy bulk store straight into the posted buffer, with the
    // completion notification behind the data.
    ep_.store(m.src, ps.buf, reinterpret_cast<void*>(cts.raddr), n,
              h_rdone_,
              pack_done_arg(cts.recv_slot, static_cast<uint32_t>(n)),
              nullptr);
    // Sender side completes at hand-off (buffer readable during the
    // transfer; release on ack would need the lsync — we complete on
    // the receiver's behalf below via the progress flag).
    ps.done = true;
    progress_->add(1);
}

void
Comm::on_rendezvous_done(const am::Msg& m)
{
    uint64_t arg;
    std::memcpy(&arg, m.data, sizeof(arg));
    auto slot = static_cast<size_t>(arg >> 32);
    auto bytes = static_cast<uint32_t>(arg & 0xffffffffu);
    PostedRecv& pr = recvs_[slot];
    MP_CHECK(pr.in_use, "rendezvous completion for idle slot");
    pr.status.bytes = bytes;
    pr.done = true;
    ++received_;
    progress_->add(1);
}

// ------------------------------------------------------------------ recvs

Request
Comm::irecv(void* buf, size_t max, int src, int tag)
{
    int slot = alloc_recv_slot();
    PostedRecv& pr = recvs_[static_cast<size_t>(slot)];
    pr.buf = buf;
    pr.max = max;
    pr.src = src;
    pr.tag = tag;
    pr.done = false;
    pr.matched = false;
    pr.in_use = true;
    pr.status = Status{};
    pr.seq = post_seq_++;

    // Check the unexpected queue (arrival order) for a match.
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
        if (match(src, tag, it->src, it->tag)) {
            Unexpected u = std::move(*it);
            unexpected_.erase(it);
            deliver(pr, u);
            break;
        }
    }
    Request r;
    r.idx = slot;
    return r;
}

void
Comm::recv(void* buf, size_t max, int src, int tag, Status* st)
{
    Request r = irecv(buf, max, src, tag);
    wait(r, st);
}

void
Comm::on_eager(const am::Msg& m)
{
    WireHeader hdr;
    std::memcpy(&hdr, m.data, sizeof(hdr));
    Unexpected u;
    u.src = m.src;
    u.tag = hdr.tag;
    u.cookie = 0;
    u.rendezvous = false;
    u.bytes = hdr.bytes;
    u.data.assign(m.data + sizeof(hdr), m.data + m.size);
    if (PostedRecv* pr = find_match(u.src, u.tag)) {
        deliver(*pr, u);
        return;
    }
    unexpected_.push_back(std::move(u));
}

void
Comm::deliver(PostedRecv& pr, Unexpected& u)
{
    pr.matched = true;
    pr.status.source = u.src;
    pr.status.tag = u.tag;
    if (!u.rendezvous) {
        size_t n = std::min(pr.max, u.data.size());
        if (n > 0)
            std::memcpy(pr.buf, u.data.data(), n);
        // The landed line costs were charged by the queue pop; the
        // user-buffer copy is the receiver's own work.
        ctx_.compute(static_cast<double>(ctx_.design().lines(n)) *
                     ctx_.design().insn(0.1));
        pr.status.bytes = n;
        pr.done = true;
        ++received_;
        progress_->add(1);
        return;
    }
    // Rendezvous: grant the sender our buffer.
    CtsMsg cts;
    cts.sender_cookie = u.cookie;
    cts.raddr = reinterpret_cast<uint64_t>(pr.buf);
    cts.allowed = pr.max;
    cts.recv_slot = static_cast<uint32_t>(&pr - recvs_.data());
    ep_.request(u.src, h_cts_, &cts, sizeof(cts));
    // Completion arrives with the data (on_rendezvous_done).
}

// ------------------------------------------------------------ completion

bool
Comm::test(Request& req, Status* st)
{
    if (!req.active())
        return true;
    ep_.poll_all();
    if (req.idx >= 1'000'000) {
        PendingSend& ps =
            sends_[static_cast<size_t>(req.idx - 1'000'000)];
        if (!ps.done)
            return false;
        ps.in_use = false;
        req.idx = -1;
        return true;
    }
    PostedRecv& pr = recvs_[static_cast<size_t>(req.idx)];
    if (!pr.done)
        return false;
    if (st != nullptr)
        *st = pr.status;
    pr.in_use = false;
    req.idx = -1;
    return true;
}

void
Comm::wait(Request& req, Status* st)
{
    if (!req.active())
        return;
    sim::Flag& arr = ctx_.arrival_flag();
    for (;;) {
        uint64_t a0 = arr.value();
        if (test(req, st))
            return;
        ctx_.wait_either(*progress_, progress_->value() + 1, arr,
                         a0 + 1);
    }
}

} // namespace mpi
