#include "coll/coll.h"

#include <cstring>

#include "am/am.h"
#include "util/log.h"

namespace coll {

namespace {

/// Names used on the bulletin board.
std::string
bar_name(int round)
{
    return "coll.bar." + std::to_string(round);
}

} // namespace

int
Collective::rounds_for(int p)
{
    int r = 0;
    while ((1 << r) < p)
        ++r;
    return r;
}

Collective::Collective(rma::Ctx& ctx, am::Endpoint* ep)
    : ctx_(ctx), ep_(ep), p_(ctx.nranks()), rounds_(rounds_for(p_))
{
    for (int k = 0; k < rounds_; ++k) {
        sim::Flag* f = ctx_.new_flag();
        bar_flags_.push_back(f);
        ctx_.publish(bar_name(k), f);
    }
    peer_bar_flags_.resize(static_cast<size_t>(rounds_));

    // Shared scratch region: per-rank reduction slots, scan carry,
    // result slots, and a broadcast bounce buffer.
    red_slots_ = ctx_.alloc_n<double>(static_cast<size_t>(p_) + 2);
    red_slots_i64_ = ctx_.alloc_n<int64_t>(static_cast<size_t>(p_) + 2);
    bounce_ = ctx_.alloc_n<uint8_t>(kBounceBytes);
    red_flag_ = ctx_.new_flag();
    bcast_flag_ = ctx_.new_flag();
    scan_flag_ = ctx_.new_flag();

    gather_area_ = ctx_.alloc_n<uint8_t>(kBounceBytes);
    gather_flag_ = ctx_.new_flag();
    ctx_.publish("coll.gatherarea", gather_area_);
    ctx_.publish("coll.gatherflag", gather_flag_);
    ctx_.publish("coll.redslots", red_slots_);
    ctx_.publish("coll.redslots64", red_slots_i64_);
    ctx_.publish("coll.bounce", bounce_);
    ctx_.publish("coll.redflag", red_flag_);
    ctx_.publish("coll.bcastflag", bcast_flag_);
    ctx_.publish("coll.scanflag", scan_flag_);
    ctx_.publish("coll.ackflag", ctx_.new_flag());
}

void
Collective::wait(sim::Flag& f, uint64_t v)
{
    if (ep_ != nullptr) {
        ep_->poll_until(f, v);
    } else {
        ctx_.wait_ge(f, v);
    }
}

void
Collective::barrier()
{
    ++generation_;
    if (p_ == 1)
        return;
    int me = ctx_.rank();
    for (int k = 0; k < rounds_; ++k) {
        auto& peers = peer_bar_flags_[static_cast<size_t>(k)];
        if (peers.empty()) {
            peers.resize(static_cast<size_t>(p_), nullptr);
        }
        int partner = (me + (1 << k)) % p_;
        if (peers[static_cast<size_t>(partner)] == nullptr) {
            peers[static_cast<size_t>(partner)] =
                static_cast<sim::Flag*>(ctx_.lookup(bar_name(k), partner));
        }
        // Pure-signal PUT: zero bytes, remote flag increment only.
        ctx_.put(nullptr, partner, nullptr, 0, nullptr,
                 peers[static_cast<size_t>(partner)]);
        wait(*bar_flags_[static_cast<size_t>(k)], generation_);
    }
}

void
Collective::broadcast(void* buf, size_t n, int root)
{
    if (p_ == 1)
        return;
    MP_CHECK(n <= kBounceBytes,
             "broadcast of " << n << " bytes exceeds bounce capacity");
    int me = ctx_.rank();
    if (me == root) {
        for (int r = 0; r < p_; ++r) {
            if (r == root)
                continue;
            auto* peer_bounce =
                static_cast<uint8_t*>(ctx_.lookup("coll.bounce", r));
            auto* peer_flag =
                static_cast<sim::Flag*>(ctx_.lookup("coll.bcastflag", r));
            ctx_.put(buf, r, peer_bounce, n, nullptr, peer_flag);
        }
    } else {
        ++bcast_gen_;
        wait(*bcast_flag_, bcast_gen_);
        std::memcpy(buf, bounce_, n);
        // Reading the landed data misses once per line.
        ctx_.compute(static_cast<double>(ctx_.design().lines(n)) *
                     ctx_.design().c_miss_us);
    }
}

double
Collective::allreduce_sum(double v)
{
    if (p_ == 1)
        return v;
    ++red_gen_;
    int me = ctx_.rank();
    if (me == 0) {
        red_slots_[0] = v;
        wait(*red_flag_,
             static_cast<uint64_t>(p_ - 1) * red_gen_);
        double acc = 0.0;
        for (int r = 0; r < p_; ++r)
            acc += red_slots_[r];
        red_slots_[p_] = acc; // result slot
        ctx_.compute(static_cast<double>(p_) * 0.05);
        for (int r = 1; r < p_; ++r) {
            auto* slots =
                static_cast<double*>(ctx_.lookup("coll.redslots", r));
            auto* flag =
                static_cast<sim::Flag*>(ctx_.lookup("coll.bcastflag", r));
            ctx_.put(&red_slots_[p_], r, &slots[p_], sizeof(double),
                     nullptr, flag);
        }
        return acc;
    }
    auto* slots = static_cast<double*>(ctx_.lookup("coll.redslots", 0));
    auto* flag = static_cast<sim::Flag*>(ctx_.lookup("coll.redflag", 0));
    ctx_.put(&v, 0, &slots[me], sizeof(double), nullptr, flag);
    ++bcast_gen_; // the result arrives on the broadcast flag
    wait(*bcast_flag_, bcast_gen_);
    return red_slots_[p_];
}

double
Collective::allreduce_max(double v)
{
    if (p_ == 1)
        return v;
    ++red_gen_;
    int me = ctx_.rank();
    if (me == 0) {
        red_slots_[0] = v;
        wait(*red_flag_, static_cast<uint64_t>(p_ - 1) * red_gen_);
        double acc = red_slots_[0];
        for (int r = 1; r < p_; ++r)
            acc = red_slots_[r] > acc ? red_slots_[r] : acc;
        red_slots_[p_] = acc;
        ctx_.compute(static_cast<double>(p_) * 0.05);
        for (int r = 1; r < p_; ++r) {
            auto* slots =
                static_cast<double*>(ctx_.lookup("coll.redslots", r));
            auto* flag =
                static_cast<sim::Flag*>(ctx_.lookup("coll.bcastflag", r));
            ctx_.put(&red_slots_[p_], r, &slots[p_], sizeof(double),
                     nullptr, flag);
        }
        return acc;
    }
    auto* slots = static_cast<double*>(ctx_.lookup("coll.redslots", 0));
    auto* flag = static_cast<sim::Flag*>(ctx_.lookup("coll.redflag", 0));
    ctx_.put(&v, 0, &slots[me], sizeof(double), nullptr, flag);
    ++bcast_gen_;
    wait(*bcast_flag_, bcast_gen_);
    return red_slots_[p_];
}

int64_t
Collective::allreduce_sum_i64(int64_t v)
{
    if (p_ == 1)
        return v;
    ++red_gen_;
    int me = ctx_.rank();
    if (me == 0) {
        red_slots_i64_[0] = v;
        wait(*red_flag_, static_cast<uint64_t>(p_ - 1) * red_gen_);
        int64_t acc = 0;
        for (int r = 0; r < p_; ++r)
            acc += red_slots_i64_[r];
        red_slots_i64_[p_] = acc;
        ctx_.compute(static_cast<double>(p_) * 0.05);
        for (int r = 1; r < p_; ++r) {
            auto* slots = static_cast<int64_t*>(
                ctx_.lookup("coll.redslots64", r));
            auto* flag =
                static_cast<sim::Flag*>(ctx_.lookup("coll.bcastflag", r));
            ctx_.put(&red_slots_i64_[p_], r, &slots[p_], sizeof(int64_t),
                     nullptr, flag);
        }
        return acc;
    }
    auto* slots =
        static_cast<int64_t*>(ctx_.lookup("coll.redslots64", 0));
    auto* flag = static_cast<sim::Flag*>(ctx_.lookup("coll.redflag", 0));
    ctx_.put(&v, 0, &slots[me], sizeof(int64_t), nullptr, flag);
    ++bcast_gen_;
    wait(*bcast_flag_, bcast_gen_);
    return red_slots_i64_[p_];
}

void
Collective::allreduce_sum_i64_vec(int64_t* vals, int n)
{
    if (p_ == 1)
        return;
    const size_t bytes = static_cast<size_t>(n) * sizeof(int64_t);
    MP_CHECK(bytes * static_cast<size_t>(p_) <= kBounceBytes,
             "vector reduction exceeds bounce capacity");
    ++red_gen_;
    int me = ctx_.rank();
    if (me == 0) {
        wait(*red_flag_, static_cast<uint64_t>(p_ - 1) * red_gen_);
        auto* contrib = reinterpret_cast<int64_t*>(bounce_);
        for (int r = 1; r < p_; ++r) {
            for (int i = 0; i < n; ++i)
                vals[i] += contrib[static_cast<size_t>(r) * n + i];
        }
        ctx_.compute(static_cast<double>(p_ * n) * 0.02);
        for (int r = 1; r < p_; ++r) {
            auto* peer_bounce =
                static_cast<uint8_t*>(ctx_.lookup("coll.bounce", r));
            auto* flag =
                static_cast<sim::Flag*>(ctx_.lookup("coll.bcastflag", r));
            ctx_.put(vals, r, peer_bounce, bytes, nullptr, flag);
        }
        return;
    }
    auto* root_bounce =
        static_cast<uint8_t*>(ctx_.lookup("coll.bounce", 0));
    auto* root_flag =
        static_cast<sim::Flag*>(ctx_.lookup("coll.redflag", 0));
    ctx_.put(vals, 0,
             root_bounce + static_cast<size_t>(me) * bytes, bytes,
             nullptr, root_flag);
    ++bcast_gen_;
    wait(*bcast_flag_, bcast_gen_);
    std::memcpy(vals, bounce_, bytes);
    ctx_.compute(static_cast<double>(ctx_.design().lines(bytes)) *
                 ctx_.design().c_miss_us);
}

void
Collective::allgather(const void* src, void* dst, size_t bytes)
{
    MP_CHECK(bytes * static_cast<size_t>(p_) <= kBounceBytes,
             "allgather exceeds the landing capacity");
    int me = ctx_.rank();
    if (p_ == 1) {
        std::memcpy(dst, src, bytes);
        return;
    }
    // Everyone PUTs its block at offset me*bytes of every peer's
    // landing area, then waits for p-1 arrivals.
    for (int r = 0; r < p_; ++r) {
        if (r == me)
            continue;
        auto* area =
            static_cast<uint8_t*>(ctx_.lookup("coll.gatherarea", r));
        auto* flag =
            static_cast<sim::Flag*>(ctx_.lookup("coll.gatherflag", r));
        ctx_.put(src, r, area + static_cast<size_t>(me) * bytes, bytes,
                 nullptr, flag);
    }
    std::memcpy(gather_area_ + static_cast<size_t>(me) * bytes, src,
                bytes);
    gather_base_ += static_cast<uint64_t>(p_ - 1);
    wait(*gather_flag_, gather_base_);
    std::memcpy(dst, gather_area_, bytes * static_cast<size_t>(p_));
    ctx_.compute(
        static_cast<double>(
            ctx_.design().lines(bytes * static_cast<size_t>(p_))) *
        ctx_.design().c_miss_us);
    // Landing areas may be reused next call only after every rank has
    // read its copy.
    barrier();
}

void
Collective::alltoall(const void* src, void* dst, size_t bytes)
{
    MP_CHECK(bytes * static_cast<size_t>(p_) <= kBounceBytes,
             "alltoall exceeds the landing capacity");
    int me = ctx_.rank();
    if (p_ == 1) {
        std::memcpy(dst, src, bytes);
        return;
    }
    const auto* s8 = static_cast<const uint8_t*>(src);
    for (int r = 0; r < p_; ++r) {
        if (r == me)
            continue;
        auto* area =
            static_cast<uint8_t*>(ctx_.lookup("coll.gatherarea", r));
        auto* flag =
            static_cast<sim::Flag*>(ctx_.lookup("coll.gatherflag", r));
        ctx_.put(s8 + static_cast<size_t>(r) * bytes, r,
                 area + static_cast<size_t>(me) * bytes, bytes, nullptr,
                 flag);
    }
    std::memcpy(gather_area_ + static_cast<size_t>(me) * bytes,
                s8 + static_cast<size_t>(me) * bytes, bytes);
    gather_base_ += static_cast<uint64_t>(p_ - 1);
    wait(*gather_flag_, gather_base_);
    std::memcpy(dst, gather_area_, bytes * static_cast<size_t>(p_));
    ctx_.compute(
        static_cast<double>(
            ctx_.design().lines(bytes * static_cast<size_t>(p_))) *
        ctx_.design().c_miss_us);
    barrier();
}

int64_t
Collective::scan_sum_i64(int64_t v)
{
    if (p_ == 1)
        return v;
    ++scan_gen_;
    int me = ctx_.rank();
    int64_t total = v;
    if (me > 0) {
        wait(*scan_flag_, scan_gen_);
        total += red_slots_i64_[p_ + 1]; // carry slot
        // Acknowledge consumption so the predecessor may overwrite the
        // carry slot in the next scan.
        auto* ack =
            static_cast<sim::Flag*>(ctx_.lookup("coll.ackflag", me - 1));
        ctx_.put(nullptr, me - 1, nullptr, 0, nullptr, ack);
    }
    if (me < p_ - 1) {
        if (scan_gen_ > 1) {
            auto* my_ack =
                static_cast<sim::Flag*>(ctx_.lookup("coll.ackflag", me));
            wait(*my_ack, scan_gen_ - 1);
        }
        auto* slots = static_cast<int64_t*>(
            ctx_.lookup("coll.redslots64", me + 1));
        auto* flag =
            static_cast<sim::Flag*>(ctx_.lookup("coll.scanflag", me + 1));
        ctx_.put(&total, me + 1, &slots[p_ + 1], sizeof(int64_t), nullptr,
                 flag);
    }
    return total;
}

} // namespace coll
