/// \file
/// Collective communication on top of the RMA/RQ layer: barrier,
/// broadcast, reductions, and scans (the paper's "collective
/// communication library based on RMA and RQ that implements
/// barriers, scans, and reductions").
///
/// Construction is SPMD-symmetric: every rank constructs its
/// Collective before any use; internal buffers and flags are
/// exchanged through the system bulletin board (setup-time address
/// exchange).
///
/// When an am::Endpoint is attached, all internal waits service
/// incoming active messages, so collectives can synchronize ranks
/// that are simultaneously acting as CRL home nodes or AM servers.

#ifndef MSGPROXY_COLL_COLL_H
#define MSGPROXY_COLL_COLL_H

#include <cstdint>
#include <vector>

#include "rma/system.h"

namespace am {
class Endpoint;
} // namespace am

namespace coll {

/// Per-rank collectives handle.
class Collective
{
  public:
    /// Creates the collective state for this rank. `ep` (optional)
    /// is polled while waiting inside collectives.
    explicit Collective(rma::Ctx& ctx, am::Endpoint* ep = nullptr);

    Collective(const Collective&) = delete;
    Collective& operator=(const Collective&) = delete;

    /// Dissemination barrier: O(log P) rounds of signal PUTs.
    void barrier();

    /// Broadcasts [buf, buf+n) from `root` to every rank.
    void broadcast(void* buf, size_t n, int root);

    /// Sum-reduction to all ranks.
    double allreduce_sum(double v);

    /// Max-reduction to all ranks.
    double allreduce_max(double v);

    /// Integer sum-reduction to all ranks.
    int64_t allreduce_sum_i64(int64_t v);

    /// Element-wise sum-reduction of an n-element vector to all ranks
    /// (in place). One gather + one scatter instead of n scalar
    /// reductions.
    void allreduce_sum_i64_vec(int64_t* vals, int n);

    /// Inclusive prefix sum: rank r receives sum of values of ranks
    /// 0..r.
    int64_t scan_sum_i64(int64_t v);

    /// Allgather: every rank contributes `bytes` at `src`; `dst`
    /// (p * bytes) receives all contributions in rank order.
    void allgather(const void* src, void* dst, size_t bytes);

    /// All-to-all: `src` holds p blocks of `bytes` (block r for rank
    /// r); `dst` receives block-for-me from every rank, in rank
    /// order.
    void alltoall(const void* src, void* dst, size_t bytes);

    /// Number of barriers completed (for tests).
    uint64_t barriers() const { return generation_; }

  private:
    /// Waits for `f` to reach `v`, polling the endpoint if attached.
    void wait(sim::Flag& f, uint64_t v);

    /// Number of dissemination rounds for P ranks.
    static int rounds_for(int p);

    rma::Ctx& ctx_;
    am::Endpoint* ep_;
    int p_;
    int rounds_;

    // Barrier state: one counting flag per round.
    std::vector<sim::Flag*> bar_flags_;
    std::vector<std::vector<sim::Flag*>> peer_bar_flags_; // [round][rank]
    uint64_t generation_ = 0;

    // Reduction/broadcast bounce buffers.
    static constexpr size_t kBounceBytes = 64 * 1024;
    double* red_slots_;         ///< P doubles, written by each rank
    int64_t* red_slots_i64_;    ///< P int64s
    uint8_t* bounce_;           ///< broadcast landing area
    sim::Flag* gather_flag_;    ///< counts allgather/alltoall arrivals
    uint8_t* gather_area_;      ///< landing area for gather blocks
    uint64_t gather_base_ = 0;  ///< consumed arrivals on gather_flag_
    sim::Flag* red_flag_;       ///< counts arrivals at the root
    sim::Flag* bcast_flag_;     ///< counts broadcast deliveries
    sim::Flag* scan_flag_;      ///< counts scan hand-offs
    int64_t scan_carry_ = 0;    ///< incoming prefix for scans
    uint64_t red_gen_ = 0;
    uint64_t bcast_gen_ = 0;
    uint64_t scan_gen_ = 0;
};

} // namespace coll

#endif // MSGPROXY_COLL_COLL_H
