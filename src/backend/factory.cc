#include "backend/factory.h"

#include "backend/hw_backend.h"
#include "backend/proxy_backend.h"
#include "backend/sw_backend.h"
#include "util/log.h"

namespace backend {

rma::BackendFactory
factory()
{
    return [](rma::System& sys) -> std::unique_ptr<rma::Backend> {
        switch (sys.design().arch) {
          case machine::Arch::kProxy:
            return std::make_unique<MessageProxyBackend>(sys);
          case machine::Arch::kHardware:
            return std::make_unique<CustomHardwareBackend>(sys);
          case machine::Arch::kSyscall:
            return std::make_unique<SyscallBackend>(sys);
        }
        MP_PANIC("unknown architecture");
    };
}

std::unique_ptr<rma::System>
make_system(const rma::SystemConfig& cfg)
{
    return std::make_unique<rma::System>(cfg, factory());
}

rma::RunResult
run_app(const rma::SystemConfig& cfg,
        const std::function<void(rma::Ctx&)>& app)
{
    auto sys = make_system(cfg);
    return sys->run(app);
}

} // namespace backend
