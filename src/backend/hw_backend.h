/// \file
/// The custom-hardware architecture (design points HW0, HW1).
///
/// SHRIMP / DEC Memory Channel class: the network adapter contains a
/// hardware protocol engine with virtual-memory-mapped protection.
/// Compute processors submit commands with a handful of memory-bus
/// transactions (cpu_ovh); the adapter executes the RMA/RQ protocol,
/// buffers are permanently pinned at setup time (no dynamic pinning),
/// and DMA streams at full engine bandwidth.

#ifndef MSGPROXY_BACKEND_HW_BACKEND_H
#define MSGPROXY_BACKEND_HW_BACKEND_H

#include "backend/common.h"

namespace backend {

/// Custom-hardware backend.
class CustomHardwareBackend : public BaseBackend
{
  public:
    /// Creates the per-node adapters for `sys`.
    explicit CustomHardwareBackend(rma::System& sys);

    void submit(sim::SimThread& t, const rma::Op& op) override;

    double flag_poll_cost() const override { return d_.proxy_miss(); }

    const char* agent_name() const override { return "adapter logic"; }

  private:
    void put_remote(const rma::Op& op);
    void get_remote(const rma::Op& op);
    void enq_remote(const rma::Op& op);
    void deq_remote(const rma::Op& op);
    void local_op(const rma::Op& op);

    /// Per-line cost of the adapter moving data across the memory bus.
    double line_move_us(size_t n) const;

    void ship(int src_node, size_t wire,
              std::function<void(double)> deliver);
    void stream_dma(int src_node, size_t nbytes,
                    std::function<void(double, bool)> arrived);
    void send_ack(int from_node, int to_node, sim::Flag* lsync,
                  uint64_t amount);
};

} // namespace backend

#endif // MSGPROXY_BACKEND_HW_BACKEND_H
