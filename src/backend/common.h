/// \file
/// Shared infrastructure for the three architecture backends: the
/// per-node contended resources (communication agent, DMA engine,
/// network output link) and cost-composition helpers.

#ifndef MSGPROXY_BACKEND_COMMON_H
#define MSGPROXY_BACKEND_COMMON_H

#include <memory>
#include <string>
#include <vector>

#include "machine/design_point.h"
#include "rma/backend.h"
#include "rma/system.h"
#include "sim/resource.h"

namespace backend {

/// Wire-format header size added to every packet (command opcode,
/// asid, addresses, length, sequence).
inline constexpr size_t kHeaderBytes = 32;

/// The contended hardware of one SMP node.
struct NodeRes
{
    NodeRes(sim::Scheduler& s, int node, const char* agent_label)
        : agent(s, std::string(agent_label) + std::to_string(node)),
          dma(s, "dma" + std::to_string(node)),
          link(s, "link" + std::to_string(node))
    {
    }

    sim::Resource agent; ///< message proxy / adapter logic / kernel lock
    sim::Resource dma;   ///< DMA engine between memory and the NIC
    sim::Resource link;  ///< network output serialization
};

/// Accumulates the cost terms of one critical-path stage, optionally
/// mirroring each term into a Table 2 trace.
class CostAccum
{
  public:
    CostAccum(rma::TraceSink* sink, const char* agent)
        : sink_(sink), agent_(agent)
    {
    }

    /// Adds one primitive operation of `us` microseconds.
    void
    add(const char* operation, const char* term, double us)
    {
        total_ += us;
        if (sink_ != nullptr) {
            sink_->add(rma::TraceEntry{agent_, operation, term, us});
        }
    }

    /// Total microseconds accumulated.
    double total() const { return total_; }

  private:
    double total_ = 0.0;
    rma::TraceSink* sink_;
    const char* agent_;
};

/// Common state and helpers for all backends.
class BaseBackend : public rma::Backend
{
  public:
    double
    agent_utilization(int node) const override
    {
        return nodes_[static_cast<size_t>(node)]->agent.utilization();
    }

    double
    agent_busy_us(int node) const override
    {
        return nodes_[static_cast<size_t>(node)]->agent.busy_us();
    }

    void set_trace(rma::TraceSink* sink) override { trace_ = sink; }

  protected:
    BaseBackend(rma::System& sys, const char* agent_label)
        : sys_(sys), d_(sys.design())
    {
        for (int n = 0; n < sys.config().nodes; ++n) {
            nodes_.push_back(std::make_unique<NodeRes>(sys.scheduler(), n,
                                                       agent_label));
        }
    }

    /// Per-node resources of `node`.
    NodeRes& node_res(int node) { return *nodes_[static_cast<size_t>(node)]; }

    /// Bytes on the wire for an n-byte payload.
    static size_t wire_bytes(size_t n) { return n + kHeaderBytes; }

    /// Serialization time of `bytes` on the network link.
    double
    link_us(size_t bytes) const
    {
        return machine::DesignPoint::xfer_us(bytes, d_.net_bw_mbs);
    }

    /// DMA transfer time of `bytes`.
    double
    dma_us(size_t bytes) const
    {
        return machine::DesignPoint::xfer_us(bytes, d_.dma_bw_mbs);
    }

    /// True when a transfer of n bytes goes through the DMA engine
    /// rather than programmed I/O.
    bool use_dma(size_t n) const { return n > d_.pio_threshold; }

    rma::System& sys_;
    const machine::DesignPoint& d_;
    std::vector<std::unique_ptr<NodeRes>> nodes_;
    rma::TraceSink* trace_ = nullptr;
};

} // namespace backend

#endif // MSGPROXY_BACKEND_COMMON_H
