#include "backend/sw_backend.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "sim/flag.h"
#include "util/log.h"

namespace backend {

namespace {

std::shared_ptr<std::vector<uint8_t>>
snapshot(const void* p, size_t n)
{
    auto buf = std::make_shared<std::vector<uint8_t>>(n);
    if (n > 0)
        std::memcpy(buf->data(), p, n);
    return buf;
}

} // namespace

SyscallBackend::SyscallBackend(rma::System& sys) : BaseBackend(sys, "kernel")
{
}

double
SyscallBackend::pio_us(size_t n) const
{
    return static_cast<double>(d_.lines(n)) *
           (d_.c_miss_us + d_.u_access_us);
}

void
SyscallBackend::with_lock(sim::SimThread& t, int node, double hold)
{
    double done_t = node_res(node).agent.submit(hold + lock_us());
    double now = sys_.scheduler().now();
    t.advance(done_t > now ? done_t - now : 0.0);
}

void
SyscallBackend::interrupt_recv(int node, int victim_rank, double arrival,
                               double handler_svc, std::function<void()> done)
{
    double svc = d_.interrupt_us + lock_us() + handler_svc;
    sys_.add_stolen(victim_rank, svc);
    node_res(node).agent.submit_after(arrival, svc, std::move(done));
}

void
SyscallBackend::ship(int src_node, size_t wire,
                     std::function<void(double)> deliver)
{
    node_res(src_node).link.submit(
        link_us(wire), [this, deliver = std::move(deliver)] {
            deliver(sys_.scheduler().now() + d_.net_lat_us);
        });
}

void
SyscallBackend::stream_dma(int src_node, size_t nbytes,
                           std::function<void(double, bool)> arrived)
{
    NodeRes& s = node_res(src_node);
    size_t chunk = d_.packet_bytes;
    size_t nchunks = (nbytes + chunk - 1) / chunk;
    auto cb = std::make_shared<std::function<void(double, bool)>>(
        std::move(arrived));
    for (size_t i = 0; i < nchunks; ++i) {
        size_t this_chunk = (i + 1 == nchunks) ? nbytes - i * chunk : chunk;
        bool last = (i + 1 == nchunks);
        // Dynamic pinning at both ends sits in the transfer stream,
        // exactly as in the message-proxy design (Table 4: both reach
        // the same 86.7 MB/s peak).
        double svc = 2.0 * d_.pin_page_us *
                         static_cast<double>(d_.pages(this_chunk)) +
                     dma_us(this_chunk);
        s.dma.submit(svc, [this, src_node, this_chunk, last, cb] {
            ship(src_node, wire_bytes(this_chunk),
                 [cb, last](double arrival) { (*cb)(arrival, last); });
        });
    }
}

void
SyscallBackend::send_ack(int from_node, int to_node, int victim_rank,
                         sim::Flag* lsync, uint64_t amount)
{
    if (lsync == nullptr)
        return;
    // Ack generation happens inside the remote interrupt handler whose
    // service already ran; only the wire and the local interrupt
    // delivery remain.
    ship(from_node, kHeaderBytes,
         [this, to_node, victim_rank, lsync, amount](double arrival) {
             double handler = d_.c_miss_us + d_.insn(0.3) + d_.c_miss_us;
             interrupt_recv(to_node, victim_rank, arrival, handler,
                            [lsync, amount] { lsync->add(amount); });
         });
}

void
SyscallBackend::submit(sim::SimThread& t, const rma::Op& op)
{
    // Trap into the kernel.
    t.advance(d_.syscall_us);

    const int sn = sys_.node_of(op.src_rank);
    const int dn = sys_.node_of(op.dst_rank);
    if (sn == dn) {
        local_op(op, t);
        return;
    }
    switch (op.kind) {
      case rma::OpKind::kPut:
        put_remote(op, t);
        break;
      case rma::OpKind::kGet:
        get_remote(op, t);
        break;
      case rma::OpKind::kEnq:
        enq_remote(op, t);
        break;
      case rma::OpKind::kDeq:
        deq_remote(op, t);
        break;
    }
}

void
SyscallBackend::put_remote(const rma::Op& op, sim::SimThread& t)
{
    const int sn = sys_.node_of(op.src_rank);
    const int dn = sys_.node_of(op.dst_rank);
    const bool dma = use_dma(op.nbytes);

    // The compute processor executes the send protocol in the kernel,
    // holding the node lock: no overlap with computation.
    double hold = d_.insn(0.5) + d_.u_access_us; // entry + header
    if (dma) {
        hold += 2.0 * d_.u_access_us + d_.insn(0.5); // DMA setup
    } else {
        hold += pio_us(op.nbytes) + d_.u_access_us; // data + launch
    }
    with_lock(t, sn, hold);

    rma::Op o = op;
    auto payload = snapshot(o.laddr, o.nbytes);
    auto done = [this, o, sn, dn, payload] {
        bool ok = sys_.validate_remote(o.src_rank, o.dst_rank, o.raddr,
                                       o.nbytes);
        if (ok && o.nbytes > 0)
            std::memmove(o.raddr, payload->data(), o.nbytes);
        if (ok && o.notify_qid >= 0 &&
            sys_.validate_queue(o.src_rank, o.dst_rank, o.notify_qid)) {
            sys_.deliver(o.dst_rank, o.notify_qid, *o.notify_msg);
        }
        if (o.rsync != nullptr)
            o.rsync->add(1);
        send_ack(dn, sn, o.src_rank, o.lsync, 1);
    };
    if (!dma) {
        ship(sn, wire_bytes(o.nbytes), [this, o, dn, done](double arrival) {
            double handler = d_.c_miss_us + d_.insn(0.5) +
                             pio_us(o.nbytes) + d_.c_miss_us;
            interrupt_recv(dn, o.dst_rank, arrival, handler, done);
        });
    } else {
        auto chunks_done = std::make_shared<int>(0);
        stream_dma(sn, o.nbytes,
                   [this, o, dn, done](double arrival, bool last) {
                       if (last) {
                           double handler =
                               d_.c_miss_us + d_.insn(0.5) + d_.c_miss_us;
                           interrupt_recv(dn, o.dst_rank, arrival, handler,
                                          done);
                       }
                       // Non-final chunks stream into memory via DMA
                       // without per-chunk interrupts.
                   });
        (void)chunks_done;
    }
}

void
SyscallBackend::get_remote(const rma::Op& op, sim::SimThread& t)
{
    const int sn = sys_.node_of(op.src_rank);
    const int dn = sys_.node_of(op.dst_rank);
    const bool dma = use_dma(op.nbytes);

    double hold = d_.insn(0.5) + 2.0 * d_.u_access_us; // header + launch
    with_lock(t, sn, hold);

    rma::Op o = op;
    ship(sn, kHeaderBytes, [this, o, sn, dn, dma](double arrival) {
        // Remote interrupt handler reads the data and generates the
        // reply in kernel context.
        double handler = d_.c_miss_us + d_.insn(0.5) +
                         (dma ? 2.0 * d_.u_access_us + d_.insn(0.5)
                              : pio_us(o.nbytes) + 2.0 * d_.u_access_us);
        interrupt_recv(dn, o.dst_rank, arrival, handler, [this, o, sn, dn,
                                                          dma] {
            bool ok = sys_.validate_remote(o.src_rank, o.dst_rank, o.raddr,
                                           o.nbytes);
            if (!ok) {
                send_ack(dn, sn, o.src_rank, o.lsync, 1);
                return;
            }
            auto payload = snapshot(o.raddr, o.nbytes);
            if (o.rsync != nullptr)
                o.rsync->add(1);
            auto deliver = [this, o, payload] {
                if (o.nbytes > 0)
                    std::memmove(o.laddr, payload->data(), o.nbytes);
                if (o.lsync != nullptr)
                    o.lsync->add(1);
            };
            if (!dma) {
                ship(dn, wire_bytes(o.nbytes),
                     [this, o, sn, deliver](double arr2) {
                         double h2 = d_.c_miss_us + d_.insn(0.5) +
                                     pio_us(o.nbytes) + d_.c_miss_us;
                         interrupt_recv(sn, o.src_rank, arr2, h2, deliver);
                     });
            } else {
                stream_dma(dn, o.nbytes,
                           [this, o, sn, deliver](double arr2, bool last) {
                               if (last) {
                                   double h2 = d_.c_miss_us +
                                               d_.insn(0.5) + d_.c_miss_us;
                                   interrupt_recv(sn, o.src_rank, arr2, h2,
                                                  deliver);
                               }
                           });
            }
        });
    });
}

void
SyscallBackend::enq_remote(const rma::Op& op, sim::SimThread& t)
{
    const int sn = sys_.node_of(op.src_rank);
    const int dn = sys_.node_of(op.dst_rank);
    const bool dma = use_dma(op.nbytes);

    double hold = d_.insn(0.5) + d_.u_access_us;
    if (dma) {
        hold += 2.0 * d_.u_access_us + d_.insn(0.5);
    } else {
        hold += pio_us(op.nbytes) + d_.u_access_us;
    }
    with_lock(t, sn, hold);

    rma::Op o = op;
    auto payload = snapshot(o.laddr, o.nbytes);
    auto done = [this, o, sn, dn, payload] {
        bool ok = sys_.validate_queue(o.src_rank, o.dst_rank, o.qid);
        if (ok) {
            std::vector<uint8_t> msg = *payload;
            if (!sys_.deliver(o.dst_rank, o.qid, std::move(msg)))
                mp::warn("remote queue overflow (sw backend)");
        }
        if (o.rsync != nullptr)
            o.rsync->add(1);
        send_ack(dn, sn, o.src_rank, o.lsync, 1);
    };
    if (!dma) {
        ship(sn, wire_bytes(o.nbytes), [this, o, dn, done](double arrival) {
            double handler = d_.c_miss_us + d_.insn(0.7) +
                             pio_us(o.nbytes) + 3.0 * d_.c_miss_us;
            interrupt_recv(dn, o.dst_rank, arrival, handler, done);
        });
    } else {
        stream_dma(sn, o.nbytes,
                   [this, o, dn, done](double arrival, bool last) {
                       if (last) {
                           double handler = d_.c_miss_us + d_.insn(0.7) +
                                            3.0 * d_.c_miss_us;
                           interrupt_recv(dn, o.dst_rank, arrival, handler,
                                          done);
                       }
                   });
    }
}

void
SyscallBackend::deq_remote(const rma::Op& op, sim::SimThread& t)
{
    const int sn = sys_.node_of(op.src_rank);
    const int dn = sys_.node_of(op.dst_rank);

    double hold = d_.insn(0.5) + 2.0 * d_.u_access_us;
    with_lock(t, sn, hold);

    rma::Op o = op;
    ship(sn, kHeaderBytes, [this, o, sn, dn](double arrival) {
        double handler = d_.c_miss_us + d_.insn(0.7) + 2.0 * d_.c_miss_us;
        interrupt_recv(dn, o.dst_rank, arrival, handler, [this, o, sn,
                                                          dn] {
            bool ok = sys_.validate_queue(o.src_rank, o.dst_rank, o.qid);
            std::vector<uint8_t> msg;
            if (ok)
                sys_.queue(o.dst_rank, o.qid).pop(msg);
            size_t got = std::min(msg.size(), o.nbytes);
            auto payload =
                std::make_shared<std::vector<uint8_t>>(std::move(msg));
            ship(dn, wire_bytes(got), [this, o, sn, got,
                                       payload](double arr2) {
                double h2 = d_.c_miss_us + d_.insn(0.5) + pio_us(got) +
                            d_.c_miss_us;
                interrupt_recv(sn, o.src_rank, arr2, h2, [o, got,
                                                          payload] {
                    if (got > 0)
                        std::memmove(o.laddr, payload->data(), got);
                    if (o.lsync != nullptr)
                        o.lsync->add(1 + static_cast<uint64_t>(got));
                });
            });
        });
    });
}

void
SyscallBackend::local_op(const rma::Op& op, sim::SimThread& t)
{
    const int n = sys_.node_of(op.src_rank);
    // Same-node: the kernel performs the copy directly (no interrupt).
    double copy =
        2.0 * static_cast<double>(d_.lines(op.nbytes)) * d_.c_miss_us;
    double hold = d_.insn(1.0) + copy + 2.0 * d_.c_miss_us;
    with_lock(t, n, hold);

    const rma::Op& o = op;
    switch (o.kind) {
      case rma::OpKind::kPut: {
        bool ok = sys_.validate_remote(o.src_rank, o.dst_rank, o.raddr,
                                       o.nbytes);
        if (ok && o.nbytes > 0)
            std::memmove(o.raddr, o.laddr, o.nbytes);
        if (ok && o.notify_qid >= 0 &&
            sys_.validate_queue(o.src_rank, o.dst_rank, o.notify_qid)) {
            sys_.deliver(o.dst_rank, o.notify_qid, *o.notify_msg);
        }
        break;
      }
      case rma::OpKind::kGet: {
        bool ok = sys_.validate_remote(o.src_rank, o.dst_rank, o.raddr,
                                       o.nbytes);
        if (ok && o.nbytes > 0)
            std::memmove(o.laddr, o.raddr, o.nbytes);
        break;
      }
      case rma::OpKind::kEnq: {
        bool ok = sys_.validate_queue(o.src_rank, o.dst_rank, o.qid);
        if (ok) {
            std::vector<uint8_t> msg(o.nbytes);
            if (o.nbytes > 0)
                std::memcpy(msg.data(), o.laddr, o.nbytes);
            sys_.deliver(o.dst_rank, o.qid, std::move(msg));
        }
        break;
      }
      case rma::OpKind::kDeq: {
        bool ok = sys_.validate_queue(o.src_rank, o.dst_rank, o.qid);
        std::vector<uint8_t> msg;
        size_t got = 0;
        if (ok && sys_.queue(o.dst_rank, o.qid).pop(msg)) {
            got = std::min(msg.size(), o.nbytes);
            if (got > 0)
                std::memcpy(o.laddr, msg.data(), got);
        }
        if (o.lsync != nullptr)
            o.lsync->add(1 + static_cast<uint64_t>(got));
        if (o.rsync != nullptr)
            o.rsync->add(1);
        return;
      }
    }
    if (o.rsync != nullptr)
        o.rsync->add(1);
    if (o.lsync != nullptr)
        o.lsync->add(1);
}

} // namespace backend
