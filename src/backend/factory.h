/// \file
/// Backend construction: maps a DesignPoint's architecture to the
/// concrete backend implementation, and provides the one-call helpers
/// the tests, benches and examples use to run simulated applications.

#ifndef MSGPROXY_BACKEND_FACTORY_H
#define MSGPROXY_BACKEND_FACTORY_H

#include <functional>
#include <memory>

#include "rma/system.h"

namespace backend {

/// Returns the factory that creates the right backend for a System's
/// configured architecture (Arch::kProxy / kHardware / kSyscall).
rma::BackendFactory factory();

/// Builds a System for `cfg` with the matching backend.
std::unique_ptr<rma::System> make_system(const rma::SystemConfig& cfg);

/// Builds a System, runs `app` on every rank, and returns the result.
rma::RunResult run_app(const rma::SystemConfig& cfg,
                       const std::function<void(rma::Ctx&)>& app);

} // namespace backend

#endif // MSGPROXY_BACKEND_FACTORY_H
