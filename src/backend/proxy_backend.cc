#include "backend/proxy_backend.h"

#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "sim/flag.h"
#include "util/log.h"

namespace backend {

namespace {

const char* kUser = "User";
const char* kLocalProxy = "Message Proxy (local)";
const char* kRemoteProxy = "Message Proxy (remote)";
const char* kNetwork = "Network";

/// Copies n bytes from p into a fresh shared buffer.
std::shared_ptr<std::vector<uint8_t>>
snapshot(const void* p, size_t n)
{
    auto buf = std::make_shared<std::vector<uint8_t>>(n);
    if (n > 0)
        std::memcpy(buf->data(), p, n);
    return buf;
}

} // namespace

MessageProxyBackend::MessageProxyBackend(rma::System& sys)
    : BaseBackend(sys, "proxy")
{
    per_node_ = std::max(1, sys.config().proxies_per_node);
    extra_.resize(static_cast<size_t>(sys.config().nodes));
    for (int n = 0; n < sys.config().nodes; ++n) {
        for (int k = 1; k < per_node_; ++k) {
            extra_[static_cast<size_t>(n)].push_back(
                std::make_unique<sim::Resource>(
                    sys.scheduler(),
                    "proxy" + std::to_string(n) + "." +
                        std::to_string(k)));
        }
    }
}

sim::Resource&
MessageProxyBackend::proxy_of(int node, int rank)
{
    int k = rank % per_node_;
    if (k == 0)
        return node_res(node).agent;
    return *extra_[static_cast<size_t>(node)][static_cast<size_t>(k - 1)];
}

double
MessageProxyBackend::agent_utilization(int node) const
{
    double busy = nodes_[static_cast<size_t>(node)]->agent.busy_us();
    for (const auto& p : extra_[static_cast<size_t>(node)])
        busy += p->busy_us();
    double now = sys_.scheduler().now();
    return now > 0.0 ? busy / (now * per_node_) : 0.0;
}

double
MessageProxyBackend::agent_busy_us(int node) const
{
    double busy = nodes_[static_cast<size_t>(node)]->agent.busy_us();
    for (const auto& p : extra_[static_cast<size_t>(node)])
        busy += p->busy_us();
    return busy;
}

// ------------------------------------------------------------ cost builders

double
MessageProxyBackend::cost_user_submit()
{
    CostAccum a(trace_, kUser);
    a.add("enqueue command, (read miss, write miss)", "2C",
          2.0 * d_.proxy_miss());
    a.add("write opcode and operands", "0.3/S", d_.insn(0.3));
    return a.total();
}

double
MessageProxyBackend::cost_proxy_command(const char* agent)
{
    CostAccum a(trace_, agent);
    a.add("polling delay", "P", d_.poll_us);
    a.add("vm_att to command queue", "V", d_.v_att_us);
    a.add("dequeue entry, (read miss)", "C", d_.proxy_miss());
    a.add("decode command", "0.5/S", d_.insn(0.5));
    a.add("dispatch to send routine", "0.3/S", d_.insn(0.3));
    return a.total();
}

double
MessageProxyBackend::cost_send_header(const char* agent, double insns)
{
    CostAccum a(trace_, agent);
    a.add("set up network packet header", "U + x/S",
          d_.u_access_us + d_.insn(insns));
    return a.total();
}

double
MessageProxyBackend::cost_pio_read(const char* agent, size_t n)
{
    CostAccum a(trace_, agent);
    a.add("fill in data, (read miss per line)", "lines*(C + U)",
          static_cast<double>(d_.lines(n)) *
              (d_.proxy_miss() + d_.u_access_us));
    return a.total();
}

double
MessageProxyBackend::cost_launch(const char* agent)
{
    CostAccum a(trace_, agent);
    a.add("launch packet", "U", d_.u_access_us);
    return a.total();
}

double
MessageProxyBackend::cost_recv_header(const char* agent)
{
    CostAccum a(trace_, agent);
    a.add("polling delay", "P", d_.poll_us);
    a.add("read input packet header, (read miss)", "C", d_.c_miss_us);
    a.add("decode packet, dispatch to handler", "0.4/S", d_.insn(0.4));
    return a.total();
}

double
MessageProxyBackend::cost_vmatt_checks(const char* agent)
{
    CostAccum a(trace_, agent);
    a.add("compute remote address, check validity", "0.2/S", d_.insn(0.2));
    a.add("vm_att to remote address space", "V", d_.v_att_us);
    return a.total();
}

double
MessageProxyBackend::cost_pio_store(const char* agent, size_t n)
{
    CostAccum a(trace_, agent);
    a.add("copy data to destination, (write miss per line)",
          "lines*(C + U)",
          static_cast<double>(d_.lines(n)) *
              (d_.proxy_miss() + d_.u_access_us));
    return a.total();
}

double
MessageProxyBackend::cost_set_flag(const char* agent, const char* which)
{
    CostAccum a(trace_, agent);
    std::string op = std::string("set ") + which + ", (write miss)";
    a.add(op.c_str(), "C", d_.proxy_miss());
    return a.total();
}

// -------------------------------------------------------------- primitives

void
MessageProxyBackend::submit(sim::SimThread& t, const rma::Op& op)
{
    t.advance(cost_user_submit());

    const int sn = sys_.node_of(op.src_rank);
    const int dn = sys_.node_of(op.dst_rank);
    if (sn == dn) {
        local_op(op);
        return;
    }
    switch (op.kind) {
      case rma::OpKind::kPut:
        put_remote(op);
        break;
      case rma::OpKind::kGet:
        get_remote(op);
        break;
      case rma::OpKind::kEnq:
        enq_remote(op);
        break;
      case rma::OpKind::kDeq:
        deq_remote(op);
        break;
    }
}

void
MessageProxyBackend::ship(int src_node, size_t wire,
                          std::function<void(double)> deliver)
{
    NodeRes& s = node_res(src_node);
    double ser = link_us(wire);
    s.link.submit(ser, [this, deliver = std::move(deliver)] {
        if (trace_ != nullptr) {
            trace_->add(
                rma::TraceEntry{kNetwork, "transit time", "L",
                                d_.net_lat_us});
        }
        deliver(sys_.scheduler().now() + d_.net_lat_us);
    });
}

void
MessageProxyBackend::stream_dma(int src_node, size_t nbytes,
                                std::function<void(double, bool)> arrived)
{
    NodeRes& s = node_res(src_node);
    size_t chunk = d_.packet_bytes;
    size_t nchunks = (nbytes + chunk - 1) / chunk;
    auto cb = std::make_shared<std::function<void(double, bool)>>(
        std::move(arrived));
    for (size_t i = 0; i < nchunks; ++i) {
        size_t this_chunk = (i + 1 == nchunks) ? nbytes - i * chunk : chunk;
        bool last = (i + 1 == nchunks);
        // Pinning at both ends sits serially in the transfer stream
        // (this reproduces the paper's peak-bandwidth model: 1 /
        // (1/dma_bw + 2*pin/page) = 86.7 MB/s for MP1).
        double svc = 2.0 * d_.pin_page_us *
                         static_cast<double>(d_.pages(this_chunk)) +
                     dma_us(this_chunk);
        s.dma.submit(svc, [this, src_node, this_chunk, last, cb] {
            ship(src_node, wire_bytes(this_chunk),
                 [cb, last](double arrival) { (*cb)(arrival, last); });
        });
    }
}

void
MessageProxyBackend::send_ack(int from_node, int from_rank, int to_node,
                              int to_rank, sim::Flag* lsync,
                              uint64_t amount)
{
    if (lsync == nullptr)
        return; // nobody is waiting; the implementation elides the ack
    CostAccum g(trace_, kRemoteProxy);
    g.add("generate acknowledgment", "U + 0.3/S",
          d_.u_access_us + d_.insn(0.3));
    g.add("launch packet", "U", d_.u_access_us);
    proxy_of(from_node, from_rank)
        .submit(g.total(), [this, from_node, to_node, to_rank, lsync,
                            amount] {
            ship(from_node, kHeaderBytes,
                 [this, to_node, to_rank, lsync, amount](double arrival) {
                     double svc = cost_recv_header(kLocalProxy) +
                                  cost_set_flag(kLocalProxy,
                                                "local sync register");
                     proxy_of(to_node, to_rank)
                         .submit_after(arrival, svc, [lsync, amount] {
                             lsync->add(amount);
                         });
                 });
        });
}

void
MessageProxyBackend::put_remote(const rma::Op& op)
{
    const int sn = sys_.node_of(op.src_rank);
    const int dn = sys_.node_of(op.dst_rank);
    const bool dma = use_dma(op.nbytes);

    double svc = cost_proxy_command(kLocalProxy) +
                 cost_send_header(kLocalProxy, 0.5);
    if (dma) {
        CostAccum a(trace_, kLocalProxy);
        a.add("set up DMA transfer", "2U + 0.5/S",
              2.0 * d_.u_access_us + d_.insn(0.5));
        svc += a.total();
    } else {
        svc += cost_pio_read(kLocalProxy, op.nbytes) +
               cost_launch(kLocalProxy);
    }

    rma::Op o = op;
    // Snapshot the source at submission time: callers may reuse the
    // buffer once submit returns (eager-send semantics).
    auto payload = snapshot(op.laddr, op.nbytes);
    proxy_of(sn, o.src_rank).submit(svc, [this, o, sn, dn, dma, payload] {
        auto done = [this, o, sn, dn, payload] {
            bool ok = sys_.validate_remote(o.src_rank, o.dst_rank, o.raddr,
                                           o.nbytes);
            if (ok && o.nbytes > 0)
                std::memmove(o.raddr, payload->data(), o.nbytes);
            if (ok && o.notify_qid >= 0 &&
                sys_.validate_queue(o.src_rank, o.dst_rank, o.notify_qid)) {
                sys_.deliver(o.dst_rank, o.notify_qid, *o.notify_msg);
            }
            if (o.rsync != nullptr)
                o.rsync->add(1);
            send_ack(dn, o.dst_rank, sn, o.src_rank, o.lsync, 1);
        };
        double notify_svc =
            o.notify_qid >= 0
                ? 2.0 * d_.proxy_miss() + d_.insn(0.2) +
                      cost_pio_store(kRemoteProxy,
                                     o.notify_msg ? o.notify_msg->size()
                                                  : 0)
                : 0.0;
        if (!dma) {
            ship(sn, wire_bytes(o.nbytes),
                 [this, o, dn, done, notify_svc](double arrival) {
                     double rsvc = cost_recv_header(kRemoteProxy) +
                                   cost_vmatt_checks(kRemoteProxy) +
                                   cost_pio_store(kRemoteProxy, o.nbytes) +
                                   notify_svc +
                                   cost_set_flag(kRemoteProxy,
                                                 "remote sync register");
                     proxy_of(dn, o.dst_rank).submit_after(arrival, rsvc, done);
                 });
        } else {
            stream_dma(sn, o.nbytes,
                       [this, o, dn, done, notify_svc](double arrival,
                                                       bool last) {
                           double rsvc =
                               last ? cost_recv_header(kRemoteProxy) +
                                          cost_vmatt_checks(kRemoteProxy) +
                                          notify_svc +
                                          cost_set_flag(
                                              kRemoteProxy,
                                              "remote sync register")
                                    : d_.c_miss_us + d_.insn(0.3);
                           if (last) {
                               proxy_of(dn, o.dst_rank).submit_after(arrival, rsvc,
                                                               done);
                           } else {
                               proxy_of(dn, o.dst_rank).submit_after(arrival,
                                                               rsvc);
                           }
                       });
        }
    });
}

void
MessageProxyBackend::get_remote(const rma::Op& op)
{
    const int sn = sys_.node_of(op.src_rank);
    const int dn = sys_.node_of(op.dst_rank);
    const bool dma = use_dma(op.nbytes);

    double svc = cost_proxy_command(kLocalProxy) +
                 cost_send_header(kLocalProxy, 0.5) +
                 cost_launch(kLocalProxy);

    rma::Op o = op;
    proxy_of(sn, o.src_rank).submit(svc, [this, o, sn, dn, dma] {
        ship(sn, kHeaderBytes, [this, o, sn, dn, dma](double arrival) {
            // Remote proxy handles the GET request: validate, read the
            // source data, and send the reply.
            double rsvc = cost_recv_header(kRemoteProxy) +
                          cost_vmatt_checks(kRemoteProxy);
            if (dma) {
                CostAccum a(trace_, kRemoteProxy);
                a.add("set up DMA transfer", "2U + 0.5/S",
                      2.0 * d_.u_access_us + d_.insn(0.5));
                rsvc += a.total();
            } else {
                rsvc += cost_send_header(kRemoteProxy, 0.6) +
                        cost_pio_read(kRemoteProxy, o.nbytes) +
                        cost_launch(kRemoteProxy);
            }
            proxy_of(dn, o.dst_rank).submit_after(arrival, rsvc, [this, o, sn,
                                                            dn, dma] {
                bool ok = sys_.validate_remote(o.src_rank, o.dst_rank,
                                               o.raddr, o.nbytes);
                if (!ok) {
                    // Protection fault: reply with an error packet so
                    // the requester does not hang; no data moves.
                    send_ack(dn, o.dst_rank, sn, o.src_rank, o.lsync, 1);
                    return;
                }
                auto payload = snapshot(o.raddr, o.nbytes);
                if (o.rsync != nullptr)
                    o.rsync->add(1);
                auto deliver = [this, o, payload] {
                    if (o.nbytes > 0)
                        std::memmove(o.laddr, payload->data(), o.nbytes);
                    if (o.lsync != nullptr)
                        o.lsync->add(1);
                };
                if (!dma) {
                    ship(dn, wire_bytes(o.nbytes),
                         [this, o, sn, deliver](double arr2) {
                             double lsvc =
                                 cost_recv_header(kLocalProxy) +
                                 ccb_cost(kLocalProxy) +
                                 cost_vmatt_checks(kLocalProxy) +
                                 cost_pio_store(kLocalProxy, o.nbytes) +
                                 cost_set_flag(kLocalProxy,
                                               "local sync register");
                             proxy_of(sn, o.src_rank).submit_after(arr2, lsvc,
                                                             deliver);
                         });
                } else {
                    stream_dma(dn, o.nbytes,
                               [this, o, sn, deliver](double arr2,
                                                      bool last) {
                                   double lsvc =
                                       last ? cost_recv_header(
                                                  kLocalProxy) +
                                                  ccb_cost(kLocalProxy) +
                                                  cost_vmatt_checks(
                                                      kLocalProxy) +
                                                  cost_set_flag(
                                                      kLocalProxy,
                                                      "local sync "
                                                      "register")
                                            : d_.c_miss_us + d_.insn(0.3);
                                   if (last) {
                                       proxy_of(sn, o.src_rank).submit_after(
                                           arr2, lsvc, deliver);
                                   } else {
                                       proxy_of(sn, o.src_rank).submit_after(
                                           arr2, lsvc);
                                   }
                               });
                }
            });
        });
    });
}

void
MessageProxyBackend::enq_remote(const rma::Op& op)
{
    const int sn = sys_.node_of(op.src_rank);
    const int dn = sys_.node_of(op.dst_rank);
    const bool dma = use_dma(op.nbytes);

    double svc = cost_proxy_command(kLocalProxy) +
                 cost_send_header(kLocalProxy, 0.5);
    if (dma) {
        CostAccum a(trace_, kLocalProxy);
        a.add("set up DMA transfer", "2U + 0.5/S",
              2.0 * d_.u_access_us + d_.insn(0.5));
        svc += a.total();
    } else {
        svc += cost_pio_read(kLocalProxy, op.nbytes) +
               cost_launch(kLocalProxy);
    }

    rma::Op o = op;
    auto payload = snapshot(op.laddr, op.nbytes);
    proxy_of(sn, o.src_rank).submit(svc, [this, o, sn, dn, dma, payload] {
        auto done = [this, o, sn, dn, payload] {
            bool ok = sys_.validate_queue(o.src_rank, o.dst_rank, o.qid);
            if (ok) {
                std::vector<uint8_t> msg = *payload;
                if (!sys_.deliver(o.dst_rank, o.qid, std::move(msg))) {
                    mp::warn("remote queue overflow: rank " +
                             std::to_string(o.dst_rank) + " qid " +
                             std::to_string(o.qid));
                }
            }
            if (o.rsync != nullptr)
                o.rsync->add(1);
            send_ack(dn, o.dst_rank, sn, o.src_rank, o.lsync, 1);
        };
        auto recv_tail = [this](size_t n) {
            CostAccum a(trace_, kRemoteProxy);
            a.add("update queue head/tail, (read miss, write miss)",
                  "2C + 0.2/S", 2.0 * d_.proxy_miss() + d_.insn(0.2));
            return cost_recv_header(kRemoteProxy) +
                   cost_vmatt_checks(kRemoteProxy) +
                   cost_pio_store(kRemoteProxy, n) + a.total() +
                   cost_set_flag(kRemoteProxy, "remote sync register");
        };
        if (!dma) {
            ship(sn, wire_bytes(o.nbytes),
                 [this, o, dn, done, recv_tail](double arrival) {
                     proxy_of(dn, o.dst_rank).submit_after(
                         arrival, recv_tail(o.nbytes), done);
                 });
        } else {
            stream_dma(
                sn, o.nbytes,
                [this, o, dn, done, recv_tail](double arrival, bool last) {
                    if (last) {
                        proxy_of(dn, o.dst_rank).submit_after(
                            arrival, recv_tail(0), done);
                    } else {
                        proxy_of(dn, o.dst_rank).submit_after(
                            arrival, d_.c_miss_us + d_.insn(0.3));
                    }
                });
        }
    });
}

void
MessageProxyBackend::deq_remote(const rma::Op& op)
{
    const int sn = sys_.node_of(op.src_rank);
    const int dn = sys_.node_of(op.dst_rank);

    double svc = cost_proxy_command(kLocalProxy) +
                 cost_send_header(kLocalProxy, 0.5) +
                 cost_launch(kLocalProxy);

    rma::Op o = op;
    proxy_of(sn, o.src_rank).submit(svc, [this, o, sn, dn] {
        ship(sn, kHeaderBytes, [this, o, sn, dn](double arrival) {
            CostAccum a(trace_, kRemoteProxy);
            a.add("update queue head/tail, (read miss, write miss)",
                  "2C + 0.2/S", 2.0 * d_.proxy_miss() + d_.insn(0.2));
            double rsvc = cost_recv_header(kRemoteProxy) +
                          cost_vmatt_checks(kRemoteProxy) + a.total();
            proxy_of(dn, o.dst_rank).submit_after(arrival, rsvc, [this, o, sn,
                                                            dn] {
                bool ok =
                    sys_.validate_queue(o.src_rank, o.dst_rank, o.qid);
                std::vector<uint8_t> msg;
                if (ok)
                    sys_.queue(o.dst_rank, o.qid).pop(msg);
                size_t got = std::min(msg.size(), o.nbytes);
                auto payload = std::make_shared<std::vector<uint8_t>>(
                    std::move(msg));
                // Reply (with data when the queue had a message).
                double gen = cost_send_header(kRemoteProxy, 0.6) +
                             cost_pio_read(kRemoteProxy, got) +
                             cost_launch(kRemoteProxy);
                proxy_of(dn, o.dst_rank).submit(gen, [this, o, sn, dn, got,
                                                payload] {
                    ship(dn, wire_bytes(got),
                         [this, o, sn, got, payload](double arr2) {
                             double lsvc =
                                 cost_recv_header(kLocalProxy) +
                                 cost_vmatt_checks(kLocalProxy) +
                                 cost_pio_store(kLocalProxy, got) +
                                 cost_set_flag(kLocalProxy,
                                               "local sync register");
                             proxy_of(sn, o.src_rank).submit_after(
                                 arr2, lsvc, [o, got, payload] {
                                     if (got > 0) {
                                         std::memmove(o.laddr,
                                                      payload->data(),
                                                      got);
                                     }
                                     if (o.lsync != nullptr) {
                                         o.lsync->add(
                                             1 + static_cast<uint64_t>(
                                                     got));
                                     }
                                 });
                         });
                });
            });
        });
    });
}

void
MessageProxyBackend::local_op(const rma::Op& op)
{
    const int n = sys_.node_of(op.src_rank);
    const bool dma = use_dma(op.nbytes);

    // Same-node transfer: the proxy moves the data memory-to-memory
    // (vm_att to both address spaces; no network involvement).
    double svc = cost_proxy_command(kLocalProxy) +
                 cost_vmatt_checks(kLocalProxy);
    if (!dma) {
        CostAccum a(trace_, kLocalProxy);
        a.add("copy data, (read miss + write miss per line)", "lines*2C",
              2.0 * d_.proxy_miss() * static_cast<double>(
                                          d_.lines(op.nbytes)));
        svc += a.total();
    } else {
        CostAccum a(trace_, kLocalProxy);
        a.add("pin source and destination pages", "2*pages*pin",
              2.0 * d_.pin_page_us *
                  static_cast<double>(d_.pages(op.nbytes)));
        a.add("set up DMA transfer", "2U + 0.5/S",
              2.0 * d_.u_access_us + d_.insn(0.5));
        svc += a.total();
    }
    // Both sync flags are set directly by the local proxy.
    svc += cost_set_flag(kLocalProxy, "remote sync register") +
           cost_set_flag(kLocalProxy, "local sync register");

    rma::Op o = op;
    // Eager snapshot for source-carrying ops (PUT/ENQ).
    auto payload = (op.kind == rma::OpKind::kPut ||
                    op.kind == rma::OpKind::kEnq)
                       ? snapshot(op.laddr, op.nbytes)
                       : nullptr;
    auto finish = [this, o, payload] {
        switch (o.kind) {
          case rma::OpKind::kPut: {
            bool ok = sys_.validate_remote(o.src_rank, o.dst_rank, o.raddr,
                                           o.nbytes);
            if (ok && o.nbytes > 0)
                std::memmove(o.raddr, payload->data(), o.nbytes);
            if (ok && o.notify_qid >= 0 &&
                sys_.validate_queue(o.src_rank, o.dst_rank,
                                    o.notify_qid)) {
                sys_.deliver(o.dst_rank, o.notify_qid, *o.notify_msg);
            }
            break;
          }
          case rma::OpKind::kGet: {
            bool ok = sys_.validate_remote(o.src_rank, o.dst_rank, o.raddr,
                                           o.nbytes);
            if (ok && o.nbytes > 0)
                std::memmove(o.laddr, o.raddr, o.nbytes);
            break;
          }
          case rma::OpKind::kEnq: {
            bool ok = sys_.validate_queue(o.src_rank, o.dst_rank, o.qid);
            if (ok) {
                sys_.deliver(o.dst_rank, o.qid, *payload);
            }
            break;
          }
          case rma::OpKind::kDeq: {
            bool ok = sys_.validate_queue(o.src_rank, o.dst_rank, o.qid);
            std::vector<uint8_t> msg;
            size_t got = 0;
            if (ok && sys_.queue(o.dst_rank, o.qid).pop(msg)) {
                got = std::min(msg.size(), o.nbytes);
                if (got > 0)
                    std::memcpy(o.laddr, msg.data(), got);
            }
            if (o.lsync != nullptr)
                o.lsync->add(1 + static_cast<uint64_t>(got));
            if (o.rsync != nullptr)
                o.rsync->add(1);
            return;
          }
        }
        if (o.rsync != nullptr)
            o.rsync->add(1);
        if (o.lsync != nullptr)
            o.lsync->add(1);
    };

    if (!dma) {
        proxy_of(n, o.src_rank).submit(svc, finish);
    } else {
        // The proxy sets up the transfer, the DMA engine streams it.
        proxy_of(n, o.src_rank).submit(svc, [this, n, o, finish] {
            node_res(n).dma.submit(dma_us(o.nbytes), finish);
        });
    }
}

double
MessageProxyBackend::ccb_cost(const char* agent)
{
    CostAccum a(trace_, agent);
    a.add("find local address in CCB, (read miss)", "C + 0.4/S",
          d_.proxy_miss() + d_.insn(0.4));
    return a.total();
}

} // namespace backend
