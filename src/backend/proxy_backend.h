/// \file
/// The message-proxy architecture (the paper's contribution).
///
/// One processor per SMP node is dedicated to a kernel-privileged
/// message proxy. User processes enqueue commands into per-user
/// single-producer/single-consumer shared-memory queues; the proxy
/// polls those queues and the network input FIFO round-robin,
/// executes the RMA/RQ protocol, and accesses the network interface
/// on the users' behalf — no system calls, interrupts, or locks.
///
/// Cost model: the critical path is composed of the primitive terms
/// of the paper's Tables 1 and 2 (cache miss C, uncached access U,
/// vm_att V, polling delay P, instruction time 1/S, transit L), so a
/// one-word GET costs 10C + 6U + 3V + 3.6/S + 3P + 2L and a one-word
/// PUT costs 7C + 4U + 2V + 2.2/S + 2P + L, exactly the published
/// model. Under the MP2 cache-update primitive, misses between the
/// proxy and compute processors use the reduced c_update latency.

#ifndef MSGPROXY_BACKEND_PROXY_BACKEND_H
#define MSGPROXY_BACKEND_PROXY_BACKEND_H

#include "backend/common.h"

namespace backend {

/// Message-proxy backend (design points MP0, MP1, MP2).
class MessageProxyBackend : public BaseBackend
{
  public:
    /// Creates the per-node proxies for `sys` (one per node by
    /// default; SystemConfig::proxies_per_node adds more, with ranks
    /// statically partitioned across them).
    explicit MessageProxyBackend(rma::System& sys);

    double agent_utilization(int node) const override;
    double agent_busy_us(int node) const override;

    void submit(sim::SimThread& t, const rma::Op& op) override;

    double flag_poll_cost() const override { return d_.proxy_miss(); }

    const char* agent_name() const override { return "message proxy"; }

  private:
    // Inter-node paths.
    void put_remote(const rma::Op& op);
    void get_remote(const rma::Op& op);
    void enq_remote(const rma::Op& op);
    void deq_remote(const rma::Op& op);

    // Same-node fast path: the proxy copies memory-to-memory.
    void local_op(const rma::Op& op);

    // Stage-cost builders (also emit Table 2 trace rows).
    double cost_user_submit();
    double cost_proxy_command(const char* agent);
    double cost_send_header(const char* agent, double insns);
    double cost_pio_read(const char* agent, size_t n);
    double cost_launch(const char* agent);
    double cost_recv_header(const char* agent);
    double cost_vmatt_checks(const char* agent);
    double cost_pio_store(const char* agent, size_t n);
    double cost_set_flag(const char* agent, const char* which);
    double ccb_cost(const char* agent);

    /// Ship `wire` bytes from `src_node`, then run `deliver(arrival)`
    /// at the remote end of the link.
    void ship(int src_node, size_t wire,
              std::function<void(double)> deliver);

    /// Send the sender-side DMA chunks of a large transfer and call
    /// `arrived(arrival_time)` per chunk at the destination node.
    void stream_dma(int src_node, size_t nbytes,
                    std::function<void(double, bool)> arrived);

    /// Small acknowledgment packet from `from_node` back to
    /// `to_node`'s proxy that bumps `lsync` (if any) by `amount`.
    /// The rank arguments select which proxy serves each side.
    void send_ack(int from_node, int from_rank, int to_node, int to_rank,
                  sim::Flag* lsync, uint64_t amount);

    /// The proxy serving `rank`'s queues on `node`.
    sim::Resource& proxy_of(int node, int rank);

    /// Extra proxies beyond NodeRes::agent (index p-1 holds proxy p).
    std::vector<std::vector<std::unique_ptr<sim::Resource>>> extra_;
    int per_node_ = 1;
};

} // namespace backend

#endif // MSGPROXY_BACKEND_PROXY_BACKEND_H
