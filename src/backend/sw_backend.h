/// \file
/// The system-call architecture (design point SW1).
///
/// Outgoing communication enters the kernel through a system call;
/// the compute processor itself executes the communication protocol
/// while holding the node's kernel lock (no overlap with computation
/// is possible). Incoming messages are delivered by interrupts that
/// steal cycles from a compute processor. System-call and interrupt
/// overheads are the aggressively optimized 6.5 us of Table 3.

#ifndef MSGPROXY_BACKEND_SW_BACKEND_H
#define MSGPROXY_BACKEND_SW_BACKEND_H

#include "backend/common.h"

namespace backend {

/// System-call backend.
class SyscallBackend : public BaseBackend
{
  public:
    /// Creates the per-node kernel state for `sys`.
    explicit SyscallBackend(rma::System& sys);

    void submit(sim::SimThread& t, const rma::Op& op) override;

    double flag_poll_cost() const override { return d_.c_miss_us; }

    const char* agent_name() const override { return "kernel"; }

  private:
    /// Kernel lock acquire+release cost (SMP atomicity, Section 2).
    double lock_us() const { return 1.0; }

    /// Blocks `t` until the node kernel lock is free, holds it for
    /// `hold` microseconds, and returns after release.
    void with_lock(sim::SimThread& t, int node, double hold);

    void put_remote(const rma::Op& op, sim::SimThread& t);
    void get_remote(const rma::Op& op, sim::SimThread& t);
    void enq_remote(const rma::Op& op, sim::SimThread& t);
    void deq_remote(const rma::Op& op, sim::SimThread& t);
    void local_op(const rma::Op& op, sim::SimThread& t);

    /// Per-line PIO cost of the kernel moving data to/from the NIC.
    double pio_us(size_t n) const;

    /// Interrupt-driven receive: runs `handler_svc` microseconds of
    /// kernel time on node `node` (stealing cycles from `victim_rank`)
    /// starting at `arrival`, then calls `done`.
    void interrupt_recv(int node, int victim_rank, double arrival,
                        double handler_svc, std::function<void()> done);

    void ship(int src_node, size_t wire,
              std::function<void(double)> deliver);
    void stream_dma(int src_node, size_t nbytes,
                    std::function<void(double, bool)> arrived);
    void send_ack(int from_node, int to_node, int victim_rank,
                  sim::Flag* lsync, uint64_t amount);
};

} // namespace backend

#endif // MSGPROXY_BACKEND_SW_BACKEND_H
