#include "backend/hw_backend.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "sim/flag.h"
#include "util/log.h"

namespace backend {

namespace {

std::shared_ptr<std::vector<uint8_t>>
snapshot(const void* p, size_t n)
{
    auto buf = std::make_shared<std::vector<uint8_t>>(n);
    if (n > 0)
        std::memcpy(buf->data(), p, n);
    return buf;
}

} // namespace

CustomHardwareBackend::CustomHardwareBackend(rma::System& sys)
    : BaseBackend(sys, "adapter")
{
}

double
CustomHardwareBackend::line_move_us(size_t n) const
{
    // The protocol engine moves data line-at-a-time over the memory
    // bus; each line is one coherent bus transaction (cheaper when the
    // adapter can update processor caches directly — the HW2
    // extension point).
    return static_cast<double>(d_.lines(n)) * d_.proxy_miss();
}

void
CustomHardwareBackend::submit(sim::SimThread& t, const rma::Op& op)
{
    // Command submission: a few uncached stores across the memory bus
    // into the memory-mapped adapter (Table 3 compute-processor
    // overhead).
    t.advance(d_.cpu_ovh_us);

    const int sn = sys_.node_of(op.src_rank);
    const int dn = sys_.node_of(op.dst_rank);
    if (sn == dn) {
        local_op(op);
        return;
    }
    switch (op.kind) {
      case rma::OpKind::kPut:
        put_remote(op);
        break;
      case rma::OpKind::kGet:
        get_remote(op);
        break;
      case rma::OpKind::kEnq:
        enq_remote(op);
        break;
      case rma::OpKind::kDeq:
        deq_remote(op);
        break;
    }
}

void
CustomHardwareBackend::ship(int src_node, size_t wire,
                            std::function<void(double)> deliver)
{
    node_res(src_node).link.submit(
        link_us(wire), [this, deliver = std::move(deliver)] {
            deliver(sys_.scheduler().now() + d_.net_lat_us);
        });
}

void
CustomHardwareBackend::stream_dma(int src_node, size_t nbytes,
                                  std::function<void(double, bool)> arrived)
{
    NodeRes& s = node_res(src_node);
    size_t chunk = d_.packet_bytes;
    size_t nchunks = (nbytes + chunk - 1) / chunk;
    auto cb = std::make_shared<std::function<void(double, bool)>>(
        std::move(arrived));
    for (size_t i = 0; i < nchunks; ++i) {
        size_t this_chunk = (i + 1 == nchunks) ? nbytes - i * chunk : chunk;
        bool last = (i + 1 == nchunks);
        // Buffers are pre-pinned: the stream runs at engine bandwidth.
        s.dma.submit(dma_us(this_chunk),
                     [this, src_node, this_chunk, last, cb] {
                         ship(src_node, wire_bytes(this_chunk),
                              [cb, last](double arrival) {
                                  (*cb)(arrival, last);
                              });
                     });
    }
}

void
CustomHardwareBackend::send_ack(int from_node, int to_node,
                                sim::Flag* lsync, uint64_t amount)
{
    if (lsync == nullptr)
        return;
    node_res(from_node).agent.submit(
        d_.insn(0.2), [this, from_node, to_node, lsync, amount] {
            ship(from_node, kHeaderBytes,
                 [this, to_node, lsync, amount](double arrival) {
                     double svc = d_.adapter_ovh_us + d_.c_miss_us;
                     node_res(to_node).agent.submit_after(
                         arrival, svc,
                         [lsync, amount] { lsync->add(amount); });
                 });
        });
}

void
CustomHardwareBackend::put_remote(const rma::Op& op)
{
    const int sn = sys_.node_of(op.src_rank);
    const int dn = sys_.node_of(op.dst_rank);
    const bool dma = use_dma(op.nbytes);

    double svc = d_.adapter_ovh_us +
                 (dma ? d_.insn(0.2) : line_move_us(op.nbytes));

    rma::Op o = op;
    // Snapshot at submission: eager-send buffer semantics.
    auto payload = snapshot(op.laddr, op.nbytes);
    node_res(sn).agent.submit(svc, [this, o, sn, dn, dma, payload] {
        auto done = [this, o, sn, dn, payload] {
            bool ok = sys_.validate_remote(o.src_rank, o.dst_rank, o.raddr,
                                           o.nbytes);
            if (ok && o.nbytes > 0)
                std::memmove(o.raddr, payload->data(), o.nbytes);
            if (ok && o.notify_qid >= 0 &&
                sys_.validate_queue(o.src_rank, o.dst_rank,
                                    o.notify_qid)) {
                sys_.deliver(o.dst_rank, o.notify_qid, *o.notify_msg);
            }
            if (o.rsync != nullptr)
                o.rsync->add(1);
            send_ack(dn, sn, o.lsync, 1);
        };
        if (!dma) {
            ship(sn, wire_bytes(o.nbytes),
                 [this, o, dn, done](double arrival) {
                     double rsvc = d_.adapter_ovh_us +
                                   line_move_us(o.nbytes) + d_.c_miss_us;
                     node_res(dn).agent.submit_after(arrival, rsvc, done);
                 });
        } else {
            stream_dma(sn, o.nbytes,
                       [this, o, dn, done](double arrival, bool last) {
                           double rsvc = last ? d_.adapter_ovh_us +
                                                    d_.c_miss_us
                                              : d_.insn(0.1);
                           if (last) {
                               node_res(dn).agent.submit_after(arrival,
                                                               rsvc, done);
                           } else {
                               node_res(dn).agent.submit_after(arrival,
                                                               rsvc);
                           }
                       });
        }
    });
}

void
CustomHardwareBackend::get_remote(const rma::Op& op)
{
    const int sn = sys_.node_of(op.src_rank);
    const int dn = sys_.node_of(op.dst_rank);
    const bool dma = use_dma(op.nbytes);

    double svc = d_.adapter_ovh_us;
    rma::Op o = op;
    node_res(sn).agent.submit(svc, [this, o, sn, dn, dma] {
        ship(sn, kHeaderBytes, [this, o, sn, dn, dma](double arrival) {
            double rsvc = d_.adapter_ovh_us +
                          (dma ? d_.insn(0.2) : line_move_us(o.nbytes));
            node_res(dn).agent.submit_after(arrival, rsvc, [this, o, sn,
                                                            dn, dma] {
                bool ok = sys_.validate_remote(o.src_rank, o.dst_rank,
                                               o.raddr, o.nbytes);
                if (!ok) {
                    send_ack(dn, sn, o.lsync, 1);
                    return;
                }
                auto payload = snapshot(o.raddr, o.nbytes);
                if (o.rsync != nullptr)
                    o.rsync->add(1);
                auto deliver = [this, o, payload] {
                    if (o.nbytes > 0)
                        std::memmove(o.laddr, payload->data(), o.nbytes);
                    if (o.lsync != nullptr)
                        o.lsync->add(1);
                };
                if (!dma) {
                    ship(dn, wire_bytes(o.nbytes),
                         [this, o, sn, deliver](double arr2) {
                             double lsvc = d_.adapter_ovh_us +
                                           line_move_us(o.nbytes) +
                                           d_.c_miss_us;
                             node_res(sn).agent.submit_after(arr2, lsvc,
                                                             deliver);
                         });
                } else {
                    stream_dma(dn, o.nbytes,
                               [this, o, sn, deliver](double arr2,
                                                      bool last) {
                                   double lsvc = last ? d_.adapter_ovh_us +
                                                            d_.c_miss_us
                                                      : d_.insn(0.1);
                                   if (last) {
                                       node_res(sn).agent.submit_after(
                                           arr2, lsvc, deliver);
                                   } else {
                                       node_res(sn).agent.submit_after(
                                           arr2, lsvc);
                                   }
                               });
                }
            });
        });
    });
}

void
CustomHardwareBackend::enq_remote(const rma::Op& op)
{
    const int sn = sys_.node_of(op.src_rank);
    const int dn = sys_.node_of(op.dst_rank);
    const bool dma = use_dma(op.nbytes);

    double svc = d_.adapter_ovh_us +
                 (dma ? d_.insn(0.2) : line_move_us(op.nbytes));
    rma::Op o = op;
    auto payload = snapshot(op.laddr, op.nbytes);
    node_res(sn).agent.submit(svc, [this, o, sn, dn, dma, payload] {
        auto done = [this, o, sn, dn, payload] {
            bool ok = sys_.validate_queue(o.src_rank, o.dst_rank, o.qid);
            if (ok) {
                std::vector<uint8_t> msg = *payload;
                if (!sys_.deliver(o.dst_rank, o.qid, std::move(msg))) {
                    mp::warn("remote queue overflow (hw backend)");
                }
            }
            if (o.rsync != nullptr)
                o.rsync->add(1);
            send_ack(dn, sn, o.lsync, 1);
        };
        auto tail_svc = [this](size_t n) {
            // store data + hardware queue-pointer update
            return d_.adapter_ovh_us + line_move_us(n) + 2.0 * d_.c_miss_us;
        };
        if (!dma) {
            ship(sn, wire_bytes(o.nbytes),
                 [this, o, dn, done, tail_svc](double arrival) {
                     node_res(dn).agent.submit_after(
                         arrival, tail_svc(o.nbytes), done);
                 });
        } else {
            stream_dma(sn, o.nbytes,
                       [this, o, dn, done, tail_svc](double arrival,
                                                     bool last) {
                           if (last) {
                               node_res(dn).agent.submit_after(
                                   arrival, tail_svc(0), done);
                           } else {
                               node_res(dn).agent.submit_after(
                                   arrival, d_.insn(0.1));
                           }
                       });
        }
    });
}

void
CustomHardwareBackend::deq_remote(const rma::Op& op)
{
    const int sn = sys_.node_of(op.src_rank);
    const int dn = sys_.node_of(op.dst_rank);

    rma::Op o = op;
    node_res(sn).agent.submit(d_.adapter_ovh_us, [this, o, sn, dn] {
        ship(sn, kHeaderBytes, [this, o, sn, dn](double arrival) {
            double rsvc = d_.adapter_ovh_us + 2.0 * d_.c_miss_us;
            node_res(dn).agent.submit_after(arrival, rsvc, [this, o, sn,
                                                            dn] {
                bool ok =
                    sys_.validate_queue(o.src_rank, o.dst_rank, o.qid);
                std::vector<uint8_t> msg;
                if (ok)
                    sys_.queue(o.dst_rank, o.qid).pop(msg);
                size_t got = std::min(msg.size(), o.nbytes);
                auto payload = std::make_shared<std::vector<uint8_t>>(
                    std::move(msg));
                double gen = d_.adapter_ovh_us + line_move_us(got);
                node_res(dn).agent.submit(gen, [this, o, sn, dn, got,
                                                payload] {
                    ship(dn, wire_bytes(got),
                         [this, o, sn, got, payload](double arr2) {
                             double lsvc = d_.adapter_ovh_us +
                                           line_move_us(got) +
                                           d_.c_miss_us;
                             node_res(sn).agent.submit_after(
                                 arr2, lsvc, [o, got, payload] {
                                     if (got > 0) {
                                         std::memmove(o.laddr,
                                                      payload->data(),
                                                      got);
                                     }
                                     if (o.lsync != nullptr) {
                                         o.lsync->add(
                                             1 + static_cast<uint64_t>(
                                                     got));
                                     }
                                 });
                         });
                });
            });
        });
    });
}

void
CustomHardwareBackend::local_op(const rma::Op& op)
{
    const int n = sys_.node_of(op.src_rank);
    const bool dma = use_dma(op.nbytes);

    double svc = d_.adapter_ovh_us + d_.c_miss_us +
                 (dma ? d_.insn(0.2) : 2.0 * line_move_us(op.nbytes));

    rma::Op o = op;
    auto payload = (op.kind == rma::OpKind::kPut ||
                    op.kind == rma::OpKind::kEnq)
                       ? snapshot(op.laddr, op.nbytes)
                       : nullptr;
    auto finish = [this, o, payload] {
        switch (o.kind) {
          case rma::OpKind::kPut: {
            bool ok = sys_.validate_remote(o.src_rank, o.dst_rank, o.raddr,
                                           o.nbytes);
            if (ok && o.nbytes > 0)
                std::memmove(o.raddr, payload->data(), o.nbytes);
            if (ok && o.notify_qid >= 0 &&
                sys_.validate_queue(o.src_rank, o.dst_rank,
                                    o.notify_qid)) {
                sys_.deliver(o.dst_rank, o.notify_qid, *o.notify_msg);
            }
            break;
          }
          case rma::OpKind::kGet: {
            bool ok = sys_.validate_remote(o.src_rank, o.dst_rank, o.raddr,
                                           o.nbytes);
            if (ok && o.nbytes > 0)
                std::memmove(o.laddr, o.raddr, o.nbytes);
            break;
          }
          case rma::OpKind::kEnq: {
            bool ok = sys_.validate_queue(o.src_rank, o.dst_rank, o.qid);
            if (ok) {
                sys_.deliver(o.dst_rank, o.qid, *payload);
            }
            break;
          }
          case rma::OpKind::kDeq: {
            bool ok = sys_.validate_queue(o.src_rank, o.dst_rank, o.qid);
            std::vector<uint8_t> msg;
            size_t got = 0;
            if (ok && sys_.queue(o.dst_rank, o.qid).pop(msg)) {
                got = std::min(msg.size(), o.nbytes);
                if (got > 0)
                    std::memcpy(o.laddr, msg.data(), got);
            }
            if (o.lsync != nullptr)
                o.lsync->add(1 + static_cast<uint64_t>(got));
            if (o.rsync != nullptr)
                o.rsync->add(1);
            return;
          }
        }
        if (o.rsync != nullptr)
            o.rsync->add(1);
        if (o.lsync != nullptr)
            o.lsync->add(1);
    };

    if (!dma) {
        node_res(n).agent.submit(svc, finish);
    } else {
        node_res(n).agent.submit(svc, [this, n, o, finish] {
            node_res(n).dma.submit(dma_us(o.nbytes), finish);
        });
    }
}

} // namespace backend
