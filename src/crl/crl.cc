#include "crl/crl.h"

#include <cstring>

#include "util/log.h"

namespace crl {

namespace {

/// Serializes a trivially-copyable header plus an optional payload.
template <typename H>
std::vector<uint8_t>
pack(const H& hdr, const uint8_t* payload, size_t n)
{
    std::vector<uint8_t> out(sizeof(H) + n);
    std::memcpy(out.data(), &hdr, sizeof(H));
    if (n > 0)
        std::memcpy(out.data() + sizeof(H), payload, n);
    return out;
}

template <typename H>
H
unpack(const am::Msg& m)
{
    MP_CHECK(m.size >= sizeof(H), "runt CRL message");
    H h;
    std::memcpy(&h, m.data, sizeof(H));
    return h;
}

constexpr uint8_t kDowngradeShared = 0;
constexpr uint8_t kDowngradeInvalid = 1;

/// am_store notification argument: region id in the high bits, a
/// small code in the low 16.
uint64_t
pack_arg(RegionId rid, uint16_t code)
{
    return (static_cast<uint64_t>(rid) << 16) | code;
}

RegionId
arg_rid(uint64_t arg)
{
    return static_cast<RegionId>(arg >> 16);
}

uint16_t
arg_code(uint64_t arg)
{
    return static_cast<uint16_t>(arg & 0xffff);
}

std::string
master_key(RegionId rid)
{
    return "crl.m." + std::to_string(rid);
}

std::string
buf_key(RegionId rid)
{
    return "crl.b." + std::to_string(rid);
}

} // namespace

Crl::Crl(rma::Ctx& ctx, am::Endpoint& ep) : ctx_(ctx), ep_(ep)
{
    h_request_ = ep_.register_handler(
        [this](const am::Msg& m) { on_request(m); });
    h_flush_ =
        ep_.register_handler([this](const am::Msg& m) { on_flush(m); });
    h_writeback_ = ep_.register_handler(
        [this](const am::Msg& m) { on_writeback(m); });
    h_inv_ = ep_.register_handler([this](const am::Msg& m) { on_inv(m); });
    h_invack_ =
        ep_.register_handler([this](const am::Msg& m) { on_invack(m); });
    h_fill_ =
        ep_.register_handler([this](const am::Msg& m) { on_fill(m); });
    h_flushack_ = ep_.register_handler(
        [this](const am::Msg& m) { on_flushack(m); });
    flushack_flag_ = ctx_.new_flag();
}

RegionId
Crl::create(size_t bytes)
{
    RegionId rid = region_id(ctx_.rank(), next_index_++);
    HomeRegion h;
    h.master = static_cast<uint8_t*>(ctx_.alloc(bytes));
    h.bytes = bytes;
    std::memset(h.master, 0, bytes);
    home_.emplace(rid, std::move(h));
    // Publish the master address so owners can write back with a
    // direct bulk store.
    ctx_.publish(master_key(rid), home_[rid].master);
    return rid;
}

void*
Crl::map(RegionId rid, size_t bytes)
{
    MP_CHECK(local_.find(rid) == local_.end(),
             "region " << rid << " already mapped");
    LocalRegion lr;
    lr.buf = static_cast<uint8_t*>(ctx_.alloc(bytes));
    lr.bytes = bytes;
    lr.fill_flag = ctx_.new_flag();
    local_.emplace(rid, lr);
    // Publish the cached-buffer address so the home can fill it with
    // a direct bulk store.
    ctx_.publish(buf_key(rid), lr.buf);
    return lr.buf;
}

void*
Crl::data(RegionId rid)
{
    return local(rid).buf;
}

Crl::LocalRegion&
Crl::local(RegionId rid)
{
    auto it = local_.find(rid);
    MP_CHECK(it != local_.end(), "region " << rid << " not mapped");
    return it->second;
}

Crl::HomeRegion&
Crl::home(RegionId rid)
{
    auto it = home_.find(rid);
    MP_CHECK(it != home_.end(),
             "rank " << ctx_.rank() << " is not home of region " << rid);
    return it->second;
}

// ------------------------------------------------------------ access API

void
Crl::start_read(RegionId rid)
{
    LocalRegion& lr = local(rid);
    if (lr.state != State::kInvalid) {
        ++read_hits_;
        ++lr.read_depth;
        ctx_.compute(ctx_.design().insn(0.3)); // state check
        return;
    }
    ++read_misses_;
    ++lr.fills_expected;
    ReqMsg req{rid, ctx_.rank(), static_cast<uint8_t>(ReqKind::kRead)};
    auto msg = pack(req, nullptr, 0);
    ep_.request(home_of(rid), h_request_, msg.data(), msg.size());
    ep_.poll_until(*lr.fill_flag, lr.fills_expected);
    ++lr.read_depth;
}

void
Crl::end_read(RegionId rid)
{
    LocalRegion& lr = local(rid);
    MP_CHECK(lr.read_depth > 0, "end_read without start_read");
    --lr.read_depth;
    ctx_.compute(ctx_.design().insn(0.2));
    if (lr.read_depth == 0 && lr.inv_deferred) {
        lr.inv_deferred = false;
        lr.state = State::kInvalid;
        CtlMsg ack{rid, ctx_.rank(), 0};
        auto msg = pack(ack, nullptr, 0);
        ep_.request(home_of(rid), h_invack_, msg.data(), msg.size());
    }
}

void
Crl::start_write(RegionId rid)
{
    LocalRegion& lr = local(rid);
    MP_CHECK(lr.read_depth == 0,
             "read-to-write upgrade while holding a read is not allowed");
    MP_CHECK(!lr.write_open, "nested start_write");
    if (lr.state == State::kModified) {
        ++write_hits_;
        lr.write_open = true;
        ctx_.compute(ctx_.design().insn(0.3));
        return;
    }
    ++write_misses_;
    ++lr.fills_expected;
    ReqMsg req{rid, ctx_.rank(), static_cast<uint8_t>(ReqKind::kWrite)};
    auto msg = pack(req, nullptr, 0);
    ep_.request(home_of(rid), h_request_, msg.data(), msg.size());
    ep_.poll_until(*lr.fill_flag, lr.fills_expected);
    lr.write_open = true;
}

void
Crl::end_write(RegionId rid)
{
    LocalRegion& lr = local(rid);
    MP_CHECK(lr.write_open, "end_write without start_write");
    lr.write_open = false;
    ctx_.compute(ctx_.design().insn(0.2));
    if (lr.flush_deferred) {
        // A home-initiated flush arrived mid-write: write back now.
        lr.flush_deferred = false;
        send_writeback(rid, lr);
        lr.state = lr.deferred_downgrade == kDowngradeShared
                       ? State::kShared
                       : State::kInvalid;
    }
    if (lr.inv_deferred) {
        lr.inv_deferred = false;
        lr.state = State::kInvalid;
        CtlMsg ack{rid, ctx_.rank(), 0};
        auto msg = pack(ack, nullptr, 0);
        ep_.request(home_of(rid), h_invack_, msg.data(), msg.size());
    }
}

void
Crl::send_writeback(RegionId rid, LocalRegion& lr)
{
    // Bulk-store the region data straight into the home's master
    // copy; the writeback notification rides behind the data.
    auto* master = static_cast<uint8_t*>(
        ctx_.lookup(master_key(rid), home_of(rid)));
    ep_.store(home_of(rid), lr.buf, master, lr.bytes, h_writeback_,
              pack_arg(rid, static_cast<uint16_t>(ctx_.rank())));
}

void
Crl::flush(RegionId rid)
{
    LocalRegion& lr = local(rid);
    if (lr.state != State::kModified)
        return;
    MP_CHECK(!lr.write_open, "flush inside an open write");
    ++flushacks_expected_;
    ReqMsg req{rid, ctx_.rank(), static_cast<uint8_t>(ReqKind::kFlush)};
    auto msg = pack(req, lr.buf, lr.bytes);
    ep_.request(home_of(rid), h_request_, msg.data(), msg.size());
    lr.state = State::kShared;
    ep_.poll_until(*flushack_flag_, flushacks_expected_);
}

// --------------------------------------------------------- home protocol

void
Crl::enqueue_request(PendReq req, RegionId rid)
{
    HomeRegion& h = home(rid);
    h.queue.push_back(std::move(req));
    if (!h.busy)
        serve_next(rid);
}

void
Crl::serve_next(RegionId rid)
{
    HomeRegion& h = home(rid);
    if (h.busy || h.queue.empty())
        return;
    h.busy = true;
    h.cur = std::move(h.queue.front());
    h.queue.pop_front();
    ctx_.compute(ctx_.design().insn(0.5)); // directory lookup

    switch (h.cur.kind) {
      case ReqKind::kRead: {
        if (h.owner >= 0) {
            h.acks_left = 1;
            CtlMsg fl{rid, kDowngradeShared, 0};
            auto msg = pack(fl, nullptr, 0);
            ep_.request(h.owner, h_flush_, msg.data(), msg.size());
        } else {
            grant_current(rid);
        }
        break;
      }
      case ReqKind::kWrite: {
        int acks = 0;
        for (int s : h.sharers) {
            if (s == h.cur.requester)
                continue;
            CtlMsg inv{rid, 0, 0};
            auto msg = pack(inv, nullptr, 0);
            ep_.request(s, h_inv_, msg.data(), msg.size());
            ++acks;
        }
        if (h.owner >= 0 && h.owner != h.cur.requester) {
            CtlMsg fl{rid, kDowngradeInvalid, 0};
            auto msg = pack(fl, nullptr, 0);
            ep_.request(h.owner, h_flush_, msg.data(), msg.size());
            ++acks;
        }
        h.acks_left = acks;
        if (acks == 0)
            grant_current(rid);
        break;
      }
      case ReqKind::kFlush: {
        if (h.owner == h.cur.requester) {
            MP_CHECK(h.cur.flush_data.size() == h.bytes,
                     "voluntary flush size mismatch");
            std::memcpy(h.master, h.cur.flush_data.data(), h.bytes);
            h.owner = -1;
            h.sharers.insert(h.cur.requester);
        }
        CtlMsg ack{rid, 0, 0};
        auto msg = pack(ack, nullptr, 0);
        ep_.request(h.cur.requester, h_flushack_, msg.data(), msg.size());
        h.busy = false;
        serve_next(rid);
        break;
      }
    }
}

void
Crl::grant_current(RegionId rid)
{
    HomeRegion& h = home(rid);
    PendReq cur = h.cur;
    ctx_.compute(ctx_.design().insn(0.3));
    constexpr uint16_t kFillShared = 0;
    constexpr uint16_t kFillModified = 1;
    constexpr uint16_t kFillModifiedNoData = 2;
    if (cur.kind == ReqKind::kRead) {
        h.sharers.insert(cur.requester);
        auto* dst = static_cast<uint8_t*>(
            ctx_.lookup(buf_key(rid), cur.requester));
        ep_.store(cur.requester, h.master, dst, h.bytes, h_fill_,
                  pack_arg(rid, kFillShared));
    } else {
        bool upgrade = h.sharers.count(cur.requester) > 0;
        h.sharers.clear();
        h.owner = cur.requester;
        if (upgrade) {
            // The requester's Shared copy is current: grant only.
            CtlMsg fill{rid, kFillModifiedNoData, 0};
            auto msg = pack(fill, nullptr, 0);
            ep_.request(cur.requester, h_fill_, msg.data(), msg.size());
        } else {
            auto* dst = static_cast<uint8_t*>(
                ctx_.lookup(buf_key(rid), cur.requester));
            ep_.store(cur.requester, h.master, dst, h.bytes, h_fill_,
                      pack_arg(rid, kFillModified));
        }
    }
    h.busy = false;
    serve_next(rid);
}

// ---------------------------------------------------------------- handlers

void
Crl::on_request(const am::Msg& m)
{
    auto req = unpack<ReqMsg>(m);
    PendReq pr;
    pr.kind = static_cast<ReqKind>(req.kind);
    pr.requester = req.requester;
    if (pr.kind == ReqKind::kFlush) {
        pr.flush_data.assign(m.data + sizeof(ReqMsg), m.data + m.size);
    }
    enqueue_request(std::move(pr), req.rid);
}

void
Crl::on_flush(const am::Msg& m)
{
    auto fl = unpack<CtlMsg>(m);
    RegionId rid = fl.rid;
    LocalRegion& lr = local(rid);
    if (lr.write_open) {
        // Defer until end_write; remember the downgrade type.
        lr.flush_deferred = true;
        lr.deferred_downgrade = fl.arg;
        return;
    }
    // Write the current copy back (valid even if we already downgraded
    // voluntarily: the buffer is unchanged since the last write).
    send_writeback(rid, lr);
    lr.state = (fl.arg == kDowngradeShared) ? State::kShared
                                            : State::kInvalid;
}

void
Crl::on_writeback(const am::Msg& m)
{
    // The data already landed in the master copy (fused store); this
    // is the completion notification with (rid, old owner).
    uint64_t arg;
    MP_CHECK(m.size >= sizeof(arg), "runt writeback notification");
    std::memcpy(&arg, m.data, sizeof(arg));
    RegionId rid = arg_rid(arg);
    int old_owner = static_cast<int>(arg_code(arg));
    HomeRegion& h = home(rid);
    MP_CHECK(h.busy && h.acks_left > 0, "unexpected writeback");
    if (h.cur.kind == ReqKind::kRead) {
        h.sharers.insert(old_owner); // old owner keeps a Shared copy
    }
    h.owner = -1;
    if (--h.acks_left == 0)
        grant_current(rid);
}

void
Crl::on_inv(const am::Msg& m)
{
    auto inv = unpack<CtlMsg>(m);
    LocalRegion& lr = local(inv.rid);
    if (lr.read_depth > 0 || lr.write_open) {
        lr.inv_deferred = true;
        return;
    }
    lr.state = State::kInvalid;
    CtlMsg ack{inv.rid, ctx_.rank(), 0};
    auto msg = pack(ack, nullptr, 0);
    ep_.request(home_of(inv.rid), h_invack_, msg.data(), msg.size());
}

void
Crl::on_invack(const am::Msg& m)
{
    auto ack = unpack<CtlMsg>(m);
    HomeRegion& h = home(ack.rid);
    MP_CHECK(h.busy && h.acks_left > 0, "unexpected invack");
    if (--h.acks_left == 0)
        grant_current(ack.rid);
}

void
Crl::on_fill(const am::Msg& m)
{
    // Either an am_store notification (8-byte arg: data already in the
    // buffer) or a small grant-only control message (upgrade).
    RegionId rid;
    uint16_t code;
    if (m.size == sizeof(uint64_t)) {
        uint64_t arg;
        std::memcpy(&arg, m.data, sizeof(arg));
        rid = arg_rid(arg);
        code = arg_code(arg);
    } else {
        auto fill = unpack<CtlMsg>(m);
        rid = fill.rid;
        code = static_cast<uint16_t>(fill.arg);
    }
    LocalRegion& lr = local(rid);
    lr.state = (code == 0) ? State::kShared : State::kModified;
    lr.fill_flag->add(1);
}

void
Crl::on_flushack(const am::Msg& m)
{
    (void)unpack<CtlMsg>(m);
    flushack_flag_->add(1);
}

} // namespace crl
