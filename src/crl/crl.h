/// \file
/// CRL-style all-software distributed shared memory (Johnson,
/// Kaashoek & Wallach, SOSP'95), the programming system used by the
/// paper's LU, Barnes-Hut and Water applications.
///
/// Memory is organized into regions. Each region has a home rank that
/// holds the master copy and a directory (current exclusive owner or
/// sharer set). Ranks map regions into local cached buffers and
/// bracket accesses with start_read/end_read and
/// start_write/end_write; the library runs a home-serialized MSI
/// protocol over Active Messages to keep copies coherent:
///
///   read miss:  requester -> home RREQ; home flushes the exclusive
///               owner if any (owner downgrades to Shared and writes
///               back), then FILLs the requester with the data.
///   write miss: requester -> home WREQ; home invalidates all sharers
///               (INV/INVACK) and flushes the owner, then grants
///               exclusive ownership (data omitted when the requester
///               already held a valid Shared copy — an upgrade).
///   end_write:  lazy — the region stays Modified locally until some
///               other rank's request forces a flush (CRL semantics).
///
/// Control messages are Active Messages; region data moves with
/// bulk stores (PUTs) directly between the master copy and the cached
/// buffers, with the completion handler piggybacked on the transfer —
/// zero user-level copies, as in the original CRL. Every transition
/// costs real simulated traffic through the architecture under test.

#ifndef MSGPROXY_CRL_CRL_H
#define MSGPROXY_CRL_CRL_H

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "am/am.h"
#include "rma/system.h"

namespace crl {

/// Global region identifier: home rank in the high bits, per-home
/// creation index in the low bits.
using RegionId = uint32_t;

/// Per-rank CRL instance. Construct symmetrically on every rank
/// (after the shared am::Endpoint) before any region operation.
class Crl
{
  public:
    /// Attaches to `ep`; registers the protocol handlers.
    Crl(rma::Ctx& ctx, am::Endpoint& ep);

    Crl(const Crl&) = delete;
    Crl& operator=(const Crl&) = delete;

    /// Builds the region id for creation index `index` at `home`.
    static RegionId
    region_id(int home, uint32_t index)
    {
        return (static_cast<uint32_t>(home) << 20) | index;
    }

    /// Home rank of a region.
    static int home_of(RegionId rid) { return static_cast<int>(rid >> 20); }

    /// Creates a region of `bytes` homed at this rank; returns its id
    /// (deterministic: the i-th creation at home h is region_id(h, i)).
    RegionId create(size_t bytes);

    /// Maps a region into this rank's address space; returns the
    /// local cached buffer (stable for the lifetime of the mapping).
    /// `bytes` must equal the creation size.
    void* map(RegionId rid, size_t bytes);

    /// Local cached buffer of a mapped region.
    void* data(RegionId rid);

    /// Begins a read access; blocks (polling) until a valid copy is
    /// local.
    void start_read(RegionId rid);

    /// Ends a read access.
    void end_read(RegionId rid);

    /// Begins a write access; blocks until exclusive ownership.
    void start_write(RegionId rid);

    /// Ends a write access (lazy: no immediate writeback).
    void end_write(RegionId rid);

    /// Writes a Modified region back to its home and downgrades the
    /// local copy to Shared. Blocks until the home acknowledges.
    void flush(RegionId rid);

    /// Services pending protocol messages (also happens inside every
    /// blocking CRL call).
    void poll() { ep_.poll_all(); }

    // ----- statistics -----
    uint64_t read_hits() const { return read_hits_; }
    uint64_t read_misses() const { return read_misses_; }
    uint64_t write_hits() const { return write_hits_; }
    uint64_t write_misses() const { return write_misses_; }

  private:
    enum class State : uint8_t { kInvalid, kShared, kModified };

    enum class ReqKind : uint8_t { kRead, kWrite, kFlush };

    /// Locally mapped region.
    struct LocalRegion
    {
        uint8_t* buf = nullptr;
        size_t bytes = 0;
        State state = State::kInvalid;
        sim::Flag* fill_flag = nullptr;
        uint64_t fills_expected = 0;
        int read_depth = 0;
        bool write_open = false;
        /// Invalidation received while the region was held; acted on
        /// at the matching end_read/end_write.
        bool inv_deferred = false;
        /// Home-initiated flush received mid-write; performed at
        /// end_write with this downgrade target.
        bool flush_deferred = false;
        int32_t deferred_downgrade = 0;
    };

    /// A queued request at the home.
    struct PendReq
    {
        ReqKind kind;
        int requester;
        std::vector<uint8_t> flush_data; ///< voluntary-flush payload
    };

    /// Home-side directory entry.
    struct HomeRegion
    {
        uint8_t* master = nullptr; ///< registered master copy
        size_t bytes = 0;
        int owner = -1;
        std::set<int> sharers;
        std::deque<PendReq> queue;
        bool busy = false;
        int acks_left = 0;
        PendReq cur;
    };

    // Wire messages (trivially copyable).
    struct ReqMsg
    {
        RegionId rid;
        int32_t requester;
        uint8_t kind; // ReqKind
    };
    struct CtlMsg
    {
        RegionId rid;
        int32_t arg;
        uint8_t code; // per-handler meaning
    };

    LocalRegion& local(RegionId rid);
    HomeRegion& home(RegionId rid);

    // Home-side protocol steps.
    void enqueue_request(PendReq req, RegionId rid);
    void serve_next(RegionId rid);
    void grant_current(RegionId rid);

    /// Bulk-stores the local copy into the home's master and sends
    /// the writeback notification behind the data.
    void send_writeback(RegionId rid, LocalRegion& lr);

    // Handlers.
    void on_request(const am::Msg& m);   // RREQ/WREQ/voluntary flush
    void on_flush(const am::Msg& m);     // home -> owner: downgrade
    void on_writeback(const am::Msg& m); // owner -> home: data
    void on_inv(const am::Msg& m);       // home -> sharer
    void on_invack(const am::Msg& m);    // sharer -> home
    void on_fill(const am::Msg& m);      // home -> requester
    void on_flushack(const am::Msg& m);  // home -> flusher

    rma::Ctx& ctx_;
    am::Endpoint& ep_;

    int h_request_;
    int h_flush_;
    int h_writeback_;
    int h_inv_;
    int h_invack_;
    int h_fill_;
    int h_flushack_;

    uint32_t next_index_ = 0;
    std::map<RegionId, LocalRegion> local_;
    std::map<RegionId, HomeRegion> home_;
    sim::Flag* flushack_flag_;
    uint64_t flushacks_expected_ = 0;

    uint64_t read_hits_ = 0;
    uint64_t read_misses_ = 0;
    uint64_t write_hits_ = 0;
    uint64_t write_misses_ = 0;
};

} // namespace crl

#endif // MSGPROXY_CRL_CRL_H
