#include "sim/scheduler.h"

#include <cstdint>

#include "util/log.h"

namespace sim {

// ---------------------------------------------------------------- SimThread

SimThread::SimThread(Scheduler& sched, std::string name,
                     std::function<void(SimThread&)> body)
    : sched_(sched), name_(std::move(name)), body_(std::move(body)),
      stack_(new char[kStackBytes])
{
}

void
SimThread::trampoline(unsigned int hi, unsigned int lo)
{
    auto* self = reinterpret_cast<SimThread*>(
        (static_cast<uintptr_t>(hi) << 32) |
        static_cast<uintptr_t>(lo));
    self->body_(*self);
    self->state_ = State::kFinished;
    // uc_link returns control to the scheduler context.
}

void
SimThread::resume_from_scheduler()
{
    MP_CHECK(state_ == State::kCreated || state_ == State::kBlocked,
             "resume of thread '" << name_ << "' in wrong state");
    if (state_ == State::kCreated) {
        MP_CHECK(getcontext(&ctx_) == 0, "getcontext failed");
        ctx_.uc_stack.ss_sp = stack_.get();
        ctx_.uc_stack.ss_size = kStackBytes;
        ctx_.uc_link = &sched_ctx_;
        auto self = reinterpret_cast<uintptr_t>(this);
        makecontext(&ctx_, reinterpret_cast<void (*)()>(&trampoline), 2,
                    static_cast<unsigned int>(self >> 32),
                    static_cast<unsigned int>(self & 0xffffffffu));
    }
    state_ = State::kRunning;
    MP_CHECK(swapcontext(&sched_ctx_, &ctx_) == 0, "swapcontext failed");
    MP_CHECK(state_ == State::kBlocked || state_ == State::kFinished,
             "thread '" << name_ << "' returned in wrong state");
}

void
SimThread::yield_to_scheduler()
{
    state_ = State::kBlocked;
    MP_CHECK(swapcontext(&ctx_, &sched_ctx_) == 0, "swapcontext failed");
}

void
SimThread::advance(Time dt)
{
    MP_CHECK(dt >= 0.0, "advance by negative time " << dt);
    sched_.schedule_in(dt, [this] { resume_from_scheduler(); });
    yield_to_scheduler();
}

void
SimThread::block()
{
    if (wake_pending_) {
        // A wake raced ahead of the block; consume it and continue.
        wake_pending_ = false;
        return;
    }
    blocked_waiting_ = true;
    yield_to_scheduler();
    blocked_waiting_ = false;
}

void
SimThread::wake()
{
    if (!blocked_waiting_) {
        // Thread has not blocked yet (it is the running thread, or is
        // sleeping in advance()); latch the wake so a later block()
        // consumes it.
        wake_pending_ = true;
        return;
    }
    if (wake_pending_)
        return; // resume already scheduled
    wake_pending_ = true;
    sched_.schedule_in(0.0, [this] {
        if (!blocked_waiting_) {
            // The thread consumed the wake before this event ran.
            wake_pending_ = false;
            return;
        }
        wake_pending_ = false;
        resume_from_scheduler();
    });
}

// ---------------------------------------------------------------- Scheduler

Scheduler::Scheduler() = default;

Scheduler::~Scheduler() = default;

void
Scheduler::schedule_at(Time t, std::function<void()> fn)
{
    MP_CHECK(t >= now_ - 1e-9,
             "event scheduled in the past: " << t << " < " << now_);
    queue_.push(Event{t < now_ ? now_ : t, seq_++, std::move(fn)});
}

void
Scheduler::schedule_in(Time dt, std::function<void()> fn)
{
    schedule_at(now_ + dt, std::move(fn));
}

SimThread&
Scheduler::spawn(std::string name, std::function<void(SimThread&)> body)
{
    threads_.push_back(std::unique_ptr<SimThread>(
        new SimThread(*this, std::move(name), std::move(body))));
    SimThread* t = threads_.back().get();
    schedule_in(0.0, [t] { t->resume_from_scheduler(); });
    return *t;
}

void
Scheduler::run()
{
    MP_CHECK(!running_, "Scheduler::run is not reentrant");
    running_ = true;
    while (!queue_.empty()) {
        Event ev = std::move(const_cast<Event&>(queue_.top()));
        queue_.pop();
        now_ = ev.time;
        ++events_executed_;
        ev.fn();
    }
    running_ = false;

    std::string stuck;
    for (const auto& t : threads_) {
        if (t->state_ != SimThread::State::kFinished) {
            stuck += " '" + t->name_ + "'";
            if (t->blocked_waiting_)
                stuck += "(block)";
            else
                stuck += "(sleep)";
        }
    }
    if (!stuck.empty()) {
        MP_PANIC("simulation deadlock: threads still blocked with no "
                 "pending events:"
                 << stuck);
    }
}

} // namespace sim
