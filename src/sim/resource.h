/// \file
/// FIFO service facility with utilization accounting.
///
/// Models a serially reusable resource — a message proxy processor, a
/// network adapter's input/output logic, a DMA engine, a network link,
/// or the kernel lock of the system-call design point. Jobs are served
/// in submission order; each job occupies the server for its service
/// time. Accumulated busy time over elapsed simulated time yields the
/// utilization the paper reports in Table 6.

#ifndef MSGPROXY_SIM_RESOURCE_H
#define MSGPROXY_SIM_RESOURCE_H

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "sim/scheduler.h"
#include "util/stats.h"

namespace sim {

/// A non-preemptive FIFO server.
class Resource
{
  public:
    /// Creates a facility bound to `sched` with a diagnostic name.
    Resource(Scheduler& sched, std::string name)
        : sched_(sched), name_(std::move(name))
    {
    }

    Resource(const Resource&) = delete;
    Resource& operator=(const Resource&) = delete;

    /// Submits a job needing `service` microseconds of server time.
    /// Returns the absolute completion time. If `done` is non-null it
    /// runs at that time. Jobs queue FIFO behind earlier submissions.
    Time
    submit(Time service, std::function<void()> done = {})
    {
        Time start = std::max(sched_.now(), free_at_);
        wait_stats_.add(start - sched_.now());
        free_at_ = start + service;
        busy_us_ += service;
        ++jobs_;
        if (done) {
            sched_.schedule_at(free_at_, std::move(done));
        }
        return free_at_;
    }

    /// Like submit, but the job begins no earlier than `ready` (used
    /// when a job's input only becomes available at a known time, e.g.
    /// a packet that finishes arriving at `ready`).
    Time
    submit_after(Time ready, Time service, std::function<void()> done = {})
    {
        Time start = std::max({sched_.now(), free_at_, ready});
        wait_stats_.add(start - std::max(sched_.now(), ready));
        free_at_ = start + service;
        busy_us_ += service;
        ++jobs_;
        if (done) {
            sched_.schedule_at(free_at_, std::move(done));
        }
        return free_at_;
    }

    /// Time at which the server will next be idle.
    Time next_free() const { return std::max(sched_.now(), free_at_); }

    /// Total busy microseconds served so far.
    double busy_us() const { return busy_us_; }

    /// Jobs accepted so far.
    uint64_t jobs() const { return jobs_; }

    /// Busy time divided by elapsed simulated time.
    double
    utilization() const
    {
        return sched_.now() > 0.0 ? busy_us_ / sched_.now() : 0.0;
    }

    /// Queueing-delay statistics (microseconds a job waited before its
    /// service began).
    const mp::Summary& wait_stats() const { return wait_stats_; }

    /// Diagnostic name.
    const std::string& name() const { return name_; }

    /// Clears accumulated statistics (not the queue state).
    void
    reset_stats()
    {
        busy_us_ = 0.0;
        jobs_ = 0;
        wait_stats_.reset();
    }

  private:
    Scheduler& sched_;
    std::string name_;
    Time free_at_ = 0.0;
    double busy_us_ = 0.0;
    uint64_t jobs_ = 0;
    mp::Summary wait_stats_;
};

} // namespace sim

#endif // MSGPROXY_SIM_RESOURCE_H
