/// \file
/// Discrete-event simulation kernel.
///
/// This plays the role CSIM played in the paper's evaluation: it
/// provides simulated time, an event queue, cooperative processes
/// (SimThread), and FIFO service facilities (sim::Resource) with
/// utilization accounting. Simulated time is in microseconds, the
/// unit the paper's latency model is expressed in.
///
/// Determinism: events are ordered by (time, insertion sequence), and
/// at most one SimThread executes at any host instant — processes are
/// ucontext coroutines the scheduler switches into and out of — so a
/// run is a pure function of its inputs.

#ifndef MSGPROXY_SIM_SCHEDULER_H
#define MSGPROXY_SIM_SCHEDULER_H

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

namespace sim {

/// Simulated time in microseconds.
using Time = double;

class Scheduler;

/// A cooperative simulated process backed by a ucontext coroutine.
///
/// Application ranks run as SimThreads so that ordinary C++ code
/// (including deep call stacks and recursion) can block on simulated
/// events anywhere. Exactly one SimThread runs at a time; control
/// alternates between the scheduler and the running coroutine.
///
/// Tear-down note: if a Scheduler is destroyed while a SimThread is
/// still blocked (only possible after a panic or when run() was never
/// called), the coroutine's stack is freed without unwinding — local
/// destructors on that stack do not run.
class SimThread
{
  public:
    ~SimThread() = default;

    SimThread(const SimThread&) = delete;
    SimThread& operator=(const SimThread&) = delete;

    /// Advances simulated time by `dt` microseconds (models
    /// computation on the owning processor).
    void advance(Time dt);

    /// Blocks until another event calls wake() on this thread. May
    /// wake spuriously (a latched earlier wake); callers must re-check
    /// their condition in a loop.
    void block();

    /// Schedules this thread to resume at the current simulated time.
    /// Must be called from scheduler context (an event callback or
    /// another running SimThread).
    void wake();

    /// The scheduler this thread belongs to.
    Scheduler& scheduler() { return sched_; }

    /// Diagnostic name.
    const std::string& name() const { return name_; }

  private:
    friend class Scheduler;

    enum class State { kCreated, kRunning, kBlocked, kFinished };

    static constexpr size_t kStackBytes = 1024 * 1024;

    SimThread(Scheduler& sched, std::string name,
              std::function<void(SimThread&)> body);

    /// Coroutine entry point (pointer split across two ints for
    /// makecontext).
    static void trampoline(unsigned int hi, unsigned int lo);

    /// Switches into this coroutine until it blocks or finishes.
    /// Called only from scheduler context.
    void resume_from_scheduler();

    /// Switches back to the scheduler. Called on the coroutine.
    void yield_to_scheduler();

    Scheduler& sched_;
    std::string name_;
    std::function<void(SimThread&)> body_;

    State state_ = State::kCreated;
    /// True while suspended inside block() (vs sleeping in advance()).
    bool blocked_waiting_ = false;
    /// Latched wake that arrived before/outside block().
    bool wake_pending_ = false;

    ucontext_t ctx_{};
    ucontext_t sched_ctx_{};
    std::unique_ptr<char[]> stack_;
};

/// The event queue and simulation clock.
class Scheduler
{
  public:
    Scheduler();
    ~Scheduler();

    Scheduler(const Scheduler&) = delete;
    Scheduler& operator=(const Scheduler&) = delete;

    /// Current simulated time in microseconds.
    Time now() const { return now_; }

    /// Schedules `fn` to run at absolute time `t` (must be >= now).
    void schedule_at(Time t, std::function<void()> fn);

    /// Schedules `fn` to run `dt` microseconds from now.
    void schedule_in(Time dt, std::function<void()> fn);

    /// Creates a simulated process. The body starts executing at the
    /// current simulated time once run() proceeds.
    SimThread& spawn(std::string name, std::function<void(SimThread&)> body);

    /// Runs the simulation until the event queue is empty and all
    /// spawned threads have finished. Panics if threads remain blocked
    /// with no pending events (deadlock).
    void run();

    /// Number of events executed so far (for tests and debugging).
    uint64_t events_executed() const { return events_executed_; }

  private:
    friend class SimThread;

    struct Event
    {
        Time time;
        uint64_t seq;
        std::function<void()> fn;
    };

    struct EventOrder
    {
        bool
        operator()(const Event& a, const Event& b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
    std::vector<std::unique_ptr<SimThread>> threads_;
    Time now_ = 0.0;
    uint64_t seq_ = 0;
    uint64_t events_executed_ = 0;
    bool running_ = false;
};

} // namespace sim

#endif // MSGPROXY_SIM_SCHEDULER_H
