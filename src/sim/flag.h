/// \file
/// Pollable synchronization flags.
///
/// The paper's RMA/RQ primitives signal completion through local and
/// remote synchronization flags (lsync / rsync). sim::Flag is the
/// simulated counterpart: a monotonically observable 64-bit value that
/// SimThreads can block on until it reaches a threshold.

#ifndef MSGPROXY_SIM_FLAG_H
#define MSGPROXY_SIM_FLAG_H

#include <cstdint>
#include <vector>

#include "sim/scheduler.h"

namespace sim {

/// A 64-bit completion flag with blocking waiters.
///
/// All methods must be called from simulation context (an event
/// callback or a running SimThread).
class Flag
{
  public:
    Flag() = default;

    Flag(const Flag&) = delete;
    Flag& operator=(const Flag&) = delete;

    /// Current value.
    uint64_t value() const { return value_; }

    /// Sets the value and wakes waiters whose threshold is reached.
    void
    set(uint64_t v)
    {
        value_ = v;
        wake_satisfied();
    }

    /// Adds `d` to the value and wakes satisfied waiters.
    void
    add(uint64_t d)
    {
        value_ += d;
        wake_satisfied();
    }

    /// Blocks `t` until value() >= v.
    void
    wait_ge(SimThread& t, uint64_t v)
    {
        while (value_ < v) {
            waiters_.push_back(Waiter{&t, v});
            t.block();
        }
    }

    /// Registers `t` to be woken once when value() >= v, without
    /// blocking. Used to wait on several flags at once: register on
    /// each, block once, re-check, repeat. Wakes may be spurious
    /// (entries left from earlier registrations), so callers must
    /// always re-check their condition after t.block() returns.
    void
    add_waiter(SimThread& t, uint64_t v)
    {
        waiters_.push_back(Waiter{&t, v});
    }

    /// Resets the value to zero without waking anyone. Only valid when
    /// there are no waiters (checked).
    void
    reset()
    {
        if (!waiters_.empty())
            waiters_.clear();
        value_ = 0;
    }

  private:
    struct Waiter
    {
        SimThread* thread;
        uint64_t threshold;
    };

    void
    wake_satisfied()
    {
        // Waiters re-check the condition in wait_ge's loop, so waking
        // is allowed to be conservative; we remove only satisfied ones.
        size_t kept = 0;
        for (size_t i = 0; i < waiters_.size(); ++i) {
            if (value_ >= waiters_[i].threshold) {
                waiters_[i].thread->wake();
            } else {
                waiters_[kept++] = waiters_[i];
            }
        }
        waiters_.resize(kept);
    }

    uint64_t value_ = 0;
    std::vector<Waiter> waiters_;
};

} // namespace sim

#endif // MSGPROXY_SIM_FLAG_H
