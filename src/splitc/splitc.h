/// \file
/// Split-C-style programming layer (Culler et al., Supercomputing'93)
/// on top of the RMA primitives: global pointers, spread (block-
/// distributed) arrays, split-phase gets/puts with sync(), one-way
/// stores with all_store_sync(), and blocking sugar.
///
/// The paper's MM, FFT, Sample, Sampleb, P-Ray and Wator applications
/// are written against this layer.

#ifndef MSGPROXY_SPLITC_SPLITC_H
#define MSGPROXY_SPLITC_SPLITC_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "coll/coll.h"
#include "rma/system.h"
#include "util/log.h"

namespace splitc {

/// A global pointer: (rank, local address in that rank's space).
template <typename T>
struct GlobalPtr
{
    int rank = -1;
    T* addr = nullptr;

    /// Pointer arithmetic within the same rank.
    GlobalPtr<T>
    operator+(ptrdiff_t d) const
    {
        return GlobalPtr<T>{rank, addr + d};
    }

    /// True when the pointee lives on the calling rank.
    bool local_to(int my_rank) const { return rank == my_rank; }
};

/// Per-rank Split-C context.
class SplitC
{
  public:
    /// Creates the layer. Construct symmetrically on every rank.
    explicit SplitC(rma::Ctx& ctx)
        : ctx_(ctx), sp_flag_(ctx.new_flag()), store_flag_(ctx.new_flag()),
          issued_to_(static_cast<size_t>(ctx.nranks()), 0)
    {
        ctx_.publish("splitc.storeflag", store_flag_);
    }

    SplitC(const SplitC&) = delete;
    SplitC& operator=(const SplitC&) = delete;

    /// The underlying rank context.
    rma::Ctx& ctx() { return ctx_; }

    // ----- spread arrays -----

    /// Collectively allocates a spread array: every rank contributes
    /// `elems_per_rank` elements under the same `name`. Returns the
    /// local base. Use global() to address other ranks' slices.
    template <typename T>
    T*
    all_spread_alloc(const std::string& name, size_t elems_per_rank)
    {
        T* base = ctx_.alloc_n<T>(elems_per_rank);
        ctx_.publish("splitc." + name, base);
        return base;
    }

    /// Global pointer to the start of `rank`'s slice of `name`.
    template <typename T>
    GlobalPtr<T>
    global(const std::string& name, int rank)
    {
        void* p = ctx_.lookup("splitc." + name, rank);
        return GlobalPtr<T>{rank, static_cast<T*>(p)};
    }

    // ----- split-phase operations (Split-C's ":=") -----

    /// Split-phase get of `elems` elements; completes at sync().
    template <typename T>
    void
    get_sp(T* dst, GlobalPtr<T> src, size_t elems = 1)
    {
        ++sp_issued_;
        ctx_.get(dst, src.rank, src.addr, elems * sizeof(T), sp_flag_);
    }

    /// Split-phase put of `elems` elements; completes at sync().
    template <typename T>
    void
    put_sp(GlobalPtr<T> dst, const T* src, size_t elems = 1)
    {
        ++sp_issued_;
        ctx_.put(src, dst.rank, dst.addr, elems * sizeof(T), sp_flag_);
    }

    /// Waits for every outstanding split-phase operation.
    void
    sync()
    {
        ctx_.wait_ge(*sp_flag_, sp_issued_);
    }

    /// Outstanding split-phase operations.
    uint64_t
    pending() const
    {
        return sp_issued_ - sp_flag_->value();
    }

    // ----- one-way stores (Split-C's ":-") -----

    /// One-way store: no local completion tracking; globally fenced
    /// by all_store_sync().
    template <typename T>
    void
    store(GlobalPtr<T> dst, const T* src, size_t elems = 1)
    {
        ++issued_to_[static_cast<size_t>(dst.rank)];
        sim::Flag* remote_flag = remote_store_flag(dst.rank);
        ctx_.put(src, dst.rank, dst.addr, elems * sizeof(T), nullptr,
                 remote_flag);
    }

    /// Global fence: returns once every store issued by every rank
    /// has been delivered. Collective.
    void
    all_store_sync(coll::Collective& coll)
    {
        // Everyone learns how many stores target it (one vector
        // reduction), then waits for that many arrivals.
        std::vector<int64_t> totals(issued_to_.begin(), issued_to_.end());
        coll.allreduce_sum_i64_vec(totals.data(), ctx_.nranks());
        uint64_t expect_me = static_cast<uint64_t>(
            totals[static_cast<size_t>(ctx_.rank())]);
        std::fill(issued_to_.begin(), issued_to_.end(), 0);
        store_fence_base_ += expect_me;
        ctx_.wait_ge(*store_flag_, store_fence_base_);
        coll.barrier();
    }

    // ----- blocking sugar -----

    /// Blocking single-element read.
    template <typename T>
    T
    read(GlobalPtr<T> p)
    {
        T v;
        ctx_.get_blocking(&v, p.rank, p.addr, sizeof(T));
        return v;
    }

    /// Blocking single-element write (waits for the remote ack).
    template <typename T>
    void
    write(GlobalPtr<T> p, const T& v)
    {
        ctx_.put_blocking(&v, p.rank, p.addr, sizeof(T));
    }

    /// Blocking bulk get.
    template <typename T>
    void
    bulk_get(T* dst, GlobalPtr<T> src, size_t elems)
    {
        ctx_.get_blocking(dst, src.rank, src.addr, elems * sizeof(T));
    }

    /// Blocking bulk put.
    template <typename T>
    void
    bulk_put(GlobalPtr<T> dst, const T* src, size_t elems)
    {
        ctx_.put_blocking(src, dst.rank, dst.addr, elems * sizeof(T));
    }

  private:
    sim::Flag*
    remote_store_flag(int rank)
    {
        if (store_flags_.empty())
            store_flags_.assign(static_cast<size_t>(ctx_.nranks()),
                                nullptr);
        auto& f = store_flags_[static_cast<size_t>(rank)];
        if (f == nullptr) {
            f = static_cast<sim::Flag*>(
                ctx_.lookup("splitc.storeflag", rank));
        }
        return f;
    }

    rma::Ctx& ctx_;
    sim::Flag* sp_flag_;
    uint64_t sp_issued_ = 0;
    sim::Flag* store_flag_;
    uint64_t store_fence_base_ = 0;
    std::vector<uint64_t> issued_to_;
    std::vector<sim::Flag*> store_flags_;
};

} // namespace splitc

#endif // MSGPROXY_SPLITC_SPLITC_H
