/// \file
/// Abstract interface that the three protected-communication
/// architectures implement (Section 2): custom hardware, message
/// proxies, and system-call based communication.

#ifndef MSGPROXY_RMA_BACKEND_H
#define MSGPROXY_RMA_BACKEND_H

#include <string>
#include <vector>

#include "rma/op.h"

namespace sim {
class SimThread;
} // namespace sim

namespace rma {

/// One row of the Table 2 critical-path trace: a primitive operation
/// executed by some agent, its symbolic cost term, and its value.
struct TraceEntry
{
    std::string agent;     ///< "User", "Message Proxy (local)", ...
    std::string operation; ///< e.g. "dequeue entry, (read miss)"
    std::string term;      ///< e.g. "C", "U + 0.6/S"
    double us;             ///< evaluated cost in microseconds
};

/// Receives critical-path trace entries when tracing is enabled.
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /// Records one trace row.
    virtual void add(TraceEntry entry) = 0;
};

/// A protected-communication architecture.
///
/// A backend owns the communication agents of every node (proxies,
/// adapters, DMA engines, network links) as simulation resources. The
/// System calls submit() from the issuing rank's SimThread; the
/// backend charges the compute-processor overhead synchronously (by
/// advancing the thread) and schedules the asynchronous remainder:
/// data movement at the correct simulated instants and lsync/rsync
/// flag updates on completion.
class Backend
{
  public:
    virtual ~Backend() = default;

    /// Transports one operation. Called on the submitting thread.
    virtual void submit(sim::SimThread& t, const Op& op) = 0;

    /// Microseconds a compute processor spends detecting a sync-flag
    /// update (the "read local sync register (read miss)" term).
    virtual double flag_poll_cost() const = 0;

    /// Utilization of node `n`'s communication agent (message proxy
    /// service loop, or adapter input+output logic) — Table 6.
    virtual double agent_utilization(int node) const = 0;

    /// Busy microseconds of node `n`'s communication agent.
    virtual double agent_busy_us(int node) const = 0;

    /// Name of the communication agent for reporting.
    virtual const char* agent_name() const = 0;

    /// Enables critical-path tracing (Table 2); entries for
    /// subsequently submitted operations go to `sink`. Pass nullptr to
    /// disable. Default: tracing unsupported, silently ignored.
    virtual void set_trace(TraceSink* sink) { (void)sink; }
};

} // namespace rma

#endif // MSGPROXY_RMA_BACKEND_H
