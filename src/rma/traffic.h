/// \file
/// Message-traffic accounting (Table 6 of the paper).
///
/// Backends report every RMA/RQ operation they transport; the harness
/// derives average message size, per-processor message rate, and —
/// together with the communication agents' busy time — interface
/// utilization.

#ifndef MSGPROXY_RMA_TRAFFIC_H
#define MSGPROXY_RMA_TRAFFIC_H

#include <cstdint>
#include <vector>

#include "rma/op.h"
#include "util/annotations.h"
#include "util/stats.h"

namespace rma {

/// Per-run traffic statistics.
class Traffic
{
  public:
    /// Creates accounting for `nranks` ranks.
    explicit Traffic(int nranks)
        : per_rank_ops_(static_cast<size_t>(nranks), 0)
    {
    }

    /// Records one transported operation originated by `src_rank`.
    MSGPROXY_HOT_PATH void
    note_op(OpKind kind, int src_rank, size_t nbytes)
    {
        ++ops_;
        ++per_rank_ops_[static_cast<size_t>(src_rank)];
        ++by_kind_[static_cast<size_t>(kind)];
        bytes_ += nbytes;
        msg_size_.add(static_cast<double>(nbytes));
    }

    /// Total transported operations.
    uint64_t ops() const { return ops_; }
    /// Transported operations of one kind.
    uint64_t ops_of(OpKind k) const
    {
        return by_kind_[static_cast<size_t>(k)];
    }
    /// Total payload bytes.
    uint64_t bytes() const { return bytes_; }

    /// Average message size in bytes (Table 6 column 1).
    double
    avg_msg_bytes() const
    {
        return msg_size_.count() ? msg_size_.mean() : 0.0;
    }

    /// Per-processor message rate in ops per millisecond over a run of
    /// `elapsed_us` (Table 6 column 2).
    double
    rate_per_proc_ms(double elapsed_us) const
    {
        if (elapsed_us <= 0.0 || per_rank_ops_.empty())
            return 0.0;
        double per_proc = static_cast<double>(ops_) /
                          static_cast<double>(per_rank_ops_.size());
        return per_proc / (elapsed_us / 1000.0);
    }

    /// Message-size distribution.
    const mp::Summary& msg_size() const { return msg_size_; }

    /// Operations originated by one rank.
    uint64_t rank_ops(int r) const
    {
        return per_rank_ops_[static_cast<size_t>(r)];
    }

  private:
    uint64_t ops_ = 0;
    uint64_t bytes_ = 0;
    uint64_t by_kind_[4] = {0, 0, 0, 0};
    std::vector<uint64_t> per_rank_ops_;
    mp::Summary msg_size_;
};

} // namespace rma

#endif // MSGPROXY_RMA_TRAFFIC_H
