#include "rma/address_space.h"

#include <cstdint>

#include "util/log.h"

namespace rma {

void*
AddressSpace::alloc(size_t n, bool shared)
{
    MP_CHECK(n > 0, "zero-byte allocation in rank " << owner_);
    // Over-allocate to carve out a 64-byte aligned base.
    size_t padded = n + 64;
    auto storage = std::make_unique<char[]>(padded);
    auto raw = reinterpret_cast<uintptr_t>(storage.get());
    uintptr_t aligned = (raw + 63) & ~static_cast<uintptr_t>(63);
    char* base = reinterpret_cast<char*>(aligned);

    Segment seg;
    seg.base = base;
    seg.len = n;
    seg.shared = shared;
    seg.storage = std::move(storage);
    segments_.push_back(std::move(seg));
    registered_bytes_ += n;
    return base;
}

void
AddressSpace::register_segment(void* p, size_t n, bool shared)
{
    MP_CHECK(p != nullptr && n > 0, "bad segment registration");
    Segment seg;
    seg.base = static_cast<char*>(p);
    seg.len = n;
    seg.shared = shared;
    segments_.push_back(std::move(seg));
    registered_bytes_ += n;
}

bool
AddressSpace::grant(const void* addr, int rank)
{
    Segment* seg = find_mutable(const_cast<void*>(addr));
    if (seg == nullptr)
        return false;
    seg->grants.insert(rank);
    return true;
}

bool
AddressSpace::check(int accessor, const void* addr, size_t n) const
{
    if (accessor == owner_)
        return find(addr, n) != nullptr;
    const Segment* seg = find(addr, n);
    if (seg == nullptr)
        return false;
    return seg->shared || seg->grants.count(accessor) > 0;
}

const AddressSpace::Segment*
AddressSpace::find(const void* addr, size_t n) const
{
    const char* p = static_cast<const char*>(addr);
    for (const auto& seg : segments_) {
        if (p >= seg.base && p + n <= seg.base + seg.len)
            return &seg;
    }
    return nullptr;
}

AddressSpace::Segment*
AddressSpace::find_mutable(const void* addr)
{
    const char* p = static_cast<const char*>(addr);
    for (auto& seg : segments_) {
        if (p >= seg.base && p < seg.base + seg.len)
            return &seg;
    }
    return nullptr;
}

} // namespace rma
