/// \file
/// The simulated SMP cluster: ranks, address spaces, remote queues,
/// and the per-rank Ctx API that applications program against.
///
/// A System owns one simulation run: a discrete-event scheduler, one
/// SimThread per rank (compute processor), per-rank address spaces and
/// remote queues, a Backend implementing one of the three protected-
/// communication architectures, and traffic accounting. Ranks map to
/// SMP nodes round-robin-contiguously: node(r) = r / procs_per_node.

#ifndef MSGPROXY_RMA_SYSTEM_H
#define MSGPROXY_RMA_SYSTEM_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "machine/design_point.h"
#include "rma/address_space.h"
#include "rma/backend.h"
#include "rma/op.h"
#include "rma/remote_queue.h"
#include "rma/traffic.h"
#include "sim/flag.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace rma {

class System;

/// Cluster-run configuration.
struct SystemConfig
{
    machine::DesignPoint design; ///< machine parameters (Table 3)
    int nodes = 2;               ///< SMP nodes in the cluster
    int procs_per_node = 1;      ///< compute processors per node
    /// Message proxies per node (proxy architecture only). The paper
    /// notes "multiple message proxies may help" when one proxy is
    /// over-utilized (Section 5.4); ranks are statically partitioned
    /// across proxies.
    int proxies_per_node = 1;
    uint64_t seed = 1;           ///< base seed for per-rank RNGs
};

/// Creates the Backend for a System; provided by the backend library
/// (backend::factory()) so that rma stays independent of the concrete
/// architecture implementations.
using BackendFactory = std::function<std::unique_ptr<Backend>(System&)>;

/// Result of one simulated application run.
struct RunResult
{
    double elapsed_us = 0.0;       ///< simulated wall time of the run
    uint64_t ops = 0;              ///< transported RMA/RQ operations
    double avg_msg_bytes = 0.0;    ///< Table 6: average message size
    double rate_per_proc_ms = 0.0; ///< Table 6: per-processor op rate
    std::vector<double> agent_utilization; ///< per node, Table 6
    uint64_t faults = 0;           ///< protection violations recorded
};

/// Per-rank application-facing handle. One Ctx exists per rank; the
/// application body receives it and must only use it from its own
/// simulated thread.
class Ctx
{
  public:
    /// Rank of this process (also its asid).
    int rank() const { return rank_; }
    /// Total ranks in the run.
    int nranks() const;
    /// SMP node this rank lives on.
    int node() const;
    /// The owning system.
    System& system() { return sys_; }
    /// Machine parameters of this run.
    const machine::DesignPoint& design() const;
    /// Current simulated time (microseconds).
    double now() const;
    /// Deterministic per-rank random stream.
    mp::Rng& rng() { return rng_; }

    // ----- memory -----

    /// Allocates `n` bytes in this rank's address space. shared=true
    /// registers the segment as accessible by every rank; otherwise
    /// access requires an explicit grant().
    void* alloc(size_t n, bool shared = true);

    /// Typed allocation of `count` elements.
    template <typename T>
    T*
    alloc_n(size_t count, bool shared = true)
    {
        return static_cast<T*>(alloc(count * sizeof(T), shared));
    }

    /// Grants `rank` access to the private segment containing addr.
    bool grant(const void* addr, int rank);

    /// Allocates a completion flag (owned by the system).
    sim::Flag* new_flag();

    // ----- remote queues -----

    /// Creates a remote queue owned by this rank; returns its qid.
    /// capacity_bytes == 0 means unbounded.
    int make_queue(size_t capacity_bytes = 0);

    /// Polls a local queue (cheap when empty). On success moves the
    /// head message into `out` and charges the receive cost.
    bool try_deq_local(int qid, std::vector<uint8_t>& out);

    /// Number of messages currently in a local queue (free to read:
    /// models the cached head/tail compare of the polling loop).
    size_t queue_depth(int qid) const;

    // ----- asynchronous primitives (Section 3) -----

    /// PUT: copy n bytes from laddr to (asid, raddr). lsync increments
    /// when delivery is acknowledged; rsync increments at the target
    /// when the data is stored.
    void put(const void* laddr, int asid, void* raddr, size_t n,
             sim::Flag* lsync = nullptr, sim::Flag* rsync = nullptr);

    /// PUT with a piggybacked notification: after the data is stored
    /// at the target, `notify` (notify_n bytes) is enqueued on the
    /// target's queue `notify_qid`. Equivalent to PUT-then-ENQ with
    /// guaranteed ordering (the Active Message bulk-store pattern).
    void put_notify(const void* laddr, int asid, void* raddr, size_t n,
                    int notify_qid, const void* notify, size_t notify_n,
                    sim::Flag* lsync = nullptr,
                    sim::Flag* rsync = nullptr);

    /// GET: copy n bytes from (asid, raddr) to laddr. lsync increments
    /// when the data has been stored locally; rsync increments at the
    /// target when the data has been read.
    void get(void* laddr, int asid, const void* raddr, size_t n,
             sim::Flag* lsync = nullptr, sim::Flag* rsync = nullptr);

    /// ENQ: atomically append an n-byte message to (asid, qid). lsync
    /// increments when the enqueue is acknowledged; rsync (optional)
    /// increments at the target on enqueue.
    void enq(const void* laddr, int asid, int qid, size_t n,
             sim::Flag* lsync = nullptr, sim::Flag* rsync = nullptr);

    /// DEQ: dequeue the head message of (asid, qid) into laddr (up to
    /// n bytes). lsync increments by 1 + bytes received when the data
    /// arrives, or by exactly 1 if the remote queue was empty.
    void deq(void* laddr, int asid, int qid, size_t n,
             sim::Flag* lsync = nullptr);

    // ----- blocking convenience wrappers -----

    /// PUT and wait for the delivery acknowledgment.
    void put_blocking(const void* laddr, int asid, void* raddr, size_t n);

    /// GET and wait for local arrival.
    void get_blocking(void* laddr, int asid, const void* raddr, size_t n);

    /// ENQ and wait for the acknowledgment.
    void enq_blocking(const void* laddr, int asid, int qid, size_t n);

    // ----- time -----

    /// Advances simulated time by `us` of local computation (plus any
    /// interrupt time stolen by the SW architecture's handlers).
    void compute(double us);

    /// Blocks until flag >= v, then charges the flag-read cost.
    void wait_ge(sim::Flag& f, uint64_t v);

    /// Blocks until a >= va OR b >= vb, then charges one flag read.
    /// Used by layered libraries to wait for a completion flag while
    /// staying responsive to incoming messages.
    void wait_either(sim::Flag& a, uint64_t va, sim::Flag& b, uint64_t vb);

    /// Flag bumped whenever a message lands in any of this rank's
    /// remote queues (arrival notification for polling loops).
    sim::Flag& arrival_flag();

    /// Yields without advancing time (lets pending events at the
    /// current instant run; used by polling loops in tests).
    void yield();

    // ----- setup-time address exchange -----

    /// Publishes a pointer under (name, this rank) on the system-wide
    /// bulletin board. Models the address exchange parallel runtimes
    /// perform at program initialization; costs no simulated time.
    void publish(const std::string& name, void* ptr);

    /// Blocks (in small compute steps) until `rank` has published
    /// `name`, then returns the pointer.
    void* lookup(const std::string& name, int rank);

    /// Typed lookup.
    template <typename T>
    T*
    lookup_as(const std::string& name, int rank)
    {
        return static_cast<T*>(lookup(name, rank));
    }

  private:
    friend class System;

    Ctx(System& sys, int rank, uint64_t seed);

    /// Binds the rank's simulated thread (set by System::run).
    void bind(sim::SimThread& t) { thread_ = &t; }

    void submit(const Op& op);
    sim::Flag* scratch_flag();
    void release_scratch(sim::Flag* f);

    System& sys_;
    int rank_;
    mp::Rng rng_;
    sim::SimThread* thread_ = nullptr;
    std::vector<sim::Flag*> scratch_free_;
};

/// One simulated cluster run.
class System
{
  public:
    /// Builds the cluster; `factory` creates the architecture backend
    /// (use backend::factory()).
    System(SystemConfig cfg, const BackendFactory& factory);
    ~System();

    System(const System&) = delete;
    System& operator=(const System&) = delete;

    /// Configuration.
    const SystemConfig& config() const { return cfg_; }
    /// Machine parameters.
    const machine::DesignPoint& design() const { return cfg_.design; }
    /// Total ranks (nodes * procs_per_node).
    int nranks() const { return cfg_.nodes * cfg_.procs_per_node; }
    /// Node housing `rank`.
    int node_of(int rank) const { return rank / cfg_.procs_per_node; }

    /// The event scheduler.
    sim::Scheduler& scheduler() { return sched_; }
    /// The architecture backend.
    Backend& backend() { return *backend_; }
    /// Traffic accounting.
    Traffic& traffic() { return traffic_; }

    /// Address space of `rank`.
    AddressSpace& space(int rank)
    {
        return *spaces_[static_cast<size_t>(rank)];
    }

    /// Remote queue `qid` of `rank` (must exist).
    RemoteQueue& queue(int rank, int qid);

    /// Creates a queue owned by `rank`; returns its qid.
    int make_queue(int rank, size_t capacity_bytes);

    /// Delivers a message into (rank, qid) and bumps the rank's
    /// arrival flag. All backend queue deliveries go through here.
    /// Returns false when the (bounded) queue was full.
    bool deliver(int rank, int qid, std::vector<uint8_t> msg);

    /// Arrival-notification flag of `rank`.
    sim::Flag& arrival_flag(int rank)
    {
        return *arrival_[static_cast<size_t>(rank)];
    }

    /// Validates a remote memory access at handling time; records a
    /// fault and returns false on a protection violation.
    bool validate_remote(int accessor, int owner, const void* addr,
                         size_t n);

    /// Validates a remote queue access at handling time.
    bool validate_queue(int accessor, int owner, int qid);

    /// Recorded protection violations.
    const std::vector<Fault>& faults() const { return faults_; }

    /// Allocates a completion flag owned by the system.
    sim::Flag* new_flag();

    /// SW architecture: adds interrupt-handler time stolen from
    /// `rank`'s processor; drained by the rank's next compute().
    void add_stolen(int rank, double us);

    /// Drains and returns the accumulated stolen time of `rank`.
    double take_stolen(int rank);

    /// Runs `app` on every rank to completion; returns run statistics.
    /// May be called once per System.
    RunResult run(const std::function<void(Ctx&)>& app);

    /// Simulated time at the end of run().
    double elapsed_us() const { return elapsed_us_; }

    /// Ctx of `rank` (valid during and after run()).
    Ctx& ctx(int rank) { return *ctxs_[static_cast<size_t>(rank)]; }

    /// Bulletin-board slot for (name, rank); nullptr if unpublished.
    void* board_get(const std::string& name, int rank) const;

    /// Publishes (name, rank) -> ptr on the bulletin board.
    void board_put(const std::string& name, int rank, void* ptr);

  private:
    SystemConfig cfg_;
    sim::Scheduler sched_;
    Traffic traffic_;
    std::vector<std::unique_ptr<AddressSpace>> spaces_;
    std::vector<std::vector<std::unique_ptr<RemoteQueue>>> queues_;
    std::vector<std::unique_ptr<Ctx>> ctxs_;
    std::vector<std::unique_ptr<sim::Flag>> arrival_;
    std::vector<std::unique_ptr<sim::Flag>> flags_;
    std::vector<double> stolen_;
    std::vector<Fault> faults_;
    std::unique_ptr<Backend> backend_;
    std::map<std::string, std::vector<void*>> board_;
    double elapsed_us_ = 0.0;
    bool ran_ = false;
};

} // namespace rma

#endif // MSGPROXY_RMA_SYSTEM_H
