#include "rma/system.h"

#include <cstring>

#include "util/log.h"

namespace rma {

const char*
op_kind_name(OpKind k)
{
    switch (k) {
      case OpKind::kPut:
        return "PUT";
      case OpKind::kGet:
        return "GET";
      case OpKind::kEnq:
        return "ENQ";
      case OpKind::kDeq:
        return "DEQ";
    }
    return "?";
}

// ---------------------------------------------------------------------- Ctx

Ctx::Ctx(System& sys, int rank, uint64_t seed)
    : sys_(sys), rank_(rank), rng_(seed)
{
}

int
Ctx::nranks() const
{
    return sys_.nranks();
}

int
Ctx::node() const
{
    return sys_.node_of(rank_);
}

const machine::DesignPoint&
Ctx::design() const
{
    return sys_.design();
}

double
Ctx::now() const
{
    return sys_.scheduler().now();
}

void*
Ctx::alloc(size_t n, bool shared)
{
    return sys_.space(rank_).alloc(n, shared);
}

bool
Ctx::grant(const void* addr, int rank)
{
    return sys_.space(rank_).grant(addr, rank);
}

sim::Flag*
Ctx::new_flag()
{
    return sys_.new_flag();
}

int
Ctx::make_queue(size_t capacity_bytes)
{
    return sys_.make_queue(rank_, capacity_bytes);
}

bool
Ctx::try_deq_local(int qid, std::vector<uint8_t>& out)
{
    const auto& d = design();
    RemoteQueue& q = sys_.queue(rank_, qid);
    if (q.empty()) {
        // Polling an unchanged queue head hits in the cache.
        thread_->advance(d.insn(0.1));
        return false;
    }
    bool ok = q.pop(out);
    MP_CHECK(ok, "non-empty queue failed to pop");
    // The entry was written by the communication agent: the head line
    // (and each payload line) misses unless the agent updated our
    // cache directly (the MP2 primitive).
    double per_line = d.proxy_miss();
    double cost = d.insn(0.3) +
                  per_line * static_cast<double>(d.lines(out.size()) + 1);
    // In the system-call architecture the queue lives in kernel
    // buffers: retrieving a message costs a trap.
    if (d.arch == machine::Arch::kSyscall)
        cost += d.syscall_us;
    thread_->advance(cost);
    return true;
}

size_t
Ctx::queue_depth(int qid) const
{
    return sys_.queue(rank_, qid).size();
}

void
Ctx::submit(const Op& op)
{
    MP_CHECK(thread_ != nullptr, "Ctx used before run()");
    MP_CHECK(op.dst_rank >= 0 && op.dst_rank < sys_.nranks(),
             "bad asid " << op.dst_rank);
    sys_.traffic().note_op(op.kind, op.src_rank, op.nbytes);
    sys_.backend().submit(*thread_, op);
}

void
Ctx::put(const void* laddr, int asid, void* raddr, size_t n,
         sim::Flag* lsync, sim::Flag* rsync)
{
    Op op;
    op.kind = OpKind::kPut;
    op.src_rank = rank_;
    op.dst_rank = asid;
    op.laddr = const_cast<void*>(laddr);
    op.raddr = raddr;
    op.nbytes = n;
    op.lsync = lsync;
    op.rsync = rsync;
    submit(op);
}

void
Ctx::put_notify(const void* laddr, int asid, void* raddr, size_t n,
                int notify_qid, const void* notify, size_t notify_n,
                sim::Flag* lsync, sim::Flag* rsync)
{
    Op op;
    op.kind = OpKind::kPut;
    op.src_rank = rank_;
    op.dst_rank = asid;
    op.laddr = const_cast<void*>(laddr);
    op.raddr = raddr;
    op.nbytes = n;
    op.lsync = lsync;
    op.rsync = rsync;
    op.notify_qid = notify_qid;
    op.notify_msg = std::make_shared<std::vector<uint8_t>>(notify_n);
    if (notify_n > 0) {
        std::memcpy(op.notify_msg->data(), notify, notify_n);
    }
    // The notification is a remote-queue operation in its own right
    // (the paper's am_store is a PUT followed by an ENQ).
    sys_.traffic().note_op(OpKind::kEnq, rank_, notify_n);
    submit(op);
}

void
Ctx::get(void* laddr, int asid, const void* raddr, size_t n,
         sim::Flag* lsync, sim::Flag* rsync)
{
    Op op;
    op.kind = OpKind::kGet;
    op.src_rank = rank_;
    op.dst_rank = asid;
    op.laddr = laddr;
    op.raddr = const_cast<void*>(raddr);
    op.nbytes = n;
    op.lsync = lsync;
    op.rsync = rsync;
    submit(op);
}

void
Ctx::enq(const void* laddr, int asid, int qid, size_t n, sim::Flag* lsync,
         sim::Flag* rsync)
{
    Op op;
    op.kind = OpKind::kEnq;
    op.src_rank = rank_;
    op.dst_rank = asid;
    op.laddr = const_cast<void*>(laddr);
    op.qid = qid;
    op.nbytes = n;
    op.lsync = lsync;
    op.rsync = rsync;
    submit(op);
}

void
Ctx::deq(void* laddr, int asid, int qid, size_t n, sim::Flag* lsync)
{
    Op op;
    op.kind = OpKind::kDeq;
    op.src_rank = rank_;
    op.dst_rank = asid;
    op.laddr = laddr;
    op.qid = qid;
    op.nbytes = n;
    op.lsync = lsync;
    submit(op);
}

void
Ctx::put_blocking(const void* laddr, int asid, void* raddr, size_t n)
{
    sim::Flag* f = scratch_flag();
    put(laddr, asid, raddr, n, f, nullptr);
    wait_ge(*f, 1);
    release_scratch(f);
}

void
Ctx::get_blocking(void* laddr, int asid, const void* raddr, size_t n)
{
    sim::Flag* f = scratch_flag();
    get(laddr, asid, raddr, n, f, nullptr);
    wait_ge(*f, 1);
    release_scratch(f);
}

void
Ctx::enq_blocking(const void* laddr, int asid, int qid, size_t n)
{
    sim::Flag* f = scratch_flag();
    enq(laddr, asid, qid, n, f, nullptr);
    wait_ge(*f, 1);
    release_scratch(f);
}

void
Ctx::compute(double us)
{
    MP_CHECK(us >= 0.0, "negative compute time");
    double extra = sys_.take_stolen(rank_);
    thread_->advance(us + extra);
}

void
Ctx::wait_ge(sim::Flag& f, uint64_t v)
{
    f.wait_ge(*thread_, v);
    thread_->advance(sys_.backend().flag_poll_cost());
}

void
Ctx::wait_either(sim::Flag& a, uint64_t va, sim::Flag& b, uint64_t vb)
{
    while (a.value() < va && b.value() < vb) {
        a.add_waiter(*thread_, va);
        b.add_waiter(*thread_, vb);
        thread_->block();
    }
    thread_->advance(sys_.backend().flag_poll_cost());
}

sim::Flag&
Ctx::arrival_flag()
{
    return sys_.arrival_flag(rank_);
}

void
Ctx::yield()
{
    thread_->advance(0.0);
}

void
Ctx::publish(const std::string& name, void* ptr)
{
    sys_.board_put(name, rank_, ptr);
}

void*
Ctx::lookup(const std::string& name, int rank)
{
    void* p = sys_.board_get(name, rank);
    while (p == nullptr) {
        compute(0.1);
        p = sys_.board_get(name, rank);
    }
    return p;
}

sim::Flag*
Ctx::scratch_flag()
{
    if (!scratch_free_.empty()) {
        sim::Flag* f = scratch_free_.back();
        scratch_free_.pop_back();
        f->reset();
        return f;
    }
    return sys_.new_flag();
}

void
Ctx::release_scratch(sim::Flag* f)
{
    scratch_free_.push_back(f);
}

// ------------------------------------------------------------------- System

System::System(SystemConfig cfg, const BackendFactory& factory)
    : cfg_(cfg), traffic_(cfg.nodes * cfg.procs_per_node)
{
    MP_CHECK(cfg_.nodes > 0 && cfg_.procs_per_node > 0,
             "bad cluster shape " << cfg_.nodes << "x"
                                  << cfg_.procs_per_node);
    int n = nranks();
    spaces_.reserve(static_cast<size_t>(n));
    queues_.resize(static_cast<size_t>(n));
    stolen_.assign(static_cast<size_t>(n), 0.0);
    for (int r = 0; r < n; ++r) {
        spaces_.push_back(std::make_unique<AddressSpace>(r));
        arrival_.push_back(std::make_unique<sim::Flag>());
        ctxs_.push_back(std::unique_ptr<Ctx>(
            new Ctx(*this, r, cfg_.seed * 0x1000193ull + 0x9e37ull +
                                  static_cast<uint64_t>(r))));
    }
    backend_ = factory(*this);
    MP_CHECK(backend_ != nullptr, "backend factory returned null");
}

System::~System() = default;

RemoteQueue&
System::queue(int rank, int qid)
{
    auto& qs = queues_[static_cast<size_t>(rank)];
    MP_CHECK(qid >= 0 && static_cast<size_t>(qid) < qs.size(),
             "bad queue id " << qid << " for rank " << rank);
    return *qs[static_cast<size_t>(qid)];
}

int
System::make_queue(int rank, size_t capacity_bytes)
{
    auto& qs = queues_[static_cast<size_t>(rank)];
    qs.push_back(std::make_unique<RemoteQueue>(capacity_bytes));
    return static_cast<int>(qs.size()) - 1;
}

bool
System::deliver(int rank, int qid, std::vector<uint8_t> msg)
{
    bool ok = queue(rank, qid).push(std::move(msg));
    arrival_flag(rank).add(1);
    return ok;
}

bool
System::validate_remote(int accessor, int owner, const void* addr, size_t n)
{
    // Zero-byte operations are pure signals (flag-only PUTs used by
    // barriers): no address is dereferenced, nothing to protect.
    if (n == 0)
        return true;
    if (space(owner).check(accessor, addr, n))
        return true;
    faults_.push_back(
        Fault{accessor, owner, addr, n, sched_.now()});
    return false;
}

bool
System::validate_queue(int accessor, int owner, int qid)
{
    auto& qs = queues_[static_cast<size_t>(owner)];
    if (qid >= 0 && static_cast<size_t>(qid) < qs.size())
        return true;
    faults_.push_back(Fault{accessor, owner, nullptr,
                            static_cast<size_t>(qid), sched_.now()});
    return false;
}

sim::Flag*
System::new_flag()
{
    flags_.push_back(std::make_unique<sim::Flag>());
    return flags_.back().get();
}

void
System::add_stolen(int rank, double us)
{
    stolen_[static_cast<size_t>(rank)] += us;
}

double
System::take_stolen(int rank)
{
    double t = stolen_[static_cast<size_t>(rank)];
    stolen_[static_cast<size_t>(rank)] = 0.0;
    return t;
}

void*
System::board_get(const std::string& name, int rank) const
{
    auto it = board_.find(name);
    if (it == board_.end())
        return nullptr;
    return it->second[static_cast<size_t>(rank)];
}

void
System::board_put(const std::string& name, int rank, void* ptr)
{
    auto it = board_.find(name);
    if (it == board_.end()) {
        it = board_
                 .emplace(name, std::vector<void*>(
                                    static_cast<size_t>(nranks()),
                                    nullptr))
                 .first;
    }
    MP_CHECK(it->second[static_cast<size_t>(rank)] == nullptr,
             "double publish of '" << name << "' by rank " << rank);
    it->second[static_cast<size_t>(rank)] = ptr;
}

RunResult
System::run(const std::function<void(Ctx&)>& app)
{
    MP_CHECK(!ran_, "System::run may only be called once");
    ran_ = true;
    for (int r = 0; r < nranks(); ++r) {
        Ctx* c = ctxs_[static_cast<size_t>(r)].get();
        sim::SimThread& t = sched_.spawn(
            "rank" + std::to_string(r),
            [c, &app](sim::SimThread&) { app(*c); });
        c->bind(t);
    }
    sched_.run();
    elapsed_us_ = sched_.now();

    RunResult res;
    res.elapsed_us = elapsed_us_;
    res.ops = traffic_.ops();
    res.avg_msg_bytes = traffic_.avg_msg_bytes();
    res.rate_per_proc_ms = traffic_.rate_per_proc_ms(elapsed_us_);
    res.faults = faults_.size();
    for (int nd = 0; nd < cfg_.nodes; ++nd)
        res.agent_utilization.push_back(backend_->agent_utilization(nd));
    return res;
}

} // namespace rma
