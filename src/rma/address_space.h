/// \file
/// Per-rank simulated address spaces with segment-level protection.
///
/// In the paper, remote addresses are relative to an address space
/// identified by an asid; "the system faults a process that tries to
/// access an address space without first getting permission to do so."
/// Here every rank owns an AddressSpace: a set of registered segments,
/// each either shared with all ranks or restricted to an explicit
/// grant list. Backends validate each remote access against the
/// target's segment table at handling time; violations are recorded
/// as faults and the access is suppressed.

#ifndef MSGPROXY_RMA_ADDRESS_SPACE_H
#define MSGPROXY_RMA_ADDRESS_SPACE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "util/annotations.h"

namespace rma {

/// A recorded protection violation.
struct Fault
{
    int accessor_rank;  ///< rank that attempted the access
    int owner_rank;     ///< asid whose space was targeted
    const void* addr;   ///< first byte of the attempted access
    size_t nbytes;      ///< attempted length
    double time_us;     ///< simulated time of the attempt
};

/// The registered memory of one simulated rank.
class AddressSpace
{
  public:
    /// Creates the address space for `owner_rank`.
    explicit AddressSpace(int owner_rank) : owner_(owner_rank) {}

    AddressSpace(const AddressSpace&) = delete;
    AddressSpace& operator=(const AddressSpace&) = delete;
    AddressSpace(AddressSpace&&) = default;
    AddressSpace& operator=(AddressSpace&&) = default;

    /// Allocates and registers `n` bytes. If `shared` is true any rank
    /// may access the segment; otherwise only ranks granted later may.
    /// Returned storage is 64-byte aligned and owned by this object.
    MSGPROXY_QUIESCENT void* alloc(size_t n, bool shared);

    /// Registers caller-owned memory as a segment (not freed here).
    MSGPROXY_QUIESCENT void register_segment(void* p, size_t n,
                                            bool shared);

    /// Grants `rank` access to the segment containing `addr`.
    /// Returns false if `addr` is not inside a registered segment.
    MSGPROXY_QUIESCENT bool grant(const void* addr, int rank);

    /// True if `accessor` may touch [addr, addr+n) in this space.
    /// The owner may always access its own segments.
    MSGPROXY_HOT_PATH bool check(int accessor, const void* addr,
                                 size_t n) const;

    /// Total bytes registered.
    size_t registered_bytes() const { return registered_bytes_; }

    /// Owning rank (the asid).
    int owner() const { return owner_; }

  private:
    struct Segment
    {
        char* base;
        size_t len;
        bool shared;
        std::set<int> grants;
        std::unique_ptr<char[]> storage; ///< null for register_segment
    };

    MSGPROXY_HOT_PATH const Segment* find(const void* addr,
                                          size_t n) const;
    Segment* find_mutable(const void* addr);

    int owner_;
    size_t registered_bytes_ = 0;
    std::vector<Segment> segments_;
};

} // namespace rma

#endif // MSGPROXY_RMA_ADDRESS_SPACE_H
