/// \file
/// Remote queue (RQ) storage.
///
/// A remote queue is a message-granularity FIFO owned by one rank;
/// ENQ atomically appends a message to the tail of a queue in another
/// rank's address space, and DEQ removes the head. The owning rank may
/// also poll its own queues locally (this is what the Active Message
/// layer does to receive requests).

#ifndef MSGPROXY_RMA_REMOTE_QUEUE_H
#define MSGPROXY_RMA_REMOTE_QUEUE_H

#include <cstdint>
#include <deque>
#include <vector>

#include "util/annotations.h"

namespace rma {

/// One message-oriented FIFO.
class RemoteQueue
{
  public:
    /// Creates a queue. capacity_bytes == 0 means unbounded.
    explicit RemoteQueue(size_t capacity_bytes = 0)
        : capacity_(capacity_bytes)
    {
    }

    /// Appends a message; returns false (and counts a drop) when the
    /// queue is bounded and full.
    MSGPROXY_HOT_PATH bool
    push(std::vector<uint8_t> msg)
    {
        if (capacity_ != 0 && bytes_ + msg.size() > capacity_) {
            ++drops_;
            return false;
        }
        bytes_ += msg.size();
        ++enqueued_;
        msgs_.push_back(std::move(msg));
        return true;
    }

    /// Removes the head message into `out`; false when empty.
    MSGPROXY_HOT_PATH bool
    pop(std::vector<uint8_t>& out)
    {
        if (msgs_.empty())
            return false;
        out = std::move(msgs_.front());
        msgs_.pop_front();
        bytes_ -= out.size();
        ++dequeued_;
        return true;
    }

    /// Number of queued messages.
    size_t size() const { return msgs_.size(); }
    /// Queued payload bytes.
    size_t bytes() const { return bytes_; }
    /// True when no message is queued.
    bool empty() const { return msgs_.empty(); }
    /// Messages rejected because the queue was full.
    uint64_t drops() const { return drops_; }
    /// Messages accepted so far.
    uint64_t enqueued() const { return enqueued_; }
    /// Messages removed so far.
    uint64_t dequeued() const { return dequeued_; }

  private:
    size_t capacity_;
    size_t bytes_ = 0;
    uint64_t drops_ = 0;
    uint64_t enqueued_ = 0;
    uint64_t dequeued_ = 0;
    std::deque<std::vector<uint8_t>> msgs_;
};

} // namespace rma

#endif // MSGPROXY_RMA_REMOTE_QUEUE_H
