/// \file
/// The four communication primitives of the paper's Section 3:
/// remote memory access (PUT/GET) and remote queues (ENQ/DEQ).

#ifndef MSGPROXY_RMA_OP_H
#define MSGPROXY_RMA_OP_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sim {
class Flag;
} // namespace sim

namespace rma {

/// Operation kind.
enum class OpKind : uint8_t {
    kPut, ///< copy nbytes from laddr to (asid, raddr)
    kGet, ///< copy nbytes from (asid, raddr) to laddr
    kEnq, ///< atomically append an nbytes message to (asid, qid)
    kDeq  ///< dequeue the head message of (asid, qid) into laddr
};

/// Human-readable op-kind name.
const char* op_kind_name(OpKind k);

/// A decoded communication command, as it sits in a user's command
/// queue. Addresses are raw host pointers: all simulated address
/// spaces live inside this process, and the segment table of the
/// target asid decides whether access is permitted (Section 3's
/// protection model).
struct Op
{
    OpKind kind = OpKind::kPut;
    int src_rank = 0;        ///< submitting process
    int dst_rank = 0;        ///< asid: logical target address space
    void* laddr = nullptr;   ///< local buffer (source for PUT/ENQ,
                             ///< destination for GET/DEQ)
    void* raddr = nullptr;   ///< remote address (PUT/GET only)
    int qid = -1;            ///< remote queue id (ENQ/DEQ only)
    size_t nbytes = 0;       ///< transfer size
    sim::Flag* lsync = nullptr; ///< local completion flag (incremented)
    sim::Flag* rsync = nullptr; ///< remote completion flag (incremented)

    /// PUT only: optional piggybacked notification. When >= 0, the
    /// message `notify_msg` is enqueued on (dst_rank, notify_qid)
    /// after the data has been stored — the fused form of the paper's
    /// "PUT followed by an ENQ of a handler that detects completion
    /// of the PUT" (used by the Active Message bulk store). The fused
    /// form keeps the notification ordered behind the data even on
    /// the DMA path.
    int notify_qid = -1;
    std::shared_ptr<std::vector<uint8_t>> notify_msg;
};

} // namespace rma

#endif // MSGPROXY_RMA_OP_H
