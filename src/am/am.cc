#include "am/am.h"

#include <cstring>

#include "util/log.h"

namespace am {

namespace {

/// Encodes a queue id as a non-null bulletin-board pointer.
void*
encode_qid(int qid)
{
    return reinterpret_cast<void*>(static_cast<intptr_t>(qid) + 1);
}

int
decode_qid(void* p)
{
    return static_cast<int>(reinterpret_cast<intptr_t>(p)) - 1;
}

} // namespace

void
Msg::reply(int handler_id, const void* payload, size_t n) const
{
    int qid = decode_qid(ep.ctx().lookup("am.reply", src));
    ep.send_on_queue(src, qid, handler_id, payload, n, nullptr);
}

Endpoint::Endpoint(rma::Ctx& ctx) : ctx_(ctx)
{
    request_qid_ = ctx_.make_queue();
    reply_qid_ = ctx_.make_queue();
    ctx_.publish("am.request", encode_qid(request_qid_));
    ctx_.publish("am.reply", encode_qid(reply_qid_));
}

int
Endpoint::register_handler(Handler h)
{
    handlers_.push_back(std::move(h));
    return static_cast<int>(handlers_.size()) - 1;
}

void
Endpoint::send_on_queue(int dst, int qid, int hid, const void* payload,
                        size_t n, sim::Flag* lsync)
{
    MP_CHECK(hid >= 0, "bad handler id " << hid);
    scratch_.resize(sizeof(WireHeader) + n);
    WireHeader hdr;
    hdr.hid = hid;
    hdr.src = ctx_.rank();
    std::memcpy(scratch_.data(), &hdr, sizeof(hdr));
    if (n > 0)
        std::memcpy(scratch_.data() + sizeof(hdr), payload, n);
    ctx_.enq(scratch_.data(), dst, qid, scratch_.size(), lsync);
}

void
Endpoint::request(int dst, int hid, const void* payload, size_t n,
                  sim::Flag* lsync)
{
    int qid = decode_qid(ctx_.lookup("am.request", dst));
    send_on_queue(dst, qid, hid, payload, n, lsync);
}

void
Endpoint::store(int dst, const void* laddr, void* raddr, size_t n, int hid,
                uint64_t arg, sim::Flag* lsync)
{
    if (hid < 0) {
        ctx_.put(laddr, dst, raddr, n, lsync, nullptr);
        return;
    }
    // Fused PUT + notification ENQ: the handler message is delivered
    // to the target's request queue only after the data is stored.
    int qid = decode_qid(ctx_.lookup("am.request", dst));
    uint8_t msg[sizeof(WireHeader) + sizeof(uint64_t)];
    WireHeader hdr;
    hdr.hid = hid;
    hdr.src = ctx_.rank();
    std::memcpy(msg, &hdr, sizeof(hdr));
    std::memcpy(msg + sizeof(hdr), &arg, sizeof(arg));
    ctx_.put_notify(laddr, dst, raddr, n, qid, msg, sizeof(msg), lsync,
                    nullptr);
}

void
Endpoint::get(int dst, const void* raddr, void* laddr, size_t n,
              sim::Flag* lsync)
{
    ctx_.get(laddr, dst, raddr, n, lsync, nullptr);
}

bool
Endpoint::poll_queue(int qid)
{
    std::vector<uint8_t> raw;
    if (!ctx_.try_deq_local(qid, raw))
        return false;
    MP_CHECK(raw.size() >= sizeof(WireHeader), "runt active message");
    WireHeader hdr;
    std::memcpy(&hdr, raw.data(), sizeof(hdr));
    MP_CHECK(hdr.hid >= 0 &&
                 static_cast<size_t>(hdr.hid) < handlers_.size(),
             "unregistered handler " << hdr.hid);
    // Handler dispatch on the compute processor: scheduling the
    // handler out of the polling loop costs several cache misses plus
    // dispatch instructions (this is why the paper's AM round trip is
    // roughly 3x a raw PUT: "it involves handler invocation on
    // processors at both ends").
    const auto& d = ctx_.design();
    ctx_.compute(4.0 * d.c_miss_us + d.insn(4.0));
    Msg m{*this, hdr.src, raw.data() + sizeof(hdr),
          raw.size() - sizeof(hdr)};
    handlers_[static_cast<size_t>(hdr.hid)](m);
    ++handled_;
    return true;
}

bool
Endpoint::poll()
{
    // Requests before replies, mirroring the proxy's round-robin scan
    // starting from the request queue.
    if (poll_queue(request_qid_))
        return true;
    return poll_queue(reply_qid_);
}

void
Endpoint::poll_all()
{
    while (poll()) {
    }
}

void
Endpoint::poll_until(sim::Flag& f, uint64_t v)
{
    // Waiting always implies polling: service incoming handlers while
    // the flag is below the threshold. Blocks event-driven on either
    // the flag or a new queue arrival (no busy spinning).
    // The arrival counter is sampled BEFORE draining the queues: a
    // message that lands between a queue's emptiness check and the
    // wait registration bumps the counter past the sample, so the
    // wait returns immediately and the loop re-polls (no lost-wakeup
    // window).
    sim::Flag& arr = ctx_.arrival_flag();
    for (;;) {
        uint64_t a0 = arr.value();
        poll_all();
        if (f.value() >= v)
            return;
        ctx_.wait_either(f, v, arr, a0 + 1);
    }
}

void
Endpoint::compute(double us, double slice_us)
{
    while (us > 0.0) {
        double step = us < slice_us ? us : slice_us;
        ctx_.compute(step);
        poll_all();
        us -= step;
    }
}

void
Endpoint::wait_arrival()
{
    // Queue-nonempty fast path closes the race with a message that
    // arrived after the caller's poll() checked that queue.
    if (ctx_.queue_depth(request_qid_) > 0 ||
        ctx_.queue_depth(reply_qid_) > 0) {
        return;
    }
    sim::Flag& arr = ctx_.arrival_flag();
    ctx_.wait_ge(arr, arr.value() + 1);
}

} // namespace am
