/// \file
/// Active Messages on top of the RMA and RQ primitives (Section 5.1
/// and Figure 6 of the paper).
///
/// am_request / am_reply ride on remote-queue ENQs; am_store (bulk
/// store) is a PUT followed by an ENQ of a completion handler whose
/// in-order delivery after the data reproduces the paper's "handler
/// that detects completion of the PUT"; am_get is a GET plus local
/// completion handler.
///
/// Usage is SPMD-symmetric: every rank constructs its Endpoint first
/// thing (before any communication) and registers the same handlers
/// in the same order, so handler ids agree across ranks.

#ifndef MSGPROXY_AM_AM_H
#define MSGPROXY_AM_AM_H

#include <cstdint>
#include <functional>
#include <vector>

#include "rma/system.h"
#include "util/annotations.h"

namespace am {

class Endpoint;

/// An incoming active message as seen by a handler.
struct Msg
{
    Endpoint& ep;        ///< receiving endpoint (for replies)
    int src;             ///< sending rank
    const uint8_t* data; ///< payload (valid only during the handler)
    size_t size;         ///< payload bytes

    /// Sends a reply active message back to the requester.
    void reply(int handler_id, const void* payload, size_t n) const;
};

/// Handler invoked at the receiving rank when a message is polled.
using Handler = std::function<void(const Msg&)>;

/// Per-rank active-message endpoint.
class Endpoint
{
  public:
    /// Creates the request and reply queues for this rank. Must run
    /// on every rank before any communication.
    MSGPROXY_QUIESCENT explicit Endpoint(rma::Ctx& ctx);

    Endpoint(const Endpoint&) = delete;
    Endpoint& operator=(const Endpoint&) = delete;

    /// Registers a handler; returns its id. All ranks must register
    /// the same handlers in the same order.
    MSGPROXY_QUIESCENT int register_handler(Handler h);

    /// Sends an active-message request to `dst`; the remote rank runs
    /// handler `hid` with the payload when it polls. lsync (optional)
    /// is incremented when the enqueue is acknowledged.
    void request(int dst, int hid, const void* payload, size_t n,
                 sim::Flag* lsync = nullptr);

    /// Bulk store: PUTs [laddr, laddr+n) to (dst, raddr), then invokes
    /// handler `hid` at dst (with the 8-byte `arg` as payload) after
    /// the data has been delivered. hid < 0 skips the notification.
    void store(int dst, const void* laddr, void* raddr, size_t n, int hid,
               uint64_t arg = 0, sim::Flag* lsync = nullptr);

    /// Bulk get: fetches [raddr, raddr+n) from dst into laddr; lsync
    /// increments on local arrival.
    void get(int dst, const void* raddr, void* laddr, size_t n,
             sim::Flag* lsync);

    /// Polls once: handles at most one pending message (requests have
    /// priority over replies... the paper's RQ poll order). Returns
    /// true if a message was handled.
    bool poll();

    /// Drains every pending message.
    void poll_all();

    /// Polls while waiting for `f` to reach `v` (the standard AM
    /// progress loop: waiting always implies polling).
    void poll_until(sim::Flag& f, uint64_t v);

    /// Blocks until at least one new message arrives in any of this
    /// rank's queues (event-driven; use in custom progress loops
    /// after poll() returned false).
    void wait_arrival();

    /// Computes for `us` microseconds while polling every `slice_us`
    /// (the standard technique long-running handler-based programs
    /// use so that incoming protocol requests are serviced with
    /// bounded delay).
    void compute(double us, double slice_us = 50.0);

    /// Messages handled so far.
    uint64_t handled() const { return handled_; }

    /// The underlying rank context.
    rma::Ctx& ctx() { return ctx_; }

  private:
    friend struct Msg;

    /// Wire header prepended to every AM payload.
    struct WireHeader
    {
        int32_t hid;
        int32_t src;
    };

    void send_on_queue(int dst, int qid, int hid, const void* payload,
                       size_t n, sim::Flag* lsync);
    bool poll_queue(int qid);

    rma::Ctx& ctx_;
    int request_qid_;
    int reply_qid_;
    std::vector<Handler> handlers_;
    std::vector<uint8_t> scratch_;
    uint64_t handled_ = 0;
};

} // namespace am

#endif // MSGPROXY_AM_AM_H
