/// \file
/// Statistics accumulators used throughout the simulator and the
/// benchmark harness: scalar summary statistics and fixed-bucket
/// histograms, plus a time-weighted accumulator for utilization.

#ifndef MSGPROXY_UTIL_STATS_H
#define MSGPROXY_UTIL_STATS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace mp {

/// Accumulates count / mean / variance / min / max of a sample stream
/// in O(1) space (Welford's algorithm for numerical stability).
class Summary
{
  public:
    /// Adds one observation.
    void
    add(double x)
    {
        ++n_;
        double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    /// Number of observations.
    uint64_t count() const { return n_; }
    /// Sum of all observations (0 when empty).
    double sum() const { return sum_; }
    /// Sample mean (0 when empty).
    double mean() const { return n_ ? mean_ : 0.0; }
    /// Smallest observation (+inf when empty).
    double min() const { return min_; }
    /// Largest observation (-inf when empty).
    double max() const { return max_; }

    /// Unbiased sample variance (0 when fewer than two observations).
    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    /// Sample standard deviation.
    double stddev() const { return std::sqrt(variance()); }

    /// Discards all observations.
    void
    reset()
    {
        *this = Summary{};
    }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted accumulator for busy/idle accounting.
///
/// A sim::Resource reports periods during which it is busy; dividing
/// accumulated busy time by elapsed time yields the utilization that
/// Table 6 of the paper reports for adapters and message proxies.
class BusyTime
{
  public:
    /// Records a busy interval of the given duration (microseconds).
    void add_busy(double duration_us) { busy_us_ += duration_us; }

    /// Total accumulated busy time in microseconds.
    double busy_us() const { return busy_us_; }

    /// Utilization over an observation window [0, end_us].
    double
    utilization(double end_us) const
    {
        return end_us > 0.0 ? busy_us_ / end_us : 0.0;
    }

    /// Discards accumulated busy time.
    void reset() { busy_us_ = 0.0; }

  private:
    double busy_us_ = 0.0;
};

/// Fixed-width-bucket histogram over [lo, hi); out-of-range samples
/// land in saturating underflow/overflow buckets.
class Histogram
{
  public:
    /// Creates a histogram of `buckets` equal-width bins over [lo, hi).
    Histogram(double lo, double hi, int buckets)
        : lo_(lo), hi_(hi), counts_(static_cast<size_t>(buckets), 0)
    {
    }

    /// Adds one observation.
    void
    add(double x)
    {
        ++total_;
        if (x < lo_) {
            ++underflow_;
        } else if (x >= hi_) {
            ++overflow_;
        } else {
            auto idx = static_cast<size_t>((x - lo_) / (hi_ - lo_) *
                                           static_cast<double>(counts_.size()));
            idx = std::min(idx, counts_.size() - 1);
            ++counts_[idx];
        }
    }

    /// Count in bucket i.
    uint64_t bucket(size_t i) const { return counts_[i]; }
    /// Number of buckets.
    size_t buckets() const { return counts_.size(); }
    /// Observations below the range.
    uint64_t underflow() const { return underflow_; }
    /// Observations at or above the range.
    uint64_t overflow() const { return overflow_; }
    /// Total observations.
    uint64_t total() const { return total_; }

    /// Inclusive lower edge of bucket i.
    double
    bucket_lo(size_t i) const
    {
        return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                         static_cast<double>(counts_.size());
    }

    /// Quantile q in [0, 1] with linear interpolation inside the
    /// landing bucket. Underflow mass reports as lo, overflow mass as
    /// hi (the histogram cannot resolve beyond its range). Returns 0
    /// when empty.
    double
    quantile(double q) const
    {
        if (total_ == 0)
            return 0.0;
        q = std::min(std::max(q, 0.0), 1.0);
        const double target = q * static_cast<double>(total_);
        double cum = static_cast<double>(underflow_);
        if (cum >= target && underflow_ > 0)
            return lo_;
        const double width =
            (hi_ - lo_) / static_cast<double>(counts_.size());
        for (size_t i = 0; i < counts_.size(); ++i) {
            const auto c = static_cast<double>(counts_[i]);
            if (c == 0.0)
                continue;
            if (cum + c >= target) {
                const double frac = (target - cum) / c;
                return bucket_lo(i) + frac * width;
            }
            cum += c;
        }
        return hi_; // remaining mass sits in the overflow bucket
    }

    /// Discards all observations (the bucket layout is kept).
    void
    reset()
    {
        std::fill(counts_.begin(), counts_.end(), 0);
        underflow_ = 0;
        overflow_ = 0;
        total_ = 0;
    }

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

} // namespace mp

#endif // MSGPROXY_UTIL_STATS_H
