/// \file
/// Lightweight logging and invariant-checking utilities.
///
/// Follows the gem5 convention of distinguishing programmer errors
/// (MP_PANIC: a bug in this library, aborts) from user errors
/// (MP_FATAL: bad configuration or arguments, exits cleanly) and
/// non-fatal diagnostics (mp::warn / mp::inform).

#ifndef MSGPROXY_UTIL_LOG_H
#define MSGPROXY_UTIL_LOG_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace mp {

/// Verbosity levels for diagnostic output.
enum class LogLevel { kQuiet = 0, kWarn = 1, kInform = 2, kDebug = 3 };

/// Returns the process-wide log level (default kWarn; override with
/// the MSGPROXY_LOG environment variable: quiet|warn|inform|debug).
LogLevel log_level();

/// Overrides the process-wide log level.
void set_log_level(LogLevel level);

namespace detail {

/// Emits one formatted diagnostic line with a severity prefix.
void emit(const char* severity, const std::string& msg);

/// Prints the message and aborts; used by MP_PANIC for internal bugs.
[[noreturn]] void panic_impl(const char* file, int line,
                             const std::string& msg);

/// Prints the message and exits(1); used by MP_FATAL for user errors.
[[noreturn]] void fatal_impl(const char* file, int line,
                             const std::string& msg);

} // namespace detail

/// Warns about a condition that may indicate incorrect behaviour.
void warn(const std::string& msg);

/// Informational message the user should see but not worry about.
void inform(const std::string& msg);

/// Debug-level message, suppressed unless MSGPROXY_LOG=debug.
void debug(const std::string& msg);

} // namespace mp

/// Aborts on an internal invariant violation (a bug in this library).
#define MP_PANIC(msg)                                                      \
    do {                                                                   \
        std::ostringstream mp_oss_;                                        \
        mp_oss_ << msg;                                                    \
        ::mp::detail::panic_impl(__FILE__, __LINE__, mp_oss_.str());       \
    } while (0)

/// Exits on a user error (bad configuration, invalid arguments).
#define MP_FATAL(msg)                                                      \
    do {                                                                   \
        std::ostringstream mp_oss_;                                        \
        mp_oss_ << msg;                                                    \
        ::mp::detail::fatal_impl(__FILE__, __LINE__, mp_oss_.str());       \
    } while (0)

/// Checks an invariant that must hold regardless of user input.
#define MP_CHECK(cond, msg)                                                \
    do {                                                                   \
        if (!(cond)) {                                                     \
            MP_PANIC("check failed: " #cond ": " << msg);                  \
        }                                                                  \
    } while (0)

#endif // MSGPROXY_UTIL_LOG_H
