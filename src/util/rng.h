/// \file
/// Deterministic pseudo-random number generation (xoshiro256**).
///
/// Simulation runs must be reproducible across hosts and compilers, so
/// all stochastic behaviour in the library (workload generators, Monte
/// Carlo kernels, randomized polling jitter) draws from this generator
/// rather than std::mt19937 or std::uniform_*_distribution, whose
/// outputs are not pinned down by the standard in the same way across
/// implementations for the distribution adaptors.

#ifndef MSGPROXY_UTIL_RNG_H
#define MSGPROXY_UTIL_RNG_H

#include <cstdint>

namespace mp {

/// xoshiro256** generator with splitmix64 seeding.
///
/// Passes BigCrush; period 2^256 - 1. Cheap enough to embed one
/// instance per simulated rank so that parallel runs are deterministic
/// regardless of execution interleaving.
class Rng
{
  public:
    /// Constructs a generator from a 64-bit seed via splitmix64.
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /// Re-seeds the generator deterministically.
    void
    reseed(uint64_t seed)
    {
        uint64_t x = seed;
        for (auto& word : state_) {
            // splitmix64 step: decorrelates consecutive seeds.
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /// Returns the next 64 uniformly random bits.
    uint64_t
    next_u64()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Returns a uniform integer in [0, bound). bound must be > 0.
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    uint64_t
    next_below(uint64_t bound)
    {
        uint64_t x = next_u64();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        uint64_t lo = static_cast<uint64_t>(m);
        if (lo < bound) {
            uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = next_u64();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<uint64_t>(m);
            }
        }
        return static_cast<uint64_t>(m >> 64);
    }

    /// Returns a uniform double in [0, 1).
    double
    next_double()
    {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /// Returns a uniform double in [lo, hi).
    double
    next_range(double lo, double hi)
    {
        return lo + (hi - lo) * next_double();
    }

    /// Returns a uniform integer in [lo, hi] inclusive.
    int64_t
    next_int(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
                        next_below(static_cast<uint64_t>(hi - lo + 1)));
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
};

} // namespace mp

#endif // MSGPROXY_UTIL_RNG_H
