#include "util/topology.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace topo {

std::vector<int>
parse_cpulist(const char* s)
{
    std::vector<int> out;
    if (s == nullptr)
        return out;
    const char* p = s;
    while (*p != '\0' && *p != '\n') {
        if (!std::isdigit(static_cast<unsigned char>(*p)))
            return {};
        char* end = nullptr;
        long lo = std::strtol(p, &end, 10);
        long hi = lo;
        p = end;
        if (*p == '-') {
            ++p;
            if (!std::isdigit(static_cast<unsigned char>(*p)))
                return {};
            hi = std::strtol(p, &end, 10);
            p = end;
        }
        if (lo < 0 || hi < lo)
            return {};
        for (long c = lo; c <= hi; ++c)
            out.push_back(static_cast<int>(c));
        if (*p == ',')
            ++p;
        else if (*p != '\0' && *p != '\n')
            return {};
    }
    return out;
}

namespace {

Topology
discover()
{
    Topology t;
    const unsigned hw = std::thread::hardware_concurrency();
    t.ncpu = hw > 0 ? static_cast<int>(hw) : 1;
#if defined(__linux__)
    // One directory per NUMA node; each names its CPUs in cpulist
    // format. Probe node ids densely from 0 — sysfs numbers them
    // contiguously on every kernel we care about, and a probe miss
    // simply ends discovery.
    for (int n = 0;; ++n) {
        std::ifstream f("/sys/devices/system/node/node" +
                        std::to_string(n) + "/cpulist");
        if (!f)
            break;
        std::string line;
        std::getline(f, line);
        std::vector<int> cpus = parse_cpulist(line.c_str());
        if (cpus.empty())
            break;
        t.node_cpus.push_back(cpus);
    }
#endif
    if (t.node_cpus.empty()) {
        // Portable fallback: one flat memory node over all CPUs.
        std::vector<int> all;
        all.reserve(static_cast<size_t>(t.ncpu));
        for (int c = 0; c < t.ncpu; ++c)
            all.push_back(c);
        t.node_cpus.push_back(std::move(all));
    }
    int max_cpu = 0;
    for (const auto& cpus : t.node_cpus) {
        for (int c : cpus)
            max_cpu = std::max(max_cpu, c);
    }
    t.ncpu = std::max(t.ncpu, max_cpu + 1);
    t.numa_of_cpu.assign(static_cast<size_t>(t.ncpu), 0);
    for (size_t n = 0; n < t.node_cpus.size(); ++n) {
        for (int c : t.node_cpus[n]) {
            t.numa_of_cpu[static_cast<size_t>(c)] =
                static_cast<int>(n);
            t.cpu_order.push_back(c);
        }
    }
    return t;
}

} // namespace

const Topology&
Topology::get()
{
    static const Topology t = discover();
    return t;
}

bool
pin_self_to_cpu(int cpu)
{
#if defined(__linux__)
    if (cpu < 0)
        return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<unsigned>(cpu), &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set),
                                  &set) == 0;
#else
    (void)cpu;
    return false;
#endif
}

std::vector<int>
reserve_cpus(int count)
{
    static std::atomic<uint64_t> cursor{0};
    const Topology& t = Topology::get();
    std::vector<int> out;
    if (count <= 0 || t.cpu_order.empty())
        return out;
    const uint64_t base =
        cursor.fetch_add(static_cast<uint64_t>(count));
    out.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i)
        out.push_back(t.cpu_order[(base + static_cast<uint64_t>(i)) %
                                  t.cpu_order.size()]);
    return out;
}

} // namespace topo
