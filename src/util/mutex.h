/// \file
/// Mutex wrappers carrying Clang Thread Safety Analysis capability
/// annotations (see src/util/annotations.h; the MP_* macros expand
/// to nothing under gcc).
///
/// libstdc++ ships std::mutex / std::lock_guard without TSA
/// attributes, so -Wthread-safety cannot reason about them; these
/// thin wrappers restore that. Use on the runtime's mutex-using COLD
/// paths only (the deterministic scheduler, node setup/teardown) —
/// the wire path is lock-free by design and the msgproxy-hot-path
/// lint keeps it that way.
///
/// Condition variables: mp::Mutex is BasicLockable, so pair it with
/// std::condition_variable_any and wait on the mutex itself while a
/// MutexLock guard holds it:
///
///     mp::MutexLock lk(m_);
///     cv_.wait(m_, [&]() { return ready_; });  // reads under m_

#ifndef MSGPROXY_UTIL_MUTEX_H
#define MSGPROXY_UTIL_MUTEX_H

#include <mutex>

#include "util/annotations.h"

namespace mp {

/// std::mutex with the TSA "mutex" capability.
class MP_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() MP_ACQUIRE() { m_.lock(); }
    void unlock() MP_RELEASE() { m_.unlock(); }
    bool try_lock() MP_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    std::mutex m_;
};

/// Scoped lock of an mp::Mutex, visible to the analysis
/// (std::lock_guard<mp::Mutex> would compile but TSA cannot see
/// through it).
class MP_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex& m) MP_ACQUIRE(m) : m_(m) { m_.lock(); }
    ~MutexLock() MP_RELEASE() { m_.unlock(); }
    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

  private:
    Mutex& m_;
};

} // namespace mp

#endif // MSGPROXY_UTIL_MUTEX_H
