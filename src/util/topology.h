/// \file
/// Host CPU/NUMA topology discovery for proxy-thread placement
/// (NodeConfig::Placement). Linux sysfs is the source of truth
/// (/sys/devices/system/node/node*/cpulist); every other platform —
/// and a sysfs-less Linux — degrades to a flat single-NUMA-node view
/// over hardware_concurrency(), so callers never branch on the OS.
///
/// The allocation order (`cpu_order`) groups CPUs by NUMA node: a
/// Node that pins its P proxies to P consecutive slots of the order
/// lands them on one memory node whenever one has room, which is the
/// whole point — a proxy's packet slab, CCB table, and channel ends
/// are first-touched from the pinned thread and therefore allocated
/// on the same node (see DESIGN.md "Placement & load balancing").

#ifndef MSGPROXY_UTIL_TOPOLOGY_H
#define MSGPROXY_UTIL_TOPOLOGY_H

#include <vector>

#include "util/annotations.h"

namespace topo {

/// Immutable snapshot of the host topology, discovered once.
struct Topology
{
    /// Online CPUs (>= 1; hardware_concurrency fallback).
    int ncpu = 1;
    /// numa_of_cpu[c]: NUMA node of CPU c (all 0 without sysfs).
    std::vector<int> numa_of_cpu;
    /// node_cpus[n]: CPUs of NUMA node n, ascending.
    std::vector<std::vector<int>> node_cpus;
    /// CPU ids grouped by NUMA node (node 0's CPUs, then node 1's,
    /// ...): the placement allocation order.
    std::vector<int> cpu_order;

    int num_numa_nodes() const
    {
        return static_cast<int>(node_cpus.size());
    }

    /// The process-wide cached instance (discovery runs once).
    /// Cold startup code, hence exempt from the hot-path allocation
    /// lint (discovery necessarily reads sysfs and builds vectors).
    MSGPROXY_HOT_EXEMPT static const Topology& get();
};

/// Parses a sysfs cpulist string ("0-3,8,10-11") into CPU ids.
/// Exposed for tests; returns an empty vector on malformed input.
MSGPROXY_HOT_EXEMPT std::vector<int> parse_cpulist(const char* s);

/// Pins the calling thread to `cpu`. Returns false when pinning is
/// unsupported on this platform or the syscall fails (never fatal:
/// placement is an optimization, not a correctness requirement).
MSGPROXY_HOT_EXEMPT bool pin_self_to_cpu(int cpu);

/// Reserves `count` consecutive slots of Topology::cpu_order from a
/// process-global cursor and returns the chosen CPUs. Distinct Nodes
/// in one process get disjoint CPU sets until the host is full, and
/// one Node's proxies stay NUMA-adjacent (consecutive in the
/// node-grouped order). Thread-safe.
MSGPROXY_HOT_EXEMPT std::vector<int> reserve_cpus(int count);

} // namespace topo

#endif // MSGPROXY_UTIL_TOPOLOGY_H
