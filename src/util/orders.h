/// \file
/// Named memory orderings: the single place a `std::memory_order_*`
/// literal may be spelled outside the SPSC core.
///
/// The msgproxy-atomics-order check (tools/lint/) forbids raw
/// memory-order literals everywhere except src/spsc/ (whose `Orders`
/// policy — spsc::DefaultOrders — aliases these constants, so the
/// PR 1 order-weakening mutation tests keep covering the real
/// shipped values), src/check/atomic.h (the instrumented atomic that
/// interprets orders), and this header. Everything else names the
/// *intent* of an ordering and gets the strength from here; an
/// ordering bug is then a one-line diff in one file instead of a
/// needle in 80 call sites.
///
/// Vocabulary:
///  - publish/observe: the ownership-transfer pair. A `publish`
///    store makes everything written before it visible to the thread
///    whose `observe` load sees the stored value (SPSC slot flags,
///    completion Flag increments, running_/dead flags).
///  - handoff: one RMW that both observes the previous owner's
///    writes and publishes its own (ThreadOwner's bind CAS).
///  - counter: monotonic statistics and configuration toggles read
///    for their value only — no ordering relied upon, by design.
///  - fenced: a plain-data access whose ordering is supplied by an
///    adjacent explicit fence or a later publish in the same
///    protocol (the seqlock slot words in obs::TraceRing).
///  - barrier: full sequential consistency, for the rare
///    Dekker-style protocols where store/load order between two
///    *different* locations must be total (the doorbell-mask probe
///    in proxy::Node::note_command_posted).

#ifndef MSGPROXY_UTIL_ORDERS_H
#define MSGPROXY_UTIL_ORDERS_H

#include <atomic>

namespace mp::ord {

inline constexpr std::memory_order publish = std::memory_order_release;
inline constexpr std::memory_order observe = std::memory_order_acquire;
inline constexpr std::memory_order handoff = std::memory_order_acq_rel;
inline constexpr std::memory_order counter = std::memory_order_relaxed;
inline constexpr std::memory_order fenced = std::memory_order_relaxed;
inline constexpr std::memory_order barrier = std::memory_order_seq_cst;

} // namespace mp::ord

#endif // MSGPROXY_UTIL_ORDERS_H
