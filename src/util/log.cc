#include "util/log.h"

#include <atomic>
#include <cstring>

#include "util/orders.h"

namespace mp {

namespace {

LogLevel
initial_level()
{
    const char* env = std::getenv("MSGPROXY_LOG");
    if (env == nullptr)
        return LogLevel::kWarn;
    if (std::strcmp(env, "quiet") == 0)
        return LogLevel::kQuiet;
    if (std::strcmp(env, "inform") == 0)
        return LogLevel::kInform;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::kDebug;
    return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};

} // namespace

LogLevel
log_level()
{
    return g_level.load(mp::ord::counter);
}

void
set_log_level(LogLevel level)
{
    g_level.store(level, mp::ord::counter);
}

namespace detail {

void
emit(const char* severity, const std::string& msg)
{
    std::fprintf(stderr, "%s: %s\n", severity, msg.c_str());
}

void
panic_impl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatal_impl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

} // namespace detail

void
warn(const std::string& msg)
{
    if (log_level() >= LogLevel::kWarn)
        detail::emit("warn", msg);
}

void
inform(const std::string& msg)
{
    if (log_level() >= LogLevel::kInform)
        detail::emit("info", msg);
}

void
debug(const std::string& msg)
{
    if (log_level() >= LogLevel::kDebug)
        detail::emit("debug", msg);
}

} // namespace mp
