/// \file
/// ASCII table and CSV emission for the benchmark harness.
///
/// Every bench binary regenerates one table or figure from the paper;
/// TablePrinter renders the human-readable form and can mirror the
/// same rows to a CSV file for plotting.

#ifndef MSGPROXY_UTIL_TABLE_H
#define MSGPROXY_UTIL_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace mp {

/// Builds a column-aligned ASCII table incrementally and prints it.
class TablePrinter
{
  public:
    /// Creates a table with the given caption (printed above the rows).
    explicit TablePrinter(std::string caption);

    /// Sets the header row. Must be called before add_row.
    void set_header(std::vector<std::string> cols);

    /// Appends one data row; the column count must match the header.
    void add_row(std::vector<std::string> cols);

    /// Convenience: formats a double with the given precision.
    static std::string num(double v, int precision = 2);

    /// Convenience: formats an integer.
    static std::string num(int64_t v);

    /// Renders the table to `out` (defaults to stdout).
    void print(std::FILE* out = stdout) const;

    /// Writes the header and rows as CSV to `path`. Returns false and
    /// warns (does not abort) if the file cannot be opened.
    bool write_csv(const std::string& path) const;

  private:
    std::string caption_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace mp

#endif // MSGPROXY_UTIL_TABLE_H
