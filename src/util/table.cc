#include "util/table.h"

#include <algorithm>
#include <cinttypes>

#include "util/log.h"

namespace mp {

TablePrinter::TablePrinter(std::string caption) : caption_(std::move(caption))
{
}

void
TablePrinter::set_header(std::vector<std::string> cols)
{
    header_ = std::move(cols);
}

void
TablePrinter::add_row(std::vector<std::string> cols)
{
    MP_CHECK(cols.size() == header_.size(),
             "row width " << cols.size() << " != header width "
                          << header_.size());
    rows_.push_back(std::move(cols));
}

std::string
TablePrinter::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::num(int64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    return buf;
}

void
TablePrinter::print(std::FILE* out) const
{
    std::vector<size_t> width(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::fprintf(out, "\n%s\n", caption_.c_str());
    auto rule = [&] {
        for (size_t c = 0; c < width.size(); ++c) {
            std::fprintf(out, "+%s", std::string(width[c] + 2, '-').c_str());
        }
        std::fprintf(out, "+\n");
    };
    auto line = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            std::fprintf(out, "| %-*s ", static_cast<int>(width[c]),
                         row[c].c_str());
        }
        std::fprintf(out, "|\n");
    };
    rule();
    line(header_);
    rule();
    for (const auto& row : rows_)
        line(row);
    rule();
}

bool
TablePrinter::write_csv(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        warn("cannot open CSV output file " + path);
        return false;
    }
    auto emit = [&](const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            std::fprintf(f, "%s%s", c ? "," : "", row[c].c_str());
        }
        std::fprintf(f, "\n");
    };
    emit(header_);
    for (const auto& row : rows_)
        emit(row);
    std::fclose(f);
    return true;
}

} // namespace mp
