/// \file
/// Static-analysis annotations of the message-proxy runtime.
///
/// Two families live here:
///
/// 1. msgproxy-lint markers. `tools/lint/` (the clang-tidy plugin
///    and the portable `msgproxy_lint` analyzer — see DESIGN.md
///    "Static analysis") keys its checks off these macros. Under
///    clang they expand to `__attribute__((annotate(...)))` so the
///    AST-level checks see them; under gcc they expand to nothing
///    and the portable analyzer reads them straight from the source
///    text. Either way they cost zero code.
///
///    - MSGPROXY_HOT_PATH: this function is on the allocation-free
///      wire path (proxy drain loop, submit, reliability tx/rx, obs
///      record). msgproxy-hot-path-alloc walks the call graph from
///      every such root and flags reachable heap allocation, mutex
///      locking, and blocking sleeps/syscalls.
///    - MSGPROXY_HOT_EXEMPT: audited boundary — the hot-path walk
///      does not descend into this function. Reserve it for
///      functions whose slow behaviour is the point (Backoff::idle's
///      stage-4 sleep) or that run only on already-failed paths.
///    - MSGPROXY_PROXY_CTX: this function runs on a proxy thread
///      (or is reachable only from one). msgproxy-proxy-owned allows
///      it to touch proxy-owned fields.
///    - MSGPROXY_QUIESCENT: this function runs only while the proxy
///      threads are quiescent (setup before start(), teardown after
///      stop()), so proxy-owned access is safe despite running on a
///      control thread.
///    - MSGPROXY_PROXY_OWNED: field marker — after start() this
///      field belongs to exactly one proxy thread. Access outside
///      MSGPROXY_PROXY_CTX / MSGPROXY_QUIESCENT functions is
///      flagged. The static mirror of check::ThreadOwner.
///
/// 2. Clang Thread Safety Analysis (-Wthread-safety) wrappers, MP_*.
///    Applied to the mutex-using cold paths (the deterministic
///    scheduler in src/check/, node setup/teardown). No-ops outside
///    clang.

#ifndef MSGPROXY_UTIL_ANNOTATIONS_H
#define MSGPROXY_UTIL_ANNOTATIONS_H

#if defined(__clang__)
#define MSGPROXY_ANNOTATE(text) __attribute__((annotate(text)))
#else
#define MSGPROXY_ANNOTATE(text)
#endif

#define MSGPROXY_HOT_PATH MSGPROXY_ANNOTATE("msgproxy::hot_path")
#define MSGPROXY_HOT_EXEMPT MSGPROXY_ANNOTATE("msgproxy::hot_exempt")
#define MSGPROXY_PROXY_CTX MSGPROXY_ANNOTATE("msgproxy::proxy_ctx")
#define MSGPROXY_QUIESCENT MSGPROXY_ANNOTATE("msgproxy::quiescent")
#define MSGPROXY_PROXY_OWNED MSGPROXY_ANNOTATE("msgproxy::proxy_owned")

// ---- Clang Thread Safety Analysis ---------------------------------
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html — the macro
// set is the documented idiom, prefixed MP_ to stay out of other
// libraries' namespaces. CMake adds -Wthread-safety when the
// compiler is clang; gcc builds compile the attributes away.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MP_TSA(x) __attribute__((x))
#endif
#endif
#ifndef MP_TSA
#define MP_TSA(x)
#endif

#define MP_CAPABILITY(x) MP_TSA(capability(x))
#define MP_SCOPED_CAPABILITY MP_TSA(scoped_lockable)
#define MP_GUARDED_BY(x) MP_TSA(guarded_by(x))
#define MP_PT_GUARDED_BY(x) MP_TSA(pt_guarded_by(x))
#define MP_REQUIRES(...) MP_TSA(requires_capability(__VA_ARGS__))
#define MP_ACQUIRE(...) MP_TSA(acquire_capability(__VA_ARGS__))
#define MP_RELEASE(...) MP_TSA(release_capability(__VA_ARGS__))
#define MP_TRY_ACQUIRE(...) MP_TSA(try_acquire_capability(__VA_ARGS__))
#define MP_EXCLUDES(...) MP_TSA(locks_excluded(__VA_ARGS__))
#define MP_NO_TSA MP_TSA(no_thread_safety_analysis)

#endif // MSGPROXY_UTIL_ANNOTATIONS_H
