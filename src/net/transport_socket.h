/// \file
/// The socket transport: real TCP or Unix-domain stream links
/// between proxies, one full-duplex socket per (local proxy, peer
/// proxy) pair, driven entirely by the owning proxy thread through a
/// per-proxy nonblocking epoll event loop.
///
/// Framing: [u32 body_len][body], body = the packet header
/// (net::kWireHeaderBytes, contiguous by layout) followed by exactly
/// wire_payload_len() payload bytes. Native byte order — links
/// assume architecture-homogeneous peers, like the SMP cluster of
/// the paper.
///
/// Custody across the syscall boundary: send_burst borrows the
/// proxy's packet until its frame is fully written (or the link
/// dies), then surrenders the pointer through poll_recycled — the
/// proxy's drain_returns applies tx_state exactly as for SPSC return
/// rings. Received frames are copied into link-owned rx slabs
/// (grown in chunks, never individually freed), handed to the proxy
/// via poll_recv and returned with release_rx: the transport's rx
/// memory can never leak into the proxy's pool accounting.
///
/// Loss model: a healthy stream socket neither drops nor reorders,
/// so the reliability layer (PR 4) sees a clean link and its window
/// simply flow-controls; on connection death (EOF/ECONNRESET/EPIPE)
/// the link reports peer_closed() and the proxy runs the same
/// link-death path as retry exhaustion.

#ifndef MSGPROXY_NET_TRANSPORT_SOCKET_H
#define MSGPROXY_NET_TRANSPORT_SOCKET_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/transport.h"

namespace net {

class SocketTransport;

/// One socket-backed link. Owned and driven by exactly one proxy
/// thread after wiring; the fd is nonblocking, so every hook
/// returns without sleeping.
class SocketLink final : public TransportLink
{
  public:
    SocketLink(int peer_node, int peer_proxy, int local_proxy,
               int fd, size_t depth);
    ~SocketLink() override;

    SocketLink(const SocketLink&) = delete;
    SocketLink& operator=(const SocketLink&) = delete;

    MSGPROXY_HOT_PATH size_t send_burst(const PacketRef* refs,
                                        size_t n) override;
    MSGPROXY_HOT_PATH bool tx_full() const override;
    MSGPROXY_HOT_PATH size_t poll_recv(PacketRef* out,
                                       size_t max) override;
    MSGPROXY_HOT_PATH void release_rx(PacketRef ref) override;
    MSGPROXY_HOT_PATH size_t poll_recycled(Packet** out,
                                           size_t max) override;
    /// Flush pending writes and drain readable bytes once.
    MSGPROXY_HOT_PATH void pump() override;
    bool peer_closed() const override { return peer_closed_; }
    size_t reclaim_tx(Packet** out, size_t max) override;

  private:
    friend class SocketTransport;

    /// Frames batched into one writev call.
    static constexpr size_t kWriteBatch = 16;

    /// One queued outbound frame. `prefix` is the length word;
    /// `done` counts bytes of (4 + prefix) already on the wire.
    struct TxItem
    {
        PacketRef ref;
        uint32_t prefix;
        uint32_t done;
    };

    /// writev as much of txq_ as the socket accepts right now.
    MSGPROXY_HOT_PATH void flush_tx();
    /// read() into rbuf_ and parse complete frames into rx slabs.
    MSGPROXY_HOT_PATH void fill_rx();
    /// Parse complete frames out of rbuf_ (backpressure-aware).
    MSGPROXY_HOT_PATH void parse_frames();
    /// Grab an rx slab slot; nullptr when backpressured.
    MSGPROXY_HOT_PATH Packet* rx_slot();
    /// Chunked slab growth (teardown frees whole chunks). The one
    /// sanctioned allocation site of the rx path, amortized and
    /// bounded by the backpressure cap.
    MSGPROXY_HOT_EXEMPT void grow_rx();
    /// The stream broke: surrender every borrowed tx packet so
    /// drain_returns can retire it, and stop all IO.
    void mark_closed();

    int fd_;
    size_t depth_; ///< tx-queue / rx-ready cap (frames)
    bool peer_closed_ = false;

    // ---- tx ----
    std::deque<TxItem> txq_;
    std::deque<Packet*> recycled_;

    // ---- rx ----
    std::vector<std::unique_ptr<Packet[]>> slabs_;
    size_t slab_slots_ = 0;
    std::vector<Packet*> free_;
    std::deque<PacketRef> rx_ready_;
    std::unique_ptr<uint8_t[]> rbuf_;
    size_t rfill_ = 0;
};

/// The socket backend. listen() binds and runs an acceptor thread
/// that performs the wiring handshake; connect() synchronously dials
/// the full (local proxies x peer proxies) link matrix. pump(p)
/// epoll-waits (zero timeout) proxy p's fds and flushes its pending
/// writes — called once per proxy-loop iteration.
class SocketTransport final : public Transport
{
  public:
    SocketTransport(const TransportParams& params,
                    TransportHost* host);
    ~SocketTransport() override;

    TransportKind kind() const override { return TransportKind::kSocket; }

    void listen(const Addr& addr) override;
    void connect(const Addr& addr) override;
    MSGPROXY_HOT_PATH void pump(int proxy) override;
    bool needs_pump() const override { return true; }
    void links_for(int proxy,
                   std::vector<TransportLink*>& out) override;
    /// Crash-restart recovery (quiescent): closes and unregisters
    /// every link toward the peer so a restarted incarnation can
    /// re-dial. Defunct link objects stay in links_ (stable
    /// addresses) until transport destruction.
    void forget_peer(int peer_node) override;
    void stop() override;

  private:
    void acceptor_main();
    /// Registers a freshly handshaken fd as a link (any thread;
    /// wiring-phase only).
    void add_link(int fd, int peer_node, int peer_proxy,
                  int local_proxy);

    TransportParams params_;
    TransportHost* host_;
    int listen_fd_ = -1;
    std::thread acceptor_;
    std::atomic<bool> stopping_{false};
    /// Guards links_/by_proxy_/epoll registration during wiring
    /// (acceptor thread vs connecting thread). Proxy threads read
    /// these structures lock-free: wiring completes before start().
    std::mutex mu_;
    std::deque<SocketLink> links_;
    std::vector<std::vector<SocketLink*>> by_proxy_;
    std::vector<int> epfds_; ///< one epoll instance per proxy
};

} // namespace net

#endif // MSGPROXY_NET_TRANSPORT_SOCKET_H
