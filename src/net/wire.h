/// \file
/// Wire-level packet representation shared by the proxy runtime and
/// the transport backends: the packet header + payload layout, the
/// sender-private custody bits, the provenance-tagged packet
/// reference, and the SPSC channel (forward ring + slot-return ring)
/// that in-process transports are built from.
///
/// These types used to be private to proxy::Node; the transport API
/// (net/transport.h) moves packets across an interface boundary —
/// possibly a syscall boundary — so the wire format and the custody
/// contract live here, below both layers.

#ifndef MSGPROXY_NET_WIRE_H
#define MSGPROXY_NET_WIRE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "net/reliable.h"
#include "spsc/ring_queue.h"
#include "util/annotations.h"

namespace net {

/// Maximum payload carried by one wire packet.
inline constexpr uint32_t kMtu = 1024;

struct Packet
{
    enum class Kind : uint8_t {
        kPutData,   ///< payload -> segment memory
        kGetReq,    ///< request for data
        kGetData,   ///< reply payload -> CCB destination
        kEnqData,   ///< payload -> endpoint receive ring
        kRqEnqData, ///< payload -> proxy-managed remote queue
        kRqDeqReq,  ///< dequeue request (ccb identifies requester)
        kRqDeqData, ///< dequeue reply (flags bit1: queue was empty)
        kAck,       ///< standalone cumulative ack (unsequenced)
        kHeartbeat  ///< liveness probe (unsequenced, carries an ack)
    };
    Kind kind;
    uint8_t flags = 0; ///< bit0: last fragment
    int32_t src_node;
    int32_t src_user;
    uint16_t seg;
    uint32_t len;
    uint64_t off;
    uint64_t ccb;      ///< requester cookie for GET replies / acks
    // ---- reliability header (inter-node links only) ----
    /// Per-link sequence number, 1-based and FIFO per (sending
    /// proxy, receiving proxy) pair. 0: unsequenced (standalone
    /// acks, reliability-disabled traffic, loopback).
    uint64_t seq;
    /// Piggybacked cumulative ack for the link's reverse
    /// direction (0: nothing to ack — acks start at seq 1).
    uint64_t ack;
    /// Trace id of the originating command (0: untraced).
    /// Observability metadata: excluded from the checksum like
    /// tx_state, copied by clone_packet like every header field.
    uint64_t tid;
    /// Header checksum over kind/flags/src/seg/len/off/ccb/seq/
    /// ack (net::crc_fields). Excludes the payload and tx_state.
    uint32_t crc;
    /// Sender-private custody bits (kTx*). Never read by the
    /// receiver and excluded from the checksum: the sending proxy
    /// mutates it while the packet sits in rings (or transport
    /// write queues) it no longer owns, which is safe only because
    /// nobody else touches the byte. A transport serializing the
    /// header transmits whatever value is present; the receiver
    /// overwrites it on arrival.
    uint8_t tx_state;
    uint8_t payload[kMtu];
};

/// Packet::tx_state bits (sender-side custody tracking).
enum : uint8_t {
    /// Retained in a SenderWindow awaiting ack; storage must not
    /// be recycled by the return-ring drain.
    kTxRetained = 1,
    /// The pointer currently sits in a forward ring, a reorder
    /// stash, or a transport write queue: retransmission must skip
    /// it so at most one copy of a retained pointer is ever in
    /// flight.
    kTxInFlight = 2,
    /// Heap-fallback allocation: recycle by delete, not pool.
    kTxHeap = 4
};

/// A wire packet plus its provenance. Pooled packets live in the
/// sending proxy's slab and are recycled through the link's return
/// path; heap packets (pool-miss fallback) are deleted by whoever
/// retires them. The tag rides in the ring slot — never in the
/// packet — so cleanup can decide ownership without dereferencing
/// memory that may belong to a destroyed peer.
struct PacketRef
{
    Packet* p = nullptr;
    bool heap = false;
    /// Mirrors kTxRetained at send time, riding in the ring slot
    /// so the consumer (and teardown) can decide ownership
    /// without dereferencing packet memory that may belong to a
    /// destroyed peer: a retained packet is owned by its sender's
    /// window, never by whoever pops the ref.
    bool retained = false;
};

/// Bytes of Packet actually meaningful on the wire before the
/// payload: everything up to and including tx_state. A serializing
/// transport frames exactly [header][payload prefix]; the layout is
/// contiguous by construction.
inline constexpr size_t kWireHeaderBytes = offsetof(Packet, payload);

/// Payload bytes a packet of this kind actually carries on the wire.
/// Request kinds (and acks) reuse `len` as a byte *count* — how much
/// the peer should send back — with an empty payload; taking it as a
/// payload size would overrun the kMtu buffer.
MSGPROXY_HOT_PATH inline uint32_t
wire_payload_len(const Packet& p)
{
    if (p.kind == Packet::Kind::kGetReq ||
        p.kind == Packet::Kind::kRqDeqReq ||
        p.kind == Packet::Kind::kAck ||
        p.kind == Packet::Kind::kHeartbeat)
        return 0;
    return p.len < kMtu ? p.len : kMtu;
}

/// Header checksum of a wire packet (tx_state/payload excluded): the
/// custody byte is mutated by the sender while the packet is in
/// flight and the payload is left to end-to-end validation, so both
/// stay outside the fold.
MSGPROXY_HOT_PATH inline uint32_t
packet_crc(const Packet& p)
{
    return net::crc_fields(
        {static_cast<uint64_t>(static_cast<uint8_t>(p.kind)) |
             (static_cast<uint64_t>(p.flags) << 8) |
             (static_cast<uint64_t>(p.seg) << 16) |
             (static_cast<uint64_t>(static_cast<uint32_t>(p.src_node))
              << 32),
         static_cast<uint64_t>(static_cast<uint32_t>(p.src_user)) |
             (static_cast<uint64_t>(p.len) << 32),
         p.off, p.ccb, p.seq, p.ack});
}

/// One direction of one (sending proxy, receiving proxy) pair: the
/// forward packet ring plus the slot-return ring that recycles
/// consumed pooled packets back to the producer. The return ring
/// holds at least the producer's whole pool, so a return push can
/// never fail (the pool bounds the number of pooled packets in
/// flight).
struct Channel
{
    Channel(size_t depth, size_t ret_cap) : ring(depth), ret(ret_cap)
    {
    }

    /// Frees heap-fallback packets still queued at teardown.
    /// Packets still queued here: heap-fallback ones are owned by
    /// whoever retires them — that is now us. Pooled ones belong to
    /// the producer's slab, which `retain` pins to this channel's
    /// lifetime; the tag in the ring slot still lets us skip them
    /// without a dereference. Retained packets are owned by their
    /// sender's window (which frees heap ones in the Node
    /// destructor), never by the ring.
    MSGPROXY_QUIESCENT ~Channel()
    {
        PacketRef r;
        while (ring.try_pop(r)) {
            if (r.heap && !r.retained)
                delete r.p;
        }
    }

    /// Pins producer-owned storage (a packet-pool slab) to this
    /// channel's lifetime. A crashing producer deposits its slab
    /// here before dying so the consumer can keep dereferencing
    /// packets it has not yet popped; the memory is released when
    /// the last shared_ptr to the channel drops (the survivor's
    /// forget_peer). Teardown-only, hence the lock is never
    /// contended on the wire path.
    MSGPROXY_QUIESCENT void
    retain(std::shared_ptr<void> storage)
    {
        std::lock_guard<std::mutex> lk(keep_mu_);
        keep_.push_back(std::move(storage));
    }

    spsc::DynRingQueue<PacketRef> ring;
    spsc::DynPtrRing<Packet*> ret;

  private:
    std::mutex keep_mu_;
    std::vector<std::shared_ptr<void>> keep_;
};

} // namespace net

#endif // MSGPROXY_NET_WIRE_H
