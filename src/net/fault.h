/// \file
/// Deterministic fault injection for the inter-node wire path.
///
/// The paper assumes a lossless SP-switch fabric; the proxy runtime's
/// reliability layer (net/reliable.h, wired into proxy::Node) exists
/// precisely because real interconnects are not. To prove the layer
/// works, tests need faults they can reproduce bit-for-bit: every
/// injector here draws from the repo's deterministic xoshiro256**
/// generator, seeded from a user seed salted per channel, so a chaos
/// run at seed S replays the exact same drop/duplicate/reorder/
/// corrupt schedule on every host and build mode.
///
/// Two entry points:
///  - FaultInjector: the per-channel decision engine the proxy
///    runtime consults on every outbound packet (the proxy performs
///    the packet cloning/stashing itself because duplicated and
///    corrupted copies must come from its packet pool).
///  - FaultyChannel: a self-contained lossy wrapper over any SPSC
///    ring of copyable values, used by the protocol property tests to
///    model-check the sender/receiver state machines without threads.

#ifndef MSGPROXY_NET_FAULT_H
#define MSGPROXY_NET_FAULT_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/annotations.h"
#include "util/rng.h"

namespace net {

/// Per-channel fault rates. All rates are independent probabilities
/// in [0, 1] evaluated once per offered packet, in the order drop,
/// duplicate, reorder, corrupt (a packet suffers at most one fault).
/// Defaults to the lossless fabric (all zero, injector disabled).
///
/// Injected via proxy::NodeConfig::fault_plan: the plan applies to
/// every inter-node channel the node's proxies produce, each with its
/// own PRNG stream (seed salted by node, proxy and channel), so two
/// channels never share a fault schedule but a full run is still one
/// seed away from reproduction.
struct FaultPlan
{
    uint64_t seed = 1;
    double drop = 0.0;      ///< packet vanishes in transit
    double duplicate = 0.0; ///< packet arrives twice
    double reorder = 0.0;   ///< packet overtaken by later traffic
    double corrupt = 0.0;   ///< packet arrives with flipped header bits
    /// Reorder hold: a reordered packet is released after 1..depth
    /// subsequent service ticks of its channel.
    uint32_t reorder_depth = 4;

    /// True when any fault rate is nonzero.
    bool
    enabled() const
    {
        return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 ||
               corrupt > 0.0;
    }
};

/// What the injector decided for one offered packet.
enum class FaultAction : uint8_t {
    kDeliver,
    kDrop,
    kDuplicate,
    kReorder,
    kCorrupt
};

/// Human-readable action name (tests and failure logs).
inline const char*
fault_action_name(FaultAction a)
{
    switch (a) {
      case FaultAction::kDeliver: return "deliver";
      case FaultAction::kDrop: return "drop";
      case FaultAction::kDuplicate: return "duplicate";
      case FaultAction::kReorder: return "reorder";
      case FaultAction::kCorrupt: return "corrupt";
    }
    return "<invalid>";
}

/// Per-channel fault decision engine. Single-threaded: owned and
/// consulted only by the sending side of one channel.
class FaultInjector
{
  public:
    /// Disabled injector (every packet delivers).
    FaultInjector() : rng_(0) {}

    /// Engine for one channel: `salt` decorrelates channels sharing
    /// one plan (use a stable channel identity, e.g. node/proxy ids).
    FaultInjector(const FaultPlan& plan, uint64_t salt)
        : plan_(plan),
          rng_(plan.seed * 0x9e3779b97f4a7c15ull ^ salt)
    {
    }

    bool enabled() const { return plan_.enabled(); }

    const FaultPlan& plan() const { return plan_; }

    /// Draws the fate of the next offered packet.
    MSGPROXY_HOT_PATH FaultAction
    next()
    {
        if (!enabled())
            return FaultAction::kDeliver;
        const double u = rng_.next_double();
        double edge = plan_.drop;
        if (u < edge)
            return FaultAction::kDrop;
        edge += plan_.duplicate;
        if (u < edge)
            return FaultAction::kDuplicate;
        edge += plan_.reorder;
        if (u < edge)
            return FaultAction::kReorder;
        edge += plan_.corrupt;
        if (u < edge)
            return FaultAction::kCorrupt;
        return FaultAction::kDeliver;
    }

    /// Uniform integer in [0, bound) from the channel's stream, for
    /// picking corrupted bits and reorder delays.
    MSGPROXY_HOT_PATH uint64_t
    rand_below(uint64_t bound)
    {
        return rng_.next_below(bound);
    }

    /// Reorder hold duration for a freshly stashed packet: 1..depth
    /// service ticks.
    MSGPROXY_HOT_PATH uint32_t
    reorder_delay()
    {
        return 1 + static_cast<uint32_t>(
                       rng_.next_below(plan_.reorder_depth));
    }

  private:
    FaultPlan plan_{};
    mp::Rng rng_;
};

/// A lossy wrapper around an SPSC ring of copyable values: the
/// `net::FaultyChannel` the protocol tests place between a model
/// sender and receiver. Push-side only — the consumer keeps popping
/// the underlying ring directly, so the wrapper stays single-threaded
/// with the producer and every fault decision is deterministic in
/// program order.
///
/// `Ring` needs bool try_push(T). Corruption is delegated to a caller
/// functor because only the caller knows which bits are covered by
/// its checksum.
template <typename T, typename Ring>
class FaultyChannel
{
  public:
    /// Counters of the faults actually applied.
    struct Stats
    {
        uint64_t offered = 0;
        uint64_t dropped = 0;
        uint64_t duplicated = 0;
        uint64_t reordered = 0;
        uint64_t corrupted = 0;
    };

    FaultyChannel(Ring& ring, const FaultPlan& plan, uint64_t salt = 0)
        : ring_(ring), inj_(plan, salt)
    {
    }

    /// Offers one value; applies the injector's decision. `corrupt`
    /// mutates the delivered copy when the corrupt fault fires.
    /// Returns false when the underlying ring rejected a delivery
    /// (ring full — the value is lost, like a switch with no buffer).
    template <typename CorruptFn>
    MSGPROXY_HOT_PATH bool
    send(T v, CorruptFn&& corrupt)
    {
        ++stats_.offered;
        bool ok = true;
        switch (inj_.next()) {
          case FaultAction::kDrop:
            ++stats_.dropped;
            break;
          case FaultAction::kDuplicate:
            ++stats_.duplicated;
            ok = ring_.try_push(v) && ring_.try_push(std::move(v));
            break;
          case FaultAction::kReorder:
            ++stats_.reordered;
            stash_.push_back(
                Held{std::move(v), inj_.reorder_delay()});
            break;
          case FaultAction::kCorrupt: {
            ++stats_.corrupted;
            corrupt(v);
            ok = ring_.try_push(std::move(v));
            break;
          }
          case FaultAction::kDeliver:
            ok = ring_.try_push(std::move(v));
            break;
        }
        return tick() && ok;
    }

    /// send() without a checksum model: corruption degrades to drop.
    MSGPROXY_HOT_PATH bool
    send(T v)
    {
        ++stats_.offered;
        switch (inj_.next()) {
          case FaultAction::kDrop:
          case FaultAction::kCorrupt:
            ++stats_.dropped;
            return tick();
          case FaultAction::kDuplicate:
            ++stats_.duplicated;
            return ring_.try_push(v) && ring_.try_push(std::move(v)) &&
                   tick();
          case FaultAction::kReorder:
            ++stats_.reordered;
            stash_.push_back(Held{std::move(v), inj_.reorder_delay()});
            return tick();
          case FaultAction::kDeliver:
            break;
        }
        return ring_.try_push(std::move(v)) && tick();
    }

    /// Ages the reorder stash one service tick, releasing due values
    /// (also called by every send). Returns false on a failed release
    /// push.
    bool
    tick()
    {
        bool ok = true;
        for (size_t i = 0; i < stash_.size();) {
            if (--stash_[i].delay == 0) {
                ok = ring_.try_push(std::move(stash_[i].v)) && ok;
                stash_[i] = std::move(stash_.back());
                stash_.pop_back();
            } else {
                ++i;
            }
        }
        return ok;
    }

    /// Releases everything still stashed (end of a schedule).
    bool
    flush()
    {
        bool ok = true;
        while (!stash_.empty()) {
            ok = ring_.try_push(std::move(stash_.back().v)) && ok;
            stash_.pop_back();
        }
        return ok;
    }

    size_t stashed() const { return stash_.size(); }

    const Stats& stats() const { return stats_; }

  private:
    struct Held
    {
        T v;
        uint32_t delay;
    };

    Ring& ring_;
    FaultInjector inj_;
    std::vector<Held> stash_;
    Stats stats_{};
};

} // namespace net

#endif // MSGPROXY_NET_FAULT_H
