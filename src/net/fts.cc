#include "net/fts.h"

namespace net {

const char*
peer_state_name(PeerState s)
{
    switch (s) {
      case PeerState::kAlive: return "alive";
      case PeerState::kSuspect: return "suspect";
      case PeerState::kDead: return "dead";
    }
    return "<invalid>";
}

} // namespace net
