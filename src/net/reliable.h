/// \file
/// The reliability layer of the inter-node wire protocol: per-link
/// sequencing, cumulative acknowledgement, go-back-N retransmission
/// with exponential backoff, and the header checksum.
///
/// The state machines are deliberately decoupled from the proxy
/// runtime: a SenderWindow tracks (seq -> opaque Handle) plus timing,
/// a ReceiverSeq classifies arriving sequence numbers, and neither
/// touches packets, rings or clocks directly. proxy::Node embeds one
/// pair per (sending proxy, receiving proxy) link and keeps custody
/// of the actual pooled packets; the property tests drive the same
/// machines single-threaded through a net::FaultyChannel with a fake
/// clock, which is what makes the protocol model-checkable.
///
/// Protocol summary (see DESIGN.md "reliability layer"):
///  - every data packet on a link carries seq (1-based, per link,
///    FIFO), a piggybacked cumulative ack for the reverse direction,
///    and a header checksum;
///  - the receiver delivers seq == next expected, re-acks duplicates
///    (seq below), and drops reordered/gapped packets (seq above) —
///    go-back-N keeps the receiver stateless beyond one counter;
///  - the sender retains every unacked packet, retransmits the whole
///    eligible window when the RTO expires, doubles the RTO per
///    consecutive timeout, and declares the peer unreachable after
///    max_retries consecutive timeouts without progress.

#ifndef MSGPROXY_NET_RELIABLE_H
#define MSGPROXY_NET_RELIABLE_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <initializer_list>

#include "util/annotations.h"

namespace net {

/// Tuning knobs of the reliability layer (proxy::NodeConfig embeds
/// one; both ends of a connection must agree on `enabled`).
struct ReliabilityParams
{
    /// Master switch. Disabled: packets go out raw (no seq, no
    /// retention, no retransmit) and arriving checksums are still
    /// verified but losses are permanent — the lossless-fabric
    /// assumption of the paper, kept for ablation and for the
    /// single-drop regression test.
    bool enabled = true;
    /// Max unacked packets per link; a full window backpressures the
    /// sending proxy. Keep window * active links <= packet pool, or
    /// retention spills sends to the heap.
    uint32_t window = 256;
    /// Receiver emits a standalone ack after this many unacked
    /// in-order deliveries (piggybacked acks ride out earlier for
    /// free on any reverse traffic).
    uint32_t ack_every = 32;
    /// Receiver also flushes pending acks after this many consecutive
    /// idle polls of its proxy loop, bounding ack latency (and thus
    /// sender-window residency) when reverse traffic stops.
    uint32_t ack_idle_polls = 64;
    /// Base retransmission timeout and its exponential-backoff cap.
    uint64_t rto_ns = 200 * 1000;
    uint64_t rto_max_ns = 10 * 1000 * 1000;
    /// Consecutive timeouts without ack progress before the peer is
    /// declared unreachable (SubmitStatus::kPeerUnreachable).
    uint32_t max_retries = 30;
};

/// Header checksum: folds the listed 64-bit field words with a
/// splitmix64-style mixer. Not cryptographic — it exists to catch
/// transit corruption, and a single flipped bit anywhere in the
/// folded words flips the result with overwhelming probability.
MSGPROXY_HOT_PATH inline uint32_t
crc_fields(std::initializer_list<uint64_t> words)
{
    uint64_t h = 0x9e3779b97f4a7c15ull;
    for (uint64_t w : words) {
        h ^= w + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
        h *= 0xbf58476d1ce4e5b9ull;
        h ^= h >> 27;
    }
    h *= 0x94d049bb133111ebull;
    return static_cast<uint32_t>(h ^ (h >> 32));
}

/// Sender half of one directed link: seq assignment, the unacked
/// window (seq -> Handle), RTO bookkeeping. `Handle` is whatever the
/// embedder retains per packet (the proxy uses its PacketRef; the
/// model tests use ints). Time is an opaque monotonic nanosecond
/// count supplied by the caller.
template <typename Handle>
class SenderWindow
{
  public:
    explicit SenderWindow(const ReliabilityParams& p) : p_(p) {}

    /// True when the window holds no unacked packets.
    bool empty() const { return entries_.empty(); }

    size_t size() const { return entries_.size(); }

    /// True when another send must wait for ack progress.
    bool full() const { return entries_.size() >= p_.window; }

    /// Records a fresh send: assigns and returns the next sequence
    /// number, retains `h`, and arms the RTO if the window was empty.
    MSGPROXY_HOT_PATH uint64_t
    send(Handle h, uint64_t now)
    {
        if (entries_.empty()) {
            rto_cur_ = p_.rto_ns;
            deadline_ = now + rto_cur_;
        }
        entries_.push_back(Entry{next_seq_, h});
        return next_seq_++;
    }

    /// Applies a cumulative ack: releases every retained handle with
    /// seq <= ack through `release(Handle)`. Progress re-arms the RTO
    /// at its base value and clears the retry count.
    template <typename F>
    MSGPROXY_HOT_PATH void
    on_ack(uint64_t ack, uint64_t now, F&& release)
    {
        bool progressed = false;
        while (!entries_.empty() && entries_.front().seq <= ack) {
            release(entries_.front().h);
            entries_.pop_front();
            progressed = true;
        }
        if (progressed) {
            retries_ = 0;
            rto_cur_ = p_.rto_ns;
            deadline_ = now + rto_cur_;
        }
    }

    /// True when the oldest unacked packet's RTO expired.
    MSGPROXY_HOT_PATH bool
    timeout_due(uint64_t now) const
    {
        return !entries_.empty() && now >= deadline_;
    }

    /// One timeout event: walks the window oldest-first through
    /// `each(seq, Handle&)` so the embedder can retransmit what it
    /// has custody of, then doubles the RTO (capped) and counts the
    /// retry. Call only when timeout_due().
    template <typename F>
    MSGPROXY_HOT_PATH void
    on_timeout(uint64_t now, F&& each)
    {
        for (Entry& e : entries_)
            each(e.seq, e.h);
        ++retries_;
        rto_cur_ = rto_cur_ * 2 > p_.rto_max_ns ? p_.rto_max_ns
                                                : rto_cur_ * 2;
        deadline_ = now + rto_cur_;
    }

    /// True once max_retries consecutive timeouts elapsed with no ack
    /// progress: the peer is unreachable.
    bool exhausted() const { return retries_ > p_.max_retries; }

    /// Consecutive timeouts since the last ack progress.
    uint32_t retries() const { return retries_; }

    /// Current (backed-off) RTO, for tests.
    uint64_t rto() const { return rto_cur_; }

    /// Abandons the window (peer declared dead): releases every
    /// retained handle through `release(Handle)`.
    template <typename F>
    MSGPROXY_QUIESCENT void
    abandon(F&& release)
    {
        for (Entry& e : entries_)
            release(e.h);
        entries_.clear();
    }

    /// Highest sequence number assigned so far (0: none).
    uint64_t highest_sent() const { return next_seq_ - 1; }

    /// Oldest unacked sequence number (0: window empty). Diagnostic:
    /// a receiver expecting something below this has lost a packet
    /// the sender no longer retains — an ack-protocol bug.
    uint64_t
    oldest_unacked() const
    {
        return entries_.empty() ? 0 : entries_.front().seq;
    }

  private:
    struct Entry
    {
        uint64_t seq;
        Handle h;
    };

    ReliabilityParams p_;
    std::deque<Entry> entries_;
    uint64_t next_seq_ = 1;
    uint64_t rto_cur_ = 0;
    uint64_t deadline_ = 0;
    uint32_t retries_ = 0;
};

/// Receiver half of one directed link: classifies arriving sequence
/// numbers and tracks what acknowledgement is owed.
class ReceiverSeq
{
  public:
    enum class Verdict : uint8_t {
        kDeliver,   ///< in order: hand the packet to the runtime
        kDuplicate, ///< already delivered: drop, but re-ack
        kGap        ///< beyond the expected seq: drop (go-back-N)
    };

    /// Classifies seq and advances the expected counter on delivery.
    MSGPROXY_HOT_PATH Verdict
    accept(uint64_t seq)
    {
        if (seq == next_) {
            ++next_;
            ++pending_;
            return Verdict::kDeliver;
        }
        // A duplicate means our ack was lost or is overdue; a gap
        // means the sender will retransmit from the ack point. Either
        // way the cheapest recovery accelerant is an immediate ack.
        ack_now_ = true;
        return seq < next_ ? Verdict::kDuplicate : Verdict::kGap;
    }

    /// Cumulative ack value: highest in-order seq received (0: none).
    uint64_t cum_ack() const { return next_ - 1; }

    /// True when a standalone ack should be emitted now (threshold
    /// reached or a duplicate/gap demanded one).
    MSGPROXY_HOT_PATH bool
    ack_due(uint32_t ack_every) const
    {
        return ack_now_ || pending_ >= ack_every;
    }

    /// True while any delivery is not yet covered by an emitted ack
    /// (the idle-flush predicate; quiescence needs this to drain).
    bool ack_pending() const { return ack_now_ || pending_ > 0; }

    /// The embedder sent an ack (standalone or piggybacked).
    void
    ack_sent()
    {
        pending_ = 0;
        ack_now_ = false;
    }

  private:
    uint64_t next_ = 1;
    uint32_t pending_ = 0;
    bool ack_now_ = false;
};

} // namespace net

#endif // MSGPROXY_NET_RELIABLE_H
