#include "net/transport_socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

#include "util/log.h"
#include "util/orders.h"

namespace net {

namespace {

/// Read buffer per link: a few dozen max-size frames per read pass.
constexpr size_t kReadBuf = 64 * 1024;
/// rx slab growth granularity (whole chunks freed at teardown).
constexpr size_t kSlabChunk = 64;
/// Handshake magic ("MPXY").
constexpr uint32_t kMagic = 0x4d505859u;

/// Wiring handshake, connector -> listener. Fixed-width fields,
/// native byte order (architecture-homogeneous peers, like the
/// frames themselves).
struct WireHello
{
    uint32_t magic = 0;
    int32_t node = 0;
    uint16_t nproxies = 0;
    uint16_t my_proxy = 0;   ///< connector-side proxy p
    uint16_t peer_proxy = 0; ///< listener-side proxy q
    uint8_t reliability = 0;
    uint8_t pad = 0;
    /// Connector incarnation: a restarted node rejoins with a
    /// higher epoch so the listener distinguishes fresh wiring from
    /// stale pre-crash state.
    uint64_t epoch = 0;
};

/// Handshake reply, listener -> connector. Sent after the listener
/// registered the link, so connect() returning means both sides are
/// fully wired.
struct WireHelloAck
{
    uint32_t magic = 0;
    int32_t node = 0;
    uint16_t nproxies = 0;
    uint8_t reliability = 0;
    uint8_t ok = 0;
    /// Listener incarnation (see WireHello::epoch).
    uint64_t epoch = 0;
};

/// Blocking exact-size read (handshake only; fds are still blocking
/// at that point).
bool
read_full(int fd, void* buf, size_t n)
{
    auto* p = static_cast<uint8_t*>(buf);
    while (n > 0) {
        ssize_t r = ::read(fd, p, n);
        if (r <= 0) {
            if (r < 0 && errno == EINTR)
                continue;
            return false;
        }
        p += r;
        n -= static_cast<size_t>(r);
    }
    return true;
}

/// Blocking exact-size write (handshake only).
bool
write_full(int fd, const void* buf, size_t n)
{
    const auto* p = static_cast<const uint8_t*>(buf);
    while (n > 0) {
        ssize_t r = ::write(fd, p, n);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += r;
        n -= static_cast<size_t>(r);
    }
    return true;
}

void
set_nonblocking(int fd)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    MP_CHECK(flags >= 0 &&
                 ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
             "fcntl(O_NONBLOCK) failed: " << std::strerror(errno));
}

void
fill_unix_addr(const Addr& addr, sockaddr_un& sa)
{
    sa = sockaddr_un{};
    sa.sun_family = AF_UNIX;
    MP_CHECK(addr.name.size() < sizeof(sa.sun_path),
             "unix socket path too long: " << addr.name);
    std::memcpy(sa.sun_path, addr.name.c_str(),
                addr.name.size() + 1);
}

void
fill_tcp_addr(const Addr& addr, sockaddr_in& sa)
{
    sa = sockaddr_in{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(addr.port);
    MP_CHECK(::inet_pton(AF_INET, addr.name.c_str(),
                         &sa.sin_addr) == 1,
             "tcp address must be numeric IPv4, got '" << addr.name
                                                       << "'");
}

/// Dials a peer's listen address (blocking; wiring phase).
int
dial(const Addr& addr)
{
    if (addr.scheme == Addr::Scheme::kUnix) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        MP_CHECK(fd >= 0,
                 "socket(AF_UNIX) failed: " << std::strerror(errno));
        sockaddr_un sa;
        fill_unix_addr(addr, sa);
        MP_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&sa),
                           sizeof(sa)) == 0,
                 "connect(unix://" << addr.name
                                   << ") failed: "
                                   << std::strerror(errno));
        return fd;
    }
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    MP_CHECK(fd >= 0,
             "socket(AF_INET) failed: " << std::strerror(errno));
    sockaddr_in sa;
    fill_tcp_addr(addr, sa);
    MP_CHECK(::connect(fd, reinterpret_cast<sockaddr*>(&sa),
                       sizeof(sa)) == 0,
             "connect(tcp://" << addr.name << ":" << addr.port
                              << ") failed: "
                              << std::strerror(errno));
    int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one));
    return fd;
}

/// The one epoll_wait call site, zero-timeout: this is a poll, not a
/// wait — the proxy loop's backoff governs idle behavior, so the
/// hot-path no-blocking rule holds in spirit and the exemption only
/// covers the syscall's name.
MSGPROXY_HOT_EXEMPT int
wait_events(int epfd, epoll_event* evs, int n)
{
    return ::epoll_wait(epfd, evs, n, 0);
}

} // namespace

// ---------------------------------------------------------------
// SocketLink
// ---------------------------------------------------------------

SocketLink::SocketLink(int peer_node, int peer_proxy,
                       int local_proxy, int fd, size_t depth)
    : TransportLink(peer_node, peer_proxy, local_proxy), fd_(fd),
      depth_(depth), rbuf_(std::make_unique<uint8_t[]>(kReadBuf))
{
}

SocketLink::~SocketLink()
{
    if (fd_ >= 0)
        ::close(fd_);
}

size_t
SocketLink::send_burst(const PacketRef* refs, size_t n)
{
    if (peer_closed_) {
        // Dead link: accept the burst and surrender the storage
        // immediately so the caller's drain_returns retires it
        // (the proxy notices peer_closed() separately and runs the
        // link-death path).
        for (size_t i = 0; i < n; ++i)
            recycled_.push_back(refs[i].p);
        return n;
    }
    size_t i = 0;
    for (; i < n; ++i) {
        if (txq_.size() >= depth_) {
            flush_tx();
            if (txq_.size() >= depth_ || peer_closed_)
                break;
        }
        const uint32_t body =
            static_cast<uint32_t>(kWireHeaderBytes) +
            wire_payload_len(*refs[i].p);
        txq_.push_back(TxItem{refs[i], body, 0});
    }
    return i;
}

bool
SocketLink::tx_full() const
{
    return !peer_closed_ && txq_.size() >= depth_;
}

void
SocketLink::flush_tx()
{
    while (!txq_.empty() && !peer_closed_) {
        iovec iov[2 * kWriteBatch];
        int iovcnt = 0;
        size_t items = 0;
        for (auto it = txq_.begin();
             it != txq_.end() && items < kWriteBatch;
             ++it, ++items) {
            TxItem& t = *it;
            auto* body = reinterpret_cast<uint8_t*>(t.ref.p);
            if (t.done < 4) {
                iov[iovcnt].iov_base =
                    reinterpret_cast<uint8_t*>(&t.prefix) + t.done;
                iov[iovcnt].iov_len = 4u - t.done;
                ++iovcnt;
                iov[iovcnt].iov_base = body;
                iov[iovcnt].iov_len = t.prefix;
                ++iovcnt;
            } else {
                // Only the queue head can be mid-body.
                const uint32_t bdone = t.done - 4;
                iov[iovcnt].iov_base = body + bdone;
                iov[iovcnt].iov_len = t.prefix - bdone;
                ++iovcnt;
            }
        }
        ssize_t n = ::writev(fd_, iov, iovcnt);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return;
            mark_closed();
            return;
        }
        auto left = static_cast<size_t>(n);
        while (left > 0) {
            TxItem& t = txq_.front();
            const size_t want = 4u + t.prefix - t.done;
            if (left < want) {
                t.done += static_cast<uint32_t>(left);
                left = 0;
            } else {
                left -= want;
                recycled_.push_back(t.ref.p);
                txq_.pop_front();
            }
        }
    }
}

void
SocketLink::fill_rx()
{
    if (peer_closed_)
        return;
    for (;;) {
        if (rfill_ == kReadBuf) {
            parse_frames();
            if (rfill_ == kReadBuf)
                return; // backpressured; the kernel buffers the rest
        }
        ssize_t n =
            ::read(fd_, rbuf_.get() + rfill_, kReadBuf - rfill_);
        if (n > 0) {
            rfill_ += static_cast<size_t>(n);
            parse_frames();
            continue;
        }
        if (n == 0) {
            mark_closed();
            return;
        }
        if (errno == EINTR)
            continue;
        if (errno != EAGAIN && errno != EWOULDBLOCK)
            mark_closed();
        return;
    }
}

void
SocketLink::parse_frames()
{
    size_t off = 0;
    while (rfill_ - off >= 4) {
        uint32_t body = 0;
        std::memcpy(&body, rbuf_.get() + off, 4);
        if (body < kWireHeaderBytes ||
            body > kWireHeaderBytes + kMtu) {
            // Framing is trusted (TCP/Unix streams do not corrupt);
            // a bad length word means the stream is desynchronized
            // beyond recovery. Treat it as peer death.
            mark_closed();
            rfill_ = 0;
            return;
        }
        if (rfill_ - off < 4u + body)
            break;
        if (rx_ready_.size() >= depth_)
            break; // backpressure: stop parsing, stop reading
        Packet* slot = rx_slot();
        if (slot == nullptr)
            break;
        std::memcpy(slot, rbuf_.get() + off + 4, body);
        slot->tx_state = 0; // sender-private bits, not ours
        rx_ready_.push_back(PacketRef{slot, false, false});
        off += 4u + body;
    }
    if (off > 0) {
        if (off < rfill_)
            std::memmove(rbuf_.get(), rbuf_.get() + off,
                         rfill_ - off);
        rfill_ -= off;
    }
}

Packet*
SocketLink::rx_slot()
{
    if (free_.empty())
        grow_rx();
    if (free_.empty())
        return nullptr;
    Packet* p = free_.back();
    free_.pop_back();
    return p;
}

void
SocketLink::grow_rx()
{
    // Grows to cover the peak number of rx packets simultaneously in
    // proxy custody (ready + deferred); rx_ready_'s depth_ cap
    // backpressures the steady state. Amortized, chunked, and freed
    // whole at teardown — the sanctioned analogue of the sender-side
    // heap fallback.
    slabs_.push_back(std::make_unique<Packet[]>(kSlabChunk));
    Packet* base = slabs_.back().get();
    for (size_t i = 0; i < kSlabChunk; ++i)
        free_.push_back(base + i);
    slab_slots_ += kSlabChunk;
}

size_t
SocketLink::poll_recv(PacketRef* out, size_t max)
{
    size_t i = 0;
    while (i < max && !rx_ready_.empty()) {
        out[i++] = rx_ready_.front();
        rx_ready_.pop_front();
    }
    return i;
}

void
SocketLink::release_rx(PacketRef ref)
{
    free_.push_back(ref.p);
}

size_t
SocketLink::poll_recycled(Packet** out, size_t max)
{
    size_t i = 0;
    while (i < max && !recycled_.empty()) {
        out[i++] = recycled_.front();
        recycled_.pop_front();
    }
    return i;
}

void
SocketLink::pump()
{
    flush_tx();
    fill_rx();
}

size_t
SocketLink::reclaim_tx(Packet** out, size_t max)
{
    while (!txq_.empty()) {
        recycled_.push_back(txq_.front().ref.p);
        txq_.pop_front();
    }
    size_t i = 0;
    while (i < max && !recycled_.empty()) {
        out[i++] = recycled_.front();
        recycled_.pop_front();
    }
    return i;
}

void
SocketLink::mark_closed()
{
    if (peer_closed_)
        return;
    peer_closed_ = true;
    // Surrender every still-queued borrow so drain_returns can
    // retire the storage; the bytes will never reach the peer.
    while (!txq_.empty()) {
        recycled_.push_back(txq_.front().ref.p);
        txq_.pop_front();
    }
}

// ---------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------

SocketTransport::SocketTransport(const TransportParams& params,
                                 TransportHost* host)
    : params_(params), host_(host),
      by_proxy_(static_cast<size_t>(params.num_proxies))
{
    // write() on a half-closed peer must surface EPIPE, not kill
    // the process.
    std::signal(SIGPIPE, SIG_IGN);
    epfds_.resize(static_cast<size_t>(params.num_proxies), -1);
    for (int& e : epfds_) {
        e = ::epoll_create1(0);
        MP_CHECK(e >= 0, "epoll_create1 failed: "
                             << std::strerror(errno));
    }
}

SocketTransport::~SocketTransport()
{
    stop();
    for (int e : epfds_)
        if (e >= 0)
            ::close(e);
}

void
SocketTransport::listen(const Addr& addr)
{
    MP_CHECK(addr.scheme == Addr::Scheme::kUnix ||
                 addr.scheme == Addr::Scheme::kTcp,
             "SocketTransport::listen needs unix:// or tcp://");
    MP_CHECK(listen_fd_ < 0, "node " << params_.node_id
                                     << " already listening");
    int fd = -1;
    if (addr.scheme == Addr::Scheme::kUnix) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        MP_CHECK(fd >= 0,
                 "socket(AF_UNIX) failed: " << std::strerror(errno));
        sockaddr_un sa;
        fill_unix_addr(addr, sa);
        // A stale socket file from a crashed previous run would
        // make bind fail; the path names this listener by contract.
        ::unlink(addr.name.c_str());
        MP_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&sa),
                        sizeof(sa)) == 0,
                 "bind(unix://" << addr.name << ") failed: "
                                << std::strerror(errno));
    } else {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        MP_CHECK(fd >= 0,
                 "socket(AF_INET) failed: " << std::strerror(errno));
        int one = 1;
        (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                           sizeof(one));
        sockaddr_in sa;
        fill_tcp_addr(addr, sa);
        MP_CHECK(::bind(fd, reinterpret_cast<sockaddr*>(&sa),
                        sizeof(sa)) == 0,
                 "bind(tcp://" << addr.name << ":" << addr.port
                               << ") failed: "
                               << std::strerror(errno));
    }
    MP_CHECK(::listen(fd, 64) == 0,
             "listen failed: " << std::strerror(errno));
    listen_fd_ = fd;
    acceptor_ = std::thread([this] { acceptor_main(); });
}

void
SocketTransport::acceptor_main()
{
    while (!stopping_.load(mp::ord::observe)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        int r = ::poll(&pfd, 1, 100);
        if (r <= 0)
            continue;
        int cfd = ::accept(listen_fd_, nullptr, nullptr);
        if (cfd < 0)
            continue;
        WireHello hello;
        if (!read_full(cfd, &hello, sizeof(hello)) ||
            hello.magic != kMagic) {
            ::close(cfd);
            continue;
        }
        WireHelloAck ack;
        ack.magic = kMagic;
        ack.node = params_.node_id;
        ack.nproxies = static_cast<uint16_t>(params_.num_proxies);
        ack.reliability = params_.reliability ? 1 : 0;
        ack.epoch = params_.epoch;
        const bool ok =
            hello.reliability == ack.reliability &&
            hello.node != params_.node_id &&
            static_cast<int>(hello.peer_proxy) <
                params_.num_proxies;
        ack.ok = ok ? 1 : 0;
        if (!ok) {
            (void)write_full(cfd, &ack, sizeof(ack));
            ::close(cfd);
            continue;
        }
        // Wire *before* acking: the connector's connect() returns
        // only after the final ack, so both sides hold the full
        // link matrix by then (the wiring-before-start rule).
        host_->on_peer_wired(hello.node,
                             static_cast<int>(hello.nproxies),
                             hello.epoch);
        add_link(cfd, hello.node,
                 static_cast<int>(hello.my_proxy),
                 static_cast<int>(hello.peer_proxy));
        // On ack-write failure the link just observes the dead fd
        // on its first IO and runs the normal death path.
        (void)write_full(cfd, &ack, sizeof(ack));
    }
}

void
SocketTransport::connect(const Addr& addr)
{
    MP_CHECK(addr.scheme == Addr::Scheme::kUnix ||
                 addr.scheme == Addr::Scheme::kTcp,
             "SocketTransport::connect needs unix:// or tcp://");
    int peer_node = -1;
    int peer_proxies = 0;
    auto dial_one = [&](int p, int q) {
        int fd = dial(addr);
        WireHello hello;
        hello.magic = kMagic;
        hello.node = params_.node_id;
        hello.nproxies = static_cast<uint16_t>(params_.num_proxies);
        hello.my_proxy = static_cast<uint16_t>(p);
        hello.peer_proxy = static_cast<uint16_t>(q);
        hello.reliability = params_.reliability ? 1 : 0;
        hello.epoch = params_.epoch;
        MP_CHECK(write_full(fd, &hello, sizeof(hello)),
                 "handshake write failed: "
                     << std::strerror(errno));
        WireHelloAck ack;
        MP_CHECK(read_full(fd, &ack, sizeof(ack)) &&
                     ack.magic == kMagic,
                 "handshake read failed");
        MP_CHECK(ack.ok == 1,
                 "peer refused link (p=" << p << ", q=" << q
                                         << "): reliability "
                                            "mismatch or bad proxy "
                                            "index");
        if (peer_node < 0) {
            peer_node = ack.node;
            peer_proxies = static_cast<int>(ack.nproxies);
            host_->on_peer_wired(peer_node, peer_proxies,
                                 ack.epoch);
        }
        MP_CHECK(ack.node == peer_node,
                 "listen address answered by two different nodes ("
                     << peer_node << " then " << ack.node << ")");
        add_link(fd, peer_node, q, p);
    };
    // First link learns the peer's geometry, then the rest of the
    // (local proxies x peer proxies) matrix is dialed serially.
    dial_one(0, 0);
    for (int p = 0; p < params_.num_proxies; ++p)
        for (int q = 0; q < peer_proxies; ++q)
            if (p != 0 || q != 0)
                dial_one(p, q);
}

void
SocketTransport::add_link(int fd, int peer_node, int peer_proxy,
                          int local_proxy)
{
    set_nonblocking(fd);
    int one = 1;
    // No-op (ENOTSUP) on unix-domain sockets.
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one));
    std::lock_guard<std::mutex> lk(mu_);
    links_.emplace_back(peer_node, peer_proxy, local_proxy, fd,
                        params_.channel_depth);
    SocketLink* l = &links_.back();
    by_proxy_[static_cast<size_t>(local_proxy)].push_back(l);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = l;
    MP_CHECK(::epoll_ctl(epfds_[static_cast<size_t>(local_proxy)],
                         EPOLL_CTL_ADD, fd, &ev) == 0,
             "epoll_ctl(ADD) failed: " << std::strerror(errno));
}

void
SocketTransport::pump(int proxy)
{
    const auto pi = static_cast<size_t>(proxy);
    if (pi >= by_proxy_.size() || by_proxy_[pi].empty())
        return;
    epoll_event evs[16];
    int n = wait_events(epfds_[pi], evs, 16);
    for (int i = 0; i < n; ++i)
        static_cast<SocketLink*>(evs[i].data.ptr)->fill_rx();
    for (SocketLink* l : by_proxy_[pi]) {
        if (!l->txq_.empty())
            l->flush_tx();
        // A backpressured link stopped parsing; rx_ready_ drains
        // without new bytes arriving, so poke the parser directly
        // rather than waiting for the next EPOLLIN report.
        if (l->rfill_ > 0)
            l->parse_frames();
    }
}

void
SocketTransport::links_for(int proxy,
                           std::vector<TransportLink*>& out)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (SocketLink* l : by_proxy_[static_cast<size_t>(proxy)])
        out.push_back(l);
}

void
SocketTransport::forget_peer(int peer_node)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& row : by_proxy_) {
        for (size_t i = 0; i < row.size();) {
            SocketLink* l = row[i];
            if (l->peer_node() != peer_node) {
                ++i;
                continue;
            }
            // Closing the fd also drops its epoll registration (the
            // fd is the only reference). The owning Node already
            // reclaimed its borrowed tx packets via reclaim_tx; the
            // link's own rx slabs die with the transport.
            l->mark_closed();
            if (l->fd_ >= 0) {
                ::close(l->fd_);
                l->fd_ = -1;
            }
            row[i] = row.back();
            row.pop_back();
        }
    }
}

void
SocketTransport::stop()
{
    const bool was =
        stopping_.exchange(true, mp::ord::handoff);
    if (!was && acceptor_.joinable())
        acceptor_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

} // namespace net
