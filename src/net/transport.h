/// \file
/// The pluggable inter-node transport API. A Transport owns framed,
/// full-duplex packet links between (sending proxy, receiving proxy)
/// pairs of two nodes and exposes nonblocking send/poll hooks that
/// the proxy loop drives — the seam separating the paper's protected
/// proxy runtime from whatever actually carries the bytes.
///
/// ## Custody contract (the invariant every backend must keep)
///
/// Outbound: the proxy hands the transport a PacketRef whose Packet
/// storage the transport only *borrows* — for an SPSC backend, for
/// as long as the ref sits in the forward ring; for a serializing
/// backend, for the duration of the write. When the transport is
/// done with the storage it releases it through poll_recycled(), and
/// the proxy's drain_returns applies the tx_state bits exactly as it
/// does for SPSC return rings: kTxRetained -> clear kTxInFlight (the
/// reliability window still owns the packet), kTxHeap -> delete,
/// else -> back into the slab pool. A transport never interprets or
/// mutates tx_state.
///
/// Inbound: poll_recv() yields refs whose storage the *transport*
/// owns (its own rx slabs for a serializing backend; the peer's pool
/// or heap for an SPSC backend). The proxy hands storage back with
/// release_rx() once the packet is handled — except heap-fallback
/// refs from an SPSC peer (heap && !retained), which the consumer
/// deletes directly, preserving the pool-leak invariant
/// (pool_hits == pool_returns, pool_misses == heap_frees summed over
/// communicating nodes after quiescence).
///
/// ## Fast path
///
/// Virtual dispatch per packet would tax the in-process hot path the
/// paper's latency numbers live on, so a link whose queues are plain
/// SPSC channels advertises them through chan_out()/chan_in(): when
/// non-null, the proxy may operate on the rings directly (push/pop/
/// full/ret) and skip the virtual hooks entirely. Serializing
/// backends return nullptr and are driven through the virtuals plus
/// a per-poll pump() that moves buffered bytes. Both surfaces
/// implement the same custody contract.
///
/// ## Wiring rules
///
/// listen()/connect() wire nodes before Node::start() on every node
/// involved; connect() is synchronous and returns once both sides
/// registered the full link matrix. Links (and their sequence state)
/// survive Node::stop()/start() restarts but not transport
/// destruction.

#ifndef MSGPROXY_NET_TRANSPORT_H
#define MSGPROXY_NET_TRANSPORT_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/wire.h"
#include "util/annotations.h"

namespace net {

/// Which backend a node's links ride on (NodeConfig::transport).
enum class TransportKind : uint8_t {
    kInProc, ///< SPSC channel pairs in shared memory ("inproc://")
    kSocket  ///< TCP or Unix-domain sockets ("tcp://", "unix://")
};

/// A parsed wiring address.
///   inproc://<name>         process-local registry key
///   unix://<filesystem path> Unix-domain stream socket
///   tcp://<ipv4>:<port>      TCP (numeric address)
struct Addr
{
    enum class Scheme : uint8_t { kInProc, kUnix, kTcp };
    Scheme scheme = Scheme::kInProc;
    std::string name; ///< inproc name, socket path, or IPv4 literal
    uint16_t port = 0;

    /// Parses `s`; MP_PANICs on a malformed address.
    static Addr parse(const std::string& s);

    /// The backend this scheme belongs to.
    TransportKind
    kind() const
    {
        return scheme == Scheme::kInProc ? TransportKind::kInProc
                                         : TransportKind::kSocket;
    }
};

/// Wiring-time parameters a Node hands its transport.
struct TransportParams
{
    int node_id = 0;
    int num_proxies = 1;
    /// Per-link forward-queue depth in frames.
    size_t channel_depth = 1024;
    /// Return-path capacity: the producer's pool plus its retained
    /// window (an SPSC return ring must never reject a push).
    size_t ret_capacity = 0;
    /// Reliability layer on/off — both ends of a link must agree;
    /// transports verify this at wiring time.
    bool reliability = true;
    /// Incarnation number of the owning node, exchanged in the
    /// wiring handshake. A restarted node rejoins with a higher
    /// epoch so peers can tell a fresh sequence space from stale
    /// pre-crash wiring (see DESIGN.md "Failure detection &
    /// failover" for the epoch rules).
    uint64_t epoch = 1;
};

/// Callbacks a transport makes into its owning Node at wiring time.
/// May fire from an acceptor thread — implementations must be safe
/// against concurrent wiring calls and must reject wiring after
/// start() (the documented wiring-before-start rule).
class TransportHost
{
  public:
    virtual ~TransportHost() = default;

    /// A link to (peer_node, with peer_proxies proxies, incarnation
    /// `epoch`) was wired. Called at least once per peer, possibly
    /// once per link; idempotent per (peer, epoch). A known peer
    /// re-wiring with a *higher* epoch is a rejoin after restart:
    /// the host revives it (clears dead/suspect verdicts). A lower
    /// epoch than previously recorded is a wiring error.
    virtual void on_peer_wired(int peer_node, int peer_proxies,
                               uint64_t epoch) = 0;
};

/// One full-duplex framed packet link between a local proxy and one
/// peer proxy on another node. All hooks are nonblocking and may
/// only be called by the owning local proxy thread (single-threaded
/// access, like every other proxy-owned structure).
class TransportLink
{
  public:
    virtual ~TransportLink() = default;

    int peer_node() const { return peer_node_; }
    int peer_proxy() const { return peer_proxy_; }
    int local_proxy() const { return local_proxy_; }

    /// Fast-path surface: non-null when this link is a plain SPSC
    /// channel pair the caller may drive directly (see file
    /// comment). chan_out(): the ring this proxy produces into and
    /// whose return ring recycles its slabs. chan_in(): the ring it
    /// consumes and whose return ring hands back rx storage.
    Channel* chan_out() const { return fast_out_; }
    Channel* chan_in() const { return fast_in_; }

    /// Enqueues up to n packets for transmission; returns how many
    /// were accepted (a prefix — 0 when the tx queue is full). The
    /// transport borrows each accepted ref's storage until it
    /// reappears in poll_recycled().
    virtual size_t send_burst(const PacketRef* refs, size_t n) = 0;

    /// True when send_burst would accept nothing.
    virtual bool tx_full() const = 0;

    /// Dequeues up to max received packets; returns the count.
    /// Storage of returned refs is released via release_rx().
    virtual size_t poll_recv(PacketRef* out, size_t max) = 0;

    /// Hands a poll_recv'd ref's storage back to the transport.
    /// Not used for heap refs from an SPSC peer (see file comment).
    virtual void release_rx(PacketRef ref) = 0;

    /// Collects up to max borrowed tx packets the transport is done
    /// with; returns the count. The caller applies tx_state custody.
    virtual size_t poll_recycled(Packet** out, size_t max) = 0;

    /// Drives buffered IO for this link alone (stall loops use this
    /// while waiting for tx room). No-op for SPSC links.
    virtual void pump() {}

    /// True once the peer end is gone (connection reset / EOF). The
    /// proxy treats this like retry exhaustion: link death. SPSC
    /// links never observe peer death themselves (the reliability
    /// layer's RTO exhaustion detects it instead).
    virtual bool peer_closed() const { return false; }

    /// Teardown only: surrenders up to max still-borrowed tx
    /// packets (queued and recycled alike) so the owning Node can
    /// retire heap-fallback ones exactly once. Returns the count.
    virtual size_t reclaim_tx(Packet** out, size_t max)
    {
        (void)out;
        (void)max;
        return 0;
    }

  protected:
    TransportLink(int peer_node, int peer_proxy, int local_proxy)
        : peer_node_(peer_node), peer_proxy_(peer_proxy),
          local_proxy_(local_proxy)
    {
    }

    int peer_node_;
    int peer_proxy_;
    int local_proxy_;
    Channel* fast_out_ = nullptr;
    Channel* fast_in_ = nullptr;
};

/// A wiring backend: owns every link of one node and the machinery
/// (registries, sockets, event loops) behind them.
class Transport
{
  public:
    virtual ~Transport() = default;

    virtual TransportKind kind() const = 0;

    /// Binds this node to `addr` and accepts peer connections (in
    /// the background for socket backends) until stop().
    virtual void listen(const Addr& addr) = 0;

    /// Connects to a peer's listen address. Synchronous: on return
    /// the full (local proxies x peer proxies) link matrix exists on
    /// both sides and on_peer_wired has fired on both hosts.
    virtual void connect(const Addr& addr) = 0;

    /// One IO tick for proxy `proxy`, called once per proxy-loop
    /// iteration: dispatches readable links (epoll with a zero
    /// timeout for sockets) and flushes pending writes. No-op for
    /// in-process backends.
    virtual void pump(int proxy) { (void)proxy; }

    /// True when pump() does real work. Hosts cache this so pure
    /// in-process wiring never pays a per-iteration virtual call.
    virtual bool needs_pump() const { return false; }

    /// Appends every link whose local end is proxy `proxy`.
    virtual void links_for(int proxy,
                           std::vector<TransportLink*>& out) = 0;

    /// Drops all wiring toward `peer_node` so the peer can rejoin
    /// with a fresh epoch (crash-restart recovery). Quiescent only:
    /// the owning Node is stopped and has already reclaimed every
    /// packet it had in custody on these links. After this call
    /// links_for no longer reports the peer's links and a new
    /// connect() from the peer wires from scratch.
    virtual void forget_peer(int peer_node) { (void)peer_node; }

    /// Stops background machinery (acceptor threads). Links become
    /// unusable; called by the owning Node's destructor.
    virtual void stop() {}
};

/// Factory: the backend for `kind`, owned by the caller. `host`
/// must outlive the transport.
std::unique_ptr<Transport> make_transport(TransportKind kind,
                                          const TransportParams& params,
                                          TransportHost* host);

} // namespace net

#endif // MSGPROXY_NET_TRANSPORT_H
