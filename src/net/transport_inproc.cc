#include "net/transport_inproc.h"

#include <mutex>
#include <string>

namespace net {

namespace {

/// Process-global inproc listen registry. Wiring is cold path and
/// happens before start(), so a mutex is fine here.
struct Registry
{
    std::mutex mu;
    std::map<std::string, InProcTransport*> names;
};

Registry&
registry()
{
    static Registry r;
    return r;
}

} // namespace

InProcTransport::~InProcTransport()
{
    if (!listen_name_.empty()) {
        Registry& r = registry();
        std::lock_guard<std::mutex> lk(r.mu);
        auto it = r.names.find(listen_name_);
        if (it != r.names.end() && it->second == this)
            r.names.erase(it);
    }
}

void
InProcTransport::listen(const Addr& addr)
{
    MP_CHECK(addr.scheme == Addr::Scheme::kInProc,
             "InProcTransport::listen needs an inproc:// address");
    MP_CHECK(listen_name_.empty(),
             "node " << params_.node_id << " already listening on "
                     << listen_name_);
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    auto [it, fresh] = r.names.emplace(addr.name, this);
    MP_CHECK(fresh, "inproc address '" << addr.name
                                       << "' already in use");
    listen_name_ = addr.name;
}

void
InProcTransport::connect(const Addr& addr)
{
    MP_CHECK(addr.scheme == Addr::Scheme::kInProc,
             "InProcTransport::connect needs an inproc:// address");
    InProcTransport* peer = nullptr;
    {
        Registry& r = registry();
        std::lock_guard<std::mutex> lk(r.mu);
        auto it = r.names.find(addr.name);
        MP_CHECK(it != r.names.end(),
                 "no listener at inproc://" << addr.name);
        peer = it->second;
    }
    wire_pair(*this, *peer);
}

void
InProcTransport::wire_pair(InProcTransport& a, InProcTransport& b)
{
    MP_CHECK(a.params_.node_id != b.params_.node_id,
             "connect needs distinct nodes");
    MP_CHECK(a.params_.reliability == b.params_.reliability,
             "nodes " << a.params_.node_id << " and "
                      << b.params_.node_id
                      << " disagree on reliability.enabled");
    MP_CHECK(a.peers_.find(b.params_.node_id) == a.peers_.end() &&
                 b.peers_.find(a.params_.node_id) == b.peers_.end(),
             "nodes " << a.params_.node_id << " and "
                      << b.params_.node_id << " already connected");
    const auto pa = static_cast<size_t>(a.params_.num_proxies);
    const auto pb = static_cast<size_t>(b.params_.num_proxies);
    Peer& ab = a.peers_[b.params_.node_id];
    Peer& ba = b.peers_[a.params_.node_id];
    ab.peer_proxies = b.params_.num_proxies;
    ba.peer_proxies = a.params_.num_proxies;
    // One ring per (sending proxy, receiving proxy) pair and
    // direction: no ring end is ever shared between two proxies.
    // The sending side's params size the channel: its proxies
    // produce the forward ring and recycle through the return ring,
    // which must never reject a push (ret_capacity covers the pool
    // plus the retained window).
    auto chan = [](const TransportParams& sender) {
        return std::make_shared<Channel>(sender.channel_depth,
                                         sender.ret_capacity);
    };
    ab.out.resize(pa * pb);
    ba.in.resize(pa * pb);
    for (size_t p = 0; p < pa; ++p) {
        for (size_t q = 0; q < pb; ++q) {
            auto ch = chan(a.params_);
            ab.out[p * pb + q] = ch;
            ba.in[p * pb + q] = ch;
        }
    }
    ba.out.resize(pb * pa);
    ab.in.resize(pb * pa);
    for (size_t p = 0; p < pb; ++p) {
        for (size_t q = 0; q < pa; ++q) {
            auto ch = chan(b.params_);
            ba.out[p * pa + q] = ch;
            ab.in[p * pa + q] = ch;
        }
    }
    // Per-side link objects over the shared channels.
    for (size_t p = 0; p < pa; ++p)
        for (size_t q = 0; q < pb; ++q)
            ab.links.emplace_back(
                b.params_.node_id, static_cast<int>(q),
                static_cast<int>(p), ab.out[p * pb + q].get(),
                ab.in[q * pa + p].get());
    for (size_t p = 0; p < pb; ++p)
        for (size_t q = 0; q < pa; ++q)
            ba.links.emplace_back(
                a.params_.node_id, static_cast<int>(q),
                static_cast<int>(p), ba.out[p * pa + q].get(),
                ba.in[q * pb + p].get());
    a.host_->on_peer_wired(b.params_.node_id, b.params_.num_proxies,
                           b.params_.epoch);
    b.host_->on_peer_wired(a.params_.node_id, a.params_.num_proxies,
                           a.params_.epoch);
}

void
InProcTransport::forget_peer(int peer_node)
{
    // Drops the peer's entry (links + our shares of the channels).
    // The owning Node already swept its custody off these rings, so
    // the Channel destructors' heap-retire rule handles whatever the
    // dead peer left behind.
    peers_.erase(peer_node);
}

void
InProcTransport::links_for(int proxy,
                           std::vector<TransportLink*>& out)
{
    for (auto& [node, peer] : peers_) {
        (void)node;
        for (InProcLink& lk : peer.links)
            if (lk.local_proxy() == proxy)
                out.push_back(&lk);
    }
}

} // namespace net
