/// \file
/// The in-process transport: today's SPSC channel matrices, owned by
/// a Transport instead of being friend-wired between two Nodes. One
/// Channel pair per (sending proxy, receiving proxy) pair and
/// direction, shared (shared_ptr) between the two peers' transports
/// so either node may be destroyed first — the survivor's rings stay
/// valid and its reliability layer detects the silence.
///
/// Links advertise their channels through the fast-path surface
/// (chan_out/chan_in), so the proxy hot path is byte-for-byte the
/// pre-transport ring code; the virtual hooks implement the same
/// custody contract for interface-generic callers.

#ifndef MSGPROXY_NET_TRANSPORT_INPROC_H
#define MSGPROXY_NET_TRANSPORT_INPROC_H

#include <deque>
#include <map>
#include <vector>

#include "net/transport.h"
#include "util/log.h"

namespace net {

/// An SPSC-channel-backed link. All hooks mirror the raw ring
/// operations; tx_state custody stays entirely with the caller.
class InProcLink final : public TransportLink
{
  public:
    InProcLink(int peer_node, int peer_proxy, int local_proxy,
               Channel* out, Channel* in)
        : TransportLink(peer_node, peer_proxy, local_proxy)
    {
        fast_out_ = out;
        fast_in_ = in;
    }

    MSGPROXY_HOT_PATH size_t
    send_burst(const PacketRef* refs, size_t n) override
    {
        size_t i = 0;
        while (i < n && fast_out_->ring.try_push(refs[i]))
            ++i;
        return i;
    }

    MSGPROXY_HOT_PATH bool
    tx_full() const override
    {
        return fast_out_->ring.full();
    }

    MSGPROXY_HOT_PATH size_t
    poll_recv(PacketRef* out, size_t max) override
    {
        size_t i = 0;
        while (i < max && fast_in_->ring.try_pop(out[i]))
            ++i;
        return i;
    }

    MSGPROXY_HOT_PATH void
    release_rx(PacketRef ref) override
    {
        // The producer's return ring holds its whole pool plus its
        // retained window, which bounds everything routed here, so
        // the push cannot fail.
        bool ok = fast_in_->ret.try_push(ref.p);
        MP_CHECK(ok, "packet return ring overflow");
    }

    MSGPROXY_HOT_PATH size_t
    poll_recycled(Packet** out, size_t max) override
    {
        size_t i = 0;
        while (i < max && fast_out_->ret.try_pop(out[i]))
            ++i;
        return i;
    }
};

/// The in-process backend: a process-global name registry maps
/// "inproc://<name>" listen addresses to transports; connect() wires
/// the full link matrix synchronously in the caller's thread.
class InProcTransport final : public Transport
{
  public:
    InProcTransport(const TransportParams& params, TransportHost* host)
        : params_(params), host_(host)
    {
    }

    ~InProcTransport() override;

    TransportKind kind() const override { return TransportKind::kInProc; }

    void listen(const Addr& addr) override;
    void connect(const Addr& addr) override;
    /// Wiring-phase only: called from start() before proxy threads
    /// exist, so touching the link list is safe (quiescent).
    MSGPROXY_QUIESCENT void links_for(
        int proxy, std::vector<TransportLink*>& out) override;

    /// Crash-restart recovery (quiescent): drops the peer's channel
    /// matrices and links so a restarted incarnation can re-wire.
    MSGPROXY_QUIESCENT void forget_peer(int peer_node) override;

    /// Wires the full-duplex channel matrices between two in-process
    /// transports directly (no registry) — the implementation behind
    /// connect() and the deprecated Node::connect(Node&, Node&) shim.
    /// Wiring-phase only (quiescent): both nodes are pre-start().
    MSGPROXY_QUIESCENT static void wire_pair(InProcTransport& a,
                                             InProcTransport& b);

  private:
    /// Everything wired toward one peer node. The channel vectors
    /// are producer-major: out[p * peer_proxies + q] is the ring
    /// from (this, p) to (peer, q); in[p * num_proxies + q] is the
    /// ring from (peer, p) to (this, q).
    struct Peer
    {
        int peer_proxies = 0;
        std::vector<std::shared_ptr<Channel>> out;
        std::vector<std::shared_ptr<Channel>> in;
        /// deque: links_for hands out stable addresses.
        std::deque<InProcLink> links;
    };

    TransportParams params_;
    TransportHost* host_;
    std::map<int, Peer> peers_;
    /// Registry key while listening (empty: not listening).
    std::string listen_name_;
};

} // namespace net

#endif // MSGPROXY_NET_TRANSPORT_INPROC_H
