/// \file
/// The failure-detection service (FTS) of the inter-node wire
/// protocol: per-link heartbeat scheduling and liveness assessment,
/// plus the node-level peer-state machine (alive -> suspect -> dead)
/// the proxy runtime drives with it.
///
/// Design (see DESIGN.md "Failure detection & failover"):
///  - Heartbeats piggyback on the reliability layer's idle-ack path:
///    a link that moved data (or an ack) recently owes nothing, so
///    the hot path never pays for liveness. Only a link idle for a
///    full interval emits a kHeartbeat packet — an unsequenced,
///    zero-payload frame carrying the usual piggybacked cumulative
///    ack, so heartbeats double as ack-refresh traffic.
///  - Any checksum-valid arrival (data, ack, or heartbeat) counts as
///    proof of life and refreshes the link's last_rx clock.
///  - Assessment is pure arithmetic over the caller-supplied clock:
///    idle past suspect_after intervals -> kSuspect, past dead_after
///    intervals -> kDead. The state machines here never touch
///    packets, rings, or real clocks, mirroring reliable.h — which
///    is what keeps them model-testable.
///
/// The runtime unifies this third death path with the existing two
/// (RTO exhaustion, socket EOF) behind Node::declare_peer_dead().

#ifndef MSGPROXY_NET_FTS_H
#define MSGPROXY_NET_FTS_H

#include <cstdint>

namespace net {

/// Tuning knobs of the failure detector (proxy::NodeConfig embeds
/// one as NodeConfig::Fts). Disabled by default: with enabled ==
/// false the runtime behaves exactly as before this service existed
/// (no heartbeats, death only via RTO exhaustion or socket EOF).
struct FtsParams
{
    /// Master switch for heartbeat emission and timeout assessment.
    bool enabled = false;
    /// Heartbeat cadence per link: an idle link emits one kHeartbeat
    /// per interval; a link that carried any traffic stays silent.
    uint64_t interval_ns = 2 * 1000 * 1000;
    /// Consecutive silent intervals before a peer turns kSuspect.
    uint32_t suspect_after = 3;
    /// Consecutive silent intervals before a peer turns kDead. Must
    /// exceed suspect_after; death fires declare_peer_dead() and is
    /// sticky until the peer rejoins with a higher epoch.
    uint32_t dead_after = 10;
    /// Failover target: endpoint traffic aimed at a dead peer is
    /// re-homed onto this node id (-1: no survivor configured —
    /// submits toward dead peers fail kPeerUnreachable as before).
    int32_t survivor = -1;
};

/// Node-level liveness verdict for one peer, the monotone state
/// machine alive -> suspect -> dead (suspect may recover to alive on
/// fresh traffic; dead is sticky until a higher-epoch rejoin).
enum class PeerState : uint8_t {
    kAlive = 0,
    kSuspect = 1,
    kDead = 2
};

/// Human-readable PeerState name (stats/JSON/diagnostics).
const char* peer_state_name(PeerState s);

/// Per-link liveness clocks, embedded in the runtime's Link and
/// touched only by the owning proxy thread. All times are the
/// caller's monotonic nanosecond clock.
struct LinkFts
{
    /// Last checksum-valid arrival from the peer (proof of life).
    uint64_t last_rx = 0;
    /// Last transmission toward the peer (data, ack, or heartbeat):
    /// the heartbeat-suppression clock.
    uint64_t last_tx = 0;
    /// highest_sent() snapshot at the previous service pass — data
    /// sends are detected by window progress so the send path itself
    /// stays untouched.
    uint64_t tx_mark = 0;
    /// This link already contributed a suspect vote (cleared by
    /// fresh rx so recovery can retract it).
    bool suspected = false;

    /// (Re)arms both clocks, e.g. at link (re)creation.
    void
    reset(uint64_t now)
    {
        last_rx = now;
        last_tx = now;
        tx_mark = 0;
        suspected = false;
    }

    /// True when the link owes a heartbeat: nothing sent for a full
    /// interval. Callers update last_tx on any send.
    bool
    heartbeat_due(uint64_t now, const FtsParams& p) const
    {
        return now >= last_tx && now - last_tx >= p.interval_ns;
    }

    /// Liveness verdict for the peer as seen from this link alone.
    PeerState
    assess(uint64_t now, const FtsParams& p) const
    {
        if (now < last_rx)
            return PeerState::kAlive; // clock skew: trust the rx
        const uint64_t idle = now - last_rx;
        if (idle >= p.interval_ns * p.dead_after)
            return PeerState::kDead;
        if (idle >= p.interval_ns * p.suspect_after)
            return PeerState::kSuspect;
        return PeerState::kAlive;
    }
};

} // namespace net

#endif // MSGPROXY_NET_FTS_H
