#include "net/transport.h"

#include <cstdlib>

#include "net/transport_inproc.h"
#include "net/transport_socket.h"
#include "util/log.h"

namespace net {

Addr
Addr::parse(const std::string& s)
{
    Addr a;
    auto rest_of = [&](const char* scheme) -> std::string {
        const std::string pfx = std::string(scheme) + "://";
        if (s.rfind(pfx, 0) != 0)
            return std::string();
        return s.substr(pfx.size());
    };
    if (std::string r = rest_of("inproc"); !r.empty()) {
        a.scheme = Scheme::kInProc;
        a.name = r;
        return a;
    }
    if (std::string r = rest_of("unix"); !r.empty()) {
        a.scheme = Scheme::kUnix;
        a.name = r;
        return a;
    }
    if (std::string r = rest_of("tcp"); !r.empty()) {
        a.scheme = Scheme::kTcp;
        auto colon = r.rfind(':');
        MP_CHECK(colon != std::string::npos && colon + 1 < r.size(),
                 "tcp address needs host:port, got '" << s << "'");
        a.name = r.substr(0, colon);
        long port = std::strtol(r.c_str() + colon + 1, nullptr, 10);
        MP_CHECK(port > 0 && port < 65536,
                 "bad port in tcp address '" << s << "'");
        a.port = static_cast<uint16_t>(port);
        return a;
    }
    MP_PANIC("unparseable transport address '"
             << s << "' (want inproc://name, unix://path, or "
             << "tcp://host:port)");
}

std::unique_ptr<Transport>
make_transport(TransportKind kind, const TransportParams& params,
               TransportHost* host)
{
    switch (kind) {
      case TransportKind::kInProc:
        return std::make_unique<InProcTransport>(params, host);
      case TransportKind::kSocket:
        return std::make_unique<SocketTransport>(params, host);
    }
    MP_PANIC("unknown TransportKind "
             << static_cast<int>(kind));
}

} // namespace net
