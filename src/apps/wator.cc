/// \file
/// Wator: an n-body simulation of fish in a current (Split-C). Fish
/// are block-distributed; computing the forces on local fish requires
/// the positions and masses of remote fish, read with fine-grained
/// split-phase GETs ("Wator spends a significant amount of time using
/// GETs to read the positions and masses of fish mapped remotely").
/// Fish are fetched in small groups of four, giving the small-message
/// high-rate traffic of the paper's Table 6.

#include "apps/apps.h"

#include <cmath>
#include <vector>

#include "apps/app_util.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "splitc/splitc.h"

namespace apps {

namespace {

constexpr int kBaseFish = 400; // the paper's input size
constexpr int kIters = 4;
constexpr int kFetchGroup = 4;
constexpr double kDt = 0.005;

struct Fish
{
    double x, y, mass;
};

} // namespace

AppResult
run_wator(const rma::SystemConfig& cfg, int scale)
{
    const int p = cfg.nodes * cfg.procs_per_node;
    const int nfish = std::max(p * kFetchGroup, kBaseFish / scale);
    const int chunk = (nfish + p - 1) / p;

    Timer timer(p);
    double mom_err = 1e9;
    double checksum = 0.0;

    auto result = backend::run_app(cfg, [&](rma::Ctx& ctx) {
        splitc::SplitC sc(ctx);
        coll::Collective coll(ctx);
        const int me = ctx.rank();
        const int lo = me * chunk;
        const int hi = std::min(lo + chunk, nfish);
        const int nlocal = hi - lo;

        Fish* mine = sc.all_spread_alloc<Fish>(
            "wator.fish", static_cast<size_t>(chunk));
        std::vector<double> vx(static_cast<size_t>(chunk), 0.0);
        std::vector<double> vy(static_cast<size_t>(chunk), 0.0);

        // Deterministic school of fish.
        mp::Rng init(31415);
        std::vector<Fish> all(static_cast<size_t>(nfish));
        std::vector<double> v0(static_cast<size_t>(nfish) * 2);
        for (int i = 0; i < nfish; ++i) {
            all[static_cast<size_t>(i)].x = init.next_range(-10.0, 10.0);
            all[static_cast<size_t>(i)].y = init.next_range(-10.0, 10.0);
            all[static_cast<size_t>(i)].mass = init.next_range(0.5, 2.0);
            v0[static_cast<size_t>(i) * 2] = init.next_range(-0.2, 0.2);
            v0[static_cast<size_t>(i) * 2 + 1] =
                init.next_range(-0.2, 0.2);
        }
        for (int i = 0; i < nlocal; ++i) {
            mine[i] = all[static_cast<size_t>(lo + i)];
            vx[static_cast<size_t>(i)] = v0[static_cast<size_t>(lo + i) * 2];
            vy[static_cast<size_t>(i)] =
                v0[static_cast<size_t>(lo + i) * 2 + 1];
        }
        coll.barrier();
        timer.start(me, ctx.now());

        std::vector<Fish> others(static_cast<size_t>(nfish));
        std::vector<double> fx(static_cast<size_t>(nlocal));
        std::vector<double> fy(static_cast<size_t>(nlocal));

        for (int it = 0; it < kIters; ++it) {
            // Fetch every remote fish in groups of kFetchGroup via
            // split-phase GETs; local fish copied directly.
            for (int r = 0; r < p; ++r) {
                int rlo = r * chunk;
                int rcount = std::min(chunk, nfish - rlo);
                if (rcount <= 0)
                    continue;
                if (r == me) {
                    for (int j = 0; j < rcount; ++j)
                        others[static_cast<size_t>(rlo + j)] = mine[j];
                    continue;
                }
                auto g = sc.global<Fish>("wator.fish", r);
                for (int j = 0; j < rcount; j += kFetchGroup) {
                    int cnt = std::min(kFetchGroup, rcount - j);
                    sc.get_sp(&others[static_cast<size_t>(rlo + j)],
                              g + j, static_cast<size_t>(cnt));
                }
            }
            sc.sync();
            // Fetch phase must complete everywhere before anyone
            // integrates, or a slow rank could read post-update
            // positions.
            coll.barrier();

            // All-pairs attraction plus a rotating current.
            for (int i = 0; i < nlocal; ++i) {
                double ax = 0.0, ay = 0.0;
                const Fish& fi = others[static_cast<size_t>(lo + i)];
                for (int j = 0; j < nfish; ++j) {
                    if (j == lo + i)
                        continue;
                    const Fish& fj = others[static_cast<size_t>(j)];
                    double dx = fj.x - fi.x;
                    double dy = fj.y - fi.y;
                    double r2 = dx * dx + dy * dy + 0.5;
                    double inv = fj.mass / (r2 * std::sqrt(r2));
                    ax += dx * inv;
                    ay += dy * inv;
                }
                // Current: solid-body rotation about the origin.
                ax += -0.05 * fi.y;
                ay += 0.05 * fi.x;
                fx[static_cast<size_t>(i)] = ax;
                fy[static_cast<size_t>(i)] = ay;
            }
            ctx.compute(static_cast<double>(nlocal) *
                        static_cast<double>(nfish - 1) *
                        Cost::kPairInteraction * 4.0);

            // Integrate (updates are local writes to our slice).
            for (int i = 0; i < nlocal; ++i) {
                vx[static_cast<size_t>(i)] +=
                    kDt * fx[static_cast<size_t>(i)];
                vy[static_cast<size_t>(i)] +=
                    kDt * fy[static_cast<size_t>(i)];
                mine[i].x += kDt * vx[static_cast<size_t>(i)];
                mine[i].y += kDt * vy[static_cast<size_t>(i)];
            }
            ctx.compute(static_cast<double>(nlocal) * 4.0 * Cost::kFlop);
            coll.barrier();
        }

        timer.end(me, ctx.now());

        // The gravitational part conserves momentum when weighted by
        // mass... our force omits m_i, so check mass-weighted momentum
        // change equals the current's contribution only approximately:
        // instead validate finiteness + deterministic checksum spread.
        double px = 0.0, py = 0.0, ck = 0.0;
        for (int i = 0; i < nlocal; ++i) {
            px += mine[i].mass * vx[static_cast<size_t>(i)];
            py += mine[i].mass * vy[static_cast<size_t>(i)];
            ck += mine[i].x + mine[i].y;
        }
        double gx = coll.allreduce_sum(px);
        double gy = coll.allreduce_sum(py);
        mom_err = std::hypot(gx, gy);
        checksum = coll.allreduce_sum(ck);
        coll.barrier();
    });

    AppResult res;
    res.elapsed_us = timer.elapsed();
    res.checksum = checksum;
    res.valid = std::isfinite(checksum) && std::isfinite(mom_err) &&
                std::abs(checksum) < 1e9;
    res.run = result;
    return res;
}

} // namespace apps
