/// \file
/// FFT: distributed 1-D complex FFT in the Split-C style, using the
/// six-step (transpose) method with bulk all-to-all transfers — the
/// paper's FFT "computes a 1-D Fast Fourier Transform with bulk
/// transfers to exchange data".
///
/// n = n1 * n2 viewed as an n1 x n2 row-major matrix distributed by
/// block rows. Pipeline: transpose -> n1-point row FFTs -> twiddle ->
/// transpose -> n2-point row FFTs; element (k1, k2) of the result is
/// X[k1 + n1*k2], verified against a direct DFT on sampled outputs.

#include "apps/apps.h"

#include <cmath>
#include <complex>
#include <cstring>
#include <vector>

#include "apps/app_util.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "splitc/splitc.h"

namespace apps {

namespace {

using Cpx = std::complex<double>;

constexpr int kBaseN1 = 256;
constexpr int kBaseN2 = 256;

/// Deterministic input signal.
Cpx
x_init(int j)
{
    return Cpx(std::sin(0.01 * j) + 0.3 * std::cos(0.05 * j),
               0.2 * std::sin(0.03 * j + 1.0));
}

/// In-place iterative radix-2 FFT of length len (power of two).
void
fft_row(Cpx* a, int len)
{
    for (int i = 1, j = 0; i < len; ++i) {
        int bit = len >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(a[i], a[j]);
    }
    for (int sz = 2; sz <= len; sz <<= 1) {
        double ang = -2.0 * M_PI / sz;
        Cpx w0(std::cos(ang), std::sin(ang));
        for (int i = 0; i < len; i += sz) {
            Cpx w(1.0, 0.0);
            for (int k = 0; k < sz / 2; ++k) {
                Cpx u = a[i + k];
                Cpx v = a[i + k + sz / 2] * w;
                a[i + k] = u + v;
                a[i + k + sz / 2] = u - v;
                w *= w0;
            }
        }
    }
}

} // namespace

AppResult
run_fft(const rma::SystemConfig& cfg, int scale)
{
    const int p = cfg.nodes * cfg.procs_per_node;
    // Shrink both factors with scale, keeping powers of two.
    int n1 = kBaseN1, n2 = kBaseN2;
    for (int s = 1; s < scale; s *= 2) {
        n1 /= 2;
        n2 /= 2;
    }
    n1 = std::max(n1, p);
    n2 = std::max(n2, p);
    const int n = n1 * n2;
    MP_CHECK(n1 % p == 0 && n2 % p == 0, "grid not divisible by ranks");
    const int rows1 = n1 / p; // rows of the n1 x n2 view per rank
    const int rows2 = n2 / p; // rows of the n2 x n1 view per rank

    Timer timer(p);
    double max_err = 1e9;

    auto result = backend::run_app(cfg, [&](rma::Ctx& ctx) {
        splitc::SplitC sc(ctx);
        coll::Collective coll(ctx);
        const int me = ctx.rank();

        // Working arrays. land is written by remote bulk stores during
        // transposes: land[src] holds src's contribution.
        const size_t max_rows =
            static_cast<size_t>(std::max(rows1, rows2));
        const size_t max_cols = static_cast<size_t>(std::max(n1, n2));
        Cpx* work = sc.all_spread_alloc<Cpx>("fft.work",
                                             max_rows * max_cols);
        Cpx* land = sc.all_spread_alloc<Cpx>("fft.land",
                                             max_rows * max_cols);

        // Distributed transpose of an r_in x c_in matrix (block-row
        // distributed, r_in/p rows per rank) from `src` into `dst`
        // (c_in x r_in, c_in/p rows per rank).
        auto transpose = [&](const Cpx* src, Cpx* dst, int r_in,
                             int c_in) {
            int my_rows = r_in / p;
            int out_rows = c_in / p;
            std::vector<Cpx> sendbuf;
            for (int d = 0; d < p; ++d) {
                // Columns owned by d in the output: rows of output.
                sendbuf.resize(static_cast<size_t>(my_rows) *
                               static_cast<size_t>(out_rows));
                for (int r = 0; r < my_rows; ++r)
                    for (int c = 0; c < out_rows; ++c)
                        sendbuf[static_cast<size_t>(c) * my_rows + r] =
                            src[static_cast<size_t>(r) * c_in +
                                d * out_rows + c];
                ctx.compute(static_cast<double>(my_rows * out_rows) *
                            0.1 * Cost::kFlop);
                if (d == me) {
                    // The diagonal block stays on this rank: plain
                    // memory copy, no communication.
                    std::memcpy(land + static_cast<size_t>(me) *
                                           static_cast<size_t>(my_rows) *
                                           out_rows,
                                sendbuf.data(),
                                sendbuf.size() * sizeof(Cpx));
                    continue;
                }
                // Destination offset: block for source rank `me`.
                auto g = sc.global<Cpx>("fft.land", d) +
                         static_cast<ptrdiff_t>(
                             static_cast<size_t>(me) *
                             static_cast<size_t>(my_rows) * out_rows);
                sc.store(g, sendbuf.data(),
                         static_cast<size_t>(my_rows) * out_rows);
            }
            sc.all_store_sync(coll);
            // Reassemble: land[src] is an out_rows x src_rows block of
            // output columns src*my_rows .. (already transposed).
            for (int s = 0; s < p; ++s) {
                const Cpx* blk = land + static_cast<size_t>(s) *
                                            static_cast<size_t>(my_rows) *
                                            out_rows;
                for (int c = 0; c < out_rows; ++c)
                    for (int r = 0; r < my_rows; ++r)
                        dst[static_cast<size_t>(c) * r_in + s * my_rows +
                            r] = blk[static_cast<size_t>(c) * my_rows + r];
            }
            ctx.compute(static_cast<double>(out_rows * r_in) * 0.1 *
                        Cost::kFlop);
        };

        // Initialize the local rows of the n1 x n2 input.
        std::vector<Cpx> buf(static_cast<size_t>(max_rows) * max_cols);
        for (int r = 0; r < rows1; ++r)
            for (int c = 0; c < n2; ++c)
                work[static_cast<size_t>(r) * n2 + c] =
                    x_init((me * rows1 + r) * n2 + c);
        coll.barrier();
        timer.start(me, ctx.now());

        // Step 1: transpose (n1 x n2 -> n2 x n1).
        transpose(work, buf.data(), n1, n2);
        // Step 2: n1-point FFT on each local row c.
        for (int c = 0; c < rows2; ++c)
            fft_row(&buf[static_cast<size_t>(c) * n1], n1);
        ctx.compute(static_cast<double>(rows2) * 5.0 * n1 *
                    std::log2(static_cast<double>(n1)) * Cost::kFlop);
        // Step 3: twiddle T[c, k1] *= w_n^(c*k1); global row index.
        for (int c = 0; c < rows2; ++c) {
            int gc = me * rows2 + c;
            for (int k1 = 0; k1 < n1; ++k1) {
                double ang = -2.0 * M_PI *
                             static_cast<double>(gc) *
                             static_cast<double>(k1) /
                             static_cast<double>(n);
                buf[static_cast<size_t>(c) * n1 + k1] *=
                    Cpx(std::cos(ang), std::sin(ang));
            }
        }
        ctx.compute(static_cast<double>(rows2 * n1) * 2.0 * Cost::kFlop);
        // Step 4: copy to work, transpose back (n2 x n1 -> n1 x n2).
        std::copy(buf.begin(),
                  buf.begin() + static_cast<ptrdiff_t>(
                                    static_cast<size_t>(rows2) *
                                    static_cast<size_t>(n1)),
                  work);
        transpose(work, buf.data(), n2, n1);
        // Step 5: n2-point FFT on each local row k1.
        for (int r = 0; r < rows1; ++r)
            fft_row(&buf[static_cast<size_t>(r) * n2], n2);
        ctx.compute(static_cast<double>(rows1) * 5.0 * n2 *
                    std::log2(static_cast<double>(n2)) * Cost::kFlop);

        timer.end(me, ctx.now());

        // Verify sampled outputs against the direct DFT:
        // buf[r, c] == X[(me*rows1 + r) + n1*c].
        double err = 0.0;
        for (int s = 0; s < 4; ++s) {
            int r = (s * 3) % rows1;
            int c = (s * 17 + 5) % n2;
            int k = (me * rows1 + r) + n1 * c;
            Cpx ref(0.0, 0.0);
            for (int j = 0; j < n; ++j) {
                double ang = -2.0 * M_PI * static_cast<double>(j) *
                             static_cast<double>(k) /
                             static_cast<double>(n);
                ref += x_init(j) * Cpx(std::cos(ang), std::sin(ang));
            }
            err = std::max(err,
                           std::abs(buf[static_cast<size_t>(r) * n2 + c] -
                                    ref));
        }
        max_err = coll.allreduce_max(err);
        coll.barrier();
    });

    AppResult res;
    res.elapsed_us = timer.elapsed();
    res.checksum = max_err;
    res.valid = max_err < 1e-6 * n;
    res.run = result;
    return res;
}

} // namespace apps
