/// \file
/// Shared helpers for the application implementations: the timed-
/// region recorder and per-operation compute-cost constants.

#ifndef MSGPROXY_APPS_APP_UTIL_H
#define MSGPROXY_APPS_APP_UTIL_H

#include <algorithm>
#include <vector>

#include "rma/system.h"

namespace apps {

/// Compute-cost constants, in microseconds, for the explicit
/// compute() charges. The compute processors are the same across all
/// design points (the paper's simulator models POWER2-class compute
/// processors regardless of the communication architecture), so these
/// are design-point independent.
///
/// The magnitudes are set so that the 16-processor message rates land
/// in the range Table 6 reports (roughly 0.4-20 RMA/RQ operations per
/// millisecond per processor depending on the application).
struct Cost
{
    static constexpr double kFlop = 0.02;        ///< one fused op
    static constexpr double kPairInteraction = 0.15; ///< n-body pair
    static constexpr double kKeyCompare = 0.3; ///< sort compare+move
                                                 ///< (cache-miss heavy)
    static constexpr double kRayObject = 0.4;    ///< ray-sphere test
    static constexpr double kTreeNode = 0.3; ///< tree-walk visit
                                               ///< (pointer chasing)
};

/// Records the timed region across ranks (max end - min start).
class Timer
{
  public:
    explicit Timer(int nranks)
        : start_(static_cast<size_t>(nranks), 0.0),
          end_(static_cast<size_t>(nranks), 0.0)
    {
    }

    /// Marks the start of the timed region on `rank`.
    void start(int rank, double now) { start_[static_cast<size_t>(rank)] = now; }

    /// Marks the end of the timed region on `rank`.
    void end(int rank, double now) { end_[static_cast<size_t>(rank)] = now; }

    /// Elapsed simulated microseconds of the region.
    double
    elapsed() const
    {
        double s = *std::min_element(start_.begin(), start_.end());
        double e = *std::max_element(end_.begin(), end_.end());
        return e - s;
    }

  private:
    std::vector<double> start_;
    std::vector<double> end_;
};

} // namespace apps

#endif // MSGPROXY_APPS_APP_UTIL_H
