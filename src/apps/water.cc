/// \file
/// Water: an "n-squared" molecular-dynamics code (SPLASH-2 style) in
/// the CRL style. Each rank's molecule block is one CRL region; every
/// iteration reads all remote blocks (read misses re-fetch them after
/// the previous iteration's writes invalidated the copies), computes
/// all-pairs forces for the local molecules, and writes the local
/// block back.

#include "apps/apps.h"

#include <cmath>
#include <vector>

#include "am/am.h"
#include "apps/app_util.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "crl/crl.h"

namespace apps {

namespace {

constexpr int kBaseMolecules = 512;
constexpr int kIters = 4;
constexpr double kDt = 0.002;

/// Soft-core inverse-square force between molecules a and b;
/// accumulates onto f (toward b for attraction).
void
pair_force(const double* a, const double* b, double* f)
{
    double dx = b[0] - a[0];
    double dy = b[1] - a[1];
    double dz = b[2] - a[2];
    double r2 = dx * dx + dy * dy + dz * dz + 0.1;
    double inv = 1.0 / (r2 * std::sqrt(r2));
    f[0] += dx * inv;
    f[1] += dy * inv;
    f[2] += dz * inv;
}

} // namespace

AppResult
run_water(const rma::SystemConfig& cfg, int scale)
{
    const int p = cfg.nodes * cfg.procs_per_node;
    const int nmol = std::max(p, kBaseMolecules / scale);
    const int chunk = (nmol + p - 1) / p;
    const size_t rbytes = static_cast<size_t>(chunk) * 3 * sizeof(double);

    Timer timer(p);
    double mom_err = 1e9;
    double checksum = 0.0;

    auto result = backend::run_app(cfg, [&](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        crl::Crl crl(ctx, ep);
        coll::Collective coll(ctx, &ep);
        const int me = ctx.rank();
        const int lo = me * chunk;
        const int hi = std::min(lo + chunk, nmol);
        const int nlocal = hi - lo;

        // One region per rank holding its molecules' positions.
        crl.create(rbytes);
        std::vector<double*> blocks(static_cast<size_t>(p));
        for (int r = 0; r < p; ++r) {
            blocks[static_cast<size_t>(r)] = static_cast<double*>(
                crl.map(crl::Crl::region_id(r, 0), rbytes));
        }
        std::vector<double> vel(static_cast<size_t>(chunk) * 3, 0.0);
        std::vector<double> force(static_cast<size_t>(chunk) * 3);

        // Deterministic initial positions and velocities.
        mp::Rng init(777);
        std::vector<double> all_init(static_cast<size_t>(nmol) * 3);
        for (auto& v : all_init)
            v = init.next_range(-4.0, 4.0);
        mp::Rng vinit(778);
        std::vector<double> all_vinit(static_cast<size_t>(nmol) * 3);
        for (auto& v : all_vinit)
            v = vinit.next_range(-0.1, 0.1);
        crl.start_write(crl::Crl::region_id(me, 0));
        for (int i = 0; i < nlocal; ++i)
            for (int d = 0; d < 3; ++d)
                blocks[static_cast<size_t>(me)][i * 3 + d] =
                    all_init[static_cast<size_t>(lo + i) * 3 +
                             static_cast<size_t>(d)];
        crl.end_write(crl::Crl::region_id(me, 0));
        for (int i = 0; i < nlocal; ++i)
            for (int d = 0; d < 3; ++d)
                vel[static_cast<size_t>(i) * 3 + static_cast<size_t>(d)] =
                    all_vinit[static_cast<size_t>(lo + i) * 3 +
                              static_cast<size_t>(d)];
        coll.barrier();
        timer.start(me, ctx.now());

        for (int it = 0; it < kIters; ++it) {
            // Read every block (local copy of remote positions).
            for (int r = 0; r < p; ++r)
                crl.start_read(crl::Crl::region_id(r, 0));
            std::fill(force.begin(), force.end(), 0.0);
            for (int i = 0; i < nlocal; ++i) {
                const double* mi =
                    &blocks[static_cast<size_t>(me)][i * 3];
                for (int r = 0; r < p; ++r) {
                    int rcount = std::min(chunk, nmol - r * chunk);
                    for (int j = 0; j < rcount; ++j) {
                        if (r == me && j == i)
                            continue;
                        pair_force(mi,
                                   &blocks[static_cast<size_t>(r)][j * 3],
                                   &force[static_cast<size_t>(i) * 3]);
                    }
                }
            }
            ep.compute(static_cast<double>(nlocal) *
                       static_cast<double>(nmol - 1) *
                       Cost::kPairInteraction);
            for (int r = 0; r < p; ++r)
                crl.end_read(crl::Crl::region_id(r, 0));
            // Separate the read phase from the write phase so every
            // rank computes from the same iteration snapshot.
            coll.barrier();

            // Integrate and publish the local block.
            crl.start_write(crl::Crl::region_id(me, 0));
            for (int i = 0; i < nlocal * 3; ++i) {
                vel[static_cast<size_t>(i)] +=
                    kDt * force[static_cast<size_t>(i)];
                blocks[static_cast<size_t>(me)][i] +=
                    kDt * vel[static_cast<size_t>(i)];
            }
            crl.end_write(crl::Crl::region_id(me, 0));
            ctx.compute(static_cast<double>(nlocal) * 6.0 * Cost::kFlop);
            coll.barrier();
        }

        timer.end(me, ctx.now());

        // Momentum conservation: total momentum stays (nearly) zero
        // relative to its initial value.
        double px = 0, py = 0, pz = 0;
        for (int i = 0; i < nlocal; ++i) {
            px += vel[static_cast<size_t>(i) * 3];
            py += vel[static_cast<size_t>(i) * 3 + 1];
            pz += vel[static_cast<size_t>(i) * 3 + 2];
        }
        double p0x = 0, p0y = 0, p0z = 0;
        for (int i = 0; i < nmol; ++i) {
            p0x += all_vinit[static_cast<size_t>(i) * 3];
            p0y += all_vinit[static_cast<size_t>(i) * 3 + 1];
            p0z += all_vinit[static_cast<size_t>(i) * 3 + 2];
        }
        double sx = coll.allreduce_sum(px) - p0x;
        double sy = coll.allreduce_sum(py) - p0y;
        double sz = coll.allreduce_sum(pz) - p0z;
        mom_err = std::sqrt(sx * sx + sy * sy + sz * sz);
        double ck = 0.0;
        for (int i = 0; i < nlocal * 3; ++i)
            ck += blocks[static_cast<size_t>(me)][i];
        checksum = coll.allreduce_sum(ck);
        coll.barrier();
    });

    AppResult res;
    res.elapsed_us = timer.elapsed();
    res.checksum = checksum;
    res.valid = std::isfinite(checksum) && mom_err < 1e-9;
    res.run = result;
    return res;
}

} // namespace apps
