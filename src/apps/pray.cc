/// \file
/// P-Ray: a sphere ray tracer in the Split-C style. Scene objects are
/// distributed round-robin across ranks; a rank fetches an object's
/// parameters with a small bulk get on first use and caches it for
/// the rest of the render ("small and infrequent messages" — the
/// paper's least communication-sensitive application). Image rows are
/// partitioned across ranks; each pixel traces a primary ray and a
/// shadow ray against every sphere.

#include "apps/apps.h"

#include <cmath>
#include <vector>

#include "apps/app_util.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "splitc/splitc.h"

namespace apps {

namespace {

constexpr int kBaseImage = 96;  ///< image is kBaseImage x kBaseImage
constexpr int kBaseSpheres = 16;

struct Sphere
{
    double cx, cy, cz, r;
    double red, green, blue;
    double pad = 0.0;
};

Sphere
sphere_init(int i)
{
    mp::Rng rng(9000 + static_cast<uint64_t>(i));
    Sphere s;
    s.cx = rng.next_range(-6.0, 6.0);
    s.cy = rng.next_range(-6.0, 6.0);
    s.cz = rng.next_range(6.0, 18.0);
    s.r = rng.next_range(0.5, 1.6);
    s.red = rng.next_double();
    s.green = rng.next_double();
    s.blue = rng.next_double();
    return s;
}

/// Ray-sphere intersection; returns the ray parameter t or a
/// negative value on miss.
double
hit(const Sphere& s, double ox, double oy, double oz, double dx,
    double dy, double dz)
{
    double lx = s.cx - ox, ly = s.cy - oy, lz = s.cz - oz;
    double b = lx * dx + ly * dy + lz * dz;
    double det = b * b - (lx * lx + ly * ly + lz * lz) + s.r * s.r;
    if (det < 0.0)
        return -1.0;
    double sq = std::sqrt(det);
    double t = b - sq;
    if (t < 1e-6)
        t = b + sq;
    return t > 1e-6 ? t : -1.0;
}

} // namespace

AppResult
run_pray(const rma::SystemConfig& cfg, int scale)
{
    const int p = cfg.nodes * cfg.procs_per_node;
    const int img = std::max(8, kBaseImage / scale);
    const int nspheres = std::max(8, kBaseSpheres / scale);
    const int rows = (img + p - 1) / p;

    Timer timer(p);
    double image_sum = 0.0;
    bool fetch_ok = true;

    auto result = backend::run_app(cfg, [&](rma::Ctx& ctx) {
        splitc::SplitC sc(ctx);
        coll::Collective coll(ctx);
        const int me = ctx.rank();

        // Scene distribution: sphere i lives at rank i % p, slot i/p.
        const int per_rank = (nspheres + p - 1) / p;
        Sphere* local_objs = sc.all_spread_alloc<Sphere>(
            "pray.scene", static_cast<size_t>(per_rank));
        for (int i = me; i < nspheres; i += p)
            local_objs[i / p] = sphere_init(i);
        coll.barrier();
        timer.start(me, ctx.now());

        // Software object cache: fetch remote spheres on first use.
        std::vector<Sphere> cache(static_cast<size_t>(nspheres));
        std::vector<bool> cached(static_cast<size_t>(nspheres), false);
        auto get_sphere = [&](int i) -> const Sphere& {
            if (!cached[static_cast<size_t>(i)]) {
                int owner = i % p;
                if (owner == me) {
                    cache[static_cast<size_t>(i)] = local_objs[i / p];
                } else {
                    sc.bulk_get(&cache[static_cast<size_t>(i)],
                                sc.global<Sphere>("pray.scene", owner) +
                                    (i / p),
                                1);
                }
                cached[static_cast<size_t>(i)] = true;
            }
            return cache[static_cast<size_t>(i)];
        };

        const int lo = me * rows;
        const int hi = std::min(lo + rows, img);
        double local_sum = 0.0;
        const double lx = -0.5, ly = 0.8, lz = -0.3; // light direction
        for (int y = lo; y < hi; ++y) {
            for (int x = 0; x < img; ++x) {
                double dx = (x - img / 2) / static_cast<double>(img);
                double dy = (y - img / 2) / static_cast<double>(img);
                double dz = 1.0;
                double norm = std::sqrt(dx * dx + dy * dy + dz * dz);
                dx /= norm;
                dy /= norm;
                dz /= norm;
                double best_t = 1e30;
                int best = -1;
                for (int i = 0; i < nspheres; ++i) {
                    double t = hit(get_sphere(i), 0, 0, 0, dx, dy, dz);
                    if (t > 0.0 && t < best_t) {
                        best_t = t;
                        best = i;
                    }
                }
                ctx.compute(static_cast<double>(nspheres) *
                            Cost::kRayObject);
                double shade = 0.1; // ambient
                if (best >= 0) {
                    const Sphere& s = get_sphere(best);
                    double px = dx * best_t, py = dy * best_t,
                           pz = dz * best_t;
                    double nx = (px - s.cx) / s.r,
                           ny = (py - s.cy) / s.r,
                           nz = (pz - s.cz) / s.r;
                    double diff =
                        std::max(0.0, -(nx * lx + ny * ly + nz * lz));
                    // Shadow ray toward the light.
                    bool shadowed = false;
                    for (int i = 0; i < nspheres && !shadowed; ++i) {
                        if (i == best)
                            continue;
                        if (hit(get_sphere(i), px, py, pz, -lx, -ly,
                                -lz) > 0.0)
                            shadowed = true;
                    }
                    ctx.compute(static_cast<double>(nspheres) *
                                Cost::kRayObject);
                    shade += shadowed ? 0.0 : diff;
                    local_sum += shade * (s.red + s.green + s.blue);
                } else {
                    local_sum += shade;
                }
            }
        }

        coll.barrier();
        timer.end(me, ctx.now());

        // Fetched parameters must equal the deterministic generator.
        for (int i = 0; i < nspheres; ++i) {
            if (!cached[static_cast<size_t>(i)])
                continue;
            Sphere ref = sphere_init(i);
            const Sphere& got = cache[static_cast<size_t>(i)];
            if (got.cx != ref.cx || got.r != ref.r ||
                got.blue != ref.blue) {
                fetch_ok = false;
            }
        }
        image_sum = coll.allreduce_sum(local_sum);
        coll.barrier();
    });

    AppResult res;
    res.elapsed_us = timer.elapsed();
    res.checksum = image_sum;
    res.valid = fetch_ok && std::isfinite(image_sum) && image_sum > 0.0;
    res.run = result;
    return res;
}

} // namespace apps
