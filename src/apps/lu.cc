/// \file
/// LU: blocked dense LU factorization (no pivoting; the test matrix
/// is made diagonally dominant) in the CRL style, adapted from the
/// CRL 1.0 distribution. Matrix blocks are CRL regions in a 2-D
/// cyclic layout; the block owner computes, and coherence traffic
/// moves the diagonal, row and column panels.

#include "apps/apps.h"

#include <cmath>
#include <vector>

#include "am/am.h"
#include "apps/app_util.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "crl/crl.h"
#include "util/log.h"

namespace apps {

namespace {

constexpr int kBaseN = 256;
constexpr int kBlock = 16;

/// 2-D cyclic processor grid: pr x pc with pr*pc == p.
void
proc_grid(int p, int* pr, int* pc)
{
    int r = 1;
    while ((2 * r) * (2 * r) <= p)
        r *= 2;
    while (r > 1 && p % r != 0)
        --r;
    *pr = r;
    *pc = p / r;
}

int
owner_of(int bi, int bj, int pr, int pc)
{
    return (bi % pr) * pc + (bj % pc);
}

/// Creation index of block (bi, bj) at its home: the number of blocks
/// with the same owner that precede it lexicographically.
uint32_t
block_index(int bi, int bj, int grid, int pr, int pc)
{
    int own = owner_of(bi, bj, pr, pc);
    uint32_t idx = 0;
    for (int i = 0; i < grid; ++i) {
        for (int j = 0; j < grid; ++j) {
            if (i == bi && j == bj)
                return idx;
            if (owner_of(i, j, pr, pc) == own)
                ++idx;
        }
    }
    MP_PANIC("block not found");
}

/// Deterministic diagonally-dominant test matrix.
double
a_init(int i, int j, int n)
{
    double v = std::sin(0.7 * i + 1.3 * j + 0.001 * i * j);
    if (i == j)
        v += 2.0 * n;
    return v;
}

} // namespace

AppResult
run_lu(const rma::SystemConfig& cfg, int scale)
{
    return run_lu_block(cfg, scale, kBlock);
}

AppResult
run_lu_block(const rma::SystemConfig& cfg, int scale, int block)
{
    const int p = cfg.nodes * cfg.procs_per_node;
    const int b = block;
    const int n = std::max(b * 2, kBaseN / scale / b * b);
    const int grid = n / b;
    MP_CHECK(n % b == 0, "matrix size must be a block multiple");
    int pr, pc;
    proc_grid(p, &pr, &pc);

    const size_t bbytes = static_cast<size_t>(b) * b * sizeof(double);
    Timer timer(p);
    double residual = 1e9;

    auto result = backend::run_app(cfg, [&](rma::Ctx& ctx) {
        am::Endpoint ep(ctx);
        crl::Crl crl(ctx, ep);
        coll::Collective coll(ctx, &ep);
        const int me = ctx.rank();

        auto rid = [&](int bi, int bj) {
            return crl::Crl::region_id(
                owner_of(bi, bj, pr, pc),
                block_index(bi, bj, grid, pr, pc));
        };

        // Create owned regions (lexicographic order matches
        // block_index), then map everything.
        for (int bi = 0; bi < grid; ++bi)
            for (int bj = 0; bj < grid; ++bj)
                if (owner_of(bi, bj, pr, pc) == me)
                    crl.create(bbytes);
        std::vector<double*> blk(
            static_cast<size_t>(grid) * static_cast<size_t>(grid));
        for (int bi = 0; bi < grid; ++bi) {
            for (int bj = 0; bj < grid; ++bj) {
                blk[static_cast<size_t>(bi * grid + bj)] =
                    static_cast<double*>(crl.map(rid(bi, bj), bbytes));
            }
        }
        coll.barrier();

        // Owner initializes its blocks.
        for (int bi = 0; bi < grid; ++bi) {
            for (int bj = 0; bj < grid; ++bj) {
                if (owner_of(bi, bj, pr, pc) != me)
                    continue;
                double* a = blk[static_cast<size_t>(bi * grid + bj)];
                crl.start_write(rid(bi, bj));
                for (int i = 0; i < b; ++i)
                    for (int j = 0; j < b; ++j)
                        a[i * b + j] = a_init(bi * b + i, bj * b + j, n);
                crl.end_write(rid(bi, bj));
            }
        }
        coll.barrier();
        timer.start(me, ctx.now());

        for (int k = 0; k < grid; ++k) {
            // Factor the diagonal block (Doolittle, unit lower).
            if (owner_of(k, k, pr, pc) == me) {
                double* akk = blk[static_cast<size_t>(k * grid + k)];
                crl.start_write(rid(k, k));
                for (int i = 0; i < b; ++i) {
                    for (int j = i + 1; j < b; ++j) {
                        double m = akk[j * b + i] / akk[i * b + i];
                        akk[j * b + i] = m;
                        for (int c = i + 1; c < b; ++c)
                            akk[j * b + c] -= m * akk[i * b + c];
                    }
                }
                crl.end_write(rid(k, k));
                ctx.compute(Cost::kFlop * (2.0 / 3.0) * b * b * b);
            }
            coll.barrier();

            // Row panel: A[k][j] = L_kk^-1 A[k][j]; column panel:
            // A[i][k] = A[i][k] U_kk^-1.
            for (int j = k + 1; j < grid; ++j) {
                if (owner_of(k, j, pr, pc) != me)
                    continue;
                crl.start_read(rid(k, k));
                const double* akk =
                    blk[static_cast<size_t>(k * grid + k)];
                double* akj = blk[static_cast<size_t>(k * grid + j)];
                crl.start_write(rid(k, j));
                for (int c = 0; c < b; ++c) {
                    for (int i = 1; i < b; ++i) {
                        double s = akj[i * b + c];
                        for (int r = 0; r < i; ++r)
                            s -= akk[i * b + r] * akj[r * b + c];
                        akj[i * b + c] = s;
                    }
                }
                crl.end_write(rid(k, j));
                crl.end_read(rid(k, k));
                ctx.compute(Cost::kFlop * b * b * b);
            }
            for (int i = k + 1; i < grid; ++i) {
                if (owner_of(i, k, pr, pc) != me)
                    continue;
                crl.start_read(rid(k, k));
                const double* akk =
                    blk[static_cast<size_t>(k * grid + k)];
                double* aik = blk[static_cast<size_t>(i * grid + k)];
                crl.start_write(rid(i, k));
                for (int r = 0; r < b; ++r) {
                    for (int c = 0; c < b; ++c) {
                        double s = aik[r * b + c];
                        for (int t = 0; t < c; ++t)
                            s -= aik[r * b + t] * akk[t * b + c];
                        aik[r * b + c] = s / akk[c * b + c];
                    }
                }
                crl.end_write(rid(i, k));
                crl.end_read(rid(k, k));
                ctx.compute(Cost::kFlop * b * b * b);
            }
            coll.barrier();

            // Interior update: A[i][j] -= A[i][k] * A[k][j].
            for (int i = k + 1; i < grid; ++i) {
                for (int j = k + 1; j < grid; ++j) {
                    if (owner_of(i, j, pr, pc) != me)
                        continue;
                    crl.start_read(rid(i, k));
                    crl.start_read(rid(k, j));
                    const double* aik =
                        blk[static_cast<size_t>(i * grid + k)];
                    const double* akj =
                        blk[static_cast<size_t>(k * grid + j)];
                    double* aij = blk[static_cast<size_t>(i * grid + j)];
                    crl.start_write(rid(i, j));
                    for (int r = 0; r < b; ++r)
                        for (int t = 0; t < b; ++t) {
                            double m = aik[r * b + t];
                            for (int c = 0; c < b; ++c)
                                aij[r * b + c] -= m * akj[t * b + c];
                        }
                    crl.end_write(rid(i, j));
                    crl.end_read(rid(k, j));
                    crl.end_read(rid(i, k));
                    ctx.compute(Cost::kFlop * 2.0 * b * b * b);
                }
            }
            coll.barrier();
        }

        timer.end(me, ctx.now());

        // Validation on rank 0: || L*U - A || / ||A|| small.
        if (me == 0) {
            std::vector<double> lu(static_cast<size_t>(n) * n);
            for (int bi = 0; bi < grid; ++bi) {
                for (int bj = 0; bj < grid; ++bj) {
                    crl.start_read(rid(bi, bj));
                    const double* a =
                        blk[static_cast<size_t>(bi * grid + bj)];
                    for (int i = 0; i < b; ++i)
                        for (int j = 0; j < b; ++j)
                            lu[static_cast<size_t>(bi * b + i) * n +
                               bj * b + j] = a[i * b + j];
                    crl.end_read(rid(bi, bj));
                }
            }
            double num = 0.0, den = 1e-30;
            for (int i = 0; i < n; ++i) {
                for (int j = 0; j < n; ++j) {
                    double s = 0.0;
                    int kmax = std::min(i, j);
                    for (int t = 0; t <= kmax; ++t) {
                        double l =
                            (t == i) ? 1.0
                                     : lu[static_cast<size_t>(i) * n + t];
                        if (t > i)
                            l = 0.0;
                        double u = (t <= j)
                                       ? lu[static_cast<size_t>(t) * n + j]
                                       : 0.0;
                        s += l * u;
                    }
                    double a0 = a_init(i, j, n);
                    num += (s - a0) * (s - a0);
                    den += a0 * a0;
                }
            }
            residual = std::sqrt(num / den);
        }
        coll.barrier();
    });

    AppResult res;
    res.elapsed_us = timer.elapsed();
    res.checksum = residual;
    res.valid = residual < 1e-9;
    res.run = result;
    return res;
}

} // namespace apps
