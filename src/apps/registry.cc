#include "apps/apps.h"

namespace apps {

const std::vector<AppEntry>&
all_apps()
{
    static const std::vector<AppEntry> entries = {
        {"Moldy", "RMA", &run_moldy},
        {"LU", "CRL", &run_lu},
        {"Barnes-Hut", "CRL", &run_barnes},
        {"Water", "CRL", &run_water},
        {"MM", "Split-C", &run_mm},
        {"FFT", "Split-C", &run_fft},
        {"Sample", "Split-C", &run_sample},
        {"Sampleb", "Split-C", &run_sampleb},
        {"P-Ray", "Split-C", &run_pray},
        {"Wator", "Split-C", &run_wator},
    };
    return entries;
}

} // namespace apps
