/// \file
/// Moldy: Monte-Carlo molecular dynamics in the native-RMA style.
///
/// The original is a Fortran MC simulation of an immunoglobin
/// molecule whose dominant communication is a broadcast of updated
/// coordinate vectors between iterations, performed with PUT
/// operations. We reproduce that structure: atoms are replicated,
/// each rank Metropolis-sweeps its owned block against the replica,
/// then PUTs the updated block into every peer's replica.

#include "apps/apps.h"

#include <cmath>

#include "apps/app_util.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "util/log.h"

namespace apps {

namespace {

constexpr int kBaseAtoms = 1024;
constexpr int kIters = 6;

/// Truncated Lennard-Jones-like pair energy.
double
pair_energy(const double* a, const double* b)
{
    double dx = a[0] - b[0];
    double dy = a[1] - b[1];
    double dz = a[2] - b[2];
    double r2 = dx * dx + dy * dy + dz * dz + 0.05;
    double inv6 = 1.0 / (r2 * r2 * r2);
    return inv6 * inv6 - inv6;
}

} // namespace

AppResult
run_moldy(const rma::SystemConfig& cfg, int scale)
{
    const int p = cfg.nodes * cfg.procs_per_node;
    const int natoms = std::max(p, kBaseAtoms / scale);
    const int chunk = (natoms + p - 1) / p;
    const int padded = chunk * p;

    Timer timer(p);
    double final_energy = 0.0;
    double min_ck = 0.0, max_ck = 0.0;

    auto result = backend::run_app(cfg, [&](rma::Ctx& ctx) {
        coll::Collective coll(ctx);
        const int me = ctx.rank();
        const int lo = me * chunk;
        const int hi = std::min(lo + chunk, natoms);

        // Replicated coordinates; each rank owns [lo, hi).
        auto* pos = ctx.alloc_n<double>(static_cast<size_t>(padded) * 3);
        ctx.publish("moldy.pos", pos);
        sim::Flag* iter_flag = ctx.new_flag();
        ctx.publish("moldy.flag", iter_flag);

        // Deterministic initial configuration (same on all ranks).
        mp::Rng init(12345);
        for (int i = 0; i < natoms * 3; ++i)
            pos[i] = init.next_range(-3.0, 3.0);

        coll.barrier();
        timer.start(me, ctx.now());

        for (int it = 0; it < kIters; ++it) {
            // Metropolis sweep over owned atoms against the replica.
            for (int i = lo; i < hi; ++i) {
                double trial[3];
                for (int d = 0; d < 3; ++d) {
                    trial[d] = pos[i * 3 + d] +
                               ctx.rng().next_range(-0.05, 0.05);
                }
                double de = 0.0;
                for (int j = 0; j < natoms; ++j) {
                    if (j == i)
                        continue;
                    de += pair_energy(trial, &pos[j * 3]) -
                          pair_energy(&pos[i * 3], &pos[j * 3]);
                }
                // Charge two (vectorized) energy evaluations per
                // neighbour; the inner loop streams well, so it runs
                // at near-flop rate rather than pair-interaction rate.
                ctx.compute(2.0 * static_cast<double>(natoms - 1) * 2.0 *
                            Cost::kFlop);
                bool accept = de < 0.0 ||
                              ctx.rng().next_double() < std::exp(-de);
                if (accept) {
                    for (int d = 0; d < 3; ++d)
                        pos[i * 3 + d] = trial[d];
                }
            }
            // Broadcast the owned block to every peer with PUTs.
            for (int r = 0; r < p; ++r) {
                if (r == me)
                    continue;
                auto* peer_pos = ctx.lookup_as<double>("moldy.pos", r);
                auto* peer_flag = static_cast<sim::Flag*>(
                    ctx.lookup("moldy.flag", r));
                ctx.put(&pos[lo * 3], r, &peer_pos[lo * 3],
                        static_cast<size_t>(hi - lo) * 3 * sizeof(double),
                        nullptr, peer_flag);
            }
            // Wait for every peer's block for this iteration.
            ctx.wait_ge(*iter_flag,
                        static_cast<uint64_t>(it + 1) *
                            static_cast<uint64_t>(p - 1));
        }

        timer.end(me, ctx.now());

        // Validation: replicas must agree; energy must be finite.
        double ck = 0.0;
        for (int i = 0; i < natoms * 3; ++i)
            ck += pos[i] * static_cast<double>((i % 13) + 1);
        min_ck = -coll.allreduce_max(-ck);
        max_ck = coll.allreduce_max(ck);
        if (me == 0) {
            double e = 0.0;
            for (int i = 0; i < natoms; ++i)
                for (int j = i + 1; j < natoms; ++j)
                    e += pair_energy(&pos[i * 3], &pos[j * 3]);
            final_energy = e;
        }
        coll.barrier();
    });

    AppResult res;
    res.elapsed_us = timer.elapsed();
    res.checksum = final_energy;
    res.valid = std::isfinite(final_energy) &&
                std::abs(max_ck - min_ck) < 1e-9 * (1.0 + std::abs(max_ck));
    res.run = result;
    return res;
}

} // namespace apps
