/// \file
/// Sampleb: sample sort with bulk transfers (the paper's "version of
/// sample sort that uses bulk transfers"). Identical algorithm to
/// Sample, but buckets travel as single bulk stores into
/// offset-negotiated landing areas instead of per-key messages.

#include "apps/apps.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "apps/app_util.h"
#include "backend/factory.h"
#include "coll/coll.h"
#include "splitc/splitc.h"

namespace apps {

namespace {

constexpr int kBaseKeysTotal = 32768;
constexpr int kOversample = 8;

} // namespace

AppResult
run_sampleb(const rma::SystemConfig& cfg, int scale)
{
    const int p = cfg.nodes * cfg.procs_per_node;
    const int nlocal = std::max(16, kBaseKeysTotal / scale / p);
    const int ntotal = nlocal * p;

    Timer timer(p);
    bool sorted_ok = false;
    int64_t total_after = 0;

    auto result = backend::run_app(cfg, [&](rma::Ctx& ctx) {
        splitc::SplitC sc(ctx);
        coll::Collective coll(ctx);
        const int me = ctx.rank();

        std::vector<uint64_t> keys(static_cast<size_t>(nlocal));
        mp::Rng kr(2000 + static_cast<uint64_t>(me));
        for (auto& k : keys)
            k = kr.next_u64() >> 1;

        uint64_t* samples = sc.all_spread_alloc<uint64_t>(
            "sb.smp",
            static_cast<size_t>(kOversample) * static_cast<size_t>(p));
        uint64_t* splitters =
            sc.all_spread_alloc<uint64_t>("sb.spl", static_cast<size_t>(p));
        // Per-source incoming bucket counts, then landing offsets.
        int64_t* in_counts =
            sc.all_spread_alloc<int64_t>("sb.cnt", static_cast<size_t>(p));
        int64_t* my_offsets =
            sc.all_spread_alloc<int64_t>("sb.off", static_cast<size_t>(p));
        // Landing area: generous bound (3x expected average).
        const size_t land_cap = static_cast<size_t>(nlocal) * 3 + 64;
        uint64_t* land = sc.all_spread_alloc<uint64_t>("sb.land", land_cap);
        for (int r = 0; r < p; ++r)
            in_counts[r] = 0;
        coll.barrier();
        timer.start(me, ctx.now());

        // Splitters (as in Sample).
        std::vector<uint64_t> my_samples(static_cast<size_t>(kOversample));
        for (int s = 0; s < kOversample; ++s)
            my_samples[static_cast<size_t>(s)] = keys[static_cast<size_t>(
                ctx.rng().next_below(static_cast<uint64_t>(nlocal)))];
        auto g0 = sc.global<uint64_t>("sb.smp", 0) +
                  static_cast<ptrdiff_t>(me * kOversample);
        sc.store(g0, my_samples.data(), static_cast<size_t>(kOversample));
        sc.all_store_sync(coll);
        if (me == 0) {
            std::sort(samples,
                      samples + static_cast<size_t>(kOversample) * p);
            for (int r = 0; r < p - 1; ++r)
                splitters[r] =
                    samples[static_cast<size_t>((r + 1) * kOversample)];
            splitters[p - 1] = ~0ull;
            ctx.compute(Cost::kKeyCompare * kOversample * p * 10.0);
        }
        coll.broadcast(splitters, static_cast<size_t>(p) * sizeof(uint64_t),
                       0);

        // Bucketize locally.
        std::vector<std::vector<uint64_t>> bucket(static_cast<size_t>(p));
        for (int i = 0; i < nlocal; ++i) {
            uint64_t k = keys[static_cast<size_t>(i)];
            int d = 0;
            while (splitters[d] <= k)
                ++d;
            bucket[static_cast<size_t>(d)].push_back(k);
        }
        ctx.compute(Cost::kKeyCompare * static_cast<double>(nlocal) *
                    std::log2(static_cast<double>(p) + 1.0));

        // Announce bucket sizes to each destination.
        for (int d = 0; d < p; ++d) {
            int64_t c =
                static_cast<int64_t>(bucket[static_cast<size_t>(d)].size());
            auto g = sc.global<int64_t>("sb.cnt", d) + me;
            sc.store(g, &c);
        }
        sc.all_store_sync(coll);

        // Compute landing offsets for our senders and send them back.
        int64_t off = 0;
        for (int s = 0; s < p; ++s) {
            auto g = sc.global<int64_t>("sb.off", s) + me;
            sc.store(g, &off);
            off += in_counts[s];
        }
        MP_CHECK(static_cast<size_t>(off) <= land_cap,
                 "landing area overflow");
        sc.all_store_sync(coll);

        // Bulk-store each bucket at its negotiated offset (the local
        // bucket is copied in place).
        for (int d = 0; d < p; ++d) {
            auto& b = bucket[static_cast<size_t>(d)];
            if (b.empty())
                continue;
            if (d == me) {
                std::memcpy(land + my_offsets[d], b.data(),
                            b.size() * sizeof(uint64_t));
                ctx.compute(static_cast<double>(ctx.design().lines(
                                b.size() * sizeof(uint64_t))) *
                            ctx.design().c_miss_us);
                continue;
            }
            auto g = sc.global<uint64_t>("sb.land", d) +
                     static_cast<ptrdiff_t>(my_offsets[d]);
            sc.store(g, b.data(), b.size());
        }
        sc.all_store_sync(coll);

        // Sort the received range.
        int64_t nrecv = 0;
        for (int s = 0; s < p; ++s)
            nrecv += in_counts[s];
        std::sort(land, land + nrecv);
        double lg = std::log2(static_cast<double>(nrecv) + 2.0);
        ctx.compute(Cost::kKeyCompare * static_cast<double>(nrecv) * lg);
        coll.barrier();
        timer.end(me, ctx.now());

        // Validation (as in Sample).
        bool local_sorted = std::is_sorted(land, land + nrecv);
        uint64_t* boundary = sc.all_spread_alloc<uint64_t>("sb.bnd", 2);
        boundary[0] = nrecv ? land[0] : 0;
        boundary[1] = nrecv ? land[nrecv - 1] : ~0ull;
        coll.barrier();
        bool ordered = true;
        if (me + 1 < p) {
            uint64_t nxt_min =
                sc.read(sc.global<uint64_t>("sb.bnd", me + 1));
            if (nrecv && nxt_min < land[nrecv - 1])
                ordered = false;
        }
        int64_t count = coll.allreduce_sum_i64(nrecv);
        double ok = (local_sorted && ordered) ? 1.0 : 0.0;
        double all_ok = -coll.allreduce_max(-ok);
        if (me == 0) {
            sorted_ok = all_ok > 0.5;
            total_after = count;
        }
        coll.barrier();
    });

    AppResult res;
    res.elapsed_us = timer.elapsed();
    res.checksum = static_cast<double>(total_after);
    res.valid = sorted_ok && total_after == ntotal;
    res.run = result;
    return res;
}

} // namespace apps
